#!/usr/bin/env bash
# Cluster smoke test: the distributed fabric's three contracts, end to end
# over real processes and real sockets.
#
#   1. Bit identity — a coordinator sharding a campaign across three worker
#      daemons returns results byte-identical to a single plain daemon.
#   2. Exactly-once — the 8-cell campaign costs exactly 8 simulations
#      cluster-wide, the coordinator itself simulates nothing, and a burst
#      of duplicate submissions adds zero.
#   3. Two-tier cache — a fresh coordinator over a re-sharded ring answers
#      from the old owner's store via peer fetch (pubsd_cluster_peer_cache_
#      hits_total > 0) instead of re-simulating.
#   4. Shared sampling plans — a sampled window-major sweep, submitted
#      twice, costs exactly one functional planning pass per workload
#      across the whole fleet (summed pubsd_snapshot_plans_total), however
#      many nodes hold its cells.
#
# All daemons listen on kernel-chosen ports. Usage:
#   scripts/cluster_smoke.sh [path-to-pubsd-binary]
set -euo pipefail

PUBSD=${1:-}
if [[ -z "$PUBSD" ]]; then
  go build -o /tmp/pubsd ./cmd/pubsd
  PUBSD=/tmp/pubsd
fi

LOGS=$(mktemp -d)
PIDS=()
trap '((${#PIDS[@]})) && kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$LOGS"' EXIT

# 4 machines x 2 workloads = 8 cells, windows explicit so every node derives
# the same content addresses.
SPEC='{"machines":[{"machine":"base"},{"machine":"pubs"},{"machine":"age"},{"machine":"pubs+age"}],"workloads":["matmul","chess"],"warmup":2000,"measure":8000}'
SPEC2='{"machines":[{"machine":"base"},{"machine":"pubs"},{"machine":"age"},{"machine":"pubs+age"}],"workloads":["goplay","pathfind"],"warmup":2000,"measure":8000}'

# start_daemon LOGFILE ARGS... — boots a daemon on a kernel-chosen port and
# sets DAEMON (its base URL). Runs in the top-level shell, not a command
# substitution: the daemon must not inherit a captured stdout, and PIDS must
# accumulate for the final drain.
start_daemon() {
  local log=$1; shift
  "$PUBSD" serve -addr 127.0.0.1:0 "$@" >/dev/null 2>>"$log" &
  local pid=$!
  PIDS+=("$pid")
  for i in $(seq 1 50); do
    local addr
    addr=$(sed -n 's/^pubsd: serving on \([0-9.]*:[0-9]*\) .*/\1/p' "$log" | tail -1)
    if [[ -n "$addr" ]]; then
      DAEMON=http://$addr
      curl -sf "$DAEMON/healthz" >/dev/null && return 0
    fi
    kill -0 "$pid" 2>/dev/null || { echo "daemon died at boot" >&2; cat "$log" >&2; exit 1; }
    sleep 0.2
  done
  echo "daemon never became healthy" >&2; cat "$log" >&2; exit 1
}

# metric BASE NAME — label-aware: sums every {node=...} series of NAME.
metric() {
  curl -sf "$1/metrics" | awk -v m="$2" \
    '($1 == m || index($1, m"{") == 1) && $1 !~ /quantile=/ {s += $2} END {print s+0}'
}

submit() { curl -sf -X POST "$1/v1/jobs" -d "$2" | jq -r .id; }

wait_done() { # BASE JOB
  for i in $(seq 1 300); do
    state=$(curl -sf "$1/v1/jobs/$2" | jq -r .state)
    case "$state" in
      done) return 0 ;;
      failed) echo "job $2 failed:" >&2; curl -sf "$1/v1/jobs/$2" | jq .errors >&2; exit 1 ;;
    esac
    sleep 0.2
  done
  echo "job $2 never finished (state=$state)" >&2; exit 1
}

results() { curl -sf "$1/v1/jobs/$2" | jq -S .results; }

# --- Reference: one plain daemon, no cluster anywhere. --------------------
start_daemon "$LOGS/ref.log" -workers 2; REF=$DAEMON
RJOB=$(submit "$REF" "$SPEC")
wait_done "$REF" "$RJOB"
R_REF=$(results "$REF" "$RJOB")
[[ $(echo "$R_REF" | jq length) == 8 ]] || { echo "reference run incomplete"; exit 1; }

# --- Fabric: coordinator A and one worker; two more join live. ------------
start_daemon "$LOGS/coord.log" -coordinator -node-id coordA; COORD=$DAEMON
start_daemon "$LOGS/w1.log" -workers 1 -node-id w1 -join "$COORD"; W1=$DAEMON
for i in $(seq 1 50); do
  [[ $(curl -sf "$COORD/v1/cluster/nodes" | jq '.peers | length') == 1 ]] && break
  [[ $i == 50 ]] && { echo "w1 never joined"; exit 1; }
  sleep 0.2
done

# With only w1 on the ring, every cell lands (and is cached) there.
CJOB=$(submit "$COORD" "$SPEC")
wait_done "$COORD" "$CJOB"
R_CLUSTER=$(results "$COORD" "$CJOB")
[[ "$R_REF" == "$R_CLUSTER" ]] || {
  echo "cluster results differ from single-node reference"
  diff <(echo "$R_REF") <(echo "$R_CLUSTER") | head -40
  exit 1
}
[[ $(metric "$W1" pubsd_sims_executed_total) == 8 ]] || { echo "w1 should have simulated all 8 cells"; exit 1; }
[[ $(metric "$COORD" pubsd_sims_executed_total) == 0 ]] || { echo "coordinator simulated locally"; exit 1; }

start_daemon "$LOGS/w2.log" -workers 1 -node-id w2 -join "$COORD"; W2=$DAEMON
start_daemon "$LOGS/w3.log" -workers 1 -node-id w3 -join "$COORD"; W3=$DAEMON
for i in $(seq 1 50); do
  [[ $(curl -sf "$COORD/v1/cluster/nodes" | jq '.peers | length') == 3 ]] && break
  [[ $i == 50 ]] && { echo "w2/w3 never joined"; exit 1; }
  sleep 0.2
done

# --- Exactly-once under a duplicate burst on the full ring. ---------------
# Four concurrent submissions of a fresh 8-cell spec: the coordinator's
# singleflight offers each unique cell to the fabric once, so the burst
# costs exactly 8 simulations across the whole fleet.
BURST_IDS=()
for i in 1 2 3 4; do
  BURST_IDS+=("$(submit "$COORD" "$SPEC2")")
done
for id in "${BURST_IDS[@]}"; do wait_done "$COORD" "$id"; done
B0=$(results "$COORD" "${BURST_IDS[0]}")
for id in "${BURST_IDS[@]:1}"; do
  [[ "$B0" == "$(results "$COORD" "$id")" ]] || { echo "burst jobs disagree"; exit 1; }
done
TOTAL_SIMS=$(( $(metric "$W1" pubsd_sims_executed_total) \
             + $(metric "$W2" pubsd_sims_executed_total) \
             + $(metric "$W3" pubsd_sims_executed_total) ))
[[ "$TOTAL_SIMS" == 16 ]] || { echo "duplicate burst re-simulated: $TOTAL_SIMS sims cluster-wide, want 16"; exit 1; }
REMOTE=$(metric "$COORD" pubsd_cluster_remote_cells_total)
[[ "$REMOTE" == 16 ]] || { echo "expected 16 remote cells at the coordinator, got $REMOTE"; exit 1; }

# --- Two-tier cache: a fresh coordinator over the re-sharded ring. --------
# Coordinator B has an empty local cache and all three workers on its ring,
# so most of SPEC's cells now belong to w2/w3 — which never simulated them.
# They must fetch w1's results by content address, not re-simulate.
start_daemon "$LOGS/coord2.log" -coordinator -node-id coordB \
  -peers "w1=$W1,w2=$W2,w3=$W3"
COORD2=$DAEMON
C2JOB=$(submit "$COORD2" "$SPEC")
wait_done "$COORD2" "$C2JOB"
[[ "$R_REF" == "$(results "$COORD2" "$C2JOB")" ]] || { echo "re-sharded rerun is not bit-identical"; exit 1; }
TOTAL_SIMS2=$(( $(metric "$W1" pubsd_sims_executed_total) \
              + $(metric "$W2" pubsd_sims_executed_total) \
              + $(metric "$W3" pubsd_sims_executed_total) ))
[[ "$TOTAL_SIMS2" == "$TOTAL_SIMS" ]] || { echo "re-sharded rerun re-simulated: $TOTAL_SIMS -> $TOTAL_SIMS2"; exit 1; }
PEER_HITS=$(( $(metric "$W1" pubsd_cluster_peer_cache_hits_total) \
            + $(metric "$W2" pubsd_cluster_peer_cache_hits_total) \
            + $(metric "$W3" pubsd_cluster_peer_cache_hits_total) ))
[[ "$PEER_HITS" -gt 0 ]] || { echo "no peer cache hits — the second tier never engaged"; exit 1; }

# --- Shared sampling plans: one functional pass per workload, fleet-wide. --
# A sampled window-major sweep over fresh workloads, submitted twice. The
# coordinator batches each (node, workload) group into one sweep dispatch
# and designates one planner per plan key; every other node adopts the
# serialized plan instead of paying its own fast-forward pass. The local
# pass counter (pubsd_snapshot_plans_total) never counts adopted plans, so
# its fleet-wide sum must equal the workload count exactly — and the
# duplicate submission must add nothing anywhere.
SPEC3='{"machines":[{"machine":"base"},{"machine":"pubs"},{"machine":"age"},{"machine":"pubs+age"}],"workloads":["parser","compress"],"warmup":2000,"measure":4000,"windows":2,"fast_forward":200000,"window_major":true}'
S1JOB=$(submit "$COORD" "$SPEC3")
wait_done "$COORD" "$S1JOB"
S2JOB=$(submit "$COORD" "$SPEC3")
wait_done "$COORD" "$S2JOB"
[[ "$(results "$COORD" "$S1JOB")" == "$(results "$COORD" "$S2JOB")" ]] || { echo "duplicated sampled sweeps disagree"; exit 1; }
[[ $(results "$COORD" "$S1JOB" | jq length) == 8 ]] || { echo "sampled sweep incomplete"; exit 1; }
PLANS=$(( $(metric "$W1" pubsd_snapshot_plans_total) \
        + $(metric "$W2" pubsd_snapshot_plans_total) \
        + $(metric "$W3" pubsd_snapshot_plans_total) ))
[[ "$PLANS" == 2 ]] || { echo "fleet paid $PLANS functional plans for 2 workloads — plan sharing is not exactly-once"; exit 1; }
TOTAL_SIMS3=$(( $(metric "$W1" pubsd_sims_executed_total) \
              + $(metric "$W2" pubsd_sims_executed_total) \
              + $(metric "$W3" pubsd_sims_executed_total) ))
[[ "$TOTAL_SIMS3" == $((TOTAL_SIMS + 8)) ]] || { echo "sampled sweep re-simulated: $TOTAL_SIMS3 sims, want $((TOTAL_SIMS + 8))"; exit 1; }

# --- Graceful drain everywhere. -------------------------------------------
kill -TERM "${PIDS[@]}" 2>/dev/null || true
for pid in "${PIDS[@]}"; do
  wait "$pid" || { echo "daemon $pid exited non-zero"; exit 1; }
done
PIDS=()

echo "cluster smoke OK: cluster == single-node bit-identical, $TOTAL_SIMS3 sims for 24 unique cells across 3 workers, 0 duplicate sims, $PEER_HITS peer cache hits, $PLANS functional plans for 2 sampled workloads"
