#!/usr/bin/env bash
# Service smoke test: boot pubsd, submit a tiny campaign over HTTP, poll it
# to completion, then re-submit the identical spec and assert the daemon
# answered from the content-addressed cache without running any new
# simulations. Finishes with a graceful SIGTERM drain.
#
# Usage: scripts/service_smoke.sh [path-to-pubsd-binary]
set -euo pipefail

PUBSD=${1:-}
if [[ -z "$PUBSD" ]]; then
  go build -o /tmp/pubsd ./cmd/pubsd
  PUBSD=/tmp/pubsd
fi

SPEC='{"machines":[{"machine":"base"},{"machine":"pubs"}],"workloads":["matmul","chess"],"warmup":2000,"measure":8000}'
LOG=$(mktemp)

# 256 MiB trace budget: far above what the tiny sampled sweep below needs,
# so the resident-bytes assertion proves the gauge stays within budget
# rather than that eviction kicked in.
TRACE_BUDGET=268435456

# -addr 127.0.0.1:0 lets the kernel pick a free port; the bound address is
# parsed back out of the daemon's "serving on" line, so parallel smoke runs
# never collide.
#
# 8 workers: more than the cells in any one loadtest spec, so a burst of
# duplicate jobs has identical cells in flight simultaneously — the
# precondition for the singleflight-merge assertion below.
"$PUBSD" serve -addr 127.0.0.1:0 -workers 8 -warmup 2000 -insts 8000 -trace-budget $TRACE_BUDGET 2>>"$LOG" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; rm -f "$LOG"' EXIT

for i in $(seq 1 50); do
  ADDR=$(sed -n 's/^pubsd: serving on \([0-9.]*:[0-9]*\) .*/\1/p' "$LOG" | tail -1)
  if [[ -n "$ADDR" ]]; then
    BASE=http://$ADDR
    curl -sf "$BASE/healthz" >/dev/null && break
  fi
  kill -0 $PID 2>/dev/null || { echo "daemon died at boot"; cat "$LOG"; exit 1; }
  [[ $i == 50 ]] && { echo "daemon never became healthy"; cat "$LOG"; exit 1; }
  sleep 0.2
done

submit_and_wait() {
  local id spec=${1:-$SPEC}
  id=$(curl -sf -X POST "$BASE/v1/jobs" -d "$spec" | jq -r .id)
  [[ -n "$id" && "$id" != null ]] || { echo "submission failed"; exit 1; }
  for i in $(seq 1 100); do
    state=$(curl -sf "$BASE/v1/jobs/$id" | jq -r .state)
    case "$state" in
      done) echo "$id"; return 0 ;;
      failed) echo "job $id failed:" >&2
              curl -sf "$BASE/v1/jobs/$id" | jq .errors >&2; exit 1 ;;
    esac
    sleep 0.2
  done
  echo "job $id never finished (state=$state)" >&2; exit 1
}

# Metric samples carry a {node="..."} label set; match the bare name or any
# labeled series of it (skipping quantile series) and sum.
metric() {
  curl -sf "$BASE/metrics" | awk -v m="$1" \
    '($1 == m || index($1, m"{") == 1) && $1 !~ /quantile=/ {s += $2} END {print s+0}'
}

JOB1=$(submit_and_wait)
SIMS1=$(metric pubsd_sims_executed_total)
[[ "$SIMS1" == 4 ]] || { echo "expected 4 sims after first job, got $SIMS1"; exit 1; }

# The identical spec again: must complete from cache, zero new simulations.
JOB2=$(submit_and_wait)
SIMS2=$(metric pubsd_sims_executed_total)
HITS=$(metric pubsd_cache_hits_total)
[[ "$SIMS2" == "$SIMS1" ]] || { echo "re-submission re-simulated: $SIMS1 -> $SIMS2"; exit 1; }
[[ "$HITS" -ge 4 ]] || { echo "expected >=4 cache hits, got $HITS"; exit 1; }

# Both jobs returned identical result sets.
R1=$(curl -sf "$BASE/v1/jobs/$JOB1" | jq -S .results)
R2=$(curl -sf "$BASE/v1/jobs/$JOB2" | jq -S .results)
[[ "$R1" == "$R2" ]] || { echo "duplicate jobs returned different results"; exit 1; }

# Each result is addressable by its content key.
KEY=$(echo "$R1" | jq -r '.[0].key')
curl -sf "$BASE/v1/results/$KEY" | jq -e --arg k "$KEY" '.key == $k' >/dev/null

# A daemon cell is bit-identical to the equivalent CLI run.
CLI=$(go run ./cmd/pubsim -machine "$(echo "$R1" | jq -r '.[0].machine')" \
  -workload "$(echo "$R1" | jq -r '.[0].workload')" \
  -warmup 2000 -insts 8000 -json | jq -S .)
DAEMON=$(curl -sf "$BASE/v1/results/$KEY" | jq -S .)
[[ "$CLI" == "$DAEMON" ]] || { echo "CLI and daemon results differ for $KEY"; exit 1; }

# Window-major sampled sweep: three machines replaying one workload's
# predecoded windows. The trace cache must plan exactly once, report a
# positive resident footprint within the configured budget, and feed the
# per-window replay latency histogram.
SWEEP='{"machines":[{"machine":"base"},{"machine":"pubs"},{"machine":"age"}],"workloads":["parser"],"warmup":1000,"measure":2000,"windows":2,"fast_forward":20000,"window_major":true}'
submit_and_wait "$SWEEP" >/dev/null
SIMS3=$(metric pubsd_sims_executed_total)
[[ "$SIMS3" == $((SIMS1 + 3)) ]] || { echo "expected $((SIMS1 + 3)) sims after sampled sweep, got $SIMS3"; exit 1; }
PLANS=$(metric pubsd_predecode_misses_total)
[[ "$PLANS" == 1 ]] || { echo "expected 1 predecode plan, got $PLANS"; exit 1; }
RESIDENT=$(metric pubsd_trace_resident_bytes)
BUDGET=$(metric pubsd_trace_budget_bytes)
[[ "$BUDGET" == "$TRACE_BUDGET" ]] || { echo "trace budget gauge $BUDGET != configured $TRACE_BUDGET"; exit 1; }
[[ "$RESIDENT" -gt 0 && "$RESIDENT" -le "$TRACE_BUDGET" ]] || { echo "resident trace bytes $RESIDENT outside (0, $TRACE_BUDGET]"; exit 1; }
REPLAYS=$(metric pubsd_window_replay_latency_count)
[[ "$REPLAYS" -ge 6 ]] || { echo "expected >=6 window replays (3 machines x 2 windows), got $REPLAYS"; exit 1; }

# Loadtest against the live daemon: bursts of identical specs submitted
# concurrently must exercise the singleflight path, not just the cache.
# The default loadtest windows differ from $SPEC's, so nothing is answered
# from the results cached above, and cells are big enough (~10ms) that a
# burst's duplicates reliably arrive while the original is still in flight.
LOADREP=$(go run ./cmd/pubsd loadtest -addr "$BASE" -jobs 8 -concurrency 4 -burst 4 2>/dev/null)
MERGED=$(echo "$LOADREP" | jq .singleflight_merged)
[[ "$MERGED" -gt 0 ]] || { echo "loadtest never merged a duplicate submission (singleflight_merged=$MERGED)"; exit 1; }

# Graceful drain: SIGTERM flips healthz to 503, then the process exits 0.
kill -TERM $PID
for i in $(seq 1 50); do
  kill -0 $PID 2>/dev/null || break
  sleep 0.2
done
if kill -0 $PID 2>/dev/null; then echo "daemon did not drain"; exit 1; fi
wait $PID || { echo "daemon exited non-zero"; exit 1; }
trap - EXIT

echo "service smoke OK: $SIMS1 sims, $HITS cache hits, $MERGED singleflight merges, CLI==daemon"
