#!/usr/bin/env bash
# Chaos smoke test: kill -9 a pubsd daemon mid-campaign and prove the
# self-healing story end to end. A journaled daemon accepts an 8-cell
# campaign, is killed without warning after at least one cell has
# checkpointed, and is restarted on the same journal and checkpoint
# directories. The restarted daemon must re-enqueue the orphaned job under
# its original ID, serve the already-finished cells from the checkpoint
# store (no re-simulation), finish the rest, and produce results
# bit-identical to an uninterrupted daemon running the same campaign on
# fresh state. A resubmission of the same spec must then complete with
# zero new simulations.
#
# Usage: scripts/chaos_smoke.sh [path-to-pubsd-binary]
set -euo pipefail

PUBSD=${1:-}
if [[ -z "$PUBSD" ]]; then
  go build -o /tmp/pubsd ./cmd/pubsd
  PUBSD=/tmp/pubsd
fi

STATE=$(mktemp -d)
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$STATE"' EXIT

# 4 machines x 2 workloads = 8 cells, each large enough (~1s on one
# worker) that the kill below reliably lands mid-campaign.
SPEC='{"machines":[{"machine":"base"},{"machine":"pubs"},{"machine":"age"},{"machine":"pubs+age"}],"workloads":["matmul","chess"],"warmup":2000,"measure":400000}'

# Daemons listen on kernel-chosen ports (-addr 127.0.0.1:0); each start
# parses the bound address back out of the "serving on" stderr line, so a
# restart or a parallel smoke run never races a hardcoded port.
wait_serving() { # $1 = stderr log
  for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^pubsd: serving on \([0-9.]*:[0-9]*\) .*/\1/p' "$1" | tail -1)
    if [[ -n "$ADDR" ]]; then
      BASE=http://$ADDR
      curl -sf "$BASE/healthz" >/dev/null && return 0
    fi
    kill -0 $PID 2>/dev/null || { echo "daemon died at boot"; cat "$1"; exit 1; }
    sleep 0.2
  done
  echo "daemon never became healthy"; cat "$1"; exit 1
}

start_daemon() {
  : >"$STATE/log"
  "$PUBSD" serve -addr 127.0.0.1:0 -workers 1 -warmup 2000 -insts 400000 \
    -journal "$STATE/journal" -checkpoint "$STATE/ckpt" 2>>"$STATE/log" &
  PID=$!
  wait_serving "$STATE/log"
}

# Metric samples carry a {node="..."} label set; match the bare name or any
# labeled series of it (skipping quantile series) and sum.
metric() {
  curl -sf "$BASE/metrics" | awk -v m="$1" \
    '($1 == m || index($1, m"{") == 1) && $1 !~ /quantile=/ {s += $2} END {print s+0}'
}

wait_done() {
  local id=$1
  for i in $(seq 1 300); do
    state=$(curl -sf "$BASE/v1/jobs/$id" | jq -r .state)
    case "$state" in
      done) return 0 ;;
      failed) echo "job $id failed:" >&2
              curl -sf "$BASE/v1/jobs/$id" | jq .errors >&2; exit 1 ;;
    esac
    sleep 0.2
  done
  echo "job $id never finished (state=$state)" >&2; exit 1
}

# --- Phase 1: accept a campaign, then die without warning. ---------------
start_daemon
JOB=$(curl -sf -X POST "$BASE/v1/jobs" -d "$SPEC" | jq -r .id)
[[ -n "$JOB" && "$JOB" != null ]] || { echo "submission failed"; exit 1; }

# Let at least one cell finish (and checkpoint) so recovery has something
# to prove, but kill before the campaign completes.
for i in $(seq 1 300); do
  DONE_CELLS=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r .completed_cells)
  [[ "$DONE_CELLS" -ge 1 ]] && break
  [[ $i == 300 ]] && { echo "no cell ever completed"; exit 1; }
  sleep 0.1
done
STATE_AT_KILL=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r .state)
[[ "$STATE_AT_KILL" == done ]] && { echo "campaign finished before the kill; grow the cells"; exit 1; }
kill -9 $PID
wait $PID 2>/dev/null || true
echo "chaos: killed daemon with $DONE_CELLS/8 cells done (job $JOB)"

# --- Phase 2: restart on the same state; the job must self-heal. ---------
start_daemon
RECOVERED=$(metric pubsd_journal_recovered_jobs)
[[ "$RECOVERED" == 1 ]] || { echo "expected 1 recovered job, got $RECOVERED"; exit 1; }
wait_done "$JOB"

CKPT_HITS=$(metric pubsd_runner_checkpoint_hits_total)
[[ "$CKPT_HITS" -ge 1 ]] || { echo "recovered job re-simulated checkpointed cells (hits=$CKPT_HITS)"; exit 1; }
SIMS_AFTER_RECOVERY=$(metric pubsd_sims_executed_total)
[[ $((CKPT_HITS + SIMS_AFTER_RECOVERY)) -ge 8 ]] || { echo "cells unaccounted for: $CKPT_HITS hits + $SIMS_AFTER_RECOVERY sims"; exit 1; }
R_RECOVERED=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -S .results)
[[ $(echo "$R_RECOVERED" | jq length) == 8 ]] || { echo "recovered job has incomplete results"; exit 1; }

# Resubmitting the identical spec must cost zero new simulations.
JOB2=$(curl -sf -X POST "$BASE/v1/jobs" -d "$SPEC" | jq -r .id)
[[ "$JOB2" != "$JOB" ]] || { echo "resubmission reused the recovered job ID"; exit 1; }
wait_done "$JOB2"
SIMS_AFTER_RESUBMIT=$(metric pubsd_sims_executed_total)
[[ "$SIMS_AFTER_RESUBMIT" == "$SIMS_AFTER_RECOVERY" ]] || { echo "resubmission re-simulated: $SIMS_AFTER_RECOVERY -> $SIMS_AFTER_RESUBMIT"; exit 1; }
R_RESUBMIT=$(curl -sf "$BASE/v1/jobs/$JOB2" | jq -S .results)
[[ "$R_RECOVERED" == "$R_RESUBMIT" ]] || { echo "resubmission differs from recovered job"; exit 1; }

kill -TERM $PID
wait $PID || { echo "recovered daemon exited non-zero"; exit 1; }

# --- Phase 3: a clean daemon on fresh state must agree bit for bit. ------
STATE2=$(mktemp -d)
: >"$STATE2/log"
"$PUBSD" serve -addr 127.0.0.1:0 -workers 1 -warmup 2000 -insts 400000 \
  -journal "$STATE2/journal" -checkpoint "$STATE2/ckpt" 2>>"$STATE2/log" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$STATE" "$STATE2"' EXIT
wait_serving "$STATE2/log"
JOB3=$(curl -sf -X POST "$BASE/v1/jobs" -d "$SPEC" | jq -r .id)
wait_done "$JOB3"
R_CLEAN=$(curl -sf "$BASE/v1/jobs/$JOB3" | jq -S .results)
[[ "$R_RECOVERED" == "$R_CLEAN" ]] || {
  echo "crash-recovered results differ from a clean run";
  diff <(echo "$R_RECOVERED") <(echo "$R_CLEAN") | head -40
  exit 1
}

kill -TERM $PID
wait $PID || { echo "clean daemon exited non-zero"; exit 1; }
trap 'rm -rf "$STATE" "$STATE2"' EXIT

echo "chaos smoke OK: killed at $DONE_CELLS/8 cells, recovered job $JOB with $CKPT_HITS checkpoint hits, recovered == resubmitted == clean"
