package pubsim

// One benchmark per table and figure of the paper's evaluation (§V), plus
// the beyond-paper ablations. Each benchmark regenerates its table/figure
// with reduced simulation windows (QuickOptions) so `go test -bench=.`
// completes in minutes; cmd/experiments runs the same harness with
// full-size windows. The rendered table is logged on the first iteration —
// run with -v to see the rows.

import (
	"sync"
	"testing"
)

// benchRunner memoizes simulations across all benchmarks in one process, so
// -bench=. does not recompute the shared base-machine runs per figure.
var (
	benchOnce   sync.Once
	benchShared *Runner
)

func quickRunner() *Runner {
	benchOnce.Do(func() { benchShared = NewRunner(QuickOptions()) })
	return benchShared
}

type tabler interface{ Table() string }

func benchExperiment[T tabler](b *testing.B, run func(*Runner) (T, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run(quickRunner())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table())
		}
	}
}

// BenchmarkFig08Speedup regenerates Fig. 8: per-program PUBS speedup with
// GM(diff) and GM(easy).
func BenchmarkFig08Speedup(b *testing.B) { benchExperiment(b, Fig8) }

// BenchmarkFig09Correlation regenerates Fig. 9: speedup vs branch MPKI,
// coloured by memory intensity.
func BenchmarkFig09Correlation(b *testing.B) { benchExperiment(b, Fig9) }

// BenchmarkFig10PriorityEntries regenerates Fig. 10: the priority-entry
// count sweep under stall and non-stall dispatch policies.
func BenchmarkFig10PriorityEntries(b *testing.B) { benchExperiment(b, Fig10) }

// BenchmarkFig11ConfBits regenerates Fig. 11: the confidence-counter width
// sweep plus the blind estimator.
func BenchmarkFig11ConfBits(b *testing.B) { benchExperiment(b, Fig11) }

// BenchmarkFig12ModeSwitch regenerates Fig. 12: mode switch on vs off.
func BenchmarkFig12ModeSwitch(b *testing.B) { benchExperiment(b, Fig12) }

// BenchmarkTable03Cost regenerates Table III: the PUBS hardware cost.
func BenchmarkTable03Cost(b *testing.B) {
	var out Table3Result
	for i := 0; i < b.N; i++ {
		out = Table3()
	}
	b.Log("\n" + out.Table())
	if kb := out.Breakdown.TotalKB(); kb < 3.5 || kb > 4.5 {
		b.Fatalf("PUBS cost %.2f KB is not ≈4.0 KB", kb)
	}
}

// BenchmarkFig13LargePredictor regenerates Fig. 13: PUBS vs spending the
// hardware budget on an enlarged perceptron.
func BenchmarkFig13LargePredictor(b *testing.B) { benchExperiment(b, Fig13) }

// BenchmarkFig15AgeMatrix regenerates Fig. 15: PUBS/AGE/PUBS+AGE IPC (15a)
// and the delay-adjusted performance comparison (15b).
func BenchmarkFig15AgeMatrix(b *testing.B) { benchExperiment(b, Fig15) }

// BenchmarkFig16ProcessorSize regenerates Fig. 16: the four-model scaling
// study.
func BenchmarkFig16ProcessorSize(b *testing.B) { benchExperiment(b, Fig16) }

// BenchmarkAblationIQKinds compares shifting/circular queues to the random
// queue (§III-B1 taxonomy).
func BenchmarkAblationIQKinds(b *testing.B) { benchExperiment(b, AblationIQKinds) }

// BenchmarkAblationPredictors re-checks PUBS under gshare, bimodal, and
// tournament predictors (footnote 1).
func BenchmarkAblationPredictors(b *testing.B) { benchExperiment(b, AblationPredictors) }

// BenchmarkAblationTagless sweeps the §IV table organisations (tagless and
// alternative hash fold widths).
func BenchmarkAblationTagless(b *testing.B) { benchExperiment(b, AblationTables) }

// BenchmarkExtDistributedIQ measures PUBS on the §III-C2 distributed issue
// queue (beyond-paper extension).
func BenchmarkExtDistributedIQ(b *testing.B) { benchExperiment(b, ExtDistributed) }

// BenchmarkExtFlexibleSelect compares partitioned PUBS with the idealized
// §III-C1 flexible select (beyond-paper extension).
func BenchmarkExtFlexibleSelect(b *testing.B) { benchExperiment(b, ExtFlexible) }

// BenchmarkExtEnergy extends Table III to energy: D-BP EPI for base vs
// PUBS under the activity model (beyond-paper extension).
func BenchmarkExtEnergy(b *testing.B) { benchExperiment(b, ExtEnergy) }

// BenchmarkExtWrongPath quantifies wrong-path pollution of the PUBS tables
// (beyond-paper ablation validating the DESIGN.md §2 substitution).
func BenchmarkExtWrongPath(b *testing.B) { benchExperiment(b, ExtWrongPath) }

// BenchmarkSimulatorThroughput measures raw simulation speed (committed
// instructions per wall-clock second) on the base machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const insts = 100_000
	b.SetBytes(insts) // bytes/s double as instructions/s
	for i := 0; i < b.N; i++ {
		if _, err := Run(BaseConfig(), "chess", 0, insts); err != nil {
			b.Fatal(err)
		}
	}
}
