package main

// Idle-skip benchmark harness: -bench-skip-out measures single runs of the
// memory-bound workload set two ways — poll mode (Config.NoIdleSkip, the
// pre-skip cycle loop that walks every stage every cycle) and skip mode
// (the default event-driven idle-cycle skipping, DESIGN.md §14) — verifies
// the two produce bit-identical Results, and writes a machine-readable
// report (BENCH_6.json schema). -bench-skip-baseline gates regressions:
// skip mode must stay at least minSkipSpeedup faster than polling on this
// set, and within tolerance of the committed baseline's speedup.
//
// The set is deliberately memory-bound (pointer chases, sparse gathers,
// cache-hostile strides): those are the workloads whose cycles are
// dominated by provably-null miss shadows, the regime the skip is built
// for. Compute-bound workloads sit near 1.0x by construction and are
// gated for overhead by BENCH_2's sims/sec floor instead.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"testing"

	pubsim "repro"
)

// Skip-benchmark geometry: one contiguous window per run, long enough that
// the measured span is dominated by steady-state miss behaviour rather
// than cold caches.
const (
	skipWarmup  = 20_000
	skipMeasure = 80_000
)

// minSkipSpeedup is the hard floor on the geomean skip-vs-poll speedup
// across the memory-bound set: below this the event-driven skip has
// stopped earning its complexity.
const minSkipSpeedup = 2.0

type benchSkipEntry struct {
	Name     string `json:"name"` // workload-machine
	Workload string `json:"workload"`
	Machine  string `json:"machine"`

	PollNs  int64   `json:"poll_ns"` // NoIdleSkip reference run
	SkipNs  int64   `json:"skip_ns"` // event-driven skipping run
	Speedup float64 `json:"speedup"` // PollNs / SkipNs
	PollSPS float64 `json:"poll_sims_per_sec"`
	SkipSPS float64 `json:"skip_sims_per_sec"`

	Identical bool `json:"identical"` // results bit-identical across modes
}

type benchSkipReport struct {
	Schema     string `json:"schema"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Warmup  uint64 `json:"warmup_insts"`
	Measure uint64 `json:"measure_insts"`

	Entries        []benchSkipEntry `json:"entries"`
	GeomeanSpeedup float64          `json:"geomean_speedup"`
}

// benchSkipSet crosses the memory-bound workloads with the paper's two
// anchor machines, so the gate covers both the baseline cycle loop and the
// PUBS dispatch/select paths under skipping.
func benchSkipSet() []struct {
	workload string
	machine  string
} {
	var set []struct {
		workload string
		machine  string
	}
	for _, wl := range []string{"sparse", "treewalk", "quantsim", "bfs"} {
		for _, m := range []string{"base", "pubs"} {
			set = append(set, struct {
				workload string
				machine  string
			}{wl, m})
		}
	}
	return set
}

// runSkipOnce runs one (workload, machine) cell contiguously in the given
// mode. No Runner, no memoization: the benchmark times the bare pipeline.
func runSkipOnce(workload, machine string, poll bool) (pubsim.Result, error) {
	cfg, err := pubsim.MachineConfig(machine)
	if err != nil {
		return pubsim.Result{}, err
	}
	cfg.NoIdleSkip = poll
	return pubsim.Run(cfg, workload, skipWarmup, skipMeasure)
}

// runBenchSkipReport measures every cell both ways and verifies
// bit-identity between the modes.
func runBenchSkipReport() (*benchSkipReport, error) {
	rep := &benchSkipReport{
		Schema: "pubsim-bench-skip/1",
		GoOS:   runtime.GOOS, GoArch: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Warmup:     skipWarmup,
		Measure:    skipMeasure,
	}
	for _, bc := range benchSkipSet() {
		name := bc.workload + "-" + bc.machine
		// Correctness first: both modes must produce identical Results.
		pollRes, err := runSkipOnce(bc.workload, bc.machine, true)
		if err != nil {
			return nil, fmt.Errorf("poll %s: %w", name, err)
		}
		skipRes, err := runSkipOnce(bc.workload, bc.machine, false)
		if err != nil {
			return nil, fmt.Errorf("skip %s: %w", name, err)
		}
		identical := reflect.DeepEqual(pollRes, skipRes)

		var runErr error
		poll := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runSkipOnce(bc.workload, bc.machine, true); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		skip := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runSkipOnce(bc.workload, bc.machine, false); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}

		pollNs, skipNs := poll.NsPerOp(), skip.NsPerOp()
		if pollNs <= 0 {
			pollNs = 1
		}
		if skipNs <= 0 {
			skipNs = 1
		}
		e := benchSkipEntry{
			Name: name, Workload: bc.workload, Machine: bc.machine,
			PollNs: pollNs, SkipNs: skipNs,
			Speedup:   float64(pollNs) / float64(skipNs),
			PollSPS:   1e9 / float64(pollNs),
			SkipSPS:   1e9 / float64(skipNs),
			Identical: identical,
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr,
			"bench-skip %-18s poll %7.1f ms  skip %7.1f ms  speedup %.2fx  identical=%v\n",
			name, float64(pollNs)/1e6, float64(skipNs)/1e6, e.Speedup, identical)
	}
	var logSum float64
	for _, e := range rep.Entries {
		logSum += math.Log(e.Speedup)
	}
	rep.GeomeanSpeedup = math.Exp(logSum / float64(len(rep.Entries)))
	return rep, nil
}

func loadBenchSkipReport(path string) (*benchSkipReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchSkipReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench-skip baseline %s: %w", path, err)
	}
	return &rep, nil
}

// compareBenchSkipReports gates the skip path: every entry bit-identical,
// geomean speedup above the hard floor, and within the tolerance of the
// committed baseline.
func compareBenchSkipReports(base, cur *benchSkipReport) []string {
	var regressions []string
	for _, e := range cur.Entries {
		if !e.Identical {
			regressions = append(regressions, fmt.Sprintf(
				"%s: idle-skip results diverged from the poll-mode reference", e.Name))
		}
	}
	if cur.GeomeanSpeedup < minSkipSpeedup {
		regressions = append(regressions, fmt.Sprintf(
			"geomean speedup %.2fx is below the %.2fx floor — idle skipping has regressed into overhead",
			cur.GeomeanSpeedup, float64(minSkipSpeedup)))
	}
	if base != nil && base.GeomeanSpeedup > 0 &&
		cur.GeomeanSpeedup < base.GeomeanSpeedup*(1-benchTolerance) {
		regressions = append(regressions, fmt.Sprintf(
			"geomean speedup %.2fx is a %.0f%% regression from baseline %.2fx",
			cur.GeomeanSpeedup,
			(1-cur.GeomeanSpeedup/base.GeomeanSpeedup)*100,
			base.GeomeanSpeedup))
	}
	return regressions
}

// runBenchSkipMode executes the -bench-skip-out / -bench-skip-baseline
// flow; it returns a process exit code.
func runBenchSkipMode(outPath, baselinePath string) int {
	rep, err := runBenchSkipReport()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-skip report written to %s (geomean speedup %.2fx)\n",
			outPath, rep.GeomeanSpeedup)
	}
	var base *benchSkipReport
	if baselinePath != "" {
		if base, err = loadBenchSkipReport(baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if regs := compareBenchSkipReports(base, rep); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "experiments: bench-skip regression: %s\n", r)
		}
		return 1
	}
	if base != nil {
		fmt.Fprintf(os.Stderr, "bench-skip within %.0f%% of baseline %s (geomean %.2fx vs %.2fx)\n",
			benchTolerance*100, baselinePath, rep.GeomeanSpeedup, base.GeomeanSpeedup)
	}
	return 0
}
