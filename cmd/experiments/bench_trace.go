package main

// Trace-replay benchmark harness: -bench-trace-out measures a five-machine
// sampled sweep two ways — live decode (every window re-decodes its
// instructions through a functional emulator into a freshly constructed
// pipeline) and trace replay (the window store's predecoded traces replay
// window-major through pooled, Reset simulators) — verifies the two merge
// to bit-identical results, and writes a machine-readable report
// (BENCH_5.json schema). -bench-trace-baseline gates regressions: the
// replay path must stay at least minTraceSpeedup faster than live decode,
// and within tolerance of the committed baseline's speedup.
//
// Both paths share the same window store geometry, so the fast-forward is
// paid once per workload in either mode: the speedup isolates predecoded
// replay + simulator pooling + window-major scheduling, not snapshot
// sharing (BENCH_4 already gates that).

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"testing"

	pubsim "repro"
)

// traceGeometry is the fixed sweep shape: many short windows, so the
// per-window fixed costs the replay path eliminates (pipeline
// construction, live functional re-decode) are a large share of each
// cell — the regime batched replay is built for.
const (
	traceWindows     = 24
	traceFastForward = 50_000
	traceWarmup      = 300
	traceMeasure     = 150
)

// minTraceSpeedup is the hard floor on the geomean replay-vs-live speedup:
// below this the predecode/replay machinery has regressed into overhead,
// baseline or not.
const minTraceSpeedup = 1.25

type benchTraceEntry struct {
	Name     string   `json:"name"` // workload-sweep
	Workload string   `json:"workload"`
	Machines []string `json:"machines"`

	LiveNs   int64   `json:"live_ns"`  // live-decode reference sweep
	TraceNs  int64   `json:"trace_ns"` // predecoded window-major sweep
	Speedup  float64 `json:"speedup"`  // LiveNs / TraceNs
	LiveSPS  float64 `json:"live_sims_per_sec"`
	TraceSPS float64 `json:"trace_sims_per_sec"`

	SnapshotPlans uint64 `json:"snapshot_plans"` // fast-forward passes the replay sweep paid
	SnapshotHits  uint64 `json:"snapshot_hits"`  // cells answered from resident plans
	Identical     bool   `json:"identical"`      // merged results bit-identical across paths
}

type benchTraceReport struct {
	Schema     string `json:"schema"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Windows     int    `json:"windows"`
	FastForward uint64 `json:"fast_forward_insts"`
	Warmup      uint64 `json:"warmup_insts"`
	Measure     uint64 `json:"measure_insts"`

	Entries        []benchTraceEntry `json:"entries"`
	GeomeanSpeedup float64           `json:"geomean_speedup"`
}

// benchTraceSet mirrors the bench-sampling sweeps — one per workload class
// — over the paper's typical five-machine comparison width.
func benchTraceSet() []struct {
	name     string
	workload string
	machines []string
} {
	machines := []string{"base", "pubs", "age", "pubs+age", "pubs-large"}
	return []struct {
		name     string
		workload string
		machines []string
	}{
		{"chess-sweep", "chess", machines},
		{"parser-sweep", "parser", machines},
		{"goplay-sweep", "goplay", machines},
	}
}

// traceOptions builds the two modes' runner options; they differ only in
// result-neutral scheduling fields, so both runners resolve identical
// content keys.
func traceOptions(live bool) pubsim.Options {
	o := pubsim.Options{
		Warmup: traceWarmup, Measure: traceMeasure,
		SampleWindows: traceWindows, SampleFastForward: traceFastForward,
		ParallelWindows: -1, // GOMAXPROCS
	}
	if live {
		o.LiveDecode = true
	} else {
		o.WindowMajor = true
	}
	return o
}

func traceConfigs(machines []string) ([]pubsim.Config, error) {
	cfgs := make([]pubsim.Config, 0, len(machines))
	for _, m := range machines {
		cfg, err := pubsim.MachineConfig(m)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}

// runLiveDecodeCampaign is the reference: cell by cell, each window
// re-decoded live into a fresh pipeline — the cost model of sampling
// before predecoded traces.
func runLiveDecodeCampaign(workload string, machines []string) ([]pubsim.Result, error) {
	r := pubsim.NewRunner(traceOptions(true))
	cfgs, err := traceConfigs(machines)
	if err != nil {
		return nil, err
	}
	out := make([]pubsim.Result, 0, len(cfgs))
	for _, cfg := range cfgs {
		res, err := r.RunContext(context.Background(), cfg, workload)
		if err != nil {
			return nil, fmt.Errorf("live %s/%s: %w", cfg.Name, workload, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// runTraceReplayCampaign runs the same sweep window-major: one predecoded
// plan, every machine replaying each window while it is hot, one pooled
// simulator per machine.
func runTraceReplayCampaign(workload string, machines []string) ([]pubsim.Result, pubsim.SamplingStoreStats, error) {
	r := pubsim.NewRunner(traceOptions(false))
	cfgs, err := traceConfigs(machines)
	if err != nil {
		return nil, pubsim.SamplingStoreStats{}, err
	}
	res, err := r.RunSweepContext(context.Background(), cfgs, workload)
	if err != nil {
		return nil, pubsim.SamplingStoreStats{}, fmt.Errorf("trace %s: %w", workload, err)
	}
	return res, r.SnapshotStats(), nil
}

// runBenchTraceReport measures every sweep both ways and verifies
// bit-identity between the paths.
func runBenchTraceReport() (*benchTraceReport, error) {
	rep := &benchTraceReport{
		Schema: "pubsim-bench-trace/1",
		GoOS:   runtime.GOOS, GoArch: runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Windows:     traceWindows,
		FastForward: traceFastForward,
		Warmup:      traceWarmup,
		Measure:     traceMeasure,
	}
	for _, bc := range benchTraceSet() {
		// Correctness first: both paths must merge to identical results.
		liveRes, err := runLiveDecodeCampaign(bc.workload, bc.machines)
		if err != nil {
			return nil, err
		}
		traceRes, snaps, err := runTraceReplayCampaign(bc.workload, bc.machines)
		if err != nil {
			return nil, err
		}
		identical := reflect.DeepEqual(liveRes, traceRes)

		var runErr error
		live := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh runner per iteration (inside the campaign
				// helpers): memoization would otherwise turn every
				// iteration after the first into cache hits.
				if _, err := runLiveDecodeCampaign(bc.workload, bc.machines); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		trace := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := runTraceReplayCampaign(bc.workload, bc.machines); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}

		liveNs, traceNs := live.NsPerOp(), trace.NsPerOp()
		if liveNs <= 0 {
			liveNs = 1
		}
		if traceNs <= 0 {
			traceNs = 1
		}
		sims := float64(len(bc.machines))
		e := benchTraceEntry{
			Name: bc.name, Workload: bc.workload, Machines: bc.machines,
			LiveNs: liveNs, TraceNs: traceNs,
			Speedup:       float64(liveNs) / float64(traceNs),
			LiveSPS:       sims * 1e9 / float64(liveNs),
			TraceSPS:      sims * 1e9 / float64(traceNs),
			SnapshotPlans: snaps.Plans, SnapshotHits: snaps.Hits,
			Identical: identical,
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr,
			"bench-trace %-14s live %7.0f ms  trace %7.0f ms  speedup %.2fx  plans %d hits %d  identical=%v\n",
			bc.name, float64(liveNs)/1e6, float64(traceNs)/1e6, e.Speedup,
			snaps.Plans, snaps.Hits, identical)
	}
	var logSum float64
	for _, e := range rep.Entries {
		logSum += math.Log(e.Speedup)
	}
	rep.GeomeanSpeedup = math.Exp(logSum / float64(len(rep.Entries)))
	return rep, nil
}

func loadBenchTraceReport(path string) (*benchTraceReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchTraceReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench-trace baseline %s: %w", path, err)
	}
	return &rep, nil
}

// compareBenchTraceReports gates the replay path: every entry
// bit-identical, geomean speedup above the hard floor, and within the
// tolerance of the committed baseline.
func compareBenchTraceReports(base, cur *benchTraceReport) []string {
	var regressions []string
	for _, e := range cur.Entries {
		if !e.Identical {
			regressions = append(regressions, fmt.Sprintf(
				"%s: trace-replay results diverged from the live-decode reference", e.Name))
		}
	}
	if cur.GeomeanSpeedup < minTraceSpeedup {
		regressions = append(regressions, fmt.Sprintf(
			"geomean speedup %.2fx is below the %.2fx floor — predecoded replay has regressed into overhead",
			cur.GeomeanSpeedup, float64(minTraceSpeedup)))
	}
	if base != nil && base.GeomeanSpeedup > 0 &&
		cur.GeomeanSpeedup < base.GeomeanSpeedup*(1-benchTolerance) {
		regressions = append(regressions, fmt.Sprintf(
			"geomean speedup %.2fx is a %.0f%% regression from baseline %.2fx",
			cur.GeomeanSpeedup,
			(1-cur.GeomeanSpeedup/base.GeomeanSpeedup)*100,
			base.GeomeanSpeedup))
	}
	return regressions
}

// runBenchTraceMode executes the -bench-trace-out / -bench-trace-baseline
// flow; it returns a process exit code.
func runBenchTraceMode(outPath, baselinePath string) int {
	rep, err := runBenchTraceReport()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-trace report written to %s (geomean speedup %.2fx)\n",
			outPath, rep.GeomeanSpeedup)
	}
	var base *benchTraceReport
	if baselinePath != "" {
		if base, err = loadBenchTraceReport(baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if regs := compareBenchTraceReports(base, rep); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "experiments: bench-trace regression: %s\n", r)
		}
		return 1
	}
	if base != nil {
		fmt.Fprintf(os.Stderr, "bench-trace within %.0f%% of baseline %s (geomean %.2fx vs %.2fx)\n",
			benchTolerance*100, baselinePath, rep.GeomeanSpeedup, base.GeomeanSpeedup)
	}
	return 0
}
