package main

// Quasi-null burst benchmark harness (BENCH_8): -bench-burst-out measures
// the phase-2 burst integration (DESIGN.md §14 phase 2) against phase-1
// skipping (Config.NoBurstSkip — null-span skipping only, no burst
// classes) on two workload groups:
//
//   - burst: purpose-built fetch-bound and commit-bound programs whose
//     cycles are dominated by the two quasi-null shapes — a backend wedged
//     on data misses while fetch drains I-lines (fetch-drain), and a
//     starved front end while a completed ROB run retires (commit-run).
//     Gated by minBurstSpeedup on the group geomean: below that the burst
//     detectors have stopped earning their per-cycle checks.
//
//   - membound: the BENCH_6 memory-bound set (sparse, treewalk, quantsim,
//     bfs × base, pubs). Those spans are mostly fully null, so phase 2 has
//     little to integrate — the group gates that the burst checks cost
//     nothing where they do not fire (no regression beyond tolerance).
//
// Every cell is verified bit-identical across phase 2, phase 1, and the
// report records per-class burst telemetry so a speedup is attributable to
// bursts that actually fired. -bench-burst-baseline gates against the
// committed BENCH_8.json; on a baseline failure the harness re-measures
// once and prints the second run, so a CI failure shows immediately
// whether the regression reproduces or was machine noise (the BENCH_2
// incident: a one-off ~26% swing was indistinguishable from a real
// regression in the logs).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"testing"

	pubsim "repro"
)

const (
	burstWarmup  = 20_000
	burstMeasure = 80_000
)

// minBurstSpeedup is the hard floor on the burst-group geomean phase-2 vs
// phase-1 speedup.
const minBurstSpeedup = 1.3

type benchBurstEntry struct {
	Name  string `json:"name"`
	Group string `json:"group"` // burst | membound

	Phase1Ns int64   `json:"phase1_ns"` // NoBurstSkip (null-span skipping only)
	Phase2Ns int64   `json:"phase2_ns"` // bursts + null-span skipping
	Speedup  float64 `json:"speedup"`   // Phase1Ns / Phase2Ns

	Identical bool `json:"identical"` // results bit-identical across phases

	// Per-class burst coverage of the phase-2 run, so the speedup is
	// attributable: a burst entry with zero spans is a broken shape.
	FetchBurstSpans   uint64 `json:"fetch_burst_spans"`
	FetchBurstCycles  uint64 `json:"fetch_burst_cycles"`
	CommitBurstSpans  uint64 `json:"commit_burst_spans"`
	CommitBurstCycles uint64 `json:"commit_burst_cycles"`
}

type benchBurstReport struct {
	Schema     string `json:"schema"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Warmup  uint64 `json:"warmup_insts"`
	Measure uint64 `json:"measure_insts"`

	Entries []benchBurstEntry `json:"entries"`

	GeomeanBurstSpeedup    float64 `json:"geomean_burst_speedup"`
	GeomeanMemboundSpeedup float64 `json:"geomean_membound_speedup"`
}

// burstBenchCase is one measured cell: a config (already shaped) plus
// either a named workload or a custom program.
type burstBenchCase struct {
	name  string
	group string
	cfg   pubsim.Config
	wl    string          // workload name, or
	prog  *pubsim.Program // custom program
}

// benchChaseData emits a single-cycle permutation (Sattolo) over all words
// and returns its base address. A chase over raw scrambled *values* settles
// into a ~√N orbit that fits in cache; the permutation cycle visits every
// word, so each link is a genuine memory-latency miss.
func benchChaseData(b *pubsim.Builder, words int) uint64 {
	vals := make([]uint64, words)
	for i := range vals {
		vals[i] = uint64(i)
	}
	x := uint64(0x1905E6E5D)
	for i := words - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i)) // j < i: Sattolo keeps one big cycle
		vals[i], vals[j] = vals[j], vals[i]
	}
	return b.Words(vals...)
}

// fetchBoundBench wedges the backend on a data-dependent load chase deep
// into memory while a large fan-out block *dependent on the chase* packs
// the issue queue with non-ready uops: dispatch stalls on the full queue,
// and fetch alone drains I-lines — the fetch-drain shape. The dependence
// is what makes the shape expensive to poll: every phase-1 cycle of the
// span re-evaluates a zero-grant select over a full queue, exactly the
// work the burst proves frozen.
func fetchBoundBench() *pubsim.Program {
	b := pubsim.NewProgram("bench-fetch-bound")
	const words = 1 << 21 // 16 MB permutation: links miss the 2 MB L2
	base := benchChaseData(b, words)

	ctr, dbase, p, addr := pubsim.R(2), pubsim.R(3), pubsim.R(4), pubsim.R(5)
	alu := []pubsim.Reg{pubsim.R(6), pubsim.R(7), pubsim.R(8), pubsim.R(9)}
	b.Li(ctr, 1<<40)
	b.Li(dbase, int64(base))
	b.Li(p, 1)
	for i, r := range alu {
		b.Li(r, int64(3*i+1))
	}
	b.Label("loop")
	// One serialized full-latency chase link per iteration: the loaded
	// word is the next index in the permutation cycle.
	b.Shli(addr, p, 3)
	b.Add(addr, addr, dbase)
	b.Ld(p, addr, 0)
	// Fan-out block: every op waits on the chase value, so the issue
	// queue fills with non-ready work and stays full for the whole miss.
	for i := 0; i < 400; i++ {
		r := alu[i%len(alu)]
		b.Add(r, r, p)
	}
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, pubsim.RZero, "loop")
	b.Halt()
	return b.MustBuild()
}

// commitBoundBench builds the commit-run regime: a 400-instruction
// *independent* run completes behind a chase miss at the ROB head, and
// when the miss returns the run retires in one long commit-only stretch —
// the issue queue is packed full with a younger fan-out block parked on a
// *second* chase link that is still in flight, so dispatch is pinned on
// the one structural stall commit cannot relieve (only issue grants free
// queue slots, and a parked queue grants nothing) and the full fetch
// queue behind it keeps fetch quiescent. Every cycle of the run is a
// commit-only poll that phase 1 pays a full zero-grant select over the
// parked queue for; phase 2 retires the run as a single commit-run burst.
func commitBoundBench() *pubsim.Program {
	b := pubsim.NewProgram("bench-commit-bound")
	const words = 1 << 21
	base := benchChaseData(b, words)

	ctr, dbase, p, addr := pubsim.R(2), pubsim.R(3), pubsim.R(4), pubsim.R(5)
	alu := []pubsim.Reg{pubsim.R(6), pubsim.R(7), pubsim.R(8), pubsim.R(9)}
	b.Li(ctr, 1<<40)
	b.Li(dbase, int64(base))
	b.Li(p, 1)
	for i, r := range alu {
		b.Li(r, int64(i+1))
	}
	b.Label("loop")
	// Head blocker: chase link 1 holds retirement while the run completes.
	b.Shli(addr, p, 3)
	b.Add(addr, addr, dbase)
	b.Ld(p, addr, 0)
	// The run: independent Adds, complete long before the link returns.
	for i := 0; i < 1600; i++ {
		r := alu[i%len(alu)]
		b.Add(r, r, alu[(i+1)%len(alu)])
	}
	// Chase link 2 starts when link 1 lands; the fan-out parks on it and
	// overfills the 256-entry issue queue, keeping dispatch queue-full-
	// stalled (and fetch queue-full behind it) while the run retires
	// under link 2's miss.
	b.Shli(addr, p, 3)
	b.Add(addr, addr, dbase)
	b.Ld(p, addr, 0)
	for i := 0; i < 530; i++ {
		r := alu[i%len(alu)]
		b.Add(r, r, p)
	}
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, pubsim.RZero, "loop")
	b.Halt()
	return b.MustBuild()
}

// benchBurstSet builds the measured cells. Shaped configs are part of the
// benchmark's definition: the burst group exists to measure the regime the
// detectors target, not an average workload.
func benchBurstSet() ([]burstBenchCase, error) {
	var cases []burstBenchCase

	tinyL1I := pubsim.CacheConfig{Name: "L1I", Sets: 1, Ways: 2, LineBytes: 64, HitLat: 0, MSHRs: 2}
	for _, m := range []string{"base", "pubs"} {
		cfg, err := pubsim.MachineConfig(m)
		if err != nil {
			return nil, err
		}
		// Fetch-bound: the chase misses to memory (its image outsizes the
		// L2) and wedges the backend for 1000 cycles per link while the
		// fan-out packs a 256-entry issue queue with non-ready work; a
		// tiny L1I makes the runahead stage line by line, and each fresh
		// line's staging cycles land before its head matures — fetch-only
		// polls that phase 1 pays a full zero-grant select over the
		// parked queue for. The window (ROB, register file) is sized so
		// the queue is what finally caps the runahead, four ALUs shorten
		// the active drain when the chase returns.
		fc := cfg
		fc.Name = cfg.Name + "-fetchbound"
		fc.MemLatency = 1_000
		fc.L1I = tinyL1I
		fc.FrontEndDepth = 20
		fc.ROBSize = 448
		fc.IQSize = 384
		fc.PhysIntRegs = 512
		fc.NumIntALU = 4
		fc.Prefetch = false
		cases = append(cases, burstBenchCase{
			name: "fetchbound-" + m, group: "burst", cfg: fc, prog: fetchBoundBench(),
		})

		// Commit-bound: the loop stays L1I-resident (fast supply, so the
		// 1600-wide run is fully completed and ROB-deep when the head
		// link lands) while the data chase misses to memory. The window
		// is sized so the parked fan-out is what binds: the 270-entry
		// block overfills the 256-entry issue queue before the ROB or the
		// register file run out, pinning dispatch on the queue-full stall
		// for the whole run.
		cc := cfg
		cc.Name = cfg.Name + "-commitbound"
		cc.MemLatency = 1_000
		cc.ROBSize = 2560
		cc.IQSize = 512
		cc.LSQSize = 128
		cc.PhysIntRegs = 2688
		cc.NumIntALU = 4
		cc.Prefetch = false
		cases = append(cases, burstBenchCase{
			name: "commitbound-" + m, group: "burst", cfg: cc, prog: commitBoundBench(),
		})
	}

	// Membound guard group: the BENCH_6 set on stock machines.
	for _, bc := range benchSkipSet() {
		cfg, err := pubsim.MachineConfig(bc.machine)
		if err != nil {
			return nil, err
		}
		cases = append(cases, burstBenchCase{
			name: bc.workload + "-" + bc.machine, group: "membound", cfg: cfg, wl: bc.workload,
		})
	}

	// PUBSIM_BENCH_BURST_GROUP restricts the run to one group — an
	// iteration affordance for tuning shapes; the committed BENCH_8.json
	// is always a full-set run (an empty group's geomean reads 0 and
	// fails the gates, so a filtered report cannot pass as a baseline).
	if g := os.Getenv("PUBSIM_BENCH_BURST_GROUP"); g != "" {
		var kept []burstBenchCase
		for _, c := range cases {
			if c.group == g {
				kept = append(kept, c)
			}
		}
		cases = kept
	}
	return cases, nil
}

// runBurstOnce runs one cell in the given phase.
func runBurstOnce(c burstBenchCase, phase1 bool) (pubsim.Result, error) {
	cfg := c.cfg
	cfg.NoBurstSkip = phase1
	if c.prog != nil {
		return pubsim.RunProgram(cfg, c.prog, burstWarmup, burstMeasure)
	}
	return pubsim.Run(cfg, c.wl, burstWarmup, burstMeasure)
}

func runBenchBurstReport() (*benchBurstReport, error) {
	rep := &benchBurstReport{
		Schema: "pubsim-bench-burst/1",
		GoOS:   runtime.GOOS, GoArch: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Warmup:     burstWarmup,
		Measure:    burstMeasure,
	}
	cases, err := benchBurstSet()
	if err != nil {
		return nil, err
	}
	for _, c := range cases {
		// Correctness first: both phases must produce identical Results,
		// and the telemetry delta attributes the phase-2 run's coverage.
		p1Res, err := runBurstOnce(c, true)
		if err != nil {
			return nil, fmt.Errorf("phase1 %s: %w", c.name, err)
		}
		before := pubsim.GlobalSkipTelemetry()
		p2Res, err := runBurstOnce(c, false)
		if err != nil {
			return nil, fmt.Errorf("phase2 %s: %w", c.name, err)
		}
		after := pubsim.GlobalSkipTelemetry()
		identical := reflect.DeepEqual(p1Res, p2Res)

		var runErr error
		bench := func(phase1 bool) int64 {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := runBurstOnce(c, phase1); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			})
			ns := r.NsPerOp()
			if ns <= 0 {
				ns = 1
			}
			return ns
		}
		p1Ns := bench(true)
		if runErr != nil {
			return nil, runErr
		}
		p2Ns := bench(false)
		if runErr != nil {
			return nil, runErr
		}

		e := benchBurstEntry{
			Name: c.name, Group: c.group,
			Phase1Ns: p1Ns, Phase2Ns: p2Ns,
			Speedup:           float64(p1Ns) / float64(p2Ns),
			Identical:         identical,
			FetchBurstSpans:   after.FetchBurstSpans - before.FetchBurstSpans,
			FetchBurstCycles:  after.FetchBurstCycles - before.FetchBurstCycles,
			CommitBurstSpans:  after.CommitBurstSpans - before.CommitBurstSpans,
			CommitBurstCycles: after.CommitBurstCycles - before.CommitBurstCycles,
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr,
			"bench-burst %-18s %-8s p1 %7.1f ms  p2 %7.1f ms  speedup %.2fx  bursts f=%d/%d c=%d/%d  identical=%v\n",
			c.name, c.group, float64(p1Ns)/1e6, float64(p2Ns)/1e6, e.Speedup,
			e.FetchBurstSpans, e.FetchBurstCycles, e.CommitBurstSpans, e.CommitBurstCycles, identical)
	}

	geomean := func(group string) float64 {
		var logSum float64
		n := 0
		for _, e := range rep.Entries {
			if e.Group == group {
				logSum += math.Log(e.Speedup)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return math.Exp(logSum / float64(n))
	}
	rep.GeomeanBurstSpeedup = geomean("burst")
	rep.GeomeanMemboundSpeedup = geomean("membound")
	return rep, nil
}

func loadBenchBurstReport(path string) (*benchBurstReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchBurstReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench-burst baseline %s: %w", path, err)
	}
	return &rep, nil
}

// compareBenchBurstReports gates the burst path: every entry bit-identical,
// every burst entry actually bursting, the burst geomean above the hard
// floor and within tolerance of the baseline, and the membound geomean not
// regressed (the burst checks must be free where they do not fire).
func compareBenchBurstReports(base, cur *benchBurstReport) []string {
	var regressions []string
	for _, e := range cur.Entries {
		if !e.Identical {
			regressions = append(regressions, fmt.Sprintf(
				"%s: phase-2 results diverged from the phase-1 reference", e.Name))
		}
		if e.Group == "burst" && e.FetchBurstSpans == 0 && e.CommitBurstSpans == 0 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: no burst ever fired — the shape no longer exercises the detectors", e.Name))
		}
	}
	if cur.GeomeanBurstSpeedup < minBurstSpeedup {
		regressions = append(regressions, fmt.Sprintf(
			"burst geomean speedup %.2fx is below the %.2fx floor — burst integration has regressed into overhead",
			cur.GeomeanBurstSpeedup, float64(minBurstSpeedup)))
	}
	if cur.GeomeanMemboundSpeedup < 1-benchTolerance {
		regressions = append(regressions, fmt.Sprintf(
			"membound geomean %.2fx: burst checks slow the null-span regime beyond the %.0f%% tolerance",
			cur.GeomeanMemboundSpeedup, benchTolerance*100))
	}
	if base != nil && base.GeomeanBurstSpeedup > 0 &&
		cur.GeomeanBurstSpeedup < base.GeomeanBurstSpeedup*(1-benchTolerance) {
		regressions = append(regressions, fmt.Sprintf(
			"burst geomean speedup %.2fx is a %.0f%% regression from baseline %.2fx",
			cur.GeomeanBurstSpeedup,
			(1-cur.GeomeanBurstSpeedup/base.GeomeanBurstSpeedup)*100,
			base.GeomeanBurstSpeedup))
	}
	return regressions
}

// runBenchBurstMode executes the -bench-burst-out / -bench-burst-baseline
// flow; it returns a process exit code. On a gate failure the whole set is
// re-measured once and the second run printed: a regression that
// reproduces is real; one that vanishes was machine noise — the
// distinction the BENCH_2 incident logs could not make.
func runBenchBurstMode(outPath, baselinePath string) int {
	rep, err := runBenchBurstReport()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-burst report written to %s (burst geomean %.2fx, membound %.2fx)\n",
			outPath, rep.GeomeanBurstSpeedup, rep.GeomeanMemboundSpeedup)
	}
	var base *benchBurstReport
	if baselinePath != "" {
		if base, err = loadBenchBurstReport(baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	regs := compareBenchBurstReports(base, rep)
	if len(regs) == 0 {
		if base != nil {
			fmt.Fprintf(os.Stderr, "bench-burst within %.0f%% of baseline %s (burst geomean %.2fx vs %.2fx)\n",
				benchTolerance*100, baselinePath, rep.GeomeanBurstSpeedup, base.GeomeanBurstSpeedup)
		}
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "experiments: bench-burst regression: %s\n", r)
	}
	fmt.Fprintf(os.Stderr, "experiments: re-measuring once to separate a real regression from machine noise\n")
	rep2, err := runBenchBurstReport()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: re-measurement failed: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr,
		"experiments: re-measurement: burst geomean %.2fx (first run %.2fx), membound %.2fx (first run %.2fx)\n",
		rep2.GeomeanBurstSpeedup, rep.GeomeanBurstSpeedup,
		rep2.GeomeanMemboundSpeedup, rep.GeomeanMemboundSpeedup)
	if regs2 := compareBenchBurstReports(base, rep2); len(regs2) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: re-measurement passes all gates — first run was likely noise; still failing the job so the flake is visible\n")
	} else {
		for _, r := range regs2 {
			fmt.Fprintf(os.Stderr, "experiments: re-measurement confirms: %s\n", r)
		}
	}
	return 1
}
