// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all                # every figure, full windows
//	experiments -fig 8,11 -quick    # selected figures, reduced windows
//	experiments -all -markdown      # EXPERIMENTS.md-style output
//
// Figure ids: 8, 9, 10, 11, 12, 13, 15, 16, t3 (Table III), and the
// ablations aiq (IQ kinds), apred (predictors), atab (table organisation).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pubsim "repro"
)

type experiment struct {
	id   string
	desc string
	run  func(*pubsim.Runner) (string, error)
}

var showCharts bool

type charter interface{ Chart() string }

func wrap[T interface{ Table() string }](f func(*pubsim.Runner) (T, error)) func(*pubsim.Runner) (string, error) {
	return func(r *pubsim.Runner) (string, error) {
		res, err := f(r)
		var ce *pubsim.CampaignError
		if err != nil && !errors.As(err, &ce) {
			return "", err
		}
		// A campaign error still carries a (possibly partial) figure —
		// render it and return the error alongside.
		out := res.Table()
		if showCharts {
			if c, ok := any(res).(charter); ok {
				out += "\n" + c.Chart()
			}
		}
		return out, err
	}
}

var all = []experiment{
	{"wchar", "Workload characterisation (base machine + slice profile)", wrap(pubsim.Characterize)},
	{"8", "Speedup of PUBS over the base (Fig. 8)", wrap(pubsim.Fig8)},
	{"9", "Speedup vs branch MPKI correlation (Fig. 9)", wrap(pubsim.Fig9)},
	{"10", "Priority-entry sensitivity (Fig. 10)", wrap(pubsim.Fig10)},
	{"11", "Confidence-counter-width sensitivity (Fig. 11)", wrap(pubsim.Fig11)},
	{"12", "Mode-switch effectiveness (Fig. 12)", wrap(pubsim.Fig12)},
	{"t3", "Hardware cost (Table III)", func(*pubsim.Runner) (string, error) { return pubsim.Table3().Table(), nil }},
	{"13", "Enlarged-predictor comparison (Fig. 13)", wrap(pubsim.Fig13)},
	{"15", "Age-matrix comparison (Fig. 15)", wrap(pubsim.Fig15)},
	{"16", "Processor-size scaling (Fig. 16)", wrap(pubsim.Fig16)},
	{"aiq", "Ablation: IQ organisations", wrap(pubsim.AblationIQKinds)},
	{"xdist", "Extension: distributed IQ (§III-C2)", wrap(pubsim.ExtDistributed)},
	{"xflex", "Extension: idealized flexible select (§III-C1)", wrap(pubsim.ExtFlexible)},
	{"xnrg", "Extension: energy per instruction (activity model)", wrap(pubsim.ExtEnergy)},
	{"xwp", "Extension: wrong-path pollution of the PUBS tables", wrap(pubsim.ExtWrongPath)},
	{"apred", "Ablation: alternative predictors", wrap(pubsim.AblationPredictors)},
	{"atab", "Ablation: PUBS table organisation", wrap(pubsim.AblationTables)},
}

func main() {
	var (
		figs     = flag.String("fig", "", "comma-separated experiment ids (default: none)")
		runAll   = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "reduced simulation windows")
		warmup   = flag.Uint64("warmup", 0, "override warm-up instructions")
		measure  = flag.Uint64("insts", 0, "override measured instructions")
		par      = flag.Int("parallel", 0, "concurrent simulations (default GOMAXPROCS)")
		markdown = flag.Bool("markdown", false, "wrap output in Markdown sections/code fences")
		charts   = flag.Bool("charts", false, "append terminal charts to figures that have them")
		ckptDir  = flag.String("checkpoint", "", "directory for on-disk run checkpoints (resumable campaigns)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per simulation (0 = none)")
		retries  = flag.Int("retries", 0, "extra attempts for transient per-run failures")
		benchOut = flag.String("bench-out", "", "run the benchmark set and write a JSON report (BENCH_2.json schema) to this file")
		benchCmp = flag.String("bench-baseline", "", "compare the benchmark run against this baseline report; exit 1 on >20% sims/sec regression")
		sampWin  = flag.Int("sample-windows", 0, "run experiments with sampled simulation: N measurement windows per run (0 = contiguous)")
		sampFF   = flag.Uint64("sample-ff", 1_000_000, "functionally fast-forwarded instructions between sampled windows")
		parWin   = flag.Int("parallel-windows", 0, "sampled windows simulated concurrently per run (0/1 = serial, -1 = GOMAXPROCS)")
		bsOut    = flag.String("bench-sampling-out", "", "run the parallel-sampling campaign benchmark and write a JSON report (BENCH_4.json schema) to this file")
		bsCmp    = flag.String("bench-sampling-baseline", "", "compare the sampling benchmark against this baseline; exit 1 on lost bit-identity or speedup regression")
		btOut    = flag.String("bench-trace-out", "", "run the trace-replay sweep benchmark and write a JSON report (BENCH_5.json schema) to this file")
		btCmp    = flag.String("bench-trace-baseline", "", "compare the trace-replay benchmark against this baseline; exit 1 on lost bit-identity or speedup regression")
		winMajor = flag.Bool("window-major", false, "sampled multi-machine sweeps replay each predecoded window across all machines while hot; never changes results")
		liveDec  = flag.Bool("live-decode", false, "sampled windows re-decode through a live functional emulator instead of the shared predecoded trace; slower, bit-identical")
		traceBud = flag.Int64("trace-budget", 0, "byte budget for resident window snapshots + predecoded traces, evicting whole plans LRU-first (0 = unbounded)")
		idleSkip = flag.Bool("idle-skip", true, "event-driven idle-cycle skipping in every simulation (bit-identical; -idle-skip=false polls every cycle)")
		skOut    = flag.String("bench-skip-out", "", "run the idle-skip benchmark and write a JSON report (BENCH_6.json schema) to this file")
		skCmp    = flag.String("bench-skip-baseline", "", "compare the idle-skip benchmark against this baseline; exit 1 on lost bit-identity or speedup regression")
		bbOut    = flag.String("bench-burst-out", "", "run the quasi-null burst benchmark and write a JSON report (BENCH_8.json schema) to this file")
		bbCmp    = flag.String("bench-burst-baseline", "", "compare the burst benchmark against this baseline; exit 1 on lost bit-identity or speedup regression (re-measures once on failure)")
	)
	flag.Parse()
	showCharts = *charts

	if *benchOut != "" || *benchCmp != "" {
		w, m := pubsim.QuickOptions().Warmup, pubsim.QuickOptions().Measure
		if *warmup > 0 {
			w = *warmup
		}
		if *measure > 0 {
			m = *measure
		}
		os.Exit(runBenchMode(w, m, *benchOut, *benchCmp))
	}
	if *bsOut != "" || *bsCmp != "" {
		os.Exit(runBenchSamplingMode(*bsOut, *bsCmp))
	}
	if *btOut != "" || *btCmp != "" {
		os.Exit(runBenchTraceMode(*btOut, *btCmp))
	}
	if *skOut != "" || *skCmp != "" {
		os.Exit(runBenchSkipMode(*skOut, *skCmp))
	}
	if *bbOut != "" || *bbCmp != "" {
		os.Exit(runBenchBurstMode(*bbOut, *bbCmp))
	}

	known := map[string]bool{}
	for _, e := range all {
		known[e.id] = true
	}
	want := map[string]bool{}
	if !*runAll {
		for _, id := range strings.Split(*figs, ",") {
			if id = strings.TrimSpace(id); id == "" {
				continue
			} else if !known[id] {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment id %q (ids: wchar 8 9 10 11 12 t3 13 15 16 aiq apred atab xdist xflex xnrg xwp)\n", id)
				os.Exit(2)
			} else {
				want[id] = true
			}
		}
		if len(want) == 0 {
			fmt.Fprintln(os.Stderr, "experiments: nothing to run; use -all or -fig (ids: wchar 8 9 10 11 12 t3 13 15 16 aiq apred atab xdist xflex xnrg xwp)")
			os.Exit(2)
		}
	}

	opts := pubsim.DefaultOptions()
	if *quick {
		opts = pubsim.QuickOptions()
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	opts.Parallelism = *par
	opts.Timeout = *timeout
	opts.Retries = *retries
	if *sampWin > 0 {
		opts.SampleWindows = *sampWin
		opts.SampleFastForward = *sampFF
		opts.ParallelWindows = *parWin
	}
	opts.WindowMajor = *winMajor
	opts.LiveDecode = *liveDec
	opts.TraceBudgetBytes = *traceBud
	opts.NoIdleSkip = !*idleSkip
	// SIGINT/SIGTERM cancel the campaign: binding the signal context to the
	// runner reaches every in-flight simulation (each stops within ~1K
	// cycles), and with -checkpoint the completed runs are already on disk,
	// so rerunning the same command resumes where the interrupt landed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := pubsim.NewRunner(opts).BindContext(ctx)
	if *ckptDir != "" {
		var err error
		if runner, err = runner.WithCheckpoint(*ckptDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	if *markdown {
		fmt.Printf("Simulation windows: %d warm-up + %d measured instructions per run.\n\n",
			runner.Options().Warmup, runner.Options().Measure)
	}
	// A failed experiment no longer aborts the campaign: the error (and any
	// partial figure) is reported and the remaining experiments still run.
	var failed []string
	for _, e := range all {
		if !*runAll && !want[e.id] {
			continue
		}
		start := time.Now()
		table, err := e.run(runner)
		if err != nil {
			failed = append(failed, e.id)
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			if table == "" {
				continue
			}
		}
		if *markdown {
			fmt.Printf("## %s\n\n```\n%s```\n\n", e.desc, table)
		} else {
			fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.desc, time.Since(start).Seconds(), table)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiments failed: %s\n", len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
