package main

// Parallel-sampling benchmark harness: -bench-sampling-out measures
// multi-machine sampled campaigns two ways — the serial-unshared reference
// (every machine pays its own functional fast-forward) and the shared-
// snapshot path (one fast-forward per workload through the window store) —
// verifies the two produce bit-identical merged results, and writes a
// machine-readable report (BENCH_4.json schema). -bench-sampling-baseline
// gates regressions: the shared path must stay at least minSamplingSpeedup
// faster than the reference, and within tolerance of the committed
// baseline's speedup.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"testing"

	pubsim "repro"
)

// samplingPlanGeometry is the fixed campaign shape: chosen so the
// functional fast-forward (Windows × FastForward instructions) and the
// detailed work (Windows × (Warmup+Measure)) are the same order of
// magnitude — the regime where paying the fast-forward once per workload
// instead of once per machine is the dominant win.
const (
	samplingWindows     = 6
	samplingFastForward = 3_000_000
	samplingWarmup      = 10_000
	samplingMeasure     = 25_000
)

// minSamplingSpeedup is the hard floor on the geomean shared-vs-serial
// speedup: below this the snapshot-sharing machinery has regressed into
// overhead, baseline or not.
const minSamplingSpeedup = 1.3

type benchSamplingEntry struct {
	Name     string   `json:"name"` // workload-sweep
	Workload string   `json:"workload"`
	Machines []string `json:"machines"`

	SerialNs  int64   `json:"serial_ns"` // unshared reference campaign
	SharedNs  int64   `json:"shared_ns"` // shared-snapshot campaign
	Speedup   float64 `json:"speedup"`   // SerialNs / SharedNs
	SerialSPS float64 `json:"serial_sims_per_sec"`
	SharedSPS float64 `json:"shared_sims_per_sec"`

	SnapshotPlans uint64 `json:"snapshot_plans"` // fast-forward passes the shared campaign paid
	SnapshotHits  uint64 `json:"snapshot_hits"`  // cells answered from shared snapshots
	Identical     bool   `json:"identical"`      // merged results bit-identical across paths
}

type benchSamplingReport struct {
	Schema     string `json:"schema"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Windows     int    `json:"windows"`
	FastForward uint64 `json:"fast_forward_insts"`
	Warmup      uint64 `json:"warmup_insts"`
	Measure     uint64 `json:"measure_insts"`

	Entries        []benchSamplingEntry `json:"entries"`
	GeomeanSpeedup float64              `json:"geomean_speedup"`
}

// benchSamplingSet: one multi-machine sweep per workload class — branchy
// (chess), pointer-chasing (parser), and the game-playing outlier that
// stresses PUBS hardest (goplay). Five machines per sweep, matching the
// paper's typical comparison width.
func benchSamplingSet() []struct {
	name     string
	workload string
	machines []string
} {
	machines := []string{"base", "pubs", "age", "pubs+age", "pubs-large"}
	return []struct {
		name     string
		workload string
		machines []string
	}{
		{"chess-sweep", "chess", machines},
		{"parser-sweep", "parser", machines},
		{"goplay-sweep", "goplay", machines},
	}
}

func samplingPlan(parallel int) pubsim.SamplingPlan {
	return pubsim.SamplingPlan{
		Windows: samplingWindows, FastForward: samplingFastForward,
		Warmup: samplingWarmup, Measure: samplingMeasure,
		Parallel: parallel,
	}
}

func samplingOptions() pubsim.Options {
	return pubsim.Options{
		Warmup: samplingWarmup, Measure: samplingMeasure,
		SampleWindows: samplingWindows, SampleFastForward: samplingFastForward,
		ParallelWindows: -1, // GOMAXPROCS
	}
}

// runSerialCampaign is the unshared reference: every (machine, workload)
// cell plans its own windows and runs them serially — the cost model of
// sampling before shared checkpoints.
func runSerialCampaign(workload string, machines []string) ([]pubsim.Result, error) {
	out := make([]pubsim.Result, 0, len(machines))
	for _, m := range machines {
		cfg, err := pubsim.MachineConfig(m)
		if err != nil {
			return nil, err
		}
		sres, err := pubsim.RunSampled(cfg, workload, samplingPlan(0))
		if err != nil {
			return nil, fmt.Errorf("serial %s/%s: %w", m, workload, err)
		}
		out = append(out, sres.Merged())
	}
	return out, nil
}

// runSharedCampaign runs the same sweep through an experiment Runner: the
// window store pays one fast-forward for the whole sweep and every cell
// runs its windows on the worker pool.
func runSharedCampaign(workload string, machines []string) ([]pubsim.Result, pubsim.SamplingStoreStats, error) {
	r := pubsim.NewRunner(samplingOptions())
	out := make([]pubsim.Result, 0, len(machines))
	for _, m := range machines {
		cfg, err := pubsim.MachineConfig(m)
		if err != nil {
			return nil, pubsim.SamplingStoreStats{}, err
		}
		res, err := r.RunContext(context.Background(), cfg, workload)
		if err != nil {
			return nil, pubsim.SamplingStoreStats{}, fmt.Errorf("shared %s/%s: %w", m, workload, err)
		}
		out = append(out, res)
	}
	return out, r.SnapshotStats(), nil
}

// runBenchSamplingReport measures every sweep both ways and verifies
// bit-identity between the paths.
func runBenchSamplingReport() (*benchSamplingReport, error) {
	rep := &benchSamplingReport{
		Schema: "pubsim-bench-sampling/1",
		GoOS:   runtime.GOOS, GoArch: runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Windows:     samplingWindows,
		FastForward: samplingFastForward,
		Warmup:      samplingWarmup,
		Measure:     samplingMeasure,
	}
	for _, bc := range benchSamplingSet() {
		// Correctness first: both paths must merge to identical results.
		serialRes, err := runSerialCampaign(bc.workload, bc.machines)
		if err != nil {
			return nil, err
		}
		sharedRes, snaps, err := runSharedCampaign(bc.workload, bc.machines)
		if err != nil {
			return nil, err
		}
		identical := reflect.DeepEqual(serialRes, sharedRes)

		var runErr error
		serial := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runSerialCampaign(bc.workload, bc.machines); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		shared := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh runner per iteration: memoization would otherwise
				// turn every iteration after the first into cache hits.
				if _, _, err := runSharedCampaign(bc.workload, bc.machines); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}

		serialNs, sharedNs := serial.NsPerOp(), shared.NsPerOp()
		if serialNs <= 0 {
			serialNs = 1
		}
		if sharedNs <= 0 {
			sharedNs = 1
		}
		sims := float64(len(bc.machines))
		e := benchSamplingEntry{
			Name: bc.name, Workload: bc.workload, Machines: bc.machines,
			SerialNs: serialNs, SharedNs: sharedNs,
			Speedup:       float64(serialNs) / float64(sharedNs),
			SerialSPS:     sims * 1e9 / float64(serialNs),
			SharedSPS:     sims * 1e9 / float64(sharedNs),
			SnapshotPlans: snaps.Plans, SnapshotHits: snaps.Hits,
			Identical: identical,
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr,
			"bench-sampling %-14s serial %7.0f ms  shared %7.0f ms  speedup %.2fx  plans %d hits %d  identical=%v\n",
			bc.name, float64(serialNs)/1e6, float64(sharedNs)/1e6, e.Speedup,
			snaps.Plans, snaps.Hits, identical)
	}
	var logSum float64
	for _, e := range rep.Entries {
		logSum += math.Log(e.Speedup)
	}
	rep.GeomeanSpeedup = math.Exp(logSum / float64(len(rep.Entries)))
	return rep, nil
}

func loadBenchSamplingReport(path string) (*benchSamplingReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchSamplingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench-sampling baseline %s: %w", path, err)
	}
	return &rep, nil
}

// compareBenchSamplingReports gates the shared-snapshot path: every entry
// bit-identical, geomean speedup above the hard floor, and within the
// sims/sec tolerance of the committed baseline.
func compareBenchSamplingReports(base, cur *benchSamplingReport) []string {
	var regressions []string
	for _, e := range cur.Entries {
		if !e.Identical {
			regressions = append(regressions, fmt.Sprintf(
				"%s: shared-snapshot results diverged from the serial reference", e.Name))
		}
	}
	if cur.GeomeanSpeedup < minSamplingSpeedup {
		regressions = append(regressions, fmt.Sprintf(
			"geomean speedup %.2fx is below the %.1fx floor — snapshot sharing has regressed into overhead",
			cur.GeomeanSpeedup, float64(minSamplingSpeedup)))
	}
	if base != nil && base.GeomeanSpeedup > 0 &&
		cur.GeomeanSpeedup < base.GeomeanSpeedup*(1-benchTolerance) {
		regressions = append(regressions, fmt.Sprintf(
			"geomean speedup %.2fx is a %.0f%% regression from baseline %.2fx",
			cur.GeomeanSpeedup,
			(1-cur.GeomeanSpeedup/base.GeomeanSpeedup)*100,
			base.GeomeanSpeedup))
	}
	return regressions
}

// runBenchSamplingMode executes the -bench-sampling-out /
// -bench-sampling-baseline flow; it returns a process exit code.
func runBenchSamplingMode(outPath, baselinePath string) int {
	rep, err := runBenchSamplingReport()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-sampling report written to %s (geomean speedup %.2fx)\n",
			outPath, rep.GeomeanSpeedup)
	}
	var base *benchSamplingReport
	if baselinePath != "" {
		if base, err = loadBenchSamplingReport(baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if regs := compareBenchSamplingReports(base, rep); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "experiments: bench-sampling regression: %s\n", r)
		}
		return 1
	}
	if base != nil {
		fmt.Fprintf(os.Stderr, "bench-sampling within %.0f%% of baseline %s (geomean %.2fx vs %.2fx)\n",
			benchTolerance*100, baselinePath, rep.GeomeanSpeedup, base.GeomeanSpeedup)
	}
	return 0
}
