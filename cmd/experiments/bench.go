package main

// Benchmark-regression harness: -bench-out runs a fixed set of simulations
// under testing.Benchmark and writes a machine-readable report (BENCH_2.json
// schema); -bench-baseline compares the fresh report against a committed
// baseline and fails on a >20% sims/sec regression or any growth in
// steady-state allocations, which are machine-independent.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	pubsim "repro"
)

// benchTolerance is the accepted fractional sims/sec drop before the
// comparison fails (CI machines jitter; the allocation gate is exact).
const benchTolerance = 0.20

// benchAllocSlack absorbs harness-level allocation noise (result structs,
// goroutine bookkeeping) that is not per-cycle work. The per-cycle
// zero-allocation invariant itself is enforced exactly by the pipeline
// package's regression tests.
const benchAllocSlack = 512

type benchEntry struct {
	Name         string  `json:"name"` // machine/workload
	NsPerSim     int64   `json:"ns_per_sim"`
	AllocsPerSim int64   `json:"allocs_per_sim"`
	BytesPerSim  int64   `json:"bytes_per_sim"`
	SimsPerSec   float64 `json:"sims_per_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	InstsPerSec  float64 `json:"insts_per_sec"`
}

type benchReport struct {
	Schema            string       `json:"schema"`
	GoOS              string       `json:"goos"`
	GoArch            string       `json:"goarch"`
	Warmup            uint64       `json:"warmup_insts"`
	Measure           uint64       `json:"measure_insts"`
	Entries           []benchEntry `json:"entries"`
	GeomeanSimsPerSec float64      `json:"geomean_sims_per_sec"`
}

// benchSet is the fixed simulation mix: the two headline machines on the
// branchy and memory-bound ends of the suite, plus the select variants
// whose hot paths were rewritten (age matrix, distributed queues).
func benchSet() []struct {
	name     string
	cfg      pubsim.Config
	workload string
} {
	age := pubsim.PUBSConfig()
	age.Name = "pubs+age"
	age.AgeMatrix = true
	dist := pubsim.PUBSConfig()
	dist.Name = "pubs-distributed"
	dist.DistributedIQ = true
	return []struct {
		name     string
		cfg      pubsim.Config
		workload string
	}{
		{"base/chess", pubsim.BaseConfig(), "chess"},
		{"pubs/chess", pubsim.PUBSConfig(), "chess"},
		{"pubs/goplay", pubsim.PUBSConfig(), "goplay"},
		{"pubs+age/parser", age, "parser"},
		{"pubs-distributed/fft", dist, "fft"},
	}
}

// runBenchReport measures the benchmark set with the given windows.
func runBenchReport(warmup, measure uint64) (*benchReport, error) {
	rep := &benchReport{
		Schema:  "pubsim-bench/2",
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		Warmup:  warmup,
		Measure: measure,
	}
	for _, bc := range benchSet() {
		var last pubsim.Result
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := pubsim.Run(bc.cfg, bc.workload, warmup, measure)
				if err != nil {
					runErr = fmt.Errorf("bench %s: %w", bc.name, err)
					b.FailNow()
				}
				last = res
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		ns := r.NsPerOp()
		if ns <= 0 {
			ns = 1
		}
		e := benchEntry{
			Name:         bc.name,
			NsPerSim:     ns,
			AllocsPerSim: r.AllocsPerOp(),
			BytesPerSim:  r.AllocedBytesPerOp(),
			SimsPerSec:   1e9 / float64(ns),
			CyclesPerSec: float64(last.Cycles) * 1e9 / float64(ns),
			InstsPerSec:  float64(last.Committed) * 1e9 / float64(ns),
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr, "bench %-22s %8.2f ms/sim  %6.3f sims/sec  %9.0f cycles/sec  %6d allocs/sim\n",
			bc.name, float64(ns)/1e6, e.SimsPerSec, e.CyclesPerSec, e.AllocsPerSim)
	}
	var logSum float64
	for _, e := range rep.Entries {
		logSum += math.Log(e.SimsPerSec)
	}
	rep.GeomeanSimsPerSec = math.Exp(logSum / float64(len(rep.Entries)))
	return rep, nil
}

func writeBenchReport(rep *benchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	return &rep, nil
}

// compareBenchReports returns the regressions of cur against base.
func compareBenchReports(base, cur *benchReport) []string {
	var regressions []string
	byName := map[string]benchEntry{}
	for _, e := range base.Entries {
		byName[e.Name] = e
	}
	for _, e := range cur.Entries {
		b, ok := byName[e.Name]
		if !ok {
			continue // new entry: nothing to compare against
		}
		if e.SimsPerSec < b.SimsPerSec*(1-benchTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.3f sims/sec is a %.0f%% regression from baseline %.3f",
				e.Name, e.SimsPerSec, (1-e.SimsPerSec/b.SimsPerSec)*100, b.SimsPerSec))
		}
		if e.AllocsPerSim > b.AllocsPerSim+benchAllocSlack {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/sim exceeds baseline %d — a hot-path allocation crept back in",
				e.Name, e.AllocsPerSim, b.AllocsPerSim))
		}
	}
	if base.GeomeanSimsPerSec > 0 &&
		cur.GeomeanSimsPerSec < base.GeomeanSimsPerSec*(1-benchTolerance) {
		regressions = append(regressions, fmt.Sprintf(
			"geomean: %.3f sims/sec is a %.0f%% regression from baseline %.3f",
			cur.GeomeanSimsPerSec,
			(1-cur.GeomeanSimsPerSec/base.GeomeanSimsPerSec)*100,
			base.GeomeanSimsPerSec))
	}
	return regressions
}

// runBenchMode executes the -bench-out / -bench-baseline flow; it returns
// a process exit code.
func runBenchMode(warmup, measure uint64, outPath, baselinePath string) int {
	rep, err := runBenchReport(warmup, measure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if outPath != "" {
		if err := writeBenchReport(rep, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench report written to %s (geomean %.3f sims/sec)\n",
			outPath, rep.GeomeanSimsPerSec)
	}
	if baselinePath != "" {
		base, err := loadBenchReport(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if regs := compareBenchReports(base, rep); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "experiments: bench regression: %s\n", r)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench within %.0f%% of baseline %s (geomean %.3f vs %.3f sims/sec)\n",
			benchTolerance*100, baselinePath, rep.GeomeanSimsPerSec, base.GeomeanSimsPerSec)
	}
	return 0
}
