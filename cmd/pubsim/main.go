// Command pubsim runs one simulation and prints its statistics.
//
// Usage:
//
//	pubsim -workload chess -machine pubs -warmup 300000 -insts 1000000
//
// Machines: base, pubs, age, pubs+age, or base-<size>/pubs-<size> for the
// Fig. 16 scaled models (small/medium/large/huge).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	pubsim "repro"
)

func main() {
	var (
		wl        = flag.String("workload", "chess", "benchmark name (see -list)")
		machine   = flag.String("machine", "pubs", "base | pubs | age | pubs+age | {base,pubs}-{small,medium,large,huge}")
		warmup    = flag.Uint64("warmup", 300_000, "warm-up instructions (counters reset afterwards)")
		insts     = flag.Uint64("insts", 1_000_000, "measured instructions")
		priority  = flag.Int("priority", 6, "PUBS priority entries")
		bits      = flag.Int("bits", 6, "PUBS confidence counter bits")
		noStall   = flag.Bool("nostall", false, "use the non-stall dispatch policy")
		noSwitch  = flag.Bool("noswitch", false, "disable the MPKI mode switch")
		blind     = flag.Bool("blind", false, "estimate every branch unconfident (no conf_tab)")
		flexible  = flag.Bool("flexible", false, "idealized flexible-priority select (§III-C1) instead of priority entries")
		distrib   = flag.Bool("distributed", false, "distributed per-FU-pool issue queues (§III-C2)")
		wrongp    = flag.Bool("wrongpath", false, "model wrong-path pollution of the PUBS tables")
		profile   = flag.Bool("profile", false, "print IQ occupancy and the worst mispredicting branches")
		pipetrace = flag.Int64("pipetrace", 0, "print a stage-by-stage trace of the first N committed instructions")
		sampleWin = flag.Int("sample-windows", 0, "run sampled simulation with N measurement windows (0 = one contiguous window)")
		sampleFF  = flag.Uint64("sample-ff", 1_000_000, "functionally fast-forwarded instructions between sampled windows")
		parWin    = flag.Int("parallel-windows", 0, "sampled windows simulated concurrently (0/1 = serial, -1 = GOMAXPROCS); never changes results")
		liveDec   = flag.Bool("live-decode", false, "sampled windows re-decode through a live functional emulator instead of the shared predecoded trace; slower, bit-identical")
		idleSkip  = flag.Bool("idle-skip", true, "event-driven idle-cycle skipping (bit-identical; -idle-skip=false polls every cycle)")
		burstSkip = flag.Bool("burst-skip", true, "quasi-null burst integration on top of -idle-skip (-burst-skip=false is phase-1-only skipping)")
		skipStats = flag.Bool("skip-stats", false, "report idle-skip efficacy (spans and cycles per class); with -json, adds a skip_telemetry sibling to the result")
		jsonOut   = flag.Bool("json", false, "emit the result as one JSON object (the pubsd job-result schema)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile taken after the simulation to this file")
	)
	flag.Parse()

	if *list {
		for _, name := range pubsim.Workloads() {
			fmt.Println(name)
		}
		return
	}

	cfg, err := buildConfig(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Profile = *profile
	cfg.DistributedIQ = *distrib
	cfg.WrongPathDecode = *wrongp
	cfg.NoIdleSkip = !*idleSkip
	cfg.NoBurstSkip = !*burstSkip
	if cfg.PUBS.Enable {
		cfg.PUBS.PriorityEntries = *priority
		cfg.PUBS.ConfCounterBits = *bits
		cfg.PUBS.StallDispatch = !*noStall
		cfg.PUBS.ModeSwitch = !*noSwitch
		cfg.PUBS.Blind = *blind
		cfg.PUBS.FlexibleSelect = *flexible
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// Ctrl-C / SIGTERM cancel the simulation (observed within ~1K cycles)
	// instead of killing the process mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res pubsim.Result
	var sampled *pubsim.SampledResult
	switch {
	case *pipetrace > 0:
		res, err = pubsim.RunWithPipeTrace(cfg, *wl, *warmup, *insts, os.Stdout, *pipetrace)
	case *sampleWin > 0:
		plan := pubsim.SamplingPlan{
			Windows: *sampleWin, FastForward: *sampleFF,
			Warmup: *warmup, Measure: *insts, Parallel: *parWin,
			LiveDecode: *liveDec,
		}
		var sres pubsim.SampledResult
		sres, err = pubsim.RunSampledContext(ctx, cfg, *wl, plan)
		if err == nil {
			sampled = &sres
			res = sres.Merged()
		}
	default:
		res, err = pubsim.RunContext(ctx, cfg, *wl, *warmup, *insts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // flush garbage so the profile shows live hot-path state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	if *jsonOut {
		// One CellResult object — the same schema pubsd serves from
		// GET /v1/results/{key}, same content key included, so CLI runs and
		// daemon results are directly comparable (and diffable with jq).
		cell := pubsim.Cell{Config: cfg, Workload: *wl}
		opts := pubsim.Options{Warmup: *warmup, Measure: *insts}
		if *sampleWin > 0 {
			opts.SampleWindows = *sampleWin
			opts.SampleFastForward = *sampleFF
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := any(pubsim.NewCellResult(cell, opts, res))
		if *skipStats {
			// Opt-in sibling field: the default -json object stays
			// byte-compatible with the daemon's result schema.
			out = struct {
				pubsim.CellResult
				SkipTelemetry pubsim.SkipTelemetry `json:"skip_telemetry"`
			}{pubsim.NewCellResult(cell, opts, res), pubsim.GlobalSkipTelemetry()}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("machine            %s\n", cfg.Name)
	fmt.Printf("workload           %s\n", *wl)
	if sampled != nil {
		fmt.Print(sampled.Table())
		return
	}
	fmt.Printf("instructions       %d (after %d warm-up)\n", res.Committed, *warmup)
	fmt.Printf("cycles             %d\n", res.Cycles)
	fmt.Printf("IPC                %.4f\n", res.IPC())
	fmt.Printf("branch MPKI        %.2f (mispredict rate %.2f%%)\n", res.BranchMPKI(), res.MispredictRate()*100)
	fmt.Printf("LLC MPKI           %.2f\n", res.LLCMPKI())
	fmt.Printf("L1D miss rate      %.2f%%\n", pct(res.L1D.Misses, res.L1D.Accesses))
	fmt.Printf("L2 prefetches      %d (hits %d, late %d)\n", res.L2.PrefetchReqs, res.L2.PrefetchHits, res.L2.PrefetchLate)
	fmt.Printf("misspec penalty    %d cycles (%.1f per mispredict)\n",
		res.MisspecPenaltyCycles, per(res.MisspecPenaltyCycles, res.Mispredicts))
	fmt.Printf("loads forwarded    %d\n", res.LoadsForwarded)
	if cfg.PUBS.Enable {
		fmt.Printf("unconfident        %.1f%% of branches, %d slice instructions\n",
			res.UnconfidentRate()*100, res.UnconfSliceInsts)
		fmt.Printf("dispatch stalls    priority=%d normal=%d rob=%d lsq=%d regs=%d\n",
			res.DispatchStallPriority, res.DispatchStallNormal,
			res.DispatchStallROB, res.DispatchStallLSQ, res.DispatchStallRegs)
		if res.ModeSwitchChecks > 0 {
			fmt.Printf("mode switch        enabled %d / %d windows\n", res.ModeEnabledWindows, res.ModeSwitchChecks)
		}
	}
	if *skipStats {
		t := pubsim.GlobalSkipTelemetry()
		fmt.Printf("idle-skip          %d spans, %d cycles skipped\n", t.SkipSpans, t.SkippedCycles)
		fmt.Printf("fetch bursts       %d spans, %d cycles integrated\n", t.FetchBurstSpans, t.FetchBurstCycles)
		fmt.Printf("commit bursts      %d spans, %d cycles integrated\n", t.CommitBurstSpans, t.CommitBurstCycles)
	}
	if *profile && res.IQOccupancy != nil {
		fmt.Printf("IQ occupancy       mean %.1f, median %d, p90 %d (of %d entries)\n",
			res.IQOccupancy.Mean(), res.IQOccupancy.Quantile(0.5),
			res.IQOccupancy.Quantile(0.9), cfg.IQSize)
		fmt.Println("worst branches     PC        executed  mispredicts  rate")
		for _, bs := range res.TopBranches {
			fmt.Printf("                   %-8d  %-8d  %-11d  %5.1f%%\n",
				bs.PC/4, bs.Executed, bs.Mispredicts, bs.MispredictRate()*100)
		}
	}
}

// buildConfig delegates to the shared machine-name resolver so the CLI and
// the pubsd service accept exactly the same machine vocabulary.
func buildConfig(machine string) (pubsim.Config, error) {
	cfg, err := pubsim.MachineConfig(machine)
	if err != nil {
		return pubsim.Config{}, fmt.Errorf("pubsim: unknown machine %q (base, pubs, age, pubs+age, {base,pubs}-{small,medium,large,huge})", machine)
	}
	return cfg, nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func per(a int64, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
