// Command tracer captures benchmark traces to disk and replays them
// through the simulator — the classic trace-driven workflow.
//
// Capture:
//
//	tracer -capture -workload chess -n 1300000 -o chess.trc
//
// Replay (any machine; same stream, so cross-machine comparisons are
// apples-to-apples by construction):
//
//	tracer -replay chess.trc -machine pubs -warmup 300000 -insts 1000000
//
// Inspect:
//
//	tracer -info chess.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		capture = flag.Bool("capture", false, "capture a trace")
		wl      = flag.String("workload", "chess", "benchmark to capture")
		n       = flag.Uint64("n", 1_300_000, "instructions to capture")
		out     = flag.String("o", "", "output trace file (capture)")
		replay  = flag.String("replay", "", "trace file to replay")
		info    = flag.String("info", "", "trace file to describe")
		machine = flag.String("machine", "pubs", "base | pubs (replay)")
		warmup  = flag.Uint64("warmup", 300_000, "warm-up instructions (replay)")
		insts   = flag.Uint64("insts", 1_000_000, "measured instructions (replay)")
	)
	flag.Parse()

	switch {
	case *capture:
		if *out == "" {
			*out = *wl + ".trc"
		}
		prog, err := workload.Program(*wl)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		count, err := trace.Capture(f, prog, *n)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("captured %d instructions of %s to %s (%.2f bytes/inst)\n",
			count, *wl, *out, float64(st.Size())/float64(count))

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var cfg pipeline.Config
		switch *machine {
		case "base":
			cfg = pipeline.BaseConfig()
		case "pubs":
			cfg = pipeline.PUBSConfig()
		default:
			fatal(fmt.Errorf("tracer: unknown machine %q", *machine))
		}
		sim, err := pipeline.New(cfg)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(r, *warmup, *insts)
		if err != nil {
			fatal(err)
		}
		if r.Err() != nil {
			fatal(fmt.Errorf("tracer: malformed trace: %w", r.Err()))
		}
		fmt.Printf("trace      %s (%s, %d static instructions)\n", *replay, r.Name(), r.CodeLen())
		fmt.Printf("machine    %s\n", cfg.Name)
		fmt.Printf("committed  %d\n", res.Committed)
		fmt.Printf("IPC        %.4f\n", res.IPC())
		fmt.Printf("brMPKI     %.2f   llcMPKI %.2f\n", res.BranchMPKI(), res.LLCMPKI())

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var count uint64
		var branches, taken, mem uint64
		for {
			di, ok := r.Next()
			if !ok {
				break
			}
			count++
			if di.Inst.IsCondBranch() {
				branches++
				if di.Taken {
					taken++
				}
			}
			if di.Inst.IsMem() {
				mem++
			}
		}
		if r.Err() != nil {
			fatal(fmt.Errorf("tracer: malformed trace: %w", r.Err()))
		}
		fmt.Printf("program    %s (%d static instructions, %d B memory)\n", r.Name(), r.CodeLen(), r.MemSize())
		fmt.Printf("records    %d\n", count)
		fmt.Printf("branches   %.2f%% of instructions, %.1f%% taken\n",
			pct(branches, count), pct(taken, branches))
		fmt.Printf("memory ops %.2f%%\n", pct(mem, count))

	default:
		fmt.Fprintln(os.Stderr, "tracer: use -capture, -replay <file>, or -info <file>")
		os.Exit(2)
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
