// Command wldump inspects a benchmark: its static code, a window of its
// dynamic instruction stream, and its instruction-mix statistics from
// functional emulation (no timing).
//
// Usage:
//
//	wldump -workload parser -code -trace 30 -insts 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/sliceprof"
	"repro/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "chess", "benchmark name")
		code   = flag.Bool("code", false, "print the static code")
		trace  = flag.Int("trace", 0, "print the first N dynamic instructions")
		insts  = flag.Uint64("insts", 1_000_000, "instructions to emulate for the mix statistics")
		slices = flag.Bool("slices", false, "profile backward branch slices (size, membership)")
	)
	flag.Parse()

	prog, err := workload.Program(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	info, _ := workload.ByName(*wl)
	fmt.Printf("benchmark  %s (models %s)\n", prog.Name, info.Analogue)
	fmt.Printf("code       %d instructions\n", len(prog.Code))
	fmt.Printf("data       %d bytes initialised, %d bytes total\n", len(prog.Data), prog.MemSize)

	if *code {
		fmt.Println("\nstatic code:")
		for i, in := range prog.Code {
			fmt.Printf("%5d: %s\n", i, in)
		}
	}

	m, err := emu.New(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *trace > 0 {
		fmt.Println("\ndynamic trace:")
	}
	var classes [isa.NumClasses]uint64
	var branches, taken uint64
	for n := uint64(0); n < *insts; n++ {
		di, ok := m.Step()
		if !ok {
			fmt.Printf("\nprogram halted after %d instructions\n", n)
			break
		}
		if int(n) < *trace {
			extra := ""
			if di.Inst.IsMem() {
				extra = fmt.Sprintf("  [addr %#x]", di.Addr)
			}
			if di.Inst.IsControl() {
				extra = fmt.Sprintf("  [taken=%v next=%d]", di.Taken, di.NextPC/4)
			}
			fmt.Printf("%8d: %5d: %s%s\n", di.Seq, di.Idx, di.Inst, extra)
		}
		classes[di.Class]++
		if di.Inst.IsCondBranch() {
			branches++
			if di.Taken {
				taken++
			}
		}
	}
	total := m.Seq()
	fmt.Printf("\ninstruction mix over %d instructions:\n", total)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		fmt.Printf("  %-10s %6.2f%%\n", c, float64(classes[c])/float64(total)*100)
	}
	fmt.Printf("  cond branches: %.2f%% of instructions, %.1f%% taken\n",
		float64(branches)/float64(total)*100, float64(taken)/float64(branches)*100)

	if *slices {
		prof, err := sliceprof.Analyze(prog, *insts, 128)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(prof.Table())
	}
}
