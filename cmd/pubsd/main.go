// Command pubsd is the campaign service daemon: simulation-as-a-service
// over an HTTP JSON API, backed by a bounded job queue, a worker pool
// that shards (machine × workload) grids, and a content-addressed result
// cache with singleflight dedup so identical submissions execute once.
//
// Usage:
//
//	pubsd serve    -addr :8080 [-workers N] [-checkpoint DIR] [-journal DIR]
//	pubsd serve    -addr :8080 -coordinator [-peers node=URL,...]
//	pubsd serve    -addr :8081 -join http://coordinator:8080 [-node-id ID] [-advertise URL]
//	pubsd loadtest -addr http://host:8080 [-jobs N] [-out BENCH_3.json]
//	pubsd loadtest -self [-jobs N] [-out BENCH_3.json]
//	pubsd clusterbench [-jobs N] [-concurrency N] [-out BENCH_7.json] [-baseline BENCH_7.json]
//
// serve runs until SIGINT/SIGTERM, then drains: submissions are refused
// (503) while accepted jobs run to completion, bounded by -drain-timeout.
// With -journal, accepted jobs are write-ahead logged and a crashed
// daemon re-enqueues the incomplete ones at the next boot; pair it with
// -checkpoint so their finished cells replay from disk.
//
// With -coordinator, serve fronts a worker fleet instead of simulating
// locally: campaign cells are sharded across the ring by content address,
// stolen onto idle nodes when their owner is saturated, and re-sharded
// when a node dies. With -join (mutually exclusive), serve runs as a
// worker shard: it announces itself to the coordinator and serves the
// cluster wire protocol — including the peer tier of the two-tier result
// cache — in front of its normal API.
//
// loadtest generates duplicate-heavy traffic against a running daemon
// (or, with -self, against one it boots in-process) and writes a
// pubsd-load/2 report with exact latency quantiles, the daemon's dedup
// counters, and admission refusals (429/503) counted separately from
// failures.
//
// clusterbench boots in-process 1-worker and 3-worker clusters on
// loopback ports, drives each with >= 64 concurrent clients, and writes
// the BENCH_7 pubsd-cluster/1 report (jobs/sec, p99, cluster-wide
// cache-hit ratio, speedups). It exits nonzero when the 3-worker geomean
// speedup drops below -min-speedup or regresses >20% from -baseline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "loadtest":
		err = loadtest(os.Args[2:])
	case "clusterbench":
		err = clusterbench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "pubsd: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pubsd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pubsd serve    -addr :8080 [-workers N] [-queue N] [-high-water N]
                 [-max-active N] [-warmup N] [-insts N] [-checkpoint DIR]
                 [-journal DIR] [-drain-timeout D] [-trace-budget BYTES]
                 [-tenant-rate R] [-tenant-burst N]
                 [-breaker-threshold N] [-breaker-cooldown D]
                 [-coordinator [-peers node=URL,...]]
                 [-join URL [-node-id ID] [-advertise URL]]
  pubsd loadtest (-addr URL | -self) [-jobs N] [-concurrency N] [-burst N]
                 [-warmup N] [-insts N] [-out FILE]
  pubsd clusterbench [-jobs N] [-concurrency N] [-worker-queue N]
                 [-worker-active N] [-warmup N] [-insts N] [-out FILE]
                 [-min-speedup X] [-baseline FILE] [-sampling]`)
}

// serviceFlags registers the flags shared by both subcommands that size
// the daemon and its default simulation windows.
func serviceFlags(fs *flag.FlagSet) *service.Config {
	cfg := &service.Config{}
	fs.IntVar(&cfg.Workers, "workers", 0, "cell worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.QueueDepth, "queue", 64, "bounded job queue depth")
	fs.IntVar(&cfg.MaxActiveJobs, "max-active", 4, "campaigns executing concurrently")
	fs.IntVar(&cfg.MaxCellsPerJob, "max-cells", 4096, "largest grid accepted per job")
	fs.Uint64Var(&cfg.DefaultOptions.Warmup, "warmup", 300_000, "default warm-up instructions")
	fs.Uint64Var(&cfg.DefaultOptions.Measure, "insts", 1_000_000, "default measured instructions")
	fs.StringVar(&cfg.CheckpointDir, "checkpoint", "", "persist results here; a restarted daemon answers from disk")
	fs.StringVar(&cfg.JournalDir, "journal", "", "write-ahead job journal; a crashed daemon re-enqueues incomplete jobs at boot")
	fs.IntVar(&cfg.HighWater, "high-water", 0, "queue depth above which best-effort (priority < 0) submissions are shed (0 = 3/4 of -queue)")
	fs.Float64Var(&cfg.TenantRate, "tenant-rate", 0, "per-tenant submissions/sec budget (0 = unlimited)")
	fs.IntVar(&cfg.TenantBurst, "tenant-burst", 0, "per-tenant token-bucket burst (0 = 4)")
	fs.IntVar(&cfg.BreakerThreshold, "breaker-threshold", 0, "consecutive simulator panics that trip the circuit breaker into cached-only mode (0 = 5, negative = disabled)")
	fs.DurationVar(&cfg.BreakerCooldown, "breaker-cooldown", 0, "how long the tripped breaker stays open before a half-open probe (0 = 30s)")
	fs.Int64Var(&cfg.TraceBudgetBytes, "trace-budget", 0, "byte budget for resident window snapshots + predecoded traces per window geometry, evicting whole plans LRU-first (0 = unbounded; exported as pubsd_trace_budget_bytes)")
	return cfg
}

func serve(args []string) error {
	fs := flag.NewFlagSet("pubsd serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	drain := fs.Duration("drain-timeout", 5*time.Minute, "max time to finish accepted jobs at shutdown")
	timeout := fs.Duration("cell-timeout", 0, "per-simulation timeout (0 = none)")
	coordinator := fs.Bool("coordinator", false, "run as cluster coordinator: shard cells across joined workers instead of simulating locally")
	peersFlag := fs.String("peers", "", "coordinator only: static worker list, node=URL[,node=URL...]")
	join := fs.String("join", "", "run as cluster worker: announce to this coordinator URL at boot")
	noShare := fs.Bool("no-share", false, "worker only: disable sampling-plan sharing and proactive replication (serving endpoints stay up; A/B and diagnostics)")
	nodeID := fs.String("node-id", "", "stable cluster node identity (default: the bound listen address)")
	advertise := fs.String("advertise", "", "base URL peers reach this node at (default: http://<bound address>; set it when binding a wildcard address)")
	cfg := serviceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.DefaultOptions.Timeout = *timeout
	if *coordinator && *join != "" {
		return errors.New("serve: -coordinator and -join are mutually exclusive")
	}

	// Listen before building the daemon: the default node identity and
	// advertise URL derive from the bound (possibly kernel-chosen) address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *nodeID == "" {
		*nodeID = ln.Addr().String()
	}
	if *advertise == "" {
		*advertise = "http://" + ln.Addr().String()
	}
	cfg.NodeID = *nodeID

	var coord *cluster.Coordinator
	if *coordinator {
		coord = cluster.NewCoordinator()
		cfg.Remote = coord.Remote
		// Window-major sampled sweeps go out as one batch per owning node,
		// with a designated planner so the fleet pays one functional pass
		// per workload window set.
		cfg.RemoteSweep = coord.RemoteSweep
	}
	s, err := service.New(*cfg)
	if err != nil {
		ln.Close()
		return err
	}
	handler := s.Handler()
	role := "single-node"
	switch {
	case coord != nil:
		coord.BindCounters(s.ClusterCounters())
		handler = coord.Handler(handler)
		role = "coordinator"
		if *peersFlag != "" {
			for _, kv := range strings.Split(*peersFlag, ",") {
				node, url, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok || node == "" || url == "" {
					return fmt.Errorf("serve: -peers entry %q is not node=URL", kv)
				}
				coord.AddNode(node, url)
			}
		}
	case *join != "":
		wk := cluster.NewWorker(s)
		if *noShare {
			wk.DisableReplication()
		}
		handler = wk.Handler(handler)
		role = "worker"
		// Join after the listener is serving, retrying briefly so worker
		// and coordinator boot order doesn't matter in scripts.
		go func() {
			hc := cluster.SharedClient()
			for attempt := 0; ; attempt++ {
				peers, epoch, err := cluster.Join(context.Background(), hc, *join, *nodeID, *advertise)
				if err == nil {
					wk.ApplyPeers(peers, epoch)
					fmt.Fprintf(os.Stderr, "pubsd: joined %s as %q (%d peers)\n", *join, *nodeID, len(peers))
					return
				}
				if attempt >= 20 {
					fmt.Fprintf(os.Stderr, "pubsd: join %s failed: %v (serving unjoined)\n", *join, err)
					return
				}
				time.Sleep(500 * time.Millisecond)
			}
		}()
	}
	srv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pubsd: serving on %s (%s, %d workers, queue %d)\n",
		ln.Addr(), role, s.Workers(), cfg.QueueDepth)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // second signal kills immediately via default handler
	fmt.Fprintln(os.Stderr, "pubsd: draining (new submissions refused)...")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "pubsd: drain incomplete: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "pubsd: drained")
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	return srv.Shutdown(httpCtx)
}

func loadtest(args []string) error {
	fs := flag.NewFlagSet("pubsd loadtest", flag.ExitOnError)
	addr := fs.String("addr", "", "base URL of a running daemon (e.g. http://127.0.0.1:8080)")
	self := fs.Bool("self", false, "boot an in-process daemon on a loopback port and load-test it")
	jobs := fs.Int("jobs", 16, "total jobs to submit")
	conc := fs.Int("concurrency", 4, "in-flight submissions")
	burst := fs.Int("burst", 2, "consecutive submissions of the same spec (overlapping duplicates exercise singleflight)")
	out := fs.String("out", "", "write the pubsd-load/2 JSON report here (default stdout)")
	warmup := fs.Uint64("warmup", 20_000, "per-job warm-up instructions")
	insts := fs.Uint64("insts", 80_000, "per-job measured instructions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*addr == "") == !*self {
		return errors.New("loadtest: need exactly one of -addr or -self")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	baseURL := *addr
	if *self {
		s, err := service.New(service.Config{
			DefaultOptions: experiments.Options{Warmup: *warmup, Measure: *insts},
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: s.Handler()}
		go func() { _ = srv.Serve(ln) }()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "pubsd: self-test daemon on %s\n", baseURL)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = s.Shutdown(sctx)
			_ = srv.Shutdown(sctx)
		}()
	}

	// A short ring of small campaigns; jobs cycle through it, so beyond
	// the first lap every submission is a duplicate the daemon should
	// answer from cache or merge onto in-flight work.
	cfg := service.LoadtestConfig{
		BaseURL: baseURL, Jobs: *jobs, Concurrency: *conc, DuplicateBurst: *burst,
		Specs: []service.CampaignSpec{
			{Machines: []service.MachineSpec{{Machine: "base"}, {Machine: "pubs"}},
				Workloads: []string{"matmul", "chess"}, Warmup: *warmup, Measure: *insts},
			{Machines: []service.MachineSpec{{Machine: "pubs"}},
				Workloads: []string{"goplay", "pathfind"}, Warmup: *warmup, Measure: *insts},
			{Machines: []service.MachineSpec{{Machine: "pubs"}, {Machine: "pubs+age"}},
				Workloads: []string{"chess"}, Warmup: *warmup, Measure: *insts},
			// A sampled window-major sweep: three machines replaying one
			// workload's predecoded windows, exercising the trace cache and
			// sweep scheduler under loadtest traffic.
			{Machines: []service.MachineSpec{{Machine: "base"}, {Machine: "pubs"}, {Machine: "age"}},
				Workloads: []string{"parser"}, Warmup: *warmup / 2, Measure: *insts / 2,
				Windows: 2, FastForward: 50_000, WindowMajor: true},
		},
	}
	rep, err := service.Loadtest(ctx, cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pubsd: loadtest done: %d jobs, p50 %.0fms p99 %.0fms, %d sims (%d merged, %d cached) → %s\n",
		rep.Jobs, rep.LatencyP50MS, rep.LatencyP99MS, rep.SimsExecuted, rep.Merged, rep.CacheHits, *out)
	return nil
}

// clusterbenchTolerance matches the other bench gates: a fresh run may sit
// up to 20% below the committed baseline's geomean before the gate trips.
const clusterbenchTolerance = 0.20

func clusterbench(args []string) error {
	fs := flag.NewFlagSet("pubsd clusterbench", flag.ExitOnError)
	jobs := fs.Int("jobs", 96, "jobs per scenario")
	conc := fs.Int("concurrency", 64, "concurrent clients (the BENCH_7 contract wants >= 64)")
	wq := fs.Int("worker-queue", 4, "per-worker job queue depth")
	wa := fs.Int("worker-active", 2, "per-worker concurrently active jobs")
	wr := fs.Float64("worker-rate", 12, "per-worker admission budget, jobs/sec (the deterministic capacity the scaling measurement rests on)")
	wb := fs.Int("worker-burst", 4, "per-worker admission token-bucket burst")
	warmup := fs.Uint64("warmup", 2_000, "per-cell warm-up instructions")
	insts := fs.Uint64("insts", 8_000, "per-cell measured instructions")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	sampling := fs.Bool("sampling", false, "run the BENCH_9 sampled-sweep benchmark (plan sharing + batched dispatch vs off) instead of BENCH_7")
	minSpeedup := fs.Float64("min-speedup", 0, "fail when the geomean speedup is below this floor (0 = the mode's default: 1.8 for BENCH_7, 1.5 for -sampling)")
	baseline := fs.String("baseline", "", "compare against this committed report; fail on a >20% geomean regression")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *sampling {
		if *minSpeedup == 0 {
			*minSpeedup = 1.5
		}
		return samplingBench(ctx, *out, *minSpeedup, *baseline)
	}
	if *minSpeedup == 0 {
		*minSpeedup = 1.8
	}
	rep, err := cluster.RunBench(ctx, cluster.BenchConfig{
		Jobs: *jobs, Concurrency: *conc,
		Warmup: *warmup, Measure: *insts,
		WorkerQueue: *wq, WorkerActive: *wa,
		WorkerRate: *wr, WorkerBurst: *wb,
		Log: os.Stderr,
	})
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pubsd: clusterbench report written to %s (geomean speedup %.2fx)\n",
			*out, rep.GeomeanSpeedup)
	}

	if rep.GeomeanSpeedup < *minSpeedup {
		return fmt.Errorf("clusterbench: geomean speedup %.2fx is below the %.2fx floor — the fleet no longer outruns one node",
			rep.GeomeanSpeedup, *minSpeedup)
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("clusterbench baseline: %w", err)
		}
		var base cluster.BenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("clusterbench baseline %s: %w", *baseline, err)
		}
		if base.GeomeanSpeedup > 0 && rep.GeomeanSpeedup < base.GeomeanSpeedup*(1-clusterbenchTolerance) {
			return fmt.Errorf("clusterbench: geomean speedup %.2fx is a %.0f%% regression from baseline %.2fx",
				rep.GeomeanSpeedup, (1-rep.GeomeanSpeedup/base.GeomeanSpeedup)*100, base.GeomeanSpeedup)
		}
		fmt.Fprintf(os.Stderr, "pubsd: clusterbench within %.0f%% of baseline %s (geomean %.2fx vs %.2fx)\n",
			clusterbenchTolerance*100, *baseline, rep.GeomeanSpeedup, base.GeomeanSpeedup)
	}
	return nil
}

// samplingBench runs BENCH_9 — the cluster-shared sampling-plan benchmark —
// and applies its gates: bit-identical results across modes, fleet-wide
// functional passes == workloads with sharing on, the speedup floor, and
// the baseline regression check.
func samplingBench(ctx context.Context, out string, minSpeedup float64, baseline string) error {
	rep, err := cluster.RunSamplingBench(ctx, cluster.SamplingBenchConfig{Log: os.Stderr})
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pubsd: sampling bench report written to %s (geomean speedup %.2fx)\n",
			out, rep.GeomeanSpeedup)
	}

	if !rep.BitIdentical {
		return errors.New("sampling bench: plan sharing changed results — the modes are no longer bit-identical")
	}
	for _, sc := range rep.Scenarios {
		if want := uint64(sc.Workloads); sc.On.Plans != want {
			return fmt.Errorf("sampling bench %s: fleet paid %d functional passes with sharing on, want exactly %d (one per workload)",
				sc.Name, sc.On.Plans, want)
		}
	}
	if rep.GeomeanSpeedup < minSpeedup {
		return fmt.Errorf("sampling bench: geomean speedup %.2fx is below the %.2fx floor — plan sharing no longer pays",
			rep.GeomeanSpeedup, minSpeedup)
	}
	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return fmt.Errorf("sampling bench baseline: %w", err)
		}
		var base cluster.SamplingBenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("sampling bench baseline %s: %w", baseline, err)
		}
		if base.GeomeanSpeedup > 0 && rep.GeomeanSpeedup < base.GeomeanSpeedup*(1-clusterbenchTolerance) {
			return fmt.Errorf("sampling bench: geomean speedup %.2fx is a %.0f%% regression from baseline %.2fx",
				rep.GeomeanSpeedup, (1-rep.GeomeanSpeedup/base.GeomeanSpeedup)*100, base.GeomeanSpeedup)
		}
		fmt.Fprintf(os.Stderr, "pubsd: sampling bench within %.0f%% of baseline %s (geomean %.2fx vs %.2fx)\n",
			clusterbenchTolerance*100, baseline, rep.GeomeanSpeedup, base.GeomeanSpeedup)
	}
	return nil
}
