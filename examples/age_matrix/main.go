// Age matrix: reproduce the paper's §V-G argument on two workloads.
// The age matrix raises IPC by selecting the oldest ready instruction, but
// its wide array lengthens the IQ critical path by 13%; once that stretches
// the clock, PUBS wins on *performance* even where AGE wins on IPC.
//
//	go run ./examples/age_matrix
package main

import (
	"fmt"
	"log"

	pubsim "repro"
)

func main() {
	const (
		warmup  = 150_000
		measure = 400_000
	)
	for _, wl := range []string{"chess", "pathfind"} {
		base, err := pubsim.Run(pubsim.BaseConfig(), wl, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}

		age := pubsim.BaseConfig()
		age.Name = "age"
		age.AgeMatrix = true
		ageRes, err := pubsim.Run(age, wl, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}

		pubs, err := pubsim.Run(pubsim.PUBSConfig(), wl, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}

		both := pubsim.PUBSConfig()
		both.Name = "pubs+age"
		both.AgeMatrix = true
		bothRes, err := pubsim.Run(both, wl, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}

		// IPC view (Fig. 15a) and performance view with the 13% clock
		// stretch on the AGE machines (Fig. 15b).
		fmt.Printf("%s (base IPC %.3f):\n", wl, base.IPC())
		fmt.Printf("  %-9s IPC %+6.2f%%   perf %+6.2f%%\n", "PUBS",
			pubsim.Speedup(base.IPC(), pubs.IPC()),
			pubsim.Speedup(base.IPC(), pubs.IPC()))
		fmt.Printf("  %-9s IPC %+6.2f%%   perf %+6.2f%%  (clock ×%.2f)\n", "AGE",
			pubsim.Speedup(base.IPC(), ageRes.IPC()),
			pubsim.Speedup(base.IPC(), ageRes.IPC()/pubsim.AgeMatrixDelayFactor),
			pubsim.AgeMatrixDelayFactor)
		fmt.Printf("  %-9s IPC %+6.2f%%   perf %+6.2f%%  (clock ×%.2f)\n", "PUBS+AGE",
			pubsim.Speedup(base.IPC(), bothRes.IPC()),
			pubsim.Speedup(base.IPC(), bothRes.IPC()/pubsim.AgeMatrixDelayFactor),
			pubsim.AgeMatrixDelayFactor)
	}
}
