// Quickstart: simulate one hard-branch benchmark on the base machine and on
// the PUBS machine, and report what the priority entries bought.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pubsim "repro"
)

func main() {
	const (
		workload = "chess" // models sjeng, the paper's biggest winner
		warmup   = 200_000
		measure  = 500_000
	)

	base, err := pubsim.Run(pubsim.BaseConfig(), workload, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	pubs, err := pubsim.Run(pubsim.PUBSConfig(), workload, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload            %s\n", workload)
	fmt.Printf("base IPC            %.3f\n", base.IPC())
	fmt.Printf("PUBS IPC            %.3f\n", pubs.IPC())
	fmt.Printf("speedup             %+.2f%%\n", pubsim.Speedup(base.IPC(), pubs.IPC()))
	fmt.Printf("branch MPKI         %.1f (%.1f%% of branches mispredicted)\n",
		base.BranchMPKI(), base.MispredictRate()*100)
	fmt.Printf("misspec penalty     %.1f cycles/mispredict on base, %.1f with PUBS\n",
		perMispredict(base), perMispredict(pubs))
	fmt.Printf("PUBS hardware cost  %.1f KB (conf_tab + brslice_tab + def_tab)\n",
		pubsim.PUBSCostKB(pubsim.DefaultPUBS()))
}

func perMispredict(r pubsim.Result) float64 {
	if r.Mispredicts == 0 {
		return 0
	}
	return float64(r.MisspecPenaltyCycles) / float64(r.Mispredicts)
}
