// Sampled simulation: SMARTS-style windows with functional fast-forward
// between them — how to extend the simulator to workloads far longer than
// a contiguous detailed run could cover.
//
//	go run ./examples/sampled
package main

import (
	"fmt"
	"log"

	pubsim "repro"
)

func main() {
	const wl = "compress"
	plan := pubsim.SamplingPlan{
		Windows:     6,
		FastForward: 2_000_000,
		Warmup:      40_000,
		Measure:     80_000,
	}
	for _, cfg := range []pubsim.Config{pubsim.BaseConfig(), pubsim.PUBSConfig()} {
		res, err := pubsim.RunSampled(cfg, wl, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %s: aggregate IPC %.3f (stdev %.3f across %d windows, %d instructions detailed of %d+ executed)\n",
			cfg.Name, wl, res.IPC(), res.IPCStdev(), len(res.Windows), res.Committed,
			plan.Windows*int(plan.FastForward))
	}
}
