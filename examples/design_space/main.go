// Design space: sweep the two PUBS parameters the paper studies — the
// number of priority entries (Fig. 10) and the confidence-counter width
// (Fig. 11) — on a single workload, printing the local sensitivity.
//
//	go run ./examples/design_space
package main

import (
	"fmt"
	"log"

	pubsim "repro"
)

const (
	workload = "goplay"
	warmup   = 150_000
	measure  = 400_000
)

func main() {
	base, err := pubsim.Run(pubsim.BaseConfig(), workload, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: base IPC %.3f, branch MPKI %.1f\n\n",
		workload, base.IPC(), base.BranchMPKI())

	fmt.Println("priority entries (stall policy vs non-stall):")
	for _, entries := range []int{2, 4, 6, 8, 10, 12} {
		var ipc [2]float64
		for k, stall := range []bool{true, false} {
			cfg := pubsim.PUBSConfig()
			cfg.PUBS.PriorityEntries = entries
			cfg.PUBS.StallDispatch = stall
			res, err := pubsim.Run(cfg, workload, warmup, measure)
			if err != nil {
				log.Fatal(err)
			}
			ipc[k] = res.IPC()
		}
		fmt.Printf("  %2d entries: stall %+6.2f%%   non-stall %+6.2f%%\n",
			entries, pubsim.Speedup(base.IPC(), ipc[0]), pubsim.Speedup(base.IPC(), ipc[1]))
	}

	fmt.Println("\nconfidence counter bits:")
	for bits := 2; bits <= 8; bits++ {
		cfg := pubsim.PUBSConfig()
		cfg.PUBS.ConfCounterBits = bits
		res, err := pubsim.Run(cfg, workload, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d bits: %+6.2f%%  (unconfident rate %.1f%%)\n",
			bits, pubsim.Speedup(base.IPC(), res.IPC()), res.UnconfidentRate()*100)
	}
	blind := pubsim.PUBSConfig()
	blind.PUBS.Blind = true
	res, err := pubsim.Run(blind, workload, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  blind : %+6.2f%%  (every branch estimated unconfident)\n",
		pubsim.Speedup(base.IPC(), res.IPC()))
}
