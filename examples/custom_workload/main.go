// Custom workload: write a program against the simulated ISA with the
// assembler builder, validate it functionally, then measure how much PUBS
// helps it.
//
// The kernel is a branchy hash-join probe: a load feeds an unpredictable
// match test (the branch slice), while a checksum chain provides competing
// computation — exactly the structure PUBS exploits.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	pubsim "repro"
)

func buildProbe() *pubsim.Program {
	b := pubsim.NewProgram("hashprobe")

	// Build table: 32K pseudo-random words (256 KB).
	words := make([]uint64, 32768)
	s := uint64(0xFEED)
	for i := range words {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		words[i] = s
	}
	tbl := b.Words(words...)

	var (
		base  = pubsim.R(2)
		i     = pubsim.R(3)
		addr  = pubsim.R(4)
		v     = pubsim.R(5)
		c     = pubsim.R(6)
		t0    = pubsim.R(7)
		sum   = pubsim.R(20)
		crc   = pubsim.R(21)
		joins = pubsim.R(22)
	)

	b.Li(base, int64(tbl))
	b.Label("probe")
	// Branch slice: induction → load → mask → compare.
	b.Addi(i, i, 8)
	b.Andi(i, i, 32768*8-1)
	b.Add(addr, i, base)
	b.Ld(v, addr, 0)
	b.Andi(c, v, 7)
	b.Beq(c, pubsim.R(0), "match") // data-dependent: p ≈ 1/8
	// Miss path: checksum work (the computation slice).
	b.Add(crc, crc, v)
	b.Shli(t0, crc, 1)
	b.Xor(crc, crc, t0)
	b.Addi(crc, crc, 5)
	b.Add(sum, sum, crc)
	b.Shri(t0, sum, 3)
	b.Xor(sum, sum, t0)
	b.Jmp("probe")
	b.Label("match")
	b.Addi(joins, joins, 1)
	b.Add(sum, sum, v)
	b.Jmp("probe")

	return b.MustBuild()
}

func main() {
	prog := buildProbe()

	// Functional sanity check before any timing runs.
	if n, err := pubsim.Emulate(prog, 10_000); err != nil || n != 10_000 {
		log.Fatalf("emulation failed: n=%d err=%v", n, err)
	}

	base, err := pubsim.RunProgram(pubsim.BaseConfig(), prog, 100_000, 400_000)
	if err != nil {
		log.Fatal(err)
	}
	pubs, err := pubsim.RunProgram(pubsim.PUBSConfig(), prog, 100_000, 400_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom workload     %s (%d static instructions)\n", prog.Name, len(prog.Code))
	fmt.Printf("base IPC            %.3f (branch MPKI %.1f)\n", base.IPC(), base.BranchMPKI())
	fmt.Printf("PUBS IPC            %.3f\n", pubs.IPC())
	fmt.Printf("speedup             %+.2f%%\n", pubsim.Speedup(base.IPC(), pubs.IPC()))
	fmt.Printf("unconfident slices  %.1f%% of branches, %d slice instructions\n",
		pubs.UnconfidentRate()*100, pubs.UnconfSliceInsts)
}
