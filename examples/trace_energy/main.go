// Trace + energy: capture one benchmark trace, replay the *identical*
// dynamic stream on the base and PUBS machines, and compare both time and
// activity-model energy — the full trace-driven methodology in one program.
//
//	go run ./examples/trace_energy
package main

import (
	"bytes"
	"fmt"
	"log"

	pubsim "repro"
)

func main() {
	const (
		wl      = "pathfind"
		capture = 700_000
		warmup  = 150_000
		measure = 400_000
	)

	prog, err := pubsim.WorkloadProgram(wl)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := pubsim.CaptureTrace(&buf, prog, capture)
	if err != nil {
		log.Fatal(err)
	}
	traceBytes := buf.Len()
	fmt.Printf("captured %d instructions of %s (%.2f bytes/inst)\n",
		n, wl, float64(traceBytes)/float64(n))

	// Replay the same bytes on both machines.
	base, err := pubsim.ReplayTrace(pubsim.BaseConfig(), bytes.NewReader(buf.Bytes()), warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	pubs, err := pubsim.ReplayTrace(pubsim.PUBSConfig(), bytes.NewReader(buf.Bytes()), warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base IPC %.3f → PUBS IPC %.3f (%+.2f%%)\n",
		base.IPC(), pubs.IPC(), pubsim.Speedup(base.IPC(), pubs.IPC()))

	c := pubsim.DefaultEnergy()
	cmp := pubsim.EnergyCompare{
		Base:  pubsim.EstimateEnergy(pubsim.BaseConfig(), base, c),
		Other: pubsim.EstimateEnergy(pubsim.PUBSConfig(), pubs, c),
	}
	fmt.Print(cmp.Table())
}
