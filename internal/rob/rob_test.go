package rob

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	r := New(3)
	for i := 10; i < 13; i++ {
		if !r.Alloc(i) {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if r.Alloc(99) {
		t.Error("full ROB accepted an entry")
	}
	for want := 10; want < 13; want++ {
		if h, ok := r.Head(); !ok || h != want {
			t.Errorf("head = %d,%v want %d", h, ok, want)
		}
		if h, ok := r.Pop(); !ok || h != want {
			t.Errorf("pop = %d,%v want %d", h, ok, want)
		}
	}
	if !r.Empty() {
		t.Error("ROB should be empty")
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty pop succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	r := New(2)
	r.Alloc(1)
	r.Alloc(2)
	r.Pop()
	r.Alloc(3) // wraps
	if h, _ := r.Pop(); h != 2 {
		t.Errorf("pop = %d, want 2", h)
	}
	if h, _ := r.Pop(); h != 3 {
		t.Errorf("pop = %d, want 3", h)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	New(0)
}

// Property: the ROB is an exact FIFO under random interleavings, and Len
// never exceeds Cap.
func TestQuickFIFO(t *testing.T) {
	r := New(8)
	var model []int
	next := 0
	f := func(ops []byte) bool {
		for _, op := range ops {
			if op%2 == 0 {
				next++
				if r.Alloc(next) != (len(model) < 8) {
					return false
				}
				if len(model) < 8 {
					model = append(model, next)
				}
			} else {
				h, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if h != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) || r.Len() > r.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
