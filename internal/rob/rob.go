// Package rob implements the reorder buffer: a bounded in-order ring of
// instruction handles. The pipeline owns per-instruction state; the ROB
// enforces program-order allocation and retirement and the structural
// capacity limit (Table I: 128 entries).
//
// The ROB never observes the cycle counter — it changes only on
// Alloc/Pop calls from active pipeline stages — so it is trivially
// skip-invariant under the idle-cycle skip (DESIGN.md §14).
package rob

import (
	"fmt"

	"repro/internal/simerr"
)

// ROB is a fixed-capacity FIFO of opaque handles.
type ROB struct {
	entries []int
	head    int
	count   int
}

// New returns a ROB with the given capacity.
func New(capacity int) *ROB {
	if capacity <= 0 {
		panic("rob: capacity must be positive")
	}
	return &ROB{entries: make([]int, capacity)}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return len(r.entries) }

// Len returns the number of live entries.
func (r *ROB) Len() int { return r.count }

// Full reports whether allocation would fail.
func (r *ROB) Full() bool { return r.count == len(r.entries) }

// Empty reports whether the ROB holds no instructions.
func (r *ROB) Empty() bool { return r.count == 0 }

// Reset empties the buffer.
func (r *ROB) Reset() {
	r.head = 0
	r.count = 0
}

// Alloc appends a handle in program order.
func (r *ROB) Alloc(handle int) bool {
	if r.Full() {
		return false
	}
	r.entries[(r.head+r.count)%len(r.entries)] = handle
	r.count++
	return true
}

// Head returns the oldest handle without removing it.
func (r *ROB) Head() (handle int, ok bool) {
	if r.count == 0 {
		return 0, false
	}
	return r.entries[r.head], true
}

// At returns the i-th oldest handle (At(0) == Head) without removing it.
// The commit-run burst (pipeline §14 phase 2) reads the head run through
// it to bound a retirement span; like every other accessor it never
// observes the cycle counter, so it cannot perturb skip invariance.
func (r *ROB) At(i int) (handle int, ok bool) {
	if i < 0 || i >= r.count {
		return 0, false
	}
	return r.entries[(r.head+i)%len(r.entries)], true
}

// Pop retires the oldest handle.
func (r *ROB) Pop() (handle int, ok bool) {
	if r.count == 0 {
		return 0, false
	}
	h := r.entries[r.head]
	r.head = (r.head + 1) % len(r.entries)
	r.count--
	return h, true
}

// CheckInvariants audits the ring state: occupancy within capacity, head
// within range, and no duplicate live handles (each in-flight instruction
// occupies exactly one ROB slot). Violations wrap simerr.ErrInvariant.
func (r *ROB) CheckInvariants() error {
	if r.count < 0 || r.count > len(r.entries) {
		return fmt.Errorf("%w: rob: occupancy %d outside [0,%d]", simerr.ErrInvariant, r.count, len(r.entries))
	}
	if r.head < 0 || r.head >= len(r.entries) {
		return fmt.Errorf("%w: rob: head %d outside [0,%d)", simerr.ErrInvariant, r.head, len(r.entries))
	}
	seen := make(map[int]bool, r.count)
	for i := 0; i < r.count; i++ {
		h := r.entries[(r.head+i)%len(r.entries)]
		if seen[h] {
			return fmt.Errorf("%w: rob: handle %d appears twice", simerr.ErrInvariant, h)
		}
		seen[h] = true
	}
	return nil
}
