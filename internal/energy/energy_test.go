package energy

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

func TestEstimateComponents(t *testing.T) {
	var res pipeline.Result
	res.Name = "synthetic"
	res.Committed = 1000
	res.Cycles = 500
	res.Issued = 900
	res.CondBranches = 100
	res.L1D.Accesses = 200
	res.L1I.Accesses = 50
	res.L2.Accesses = 20
	res.L2.Misses = 5
	cfg := pipeline.BaseConfig()
	c := Defaults()
	rep := Estimate(cfg, res, c)

	if rep.PUBS != 0 {
		t.Error("base machine must have zero PUBS energy")
	}
	wantCaches := 250*c.L1Access + 20*c.L2Access
	if rep.Caches != wantCaches {
		t.Errorf("caches = %f, want %f", rep.Caches, wantCaches)
	}
	if rep.Memory != 5*c.MemAccess {
		t.Errorf("memory = %f", rep.Memory)
	}
	if rep.Leakage != 500*c.LeakPerCycle {
		t.Errorf("leakage = %f", rep.Leakage)
	}
	if rep.EPI() <= 0 {
		t.Error("EPI must be positive")
	}
	sum := rep.Caches + rep.Memory + rep.Pipeline + rep.Predictor + rep.Leakage
	if rep.Total() != sum {
		t.Error("total does not add up")
	}
}

func TestPUBSEnergyAccounted(t *testing.T) {
	var res pipeline.Result
	res.Committed = 1000
	res.DecodedBranches = 100
	res.Cycles = 1
	cfg := pipeline.PUBSConfig()
	rep := Estimate(cfg, res, Defaults())
	if rep.PUBS <= 0 {
		t.Error("PUBS machine must charge table energy")
	}
	if rep.TableOverheadPct() <= 0 || rep.TableOverheadPct() > 50 {
		t.Errorf("table overhead %.2f%% implausible", rep.TableOverheadPct())
	}
}

// TestPUBSNetEnergyWin: on a compute D-BP workload, PUBS's speedup must
// outweigh its table-access energy — the extended Table III argument.
func TestPUBSNetEnergyWin(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog := workload.MustProgram("chess")
	base, err := pipeline.RunProgram(pipeline.BaseConfig(), prog, 50_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := pipeline.RunProgram(pipeline.PUBSConfig(), prog, 50_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	cp := Compare{
		Base:  Estimate(pipeline.BaseConfig(), base, Defaults()),
		Other: Estimate(pipeline.PUBSConfig(), pubs, Defaults()),
	}
	if cp.SavingsPct() <= 0 {
		t.Errorf("PUBS should save net energy on chess, got %+.2f%%", cp.SavingsPct())
	}
	// The tables themselves must be a small fraction of total energy.
	if oh := cp.Other.TableOverheadPct(); oh > 2.0 {
		t.Errorf("PUBS table energy %.2f%% of total — should be marginal", oh)
	}
	out := cp.Table()
	for _, want := range []string{"caches", "leakage", "net energy saving"} {
		if !strings.Contains(out, want) {
			t.Errorf("energy table missing %q:\n%s", want, out)
		}
	}
}

func TestCostKB(t *testing.T) {
	if kb := CostKB(pipeline.PUBSConfig().PUBS); kb < 3.5 || kb > 4.5 {
		t.Errorf("cost %.2f KB", kb)
	}
}
