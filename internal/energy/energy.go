// Package energy estimates per-run energy from event counts — a
// Wattch-style activity model. The paper argues PUBS's 4 KB of tables is
// cheap in area; this model extends the argument to energy: the tables add
// a small per-instruction access cost, while the speedup removes leakage
// and clock cycles, so PUBS is typically a net energy win on D-BP code.
//
// The per-access constants are representative 16 nm-class values (order-of-
// magnitude CACTI-style numbers). Absolute joules are not calibrated to any
// silicon; use the model for *relative* comparisons between machines
// running the same work, which is how the experiment harness uses it.
//
// The model is evaluated post-hoc from a finished Result — including the
// leakage term, which integrates over Result.Cycles rather than ticking
// per simulated cycle — so it is skip-invariant under the pipeline's
// idle-cycle skip (DESIGN.md §14) by construction: identical Results give
// identical energy, and the skip is gated on producing identical Results.
package energy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Constants hold per-event energies in picojoules.
type Constants struct {
	L1Access     float64 // 32 KB SRAM read/write
	L2Access     float64 // 2 MB SRAM access
	MemAccess    float64 // DRAM line fetch (64 B)
	IssueOp      float64 // wakeup+select+payload read per issued op
	CommitOp     float64 // ROB/regfile retirement per op
	FetchOp      float64 // fetch/decode/rename per instruction
	PredictorOp  float64 // direction predictor + BTB access
	PUBSDecodeOp float64 // def_tab + brslice_tab access per decoded inst
	PUBSConfOp   float64 // conf_tab access per branch (lookup or update)
	LeakPerCycle float64 // whole-core leakage + clock tree per cycle
}

// Defaults returns the representative constants.
func Defaults() Constants {
	return Constants{
		L1Access:     15,
		L2Access:     80,
		MemAccess:    2600,
		IssueOp:      12,
		CommitOp:     8,
		FetchOp:      10,
		PredictorOp:  6,
		PUBSDecodeOp: 0.6,
		PUBSConfOp:   0.4,
		LeakPerCycle: 45,
	}
}

// Report breaks one run's energy down by component (picojoules).
type Report struct {
	Name      string
	Caches    float64
	Memory    float64
	Pipeline  float64 // fetch + issue + commit
	Predictor float64
	PUBS      float64
	Leakage   float64
	Insts     uint64
}

// Total returns the summed energy in pJ.
func (r Report) Total() float64 {
	return r.Caches + r.Memory + r.Pipeline + r.Predictor + r.PUBS + r.Leakage
}

// EPI returns energy per committed instruction (pJ).
func (r Report) EPI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return r.Total() / float64(r.Insts)
}

// Estimate computes the energy report for a finished run.
func Estimate(cfg pipeline.Config, res pipeline.Result, c Constants) Report {
	rep := Report{Name: res.Name, Insts: res.Committed}
	l1 := float64(res.L1I.Accesses+res.L1D.Accesses) * c.L1Access
	l2 := float64(res.L2.Accesses) * c.L2Access
	rep.Caches = l1 + l2
	rep.Memory = float64(res.L2.Misses+res.L2.PrefetchReqs) * c.MemAccess
	rep.Pipeline = float64(res.Committed)*(c.FetchOp+c.CommitOp) +
		float64(res.Issued)*c.IssueOp
	rep.Predictor = float64(res.CondBranches) * c.PredictorOp
	if cfg.PUBS.Enable {
		// def_tab/brslice_tab touched for every decoded instruction;
		// conf_tab for every branch twice (decode lookup + execute update).
		rep.PUBS = float64(res.Committed)*c.PUBSDecodeOp +
			float64(res.DecodedBranches)*2*c.PUBSConfOp
	}
	rep.Leakage = float64(res.Cycles) * c.LeakPerCycle
	return rep
}

// Compare renders a base-vs-machine energy comparison for equal work.
type Compare struct {
	Base, Other Report
}

// SavingsPct returns the percentage total-energy saving of Other vs Base
// (positive = Other cheaper).
func (cp Compare) SavingsPct() float64 {
	if cp.Base.Total() == 0 {
		return 0
	}
	return (1 - cp.Other.Total()/cp.Base.Total()) * 100
}

// Table renders the comparison.
func (cp Compare) Table() string {
	t := stats.NewTable(
		fmt.Sprintf("Energy (pJ/instruction) — %s vs %s", cp.Base.Name, cp.Other.Name),
		"component", cp.Base.Name, cp.Other.Name)
	row := func(name string, a, b float64) {
		t.Row(name, a/float64(cp.Base.Insts), b/float64(cp.Other.Insts))
	}
	row("caches", cp.Base.Caches, cp.Other.Caches)
	row("memory", cp.Base.Memory, cp.Other.Memory)
	row("pipeline", cp.Base.Pipeline, cp.Other.Pipeline)
	row("predictor", cp.Base.Predictor, cp.Other.Predictor)
	row("PUBS tables", cp.Base.PUBS, cp.Other.PUBS)
	row("leakage+clock", cp.Base.Leakage, cp.Other.Leakage)
	t.Row("total EPI", cp.Base.EPI(), cp.Other.EPI())
	return t.String() + fmt.Sprintf("net energy saving: %+.2f%%\n", cp.SavingsPct())
}

// TableOverheadPct returns the PUBS tables' share of total energy — the
// "is 4 KB of extra state worth it" sanity number.
func (r Report) TableOverheadPct() float64 {
	if r.Total() == 0 {
		return 0
	}
	return r.PUBS / r.Total() * 100
}

// CostKB re-exports the PUBS storage cost so energy reports can cite it.
func CostKB(p core.Config) float64 { return core.Cost(p).TotalKB() }
