package service

import (
	"sync"

	"repro/internal/faultinject"
)

// cacheOutcome says how a cell was satisfied: a fresh execution, a
// content-address hit on a completed result, or a merge onto an execution
// another submission already had in flight (singleflight).
type cacheOutcome int

const (
	outcomeRun cacheOutcome = iota
	outcomeHit
	outcomeMerged
)

func (o cacheOutcome) String() string {
	switch o {
	case outcomeHit:
		return "cached"
	case outcomeMerged:
		return "merged"
	default:
		return "simulated"
	}
}

// flight is one in-progress execution that late arrivals wait on.
type flight struct {
	done chan struct{}
	res  CellResult
	err  error
}

// resultCache is the daemon's content-addressed result store: finished
// cells keyed by their Cell.Key (the checkpoint store's hashing
// discipline), plus a singleflight table so concurrent identical cells —
// two users submitting the same sweep at once — execute exactly once.
// Failures are never cached: an error propagates to every merged waiter,
// and the next submission retries fresh.
type resultCache struct {
	mu       sync.Mutex
	done     map[string]CellResult
	inflight map[string]*flight
}

func newResultCache() *resultCache {
	return &resultCache{
		done:     make(map[string]CellResult),
		inflight: make(map[string]*flight),
	}
}

// Do returns the cached result for key, joins an in-flight execution of
// it, or runs build itself — whichever applies. The outcome reports which
// path was taken so the metrics layer can expose the dedup rate.
func (c *resultCache) Do(key string, build func() (CellResult, error)) (CellResult, cacheOutcome, error) {
	c.mu.Lock()
	if res, ok := c.done[key]; ok {
		c.mu.Unlock()
		return res, outcomeHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.res, outcomeMerged, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res, f.err = build()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.done[key] = f.res
		// Chaos point: drop the entry right after storing it, simulating a
		// cache loss between a cell finishing and a client reading it. The
		// caller still gets f.res; later reads fall through to the
		// checkpoint-backed runner, which must reproduce it bit-identically.
		if faultinject.Fire(faultinject.CacheEvict, key) {
			delete(c.done, key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, outcomeRun, f.err
}

// claimState is the outcome of Claim: a completed hit, a merge onto a
// flight another claimant owns, or ownership of a fresh flight the caller
// must Resolve.
type claimState int

const (
	claimHit claimState = iota
	claimMerged
	claimOwned
)

// Claim is the two-phase form of Do for callers that resolve many keys
// from one batched execution (the cluster's sweep dispatch): it returns a
// completed result (claimHit), a flight to wait on (claimMerged), or
// registers and returns a flight the caller now owns (claimOwned). Every
// owned flight must eventually be passed to Resolve, or merged waiters
// block forever.
func (c *resultCache) Claim(key string) (CellResult, *flight, claimState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res, ok := c.done[key]; ok {
		return res, nil, claimHit
	}
	if f, ok := c.inflight[key]; ok {
		return CellResult{}, f, claimMerged
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return CellResult{}, f, claimOwned
}

// Resolve completes a flight obtained from Claim with claimOwned,
// mirroring Do's landing: failures are never cached, successes are stored
// (subject to the same chaos point), and every merged waiter is released.
func (c *resultCache) Resolve(key string, f *flight, res CellResult, err error) {
	f.res, f.err = res, err
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.done[key] = res
		if faultinject.Fire(faultinject.CacheEvict, key) {
			delete(c.done, key)
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// Adopt installs a result computed elsewhere (a cluster peer) under its own
// content key. An existing local entry wins: by the bit-identity contract
// the two are equal, and the local one may already be serving readers.
// Waiters merged onto an in-flight execution of the same key are left to
// that flight — Adopt never resolves a flight it did not start.
func (c *resultCache) Adopt(res CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.done[res.Key]; !ok {
		c.done[res.Key] = res
	}
}

// Get returns a completed result by content key.
func (c *resultCache) Get(key string) (CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.done[key]
	return res, ok
}

// Len returns the number of completed entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}
