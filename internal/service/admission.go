package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simerr"
)

// ErrRateLimited means the submitting tenant exhausted its token bucket;
// the HTTP layer maps it to 429 with a Retry-After hint.
var ErrRateLimited = errors.New("service: tenant rate limit exceeded")

// RetryAfterError wraps a refusal with a client backoff hint. The HTTP
// layer surfaces After as a Retry-After header; errors.Is reaches through
// to the wrapped sentinel (ErrQueueFull, ErrRateLimited, ErrDraining).
type RetryAfterError struct {
	Err   error
	After time.Duration
}

// Error renders the refusal with its hint.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After)
}

// Unwrap exposes the wrapped refusal to errors.Is/As.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfter wraps err with a backoff hint, flooring at one second so the
// rendered header is never "Retry-After: 0".
func retryAfter(err error, d time.Duration) error {
	if d < time.Second {
		d = time.Second
	}
	return &RetryAfterError{Err: err, After: d}
}

// tokenBucket is one tenant's submission budget: burst capacity refilled
// at rate tokens/second. Callers hold the owning table's lock.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// tenantLimiter maps tenants to token buckets. A zero rate disables
// limiting entirely (the table stays empty).
type tenantLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if burst <= 0 {
		burst = 4
	}
	return &tenantLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*tokenBucket)}
}

// take spends one token from tenant's bucket. When the bucket is dry it
// returns false and how long until the next token accrues — the
// Retry-After hint. The empty tenant shares one "default" bucket, so
// anonymous traffic is rate-limited collectively rather than escaping
// per-tenant fairness by omitting the field.
func (t *tenantLimiter) take(tenant string) (bool, time.Duration) {
	if t.rate <= 0 {
		return true, 0
	}
	if tenant == "" {
		tenant = "default"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	b, ok := t.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: t.burst, last: now}
		t.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * t.rate
	if b.tokens > t.burst {
		b.tokens = t.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / t.rate * float64(time.Second))
	return false, wait
}

// jobQueue is the bounded, priority-ordered submission queue that replaced
// the plain channel: higher Priority pops first, FIFO within a priority
// band, and a full queue can evict its lowest-priority entry to admit more
// important work (shedLowest). Capacity is enforced by Submit, not here,
// so journal recovery can re-enqueue past the cap without dropping
// campaigns that were already accepted once.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job // sorted: priority desc, then arrival order asc
	seq    uint64
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push inserts the job in priority order (stable within a band).
func (q *jobQueue) push(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	j.qseq = q.seq
	i := len(q.items)
	for i > 0 && q.items[i-1].priority < j.priority {
		i--
	}
	q.items = append(q.items, nil)
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = j
	q.cond.Signal()
}

// pop blocks until a job is available (highest priority first) or the
// queue is closed and drained, mirroring a closed channel's semantics so
// shutdown still runs every accepted job.
func (q *jobQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j, true
}

// shedLowest removes and returns the queued job with the lowest priority,
// provided it is strictly below `below` (nil otherwise): the eviction that
// makes room for more important work at the high-water mark. Among equals
// the most recent arrival is shed, preserving FIFO fairness for the rest.
func (q *jobQueue) shedLowest(below int) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := len(q.items); n > 0 && q.items[n-1].priority < below {
		j := q.items[n-1]
		q.items[n-1] = nil
		q.items = q.items[:n-1]
		return j
	}
	return nil
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops pop from blocking once the queue drains.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Breaker states, exported as the pubsd_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is the circuit breaker around the simulator: Threshold
// consecutive recovered panics trip it open, refusing further detailed
// simulation (cached and checkpointed results still serve — degraded,
// cached-only mode) until Cooldown elapses; then one half-open probe
// decides whether to close it or re-trip. Only panics count as failures:
// timeouts and deadlocks are per-run properties, but a panicking simulator
// is a daemon-threatening bug to contain.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a simulation attempt may proceed, transitioning
// open→half-open after the cooldown (one probe at a time). The returned
// error wraps simerr.ErrCircuitOpen.
func (b *breaker) Allow() error {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return fmt.Errorf("service: %w after %d consecutive simulator panics (degraded, cached-only)",
				simerr.ErrCircuitOpen, b.consecutive)
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return fmt.Errorf("service: %w, probe in flight (degraded, cached-only)", simerr.ErrCircuitOpen)
		}
		b.probing = true
		return nil
	}
}

// Record feeds one attempt's outcome back. A panic in half-open re-trips
// immediately; any non-panic outcome there closes the breaker (the
// simulator is no longer panicking — ordinary failures have their own
// handling). In the closed state only a panic streak of Threshold trips.
func (b *breaker) Record(err error) {
	if b == nil || b.threshold <= 0 {
		return
	}
	isPanic := errors.Is(err, simerr.ErrPanic)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if isPanic {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.trips++
			return
		}
		b.state = breakerClosed
		b.consecutive = 0
	case breakerClosed:
		if !isPanic {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.trips++
		}
	}
	// Open: attempts admitted before the trip may still drain their
	// outcomes here; they carry no new information.
}

// State returns the breaker position and total trips.
func (b *breaker) State() (state int, trips uint64) {
	if b == nil {
		return breakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}

// StateString names the state for /healthz.
func breakerStateString(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
