package service

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/stats"
)

// metrics is the daemon's observable state: queue/worker gauges, traffic
// and dedup counters, and a per-job latency histogram. Rendered as
// Prometheus-style text by /metrics.
type metrics struct {
	start time.Time

	jobsSubmitted atomic.Uint64
	jobsRejected  atomic.Uint64 // queue-full and draining refusals
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64

	jobsShed    atomic.Uint64 // overload evictions and high-water refusals
	rateLimited atomic.Uint64 // tenant token-bucket refusals

	cellsCompleted atomic.Uint64
	cellsFailed    atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64 // fresh executions
	merged         atomic.Uint64 // singleflight-deduped concurrent cells
	degradedCells  atomic.Uint64 // fresh simulations refused by the open breaker

	journalRecords atomic.Uint64 // successful journal appends (fed to the journal)
	journalErrors  atomic.Uint64 // failed journal appends
	jobsRecovered  atomic.Uint64 // jobs re-enqueued from the journal at boot

	activeJobs  atomic.Int64
	workersBusy atomic.Int64

	// Latency histograms: log2 buckets of whole milliseconds (bucket i
	// covers [2^(i-1), 2^i) ms, bucket 0 is <1 ms), reusing the stats
	// package histogram; quantiles are bucket upper bounds. lat is per-job
	// submit-to-finish latency; win is per-window detailed replay latency,
	// fed by the runners' WindowObserve hook.
	latMu sync.Mutex
	lat   *stats.Histogram
	winMu sync.Mutex
	win   *stats.Histogram

	// Plan exchange: the pubsd_plan_* family (zero-valued on a standalone
	// daemon). Peer hits count plans adopted instead of computed — from the
	// replica cache or a peer fetch; pushes count plans this node
	// serialized and replicated proactively.
	planPeerHits   atomic.Uint64
	planPushes     atomic.Uint64
	planPushBytes  atomic.Uint64
	planFetchBytes atomic.Uint64

	// cluster is the pubsd_cluster_* family, fed by the cluster package
	// (zero-valued on a standalone daemon).
	cluster ClusterCounters
}

// latBuckets covers up to ~2^39 ms (≈17 years) of job latency.
const latBuckets = 40

func newMetrics() *metrics {
	return &metrics{
		start: time.Now(),
		lat:   stats.NewHistogram(latBuckets),
		win:   stats.NewHistogram(latBuckets),
	}
}

func (m *metrics) observeLatency(d time.Duration) {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	m.latMu.Lock()
	m.lat.Add(bits.Len64(uint64(ms)))
	m.latMu.Unlock()
}

// observeWindow records one detailed window's replay wall-clock time.
// Safe for concurrent use: parallel window workers all feed it.
func (m *metrics) observeWindow(d time.Duration) {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	m.winMu.Lock()
	m.win.Add(bits.Len64(uint64(ms)))
	m.winMu.Unlock()
}

// latencyQuantileMS returns the upper bound in ms of the bucket holding
// the q-quantile observation.
func (m *metrics) latencyQuantileMS(q float64) int64 {
	m.latMu.Lock()
	defer m.latMu.Unlock()
	return quantileMS(m.lat, q)
}

// windowQuantileMS is latencyQuantileMS for the replay histogram.
func (m *metrics) windowQuantileMS(q float64) int64 {
	m.winMu.Lock()
	defer m.winMu.Unlock()
	return quantileMS(m.win, q)
}

func quantileMS(h *stats.Histogram, q float64) int64 {
	if h.Total() == 0 {
		return 0
	}
	idx := h.Quantile(q)
	if idx == 0 {
		return 1
	}
	return 1 << idx
}

// snapshotGauges is what the Service contributes at render time.
type snapshotGauges struct {
	queueDepth       int
	workers          int
	cacheEntries     int
	simulated        uint64 // detailed simulations actually executed (runner stats)
	memoHits         uint64
	ckptHits         uint64
	retries          uint64
	snapPlans        uint64 // functional fast-forward passes for sampled jobs (local only)
	snapPeerPlans    uint64 // plans adopted from the cluster instead of computed
	snapHits         uint64 // sampled runs answered from shared snapshots
	snapEvictions    uint64 // predecoded plans evicted by the trace byte budget
	traceResident    int64  // bytes of snapshots + predecoded traces resident
	traceBudget      int64  // configured budget (0 = unbounded)
	planReplicas     int    // proactively pushed plans resident in the replica cache
	planReplicaBytes int64
	draining         bool
	breakerState     int    // 0 closed | 1 half-open | 2 open
	breakerTrips     uint64 // closed→open transitions since boot
}

// render emits the metrics in Prometheus text exposition format. Every
// series carries a `node` label — the daemon's stable cluster identity —
// so dashboards scraping a whole fabric can attribute load per node.
func (m *metrics) render(node string, g snapshotGauges) string {
	var sb strings.Builder
	up := time.Since(m.start).Seconds()
	line := func(name string, v any) {
		fmt.Fprintf(&sb, "%s{node=%q} %v\n", name, node, v)
	}
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	line("pubsd_uptime_seconds", fmt.Sprintf("%.3f", up))
	line("pubsd_draining", b(g.draining))

	line("pubsd_queue_depth", g.queueDepth)
	line("pubsd_active_jobs", m.activeJobs.Load())
	line("pubsd_workers", g.workers)
	line("pubsd_workers_busy", m.workersBusy.Load())

	line("pubsd_jobs_submitted_total", m.jobsSubmitted.Load())
	line("pubsd_jobs_rejected_total", m.jobsRejected.Load())
	line("pubsd_jobs_shed_total", m.jobsShed.Load())
	line("pubsd_rate_limited_total", m.rateLimited.Load())
	line("pubsd_jobs_completed_total", m.jobsDone.Load())
	line("pubsd_jobs_failed_total", m.jobsFailed.Load())

	line("pubsd_breaker_state", g.breakerState)
	line("pubsd_breaker_trips_total", g.breakerTrips)
	line("pubsd_degraded_cells_total", m.degradedCells.Load())

	line("pubsd_journal_records_total", m.journalRecords.Load())
	line("pubsd_journal_errors_total", m.journalErrors.Load())
	line("pubsd_journal_recovered_jobs", m.jobsRecovered.Load())

	line("pubsd_cluster_peers", m.cluster.peers.Load())
	line("pubsd_cluster_steals_total", m.cluster.steals.Load())
	line("pubsd_cluster_peer_cache_hits_total", m.cluster.peerHits.Load())
	line("pubsd_cluster_remote_cells_total", m.cluster.remoteCells.Load())
	line("pubsd_cluster_node_failures_total", m.cluster.nodeFailures.Load())
	line("pubsd_cluster_result_pushes_total", m.cluster.resultPushes.Load())

	// Plan exchange: how the fleet shares functional fast-forward work.
	// pubsd_snapshot_plans_total (below) stays local-passes-only, so
	// summing it across a cluster counts the fleet's true functional cost.
	line("pubsd_plan_peer_hits_total", m.planPeerHits.Load())
	line("pubsd_plan_pushes_total", m.planPushes.Load())
	line("pubsd_plan_bytes_pushed_total", m.planPushBytes.Load())
	line("pubsd_plan_bytes_fetched_total", m.planFetchBytes.Load())
	line("pubsd_plan_replicas_resident", g.planReplicas)
	line("pubsd_plan_replica_bytes", g.planReplicaBytes)

	line("pubsd_cells_completed_total", m.cellsCompleted.Load())
	line("pubsd_cells_failed_total", m.cellsFailed.Load())
	line("pubsd_cache_entries", g.cacheEntries)
	line("pubsd_cache_hits_total", m.cacheHits.Load())
	line("pubsd_cache_misses_total", m.cacheMisses.Load())
	line("pubsd_singleflight_merged_total", m.merged.Load())

	// Idle-skip efficacy (pipeline §14): process-wide spans/cycles covered
	// by null skips and quasi-null bursts, flushed once per simulation run.
	skipSpans, skippedCycles, burstSpans, burstCycles := pipeline.SkipCounters()
	line("pubsd_skip_spans_total", skipSpans)
	line("pubsd_skipped_cycles_total", skippedCycles)
	line("pubsd_skip_burst_spans_total", burstSpans)
	line("pubsd_skip_burst_cycles_total", burstCycles)

	line("pubsd_sims_executed_total", g.simulated)
	line("pubsd_runner_memo_hits_total", g.memoHits)
	line("pubsd_runner_checkpoint_hits_total", g.ckptHits)
	line("pubsd_runner_retries_total", g.retries)
	line("pubsd_snapshot_plans_total", g.snapPlans)
	line("pubsd_snapshot_peer_plans_total", g.snapPeerPlans)
	line("pubsd_snapshot_hits_total", g.snapHits)
	// Predecoded-trace cache: a plan is a miss (one functional pass paid),
	// a hit answered a run from a resident plan.
	line("pubsd_predecode_hits_total", g.snapHits)
	line("pubsd_predecode_misses_total", g.snapPlans)
	line("pubsd_predecode_evictions_total", g.snapEvictions)
	line("pubsd_trace_resident_bytes", g.traceResident)
	line("pubsd_trace_budget_bytes", g.traceBudget)
	rate := 0.0
	if up > 0 {
		rate = float64(g.simulated) / up
	}
	line("pubsd_sims_per_second", fmt.Sprintf("%.3f", rate))

	m.latMu.Lock()
	total := m.lat.Total()
	m.latMu.Unlock()
	line("pubsd_job_latency_count", total)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(&sb, "pubsd_job_latency_ms{node=%q,quantile=\"%g\"} %d\n", node, q, m.latencyQuantileMS(q))
	}
	m.winMu.Lock()
	wins := m.win.Total()
	m.winMu.Unlock()
	line("pubsd_window_replay_latency_count", wins)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(&sb, "pubsd_window_replay_latency_ms{node=%q,quantile=\"%g\"} %d\n", node, q, m.windowQuantileMS(q))
	}
	return sb.String()
}
