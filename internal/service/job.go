package service

import (
	"sync"
	"time"

	"repro/internal/experiments"
)

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: queued → running → done | failed. A job with any failed
// cell finishes failed but still carries every completed cell's result —
// the partial-figure discipline the CLI campaign runner established. A
// queued job shed by admission control goes straight to failed.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool { return s == JobDone || s == JobFailed }

// Event is one NDJSON line of GET /v1/jobs/{id}/events.
type Event struct {
	Type      string    `json:"type"` // queued | started | progress | cell | done | failed
	Job       string    `json:"job"`
	Time      time.Time `json:"time"`
	Key       string    `json:"key,omitempty"`       // cell events: content address
	Machine   string    `json:"machine,omitempty"`   // cell events
	Workload  string    `json:"workload,omitempty"`  // cell events
	Outcome   string    `json:"outcome,omitempty"`   // cell events: simulated | cached | merged
	Committed uint64    `json:"committed,omitempty"` // progress events: instructions committed so far
	Completed int       `json:"completed,omitempty"`
	Total     int       `json:"total,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// maxJobEvents bounds a job's event history; past the cap, progress events
// are dropped (terminal and cell events always land).
const maxJobEvents = 8192

// Job is one submitted campaign: its cells, their results as they land,
// and an event log streamed to any number of subscribers.
type Job struct {
	id       string
	spec     CampaignSpec
	cells    []experiments.Cell
	opts     experiments.Options
	tenant   string
	priority int
	qseq     uint64   // arrival order within the priority queue
	jl       *journal // nil-safe durable log shared with the Service

	// perMachine is the grid stride: cells per machine (= the workload
	// count), so cell i belongs to machine i/perMachine. Zero for jobs
	// whose grid failed to expand (recovery failures).
	perMachine int

	cellWG sync.WaitGroup

	mu        sync.Mutex
	state     JobState
	results   []CellResult // indexed like cells; zero Key = pending
	reported  []bool       // cellDone already accepted for this index
	cellErrs  []string
	completed int
	failed    int
	events    []Event
	dropped   int
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

func newJob(id string, spec CampaignSpec, cells []experiments.Cell, opts experiments.Options, jl *journal) *Job {
	j := &Job{
		id:        id,
		spec:      spec,
		cells:     cells,
		opts:      opts,
		tenant:    spec.Tenant,
		priority:  spec.Priority,
		jl:        jl,
		state:     JobQueued,
		results:   make([]CellResult, len(cells)),
		reported:  make([]bool, len(cells)),
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if len(spec.Machines) > 0 {
		j.perMachine = len(cells) / len(spec.Machines)
	}
	j.events = append(j.events, Event{Type: "queued", Job: id, Time: j.submitted, Total: len(cells)})
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// append adds an event under j.mu.
func (j *Job) append(e Event) {
	if len(j.events) >= maxJobEvents && e.Type == "progress" {
		j.dropped++
		return
	}
	e.Job = j.id
	e.Time = time.Now()
	j.events = append(j.events, e)
}

func (j *Job) start() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.append(Event{Type: "started", Total: len(j.cells)})
	j.mu.Unlock()
	j.jl.append(journalRecord{Type: "start", Job: j.id})
}

// progress records a cell's committed-instruction count mid-simulation.
func (j *Job) progress(cell experiments.Cell, key string, committed uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.append(Event{
		Type: "progress", Key: key,
		Machine: cell.Config.Name, Workload: cell.Workload,
		Committed: committed, Completed: j.completed, Total: len(j.cells),
	})
}

// cellDone records one finished cell and releases its wait-group slot. It
// is idempotent per index: the worker-pool panic recovery sweeps every
// index of a task, and only the unreported ones count — so a panic midway
// through a sweep can never double-complete a cell or unbalance cellWG.
func (j *Job) cellDone(idx int, res CellResult, outcome cacheOutcome, err error) {
	cell := j.cells[idx]
	j.mu.Lock()
	if j.reported[idx] {
		j.mu.Unlock()
		return
	}
	j.reported[idx] = true
	e := Event{
		Type: "cell", Key: res.Key,
		Machine: cell.Config.Name, Workload: cell.Workload,
		Outcome: outcome.String(), Total: len(j.cells),
	}
	if err != nil {
		j.failed++
		j.cellErrs = append(j.cellErrs, cell.Config.Name+"/"+cell.Workload+": "+err.Error())
		e.Error = err.Error()
	} else {
		j.results[idx] = res
		j.completed++
	}
	e.Completed = j.completed
	j.append(e)
	j.mu.Unlock()
	rec := journalRecord{Type: "cell", Job: j.id, Key: res.Key, Outcome: outcome.String()}
	if err != nil {
		rec.Error = err.Error()
	}
	j.jl.append(rec)
	j.cellWG.Done()
}

// finalize moves the job to its terminal state.
func (j *Job) finalize() {
	j.mu.Lock()
	j.finished = time.Now()
	typ := "done"
	j.state = JobDone
	if j.failed > 0 {
		typ = "failed"
		j.state = JobFailed
	}
	j.append(Event{Type: typ, Completed: j.completed, Total: len(j.cells)})
	j.mu.Unlock()
	j.jl.append(journalRecord{Type: typ, Job: j.id})
	close(j.done)
}

// fail terminates a job that never started — the shed path. The caller
// (Submit, holding the service lock) guarantees the dispatcher has not
// seen it, so no cells are in flight.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.state = JobFailed
	j.cellErrs = append(j.cellErrs, err.Error())
	j.append(Event{Type: "failed", Error: err.Error(), Total: len(j.cells)})
	j.mu.Unlock()
	j.jl.append(journalRecord{Type: "failed", Job: j.id, Error: err.Error()})
	close(j.done)
}

// eventsSince returns a copy of the events from index from on, plus the
// current state — the polling contract of the NDJSON stream handler.
func (j *Job) eventsSince(from int) ([]Event, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from >= len(j.events) {
		return nil, j.state
	}
	out := make([]Event, len(j.events)-from)
	copy(out, j.events[from:])
	return out, j.state
}

// EventsSince is the exported form of eventsSince for cross-package
// pollers — the cluster worker's batched sweep handler streams cell
// completions from it. The next poll's from is the previous from plus the
// number of events returned.
func (j *Job) EventsSince(from int) ([]Event, JobState) { return j.eventsSince(from) }

// latency returns submit-to-finish wall time (zero until terminal).
func (j *Job) latency() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.submitted)
}

// JobStatus is the GET /v1/jobs/{id} document.
type JobStatus struct {
	ID             string       `json:"id"`
	State          JobState     `json:"state"`
	Tenant         string       `json:"tenant,omitempty"`
	Priority       int          `json:"priority,omitempty"`
	TotalCells     int          `json:"total_cells"`
	CompletedCells int          `json:"completed_cells"`
	FailedCells    int          `json:"failed_cells"`
	SubmittedAt    time.Time    `json:"submitted_at"`
	StartedAt      *time.Time   `json:"started_at,omitempty"`
	FinishedAt     *time.Time   `json:"finished_at,omitempty"`
	DurationMS     int64        `json:"duration_ms,omitempty"`
	Errors         []string     `json:"errors,omitempty"`
	Results        []CellResult `json:"results,omitempty"`
}

// Status snapshots the job. Results lists the cells completed so far, in
// grid order.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:             j.id,
		State:          j.state,
		Tenant:         j.tenant,
		Priority:       j.priority,
		TotalCells:     len(j.cells),
		CompletedCells: j.completed,
		FailedCells:    j.failed,
		SubmittedAt:    j.submitted,
		Errors:         append([]string(nil), j.cellErrs...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
		st.DurationMS = j.finished.Sub(j.submitted).Milliseconds()
	}
	for _, r := range j.results {
		if r.Key != "" {
			st.Results = append(st.Results, r)
		}
	}
	return st
}
