package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := testService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postJob(t *testing.T, srv *httptest.Server, spec CampaignSpec) (submitResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var sub submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	resp.Body.Close()
	return sub, resp
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPJobLifecycle(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 2})
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}},
		Workloads: []string{"matmul"},
	}
	sub, resp := postJob(t, srv, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if sub.ID == "" || sub.Cells != 1 {
		t.Fatalf("submit response %+v", sub)
	}

	deadline := time.Now().Add(60 * time.Second)
	var st JobStatus
	for {
		getJSON(t, srv.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != JobDone || len(st.Results) != 1 {
		t.Fatalf("status %+v", st)
	}

	// The result is addressable by content key.
	var cell CellResult
	if resp := getJSON(t, srv.URL+"/v1/results/"+st.Results[0].Key, &cell); resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d", resp.StatusCode)
	}
	if cell.Key != st.Results[0].Key || cell.Workload != "matmul" {
		t.Fatalf("result %+v", cell)
	}

	// Job listing includes it.
	var list []JobStatus
	getJSON(t, srv.URL+"/v1/jobs", &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list %+v", list)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 1})
	// Malformed body.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	// Unknown field (schema typo) is a 400, not silently ignored.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"machines":[{"machine":"base"}],"warmpu":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
	// Invalid spec.
	if _, resp := postJob(t, srv, CampaignSpec{Machines: []MachineSpec{{Machine: "nope"}}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad machine: %d, want 400", resp.StatusCode)
	}
	// Unknown job / result.
	if resp := getJSON(t, srv.URL+"/v1/jobs/zzz", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/v1/results/zzz", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPEventStream(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 2})
	sub, _ := postJob(t, srv, CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}},
		Workloads: []string{"matmul", "chess"},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	// The stream must close itself once the job ends, with the terminal
	// event as the last line.
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	if events[0].Type != "queued" {
		t.Errorf("first event %q", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Completed != 2 {
		t.Errorf("last event %+v", last)
	}
	cells := 0
	for _, e := range events {
		if e.Type == "cell" {
			cells++
			if e.Key == "" || e.Outcome == "" {
				t.Errorf("cell event missing key/outcome: %+v", e)
			}
		}
	}
	if cells != 2 {
		t.Errorf("cell events = %d, want 2", cells)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	s, srv := testServer(t, Config{Workers: 1})
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "pubsd_queue_depth{node=\"local\"} 0") {
		t.Errorf("metrics body missing gauges:\n%s", sb.String())
	}

	// After shutdown, healthz flips to 503 and submissions get 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz %d, want 503", resp.StatusCode)
	}
	if _, resp := postJob(t, srv, CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit %d, want 503", resp.StatusCode)
	}
}

func TestLoadtestAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("loadtest in -short")
	}
	_, srv := testServer(t, Config{Workers: 4, MaxActiveJobs: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := Loadtest(ctx, LoadtestConfig{
		BaseURL: srv.URL, Jobs: 6, Concurrency: 3,
		PollInterval: 20 * time.Millisecond,
		Specs: []CampaignSpec{
			{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul", "chess"}},
			{Machines: []MachineSpec{{Machine: "pubs"}}, Workloads: []string{"matmul"}},
		},
	})
	if err != nil {
		t.Fatalf("Loadtest: %v", err)
	}
	if rep.Schema != "pubsd-load/2" || rep.Failed != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.LatencyP50MS <= 0 || rep.LatencyP99MS < rep.LatencyP50MS {
		t.Errorf("quantiles p50=%v p99=%v", rep.LatencyP50MS, rep.LatencyP99MS)
	}
	// 6 jobs over a 2-spec ring = heavy duplication: 3 unique cells total.
	if rep.SimsExecuted != 3 {
		t.Errorf("SimsExecuted = %d, want 3", rep.SimsExecuted)
	}
	if rep.CacheHits+rep.Merged+rep.MemoHits == 0 {
		t.Error("no dedup observed under duplicate traffic")
	}
}
