package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/simerr"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestJobQueueOrdering(t *testing.T) {
	q := newJobQueue()
	mk := func(id string, prio int) *Job {
		return newJob(id, CampaignSpec{Priority: prio}, nil, testOptions(), nil)
	}
	q.push(mk("low", -1))
	q.push(mk("a", 0))
	q.push(mk("hi", 5))
	q.push(mk("b", 0))

	// Highest priority first; FIFO within a band.
	var got []string
	for i := 0; i < 3; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop closed early")
		}
		got = append(got, j.id)
	}
	if want := "hi,a,b"; strings.Join(got, ",") != want {
		t.Fatalf("pop order %v, want %s", got, want)
	}

	// shedLowest takes the remaining best-effort job, but only for a
	// strictly higher-priority newcomer.
	if v := q.shedLowest(-1); v != nil {
		t.Fatalf("shedLowest(-1) evicted %s; equal priority must not shed", v.id)
	}
	v := q.shedLowest(0)
	if v == nil || v.id != "low" {
		t.Fatalf("shedLowest(0) = %v, want low", v)
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop after close+drain should report closed")
	}
}

// TestTenantBucketsPreventStarvation: a greedy tenant exhausts only its own
// bucket; another tenant's submissions are still admitted, and the refusal
// carries a positive Retry-After hint.
func TestTenantBucketsPreventStarvation(t *testing.T) {
	s := testService(t, Config{Workers: 2, TenantRate: 0.001, TenantBurst: 2})
	spec := CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"}}

	greedy := spec
	greedy.Tenant = "greedy"
	var jobs []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(greedy)
		if err != nil {
			t.Fatalf("greedy submit %d within burst: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	_, err := s.Submit(greedy)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("greedy submit past burst: %v, want ErrRateLimited", err)
	}
	var ra *RetryAfterError
	if !errors.As(err, &ra) || ra.After < time.Second {
		t.Fatalf("rate-limit refusal lacks a useful Retry-After hint: %v", err)
	}

	// The other tenant is unaffected by greedy's empty bucket.
	polite := spec
	polite.Tenant = "polite"
	j, err := s.Submit(polite)
	if err != nil {
		t.Fatalf("polite tenant starved by greedy one: %v", err)
	}
	for _, j := range append(jobs, j) {
		if st := waitJob(t, j); st.State != JobDone {
			t.Fatalf("job %s: %v", st.State, st.Errors)
		}
	}
	if got := s.m.rateLimited.Load(); got != 1 {
		t.Errorf("rateLimited = %d, want 1", got)
	}
}

// TestOverloadShedsLowestPriorityFirst drives the daemon past saturation:
// a full queue refuses best-effort work with 429+Retry-After, and a
// higher-priority arrival evicts the lowest-priority queued job rather
// than being turned away.
func TestOverloadShedsLowestPriorityFirst(t *testing.T) {
	s := testService(t, Config{
		Workers: 1, MaxActiveJobs: 1, QueueDepth: 2, HighWater: 2,
		// Slow cells keep the worker busy while the queue fills.
		DefaultOptions: testOptions(),
	})
	slow := CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"},
		Warmup: 2_000, Measure: 1_500_000}
	quick := CampaignSpec{Machines: []MachineSpec{{Machine: "pubs"}}, Workloads: []string{"matmul"}}

	// One active (in the worker), one parked in the dispatcher's hand.
	active, err := s.Submit(slow)
	if err != nil {
		t.Fatalf("submit active: %v", err)
	}
	parked, err := s.Submit(slow)
	if err != nil {
		t.Fatalf("submit parked: %v", err)
	}
	waitFor(t, "dispatcher to drain the head", func() bool { return s.QueueDepth() == 0 })

	// Fill the queue with best-effort work.
	be := quick
	be.Priority = -1
	victim, err := s.Submit(be)
	if err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	filler := quick
	filler.Tenant = "other" // distinct tenant, same cells: key-identical
	if _, err := s.Submit(filler); err != nil {
		t.Fatalf("submit filler: %v", err)
	}
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth %d, want 2", got)
	}

	// Same-priority arrival on a full queue: refused, hinted.
	_, err = s.Submit(be)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full-queue submit: %v, want ErrQueueFull", err)
	}
	var ra *RetryAfterError
	if !errors.As(err, &ra) || ra.After < time.Second {
		t.Fatalf("full-queue refusal lacks Retry-After: %v", err)
	}

	// Higher-priority arrival: admitted by shedding the best-effort job.
	urgent := quick
	urgent.Priority = 10
	uj, err := s.Submit(urgent)
	if err != nil {
		t.Fatalf("urgent submit should shed, got: %v", err)
	}
	vst := waitJob(t, victim)
	if vst.State != JobFailed {
		t.Fatalf("victim state %s, want failed", vst.State)
	}
	if len(vst.Errors) == 0 || !strings.Contains(vst.Errors[0], simerr.ErrOverload.Error()) {
		t.Errorf("victim errors %v, want an overload error", vst.Errors)
	}
	if got := s.m.jobsShed.Load(); got == 0 {
		t.Error("jobsShed not counted")
	}

	for _, j := range []*Job{active, parked, uj} {
		if st := waitJob(t, j); st.State != JobDone {
			t.Fatalf("job %s %s: %v", j.ID(), st.State, st.Errors)
		}
	}
}

// TestHighWaterShedsBestEffort: above the high-water mark (but below the
// cap) best-effort submissions are refused while normal ones still land.
func TestHighWaterShedsBestEffort(t *testing.T) {
	s := testService(t, Config{
		Workers: 1, MaxActiveJobs: 1, QueueDepth: 8, HighWater: 1,
	})
	slow := CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"},
		Warmup: 2_000, Measure: 1_500_000}
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(slow)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	waitFor(t, "queue above high water", func() bool { return s.QueueDepth() >= 1 })

	be := slow
	be.Priority = -1
	if _, err := s.Submit(be); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("best-effort above high water: %v, want ErrQueueFull", err)
	}
	normal := CampaignSpec{Machines: []MachineSpec{{Machine: "pubs"}}, Workloads: []string{"matmul"}}
	nj, err := s.Submit(normal)
	if err != nil {
		t.Fatalf("normal-priority submit above high water: %v", err)
	}
	for _, j := range append(jobs, nj) {
		if st := waitJob(t, j); st.State != JobDone {
			t.Fatalf("job %s: %v", st.State, st.Errors)
		}
	}
}

func TestBreakerUnit(t *testing.T) {
	b := newBreaker(3, time.Hour)
	panicErr := &simerr.PanicError{Value: "boom"}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed Allow: %v", err)
	}
	b.Record(panicErr)
	b.Record(panicErr)
	b.Record(nil) // success resets the streak
	b.Record(panicErr)
	b.Record(panicErr)
	if err := b.Allow(); err != nil {
		t.Fatalf("streak of 2 under threshold 3 must not trip: %v", err)
	}
	b.Record(panicErr)
	if err := b.Allow(); !errors.Is(err, simerr.ErrCircuitOpen) {
		t.Fatalf("tripped Allow: %v, want ErrCircuitOpen", err)
	}
	if state, trips := b.State(); state != breakerOpen || trips != 1 {
		t.Fatalf("state=%d trips=%d, want open/1", state, trips)
	}

	// Force the cooldown to elapse, then probe.
	b.mu.Lock()
	b.openedAt = time.Now().Add(-2 * time.Hour)
	b.mu.Unlock()
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	// A second attempt while the probe is in flight is refused.
	if err := b.Allow(); !errors.Is(err, simerr.ErrCircuitOpen) {
		t.Fatalf("concurrent probe admitted: %v", err)
	}
	b.Record(nil)
	if err := b.Allow(); err != nil {
		t.Fatalf("breaker did not close after good probe: %v", err)
	}

	// A panicking probe re-trips.
	for i := 0; i < 3; i++ {
		b.Record(panicErr)
	}
	b.mu.Lock()
	b.openedAt = time.Now().Add(-2 * time.Hour)
	b.mu.Unlock()
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Record(panicErr)
	if err := b.Allow(); !errors.Is(err, simerr.ErrCircuitOpen) {
		t.Fatalf("panicking probe did not re-trip: %v", err)
	}
	if _, trips := b.State(); trips != 3 {
		t.Fatalf("trips = %d, want 3", trips)
	}

	// Disabled and nil breakers are inert.
	var nb *breaker
	if err := nb.Allow(); err != nil {
		t.Fatal("nil breaker must allow")
	}
	nb.Record(panicErr)
	db := newBreaker(0, time.Second)
	for i := 0; i < 10; i++ {
		db.Record(panicErr)
	}
	if err := db.Allow(); err != nil {
		t.Fatal("disabled breaker must allow")
	}
}

// TestBreakerDegradedCachedOnly is the service-level degraded mode: after
// consecutive injected worker panics trip the breaker, previously computed
// results still serve from the cache while fresh simulation is refused
// with a typed circuit-open error — and /healthz reports degraded.
func TestBreakerDegradedCachedOnly(t *testing.T) {
	defer faultinject.Reset()
	s := testService(t, Config{
		Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour,
	})
	cached := CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"}}
	fresh := CampaignSpec{Machines: []MachineSpec{{Machine: "pubs"}}, Workloads: []string{"chess"}}

	// Warm the cache before anything goes wrong.
	wj, err := s.Submit(cached)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if st := waitJob(t, wj); st.State != JobDone {
		t.Fatalf("warm job %s: %v", st.State, st.Errors)
	}

	// Two panicking cells in a row trip the breaker.
	faultinject.Arm(faultinject.ServicePanic, "", -1)
	pj, err := s.Submit(CampaignSpec{Machines: []MachineSpec{{Machine: "base"}, {Machine: "pubs"}}, Workloads: []string{"chess"}})
	if err != nil {
		t.Fatalf("panic-bait submit: %v", err)
	}
	pst := waitJob(t, pj)
	faultinject.Reset()
	if pst.State != JobFailed || len(pst.Errors) != 2 {
		t.Fatalf("panic-bait job %s (%d errors), want failed with 2", pst.State, len(pst.Errors))
	}
	for _, e := range pst.Errors {
		if !strings.Contains(e, "panic") {
			t.Errorf("cell error %q does not surface the panic", e)
		}
	}
	if h := s.Health(); h.Status != "degraded" || h.Breaker != "open" || h.BreakerTrips != 1 {
		t.Fatalf("health after trip: %+v", h)
	}
	if !strings.Contains(s.MetricsText(), "pubsd_breaker_state{node=\"local\"} 2\n") {
		t.Error("metrics do not show the open breaker")
	}

	// Cached-only: the warm spec completes (result cache), the fresh one
	// is refused by the breaker, typed.
	cj, err := s.Submit(cached)
	if err != nil {
		t.Fatalf("cached submit while open: %v", err)
	}
	if st := waitJob(t, cj); st.State != JobDone {
		t.Fatalf("cached job while open %s: %v", st.State, st.Errors)
	}
	fj, err := s.Submit(fresh)
	if err != nil {
		t.Fatalf("fresh submit while open: %v", err)
	}
	fst := waitJob(t, fj)
	if fst.State != JobFailed {
		t.Fatalf("fresh job while open %s, want failed", fst.State)
	}
	if len(fst.Errors) == 0 || !strings.Contains(fst.Errors[0], simerr.ErrCircuitOpen.Error()) {
		t.Errorf("fresh-job errors %v, want circuit-open", fst.Errors)
	}
	if got := s.m.degradedCells.Load(); got == 0 {
		t.Error("degradedCells not counted")
	}
}

// TestBreakerHalfOpenRecovery: once the fault clears and the cooldown
// elapses, a successful probe closes the breaker and service resumes.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	defer faultinject.Reset()
	s := testService(t, Config{
		Workers: 1, BreakerThreshold: 1, BreakerCooldown: 50 * time.Millisecond,
	})
	faultinject.Arm(faultinject.ServicePanic, "", 1)
	pj, err := s.Submit(CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"}})
	if err != nil {
		t.Fatalf("panic-bait submit: %v", err)
	}
	if st := waitJob(t, pj); st.State != JobFailed {
		t.Fatalf("panic-bait job %s, want failed", st.State)
	}
	faultinject.Reset()
	if h := s.Health(); h.Breaker != "open" {
		t.Fatalf("breaker %s, want open", h.Breaker)
	}

	time.Sleep(100 * time.Millisecond)
	rj, err := s.Submit(CampaignSpec{Machines: []MachineSpec{{Machine: "pubs"}}, Workloads: []string{"matmul"}})
	if err != nil {
		t.Fatalf("recovery submit: %v", err)
	}
	if st := waitJob(t, rj); st.State != JobDone {
		t.Fatalf("recovery job %s: %v", st.State, st.Errors)
	}
	if h := s.Health(); h.Status != "ok" || h.Breaker != "closed" {
		t.Fatalf("health after recovery: %+v", h)
	}
}

// TestWorkerPanicIsolatedWithoutBreaker: with the breaker disabled, an
// injected worker panic fails only that task's cells; the pool and the
// rest of the campaign keep going.
func TestWorkerPanicIsolatedWithoutBreaker(t *testing.T) {
	defer faultinject.Reset()
	s := testService(t, Config{Workers: 2, BreakerThreshold: -1})
	faultinject.Arm(faultinject.ServicePanic, "chess", 1)
	j, err := s.Submit(CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}},
		Workloads: []string{"matmul", "chess", "goplay"},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitJob(t, j)
	if st.State != JobFailed {
		t.Fatalf("job %s, want failed (one cell panicked)", st.State)
	}
	if st.CompletedCells != 2 || st.FailedCells != 1 {
		t.Fatalf("completed=%d failed=%d, want 2/1", st.CompletedCells, st.FailedCells)
	}
	if !strings.Contains(strings.Join(st.Errors, " "), "chess") {
		t.Errorf("errors %v do not name the panicked cell", st.Errors)
	}
	if h := s.Health(); h.Breaker != "closed" {
		t.Errorf("disabled breaker moved to %s", h.Breaker)
	}

	// The daemon still serves.
	j2, err := s.Submit(CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"chess"}})
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	if st := waitJob(t, j2); st.State != JobDone {
		t.Fatalf("post-panic job %s: %v", st.State, st.Errors)
	}
}

// TestCacheEvictionRecomputesBitIdentical: an injected eviction right after
// a result lands forces the next identical submission to recompute; the
// recomputed record must be bit-identical.
func TestCacheEvictionRecomputesBitIdentical(t *testing.T) {
	defer faultinject.Reset()
	s := testService(t, Config{Workers: 2})
	spec := CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"}}

	faultinject.Arm(faultinject.CacheEvict, "", 1)
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st1 := waitJob(t, j1)
	faultinject.Reset()
	if st1.State != JobDone {
		t.Fatalf("evicted job %s: %v", st1.State, st1.Errors)
	}
	if _, ok := s.Result(st1.Results[0].Key); ok {
		t.Fatal("injected eviction did not remove the entry")
	}

	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	st2 := waitJob(t, j2)
	if st2.State != JobDone {
		t.Fatalf("recompute job %s: %v", st2.State, st2.Errors)
	}
	a, _ := json.Marshal(st1.Results[0])
	b, _ := json.Marshal(st2.Results[0])
	if string(a) != string(b) {
		t.Errorf("recomputed cell differs:\nfirst  %s\nsecond %s", a, b)
	}
}

// TestAdmissionNeverEntersKeys: Tenant and Priority must not perturb
// content addressing — two submissions differing only there share every
// cell key (and therefore every memo, checkpoint, and cache entry).
func TestAdmissionNeverEntersKeys(t *testing.T) {
	base := CampaignSpec{Machines: []MachineSpec{{Machine: "pubs"}}, Workloads: []string{"matmul", "chess"}}
	tagged := base
	tagged.Tenant = "team-a"
	tagged.Priority = 9

	opts := testOptions()
	a, err := base.Cells(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tagged.Cells(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cell counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key(opts) != b[i].Key(opts) {
			t.Errorf("cell %d: admission metadata leaked into the key: %s vs %s",
				i, a[i].Key(opts), b[i].Key(opts))
		}
	}
}
