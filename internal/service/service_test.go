package service

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// Small windows keep the E2E tests fast while still exercising warmup
// reset, sampling, and the progress hook.
func testOptions() experiments.Options {
	return experiments.Options{Warmup: 2_000, Measure: 8_000}
}

func testService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.DefaultOptions.Warmup == 0 && cfg.DefaultOptions.Measure == 0 {
		cfg.DefaultOptions = testOptions()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Status()
}

func TestMachineConfigNames(t *testing.T) {
	for _, name := range []string{
		"base", "pubs", "age", "pubs+age",
		"base-small", "base-medium", "base-large", "base-huge",
		"pubs-small", "pubs-medium", "pubs-large", "pubs-huge",
	} {
		if _, err := MachineConfig(name); err != nil {
			t.Errorf("MachineConfig(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "pubs-tiny", "weird", "age-small"} {
		if _, err := MachineConfig(name); err == nil {
			t.Errorf("MachineConfig(%q): expected error", name)
		}
	}
}

func TestMachineSpecOverridesRenameConfig(t *testing.T) {
	cfg, err := MachineSpec{Machine: "pubs", PriorityEntries: 12, NoStall: true}.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	if cfg.Name != "pubs-p12-nostall" {
		t.Errorf("Name = %q, want pubs-p12-nostall", cfg.Name)
	}
	if cfg.PUBS.PriorityEntries != 12 || cfg.PUBS.StallDispatch {
		t.Errorf("overrides not applied: %+v", cfg.PUBS)
	}
	// Distinct parameterizations must have distinct content keys.
	base, _ := MachineSpec{Machine: "pubs"}.Config()
	if base.Name == cfg.Name {
		t.Error("override produced identical name; keys would collide")
	}
}

func TestCampaignSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec CampaignSpec
		max  int
	}{
		{"no machines", CampaignSpec{}, 0},
		{"bad machine", CampaignSpec{Machines: []MachineSpec{{Machine: "nope"}}}, 0},
		{"bad workload", CampaignSpec{
			Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"nope"}}, 0},
		{"over cap", CampaignSpec{
			Machines: []MachineSpec{{Machine: "base"}, {Machine: "pubs"}}}, 3},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Cells(tc.max); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	cells, err := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}, {Machine: "pubs"}},
		Workloads: []string{"matmul", "chess", "goplay"},
	}.Cells(0)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
}

func TestResultCacheSingleflight(t *testing.T) {
	c := newResultCache()
	var builds int
	var mu sync.Mutex
	gate := make(chan struct{})
	build := func() (CellResult, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		<-gate
		return CellResult{Key: "k", Workload: "w"}, nil
	}
	const callers = 8
	var wg sync.WaitGroup
	outcomes := make([]cacheOutcome, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, out, err := c.Do("k", build)
			if err != nil || res.Key != "k" {
				t.Errorf("Do: res=%+v err=%v", res, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Let the goroutines pile up on the flight, then release.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	var runs, merged int
	for _, o := range outcomes {
		switch o {
		case outcomeRun:
			runs++
		case outcomeMerged:
			merged++
		}
	}
	if runs != 1 || merged != callers-1 {
		t.Fatalf("runs=%d merged=%d, want 1/%d", runs, merged, callers-1)
	}
	// After completion it's a plain hit.
	if _, out, _ := c.Do("k", build); out != outcomeHit {
		t.Fatalf("post-completion outcome = %v, want hit", out)
	}
}

func TestResultCacheDoesNotCacheFailures(t *testing.T) {
	c := newResultCache()
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (CellResult, error) { return CellResult{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failure was cached")
	}
	// Next attempt runs fresh and can succeed.
	res, out, err := c.Do("k", func() (CellResult, error) { return CellResult{Key: "k"}, nil })
	if err != nil || out != outcomeRun || res.Key != "k" {
		t.Fatalf("retry: res=%+v out=%v err=%v", res, out, err)
	}
}

// TestConcurrentDuplicateSubmissions is the issue's acceptance test: the
// same spec submitted twice concurrently completes both jobs with
// identical results, the grid executes exactly once, and the results are
// bit-identical to an equivalent direct Runner campaign.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	s := testService(t, Config{Workers: 4, MaxActiveJobs: 4})
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}, {Machine: "pubs"}},
		Workloads: []string{"matmul", "chess"},
	}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	st1, st2 := waitJob(t, j1), waitJob(t, j2)
	if st1.State != JobDone || st2.State != JobDone {
		t.Fatalf("states %s/%s, errors %v/%v", st1.State, st2.State, st1.Errors, st2.Errors)
	}
	if st1.CompletedCells != 4 || st2.CompletedCells != 4 {
		t.Fatalf("completed %d/%d, want 4/4", st1.CompletedCells, st2.CompletedCells)
	}

	// Identical results, in the same grid order.
	b1, _ := json.Marshal(st1.Results)
	b2, _ := json.Marshal(st2.Results)
	if string(b1) != string(b2) {
		t.Error("duplicate submissions returned different results")
	}

	// The grid executed exactly once: 4 unique cells → 4 simulations, no
	// matter how the 8 cell executions split between fresh runs, merges,
	// and cache hits.
	if rs, _ := s.runnerStats(); rs.Simulated != 4 {
		t.Errorf("Simulated = %d, want 4 (grid must execute exactly once)", rs.Simulated)
	}

	// Bit-identical to the equivalent direct-Runner campaign.
	runner := experiments.NewRunner(s.DefaultOptions())
	cells, err := spec.Cells(0)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	for i, cell := range cells {
		want, err := runner.RunCell(context.Background(), cell)
		if err != nil {
			t.Fatalf("direct run %s/%s: %v", cell.Config.Name, cell.Workload, err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(st1.Results[i].Result)
		if string(wb) != string(gb) {
			t.Errorf("cell %s/%s: daemon result differs from direct run",
				cell.Config.Name, cell.Workload)
		}
		if st1.Results[i].Key != cell.Key(s.DefaultOptions()) {
			t.Errorf("cell %d: key mismatch", i)
		}
	}

	// The content-address lookup serves the completed cells.
	for _, r := range st1.Results {
		got, ok := s.Result(r.Key)
		if !ok {
			t.Errorf("Result(%s): missing", r.Key)
			continue
		}
		if got.Machine != r.Machine || got.Workload != r.Workload {
			t.Errorf("Result(%s): wrong cell %s/%s", r.Key, got.Machine, got.Workload)
		}
	}
}

func TestResubmitServedFromCache(t *testing.T) {
	s := testService(t, Config{Workers: 2})
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "pubs"}},
		Workloads: []string{"goplay"},
	}
	st := waitJob(t, mustSubmit(t, s, spec))
	if st.State != JobDone {
		t.Fatalf("first job: %s %v", st.State, st.Errors)
	}
	before, _ := s.runnerStats()
	st2 := waitJob(t, mustSubmit(t, s, spec))
	if st2.State != JobDone {
		t.Fatalf("second job: %s %v", st2.State, st2.Errors)
	}
	if after, _ := s.runnerStats(); after.Simulated != before.Simulated {
		t.Errorf("resubmission re-simulated: %d → %d", before.Simulated, after.Simulated)
	}
	if s.m.cacheHits.Load() == 0 {
		t.Error("no cache hits recorded for resubmission")
	}
}

func TestSpecWindowOverride(t *testing.T) {
	s := testService(t, Config{Workers: 2})
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}},
		Workloads: []string{"matmul"},
		Warmup:    1_000, Measure: 4_000,
	}
	st := waitJob(t, mustSubmit(t, s, spec))
	if st.State != JobDone {
		t.Fatalf("job: %s %v", st.State, st.Errors)
	}
	r := st.Results[0]
	if r.Warmup != 1_000 || r.Measure != 4_000 {
		t.Fatalf("windows %d/%d, want 1000/4000", r.Warmup, r.Measure)
	}
	// Commit width > 1 lets the warmup boundary overshoot by a few
	// instructions, so Measured lands within a commit group of the target.
	if r.Result.Measured < 3_900 || r.Result.Measured > 4_100 {
		t.Fatalf("Measured = %d, want ≈4000", r.Result.Measured)
	}
	// The override must produce a different content key than the default
	// windows — same discipline as the checkpoint store.
	cells, _ := spec.Cells(0)
	if k := cells[0].Key(s.DefaultOptions()); k == r.Key {
		t.Error("window override did not change the content key")
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := testService(t, Config{Workers: 1, QueueDepth: 1, MaxActiveJobs: 1})
	// Stall the single worker with a job, fill the queue, then overflow.
	spec := func(wl string) CampaignSpec {
		return CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{wl}}
	}
	j1 := mustSubmit(t, s, spec("matmul"))
	var errFull error
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(spec("chess")); err != nil {
			errFull = err
			break
		}
	}
	if !errors.Is(errFull, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", errFull)
	}
	if s.m.jobsRejected.Load() == 0 {
		t.Error("rejection not counted")
	}
	waitJob(t, j1)
}

func TestShutdownDrainsAcceptedJobs(t *testing.T) {
	s, err := New(Config{Workers: 2, DefaultOptions: testOptions()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}},
		Workloads: []string{"matmul", "chess"},
	}
	j := mustSubmit(t, s, spec)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := j.Status()
	if st.State != JobDone || st.CompletedCells != 2 {
		t.Fatalf("drained job: %s, %d cells", st.State, st.CompletedCells)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-shutdown submit err = %v, want ErrDraining", err)
	}
}

func TestCheckpointSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "pubs"}},
		Workloads: []string{"chess"},
	}
	s1 := testService(t, Config{Workers: 2, CheckpointDir: dir})
	st := waitJob(t, mustSubmit(t, s1, spec))
	if st.State != JobDone {
		t.Fatalf("first daemon: %s %v", st.State, st.Errors)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s1.Shutdown(ctx)

	// A fresh daemon over the same checkpoint dir answers from disk.
	s2 := testService(t, Config{Workers: 2, CheckpointDir: dir})
	st2 := waitJob(t, mustSubmit(t, s2, spec))
	if st2.State != JobDone {
		t.Fatalf("second daemon: %s %v", st2.State, st2.Errors)
	}
	rs, _ := s2.runnerStats()
	if rs.Simulated != 0 || rs.CheckpointHits == 0 {
		t.Errorf("restart re-simulated: Simulated=%d CheckpointHits=%d", rs.Simulated, rs.CheckpointHits)
	}
	b1, _ := json.Marshal(st.Results)
	b2, _ := json.Marshal(st2.Results)
	if string(b1) != string(b2) {
		t.Error("checkpoint round-trip changed results")
	}
}

func TestMetricsText(t *testing.T) {
	s := testService(t, Config{Workers: 2})
	waitJob(t, mustSubmit(t, s, CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}},
		Workloads: []string{"matmul"},
	}))
	text := s.MetricsText()
	for _, want := range []string{
		"pubsd_jobs_submitted_total{node=\"local\"} 1",
		"pubsd_jobs_completed_total{node=\"local\"} 1",
		"pubsd_cells_completed_total{node=\"local\"} 1",
		"pubsd_sims_executed_total{node=\"local\"} 1",
		"pubsd_workers{node=\"local\"} 2",
		"pubsd_skip_spans_total{node=\"local\"}",
		"pubsd_skipped_cycles_total{node=\"local\"}",
		"pubsd_skip_burst_spans_total{node=\"local\"}",
		"pubsd_skip_burst_cycles_total{node=\"local\"}",
		"pubsd_job_latency_count{node=\"local\"} 1",
		"pubsd_job_latency_ms{node=\"local\",quantile=\"0.5\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestJobEvents(t *testing.T) {
	s := testService(t, Config{Workers: 2})
	j := mustSubmit(t, s, CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}},
		Workloads: []string{"matmul", "chess"},
	})
	waitJob(t, j)
	events, state := j.eventsSince(0)
	if state != JobDone {
		t.Fatalf("state %s", state)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	if counts["queued"] != 1 || counts["started"] != 1 || counts["done"] != 1 {
		t.Errorf("lifecycle events off: %v", counts)
	}
	if counts["cell"] != 2 {
		t.Errorf("cell events = %d, want 2", counts["cell"])
	}
	if counts["progress"] == 0 {
		t.Error("no progress events streamed")
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Completed != 2 {
		t.Errorf("final event %+v", last)
	}
}

func mustSubmit(t *testing.T, s *Service, spec CampaignSpec) *Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return j
}
