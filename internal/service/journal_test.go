package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// writeJournalLines hand-crafts a journal file, the test's stand-in for
// the log a crashed daemon left behind.
func writeJournalLines(t *testing.T, dir string, recs ...journalRecord) {
	t.Helper()
	var sb strings.Builder
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		sb.Write(data)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(sb.String()), 0o644); err != nil {
		t.Fatalf("write journal: %v", err)
	}
}

func specBaseMatmul() CampaignSpec {
	return CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}, {Machine: "pubs"}},
		Workloads: []string{"matmul"},
	}
}

// TestJournalReplayResumesIncompleteJob is the in-process crash-recovery
// test: daemon A accepts a campaign and "crashes" (we fabricate its
// journal: a submit with no terminal record) after checkpointing part of
// the work; daemon B boots on the same journal and checkpoint dirs, must
// re-enqueue the job under its original ID, serve the already-finished
// cells from the checkpoint store, and produce results bit-identical to an
// uninterrupted run.
func TestJournalReplayResumesIncompleteJob(t *testing.T) {
	jdir, cdir := t.TempDir(), t.TempDir()
	spec := specBaseMatmul()

	// Reference: the same campaign on a fresh daemon, no journal involved.
	ref := testService(t, Config{Workers: 2})
	refJob, err := ref.Submit(spec)
	if err != nil {
		t.Fatalf("reference Submit: %v", err)
	}
	refSt := waitJob(t, refJob)
	if refSt.State != JobDone {
		t.Fatalf("reference job %s: %v", refSt.State, refSt.Errors)
	}

	// "Crash": daemon A checkpointed one cell (a partial prior run), and
	// its journal records the submit — and a start and one cell event, as
	// a real crash mid-job would — but no terminal record.
	partial := testService(t, Config{Workers: 2, CheckpointDir: cdir})
	oneCell := spec
	oneCell.Machines = oneCell.Machines[:1]
	pj, err := partial.Submit(oneCell)
	if err != nil {
		t.Fatalf("partial Submit: %v", err)
	}
	pst := waitJob(t, pj)
	if pst.State != JobDone || len(pst.Results) != 1 {
		t.Fatalf("partial job %s: %v", pst.State, pst.Errors)
	}
	writeJournalLines(t, jdir,
		journalRecord{Type: "submit", Job: "j000007", Time: time.Now(), Spec: &spec},
		journalRecord{Type: "start", Job: "j000007", Time: time.Now()},
		journalRecord{Type: "cell", Job: "j000007", Time: time.Now(), Key: pst.Results[0].Key, Outcome: "simulated"},
	)

	// Daemon B: recovery.
	s := testService(t, Config{Workers: 2, CheckpointDir: cdir, JournalDir: jdir})
	job, ok := s.Job("j000007")
	if !ok {
		t.Fatal("recovered job j000007 not found")
	}
	st := waitJob(t, job)
	if st.State != JobDone {
		t.Fatalf("recovered job %s: %v", st.State, st.Errors)
	}
	if h := s.Health(); h.RecoveredJobs != 1 {
		t.Errorf("RecoveredJobs = %d, want 1", h.RecoveredJobs)
	}

	// The checkpointed cell must have been served from disk, not re-run.
	rs, _ := s.runnerStats()
	if rs.CheckpointHits == 0 {
		t.Error("recovered job re-simulated its checkpointed cell (CheckpointHits = 0)")
	}

	// Bit-identical to the uninterrupted run, cell by cell.
	if len(st.Results) != len(refSt.Results) {
		t.Fatalf("recovered %d cells, reference %d", len(st.Results), len(refSt.Results))
	}
	for i := range st.Results {
		got, _ := json.Marshal(st.Results[i])
		want, _ := json.Marshal(refSt.Results[i])
		if string(got) != string(want) {
			t.Errorf("cell %d differs after recovery:\ngot  %s\nwant %s", i, got, want)
		}
	}

	// New submissions must not collide with the recovered ID space.
	nj, err := s.Submit(oneCell)
	if err != nil {
		t.Fatalf("post-recovery Submit: %v", err)
	}
	if nj.ID() <= "j000007" {
		t.Errorf("post-recovery ID %s not beyond recovered j000007", nj.ID())
	}
}

// TestJournalIgnoresCompletedAndTornRecords checks the replay filter: jobs
// with terminal records stay dead, a torn trailing line (the crash hit
// mid-write) is tolerated, and corrupt lines are skipped.
func TestJournalIgnoresCompletedAndTornRecords(t *testing.T) {
	dir := t.TempDir()
	spec := specBaseMatmul()
	writeJournalLines(t, dir,
		journalRecord{Type: "submit", Job: "j000001", Time: time.Now(), Spec: &spec},
		journalRecord{Type: "done", Job: "j000001", Time: time.Now()},
		journalRecord{Type: "submit", Job: "j000002", Time: time.Now(), Spec: &spec},
		journalRecord{Type: "failed", Job: "j000002", Time: time.Now()},
		journalRecord{Type: "submit", Job: "j000003", Time: time.Now(), Spec: &spec},
	)
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt mid-log noise plus a torn final line.
	if _, err := f.WriteString("not json at all\n{\"type\":\"submit\",\"job\":\"j0000"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	live, maxSeq, err := readJournal(dir)
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if len(live) != 1 || live[0].ID != "j000003" {
		t.Fatalf("live = %+v, want only j000003", live)
	}
	if maxSeq != 3 {
		t.Errorf("maxSeq = %d, want 3", maxSeq)
	}
}

// TestJournalCompactionBoundsTheLog: booting on a journal full of finished
// jobs rewrites it down to the live submits only.
func TestJournalCompactionBoundsTheLog(t *testing.T) {
	dir := t.TempDir()
	spec := specBaseMatmul()
	var recs []journalRecord
	for _, id := range []string{"j000001", "j000002", "j000003"} {
		recs = append(recs,
			journalRecord{Type: "submit", Job: id, Time: time.Now(), Spec: &spec},
			journalRecord{Type: "start", Job: id, Time: time.Now()},
			journalRecord{Type: "done", Job: id, Time: time.Now()},
		)
	}
	writeJournalLines(t, dir, recs...)

	live, _, err := readJournal(dir)
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if len(live) != 0 {
		t.Fatalf("live = %+v, want none", live)
	}
	if err := compactJournal(dir, live); err != nil {
		t.Fatalf("compactJournal: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("compacted journal not empty:\n%s", data)
	}
}

// TestJournalRecoveryRejectsStaleSpecs: a journaled spec that no longer
// validates (its workload vanished across a version change, say) must land
// as a failed job, not crash the boot or run garbage.
func TestJournalRecoveryRejectsStaleSpecs(t *testing.T) {
	dir := t.TempDir()
	bad := CampaignSpec{Machines: []MachineSpec{{Machine: "no-such-machine"}}}
	writeJournalLines(t, dir,
		journalRecord{Type: "submit", Job: "j000001", Time: time.Now(), Spec: &bad},
	)
	s := testService(t, Config{Workers: 1, JournalDir: dir})
	job, ok := s.Job("j000001")
	if !ok {
		t.Fatal("stale job not surfaced")
	}
	st := waitJob(t, job)
	if st.State != JobFailed {
		t.Fatalf("stale job state %s, want failed", st.State)
	}
}

// TestJournalAppendFaultDegradesNotFails: an injected journal write error
// is counted in the metrics, and the campaign still completes.
func TestJournalAppendFaultDegradesNotFails(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := testService(t, Config{Workers: 2, JournalDir: dir})
	faultinject.Arm(faultinject.JournalAppend, "", -1)
	job, err := s.Submit(specBaseMatmul())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitJob(t, job)
	faultinject.Reset()
	if st.State != JobDone {
		t.Fatalf("job %s with lossy journal: %v", st.State, st.Errors)
	}
	if got := s.m.journalErrors.Load(); got == 0 {
		t.Error("journal errors not counted under injected write faults")
	}
	if strings.Contains(s.MetricsText(), "pubsd_journal_errors_total{node=\"local\"} 0\n") {
		t.Error("/metrics does not surface the journal errors")
	}
}

// TestJournalessShutdownStillClean: no JournalDir, the nil-journal path.
func TestJournalessShutdownStillClean(t *testing.T) {
	s := testService(t, Config{Workers: 1})
	job, err := s.Submit(CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"matmul"}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := waitJob(t, job); st.State != JobDone {
		t.Fatalf("job %s: %v", st.State, st.Errors)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err == nil {
		t.Error("second Shutdown should error")
	}
}
