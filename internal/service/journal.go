package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// journalFile is the single append-only NDJSON log inside Config.JournalDir.
const journalFile = "journal.ndjson"

// journalRecord is one NDJSON line of the durable job journal: a job
// lifecycle transition, written at submit/start/cell/terminal time. The
// journal is a write-ahead log for the job queue only — cell results
// themselves are made durable by the content-addressed checkpoint store,
// so the two compose into full crash recovery: the journal says which
// campaigns were in flight, the checkpoints say which of their cells are
// already paid for. Neither ever feeds the memo/checkpoint/content keys.
type journalRecord struct {
	Type string    `json:"type"` // submit | start | cell | done | failed
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	// submit records carry everything needed to reconstruct the job.
	Spec *CampaignSpec `json:"spec,omitempty"`

	// cell records carry the cell's content address (the KeyHash shared
	// with the checkpoint store and result cache) and its outcome.
	Key     string `json:"key,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Error   string `json:"error,omitempty"`
}

// journal is the durable job log: append-only NDJSON, one file, fsync-free
// (a lost tail costs at most re-running a cell already checkpointed, never
// correctness). All methods are nil-receiver safe so a journalless daemon
// pays a single pointer test. Append errors are counted, not fatal: a full
// disk degrades crash recovery, not availability.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records *atomic.Uint64 // successful appends (metrics)
	errs    *atomic.Uint64 // failed appends (metrics)
}

// openJournal opens (creating if needed) the journal in dir for appending.
func openJournal(dir string, records, errs *atomic.Uint64) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &journal{f: f, path: path, records: records, errs: errs}, nil
}

// append writes one record. Failures (including injected ones) are counted
// and swallowed: the daemon keeps serving with a lossy journal.
func (l *journal) append(rec journalRecord) {
	if l == nil {
		return
	}
	rec.Time = time.Now()
	data, err := json.Marshal(rec)
	if err == nil && faultinject.Fire(faultinject.JournalAppend, rec.Type) {
		err = errors.New("injected journal write fault")
	}
	if err == nil {
		data = append(data, '\n')
		l.mu.Lock()
		_, err = l.f.Write(data)
		l.mu.Unlock()
	}
	if err != nil {
		l.errs.Add(1)
		return
	}
	l.records.Add(1)
}

// close releases the file handle.
func (l *journal) close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.f.Close()
}

// recoveredJob is one incomplete campaign reconstructed from the journal.
type recoveredJob struct {
	ID   string
	Spec CampaignSpec
}

// readJournal replays the log in dir and returns the jobs that were
// submitted but never reached a terminal record — the campaigns a crash
// swallowed — in original submission order, plus the highest job sequence
// number seen (so a restarted daemon's IDs never collide with recovered
// ones). A torn trailing line (the crash interrupted a write) is
// tolerated; any other unparsable line is skipped, since a corrupt journal
// must cost at most lost recovery, never a failed boot.
func readJournal(dir string) ([]recoveredJob, uint64, error) {
	f, err := os.Open(filepath.Join(dir, journalFile))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: journal: %w", err)
	}
	defer f.Close()

	type jobState struct {
		spec     CampaignSpec
		order    int
		terminal bool
	}
	jobs := make(map[string]*jobState)
	var maxSeq uint64
	order := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn or corrupt line: skip, recover what we can
		}
		var seq uint64
		if n, err := fmt.Sscanf(rec.Job, "j%d", &seq); n == 1 && err == nil && seq > maxSeq {
			maxSeq = seq
		}
		switch rec.Type {
		case "submit":
			if rec.Spec != nil {
				jobs[rec.Job] = &jobState{spec: *rec.Spec, order: order}
				order++
			}
		case "done", "failed":
			if st, ok := jobs[rec.Job]; ok {
				st.terminal = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("service: journal: %w", err)
	}

	var live []recoveredJob
	for id, st := range jobs {
		if !st.terminal {
			live = append(live, recoveredJob{ID: id, Spec: st.spec})
		}
	}
	sort.Slice(live, func(i, j int) bool { return jobs[live[i].ID].order < jobs[live[j].ID].order })
	return live, maxSeq, nil
}

// compact rewrites the journal to hold only the submit records of the
// given still-live jobs (temp file + rename, the checkpoint store's
// atomicity discipline), so the log stays bounded by the incomplete work
// instead of growing with daemon lifetime across restarts. Called once at
// startup, after recovery and before any new appends.
func compactJournal(dir string, live []recoveredJob) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	for _, j := range live {
		spec := j.Spec
		if err := enc.Encode(journalRecord{
			Type: "submit", Job: j.ID, Time: time.Now(), Spec: &spec,
		}); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, journalFile))
}
