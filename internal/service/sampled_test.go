package service

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sampling"
	"repro/internal/workload"
)

// TestSampledJob: a sampled campaign runs through the daemon, shares one
// fast-forward pass across its machines, and its cells equal direct
// sampling of the same (machine, workload, plan).
func TestSampledJob(t *testing.T) {
	s := testService(t, Config{Workers: 2})
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}, {Machine: "pubs"}, {Machine: "pubs+age"}},
		Workloads: []string{"parser"},
		Warmup:    2_000, Measure: 5_000,
		Windows: 2, FastForward: 20_000, ParallelWindows: 2,
	}
	st := waitJob(t, mustSubmit(t, s, spec))
	if st.State != JobDone {
		t.Fatalf("job: %s %v", st.State, st.Errors)
	}
	if len(st.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(st.Results))
	}

	plan := sampling.Config{Windows: 2, FastForward: 20_000, Warmup: 2_000, Measure: 5_000}
	for _, cr := range st.Results {
		if cr.Windows != 2 || cr.FastForward != 20_000 {
			t.Errorf("%s: cell record missing sampling geometry: %+v", cr.Machine, cr)
		}
		cfg, err := MachineConfig(cr.Machine)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sampling.Run(cfg, workload.MustProgram("parser"), plan)
		if err != nil {
			t.Fatal(err)
		}
		if want := direct.Merged(); !reflect.DeepEqual(cr.Result, want) {
			t.Errorf("%s: daemon result diverged from direct sampling", cr.Machine)
		}
	}

	_, snaps := s.runnerStats()
	if snaps.Plans != 1 {
		t.Errorf("snapshot plans = %d, want 1 (one workload, one geometry)", snaps.Plans)
	}
	if snaps.Hits != 2 {
		t.Errorf("snapshot hits = %d, want 2 (remaining machines)", snaps.Hits)
	}
	for _, metric := range []string{"pubsd_snapshot_plans_total{node=\"local\"} 1", "pubsd_snapshot_hits_total{node=\"local\"} 2"} {
		if !strings.Contains(s.MetricsText(), metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}
}

// TestSampledSpecKeying: sampled and contiguous campaigns with the same
// windows get distinct runners and distinct cell keys.
func TestSampledSpecKeying(t *testing.T) {
	def := testOptions()
	contiguous := CampaignSpec{Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"chess"}}
	sampled := contiguous
	sampled.Windows = 2
	sampled.FastForward = 20_000
	if keyFor(contiguous.options(def)) == keyFor(sampled.options(def)) {
		t.Fatal("sampled and contiguous jobs share a runner key")
	}
	cells, err := sampled.Cells(0)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Key(contiguous.options(def)) == cells[0].Key(sampled.options(def)) {
		t.Fatal("sampled and contiguous cells share a content key")
	}
}

// TestLoadtestBurstOverlapsDuplicates: the duplicate-burst schedule must
// place identical specs at adjacent submission slots so they are in flight
// together, and the default burst must be on.
func TestLoadtestBurstOverlapsDuplicates(t *testing.T) {
	cfg := LoadtestConfig{}.normalized()
	if cfg.DuplicateBurst < 2 {
		t.Fatalf("default DuplicateBurst = %d, want >= 2", cfg.DuplicateBurst)
	}
	// With burst b, submissions i and i+1 use the same spec whenever
	// i%b < b-1 — adjacent duplicates exist for any ring length.
	b := cfg.DuplicateBurst
	ring := len(cfg.Specs)
	same := 0
	for i := 0; i+1 < cfg.Jobs; i++ {
		if (i/b)%ring == ((i+1)/b)%ring {
			same++
		}
	}
	if same == 0 {
		t.Fatal("burst schedule never submits the same spec at adjacent slots")
	}
}

// TestWindowMajorJob: a window-major sampled campaign completes with cells
// bit-identical to per-cell scheduling, pays one fast-forward pass, and
// exports the new trace metrics (resident bytes, predecode counters, and a
// populated replay-latency histogram).
func TestWindowMajorJob(t *testing.T) {
	s := testService(t, Config{Workers: 2, TraceBudgetBytes: 1 << 30})
	spec := CampaignSpec{
		Machines:  []MachineSpec{{Machine: "base"}, {Machine: "pubs"}, {Machine: "pubs+age"}},
		Workloads: []string{"parser"},
		Warmup:    2_000, Measure: 5_000,
		Windows: 2, FastForward: 20_000, ParallelWindows: 2,
		WindowMajor: true,
	}
	st := waitJob(t, mustSubmit(t, s, spec))
	if st.State != JobDone {
		t.Fatalf("job: %s %v", st.State, st.Errors)
	}
	if len(st.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(st.Results))
	}

	// Same cells via per-cell scheduling on a fresh daemon.
	ref := testService(t, Config{Workers: 2})
	perCell := spec
	perCell.WindowMajor = false
	rst := waitJob(t, mustSubmit(t, ref, perCell))
	if rst.State != JobDone {
		t.Fatalf("reference job: %s %v", rst.State, rst.Errors)
	}
	for i := range st.Results {
		if !reflect.DeepEqual(st.Results[i], rst.Results[i]) {
			t.Errorf("%s: window-major cell diverged from per-cell scheduling", st.Results[i].Machine)
		}
	}

	_, snaps := s.runnerStats()
	if snaps.Plans != 1 {
		t.Errorf("snapshot plans = %d, want 1", snaps.Plans)
	}
	if snaps.ResidentBytes <= 0 || snaps.ResidentBytes > 1<<30 {
		t.Errorf("resident trace bytes = %d, want within (0, budget]", snaps.ResidentBytes)
	}
	text := s.MetricsText()
	for _, metric := range []string{
		"pubsd_predecode_misses_total{node=\"local\"} 1",
		"pubsd_predecode_evictions_total{node=\"local\"} 0",
		"pubsd_trace_budget_bytes{node=\"local\"} 1073741824",
		"pubsd_trace_resident_bytes",
		"pubsd_window_replay_latency_count",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}
	if strings.Contains(text, "pubsd_window_replay_latency_count{node=\"local\"} 0") {
		t.Error("replay-latency histogram never observed a window")
	}
}

// TestWindowMajorSpecKeying: WindowMajor and LiveDecode pick distinct
// runners (their stores cache different payloads) but must NOT change cell
// content keys — results are bit-identical by construction.
func TestWindowMajorSpecKeying(t *testing.T) {
	def := testOptions()
	base := CampaignSpec{
		Machines: []MachineSpec{{Machine: "base"}}, Workloads: []string{"chess"},
		Windows: 2, FastForward: 20_000,
	}
	wm := base
	wm.WindowMajor = true
	live := base
	live.LiveDecode = true
	if keyFor(base.options(def)) == keyFor(wm.options(def)) {
		t.Fatal("window-major job shares a runner with per-cell scheduling")
	}
	if keyFor(base.options(def)) == keyFor(live.options(def)) {
		t.Fatal("live-decode job shares a runner (and store) with trace mode")
	}
	cells, err := base.Cells(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []CampaignSpec{wm, live} {
		if cells[0].Key(base.options(def)) != cells[0].Key(other.options(def)) {
			t.Fatal("scheduling/decode mode leaked into the cell content key")
		}
	}
}
