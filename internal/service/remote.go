package service

import (
	"context"
	"sync/atomic"
)

// RemoteCell is one cell handed to the remote-execution seam: the content
// address the cluster shards by, and a single-cell CampaignSpec a worker
// daemon can run through its own Submit path (admission control, journal,
// runner) to produce the byte-identical CellResult. The spec carries the
// job's fully resolved windows, so the worker's own defaults can never
// shift the content address.
type RemoteCell struct {
	Key  string       `json:"key"`
	Spec CampaignSpec `json:"spec"`
}

// RemoteFunc is the dispatcher's remote-execution seam, installed via
// Config.Remote. It is called inside the result cache's singleflight
// critical section — at most one call per content address is in flight —
// so whatever fabric sits behind it observes each unique cell exactly
// once per coordinator. Returning handled=false (only meaningful with a
// nil error) declines the cell: the dispatcher falls back to the local
// worker pool, which keeps a coordinator with no live peers behaving
// exactly like a single-node daemon. When handled is true, res/err are the
// cell's outcome, errors included — a remote simulation failure is the
// cell's failure, not a reason to retry locally.
type RemoteFunc func(ctx context.Context, rc RemoteCell) (res CellResult, handled bool, err error)

// RemoteSweepFunc is the batched companion to RemoteFunc, installed via
// Config.RemoteSweep and used for window-major sampled jobs: one call
// carries a whole workload sweep's unresolved cells (each already claimed
// in the singleflight table, so the exactly-once contract is preserved at
// batch granularity). planKey is the sampling-plan content address every
// cell of the batch shares — the fabric uses it to designate exactly one
// plan-computing node per workload window set. The maps carry per-key
// outcomes; a key absent from both was declined (no live peers, ring
// churn) and falls back to the local window-major sweep. handled=false
// declines the whole batch.
type RemoteSweepFunc func(ctx context.Context, planKey string, cells []RemoteCell) (res map[string]CellResult, errs map[string]error, handled bool)

// remoteSpec builds the single-cell CampaignSpec for cell idx: its machine
// and workload plus the job's resolved simulation windows. ok is false for
// jobs whose grid could not be reconstructed (a recovery-failed job).
func (j *Job) remoteSpec(idx int) (CampaignSpec, bool) {
	if j.perMachine <= 0 || idx/j.perMachine >= len(j.spec.Machines) || idx >= len(j.cells) {
		return CampaignSpec{}, false
	}
	return CampaignSpec{
		Machines:  []MachineSpec{j.spec.Machines[idx/j.perMachine]},
		Workloads: []string{j.cells[idx].Workload},
		// Resolved windows, not the submitter's (possibly zero) ones: the
		// worker must derive the identical content address with no help
		// from its own defaults.
		Warmup:      j.opts.Warmup,
		Measure:     j.opts.Measure,
		Windows:     j.opts.SampleWindows,
		FastForward: j.opts.SampleFastForward,
		// Result-neutral scheduling knobs are relayed so the worker runs
		// the cell the way the submitter asked, but they never enter keys.
		ParallelWindows: j.opts.ParallelWindows,
		LiveDecode:      j.opts.LiveDecode,
		WindowMajor:     j.opts.WindowMajor,
		Tenant:          j.spec.Tenant,
		Priority:        j.spec.Priority,
	}, true
}

// AdoptResult installs a finished cell into the local result cache — the
// peer-fetch path of the cluster's two-tier cache. An existing entry wins
// (both are bit-identical by contract, and the local one may be serving
// readers). Adopted results live in memory only; the checkpoint store
// keeps holding just the cells this node simulated itself.
func (s *Service) AdoptResult(res CellResult) {
	if res.Key == "" {
		return
	}
	s.cache.Adopt(res)
}

// ClusterCounters is the pubsd_cluster_* metric family: fabric-level
// counters a cluster coordinator or worker feeds and /metrics renders on
// every node (zero-valued outside cluster mode). All methods are nil-safe
// so cluster code can run before a Service exists.
type ClusterCounters struct {
	peers        atomic.Int64  // live peer nodes on the coordinator's ring
	steals       atomic.Uint64 // cells executed away from their ring owner
	peerHits     atomic.Uint64 // cells answered by a peer-cache fetch
	remoteCells  atomic.Uint64 // cells dispatched to (or served by) the fabric
	nodeFailures atomic.Uint64 // nodes dropped from the ring after transport failures
	resultPushes atomic.Uint64 // completed cells proactively replicated to the ring successor
}

// SetPeers records the live-peer gauge.
func (c *ClusterCounters) SetPeers(n int) {
	if c != nil {
		c.peers.Store(int64(n))
	}
}

// AddSteal counts a cell executed by a node other than its ring owner.
func (c *ClusterCounters) AddSteal() {
	if c != nil {
		c.steals.Add(1)
	}
}

// AddPeerHit counts a cell answered from a peer's cache by content address.
func (c *ClusterCounters) AddPeerHit() {
	if c != nil {
		c.peerHits.Add(1)
	}
}

// AddRemoteCell counts a cell that flowed through the cluster fabric.
func (c *ClusterCounters) AddRemoteCell() {
	if c != nil {
		c.remoteCells.Add(1)
	}
}

// AddNodeFailure counts a node removed from the ring after it stopped
// answering.
func (c *ClusterCounters) AddNodeFailure() {
	if c != nil {
		c.nodeFailures.Add(1)
	}
}

// AddResultPush counts a completed cell proactively replicated to the
// node's ring successor.
func (c *ClusterCounters) AddResultPush() {
	if c != nil {
		c.resultPushes.Add(1)
	}
}

// ClusterCounters exposes the daemon's cluster metric family for the
// cluster package to feed.
func (s *Service) ClusterCounters() *ClusterCounters { return &s.m.cluster }

// NodeID returns the daemon's stable node identity — the value of the
// `node` label on every metric this daemon exports.
func (s *Service) NodeID() string { return s.cfg.NodeID }
