package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LoadtestConfig drives `pubsd loadtest`: a stream of campaign submissions
// against a running daemon, with deliberate duplicates so the cache and
// singleflight layers are exercised, not just the workers.
type LoadtestConfig struct {
	// BaseURL of the daemon, e.g. http://127.0.0.1:8080.
	BaseURL string `json:"base_url"`
	// Jobs to submit in total (default 16).
	Jobs int `json:"jobs"`
	// Concurrency is the number of in-flight submissions (default 4).
	Concurrency int `json:"concurrency"`
	// Specs is the ring of campaign specs to cycle through. Because the
	// ring is shorter than Jobs, repeats are duplicates by construction.
	Specs []CampaignSpec `json:"specs"`
	// DuplicateBurst is how many consecutive submissions reuse the same
	// spec before the ring advances (default 2). Striding the ring one spec
	// per submission (burst 1) only ever lands duplicates Concurrency jobs
	// apart, so with a short ring and fast cells the original finishes
	// before its duplicate arrives and the singleflight layer sees nothing;
	// a burst puts identical specs in flight at the same instant.
	DuplicateBurst int `json:"duplicate_burst"`
	// PollInterval paces job-status polling (default 100ms).
	PollInterval time.Duration `json:"-"`
}

func (c LoadtestConfig) normalized() LoadtestConfig {
	if c.Jobs <= 0 {
		c.Jobs = 16
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.DuplicateBurst <= 0 {
		c.DuplicateBurst = 2
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if len(c.Specs) == 0 {
		c.Specs = []CampaignSpec{
			{Machines: []MachineSpec{{Machine: "base"}, {Machine: "pubs"}},
				Workloads: []string{"matmul", "chess"}},
			{Machines: []MachineSpec{{Machine: "pubs"}},
				Workloads: []string{"goplay", "pathfind"}},
		}
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	return c
}

// LoadtestReport is the BENCH_3.json document.
type LoadtestReport struct {
	Schema      string    `json:"schema"` // "pubsd-load/2"
	Timestamp   time.Time `json:"timestamp"`
	BaseURL     string    `json:"base_url"`
	Jobs        int       `json:"jobs"`
	Concurrency int       `json:"concurrency"`
	SpecRing    int       `json:"spec_ring"`
	Burst       int       `json:"duplicate_burst"`

	DurationMS int64   `json:"duration_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	Failed     int     `json:"failed_jobs"`
	// Admission refusals are not failures: each was retried after the
	// daemon's Retry-After hint until accepted. Rejected is their total;
	// the splits say which limit pushed back (429 = queue/rate pressure,
	// 503 = draining).
	Rejected    int `json:"rejected_jobs"`
	Rejected429 int `json:"rejected_429,omitempty"`
	Rejected503 int `json:"rejected_503,omitempty"`

	// Exact submit-to-terminal latency quantiles over all completed jobs,
	// from the sorted sample set (unlike the daemon's bucketed histogram).
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP90MS float64 `json:"latency_p90_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`

	// Daemon-side counters scraped from /metrics after the run: how much
	// work the traffic actually cost versus how much was deduplicated.
	SimsExecuted uint64 `json:"sims_executed"`
	CacheHits    uint64 `json:"cache_hits"`
	Merged       uint64 `json:"singleflight_merged"`
	MemoHits     uint64 `json:"runner_memo_hits"`
	JobsShed     uint64 `json:"jobs_shed,omitempty"`
	RateLimited  uint64 `json:"rate_limited,omitempty"`
}

// rejectCounts tallies one job's admission refusals by status class.
type rejectCounts struct {
	total, c429, c503 int
}

// Loadtest submits cfg.Jobs campaigns at cfg.Concurrency, polls each to a
// terminal state, and reports latency quantiles plus the daemon's dedup
// counters.
func Loadtest(ctx context.Context, cfg LoadtestConfig) (LoadtestReport, error) {
	cfg = cfg.normalized()
	client := &http.Client{Timeout: 30 * time.Second}
	rep := LoadtestReport{
		Schema: "pubsd-load/2", Timestamp: time.Now(),
		BaseURL: cfg.BaseURL, Jobs: cfg.Jobs,
		Concurrency: cfg.Concurrency, SpecRing: len(cfg.Specs),
		Burst: cfg.DuplicateBurst,
	}

	var (
		mu        sync.Mutex
		latencies []float64
		failed    int
		rejected  rejectCounts
		firstErr  error
	)
	start := time.Now()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Jobs; i++ {
		// Burst duplicates back to back so identical specs overlap in
		// flight and exercise singleflight, not just the result cache.
		spec := cfg.Specs[(i/cfg.DuplicateBurst)%len(cfg.Specs)]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			lat, retries, err := runOneJob(ctx, client, cfg, spec)
			mu.Lock()
			defer mu.Unlock()
			rejected.total += retries.total
			rejected.c429 += retries.c429
			rejected.c503 += retries.c503
			if err != nil {
				failed++
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			latencies = append(latencies, float64(lat.Milliseconds()))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.DurationMS = elapsed.Milliseconds()
	rep.Failed = failed
	rep.Rejected = rejected.total
	rep.Rejected429 = rejected.c429
	rep.Rejected503 = rejected.c503
	if elapsed > 0 {
		rep.JobsPerSec = float64(cfg.Jobs-failed) / elapsed.Seconds()
	}
	sort.Float64s(latencies)
	rep.LatencyP50MS = quantileExact(latencies, 0.5)
	rep.LatencyP90MS = quantileExact(latencies, 0.9)
	rep.LatencyP99MS = quantileExact(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.LatencyMaxMS = latencies[n-1]
	}

	if counters, err := scrapeMetrics(ctx, client, cfg.BaseURL); err == nil {
		rep.SimsExecuted = counters["pubsd_sims_executed_total"]
		rep.CacheHits = counters["pubsd_cache_hits_total"]
		rep.Merged = counters["pubsd_singleflight_merged_total"]
		rep.MemoHits = counters["pubsd_runner_memo_hits_total"]
		rep.JobsShed = counters["pubsd_jobs_shed_total"]
		rep.RateLimited = counters["pubsd_rate_limited_total"]
	} else if firstErr == nil {
		firstErr = fmt.Errorf("loadtest: scraping /metrics: %w", err)
	}
	return rep, firstErr
}

// runOneJob submits one spec (retrying refusals with backoff) and polls it
// to a terminal state, returning its submit-to-terminal latency and the
// daemon's refusals by status class.
func runOneJob(ctx context.Context, client *http.Client, cfg LoadtestConfig, spec CampaignSpec) (time.Duration, rejectCounts, error) {
	var retries rejectCounts
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, retries, err
	}
	start := time.Now()
	var id string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.BaseURL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return 0, retries, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return 0, retries, err
		}
		data, err := io.ReadAll(resp.Body)
		if err == nil {
			err = resp.Body.Close()
		} else {
			resp.Body.Close()
		}
		if err != nil {
			return 0, retries, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			retries.total++
			if resp.StatusCode == http.StatusTooManyRequests {
				retries.c429++
			} else {
				retries.c503++
			}
			// Honor the daemon's Retry-After hint, capped so the loadtest
			// itself stays responsive under deliberate oversubscription.
			backoff := cfg.PollInterval
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				backoff = time.Duration(secs) * time.Second
				if backoff > time.Second {
					backoff = time.Second
				}
			}
			select {
			case <-ctx.Done():
				return 0, retries, ctx.Err()
			case <-time.After(backoff):
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return 0, retries, fmt.Errorf("loadtest: submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		var sub submitResponse
		if err := json.Unmarshal(data, &sub); err != nil {
			return 0, retries, err
		}
		id = sub.ID
		break
	}

	for {
		select {
		case <-ctx.Done():
			return 0, retries, ctx.Err()
		case <-time.After(cfg.PollInterval):
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			cfg.BaseURL+"/v1/jobs/"+id, nil)
		if err != nil {
			return 0, retries, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, retries, err
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, retries, err
		}
		if st.State.terminal() {
			if st.State == JobFailed {
				return 0, retries, fmt.Errorf("loadtest: job %s failed: %v", id, st.Errors)
			}
			return time.Since(start), retries, nil
		}
	}
}

// quantileExact returns the q-quantile of sorted samples (nearest-rank).
func quantileExact(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// scrapeMetrics fetches /metrics and parses the integer-valued series,
// summing across label sets: every pubsd series carries a `node` label, and
// aggregating over it gives the scrape a cluster-wide view for free when
// multiple nodes are behind one endpoint. Quantile series are skipped —
// summing quantiles across nodes would be meaningless.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetrics(string(data)), nil
}

// parseMetrics is scrapeMetrics' parser, split out for reuse by the cluster
// benchmark: metric base name -> sum of its integer samples across labels.
func parseMetrics(text string) map[string]uint64 {
	out := make(map[string]uint64)
	for _, ln := range strings.Split(text, "\n") {
		name, val, ok := strings.Cut(strings.TrimSpace(ln), " ")
		if !ok {
			continue
		}
		if base, labels, cut := strings.Cut(name, "{"); cut {
			if strings.Contains(labels, "quantile=") {
				continue
			}
			name = base
		}
		if v, err := strconv.ParseUint(val, 10, 64); err == nil {
			out[name] += v
		}
	}
	return out
}
