package service

import (
	"context"
	"sync"

	"repro/internal/experiments"
	"repro/internal/sampling"
)

// planExchange is the daemon's side of cluster plan sharing: the seams the
// cluster package installs (fetch pulls a serialized plan from peers, push
// replicates a fresh local plan), plus a replica cache of plans peers
// pushed here proactively. Replicas sit outside the runners' window
// stores — a pushed plan must survive even if this node never runs the
// workload — under their own byte budget with FIFO-order eviction.
type planExchange struct {
	mu    sync.Mutex
	fetch func(ctx context.Context, key string) ([]byte, bool)
	push  func(key string, data []byte)

	replicas map[string][]sampling.Window
	order    []string // insertion order, oldest first — the eviction order
	bytes    int64
	budget   int64 // 0 = unbounded

	// encoded memoizes the wire form per key — a plan is served to every
	// long-poll waiter plus the successor push, and flate-compressing
	// megabytes of snapshot pages per serve would cost a visible slice of
	// the very pass the exchange exists to save. Evicted alongside the
	// replica entry of the same key.
	encoded map[string][]byte
}

// SetPlanExchange installs (or, with nils, removes) the cluster's plan
// seams. fetch is consulted by every runner's window store on a plan miss,
// after the replica cache; push is invoked asynchronously with the
// serialized form of every plan this node computes locally.
func (s *Service) SetPlanExchange(fetch func(ctx context.Context, key string) ([]byte, bool), push func(key string, data []byte)) {
	s.plans.mu.Lock()
	s.plans.fetch = fetch
	s.plans.push = push
	s.plans.mu.Unlock()
}

// planSource is the sampling.PlanSource every runner shares. Tier 0 is the
// replica cache (plans the ring predecessor pushed here); tier 1 is the
// cluster fetch seam (cache-only peer GETs). Both yield content-verified
// windows bit-identical to a local pass. Called inside the window store's
// singleflight critical section, so each plan key is resolved at most once
// per runner however many machine variants race.
func (s *Service) planSource(ctx context.Context, key string) ([]sampling.Window, bool) {
	px := &s.plans
	px.mu.Lock()
	ws, ok := px.replicas[key]
	fetch := px.fetch
	px.mu.Unlock()
	if ok {
		s.m.planPeerHits.Add(1)
		return ws, true
	}
	if fetch == nil {
		return nil, false
	}
	data, ok := fetch(ctx, key)
	if !ok {
		return nil, false
	}
	ws, err := sampling.DecodePlan(data)
	if err != nil {
		// A corrupt peer payload is a miss, never a wrong plan: the runner
		// falls back to its own functional pass.
		return nil, false
	}
	s.m.planPeerHits.Add(1)
	s.m.planFetchBytes.Add(uint64(len(data)))
	return ws, true
}

// planPlanned fires after every successful local functional pass; it
// serializes the plan and hands it to the push seam off the planning
// goroutine, so replication cost never extends the pass's critical path.
func (s *Service) planPlanned(key string, ws []sampling.Window) {
	s.plans.mu.Lock()
	push := s.plans.push
	s.plans.mu.Unlock()
	if push == nil {
		return
	}
	go func() {
		data, err := sampling.EncodePlan(ws)
		if err != nil {
			return
		}
		// Memoize before pushing so long-poll waiters parked on this key
		// are served the moment the bytes exist.
		s.plans.mu.Lock()
		s.plans.encoded[key] = data
		s.plans.mu.Unlock()
		s.m.planPushes.Add(1)
		s.m.planPushBytes.Add(uint64(len(data)))
		push(key, data)
	}()
}

// PlanData serializes the resident plan for key if any tier holds it:
// the replica cache first, then every runner's window store. Cache-only by
// design — a miss is a miss, never a trigger to compute.
func (s *Service) PlanData(key string) ([]byte, bool) {
	s.plans.mu.Lock()
	data, hit := s.plans.encoded[key]
	ws, ok := s.plans.replicas[key]
	s.plans.mu.Unlock()
	if hit {
		return data, true
	}
	if ok {
		if data, err := sampling.EncodePlan(ws); err == nil {
			s.plans.mu.Lock()
			s.plans.encoded[key] = data
			s.plans.mu.Unlock()
			return data, true
		}
	}
	s.mu.Lock()
	runners := make([]*experiments.Runner, 0, len(s.runners))
	for _, r := range s.runners {
		runners = append(runners, r)
	}
	s.mu.Unlock()
	for _, r := range runners {
		if data, ok := r.EncodedPlan(key); ok {
			s.plans.mu.Lock()
			s.plans.encoded[key] = data
			s.plans.mu.Unlock()
			return data, true
		}
	}
	return nil, false
}

// HasPlan reports whether any tier holds the plan, without serializing it —
// the cheap guard the sweep handler consults before prefetching from peers.
func (s *Service) HasPlan(key string) bool {
	s.plans.mu.Lock()
	_, enc := s.plans.encoded[key]
	_, rep := s.plans.replicas[key]
	s.plans.mu.Unlock()
	if enc || rep {
		return true
	}
	s.mu.Lock()
	runners := make([]*experiments.Runner, 0, len(s.runners))
	for _, r := range s.runners {
		runners = append(runners, r)
	}
	s.mu.Unlock()
	for _, r := range runners {
		if r.HasPlan(key) {
			return true
		}
	}
	return false
}

// AdoptPlan verifies and installs a plan a peer pushed proactively. The
// content hash inside the envelope gates admission — a corrupt push is an
// error, not a replica. An existing replica wins (bit-identical by the
// hash discipline).
func (s *Service) AdoptPlan(key string, data []byte) error {
	px := &s.plans
	px.mu.Lock()
	_, resident := px.replicas[key]
	px.mu.Unlock()
	if resident {
		// Already verified and resident — skip the inflate-and-hash pass.
		return nil
	}
	ws, err := sampling.DecodePlan(data)
	if err != nil {
		return err
	}
	px.mu.Lock()
	defer px.mu.Unlock()
	if _, ok := px.replicas[key]; ok {
		return nil
	}
	px.replicas[key] = ws
	px.encoded[key] = data
	px.order = append(px.order, key)
	px.bytes += sampling.PlanBytes(ws)
	// Oldest-first eviction, never the replica just adopted: the budget is
	// advisory headroom, not a correctness boundary — runners that already
	// pulled a replica keep their windows regardless.
	for px.budget > 0 && px.bytes > px.budget && len(px.order) > 1 {
		victim := px.order[0]
		px.order = px.order[1:]
		if old, ok := px.replicas[victim]; ok {
			px.bytes -= sampling.PlanBytes(old)
			delete(px.replicas, victim)
		}
		delete(px.encoded, victim)
	}
	return nil
}

// planGauges snapshots the replica cache for /metrics.
func (s *Service) planGauges() (resident int, bytes int64) {
	s.plans.mu.Lock()
	defer s.plans.mu.Unlock()
	return len(s.plans.replicas), s.plans.bytes
}
