package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// maxSpecBytes bounds a POST /v1/jobs body; a spec is a few hundred bytes,
// so anything near the cap is hostile or corrupt and dies as a 400, not as
// daemon memory.
const maxSpecBytes = 1 << 20

// apiError is the JSON error envelope for non-2xx responses.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// submitResponse is the 202 body of POST /v1/jobs.
type submitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Cells int    `json:"cells"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs                submit a CampaignSpec; 202 + job ID
//	GET  /v1/jobs                list job statuses
//	GET  /v1/jobs/{id}           one job's status + completed results
//	GET  /v1/jobs/{id}/events    NDJSON event stream until the job ends
//	GET  /v1/results/{key}       a completed cell by content address
//	GET  /healthz                200 ok/degraded | 503 draining
//	GET  /metrics                Prometheus text exposition
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := s.Submit(spec)
		// Capacity refusals carry a backoff hint; 429 means "retry here
		// after the hint", 503 means "this daemon is going away".
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			w.Header().Set("Retry-After", strconv.Itoa(int(ra.After.Round(time.Second).Seconds())))
		}
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
			writeError(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st := job.Status()
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: job.ID(), State: string(st.State), Cells: st.TotalCells,
		})
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.JobStatuses())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("service: no such job"))
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("service: no such job"))
			return
		}
		s.streamEvents(w, r, job)
	})

	mux.HandleFunc("GET /v1/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		res, ok := s.Result(r.PathValue("key"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("service: no result under that key"))
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		if h.Status == "draining" {
			writeJSON(w, http.StatusServiceUnavailable, h)
			return
		}
		// Degraded (breaker not closed) is still 200: the daemon serves
		// cached results and must not be pulled from rotation.
		writeJSON(w, http.StatusOK, h)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(s.MetricsText()))
	})

	return mux
}

// eventPollInterval paces the NDJSON stream's checks for new events.
const eventPollInterval = 50 * time.Millisecond

// streamEvents writes the job's event log as NDJSON, flushing each line,
// until the job reaches a terminal state (its final event is always
// delivered) or the client goes away.
func (s *Service) streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := 0
	ticker := time.NewTicker(eventPollInterval)
	defer ticker.Stop()
	for {
		events, state := job.eventsSince(next)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if state.terminal() {
			// Drain anything appended between the snapshot and finalize.
			if tail, _ := job.eventsSince(next); len(tail) == 0 {
				return
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			// Loop once more to flush the terminal event.
		case <-ticker.C:
		}
	}
}
