package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
	"repro/internal/sampling"
	"repro/internal/simerr"
)

// Submission refusals. The HTTP layer maps ErrQueueFull and ErrRateLimited
// to 429 and ErrDraining to 503, each with a Retry-After hint (see
// RetryAfterError): 429 means "back off briefly and retry here", 503 means
// "this daemon is going away — go elsewhere".
var (
	// ErrQueueFull means the bounded job queue is at capacity (or past its
	// high-water mark for best-effort work).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining means the daemon is shutting down and no longer accepts
	// jobs; in-flight and queued work still completes.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrInvalidSpec wraps every submission rejected for a malformed
	// campaign spec — the typed 400, distinct from capacity refusals.
	ErrInvalidSpec = errors.New("service: invalid campaign spec")
)

// Config sizes the daemon.
type Config struct {
	// Workers is the cell-execution pool size (0 = GOMAXPROCS). It bounds
	// detailed simulations in flight across all jobs.
	Workers int
	// QueueDepth bounds jobs queued behind the active set (0 = 64).
	QueueDepth int
	// HighWater is the queue depth above which best-effort submissions
	// (Priority < 0) are shed before the queue is even full (0 = 3/4 of
	// QueueDepth). Normal and elevated work still fills to QueueDepth.
	HighWater int
	// MaxActiveJobs bounds campaigns expanded and executing concurrently
	// (0 = 4). Cells from active jobs interleave on the worker pool.
	MaxActiveJobs int
	// MaxCellsPerJob rejects degenerate grids at submission (0 = 4096).
	MaxCellsPerJob int
	// TenantRate is each tenant's sustained submission budget in jobs per
	// second (0 = unlimited); TenantBurst is the bucket capacity (0 = 4).
	// One greedy tenant drains only its own bucket.
	TenantRate  float64
	TenantBurst int
	// BreakerThreshold is how many consecutive recovered simulator panics
	// trip the circuit breaker into degraded, cached-only mode (0 = 5,
	// negative = disabled). BreakerCooldown is how long it stays open
	// before a half-open probe (0 = 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DefaultOptions supplies windows for specs that omit them and the
	// failure handling (timeout, retries) for every run. Zero windows mean
	// experiments.DefaultOptions.
	DefaultOptions experiments.Options
	// CheckpointDir, when set, persists every finished run so a restarted
	// daemon answers repeat traffic from disk.
	CheckpointDir string
	// JournalDir, when set, write-ahead-logs every job lifecycle
	// transition to an append-only NDJSON journal. On startup the journal
	// is replayed: jobs submitted but never finished are re-enqueued under
	// their original IDs, so a kill -9 mid-campaign resumes instead of
	// vanishing. Pair it with CheckpointDir so the resumed job's already-
	// finished cells are served from disk rather than re-simulated.
	JournalDir string
	// TraceBudgetBytes bounds, per window-geometry runner, the bytes of
	// predecoded window traces and snapshots the sampled path keeps
	// resident, evicting whole plans LRU-first (0 = unbounded). Exported
	// live through the pubsd_trace_resident_bytes gauge.
	TraceBudgetBytes int64
	// NodeID is the daemon's stable identity in a cluster — the `node`
	// label on every metric it exports ("" = "local"). It must be unique
	// and stable across restarts within one cluster: the consistent-hash
	// ring shards by it, so a node that rejoins under its old ID takes
	// back exactly the cells it owned.
	NodeID string
	// Remote, when set, is the cluster fabric's remote-execution seam: the
	// dispatcher offers every cell to it (inside the singleflight critical
	// section, so each unique cell is offered once) before falling back to
	// the local worker pool. See RemoteFunc.
	Remote RemoteFunc
	// RemoteSweep, when set alongside Remote, dispatches window-major
	// sampled jobs as one batch per (workload, owner node) instead of one
	// request per cell, keeping each worker's predecoded trace hot across
	// its whole machine group. See RemoteSweepFunc.
	RemoteSweep RemoteSweepFunc
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.HighWater <= 0 || c.HighWater > c.QueueDepth {
		c.HighWater = c.QueueDepth * 3 / 4
		if c.HighWater < 1 {
			c.HighWater = 1
		}
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 4
	}
	if c.MaxCellsPerJob <= 0 {
		c.MaxCellsPerJob = 4096
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.DefaultOptions.Warmup == 0 && c.DefaultOptions.Measure == 0 {
		c.DefaultOptions = experiments.DefaultOptions()
	}
	c.DefaultOptions.Parallelism = c.Workers
	c.DefaultOptions.TraceBudgetBytes = c.TraceBudgetBytes
	if c.NodeID == "" {
		c.NodeID = "local"
	}
	return c
}

// task is work scheduled onto the worker pool: one cell of one job, or —
// for window-major sampled jobs — one workload's whole machine sweep
// (group lists the cell indices; idx is unused then).
type task struct {
	job   *Job
	idx   int
	group []int
}

// Service is the campaign daemon: a bounded, priority-ordered job queue
// feeding a dispatcher that shards each job's grid across a fixed worker
// pool, with results landing in the content-addressed cache. Admission
// control (per-tenant token buckets, high-water shedding, a circuit
// breaker around the simulator) keeps it degrading gracefully instead of
// failing open, and the optional journal makes accepted work survive a
// crash.
type Service struct {
	cfg     Config
	cache   *resultCache
	m       *metrics
	limiter *tenantLimiter
	brk     *breaker
	jl      *journal

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	runners  map[windowKey]*experiments.Runner
	draining bool
	seq      uint64

	// plans is the cluster plan-exchange state: the fetch/push seams and
	// the replica cache of proactively pushed plans (see plans.go).
	plans planExchange

	q     *jobQueue
	tasks chan task

	rootCtx context.Context
	cancel  context.CancelFunc

	jobWG    sync.WaitGroup // submitted jobs not yet finalized
	workerWG sync.WaitGroup
	dispWG   sync.WaitGroup
}

// windowKey distinguishes runners by simulation window — including the
// sampling geometry, so sampled and contiguous jobs (and different sampled
// geometries) get separate runners and snapshot stores — plus the decode
// and scheduling modes, which are fixed per runner even though they never
// change results; every other option is shared daemon-wide.
type windowKey struct {
	warmup, measure uint64
	windows         int
	fastForward     uint64
	parallelWindows int
	liveDecode      bool
	windowMajor     bool
}

func keyFor(o experiments.Options) windowKey {
	return windowKey{
		warmup: o.Warmup, measure: o.Measure,
		windows: o.SampleWindows, fastForward: o.SampleFastForward,
		parallelWindows: o.ParallelWindows,
		liveDecode:      o.LiveDecode,
		windowMajor:     o.WindowMajor,
	}
}

// New builds and starts a daemon: workers and dispatcher run until
// Shutdown. With Config.JournalDir set, it first replays the journal and
// re-enqueues every campaign a previous process accepted but never
// finished.
func New(cfg Config) (*Service, error) {
	cfg = cfg.normalized()
	s := &Service{
		cfg:     cfg,
		cache:   newResultCache(),
		m:       newMetrics(),
		limiter: newTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		brk:     newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		jobs:    make(map[string]*Job),
		runners: make(map[windowKey]*experiments.Runner),
		q:       newJobQueue(),
		tasks:   make(chan task, cfg.Workers*2),
	}
	s.plans.replicas = make(map[string][]sampling.Window)
	s.plans.encoded = make(map[string][]byte)
	s.plans.budget = cfg.TraceBudgetBytes

	// Recover the journal before opening it for appending: the compaction
	// rename must land before the append handle exists, or appends would
	// go to the unlinked pre-compaction inode.
	var recovered []recoveredJob
	if cfg.JournalDir != "" {
		var maxSeq uint64
		var err error
		recovered, maxSeq, err = readJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		if err := compactJournal(cfg.JournalDir, recovered); err != nil {
			return nil, fmt.Errorf("service: journal compact: %w", err)
		}
		s.jl, err = openJournal(cfg.JournalDir, &s.m.journalRecords, &s.m.journalErrors)
		if err != nil {
			return nil, err
		}
		s.seq = maxSeq
	}

	// Fail fast on an unusable checkpoint directory.
	if cfg.CheckpointDir != "" {
		if _, err := s.runnerFor(cfg.DefaultOptions); err != nil {
			return nil, err
		}
	}
	s.rootCtx, s.cancel = context.WithCancel(context.Background())

	// Re-enqueue recovered campaigns under their original IDs before the
	// pool starts, bypassing admission control: this work was already
	// admitted once. Specs that no longer validate (a workload or machine
	// removed across the restart) are journaled failed, not resurrected.
	for _, rj := range recovered {
		cells, err := rj.Spec.Cells(cfg.MaxCellsPerJob)
		if err == nil {
			_, err = s.runnerFor(rj.Spec.options(cfg.DefaultOptions))
		}
		job := newJob(rj.ID, rj.Spec, cells, rj.Spec.options(cfg.DefaultOptions), s.jl)
		s.jobs[rj.ID] = job
		s.order = append(s.order, rj.ID)
		if err != nil {
			job.fail(fmt.Errorf("service: journal recovery: %w", err))
			continue
		}
		s.jobWG.Add(1)
		s.q.push(job)
		s.m.jobsRecovered.Add(1)
	}

	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.dispWG.Add(1)
	go s.dispatch()
	return s, nil
}

// runnerFor returns (creating on demand) the runner for a window pair.
// All runners share the worker pool's parallelism bound, the circuit
// breaker, and, when configured, the same checkpoint directory — keys
// embed the windows, so the records never collide.
func (s *Service) runnerFor(o experiments.Options) (*experiments.Runner, error) {
	k := keyFor(o)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[k]; ok {
		return r, nil
	}
	// Every runner feeds the daemon-wide replay-latency histogram and is
	// gated by the daemon-wide breaker. The plan seams are bound to the
	// Service methods, not the current hooks: SetPlanExchange may be called
	// after runners exist (the cluster worker attaches post-New), and the
	// methods read the live hooks on every miss.
	o.WindowObserve = s.m.observeWindow
	o.PlanSource = s.planSource
	o.PlanPlanned = s.planPlanned
	r := experiments.NewRunner(o).WithAdmit(s.admitSim)
	if s.cfg.CheckpointDir != "" {
		var err error
		if r, err = r.WithCheckpoint(s.cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	s.runners[k] = r
	return r, nil
}

// admitSim is the experiments.AdmitFunc every runner shares: it consults
// the circuit breaker immediately before a detailed simulation would
// execute (memo and checkpoint hits never reach it — that is what makes
// the open state a cached-only mode rather than an outage) and feeds the
// attempt's outcome back.
func (s *Service) admitSim() (func(error), error) {
	if err := s.brk.Allow(); err != nil {
		s.m.degradedCells.Add(1)
		return nil, err
	}
	return s.brk.Record, nil
}

// Submit validates a spec and runs it through admission control: draining
// refuses outright (503), the tenant's token bucket may refuse with a
// backoff hint (429), and the bounded queue refuses — or sheds a queued
// lower-priority job to make room — when saturated (429). It never
// blocks.
func (s *Service) Submit(spec CampaignSpec) (*Job, error) {
	cells, err := spec.Cells(s.cfg.MaxCellsPerJob)
	if err != nil {
		s.m.jobsRejected.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	opts := spec.options(s.cfg.DefaultOptions)
	if _, err := s.runnerFor(opts); err != nil {
		s.m.jobsRejected.Add(1)
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.jobsRejected.Add(1)
		return nil, retryAfter(ErrDraining, 30*time.Second)
	}
	if ok, wait := s.limiter.take(spec.Tenant); !ok {
		s.mu.Unlock()
		s.m.jobsRejected.Add(1)
		s.m.rateLimited.Add(1)
		return nil, retryAfter(ErrRateLimited, wait)
	}

	depth := s.q.depth()
	var victim *Job
	switch {
	case depth >= s.cfg.QueueDepth:
		// Full: evict the lowest-priority queued job if the newcomer
		// outranks it; otherwise refuse with a depth-aware hint.
		victim = s.q.shedLowest(spec.Priority)
		if victim == nil {
			s.mu.Unlock()
			s.m.jobsRejected.Add(1)
			return nil, retryAfter(ErrQueueFull, s.retryHint(depth))
		}
	case depth >= s.cfg.HighWater && spec.Priority < 0:
		// Above the high-water mark best-effort work is shed first, so
		// the remaining headroom is reserved for normal-and-up traffic.
		s.mu.Unlock()
		s.m.jobsRejected.Add(1)
		s.m.jobsShed.Add(1)
		return nil, retryAfter(fmt.Errorf("%w: %w above high-water mark", ErrQueueFull, simerr.ErrOverload), s.retryHint(depth))
	}

	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	job := newJob(id, spec, cells, opts, s.jl)
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.jobWG.Add(1)
	// Journal the acceptance before it becomes runnable: once Submit
	// returns, a crash must not lose the job.
	specCopy := spec
	s.jl.append(journalRecord{Type: "submit", Job: id, Spec: &specCopy})
	s.q.push(job)
	if victim != nil {
		victim.fail(fmt.Errorf("service: %w: evicted from a full queue by higher-priority job %s", simerr.ErrOverload, id))
		s.m.jobsShed.Add(1)
		s.jobWG.Done()
	}
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)
	return job, nil
}

// retryHint estimates how long a refused client should back off: the
// queue's drain time at the current depth, gauged by the median job
// latency over the active-job parallelism, clamped to [1s, 60s].
func (s *Service) retryHint(depth int) time.Duration {
	p50 := time.Duration(s.m.latencyQuantileMS(0.5)) * time.Millisecond
	if p50 <= 0 {
		p50 = time.Second
	}
	hint := p50 * time.Duration(depth) / time.Duration(s.cfg.MaxActiveJobs)
	if hint < time.Second {
		hint = time.Second
	}
	if hint > time.Minute {
		hint = time.Minute
	}
	return hint
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobStatuses snapshots every job in submission order.
func (s *Service) JobStatuses() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Job(id); ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// Result returns a completed cell by content key.
func (s *Service) Result(key string) (CellResult, bool) { return s.cache.Get(key) }

// dispatch pulls queued jobs (highest priority first) and runs each on its
// own goroutine, at most MaxActiveJobs at a time. Concurrent active jobs
// are what give the singleflight layer work: two identical campaigns in
// flight share every cell execution.
func (s *Service) dispatch() {
	defer s.dispWG.Done()
	sem := make(chan struct{}, s.cfg.MaxActiveJobs)
	for {
		job, ok := s.q.pop()
		if !ok {
			return
		}
		sem <- struct{}{}
		go func(j *Job) {
			defer func() { <-sem }()
			s.runJob(j)
		}(job)
	}
}

// runJob expands a job onto the task channel and finalizes it when every
// cell reports back.
func (s *Service) runJob(j *Job) {
	defer s.jobWG.Done()
	s.m.activeJobs.Add(1)
	defer s.m.activeJobs.Add(-1)
	j.start()
	j.cellWG.Add(len(j.cells))
	// The cluster dispatcher shards per cell — except window-major sampled
	// jobs when the fabric supports batched sweep dispatch, which keep
	// their per-workload group shape end to end.
	perCell := s.cfg.Remote != nil &&
		!(s.cfg.RemoteSweep != nil && j.opts.WindowMajor && j.opts.Sampled())
	for _, t := range j.tasks(perCell) {
		select {
		case s.tasks <- t:
		case <-s.rootCtx.Done():
			// Forced shutdown mid-expansion: fail the remaining cells here;
			// cells already queued are failed by the workers.
			for _, i := range t.indices() {
				j.cellDone(i, CellResult{}, outcomeRun, s.rootCtx.Err())
			}
		}
	}
	j.cellWG.Wait()
	j.finalize()
	st := j.Status()
	if st.State == JobFailed {
		s.m.jobsFailed.Add(1)
	} else {
		s.m.jobsDone.Add(1)
	}
	s.m.observeLatency(j.latency())
}

// worker executes tasks until the task channel closes at shutdown. A
// panic escaping a task — a service-layer bug, or the chaos harness's
// ServicePanic point — is recovered here: the task's unreported cells
// fail typed, the breaker records the panic, and the pool keeps serving.
func (s *Service) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		s.m.workersBusy.Add(1)
		s.executeRecover(t)
		s.m.workersBusy.Add(-1)
	}
}

// executeRecover is the worker's panic bulkhead around one task.
func (s *Service) executeRecover(t task) {
	defer func() {
		if v := recover(); v != nil {
			perr := &simerr.PanicError{Value: v, Stack: debug.Stack()}
			s.brk.Record(perr)
			for _, i := range t.indices() {
				// Idempotent: only cells the panic cut short still count.
				s.m.cellsFailed.Add(1)
				t.job.cellDone(i, CellResult{}, outcomeRun, perr)
			}
		}
	}()
	s.execute(t)
}

// indices returns the cell indices a task covers.
func (t task) indices() []int {
	if t.group != nil {
		return t.group
	}
	return []int{t.idx}
}

// tasks shards the job for the worker pool: one task per cell, except
// window-major sampled jobs, which get one task per workload covering that
// workload's whole machine sweep. perCell forces the per-cell shape even
// then — the cluster dispatcher routes cells individually by content
// address, and each worker daemon re-applies window-major locally.
func (j *Job) tasks(perCell bool) []task {
	if perCell || !j.opts.WindowMajor || !j.opts.Sampled() {
		out := make([]task, len(j.cells))
		for i := range j.cells {
			out[i] = task{job: j, idx: i}
		}
		return out
	}
	var out []task
	byWL := make(map[string]int) // workload -> index in out
	for i, c := range j.cells {
		k, ok := byWL[c.Workload]
		if !ok {
			k = len(out)
			byWL[c.Workload] = k
			out = append(out, task{job: j})
		}
		out[k].group = append(out[k].group, i)
	}
	return out
}

// execute runs one task — a cell, or a window-major sweep of cells.
func (s *Service) execute(t task) {
	if t.group != nil {
		if s.cfg.RemoteSweep != nil {
			s.executeSweepRemote(t)
			return
		}
		s.executeSweep(t)
		return
	}
	cell := t.job.cells[t.idx]
	if faultinject.Fire(faultinject.ServicePanic, cell.Workload) {
		panic(fmt.Sprintf("injected service worker panic on %s", cell.Workload))
	}
	if err := s.rootCtx.Err(); err != nil {
		t.job.cellDone(t.idx, CellResult{}, outcomeRun, err)
		s.m.cellsFailed.Add(1)
		return
	}
	runner, err := s.runnerFor(t.job.opts)
	if err != nil {
		t.job.cellDone(t.idx, CellResult{}, outcomeRun, err)
		s.m.cellsFailed.Add(1)
		return
	}
	opts := runner.Options()
	key := cell.Key(opts)
	// Progress streams to the job that triggered the execution; a merged
	// submission sees cell completions but not mid-cell progress.
	every := (opts.Warmup + opts.Measure) / 4
	ctx := pipeline.WithProgress(s.rootCtx, every, func(committed uint64) {
		t.job.progress(cell, key, committed)
	})
	res, outcome, err := s.cache.Do(key, func() (CellResult, error) {
		// Offer the cell to the cluster fabric first. Running inside the
		// singleflight critical section means the fabric sees each unique
		// content address at most once per coordinator — the cluster-wide
		// exactly-once contract rests on this ordering. A declined cell
		// (no live peers) falls through to the local runner unchanged.
		if s.cfg.Remote != nil {
			if spec, ok := t.job.remoteSpec(t.idx); ok {
				if rres, handled, rerr := s.cfg.Remote(ctx, RemoteCell{Key: key, Spec: spec}); handled {
					return rres, rerr
				}
			}
		}
		r, err := runner.RunCell(ctx, cell)
		if err != nil {
			return CellResult{}, err
		}
		return NewCellResult(cell, opts, r), nil
	})
	switch outcome {
	case outcomeHit:
		s.m.cacheHits.Add(1)
	case outcomeMerged:
		s.m.merged.Add(1)
	default:
		s.m.cacheMisses.Add(1)
	}
	if err != nil {
		s.m.cellsFailed.Add(1)
	} else {
		s.m.cellsCompleted.Add(1)
	}
	t.job.cellDone(t.idx, res, outcome, err)
}

// executeSweep runs one workload's machine sweep window-major through the
// runner's batched scheduler, then lands each cell in the content cache.
// The sweep shares one predecoded window set across every machine; mid-cell
// progress events are not emitted (cells complete in window-major order).
func (s *Service) executeSweep(t task) {
	j := t.job
	failAll := func(err error) {
		for _, i := range t.group {
			s.m.cellsFailed.Add(1)
			j.cellDone(i, CellResult{}, outcomeRun, err)
		}
	}
	wl := j.cells[t.group[0]].Workload
	if faultinject.Fire(faultinject.ServicePanic, wl) {
		panic(fmt.Sprintf("injected service worker panic on %s", wl))
	}
	if err := s.rootCtx.Err(); err != nil {
		failAll(err)
		return
	}
	runner, err := s.runnerFor(j.opts)
	if err != nil {
		failAll(err)
		return
	}
	opts := runner.Options()
	cfgs := make([]pipeline.Config, len(t.group))
	for k, i := range t.group {
		cfgs[k] = j.cells[i].Config
	}
	results, serr := runner.RunSweepContext(s.rootCtx, cfgs, wl)
	failed := make(map[string]error)
	if serr != nil {
		var ce *experiments.CampaignError
		if errors.As(serr, &ce) {
			for _, f := range ce.Failures {
				failed[f.Config] = f
			}
		} else {
			failAll(serr)
			return
		}
	}
	for k, i := range t.group {
		cell := j.cells[i]
		if ferr, ok := failed[cell.Config.Name]; ok {
			s.m.cellsFailed.Add(1)
			j.cellDone(i, CellResult{}, outcomeRun, ferr)
			continue
		}
		res := results[k]
		cres, outcome, cerr := s.cache.Do(cell.Key(opts), func() (CellResult, error) {
			return NewCellResult(cell, opts, res), nil
		})
		switch outcome {
		case outcomeHit:
			s.m.cacheHits.Add(1)
		case outcomeMerged:
			s.m.merged.Add(1)
		default:
			s.m.cacheMisses.Add(1)
		}
		if cerr != nil {
			s.m.cellsFailed.Add(1)
		} else {
			s.m.cellsCompleted.Add(1)
		}
		j.cellDone(i, cres, outcome, cerr)
	}
}

// executeSweepRemote runs one workload's machine sweep through the
// cluster's batched dispatch seam. Every cell is first claimed in the
// singleflight table — hits land immediately, concurrent duplicates merge —
// and only the owned remainder travels, as one batch sharing one plan key.
// Cells the fabric declines (no live peers, ring churn mid-batch) fall
// back to the local window-major sweep, so the job completes regardless.
func (s *Service) executeSweepRemote(t task) {
	j := t.job
	wl := j.cells[t.group[0]].Workload
	if faultinject.Fire(faultinject.ServicePanic, wl) {
		panic(fmt.Sprintf("injected service worker panic on %s", wl))
	}
	failAll := func(err error) {
		for _, i := range t.group {
			s.m.cellsFailed.Add(1)
			j.cellDone(i, CellResult{}, outcomeRun, err)
		}
	}
	if err := s.rootCtx.Err(); err != nil {
		failAll(err)
		return
	}
	runner, err := s.runnerFor(j.opts)
	if err != nil {
		failAll(err)
		return
	}
	opts := runner.Options()

	type ownedCell struct {
		idx  int
		key  string
		f    *flight
		done bool
	}
	var owned []*ownedCell
	var mergedIdx []int
	var mergedF []*flight
	var rcs []RemoteCell
	// A panic below must not leave owned flights unresolved — merged
	// waiters on other jobs would block forever. Resolve them with the
	// panic and re-raise for executeRecover's idempotent cell sweep.
	defer func() {
		if v := recover(); v != nil {
			perr := &simerr.PanicError{Value: v, Stack: debug.Stack()}
			for _, o := range owned {
				if !o.done {
					s.cache.Resolve(o.key, o.f, CellResult{}, perr)
				}
			}
			panic(v)
		}
	}()
	finish := func(o *ownedCell, res CellResult, err error) {
		o.done = true
		s.cache.Resolve(o.key, o.f, res, err)
		s.m.cacheMisses.Add(1)
		if err != nil {
			s.m.cellsFailed.Add(1)
		} else {
			s.m.cellsCompleted.Add(1)
		}
		j.cellDone(o.idx, res, outcomeRun, err)
	}

	for _, i := range t.group {
		key := j.cells[i].Key(opts)
		res, f, st := s.cache.Claim(key)
		switch st {
		case claimHit:
			s.m.cacheHits.Add(1)
			s.m.cellsCompleted.Add(1)
			j.cellDone(i, res, outcomeHit, nil)
		case claimMerged:
			mergedIdx = append(mergedIdx, i)
			mergedF = append(mergedF, f)
		default:
			o := &ownedCell{idx: i, key: key, f: f}
			owned = append(owned, o)
			if spec, ok := j.remoteSpec(i); ok {
				rcs = append(rcs, RemoteCell{Key: key, Spec: spec})
			}
			// !ok (an unreconstructable recovered grid) leaves the cell to
			// the local sweep below.
		}
	}

	var remoteRes map[string]CellResult
	var remoteErrs map[string]error
	if len(rcs) > 0 {
		planKey, kerr := opts.PlanKey(wl)
		if kerr != nil {
			planKey = ""
		}
		if res, errs, handled := s.cfg.RemoteSweep(s.rootCtx, planKey, rcs); handled {
			remoteRes, remoteErrs = res, errs
		}
	}
	var local []*ownedCell
	for _, o := range owned {
		if res, ok := remoteRes[o.key]; ok {
			finish(o, res, nil)
		} else if rerr, ok := remoteErrs[o.key]; ok {
			finish(o, CellResult{}, rerr)
		} else {
			local = append(local, o)
		}
	}

	if len(local) > 0 {
		cfgs := make([]pipeline.Config, len(local))
		for k, o := range local {
			cfgs[k] = j.cells[o.idx].Config
		}
		results, serr := runner.RunSweepContext(s.rootCtx, cfgs, wl)
		var ce *experiments.CampaignError
		switch {
		case serr == nil || errors.As(serr, &ce):
			failed := make(map[string]error)
			if ce != nil {
				for _, f := range ce.Failures {
					failed[f.Config] = f
				}
			}
			for k, o := range local {
				cell := j.cells[o.idx]
				if ferr, ok := failed[cell.Config.Name]; ok {
					finish(o, CellResult{}, ferr)
					continue
				}
				finish(o, NewCellResult(cell, opts, results[k]), nil)
			}
		default:
			for _, o := range local {
				finish(o, CellResult{}, serr)
			}
		}
	}

	// Merged waiters last: their flights belong to other tasks and may
	// resolve at any time; everything this task owned is settled above.
	for k, i := range mergedIdx {
		f := mergedF[k]
		<-f.done
		s.m.merged.Add(1)
		if f.err != nil {
			s.m.cellsFailed.Add(1)
		} else {
			s.m.cellsCompleted.Add(1)
		}
		j.cellDone(i, f.res, outcomeMerged, f.err)
	}
}

// runnerStats sums the campaign and snapshot counters across all runners.
func (s *Service) runnerStats() (experiments.RunnerStats, sampling.StoreStats) {
	s.mu.Lock()
	runners := make([]*experiments.Runner, 0, len(s.runners))
	for _, r := range s.runners {
		runners = append(runners, r)
	}
	s.mu.Unlock()
	var sum experiments.RunnerStats
	var snaps sampling.StoreStats
	for _, r := range runners {
		st := r.Stats()
		sum.Simulated += st.Simulated
		sum.MemoHits += st.MemoHits
		sum.CheckpointHits += st.CheckpointHits
		sum.Retries += st.Retries
		sum.Failures += st.Failures
		sum.CheckpointErrors += st.CheckpointErrors
		ss := r.SnapshotStats()
		snaps.Plans += ss.Plans
		snaps.PeerPlans += ss.PeerPlans
		snaps.Hits += ss.Hits
		snaps.Evictions += ss.Evictions
		snaps.ResidentBytes += ss.ResidentBytes
		snaps.ResidentPlans += ss.ResidentPlans
	}
	return sum, snaps
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Health is the /healthz document: overall status plus the degraded-mode
// detail. Status is "ok", "degraded" (circuit breaker not closed — cached
// results serve, fresh simulation is refused or probing), or "draining".
type Health struct {
	Status        string `json:"status"`
	Breaker       string `json:"breaker"`
	BreakerTrips  uint64 `json:"breaker_trips,omitempty"`
	RecoveredJobs uint64 `json:"recovered_jobs,omitempty"`
}

// Health snapshots the daemon's health.
func (s *Service) Health() Health {
	state, trips := s.brk.State()
	h := Health{
		Status:        "ok",
		Breaker:       breakerStateString(state),
		BreakerTrips:  trips,
		RecoveredJobs: s.m.jobsRecovered.Load(),
	}
	if state != breakerClosed {
		h.Status = "degraded"
	}
	if s.Draining() {
		h.Status = "draining"
	}
	return h
}

// Shutdown drains the daemon: submissions are refused immediately, every
// accepted job (queued or active) runs to completion, then the pool stops.
// If ctx expires first, in-flight simulations are canceled — they fail
// with the cancellation and their jobs finalize as failed — and Shutdown
// returns the context's error after the pool exits. Safe to call once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already shut down")
	}
	s.draining = true
	s.q.close()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // abort in-flight simulations (observed within ~1K cycles)
		<-drained
	}
	s.dispWG.Wait()
	close(s.tasks)
	s.workerWG.Wait()
	s.cancel()
	s.jl.close()
	return err
}

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// QueueDepth returns the number of jobs currently queued (not yet active).
func (s *Service) QueueDepth() int { return s.q.depth() }

// DefaultOptions returns the daemon's default (normalized) run options.
func (s *Service) DefaultOptions() experiments.Options { return s.cfg.DefaultOptions }

// MetricsText renders the /metrics document.
func (s *Service) MetricsText() string {
	rs, snaps := s.runnerStats()
	brkState, brkTrips := s.brk.State()
	replicas, replicaBytes := s.planGauges()
	return s.m.render(s.cfg.NodeID, snapshotGauges{
		queueDepth:       s.QueueDepth(),
		workers:          s.cfg.Workers,
		cacheEntries:     s.cache.Len(),
		simulated:        rs.Simulated,
		memoHits:         rs.MemoHits,
		ckptHits:         rs.CheckpointHits,
		retries:          rs.Retries,
		snapPlans:        snaps.Plans,
		snapPeerPlans:    snaps.PeerPlans,
		snapHits:         snaps.Hits,
		snapEvictions:    snaps.Evictions,
		traceResident:    snaps.ResidentBytes,
		traceBudget:      s.cfg.TraceBudgetBytes,
		planReplicas:     replicas,
		planReplicaBytes: replicaBytes,
		draining:         s.Draining(),
		breakerState:     brkState,
		breakerTrips:     brkTrips,
	})
}

// Uptime reports how long the daemon has been serving.
func (s *Service) Uptime() time.Duration { return time.Since(s.m.start) }
