package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/sampling"
)

// Submission refusals. The HTTP layer maps these to 429 and 503.
var (
	// ErrQueueFull means the bounded job queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining means the daemon is shutting down and no longer accepts
	// jobs; in-flight and queued work still completes.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// Config sizes the daemon.
type Config struct {
	// Workers is the cell-execution pool size (0 = GOMAXPROCS). It bounds
	// detailed simulations in flight across all jobs.
	Workers int
	// QueueDepth bounds jobs queued behind the active set (0 = 64).
	QueueDepth int
	// MaxActiveJobs bounds campaigns expanded and executing concurrently
	// (0 = 4). Cells from active jobs interleave on the worker pool.
	MaxActiveJobs int
	// MaxCellsPerJob rejects degenerate grids at submission (0 = 4096).
	MaxCellsPerJob int
	// DefaultOptions supplies windows for specs that omit them and the
	// failure handling (timeout, retries) for every run. Zero windows mean
	// experiments.DefaultOptions.
	DefaultOptions experiments.Options
	// CheckpointDir, when set, persists every finished run so a restarted
	// daemon answers repeat traffic from disk.
	CheckpointDir string
	// TraceBudgetBytes bounds, per window-geometry runner, the bytes of
	// predecoded window traces and snapshots the sampled path keeps
	// resident, evicting whole plans LRU-first (0 = unbounded). Exported
	// live through the pubsd_trace_resident_bytes gauge.
	TraceBudgetBytes int64
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 4
	}
	if c.MaxCellsPerJob <= 0 {
		c.MaxCellsPerJob = 4096
	}
	if c.DefaultOptions.Warmup == 0 && c.DefaultOptions.Measure == 0 {
		c.DefaultOptions = experiments.DefaultOptions()
	}
	c.DefaultOptions.Parallelism = c.Workers
	c.DefaultOptions.TraceBudgetBytes = c.TraceBudgetBytes
	return c
}

// task is work scheduled onto the worker pool: one cell of one job, or —
// for window-major sampled jobs — one workload's whole machine sweep
// (group lists the cell indices; idx is unused then).
type task struct {
	job   *Job
	idx   int
	group []int
}

// Service is the campaign daemon: a bounded job queue feeding a dispatcher
// that shards each job's grid across a fixed worker pool, with results
// landing in the content-addressed cache.
type Service struct {
	cfg   Config
	cache *resultCache
	m     *metrics

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	runners  map[windowKey]*experiments.Runner
	draining bool
	seq      uint64

	queue chan *Job
	tasks chan task

	rootCtx context.Context
	cancel  context.CancelFunc

	jobWG    sync.WaitGroup // submitted jobs not yet finalized
	workerWG sync.WaitGroup
	dispWG   sync.WaitGroup
}

// windowKey distinguishes runners by simulation window — including the
// sampling geometry, so sampled and contiguous jobs (and different sampled
// geometries) get separate runners and snapshot stores — plus the decode
// and scheduling modes, which are fixed per runner even though they never
// change results; every other option is shared daemon-wide.
type windowKey struct {
	warmup, measure uint64
	windows         int
	fastForward     uint64
	parallelWindows int
	liveDecode      bool
	windowMajor     bool
}

func keyFor(o experiments.Options) windowKey {
	return windowKey{
		warmup: o.Warmup, measure: o.Measure,
		windows: o.SampleWindows, fastForward: o.SampleFastForward,
		parallelWindows: o.ParallelWindows,
		liveDecode:      o.LiveDecode,
		windowMajor:     o.WindowMajor,
	}
}

// New builds and starts a daemon: workers and dispatcher run until
// Shutdown.
func New(cfg Config) (*Service, error) {
	cfg = cfg.normalized()
	s := &Service{
		cfg:     cfg,
		cache:   newResultCache(),
		m:       newMetrics(),
		jobs:    make(map[string]*Job),
		runners: make(map[windowKey]*experiments.Runner),
		queue:   make(chan *Job, cfg.QueueDepth),
		tasks:   make(chan task, cfg.Workers*2),
	}
	// Fail fast on an unusable checkpoint directory.
	if cfg.CheckpointDir != "" {
		if _, err := s.runnerFor(cfg.DefaultOptions); err != nil {
			return nil, err
		}
	}
	s.rootCtx, s.cancel = context.WithCancel(context.Background())
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.dispWG.Add(1)
	go s.dispatch()
	return s, nil
}

// runnerFor returns (creating on demand) the runner for a window pair.
// All runners share the worker pool's parallelism bound and, when
// configured, the same checkpoint directory — keys embed the windows, so
// the records never collide.
func (s *Service) runnerFor(o experiments.Options) (*experiments.Runner, error) {
	k := keyFor(o)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[k]; ok {
		return r, nil
	}
	// Every runner feeds the daemon-wide replay-latency histogram.
	o.WindowObserve = s.m.observeWindow
	r := experiments.NewRunner(o)
	if s.cfg.CheckpointDir != "" {
		var err error
		if r, err = r.WithCheckpoint(s.cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	s.runners[k] = r
	return r, nil
}

// Submit validates a spec, assigns a job ID, and enqueues it. It never
// blocks: a full queue returns ErrQueueFull, a draining daemon
// ErrDraining.
func (s *Service) Submit(spec CampaignSpec) (*Job, error) {
	cells, err := spec.Cells(s.cfg.MaxCellsPerJob)
	if err != nil {
		s.m.jobsRejected.Add(1)
		return nil, err
	}
	opts := spec.options(s.cfg.DefaultOptions)
	if _, err := s.runnerFor(opts); err != nil {
		s.m.jobsRejected.Add(1)
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.jobsRejected.Add(1)
		return nil, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	job := newJob(id, spec, cells, opts)
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		s.m.jobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.jobWG.Add(1)
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)
	return job, nil
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobStatuses snapshots every job in submission order.
func (s *Service) JobStatuses() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Job(id); ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// Result returns a completed cell by content key.
func (s *Service) Result(key string) (CellResult, bool) { return s.cache.Get(key) }

// dispatch pulls queued jobs and runs each on its own goroutine, at most
// MaxActiveJobs at a time. Concurrent active jobs are what give the
// singleflight layer work: two identical campaigns in flight share every
// cell execution.
func (s *Service) dispatch() {
	defer s.dispWG.Done()
	sem := make(chan struct{}, s.cfg.MaxActiveJobs)
	for job := range s.queue {
		sem <- struct{}{}
		go func(j *Job) {
			defer func() { <-sem }()
			s.runJob(j)
		}(job)
	}
}

// runJob expands a job onto the task channel and finalizes it when every
// cell reports back.
func (s *Service) runJob(j *Job) {
	defer s.jobWG.Done()
	s.m.activeJobs.Add(1)
	defer s.m.activeJobs.Add(-1)
	j.start()
	j.cellWG.Add(len(j.cells))
	for _, t := range j.tasks() {
		select {
		case s.tasks <- t:
		case <-s.rootCtx.Done():
			// Forced shutdown mid-expansion: fail the remaining cells here;
			// cells already queued are failed by the workers.
			for _, i := range t.indices() {
				j.cellDone(i, CellResult{}, outcomeRun, s.rootCtx.Err())
				j.cellWG.Done()
			}
		}
	}
	j.cellWG.Wait()
	j.finalize()
	st := j.Status()
	if st.State == JobFailed {
		s.m.jobsFailed.Add(1)
	} else {
		s.m.jobsDone.Add(1)
	}
	s.m.observeLatency(j.latency())
}

// worker executes tasks until the task channel closes at shutdown.
func (s *Service) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		s.m.workersBusy.Add(1)
		s.execute(t)
		s.m.workersBusy.Add(-1)
	}
}

// indices returns the cell indices a task covers.
func (t task) indices() []int {
	if t.group != nil {
		return t.group
	}
	return []int{t.idx}
}

// tasks shards the job for the worker pool: one task per cell, except
// window-major sampled jobs, which get one task per workload covering that
// workload's whole machine sweep.
func (j *Job) tasks() []task {
	if !j.opts.WindowMajor || !j.opts.Sampled() {
		out := make([]task, len(j.cells))
		for i := range j.cells {
			out[i] = task{job: j, idx: i}
		}
		return out
	}
	var out []task
	byWL := make(map[string]int) // workload -> index in out
	for i, c := range j.cells {
		k, ok := byWL[c.Workload]
		if !ok {
			k = len(out)
			byWL[c.Workload] = k
			out = append(out, task{job: j})
		}
		out[k].group = append(out[k].group, i)
	}
	return out
}

// execute runs one task — a cell, or a window-major sweep of cells.
func (s *Service) execute(t task) {
	if t.group != nil {
		s.executeSweep(t)
		return
	}
	defer t.job.cellWG.Done()
	cell := t.job.cells[t.idx]
	if err := s.rootCtx.Err(); err != nil {
		t.job.cellDone(t.idx, CellResult{}, outcomeRun, err)
		s.m.cellsFailed.Add(1)
		return
	}
	runner, err := s.runnerFor(t.job.opts)
	if err != nil {
		t.job.cellDone(t.idx, CellResult{}, outcomeRun, err)
		s.m.cellsFailed.Add(1)
		return
	}
	opts := runner.Options()
	key := cell.Key(opts)
	// Progress streams to the job that triggered the execution; a merged
	// submission sees cell completions but not mid-cell progress.
	every := (opts.Warmup + opts.Measure) / 4
	ctx := pipeline.WithProgress(s.rootCtx, every, func(committed uint64) {
		t.job.progress(cell, key, committed)
	})
	res, outcome, err := s.cache.Do(key, func() (CellResult, error) {
		r, err := runner.RunCell(ctx, cell)
		if err != nil {
			return CellResult{}, err
		}
		return NewCellResult(cell, opts, r), nil
	})
	switch outcome {
	case outcomeHit:
		s.m.cacheHits.Add(1)
	case outcomeMerged:
		s.m.merged.Add(1)
	default:
		s.m.cacheMisses.Add(1)
	}
	if err != nil {
		s.m.cellsFailed.Add(1)
	} else {
		s.m.cellsCompleted.Add(1)
	}
	t.job.cellDone(t.idx, res, outcome, err)
}

// executeSweep runs one workload's machine sweep window-major through the
// runner's batched scheduler, then lands each cell in the content cache.
// The sweep shares one predecoded window set across every machine; mid-cell
// progress events are not emitted (cells complete in window-major order).
func (s *Service) executeSweep(t task) {
	j := t.job
	defer func() {
		for range t.group {
			j.cellWG.Done()
		}
	}()
	failAll := func(err error) {
		for _, i := range t.group {
			s.m.cellsFailed.Add(1)
			j.cellDone(i, CellResult{}, outcomeRun, err)
		}
	}
	if err := s.rootCtx.Err(); err != nil {
		failAll(err)
		return
	}
	runner, err := s.runnerFor(j.opts)
	if err != nil {
		failAll(err)
		return
	}
	opts := runner.Options()
	wl := j.cells[t.group[0]].Workload
	cfgs := make([]pipeline.Config, len(t.group))
	for k, i := range t.group {
		cfgs[k] = j.cells[i].Config
	}
	results, serr := runner.RunSweepContext(s.rootCtx, cfgs, wl)
	failed := make(map[string]error)
	if serr != nil {
		var ce *experiments.CampaignError
		if errors.As(serr, &ce) {
			for _, f := range ce.Failures {
				failed[f.Config] = f
			}
		} else {
			failAll(serr)
			return
		}
	}
	for k, i := range t.group {
		cell := j.cells[i]
		if ferr, ok := failed[cell.Config.Name]; ok {
			s.m.cellsFailed.Add(1)
			j.cellDone(i, CellResult{}, outcomeRun, ferr)
			continue
		}
		res := results[k]
		cres, outcome, cerr := s.cache.Do(cell.Key(opts), func() (CellResult, error) {
			return NewCellResult(cell, opts, res), nil
		})
		switch outcome {
		case outcomeHit:
			s.m.cacheHits.Add(1)
		case outcomeMerged:
			s.m.merged.Add(1)
		default:
			s.m.cacheMisses.Add(1)
		}
		if cerr != nil {
			s.m.cellsFailed.Add(1)
		} else {
			s.m.cellsCompleted.Add(1)
		}
		j.cellDone(i, cres, outcome, cerr)
	}
}

// runnerStats sums the campaign and snapshot counters across all runners.
func (s *Service) runnerStats() (experiments.RunnerStats, sampling.StoreStats) {
	s.mu.Lock()
	runners := make([]*experiments.Runner, 0, len(s.runners))
	for _, r := range s.runners {
		runners = append(runners, r)
	}
	s.mu.Unlock()
	var sum experiments.RunnerStats
	var snaps sampling.StoreStats
	for _, r := range runners {
		st := r.Stats()
		sum.Simulated += st.Simulated
		sum.MemoHits += st.MemoHits
		sum.CheckpointHits += st.CheckpointHits
		sum.Retries += st.Retries
		sum.Failures += st.Failures
		sum.CheckpointErrors += st.CheckpointErrors
		ss := r.SnapshotStats()
		snaps.Plans += ss.Plans
		snaps.Hits += ss.Hits
		snaps.Evictions += ss.Evictions
		snaps.ResidentBytes += ss.ResidentBytes
		snaps.ResidentPlans += ss.ResidentPlans
	}
	return sum, snaps
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the daemon: submissions are refused immediately, every
// accepted job (queued or active) runs to completion, then the pool stops.
// If ctx expires first, in-flight simulations are canceled — they fail
// with the cancellation and their jobs finalize as failed — and Shutdown
// returns the context's error after the pool exits. Safe to call once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already shut down")
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // abort in-flight simulations (observed within ~1K cycles)
		<-drained
	}
	s.dispWG.Wait()
	close(s.tasks)
	s.workerWG.Wait()
	s.cancel()
	return err
}

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// QueueDepth returns the number of jobs currently queued (not yet active).
func (s *Service) QueueDepth() int { return len(s.queue) }

// DefaultOptions returns the daemon's default (normalized) run options.
func (s *Service) DefaultOptions() experiments.Options { return s.cfg.DefaultOptions }

// MetricsText renders the /metrics document.
func (s *Service) MetricsText() string {
	rs, snaps := s.runnerStats()
	return s.m.render(snapshotGauges{
		queueDepth:   s.QueueDepth(),
		workers:      s.cfg.Workers,
		cacheEntries: s.cache.Len(),
		simulated:    rs.Simulated,
		memoHits:     rs.MemoHits,
		ckptHits:     rs.CheckpointHits,
		retries:      rs.Retries,
		snapPlans:     snaps.Plans,
		snapHits:      snaps.Hits,
		snapEvictions: snaps.Evictions,
		traceResident: snaps.ResidentBytes,
		traceBudget:   s.cfg.TraceBudgetBytes,
		draining:      s.Draining(),
	})
}

// Uptime reports how long the daemon has been serving.
func (s *Service) Uptime() time.Duration { return time.Since(s.m.start) }
