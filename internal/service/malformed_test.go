package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// hostileBodies is the fuzz-seeded table of corrupt and adversarial
// POST /v1/jobs payloads. Every one of them must come back as a 400 with
// the JSON error envelope — never a 5xx, never a panic, never an accepted
// job. The entries double as the seed corpus for FuzzCampaignSpec.
var hostileBodies = []struct {
	name string
	body string
}{
	{"empty", ""},
	{"not json", "hello there"},
	{"truncated object", `{"machines": [{"machine": "base"`},
	{"wrong top-level type", `[1, 2, 3]`},
	{"null", `null`},
	{"number", `42`},
	{"unknown field", `{"machines":[{"machine":"base"}], "frobnicate": true}`},
	{"wrong field type", `{"machines": "base"}`},
	{"machine wrong type", `{"machines": [42]}`},
	{"no machines", `{"workloads": ["matmul"]}`},
	{"empty machines", `{"machines": []}`},
	{"unknown machine", `{"machines": [{"machine": "vax-11/780"}]}`},
	{"unknown workload", `{"machines":[{"machine":"base"}], "workloads":["solitaire"]}`},
	{"negative windows", `{"machines":[{"machine":"base"}], "windows": -3}`},
	{"huge windows", `{"machines":[{"machine":"base"}], "windows": 9223372036854775807}`},
	{"windows overflow", `{"machines":[{"machine":"base"}], "windows": 99999999999999999999999}`},
	{"negative warmup", `{"machines":[{"machine":"base"}], "warmup": -1}`},
	{"priority out of range", `{"machines":[{"machine":"base"}], "priority": 1000000}`},
	{"priority wrong type", `{"machines":[{"machine":"base"}], "priority": "urgent"}`},
	{"tenant wrong type", `{"machines":[{"machine":"base"}], "tenant": {"name": "x"}}`},
	{"nul bytes", "{\"machines\":[{\"machine\":\"base\x00\"}]}"},
	{"deep nesting", strings.Repeat(`{"machines":`, 200) + strings.Repeat("}", 200)},
	{"grid over cap", `{"machines":[{"machine":"base"},{"machine":"pubs"},{"machine":"age"},{"machine":"pubs+age"}]}`},
	{"oversized body", `{"machines":[{"machine":"` + strings.Repeat("A", 2<<20) + `"}]}`},
	{"duplicate keys", `{"machines":[{"machine":"base"}],"machines":[{"machine":"zzz"}]}`},
	{"bom prefix", "\xef\xbb\xbf{\"machines\":[{\"machine\":\"base\"}]}"},
	{"negative conf bits", `{"machines":[{"machine":"pubs","conf_counter_bits":-8}]}`},
}

// TestMalformedSpecsAlwaysYield400 pushes every hostile body through the
// real HTTP handler. A small MaxCellsPerJob makes the over-cap case cheap.
func TestMalformedSpecsAlwaysYield400(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 1, MaxCellsPerJob: 20})
	for _, tc := range hostileBodies {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: POST: %v", tc.name, err)
		}
		var envelope apiError
		decErr := json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if decErr != nil || envelope.Error == "" {
			t.Errorf("%s: 400 body is not the JSON error envelope (decode: %v)", tc.name, decErr)
		}
	}
}

// FuzzCampaignSpec fuzzes the submission decode + validation path (the
// exact code POST /v1/jobs runs before admission): whatever the input, it
// must return an error or a valid grid — never panic.
func FuzzCampaignSpec(f *testing.F) {
	for _, tc := range hostileBodies {
		f.Add([]byte(tc.body))
	}
	f.Add([]byte(`{"machines":[{"machine":"pubs","nostall":true}],"workloads":["matmul"],"windows":2,"priority":-1,"tenant":"t"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec CampaignSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		cells, err := spec.Cells(64)
		if err != nil {
			return
		}
		if len(cells) == 0 {
			t.Errorf("valid spec expanded to zero cells: %s", data)
		}
	})
}
