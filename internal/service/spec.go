// Package service turns the simulator into a long-running campaign
// daemon: an HTTP JSON API over a bounded job queue, a worker pool that
// shards each campaign's (machine × workload) grid across workers, and a
// content-addressed result cache with singleflight deduplication so that
// concurrent identical submissions — the heavy-traffic case — execute
// once. Execution reuses the experiment Runner end to end: panic-recovering
// workers, per-run timeouts and transient-failure retries, memoization,
// and optional on-disk checkpointing share one code path with the CLI, so
// a result served by the daemon is bit-identical to the equivalent
// cmd/experiments run.
package service

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// MachineSpec names a machine configuration plus optional PUBS overrides —
// the JSON mirror of cmd/pubsim's machine flags, so a CLI invocation and a
// service submission describe machines identically.
type MachineSpec struct {
	// Machine is one of: base, pubs, age, pubs+age, or
	// {base,pubs}-{small,medium,large,huge}.
	Machine string `json:"machine"`

	// PUBS parameter overrides (ignored on machines without PUBS).
	PriorityEntries int  `json:"priority_entries,omitempty"`
	ConfCounterBits int  `json:"conf_counter_bits,omitempty"`
	NoStall         bool `json:"nostall,omitempty"`
	NoSwitch        bool `json:"noswitch,omitempty"`
	Blind           bool `json:"blind,omitempty"`
	Flexible        bool `json:"flexible,omitempty"`

	// Machine-level toggles.
	Distributed bool `json:"distributed,omitempty"`
	WrongPath   bool `json:"wrongpath,omitempty"`

	// NoIdleSkip forces the per-cycle polling loop (diagnostics; the
	// event-driven idle skip is bit-identical and on by default). It is
	// result-neutral, so it does not enter the machine name or any
	// content-addressed key.
	NoIdleSkip bool `json:"no_idle_skip,omitempty"`
}

// MachineConfig resolves a machine name to its configuration — the same
// naming scheme cmd/pubsim accepts on -machine.
func MachineConfig(machine string) (pipeline.Config, error) {
	sizes := map[string]pipeline.Size{
		"small": pipeline.Small, "medium": pipeline.Medium,
		"large": pipeline.Large, "huge": pipeline.Huge,
	}
	switch machine {
	case "base":
		return pipeline.BaseConfig(), nil
	case "pubs":
		return pipeline.PUBSConfig(), nil
	case "age":
		cfg := pipeline.BaseConfig()
		cfg.Name = "age"
		cfg.AgeMatrix = true
		return cfg, nil
	case "pubs+age":
		cfg := pipeline.PUBSConfig()
		cfg.Name = "pubs+age"
		cfg.AgeMatrix = true
		return cfg, nil
	}
	if kind, size, ok := strings.Cut(machine, "-"); ok {
		sz, found := sizes[size]
		if !found {
			return pipeline.Config{}, fmt.Errorf("service: unknown machine size %q", size)
		}
		cfg := pipeline.ScaledConfig(sz)
		switch kind {
		case "base":
			return cfg, nil
		case "pubs":
			cfg.Name = "pubs-" + size
			cfg.PUBS = pipeline.PUBSConfig().PUBS
			return cfg, nil
		}
	}
	return pipeline.Config{}, fmt.Errorf("service: unknown machine %q", machine)
}

// Config resolves the spec to a validated machine configuration. Overrides
// are folded into the name so distinct parameterizations stay visibly (and
// content-addressably) distinct.
func (m MachineSpec) Config() (pipeline.Config, error) {
	cfg, err := MachineConfig(m.Machine)
	if err != nil {
		return pipeline.Config{}, err
	}
	// Negative overrides are malformed, not "unset": silently ignoring
	// them would accept a spec the submitter believes says something.
	if m.PriorityEntries < 0 || m.ConfCounterBits < 0 {
		return pipeline.Config{}, fmt.Errorf("service: machine %q: negative PUBS override", m.Machine)
	}
	if cfg.PUBS.Enable {
		if m.PriorityEntries > 0 {
			cfg.PUBS.PriorityEntries = m.PriorityEntries
			cfg.Name += fmt.Sprintf("-p%d", m.PriorityEntries)
		}
		if m.ConfCounterBits > 0 {
			cfg.PUBS.ConfCounterBits = m.ConfCounterBits
			cfg.Name += fmt.Sprintf("-c%d", m.ConfCounterBits)
		}
		if m.NoStall {
			cfg.PUBS.StallDispatch = false
			cfg.Name += "-nostall"
		}
		if m.NoSwitch {
			cfg.PUBS.ModeSwitch = false
			cfg.Name += "-noswitch"
		}
		if m.Blind {
			cfg.PUBS.Blind = true
			cfg.Name += "-blind"
		}
		if m.Flexible {
			cfg.PUBS.FlexibleSelect = true
			cfg.Name += "-flexible"
		}
	}
	if m.Distributed {
		cfg.DistributedIQ = true
		cfg.Name += "-dist"
	}
	if m.WrongPath {
		cfg.WrongPathDecode = true
		cfg.Name += "-wp"
	}
	// Result-neutral, deliberately not folded into the name: a poll-mode
	// submission must share cache entries with the skipping default.
	cfg.NoIdleSkip = m.NoIdleSkip
	if err := cfg.Validate(); err != nil {
		return pipeline.Config{}, err
	}
	return cfg, nil
}

// CampaignSpec is the body of POST /v1/jobs: a (machine × workload) grid
// plus optional simulation windows. Empty Workloads means the full suite;
// zero windows fall back to the daemon's defaults. Windows > 0 switches
// the job to sampled simulation: Windows measurement windows of
// Warmup+Measure detailed instructions separated by FastForward functional
// gaps, with the fast-forward paid once per workload and shared across the
// job's machines. ParallelWindows sets per-cell window concurrency
// (negative = GOMAXPROCS); it never changes results. WindowMajor schedules
// a sampled job's machines window-major: each workload's predecoded windows
// replay across every machine of the grid while the trace is hot, one sweep
// per worker slot. LiveDecode turns the predecoded traces off and replays
// windows through a live functional emulator — slower, bit-identical.
// Neither changes results, so they do not enter result keys.
type CampaignSpec struct {
	Machines        []MachineSpec `json:"machines"`
	Workloads       []string      `json:"workloads,omitempty"`
	Warmup          uint64        `json:"warmup,omitempty"`
	Measure         uint64        `json:"measure,omitempty"`
	Windows         int           `json:"windows,omitempty"`
	FastForward     uint64        `json:"fast_forward,omitempty"`
	ParallelWindows int           `json:"parallel_windows,omitempty"`
	WindowMajor     bool          `json:"window_major,omitempty"`
	LiveDecode      bool          `json:"live_decode,omitempty"`

	// Admission-control metadata. Tenant names the submitter for the
	// per-tenant token buckets (empty = the shared "default" bucket);
	// Priority orders the job queue and picks shedding victims under
	// overload (higher runs first, lower sheds first; negative =
	// best-effort, refused above the high-water mark). Neither enters
	// memo, checkpoint, or content keys — two submissions differing only
	// here share every cell.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// maxSampleWindows bounds a sampled spec's window count: beyond it a
// submission is a typo or an attack, not an experiment.
const maxSampleWindows = 65536

// Cells validates the spec and enumerates its grid. maxCells caps
// degenerate submissions (0 disables the cap).
func (s CampaignSpec) Cells(maxCells int) ([]experiments.Cell, error) {
	if len(s.Machines) == 0 {
		return nil, fmt.Errorf("service: spec needs at least one machine")
	}
	if s.Windows < 0 || s.Windows > maxSampleWindows {
		return nil, fmt.Errorf("service: windows must be in [0, %d], got %d", maxSampleWindows, s.Windows)
	}
	if s.Priority < -1000 || s.Priority > 1000 {
		return nil, fmt.Errorf("service: priority must be in [-1000, 1000], got %d", s.Priority)
	}
	cfgs := make([]pipeline.Config, 0, len(s.Machines))
	for i, m := range s.Machines {
		cfg, err := m.Config()
		if err != nil {
			return nil, fmt.Errorf("service: machines[%d]: %w", i, err)
		}
		cfgs = append(cfgs, cfg)
	}
	wls := s.Workloads
	if len(wls) == 0 {
		wls = workload.Names()
	}
	for _, wl := range wls {
		if _, err := workload.ByName(wl); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	if maxCells > 0 && len(cfgs)*len(wls) > maxCells {
		return nil, fmt.Errorf("service: spec expands to %d cells, cap is %d", len(cfgs)*len(wls), maxCells)
	}
	return experiments.Grid(cfgs, wls), nil
}

// options resolves the spec's windows against the daemon defaults.
func (s CampaignSpec) options(def experiments.Options) experiments.Options {
	o := def
	if s.Warmup > 0 {
		o.Warmup = s.Warmup
	}
	if s.Measure > 0 {
		o.Measure = s.Measure
	}
	if s.Windows > 0 {
		o.SampleWindows = s.Windows
		o.SampleFastForward = s.FastForward
		o.ParallelWindows = s.ParallelWindows
	}
	if s.WindowMajor {
		o.WindowMajor = true
	}
	if s.LiveDecode {
		o.LiveDecode = true
	}
	return o
}

// CellResult is the job-result schema shared by the pubsd API
// (GET /v1/results/{key}, job status documents) and `pubsim -json`: one
// simulated cell, addressed by the content key the checkpoint store and
// the daemon cache agree on.
type CellResult struct {
	Key      string          `json:"key"`
	Machine  string          `json:"machine"`
	Workload string          `json:"workload"`
	Warmup   uint64          `json:"warmup"`
	Measure  uint64          `json:"measure"`
	Result   pipeline.Result `json:"result"`

	// Sampled-run geometry; zero (and omitted from JSON) for the
	// contiguous-window runs that predate sampling, keeping their wire
	// records byte-identical.
	Windows     int    `json:"windows,omitempty"`
	FastForward uint64 `json:"fast_forward,omitempty"`
}

// NewCellResult assembles the wire record for a finished cell.
func NewCellResult(cell experiments.Cell, o experiments.Options, res pipeline.Result) CellResult {
	return CellResult{
		Key:         cell.Key(o),
		Machine:     cell.Config.Name,
		Workload:    cell.Workload,
		Warmup:      o.Warmup,
		Measure:     o.Measure,
		Result:      res,
		Windows:     o.SampleWindows,
		FastForward: o.SampleFastForward,
	}
}
