package sliceprof

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestKnownSlice: a hand-built loop with an exactly known backward slice.
func TestKnownSlice(t *testing.T) {
	b := asm.New("known")
	base := b.Words(1, 0, 1, 0, 1, 0, 1, 0)
	r2, r3, r4, r5, acc := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	b.Li(r2, int64(base))
	b.Label("top")
	b.Addi(r3, r3, 8)           // slice (induction)
	b.Andi(r3, r3, 63)          // slice
	b.Add(r4, r3, r2)           // slice
	b.Ld(r5, r4, 0)             // slice
	b.Addi(acc, acc, 1)         // NOT in slice
	b.Addi(acc, acc, 2)         // NOT in slice
	b.Bne(r5, isa.RZero, "top") // slice root: depends on r5 (and transitively r3-chain)
	b.Jmp("top")
	prog := b.MustBuild()

	p, err := Analyze(prog, 10_000, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.Branches == 0 {
		t.Fatal("no branches profiled")
	}
	// Steady state: the walk from Bne reaches ld, add, andi, addi(r3) of
	// this iteration, then the r3 chain of previous iterations until the
	// window horizon: slice size ≈ 4 + 2×(iterations in window).
	if p.MeanSliceSize() < 8 {
		t.Errorf("mean slice size %.1f too small — transitive chain missed", p.MeanSliceSize())
	}
	// Members per 8-instruction iteration: addi r3, andi, add, ld — the two
	// acc updates, the branch itself, and the jmp are not members: 4/8.
	frac := p.MemberFraction()
	if frac < 0.45 || frac > 0.6 {
		t.Errorf("membership fraction %.2f, want ≈0.5", frac)
	}
	if !strings.Contains(p.Table(), "slice membership") {
		t.Error("table missing content")
	}
}

// TestNoBranches: a branch-free program yields an empty profile.
func TestNoBranches(t *testing.T) {
	b := asm.New("plain")
	for i := 0; i < 50; i++ {
		b.Addi(isa.R(2), isa.R(2), 1)
	}
	b.Halt()
	p, err := Analyze(b.MustBuild(), 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Branches != 0 || p.SliceMembers != 0 {
		t.Errorf("profile not empty: %+v", p)
	}
}

// TestSuiteCharacteristics: the D-BP design discipline — slices must be a
// minority of the instruction mix on the compute D-BP kernels.
func TestSuiteCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, wl := range []string{"chess", "parser", "regex"} {
		p, err := Analyze(workload.MustProgram(wl), 100_000, 128)
		if err != nil {
			t.Fatal(err)
		}
		if p.MemberFraction() > 0.6 {
			t.Errorf("%s: %.0f%% of instructions in branch slices — priority entries would saturate",
				wl, p.MemberFraction()*100)
		}
		if p.MeanSliceSize() <= 1 {
			t.Errorf("%s: slices degenerate (mean %.1f)", wl, p.MeanSliceSize())
		}
		t.Logf("%-8s mean slice %.1f, median %d, membership %.0f%%",
			wl, p.MeanSliceSize(), p.SliceSizes.Quantile(0.5), p.MemberFraction()*100)
	}
}
