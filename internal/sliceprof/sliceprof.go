// Package sliceprof measures branch slices exactly, from the architectural
// instruction stream: for every dynamic conditional branch it walks the
// def-use chain backward (bounded by a window approximating the
// instruction window) and records the slice's size and the fraction of all
// instructions that belong to at least one branch slice.
//
// The PUBS scheme's economics live and die by these numbers — the paper
// sizes its priority-entry partition (6 of 64 entries) assuming slices are
// short and a modest share of the in-flight mix. This profiler verifies
// the synthetic suite exhibits that structure, and it is the tool to reach
// for when a new workload behaves unexpectedly under PUBS.
package sliceprof

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/stats"
)

// Profile holds slice statistics for one program window.
type Profile struct {
	Insts        uint64
	Branches     uint64 // conditional branches profiled
	SliceSizes   *stats.Histogram
	SliceMembers uint64 // instructions in ≥1 backward slice (within window)
	WindowInsts  int    // backward horizon per branch
}

// MeanSliceSize returns the average backward-slice size (instructions,
// excluding the branch itself).
func (p Profile) MeanSliceSize() float64 { return p.SliceSizes.Mean() }

// MemberFraction returns the fraction of dynamic instructions that belong
// to at least one conditional branch's backward slice.
func (p Profile) MemberFraction() float64 {
	if p.Insts == 0 {
		return 0
	}
	return float64(p.SliceMembers) / float64(p.Insts)
}

// Table renders the profile.
func (p Profile) Table() string {
	return fmt.Sprintf(
		"slice profile over %d instructions (%d branches, %d-instruction window):\n"+
			"  mean slice size   %.1f instructions\n"+
			"  median / p90      %d / %d\n"+
			"  slice membership  %.1f%% of all instructions\n",
		p.Insts, p.Branches, p.WindowInsts,
		p.MeanSliceSize(), p.SliceSizes.Quantile(0.5), p.SliceSizes.Quantile(0.9),
		p.MemberFraction()*100)
}

// ring remembers the last `window` dynamic instructions with their
// producer links, so slices can be walked backward exactly.
type ring struct {
	seqs    []uint64   // dynamic seq per slot
	prod    [][2]int64 // producer seqs (-1 = outside window / none)
	inSlice []bool     // member of ≥1 slice (for the membership fraction)
	visited []uint64   // walk epoch (for per-branch slice size)
	epoch   uint64
	n       int
}

// Analyze runs the profiler over up to n instructions of prog. window
// bounds each backward walk (128 ≈ the machine's ROB).
func Analyze(prog *isa.Program, n uint64, window int) (Profile, error) {
	if window <= 0 {
		window = 128
	}
	m, err := emu.New(prog)
	if err != nil {
		return Profile{}, err
	}
	p := Profile{
		SliceSizes:  stats.NewHistogram(window + 1),
		WindowInsts: window,
	}
	rg := ring{
		seqs:    make([]uint64, window),
		prod:    make([][2]int64, window),
		inSlice: make([]bool, window),
		visited: make([]uint64, window),
		n:       window,
	}
	var lastWriter [isa.NumLogicalRegs]int64
	for r := range lastWriter {
		lastWriter[r] = -1
	}

	for i := uint64(0); i < n; i++ {
		di, ok := m.Step()
		if !ok {
			break
		}
		p.Insts++
		slot := int(di.Seq % uint64(rg.n))
		// An evicted slot that was in a slice has already been counted.
		rg.seqs[slot] = di.Seq
		rg.inSlice[slot] = false
		srcs, nsrc := di.Inst.Sources()
		var prods [2]int64
		prods[0], prods[1] = -1, -1
		for k := 0; k < nsrc; k++ {
			if srcs[k] != isa.RZero {
				prods[k] = lastWriter[srcs[k]]
			}
		}
		rg.prod[slot] = prods
		if di.Inst.HasDest() {
			lastWriter[di.Inst.Rd] = int64(di.Seq)
		}

		if di.Inst.IsCondBranch() {
			p.Branches++
			size := rg.walk(int64(di.Seq), prods, &p)
			p.SliceSizes.Add(size)
		}
	}
	return p, nil
}

// walk visits the backward slice rooted at the branch's producers. It
// returns the branch's full slice size (within the window) and credits
// instructions not previously in any slice toward the membership count.
func (rg *ring) walk(branchSeq int64, roots [2]int64, p *Profile) int {
	rg.epoch++
	stack := make([]int64, 0, 16)
	for _, r := range roots {
		if r >= 0 {
			stack = append(stack, r)
		}
	}
	size := 0
	horizon := branchSeq - int64(rg.n)
	for len(stack) > 0 {
		seq := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seq <= horizon || seq < 0 {
			continue // producer evicted from the window
		}
		slot := int(uint64(seq) % uint64(rg.n))
		if rg.seqs[slot] != uint64(seq) {
			continue // slot recycled
		}
		if rg.visited[slot] == rg.epoch {
			continue // already seen in this walk
		}
		rg.visited[slot] = rg.epoch
		size++
		if !rg.inSlice[slot] {
			rg.inSlice[slot] = true
			p.SliceMembers++
		}
		for _, q := range rg.prod[slot] {
			if q >= 0 {
				stack = append(stack, q)
			}
		}
	}
	return size
}
