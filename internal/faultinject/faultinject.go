// Package faultinject is the test-only fault-injection harness: a global
// registry of named injection points that production code consults at
// carefully chosen spots (the pipeline's commit loop, the experiment
// runner's worker body). Tests arm a point to make it fire — suppressing
// commit to fake a hang, panicking a worker, or failing a run with a
// transient error — and the robustness tests then assert that every
// injected fault surfaces as the right typed error (see internal/simerr)
// with the rest of the campaign unharmed.
//
// When nothing is armed, Fire costs one atomic load, so the hooks are safe
// to leave in hot paths. The registry is process-global: tests that arm
// faults must not run in parallel with each other and should defer Reset.
package faultinject

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Injection point names. The detail string passed to Fire identifies the
// victim (a config name, a workload name) so tests can target one run out
// of a parallel campaign.
const (
	// PipelineHang suppresses the commit stage for the rest of the run once
	// fired (detail: config name). The liveness watchdog must catch it.
	PipelineHang = "pipeline.hang"
	// WorkerPanic panics the experiment worker (detail: workload name).
	WorkerPanic = "worker.panic"
	// WorkerTransient fails the worker with a retryable error (detail:
	// workload name). The runner's backoff/retry loop must absorb it.
	WorkerTransient = "worker.transient"
	// ServicePanic panics a pubsd pool worker mid-cell, above the
	// runner's own recovery (detail: workload name). The service-level
	// recover must fail only the task's cells and keep the pool serving.
	ServicePanic = "service.worker.panic"
	// JournalAppend fails a pubsd job-journal write (detail: record
	// type). The daemon must count the error and keep serving — a lossy
	// journal degrades crash recovery, never availability.
	JournalAppend = "journal.append"
	// CacheEvict drops a freshly stored result from the pubsd result
	// cache (detail: content key), simulating eviction under memory
	// pressure. Later submissions must recompute (or checkpoint-hit),
	// never fail.
	CacheEvict = "service.cache.evict"
)

var (
	armed atomic.Int64 // number of currently armed faults (fast path)

	mu     sync.Mutex
	faults = map[string]*fault{}
)

// fault is one armed injection point.
type fault struct {
	match     string // substring the Fire detail must contain ("" = any)
	remaining int    // fires left; <0 = unlimited
}

// Arm makes the named point fire `times` times (times < 0 = every call)
// whenever the Fire detail contains match (empty match hits everything).
// Re-arming a point replaces its previous state.
func Arm(point, match string, times int) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := faults[point]; !exists {
		armed.Add(1)
	}
	faults[point] = &fault{match: match, remaining: times}
}

// Disarm removes one point.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := faults[point]; exists {
		delete(faults, point)
		armed.Add(-1)
	}
}

// Reset disarms everything (defer this from every arming test).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for p := range faults {
		delete(faults, p)
	}
	armed.Store(0)
}

// Armed reports whether any injection point is currently armed (one atomic
// load). The pipeline's idle skip consults it: fast-forwarding while a
// fault is armed would change how many times the per-cycle Fire hooks run,
// and the robustness tests rely on that cadence.
func Armed() bool { return armed.Load() != 0 }

// Fire reports whether the named point should inject a fault for the given
// detail, consuming one firing when it does. The disarmed fast path is a
// single atomic load.
func Fire(point, detail string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	f, ok := faults[point]
	if !ok || f.remaining == 0 {
		return false
	}
	if f.match != "" && !strings.Contains(detail, f.match) {
		return false
	}
	if f.remaining > 0 {
		f.remaining--
	}
	return true
}
