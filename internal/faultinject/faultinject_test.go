package faultinject

import "testing"

func TestDisarmedNeverFires(t *testing.T) {
	Reset()
	if Fire(PipelineHang, "anything") {
		t.Fatal("disarmed point fired")
	}
}

func TestArmMatchAndCount(t *testing.T) {
	defer Reset()
	Arm(WorkerPanic, "crypto", 2)

	if Fire(WorkerPanic, "regex") {
		t.Error("fired on a non-matching victim")
	}
	if Fire(WorkerTransient, "crypto") {
		t.Error("a different point fired")
	}
	if !Fire(WorkerPanic, "crypto") || !Fire(WorkerPanic, "crypto") {
		t.Error("armed point did not fire its two shots")
	}
	if Fire(WorkerPanic, "crypto") {
		t.Error("fired beyond its count")
	}
}

func TestEmptyMatchHitsEverything(t *testing.T) {
	defer Reset()
	Arm(PipelineHang, "", -1)
	for _, victim := range []string{"base", "pubs", ""} {
		if !Fire(PipelineHang, victim) {
			t.Errorf("unlimited wildcard did not fire for %q", victim)
		}
	}
}

func TestRearmReplacesAndDisarmRemoves(t *testing.T) {
	defer Reset()
	Arm(WorkerTransient, "a", 1)
	Arm(WorkerTransient, "b", 1) // replaces the previous arming
	if Fire(WorkerTransient, "a") {
		t.Error("stale arming survived a re-arm")
	}
	if !Fire(WorkerTransient, "b") {
		t.Error("re-armed point did not fire")
	}
	Arm(WorkerTransient, "b", -1)
	Disarm(WorkerTransient)
	if Fire(WorkerTransient, "b") {
		t.Error("disarmed point fired")
	}
}
