package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestLabelsResolve(t *testing.T) {
	b := New("t")
	b.Label("top")
	b.Addi(isa.R(2), isa.R(2), 1)
	b.Bne(isa.R(2), isa.RZero, "top")
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Imm != 0 {
		t.Errorf("backward branch target = %d, want 0", p.Code[1].Imm)
	}
	if p.Code[2].Imm != 4 {
		t.Errorf("forward jump target = %d, want 4", p.Code[2].Imm)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := New("t")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("want undefined-label error, got %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := New("t")
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("want duplicate-label error, got %v", err)
	}
}

func TestDataSegment(t *testing.T) {
	b := New("t")
	a1 := b.Words(1, 2, 3)
	a2 := b.Floats(1.5)
	a3 := b.Alloc(100)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a1%64 != 0 || a2%64 != 0 || a3%64 != 0 {
		t.Error("allocations must be cache-line aligned")
	}
	if a2 <= a1 || a3 <= a2 {
		t.Error("allocations must not overlap")
	}
	if p.MemSize < int(a3)+100 {
		t.Errorf("MemSize %d does not cover allocations", p.MemSize)
	}
	// Words content round-trips through the data image.
	if p.Data[a1] != 1 || p.Data[a1+8] != 2 {
		t.Error("word data not written little-endian")
	}
}

func TestReserveMem(t *testing.T) {
	b := New("t")
	b.ReserveMem(1 << 20)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.MemSize != 1<<20 {
		t.Errorf("MemSize = %d, want %d", p.MemSize, 1<<20)
	}
	if len(p.Data) != 0 {
		t.Error("ReserveMem must not extend the data image")
	}
}

func TestPseudoInstructions(t *testing.T) {
	b := New("t")
	b.Li(isa.R(2), 42)
	b.Mv(isa.R(3), isa.R(2))
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.Addi || p.Code[0].Rs1 != isa.RZero || p.Code[0].Imm != 42 {
		t.Errorf("Li lowered wrong: %v", p.Code[0])
	}
	if p.Code[1].Op != isa.Addi || p.Code[1].Imm != 0 {
		t.Errorf("Mv lowered wrong: %v", p.Code[1])
	}
	if p.Code[2].Op != isa.Jal || p.Code[2].Rd != isa.RLink || p.Code[2].Imm != 4 {
		t.Errorf("Call lowered wrong: %v", p.Code[2])
	}
	if p.Code[4].Op != isa.Jr || p.Code[4].Rs1 != isa.RLink {
		t.Errorf("Ret lowered wrong: %v", p.Code[4])
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on error")
		}
	}()
	b := New("t")
	b.Jmp("missing")
	b.MustBuild()
}

func TestHere(t *testing.T) {
	b := New("t")
	if b.Here() != 0 {
		t.Error("fresh builder not at 0")
	}
	b.Nop().Nop()
	if b.Here() != 2 {
		t.Errorf("Here = %d, want 2", b.Here())
	}
}

func TestEveryMnemonicEmits(t *testing.T) {
	b := New("all")
	r2, r3, r4 := isa.R(2), isa.R(3), isa.R(4)
	f1, f2, f3 := isa.F(1), isa.F(2), isa.F(3)
	b.Add(r2, r3, r4).Sub(r2, r3, r4).And(r2, r3, r4).Or(r2, r3, r4).Xor(r2, r3, r4)
	b.Shl(r2, r3, r4).Shr(r2, r3, r4).Sra(r2, r3, r4).Slt(r2, r3, r4).Sltu(r2, r3, r4)
	b.Mul(r2, r3, r4).Div(r2, r3, r4).Rem(r2, r3, r4)
	b.Addi(r2, r3, 1).Andi(r2, r3, 1).Ori(r2, r3, 1).Xori(r2, r3, 1)
	b.Shli(r2, r3, 1).Shri(r2, r3, 1).Srai(r2, r3, 1).Slti(r2, r3, 1)
	b.Ld(r2, r3, 0).St(r2, r3, 0).Fld(f1, r3, 0).Fst(f1, r3, 0)
	b.Fadd(f1, f2, f3).Fsub(f1, f2, f3).Fmul(f1, f2, f3).Fdiv(f1, f2, f3)
	b.Fclt(r2, f1, f2).Fcvti(r2, f1).Fcvtf(f1, r2)
	b.Label("l")
	b.Beq(r2, r3, "l").Bne(r2, r3, "l").Blt(r2, r3, "l").Bge(r2, r3, "l")
	b.Jmp("l").Jal(r2, "l").Jr(r2).Nop().Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 41 {
		t.Errorf("emitted %d instructions, want 41", len(p.Code))
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}
