// Package asm provides a label-based program builder for the simulator's
// ISA. Workloads construct programs through the Builder's fluent mnemonic
// methods; Build resolves labels to absolute instruction indices and
// validates the result.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// Builder assembles a program incrementally.
type Builder struct {
	name    string
	code    []isa.Inst
	fixups  []fixup        // label references to resolve at Build
	labels  map[string]int // label -> instruction index
	data    []byte         // initial memory image
	memSize int            // total memory size; grows with allocations
	errs    []error
}

type fixup struct {
	instIdx int
	label   string
}

// New returns an empty Builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
	}
}

// errf records a deferred error reported by Build.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("asm %q: "+format, append([]any{b.name}, args...)...))
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

// Here returns the current instruction index.
func (b *Builder) Here() int { return len(b.code) }

func (b *Builder) emit(in isa.Inst) *Builder {
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitTarget(in isa.Inst, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	b.code = append(b.code, in)
	return b
}

// --- integer register-register ---

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Add, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Sub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.And, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Or, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Xor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Shl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shr emits rd = rs1 >> rs2 (logical).
func (b *Builder) Shr(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Shr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sra emits rd = rs1 >> rs2 (arithmetic).
func (b *Builder) Sra(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Sra, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd = (rs1 < rs2), signed.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Slt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sltu emits rd = (rs1 < rs2), unsigned.
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Sltu, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2 (iMULT/DIV unit).
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Mul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd = rs1 / rs2, signed (non-pipelined).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Div, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Rem emits rd = rs1 % rs2, signed (non-pipelined).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Rem, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// --- integer register-immediate ---

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Addi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Andi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Ori, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Xori, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Shli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shri emits rd = rs1 >> imm (logical).
func (b *Builder) Shri(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Shri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Srai emits rd = rs1 >> imm (arithmetic).
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Srai, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slti emits rd = (rs1 < imm), signed.
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Slti, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li loads an immediate constant (pseudo-instruction: addi rd, r0, imm).
func (b *Builder) Li(rd isa.Reg, imm int64) *Builder {
	return b.Addi(rd, isa.RZero, imm)
}

// Mv copies a register (pseudo-instruction: addi rd, rs, 0).
func (b *Builder) Mv(rd, rs isa.Reg) *Builder { return b.Addi(rd, rs, 0) }

// --- memory ---

// Ld emits rd = mem[base+off] (8 bytes).
func (b *Builder) Ld(rd, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Ld, Rd: rd, Rs1: base, Imm: off})
}

// St emits mem[base+off] = val (8 bytes).
func (b *Builder) St(val, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.St, Rs1: base, Rs2: val, Imm: off})
}

// Fld emits fd = mem[base+off] (float64).
func (b *Builder) Fld(fd, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Fld, Rd: fd, Rs1: base, Imm: off})
}

// Fst emits mem[base+off] = fval (float64).
func (b *Builder) Fst(fval, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Fst, Rs1: base, Rs2: fval, Imm: off})
}

// --- floating point ---

// Fadd emits fd = fs1 + fs2.
func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Fadd, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fsub emits fd = fs1 - fs2.
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Fsub, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fmul emits fd = fs1 * fs2.
func (b *Builder) Fmul(fd, fs1, fs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Fmul, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fdiv emits fd = fs1 / fs2 (non-pipelined).
func (b *Builder) Fdiv(fd, fs1, fs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Fdiv, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fclt emits rd = (fs1 < fs2) into an integer register.
func (b *Builder) Fclt(rd, fs1, fs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Fclt, Rd: rd, Rs1: fs1, Rs2: fs2})
}

// Fcvti emits rd = int64(fs1).
func (b *Builder) Fcvti(rd, fs1 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Fcvti, Rd: rd, Rs1: fs1})
}

// Fcvtf emits fd = float64(rs1).
func (b *Builder) Fcvtf(fd, rs1 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Fcvtf, Rd: fd, Rs1: rs1})
}

// --- control flow ---

// Beq emits a branch to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitTarget(isa.Inst{Op: isa.Beq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne emits a branch to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitTarget(isa.Inst{Op: isa.Bne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt emits a branch to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitTarget(isa.Inst{Op: isa.Blt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge emits a branch to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitTarget(isa.Inst{Op: isa.Bge, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp emits an unconditional direct jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitTarget(isa.Inst{Op: isa.Jmp}, label)
}

// Jal emits a jump-and-link: rd = return index, jump to label.
func (b *Builder) Jal(rd isa.Reg, label string) *Builder {
	return b.emitTarget(isa.Inst{Op: isa.Jal, Rd: rd}, label)
}

// Call emits Jal through the conventional link register.
func (b *Builder) Call(label string) *Builder { return b.Jal(isa.RLink, label) }

// Jr emits an indirect jump to the instruction index in rs.
func (b *Builder) Jr(rs isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Jr, Rs1: rs})
}

// Ret emits Jr through the conventional link register.
func (b *Builder) Ret() *Builder { return b.Jr(isa.RLink) }

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.Inst{Op: isa.Nop}) }

// Halt emits the stop instruction.
func (b *Builder) Halt() *Builder { return b.emit(isa.Inst{Op: isa.Halt}) }

// --- data segment ---

const dataAlign = 64 // cache-line align each allocation

func (b *Builder) align() {
	for len(b.data)%dataAlign != 0 {
		b.data = append(b.data, 0)
	}
}

// Words appends 64-bit words to the data segment (cache-line aligned) and
// returns the byte address of the first word.
func (b *Builder) Words(vals ...uint64) uint64 {
	b.align()
	addr := uint64(len(b.data))
	for _, v := range vals {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		b.data = append(b.data, buf[:]...)
	}
	return addr
}

// Floats appends float64 values to the data segment and returns the byte
// address of the first value.
func (b *Builder) Floats(vals ...float64) uint64 {
	words := make([]uint64, len(vals))
	for i, v := range vals {
		words[i] = f2u(v)
	}
	return b.Words(words...)
}

// Alloc reserves n zeroed bytes (cache-line aligned) in the data segment and
// returns their byte address.
func (b *Builder) Alloc(n int) uint64 {
	b.align()
	addr := uint64(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return addr
}

// ReserveMem ensures the program's memory is at least n bytes, without
// extending the initial data image. Use it for large zeroed working sets.
func (b *Builder) ReserveMem(n int) *Builder {
	if n > b.memSize {
		b.memSize = n
	}
	return b
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm %q: undefined label %q", b.name, f.label)
		}
		b.code[f.instIdx].Imm = int64(idx)
	}
	mem := b.memSize
	if len(b.data) > mem {
		mem = len(b.data)
	}
	if mem == 0 {
		mem = 4096
	}
	p := &isa.Program{
		Name:    b.name,
		Code:    b.code,
		Data:    b.data,
		MemSize: mem,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on error. Workload constructors use it since
// their programs are fixed at compile time.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func f2u(f float64) uint64 { return math.Float64bits(f) }
