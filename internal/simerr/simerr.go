// Package simerr defines the simulator's failure taxonomy: the sentinel
// errors every subsystem wraps so that campaign-level code can classify a
// failure with errors.Is instead of string matching. The taxonomy is the
// contract the fault-injection harness (internal/faultinject) verifies:
// every injected fault must surface as exactly one of these sentinels.
//
// Classification:
//
//	ErrInvalidConfig — a configuration was structurally impossible
//	                   (rejected before any simulation starts).
//	ErrCorruptTrace  — a trace stream failed header or record parsing.
//	ErrDeadlock      — the cycle-level watchdog saw no commit for the
//	                   configured budget (pipeline.DeadlockError carries
//	                   the occupancy dump).
//	ErrTimeout       — a per-simulation context deadline expired.
//	ErrInvariant     — an opt-in structural invariant check failed
//	                   (issue queue, ROB, LSQ, or PUBS table state).
//	ErrPanic         — a worker panicked; the campaign recovered it and
//	                   failed only that run.
//	ErrCircuitOpen   — the service's circuit breaker tripped after
//	                   consecutive simulator panics; detailed simulation
//	                   is refused while cached results still serve.
//	ErrOverload      — admission control shed the work: the job was
//	                   evicted from a full queue (or refused above the
//	                   high-water mark) to protect accepted work.
//
// Transient wraps an error to mark it retryable; the experiment runner
// retries transient failures with exponential backoff and treats every
// other failure as deterministic (retrying would reproduce it).
package simerr

import (
	"errors"
	"fmt"
)

// Sentinel errors. Wrap them with fmt.Errorf("%w: ...", ...) and test with
// errors.Is.
var (
	// ErrInvalidConfig marks a structurally invalid configuration.
	ErrInvalidConfig = errors.New("invalid configuration")
	// ErrCorruptTrace marks a malformed or truncated trace stream.
	ErrCorruptTrace = errors.New("corrupt trace")
	// ErrDeadlock marks a simulation whose commit stage made no progress
	// for the watchdog budget.
	ErrDeadlock = errors.New("simulator deadlock")
	// ErrTimeout marks a simulation cut off by its context deadline.
	ErrTimeout = errors.New("simulation timeout")
	// ErrInvariant marks a failed structural invariant check.
	ErrInvariant = errors.New("invariant violation")
	// ErrPanic marks a recovered worker panic.
	ErrPanic = errors.New("worker panic")
	// ErrCircuitOpen marks a simulation refused because the service's
	// circuit breaker is open (degraded, cached-only mode).
	ErrCircuitOpen = errors.New("circuit breaker open")
	// ErrOverload marks work shed by admission control to protect the
	// work already accepted.
	ErrOverload = errors.New("shed under overload")
)

// transientError marks its wrapped error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return "transient: " + t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err as retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether any error in err's chain was marked
// retryable with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// PanicError is the typed error a recovered worker panic becomes. It wraps
// ErrPanic and preserves the panic value and the worker's stack trace.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

// Error renders the panic value; the stack is available via the field.
func (p *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", p.Value) }

// Unwrap classifies the panic under ErrPanic.
func (p *PanicError) Unwrap() error { return ErrPanic }
