package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// sweepSpec is the sampled, window-major campaign the sweep tests run:
// 12 cells (6 machine variants × 2 workloads) sharing 2 sampling plans,
// sized so the functional pass is real work but the whole grid stays fast
// on one core.
func sweepSpec() service.CampaignSpec {
	return service.CampaignSpec{
		Machines: []service.MachineSpec{
			{Machine: "base"}, {Machine: "pubs"}, {Machine: "age"},
			{Machine: "pubs+age"}, {Machine: "pubs", PriorityEntries: 16},
			{Machine: "pubs", ConfCounterBits: 4},
		},
		Workloads:   []string{"matmul", "chess"},
		Warmup:      2_000,
		Measure:     4_000,
		Windows:     2,
		FastForward: 100_000,
		WindowMajor: true,
	}
}

// startSweepCoordinator is startCoordinator plus the batched sweep seam:
// window-major sampled jobs dispatch one request per (node, workload)
// batch through RemoteSweep instead of per-cell POSTs.
func startSweepCoordinator(t *testing.T, id string, workers []*testNode) (*service.Service, *Coordinator) {
	t.Helper()
	coord := NewCoordinator()
	svc := startService(t, service.Config{
		NodeID:      id,
		Workers:     8,
		Remote:      coord.Remote,
		RemoteSweep: coord.RemoteSweep,
	})
	coord.BindCounters(svc.ClusterCounters())
	peers := make(map[string]string, len(workers))
	for _, w := range workers {
		peers[w.id] = w.srv.URL
	}
	for _, w := range workers {
		coord.AddNode(w.id, w.srv.URL)
		w.wk.SetPeers(peers)
	}
	return svc, coord
}

// TestClusterSweepPlanSharingExactlyOnce is the tentpole's contract: a
// sampled window-major sweep over a 3-node cluster pays exactly one
// functional planning pass per workload fleet-wide — every other node
// adopts the planner's serialized plan — while producing results
// bit-identical to a single-node run, each cell detailed-simulated exactly
// once, and the whole grid dispatched as node batches, not per-cell POSTs.
func TestClusterSweepPlanSharingExactlyOnce(t *testing.T) {
	spec := sweepSpec()
	cells := len(spec.Machines) * len(spec.Workloads)

	single := startService(t, service.Config{NodeID: "single", Workers: 1})
	refJSON := resultsJSON(t, submitAndWait(t, single, spec))

	workers := []*testNode{
		startWorker(t, "w1", service.Config{Workers: 2}, nil),
		startWorker(t, "w2", service.Config{Workers: 2}, nil),
		startWorker(t, "w3", service.Config{Workers: 2}, nil),
	}
	csvc, _ := startSweepCoordinator(t, "coord", workers)
	gotJSON := resultsJSON(t, submitAndWait(t, csvc, spec))

	if gotJSON != refJSON {
		t.Errorf("sweep results differ from single-node run:\ncluster: %s\nsingle:  %s", gotJSON, refJSON)
	}

	var plans, peerPlans, pushes, totalSims uint64
	for _, w := range workers {
		plans += metricValue(t, w.svc, "pubsd_snapshot_plans_total")
		peerPlans += metricValue(t, w.svc, "pubsd_snapshot_peer_plans_total")
		pushes += metricValue(t, w.svc, "pubsd_plan_pushes_total")
		totalSims += sims(t, w.svc)
	}
	if plans != uint64(len(spec.Workloads)) {
		t.Errorf("fleet paid %d functional passes for %d workloads; plan sharing is not exactly-once", plans, len(spec.Workloads))
	}
	if peerPlans == 0 {
		t.Error("no peer plans adopted: every node planned for itself")
	}
	if pushes != plans {
		t.Errorf("%d plan pushes for %d local passes; every fresh plan should replicate to the successor", pushes, plans)
	}
	if totalSims != uint64(cells) {
		t.Errorf("fleet simulated %d cells, want %d", totalSims, cells)
	}
	if got := metricValue(t, csvc, "pubsd_cluster_remote_cells_total"); got != uint64(cells) {
		t.Errorf("coordinator settled %d remote cells, want %d", got, cells)
	}
	t.Logf("fleet: %d plans, %d adopted, %d sims for %d cells", plans, peerPlans, totalSims, cells)
}

// TestClusterSweepResultReplicationFailover is the proactive-replication
// contract: every executed cell is pushed to its ring successor, so when
// the ring owner dies mid-campaign the successor answers all of the dead
// node's completed cells straight from its replica cache — zero
// re-simulations anywhere, results still bit-identical.
func TestClusterSweepResultReplicationFailover(t *testing.T) {
	spec := testSpec()
	cells := len(spec.Machines) * len(spec.Workloads)

	killer := &killableWorker{}
	wrap := func(inner http.Handler) http.Handler {
		killer.inner = inner
		return killer
	}
	w1 := startWorker(t, "w1", service.Config{}, wrap)
	killer.setOnKill(w1.srv.CloseClientConnections)
	w2 := startWorker(t, "w2", service.Config{}, nil)
	csvc, _ := startCoordinator(t, "coord", []*testNode{w1, w2})

	firstJSON := resultsJSON(t, submitAndWait(t, csvc, spec))
	w1Sims, w2Sims := sims(t, w1.svc), sims(t, w2.svc)
	if w1Sims+w2Sims != uint64(cells) {
		t.Fatalf("first campaign simulated %d cells, want %d", w1Sims+w2Sims, cells)
	}
	if w1Sims == 0 {
		t.Fatal("ring put no cells on w1; the failover would be vacuous")
	}

	// Replication is asynchronous; wait until both nodes report every
	// executed cell successfully pushed to their successor (with two nodes,
	// each is the other's successor, so both end up holding all cells).
	deadline := time.Now().Add(30 * time.Second)
	for {
		pushed := metricValue(t, w1.svc, "pubsd_cluster_result_pushes_total") +
			metricValue(t, w2.svc, "pubsd_cluster_result_pushes_total")
		if pushed >= uint64(cells) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication stalled: %d of %d results pushed", pushed, cells)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the owner. A fresh, cold coordinator reruns the campaign: its
	// first dispatch to w1 dies mid-flight, w1 leaves the ring, and w2 —
	// w1's successor — must settle every cell w1 completed from the
	// replicas w1 pushed, without a single new simulation.
	killer.kill()
	c2, _ := startCoordinator(t, "coord2", []*testNode{w1, w2})
	rerunJSON := resultsJSON(t, submitAndWait(t, c2, spec))

	if rerunJSON != firstJSON {
		t.Error("post-failover rerun is not bit-identical")
	}
	if got := sims(t, w2.svc); got != w2Sims {
		t.Errorf("successor re-simulated: %d sims, had %d before the kill", got, w2Sims)
	}
	if got := sims(t, w1.svc); got != w1Sims {
		t.Errorf("dead node's sims moved: %d, had %d", got, w1Sims)
	}
	if got := metricValue(t, c2, "pubsd_cluster_node_failures_total"); got == 0 {
		t.Error("coordinator never noticed the dead node")
	}
}

// BenchmarkDispatch measures the per-dispatch HTTP overhead the cluster
// pays per remote cell, comparing the shared tuned client (keep-alives, a
// fleet-sized idle pool) against a naive per-request client — the
// difference is a new TCP connection per cell.
func BenchmarkDispatch(b *testing.B) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	body := []byte(`{"key":"bench"}`)

	dispatch := func(b *testing.B, hc *http.Client) {
		b.Helper()
		req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, srv.URL, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		var msg struct{ OK bool }
		if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}

	b.Run("shared", func(b *testing.B) {
		hc := SharedClient()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dispatch(b, hc)
		}
	})
	b.Run("per-request", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hc := &http.Client{Transport: &http.Transport{}}
			dispatch(b, hc)
			hc.CloseIdleConnections()
		}
	})
}
