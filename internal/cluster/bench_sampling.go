package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
)

// BENCH_9 measures what cluster-shared sampling plans buy: the wall-clock
// time for a 3-worker fleet to finish a window-major sampled campaign
// (machines × workloads, every cell sharing its workload's plan) with plan
// sharing plus batched sweep dispatch ON, versus the same fleet with the
// feature OFF (per-cell dispatch, every node paying its own functional
// fast-forward pass per workload). The resource under test is the
// functional pass itself — the dominant cost of a sampled campaign — so
// the scenarios are fast-forward-heavy. Both topologies must produce
// byte-identical CellResults per content address; the report records the
// fleet-wide functional pass count so the exactly-once contract is
// checkable from the artifact.

// SamplingBenchConfig sizes the BENCH_9 run.
type SamplingBenchConfig struct {
	// Workloads of the campaign grid (default matmul, chess, goplay,
	// pathfind — one sampling plan each).
	Workloads []string
	// Machines is the machine-variant count of the grid (default 6,
	// drawn from a fixed variant ring).
	Machines int
	// Log receives progress lines (nil = discard).
	Log io.Writer
}

func (c SamplingBenchConfig) normalized() SamplingBenchConfig {
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"matmul", "chess", "goplay", "pathfind"}
	}
	if c.Machines <= 0 {
		c.Machines = 6
	}
	if c.Machines > len(samplingBenchMachines) {
		c.Machines = len(samplingBenchMachines)
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// samplingBenchMachines is the fixed variant ring the grid draws from:
// distinct resolved names, so every cell is a distinct content address.
var samplingBenchMachines = []service.MachineSpec{
	{Machine: "base"},
	{Machine: "pubs"},
	{Machine: "age"},
	{Machine: "pubs+age"},
	{Machine: "pubs", PriorityEntries: 16},
	{Machine: "pubs", ConfCounterBits: 4},
}

// SamplingTopologyStats is one (scenario, sharing mode) measurement.
type SamplingTopologyStats struct {
	PlanSharing bool    `json:"plan_sharing"`
	WallMS      float64 `json:"wall_ms"`
	Cells       int     `json:"cells"`

	// Fleet-wide counters, summed across the 3 workers. Plans counts
	// local functional passes only (pubsd_snapshot_plans_total), so with
	// sharing ON it should equal the workload count — one pass per plan
	// key fleet-wide.
	Plans        uint64 `json:"functional_plans"`
	PeerPlans    uint64 `json:"peer_plans_adopted"`
	PlanPushes   uint64 `json:"plan_pushes"`
	ResultPushes uint64 `json:"result_pushes"`
	PeerHits     uint64 `json:"peer_cache_hits"`
	Sims         uint64 `json:"sims_executed"`

	// Coordinator-side dispatch counters.
	RemoteCells uint64 `json:"remote_cells"`
	Steals      uint64 `json:"steals"`
}

// SamplingScenario is one window geometry measured in both modes.
type SamplingScenario struct {
	Name        string `json:"name"`
	Windows     int    `json:"windows"`
	Warmup      uint64 `json:"warmup"`
	Measure     uint64 `json:"measure"`
	FastForward uint64 `json:"fast_forward"`
	Workloads   int    `json:"workloads"`
	Machines    int    `json:"machines"`

	Off SamplingTopologyStats `json:"sharing_off"`
	On  SamplingTopologyStats `json:"sharing_on"`

	// Speedup is OFF wall time over ON wall time.
	Speedup      float64 `json:"speedup"`
	BitIdentical bool    `json:"bit_identical"`
}

// SamplingBenchReport is the BENCH_9.json document.
type SamplingBenchReport struct {
	Schema    string    `json:"schema"` // "pubsd-cluster-sampling/1"
	Timestamp time.Time `json:"timestamp"`
	Workers   int       `json:"workers"`

	Scenarios      []SamplingScenario `json:"scenarios"`
	GeomeanSpeedup float64            `json:"geomean_speedup"`
	BitIdentical   bool               `json:"bit_identical"`
}

// startSamplingWorker boots one in-process worker shard sized so admission
// never interferes: the functional pass, not queue depth, is what BENCH_9
// measures.
func startSamplingWorker(id string) (*benchNode, error) {
	svc, err := service.New(service.Config{
		NodeID:        id,
		Workers:       2,
		QueueDepth:    64,
		MaxActiveJobs: 16,
	})
	if err != nil {
		return nil, err
	}
	wk := NewWorker(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: wk.Handler(svc.Handler())}
	go func() { _ = srv.Serve(ln) }()
	return &benchNode{svc: svc, wk: wk, srv: srv, url: "http://" + ln.Addr().String()}, nil
}

// runSamplingTopology boots a 3-worker fleet plus a coordinator, submits
// the campaign once, and returns the wall time, the fleet counters, and
// every cell's marshaled result keyed by content address — the
// bit-identity evidence.
func runSamplingTopology(ctx context.Context, sharing bool, spec service.CampaignSpec) (SamplingTopologyStats, map[string]string, error) {
	stats := SamplingTopologyStats{PlanSharing: sharing}
	const n = 3
	workers := make([]*benchNode, 0, n)
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for _, w := range workers {
			_ = w.svc.Shutdown(sctx)
			_ = w.srv.Shutdown(sctx)
		}
	}
	defer shutdown()

	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		w, err := startSamplingWorker(fmt.Sprintf("sbench-w%d", i+1))
		if err != nil {
			return stats, nil, err
		}
		if !sharing {
			w.wk.DisableReplication()
		}
		workers = append(workers, w)
		peers[w.svc.NodeID()] = w.url
	}
	coord := NewCoordinator()
	ccfg := service.Config{
		NodeID:        "sbench-coord",
		Workers:       8,
		QueueDepth:    16,
		MaxActiveJobs: 8,
		Remote:        coord.Remote,
	}
	if sharing {
		ccfg.RemoteSweep = coord.RemoteSweep
	}
	csvc, err := service.New(ccfg)
	if err != nil {
		return stats, nil, err
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = csvc.Shutdown(sctx)
	}()
	coord.BindCounters(csvc.ClusterCounters())
	for _, w := range workers {
		coord.AddNode(w.svc.NodeID(), w.url)
		w.wk.SetPeers(peers)
	}

	t0 := time.Now()
	job, err := csvc.Submit(spec)
	if err != nil {
		return stats, nil, err
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		return stats, nil, ctx.Err()
	}
	stats.WallMS = float64(time.Since(t0).Microseconds()) / 1e3

	st := job.Status()
	if st.State != service.JobDone {
		return stats, nil, fmt.Errorf("sampling bench campaign failed: %v", st.Errors)
	}
	stats.Cells = st.TotalCells
	results := make(map[string]string, len(st.Results))
	for _, res := range st.Results {
		data, err := json.Marshal(res)
		if err != nil {
			return stats, nil, err
		}
		results[res.Key] = string(data)
	}

	for _, w := range workers {
		m := parseMetricsText(w.svc.MetricsText())
		stats.Plans += m["pubsd_snapshot_plans_total"]
		stats.PeerPlans += m["pubsd_snapshot_peer_plans_total"]
		stats.PlanPushes += m["pubsd_plan_pushes_total"]
		stats.ResultPushes += m["pubsd_cluster_result_pushes_total"]
		stats.PeerHits += m["pubsd_cluster_peer_cache_hits_total"]
		stats.Sims += m["pubsd_sims_executed_total"]
	}
	cm := parseMetricsText(csvc.MetricsText())
	stats.RemoteCells = cm["pubsd_cluster_remote_cells_total"]
	stats.Steals = cm["pubsd_cluster_steals_total"]
	return stats, results, nil
}

// identicalResults reports whether two topology runs produced the same key
// set with byte-identical marshaled results.
func identicalResults(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !bytes.Equal([]byte(v), []byte(w)) {
			return false
		}
	}
	return true
}

// RunSamplingBench measures both modes across the scenario set. Gating
// (speedup floor, baseline regression, bit-identity) is the caller's job —
// cmd/pubsd clusterbench -sampling — like the other bench harnesses.
func RunSamplingBench(ctx context.Context, cfg SamplingBenchConfig) (SamplingBenchReport, error) {
	cfg = cfg.normalized()
	rep := SamplingBenchReport{
		Schema: "pubsd-cluster-sampling/1", Timestamp: time.Now(),
		Workers: 3, BitIdentical: true,
	}
	machines := samplingBenchMachines[:cfg.Machines]
	scenarios := []SamplingScenario{
		// Fast-forward dominates: the plan is nearly the whole campaign, so
		// sharing it approaches a 3x cut in fleet functional work.
		{Name: "plan-heavy", Windows: 3, Warmup: 1_000, Measure: 3_000, FastForward: 6_000_000},
		// Replay and planning comparable: sharing still wins, by less.
		{Name: "balanced", Windows: 4, Warmup: 2_000, Measure: 6_000, FastForward: 2_000_000},
	}
	geo := 1.0
	for _, sc := range scenarios {
		sc.Workloads = len(cfg.Workloads)
		sc.Machines = len(machines)
		spec := service.CampaignSpec{
			Machines:    machines,
			Workloads:   cfg.Workloads,
			Warmup:      sc.Warmup,
			Measure:     sc.Measure,
			Windows:     sc.Windows,
			FastForward: sc.FastForward,
			WindowMajor: true,
		}
		fmt.Fprintf(cfg.Log, "pubsd: sampling bench %s: sharing off...\n", sc.Name)
		off, offRes, err := runSamplingTopology(ctx, false, spec)
		if err != nil {
			return rep, fmt.Errorf("sampling bench %s (sharing off): %w", sc.Name, err)
		}
		fmt.Fprintf(cfg.Log, "pubsd: sampling bench %s: sharing on...\n", sc.Name)
		on, onRes, err := runSamplingTopology(ctx, true, spec)
		if err != nil {
			return rep, fmt.Errorf("sampling bench %s (sharing on): %w", sc.Name, err)
		}
		sc.Off, sc.On = off, on
		sc.BitIdentical = identicalResults(offRes, onRes)
		if !sc.BitIdentical {
			rep.BitIdentical = false
		}
		if on.WallMS > 0 {
			sc.Speedup = off.WallMS / on.WallMS
		}
		geo *= sc.Speedup
		rep.Scenarios = append(rep.Scenarios, sc)
		fmt.Fprintf(cfg.Log, "pubsd: sampling bench %s: %.0fms -> %.0fms (%.2fx), fleet plans %d -> %d, peer plans %d, identical=%v\n",
			sc.Name, off.WallMS, on.WallMS, sc.Speedup, off.Plans, on.Plans, on.PeerPlans, sc.BitIdentical)
	}
	rep.GeomeanSpeedup = math.Pow(geo, 1/float64(len(rep.Scenarios)))
	return rep, nil
}
