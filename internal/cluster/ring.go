// Package cluster turns pubsd into a sharded multi-node campaign fabric:
// a coordinator daemon shards campaign cells across N worker daemons by
// their existing content address (experiments.KeyHash) on a consistent-hash
// ring, dispatches them over an HTTP/JSON worker protocol that reuses the
// service.CellResult schema, steals work from saturated shards onto idle
// peers, and re-shards the cells of a node that dies mid-campaign. Caching
// is two-tier: every node answers from its own result cache, memo, and
// checkpoint store first, then fetches by hash from its peers — so a cell
// submitted by any client is simulated exactly once cluster-wide, and a
// ring change (join, failover) moves results instead of recomputing them.
// Bit-identity is the contract throughout: a campaign run against a
// cluster returns CellResults byte-identical to a single-node run.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// vnodesPerNode is how many virtual points each node contributes to the
// ring. A node's share of the key space has relative standard deviation
// ~1/sqrt(vnodes); 4096 points keep it ~1.5%, tight enough that the
// chi-squared uniformity gate (TestRingUniformDistribution) holds with the
// multinomial critical values, while ring rebuilds stay trivially cheap
// (a few thousand points per fleet).
const vnodesPerNode = 4096

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// physical node.
type ringPoint struct {
	pos  uint64
	node string
}

// Ring is a consistent-hash ring mapping content addresses (hex SHA-256
// keys, the experiments.KeyHash discipline) to node IDs. Ownership depends
// only on the member set — never on insertion order — so every coordinator
// that knows the same peers routes every key identically. Ring is not
// safe for concurrent use; the Coordinator serializes access.
type Ring struct {
	points []ringPoint // sorted by pos
	nodes  map[string]struct{}
}

// NewRing builds an empty ring.
func NewRing() *Ring {
	return &Ring{nodes: make(map[string]struct{})}
}

// nodePoint hashes one virtual node onto the ring. SHA-256 keeps the
// placement discipline identical to the content addresses being routed.
func nodePoint(node string, replica int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", node, replica)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node (idempotent). Adding re-sorts the point list, so the
// resulting ring is identical no matter the order nodes arrived in.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < vnodesPerNode; i++ {
		r.points = append(r.points, ringPoint{pos: nodePoint(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// Remove deletes a node and its virtual points (idempotent). Only keys the
// departed node owned move — each to the next point clockwise — which is
// what makes failover re-sharding cheap.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	_, ok := r.nodes[node]
	return ok
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the member IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// keyPos maps a content address onto the ring. Keys are already hex
// SHA-256 (experiments.KeyHash), so the first 8 bytes are uniform; a
// malformed key is re-hashed rather than rejected, keeping Owner total.
func keyPos(key string) uint64 {
	if len(key) >= 16 {
		if b, err := hex.DecodeString(key[:16]); err == nil {
			return binary.BigEndian.Uint64(b)
		}
	}
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node owning a content address: the first virtual point
// clockwise from the key's position. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	pos := keyPos(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node, true
}
