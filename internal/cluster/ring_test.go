package cluster

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
)

// testKeys returns n deterministic content addresses with the same hashing
// discipline production keys use (hex SHA-256 of the memo key).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = experiments.KeyHash(fmt.Sprintf("synthetic-memo-key-%d", i))
	}
	return keys
}

func ringOf(nodes ...string) *Ring {
	r := NewRing()
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// TestRingUniformDistribution checks that keys spread evenly: the
// chi-squared statistic of the per-node counts against the uniform
// expectation stays under the 99.9% critical value for N-1 degrees of
// freedom. Keys and node IDs are fixed, so the statistic is deterministic —
// the bound guards the hashing discipline, not luck.
func TestRingUniformDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("w%d", i+1)
		}
		r := ringOf(nodes...)
		const keyCount = 5000
		counts := make(map[string]int, n)
		for _, k := range testKeys(keyCount) {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatalf("n=%d: Owner returned !ok on a populated ring", n)
			}
			counts[owner]++
		}
		expected := float64(keyCount) / float64(n)
		chi2 := 0.0
		for _, node := range nodes {
			d := float64(counts[node]) - expected
			chi2 += d * d / expected
		}
		// 99.9% chi-squared critical values for df = n-1.
		critical := map[int]float64{2: 10.83, 3: 13.82, 5: 18.47, 8: 24.32}[n]
		if chi2 > critical {
			t.Errorf("n=%d: chi2 = %.2f exceeds %.2f (counts %v)", n, chi2, critical, counts)
		}
	}
}

// TestRingMinimalRemapOnJoin checks the consistent-hashing contract: when
// the N+1th node joins, fewer than 2/(N+1) of keys change owner (the
// expectation is 1/(N+1)), and every key that moved landed on the new node.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	keys := testKeys(10000)
	for _, n := range []int{2, 3, 5} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("w%d", i+1)
		}
		r := ringOf(nodes...)
		before := make([]string, len(keys))
		for i, k := range keys {
			before[i], _ = r.Owner(k)
		}
		joined := fmt.Sprintf("w%d", n+1)
		r.Add(joined)
		moved := 0
		for i, k := range keys {
			after, _ := r.Owner(k)
			if after != before[i] {
				moved++
				if after != joined {
					t.Fatalf("n=%d: key %s moved %s -> %s, not to the joining node", n, k[:12], before[i], after)
				}
			}
		}
		bound := 2 * len(keys) / (n + 1)
		if moved >= bound {
			t.Errorf("n=%d: %d of %d keys moved on join, bound %d", n, moved, len(keys), bound)
		}
		if moved == 0 {
			t.Errorf("n=%d: no keys moved to the joining node", n)
		}
	}
}

// TestRingMinimalRemapOnLeave checks the inverse: removing one of N nodes
// moves only the keys it owned, each to a surviving node.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	keys := testKeys(10000)
	r := ringOf("w1", "w2", "w3", "w4")
	before := make([]string, len(keys))
	owned := 0
	for i, k := range keys {
		before[i], _ = r.Owner(k)
		if before[i] == "w2" {
			owned++
		}
	}
	r.Remove("w2")
	moved := 0
	for i, k := range keys {
		after, _ := r.Owner(k)
		if after == "w2" {
			t.Fatalf("key %s still owned by removed node", k[:12])
		}
		if after != before[i] {
			if before[i] != "w2" {
				t.Fatalf("key %s moved %s -> %s though its owner survived", k[:12], before[i], after)
			}
			moved++
		}
	}
	if moved != owned {
		t.Errorf("%d keys moved but the removed node owned %d", moved, owned)
	}
}

// TestRingDeterministicOwnership checks that ownership depends only on the
// member set: any insertion order, and any add/remove history converging on
// the same members, routes every key identically.
func TestRingDeterministicOwnership(t *testing.T) {
	keys := testKeys(2000)
	a := ringOf("w1", "w2", "w3")
	b := ringOf("w3", "w1", "w2")
	c := ringOf("w4", "w2", "w3", "w1")
	c.Remove("w4")
	for _, k := range keys {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("key %s owners diverge: %s / %s / %s", k[:12], oa, ob, oc)
		}
	}
	if got, want := fmt.Sprint(a.Nodes()), fmt.Sprint(b.Nodes()); got != want {
		t.Errorf("node lists diverge: %s vs %s", got, want)
	}
}

// TestRingEmptyAndIdempotent covers the degenerate paths: an empty ring
// owns nothing, double-add and double-remove are no-ops.
func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing()
	if _, ok := r.Owner(testKeys(1)[0]); ok {
		t.Error("empty ring claimed an owner")
	}
	r.Add("w1")
	r.Add("w1")
	if got := len(r.points); got != vnodesPerNode {
		t.Errorf("double add produced %d points, want %d", got, vnodesPerNode)
	}
	r.Remove("w9")
	r.Remove("w1")
	r.Remove("w1")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Errorf("ring not empty after removals: %d nodes, %d points", r.Len(), len(r.points))
	}
}
