package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

// Worker adapts one pubsd daemon into a cluster shard: it serves the
// cluster wire protocol in front of the daemon's own Submit path, so a
// cell dispatched by the coordinator flows through exactly the admission
// control, journal, runner, and cache machinery a directly submitted
// campaign would. Its answer path is the two-tier cache: the node-local
// store first, a peer fetch by content address second, and only then a
// fresh execution.
type Worker struct {
	svc *service.Service
	hc  *http.Client

	mu         sync.Mutex
	peers      map[string]string // node ID -> base URL, self excluded
	peersEpoch uint64            // epoch of the newest applied membership snapshot
	replicate  bool              // push completed plans/results to the ring successor
	// hints maps a sampling-plan key to the node the coordinator designated
	// to compute it, refcounted across the concurrent sweep batches that
	// share the key. A hint for self doubles as the "expecting" signal the
	// plan endpoint's long-poll consults.
	hints map[string]*planHint
}

type planHint struct {
	planner string
	refs    int
}

// NewWorker wraps a running daemon: it serves the cluster endpoints and
// installs the daemon's plan-exchange seams, so the sampled path answers
// plan misses from the fleet (replica cache, then peers) before paying a
// functional pass, and replicates every local pass to the ring successor.
func NewWorker(svc *service.Service) *Worker {
	wk := &Worker{
		svc:       svc,
		hc:        SharedClient(),
		peers:     make(map[string]string),
		replicate: true,
		hints:     make(map[string]*planHint),
	}
	svc.SetPlanExchange(wk.planFetch, wk.planPush)
	return wk
}

// DisableReplication turns off everything proactive and shared about the
// worker's sampling-plan handling: the plan-exchange seams are removed
// (every plan miss pays a local functional pass) and completed plans and
// results are no longer pushed to the ring successor. The benchmark's
// plan-sharing-off topology and A/B experiments use it; the serving
// endpoints stay up so peers can still pull.
func (wk *Worker) DisableReplication() {
	wk.svc.SetPlanExchange(nil, nil)
	wk.mu.Lock()
	wk.replicate = false
	wk.mu.Unlock()
}

// SetPeers replaces the worker's member map unconditionally (static
// configuration, tests). Coordinator traffic goes through ApplyPeers, which
// carries the membership epoch and discards stale snapshots.
func (wk *Worker) SetPeers(peers map[string]string) {
	wk.ApplyPeers(peers, 0)
}

// ApplyPeers applies a membership snapshot stamped with the coordinator's
// epoch, refusing to go backwards: the coordinator broadcasts every
// membership change asynchronously, so two rapid joins can deliver an older
// map after a newer one, and last-write-wins would strand this worker with
// a stale view — unable to resolve the very planner a sweep batch names.
// Epoch 0 is unversioned and always applies. The worker's own entry is
// dropped: fetching from yourself is tier 1, not tier 2. Reports whether
// the snapshot was applied.
func (wk *Worker) ApplyPeers(peers map[string]string, epoch uint64) bool {
	self := wk.svc.NodeID()
	next := make(map[string]string, len(peers))
	for node, url := range peers {
		if node != self && url != "" {
			next[node] = strings.TrimRight(url, "/")
		}
	}
	wk.mu.Lock()
	if epoch != 0 && epoch <= wk.peersEpoch {
		wk.mu.Unlock()
		return false
	}
	if epoch != 0 {
		wk.peersEpoch = epoch
	}
	wk.peers = next
	wk.mu.Unlock()
	wk.svc.ClusterCounters().SetPeers(len(next))
	return true
}

// peerList snapshots the peer URLs in deterministic (node ID) order.
func (wk *Worker) peerList() []string {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	nodes := make([]string, 0, len(wk.peers))
	for n := range wk.peers {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = wk.peers[n]
	}
	return urls
}

// peerURL resolves a node ID to its base URL.
func (wk *Worker) peerURL(node string) (string, bool) {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	url, ok := wk.peers[node]
	return url, ok
}

// successorURL returns the ring successor's base URL: the next node ID
// clockwise from self in sorted member order — the same successor that
// inherits this node's keys if it dies, which is exactly why completed
// plans and results replicate there.
func (wk *Worker) successorURL() (string, bool) {
	self := wk.svc.NodeID()
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if len(wk.peers) == 0 {
		return "", false
	}
	ids := make([]string, 0, len(wk.peers)+1)
	for n := range wk.peers {
		ids = append(ids, n)
	}
	ids = append(ids, self)
	sort.Strings(ids)
	for i, n := range ids {
		if n == self {
			succ := ids[(i+1)%len(ids)]
			if succ == self {
				return "", false
			}
			return wk.peers[succ], true
		}
	}
	return "", false
}

// addPlanHint registers the designated planner for a plan key while a
// sweep batch runs; dropPlanHint releases it.
func (wk *Worker) addPlanHint(key, planner string) {
	if key == "" || planner == "" {
		return
	}
	wk.mu.Lock()
	if h, ok := wk.hints[key]; ok {
		h.refs++
	} else {
		wk.hints[key] = &planHint{planner: planner, refs: 1}
	}
	wk.mu.Unlock()
}

func (wk *Worker) dropPlanHint(key, planner string) {
	if key == "" || planner == "" {
		return
	}
	wk.mu.Lock()
	if h, ok := wk.hints[key]; ok {
		if h.refs--; h.refs <= 0 {
			delete(wk.hints, key)
		}
	}
	wk.mu.Unlock()
}

// plannerFor returns the designated planner for a plan key, if a sweep
// batch carrying one is in flight.
func (wk *Worker) plannerFor(key string) (string, bool) {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	h, ok := wk.hints[key]
	if !ok {
		return "", false
	}
	return h.planner, true
}

// expectingPlan reports whether this node is the designated planner for
// key with the batch still in flight — the signal that makes the plan
// endpoint's ?wait=1 long-poll park instead of answering 404.
func (wk *Worker) expectingPlan(key string) bool {
	planner, ok := wk.plannerFor(key)
	return ok && planner == wk.svc.NodeID()
}

// planFetch is the daemon's plan-fetch seam (tier 1 of the plan answer
// path; the replica cache is tier 0 and a local functional pass the
// fallback). When a sweep batch designated a planner, a non-planner node
// long-polls it — the planner is mid-pass by construction, so waiting
// beats burning a redundant pass — retrying briefly to absorb the window
// where concurrent batches are still being delivered. Designated or not,
// it ends with one cache-only sweep of the peers.
func (wk *Worker) planFetch(ctx context.Context, key string) ([]byte, bool) {
	self := wk.svc.NodeID()
	if planner, ok := wk.plannerFor(key); ok {
		if planner == self {
			return nil, false // our pass to pay
		}
		if base, ok := wk.peerURL(planner); ok {
			deadline := time.Now().Add(2 * time.Second)
			for {
				if data, ok := fetchPlan(ctx, wk.hc, base, key, true); ok {
					return data, true
				}
				// A prompt 404 means the planner is alive but not (yet)
				// expecting to plan: its batch may still be in flight to it.
				// Retry inside a short window, then fall back.
				if ctx.Err() != nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
		}
	}
	for _, base := range wk.peerList() {
		if data, ok := fetchPlan(ctx, wk.hc, base, key, false); ok {
			return data, true
		}
	}
	return nil, false
}

// planPush is the daemon's plan-replication seam: fire-and-forget to the
// ring successor. The service already runs it off the planning goroutine.
func (wk *Worker) planPush(key string, data []byte) {
	wk.mu.Lock()
	replicate := wk.replicate
	wk.mu.Unlock()
	if !replicate {
		return
	}
	if base, ok := wk.successorURL(); ok {
		_ = pushPlan(context.Background(), wk.hc, base, key, data)
	}
}

// replicateResult proactively copies a cell this node executed to its ring
// successor, so losing this node loses zero completed work. Asynchronous
// and best-effort — the pull path (peer fetch by content address) remains
// the safety net.
func (wk *Worker) replicateResult(res service.CellResult) {
	wk.mu.Lock()
	replicate := wk.replicate
	wk.mu.Unlock()
	if !replicate || res.Key == "" {
		return
	}
	base, ok := wk.successorURL()
	if !ok {
		return
	}
	go func() {
		if pushResult(context.Background(), wk.hc, base, res) == nil {
			wk.svc.ClusterCounters().AddResultPush()
		}
	}()
}

// Handler serves the worker's cluster endpoints, falling through to next
// (the daemon's public API) for every other path.
func (wk *Worker) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/execute", wk.handleExecute)
	mux.HandleFunc("POST /v1/cluster/sweep", wk.handleSweep)
	mux.HandleFunc("GET /v1/cluster/result/{key}", wk.handleResult)
	mux.HandleFunc("POST /v1/cluster/result", wk.handleResultPush)
	mux.HandleFunc("GET /v1/cluster/plan/{key}", wk.handlePlanGet)
	mux.HandleFunc("POST /v1/cluster/plan/{key}", wk.handlePlanPut)
	mux.HandleFunc("POST /v1/cluster/peers", wk.handlePeers)
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}

// handleExecute runs one cell through the two-tier cache and then the
// daemon's own Submit path. Admission refusals surface as 429/503 with the
// daemon's Retry-After hint — the coordinator's steal trigger. Simulation
// failures return 200 with Source "error": the cell failed, the node is
// healthy.
func (wk *Worker) handleExecute(w http.ResponseWriter, r *http.Request) {
	var rc service.RemoteCell
	if err := decodeBody(w, r, &rc); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rc.Key == "" {
		writeError(w, http.StatusBadRequest, errors.New("cluster: execute: empty key"))
		return
	}
	// Tier 1: this node already has it (its own earlier execution, an
	// adopted peer result, or a duplicate in a concurrent burst).
	if res, ok := wk.svc.Result(rc.Key); ok {
		writeJSON(w, http.StatusOK, executeResponse{Result: res, Source: "cache"})
		return
	}
	// Tier 2: a peer has it — after a ring change (join, failover) the old
	// owner still holds the result, and moving it is cheaper than ever
	// re-simulating. Adopt so this node answers tier-1 next time.
	for _, base := range wk.peerList() {
		if res, ok := fetchResult(r.Context(), wk.hc, base, rc.Key); ok {
			wk.svc.AdoptResult(res)
			wk.svc.ClusterCounters().AddPeerHit()
			writeJSON(w, http.StatusOK, executeResponse{Result: res, Source: "peer"})
			return
		}
	}
	// Tier 3: execute, via the full single-node pipeline. The single-cell
	// spec carries resolved windows, so the worker derives the same content
	// address the coordinator sharded by.
	job, err := wk.svc.Submit(rc.Spec)
	if err != nil {
		var ra *service.RetryAfterError
		if errors.As(err, &ra) {
			w.Header().Set("Retry-After", strconv.Itoa(int(ra.After.Round(time.Second).Seconds())))
		}
		switch {
		case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrRateLimited):
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, service.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The coordinator gave up (or died). The job keeps running: its
		// result lands in the local cache, so the inevitable re-dispatch —
		// here or on a peer that fetches from here — is a cache hit, not a
		// second simulation.
		return
	}
	st := job.Status()
	if st.State == service.JobFailed {
		writeJSON(w, http.StatusOK, executeResponse{Source: "error", Error: strings.Join(st.Errors, "; ")})
		return
	}
	for _, res := range st.Results {
		if res.Key == rc.Key {
			wk.replicateResult(res)
			writeJSON(w, http.StatusOK, executeResponse{Result: res, Source: "executed"})
			return
		}
	}
	// The worker resolved the spec to a different content address than the
	// coordinator — a protocol bug worth failing loudly, not silently
	// serving the wrong cell.
	keys := make([]string, 0, len(st.Results))
	for _, res := range st.Results {
		keys = append(keys, res.Key)
	}
	writeJSON(w, http.StatusOK, executeResponse{
		Source: "error",
		Error:  fmt.Sprintf("cluster: key mismatch: coordinator asked for %s, worker computed %v", rc.Key, keys),
	})
}

// handleSweep runs one workload's machine batch: every cell the coordinator
// still needs from this node, answered as a stream of NDJSON sweepLines so
// settled cells reach the coordinator the moment they finish. The answer
// path per cell is the same two-tier cache as handleExecute; the remainder
// is merged into ONE window-major submission, so the whole batch shares a
// single sampling plan and each workload window replays across every
// machine while its trace is hot. The request's planner designation is
// registered first — before any tier check — because it is what the plan
// endpoint's long-poll and the plan-fetch seam consult to keep the fleet at
// exactly one functional pass per plan key.
func (wk *Worker) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("cluster: sweep: no cells"))
		return
	}
	wk.addPlanHint(req.PlanKey, req.Planner)
	defer wk.dropPlanHint(req.PlanKey, req.Planner)

	var answered []sweepLine
	var pending []service.RemoteCell
	for _, rc := range req.Cells {
		if rc.Key == "" || len(rc.Spec.Machines) != 1 || len(rc.Spec.Workloads) != 1 {
			writeError(w, http.StatusBadRequest, errors.New("cluster: sweep: malformed cell"))
			return
		}
		// Tier 1: already resident here.
		if res, ok := wk.svc.Result(rc.Key); ok {
			answered = append(answered, sweepLine{Key: rc.Key, Result: res, Source: "cache"})
			continue
		}
		// Tier 2: a peer holds it (ring churn, an earlier owner's work).
		hit := false
		for _, base := range wk.peerList() {
			if res, ok := fetchResult(r.Context(), wk.hc, base, rc.Key); ok {
				wk.svc.AdoptResult(res)
				wk.svc.ClusterCounters().AddPeerHit()
				answered = append(answered, sweepLine{Key: rc.Key, Result: res, Source: "peer"})
				hit = true
				break
			}
		}
		if !hit {
			pending = append(pending, rc)
		}
	}

	// Prefetch the sweep's plan before submitting: a non-planner node parks
	// HERE, on the handler goroutine, not inside a service worker slot — so
	// waiting for the planner can never starve this node's own planning (or
	// any other job) of execution capacity. By the time the merged job runs,
	// the plan sits in the replica cache and the runner's plan source
	// answers instantly.
	if len(pending) > 0 && req.PlanKey != "" && req.Planner != "" && req.Planner != wk.svc.NodeID() {
		wk.mu.Lock()
		share := wk.replicate
		wk.mu.Unlock()
		if share && !wk.svc.HasPlan(req.PlanKey) {
			if data, ok := wk.planFetch(r.Context(), req.PlanKey); ok {
				_ = wk.svc.AdoptPlan(req.PlanKey, data)
			}
		}
	}

	// Merge the remainder into one multi-machine spec. Per-cell specs from
	// one sweep batch differ only in their machine by construction; anything
	// else is a protocol bug worth refusing outright.
	var job *service.Job
	keyByMachine := make(map[string]string, len(pending))
	if len(pending) > 0 {
		merged := pending[0].Spec
		for _, rc := range pending[1:] {
			s := rc.Spec
			if s.Workloads[0] != merged.Workloads[0] || s.Warmup != merged.Warmup ||
				s.Measure != merged.Measure || s.Windows != merged.Windows ||
				s.FastForward != merged.FastForward || s.WindowMajor != merged.WindowMajor ||
				s.LiveDecode != merged.LiveDecode {
				writeError(w, http.StatusBadRequest, errors.New("cluster: sweep: cells disagree on workload or windows"))
				return
			}
			merged.Machines = append(merged.Machines, s.Machines[0])
		}
		for _, rc := range pending {
			cfg, err := rc.Spec.Machines[0].Config()
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			keyByMachine[cfg.Name] = rc.Key
		}
		// Submit before committing to a 200: an admission refusal must reach
		// the coordinator as the steal/backoff signal, not a broken stream.
		var err error
		job, err = wk.svc.Submit(merged)
		if err != nil {
			var ra *service.RetryAfterError
			if errors.As(err, &ra) {
				w.Header().Set("Retry-After", strconv.Itoa(int(ra.After.Round(time.Second).Seconds())))
			}
			switch {
			case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrRateLimited):
				writeError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, service.ErrDraining):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ln sweepLine) {
		_ = enc.Encode(ln)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, ln := range answered {
		emit(ln)
	}
	if job == nil {
		return
	}

	// Stream the job's cell events as they land. Failures carry no content
	// key (there is no result to address), so they map back to the
	// coordinator's key through the machine name.
	reported := make(map[string]bool, len(pending))
	var executed []service.CellResult
	from := 0
	for {
		evs, state := job.EventsSince(from)
		from += len(evs)
		for _, e := range evs {
			if e.Type != "cell" {
				continue
			}
			if e.Error != "" {
				key := e.Key
				if key == "" {
					key = keyByMachine[e.Machine]
				}
				if key != "" && !reported[key] {
					reported[key] = true
					emit(sweepLine{Key: key, Source: "error", Error: e.Error})
				}
				continue
			}
			if _, want := keyByMachine[e.Machine]; !want || reported[e.Key] {
				continue
			}
			if res, ok := wk.svc.Result(e.Key); ok {
				reported[e.Key] = true
				executed = append(executed, res)
				emit(sweepLine{Key: e.Key, Result: res, Source: "executed"})
			}
		}
		if len(evs) > 0 {
			continue
		}
		if state == service.JobDone || state == service.JobFailed {
			break
		}
		select {
		case <-r.Context().Done():
			// The coordinator hung up; the job runs on and lands in the
			// cache, so the re-dispatch is a tier-1 hit.
			return
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Anything still unreported either raced the final poll (settle it from
	// the cache) or resolved to a different content address than the
	// coordinator sharded by — a protocol bug to surface loudly.
	for _, rc := range pending {
		if reported[rc.Key] {
			continue
		}
		if res, ok := wk.svc.Result(rc.Key); ok {
			executed = append(executed, res)
			emit(sweepLine{Key: rc.Key, Result: res, Source: "executed"})
			continue
		}
		emit(sweepLine{
			Key:    rc.Key,
			Source: "error",
			Error:  fmt.Sprintf("cluster: key mismatch: coordinator asked for %s, worker computed a different address", rc.Key),
		})
	}
	for _, res := range executed {
		wk.replicateResult(res)
	}
}

// handleResult is the cache-only peer-fetch endpoint: it answers from this
// node's finished-result store and never triggers work, which is what
// keeps peer fetches cheap and recursion-free.
func (wk *Worker) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := wk.svc.Result(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("cluster: no result under that key"))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleResultPush accepts a proactively replicated finished cell — the
// push half of result replication. Cache-only admission: the result is
// adopted, never executed, and a malformed payload is refused.
func (wk *Worker) handleResultPush(w http.ResponseWriter, r *http.Request) {
	var res service.CellResult
	if err := decodeBody(w, r, &res); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if res.Key == "" {
		writeError(w, http.StatusBadRequest, errors.New("cluster: result push: empty key"))
		return
	}
	wk.svc.AdoptResult(res)
	w.WriteHeader(http.StatusOK)
}

// planWaitBound caps the plan endpoint's ?wait=1 long-poll. The client's
// planWaitTimeout is sized above it, so a parked fetch is ended by this
// server bound (404: plan still cooking or pass failed), not a client
// timeout misread as a dead peer.
const planWaitBound = 30 * time.Second

// handlePlanGet serves a serialized sampling plan by plan key, cache-only:
// the replica cache and the runners' window stores are consulted, work is
// never triggered. With ?wait=1 the handler parks while this node is the
// designated planner with the batch in flight — the window where "miss"
// really means "seconds from now", and waiting is what saves the caller a
// redundant functional pass.
func (wk *Worker) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	wait := r.URL.Query().Get("wait") == "1"
	deadline := time.Now().Add(planWaitBound)
	for {
		if data, ok := wk.svc.PlanData(key); ok {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(data)
			return
		}
		if !wait || !wk.expectingPlan(key) || time.Now().After(deadline) {
			writeError(w, http.StatusNotFound, errors.New("cluster: no plan under that key"))
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// handlePlanPut accepts a proactively replicated plan. The envelope's
// content hash gates admission (AdoptPlan re-verifies it), so a corrupt or
// truncated push is a 400, never a resident replica.
func (wk *Worker) handlePlanPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if wk.svc.HasPlan(key) {
		// Resident in some tier already (this node planned it, or adopted
		// it via prefetch before the push arrived) — don't pay the decode.
		w.WriteHeader(http.StatusOK)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlanWireBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := wk.svc.AdoptPlan(key, data); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// handlePeers applies a coordinator membership push. A push whose epoch is
// not newer than the last applied snapshot is acknowledged but ignored —
// out-of-order delivery, not an error.
func (wk *Worker) handlePeers(w http.ResponseWriter, r *http.Request) {
	var msg peersMsg
	if err := decodeBody(w, r, &msg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wk.ApplyPeers(msg.Peers, msg.Epoch)
	writeJSON(w, http.StatusOK, peersMsg{Peers: msg.Peers, Epoch: msg.Epoch})
}
