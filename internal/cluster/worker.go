package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

// Worker adapts one pubsd daemon into a cluster shard: it serves the
// cluster wire protocol in front of the daemon's own Submit path, so a
// cell dispatched by the coordinator flows through exactly the admission
// control, journal, runner, and cache machinery a directly submitted
// campaign would. Its answer path is the two-tier cache: the node-local
// store first, a peer fetch by content address second, and only then a
// fresh execution.
type Worker struct {
	svc *service.Service
	hc  *http.Client

	mu    sync.Mutex
	peers map[string]string // node ID -> base URL, self excluded
}

// NewWorker wraps a running daemon.
func NewWorker(svc *service.Service) *Worker {
	return &Worker{svc: svc, hc: &http.Client{}, peers: make(map[string]string)}
}

// SetPeers replaces the worker's member map (from a join response or a
// coordinator push). The worker's own entry is dropped: fetching from
// yourself is tier 1, not tier 2.
func (wk *Worker) SetPeers(peers map[string]string) {
	self := wk.svc.NodeID()
	next := make(map[string]string, len(peers))
	for node, url := range peers {
		if node != self && url != "" {
			next[node] = strings.TrimRight(url, "/")
		}
	}
	wk.mu.Lock()
	wk.peers = next
	wk.mu.Unlock()
	wk.svc.ClusterCounters().SetPeers(len(next))
}

// peerList snapshots the peer URLs in deterministic (node ID) order.
func (wk *Worker) peerList() []string {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	nodes := make([]string, 0, len(wk.peers))
	for n := range wk.peers {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = wk.peers[n]
	}
	return urls
}

// Handler serves the worker's cluster endpoints, falling through to next
// (the daemon's public API) for every other path.
func (wk *Worker) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/execute", wk.handleExecute)
	mux.HandleFunc("GET /v1/cluster/result/{key}", wk.handleResult)
	mux.HandleFunc("POST /v1/cluster/peers", wk.handlePeers)
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}

// handleExecute runs one cell through the two-tier cache and then the
// daemon's own Submit path. Admission refusals surface as 429/503 with the
// daemon's Retry-After hint — the coordinator's steal trigger. Simulation
// failures return 200 with Source "error": the cell failed, the node is
// healthy.
func (wk *Worker) handleExecute(w http.ResponseWriter, r *http.Request) {
	var rc service.RemoteCell
	if err := decodeBody(w, r, &rc); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rc.Key == "" {
		writeError(w, http.StatusBadRequest, errors.New("cluster: execute: empty key"))
		return
	}
	// Tier 1: this node already has it (its own earlier execution, an
	// adopted peer result, or a duplicate in a concurrent burst).
	if res, ok := wk.svc.Result(rc.Key); ok {
		writeJSON(w, http.StatusOK, executeResponse{Result: res, Source: "cache"})
		return
	}
	// Tier 2: a peer has it — after a ring change (join, failover) the old
	// owner still holds the result, and moving it is cheaper than ever
	// re-simulating. Adopt so this node answers tier-1 next time.
	for _, base := range wk.peerList() {
		if res, ok := fetchResult(r.Context(), wk.hc, base, rc.Key); ok {
			wk.svc.AdoptResult(res)
			wk.svc.ClusterCounters().AddPeerHit()
			writeJSON(w, http.StatusOK, executeResponse{Result: res, Source: "peer"})
			return
		}
	}
	// Tier 3: execute, via the full single-node pipeline. The single-cell
	// spec carries resolved windows, so the worker derives the same content
	// address the coordinator sharded by.
	job, err := wk.svc.Submit(rc.Spec)
	if err != nil {
		var ra *service.RetryAfterError
		if errors.As(err, &ra) {
			w.Header().Set("Retry-After", strconv.Itoa(int(ra.After.Round(time.Second).Seconds())))
		}
		switch {
		case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrRateLimited):
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, service.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The coordinator gave up (or died). The job keeps running: its
		// result lands in the local cache, so the inevitable re-dispatch —
		// here or on a peer that fetches from here — is a cache hit, not a
		// second simulation.
		return
	}
	st := job.Status()
	if st.State == service.JobFailed {
		writeJSON(w, http.StatusOK, executeResponse{Source: "error", Error: strings.Join(st.Errors, "; ")})
		return
	}
	for _, res := range st.Results {
		if res.Key == rc.Key {
			writeJSON(w, http.StatusOK, executeResponse{Result: res, Source: "executed"})
			return
		}
	}
	// The worker resolved the spec to a different content address than the
	// coordinator — a protocol bug worth failing loudly, not silently
	// serving the wrong cell.
	keys := make([]string, 0, len(st.Results))
	for _, res := range st.Results {
		keys = append(keys, res.Key)
	}
	writeJSON(w, http.StatusOK, executeResponse{
		Source: "error",
		Error:  fmt.Sprintf("cluster: key mismatch: coordinator asked for %s, worker computed %v", rc.Key, keys),
	})
}

// handleResult is the cache-only peer-fetch endpoint: it answers from this
// node's finished-result store and never triggers work, which is what
// keeps peer fetches cheap and recursion-free.
func (wk *Worker) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := wk.svc.Result(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("cluster: no result under that key"))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handlePeers applies a coordinator membership push.
func (wk *Worker) handlePeers(w http.ResponseWriter, r *http.Request) {
	var msg peersMsg
	if err := decodeBody(w, r, &msg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wk.SetPeers(msg.Peers)
	writeJSON(w, http.StatusOK, peersMsg{Peers: msg.Peers})
}
