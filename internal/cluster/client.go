package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// Timeouts for the three traffic classes of the wire protocol. Execute
// bounds a detailed simulation, so it is generous; a peer-cache fetch is a
// map lookup, so a peer that cannot answer fast is treated as a miss; the
// control plane (join, membership pushes) sits in between.
const (
	executeTimeout = 5 * time.Minute
	fetchTimeout   = 3 * time.Second
	controlTimeout = 5 * time.Second
)

// saturatedError is a worker's admission refusal (HTTP 429 or 503): the
// node is healthy but full, so the cell should be offered to another node —
// the work-stealing trigger — and retried here only after the hint.
type saturatedError struct {
	after time.Duration
	msg   string
}

func (e *saturatedError) Error() string { return e.msg }

// executeCell runs one cell on the node at base. A nil error means the
// worker answered (possibly with a cell-level failure inside the response);
// a *saturatedError means admission pushed back; any other error means the
// node itself failed and should leave the ring.
func executeCell(ctx context.Context, hc *http.Client, base string, rc service.RemoteCell) (executeResponse, error) {
	body, err := json.Marshal(rc)
	if err != nil {
		return executeResponse{}, fmt.Errorf("cluster: encoding cell: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, executeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/execute", bytes.NewReader(body))
	if err != nil {
		return executeResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return executeResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	if err != nil {
		return executeResponse{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out executeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			return executeResponse{}, fmt.Errorf("cluster: decoding execute response: %w", err)
		}
		return out, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		after := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return executeResponse{}, &saturatedError{after: after, msg: fmt.Sprintf("cluster: %s saturated: %s", base, strings.TrimSpace(string(data)))}
	default:
		return executeResponse{}, fmt.Errorf("cluster: %s: execute: %s: %s", base, resp.Status, strings.TrimSpace(string(data)))
	}
}

// fetchResult asks the node at base for a finished cell by content address —
// the peer tier of the two-tier cache. Any failure (timeout, 404, a dead
// peer) is simply a miss.
func fetchResult(ctx context.Context, hc *http.Client, base, key string) (service.CellResult, bool) {
	ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster/result/"+key, nil)
	if err != nil {
		return service.CellResult{}, false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return service.CellResult{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.CellResult{}, false
	}
	var res service.CellResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxWireBytes)).Decode(&res); err != nil || res.Key != key {
		return service.CellResult{}, false
	}
	return res, true
}

// Join announces a worker to the coordinator and returns the cluster's
// member map (node ID -> base URL) as of the join.
func Join(ctx context.Context, hc *http.Client, coordinatorURL, node, selfURL string) (map[string]string, error) {
	body, err := json.Marshal(joinRequest{Node: node, URL: selfURL})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, controlTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinatorURL, "/")+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: join: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var msg peersMsg
	if err := json.Unmarshal(data, &msg); err != nil {
		return nil, fmt.Errorf("cluster: decoding join response: %w", err)
	}
	return msg.Peers, nil
}

// pushPeers sends the full member map to one worker (best effort; the join
// response is the authoritative copy for the joiner itself).
func pushPeers(ctx context.Context, hc *http.Client, base string, peers map[string]string) error {
	body, err := json.Marshal(peersMsg{Peers: peers})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, controlTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/peers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peers push to %s: %s", base, resp.Status)
	}
	return nil
}
