package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// Timeouts for the traffic classes of the wire protocol. Execute bounds a
// detailed simulation (and a whole sweep batch), so it is generous; a
// peer-cache fetch is a map lookup, so a peer that cannot answer fast is
// treated as a miss; the control plane (join, membership pushes) sits in
// between. Plan transfers move megabytes and — with ?wait=1 — deliberately
// park on a peer that is mid-functional-pass, so they get their own pair.
const (
	executeTimeout = 5 * time.Minute
	fetchTimeout   = 3 * time.Second
	controlTimeout = 5 * time.Second

	planFetchTimeout = 10 * time.Second
	planWaitTimeout  = 40 * time.Second // covers the server's long-poll bound
	planPushTimeout  = 30 * time.Second
)

// sharedTransport is the one HTTP transport every coordinator and worker
// in this process dials through. Cluster traffic is many small requests to
// a handful of stable peers, so connection reuse dominates per-dispatch
// cost: keep-alives stay on and the idle pool is sized for a whole fleet's
// worth of concurrent cell dispatches to each node (the default transport
// caps idle connections per host at 2 and throws the rest away, paying a
// TCP handshake per dispatch under any real concurrency). Per-call
// deadlines stay on each request's context — the client itself sets none,
// so one slow plan transfer cannot time out an unrelated execute.
var sharedTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

var sharedHC = &http.Client{Transport: sharedTransport}

// SharedClient returns the package's tuned, fleet-sized HTTP client.
// Everything that talks the cluster protocol — coordinators, workers, the
// daemon's join loop — should use it rather than building per-call
// clients, so the whole process shares one keep-alive pool.
func SharedClient() *http.Client { return sharedHC }

// saturatedError is a worker's admission refusal (HTTP 429 or 503): the
// node is healthy but full, so the cell should be offered to another node —
// the work-stealing trigger — and retried here only after the hint.
type saturatedError struct {
	after time.Duration
	msg   string
}

func (e *saturatedError) Error() string { return e.msg }

// executeCell runs one cell on the node at base. A nil error means the
// worker answered (possibly with a cell-level failure inside the response);
// a *saturatedError means admission pushed back; any other error means the
// node itself failed and should leave the ring.
func executeCell(ctx context.Context, hc *http.Client, base string, rc service.RemoteCell) (executeResponse, error) {
	body, err := json.Marshal(rc)
	if err != nil {
		return executeResponse{}, fmt.Errorf("cluster: encoding cell: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, executeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/execute", bytes.NewReader(body))
	if err != nil {
		return executeResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return executeResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	if err != nil {
		return executeResponse{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out executeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			return executeResponse{}, fmt.Errorf("cluster: decoding execute response: %w", err)
		}
		return out, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		after := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return executeResponse{}, &saturatedError{after: after, msg: fmt.Sprintf("cluster: %s saturated: %s", base, strings.TrimSpace(string(data)))}
	default:
		return executeResponse{}, fmt.Errorf("cluster: %s: execute: %s: %s", base, resp.Status, strings.TrimSpace(string(data)))
	}
}

// fetchResult asks the node at base for a finished cell by content address —
// the peer tier of the two-tier cache. Any failure (timeout, 404, a dead
// peer) is simply a miss.
func fetchResult(ctx context.Context, hc *http.Client, base, key string) (service.CellResult, bool) {
	ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster/result/"+key, nil)
	if err != nil {
		return service.CellResult{}, false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return service.CellResult{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.CellResult{}, false
	}
	var res service.CellResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxWireBytes)).Decode(&res); err != nil || res.Key != key {
		return service.CellResult{}, false
	}
	return res, true
}

// executeSweepBatch dispatches one workload batch to the node at base and
// collects the streamed NDJSON lines. Error classification mirrors
// executeCell: nil means the node answered the batch (individual cells may
// still carry errors in their lines); *saturatedError means admission
// pushed back and the whole batch should be offered elsewhere; anything
// else is a node fault. A response that dies mid-stream returns the lines
// that landed plus the transport error — the already-settled cells stay
// settled.
func executeSweepBatch(ctx context.Context, hc *http.Client, base string, req sweepRequest) ([]sweepLine, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding sweep batch: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, executeTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var lines []sweepLine
		dec := json.NewDecoder(resp.Body)
		for {
			var ln sweepLine
			if derr := dec.Decode(&ln); derr != nil {
				if derr == io.EOF {
					return lines, nil
				}
				return lines, fmt.Errorf("cluster: %s: sweep stream: %w", base, derr)
			}
			lines = append(lines, ln)
		}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
		after := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return nil, &saturatedError{after: after, msg: fmt.Sprintf("cluster: %s saturated: %s", base, strings.TrimSpace(string(data)))}
	default:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
		return nil, fmt.Errorf("cluster: %s: sweep: %s: %s", base, resp.Status, strings.TrimSpace(string(data)))
	}
}

// fetchPlan asks the node at base for a serialized sampling plan by plan
// key — the peer tier of the plan cache. With wait set, the server
// long-polls while it is itself mid-pass for that key. Any failure is a
// miss; the payload's own content hash is verified by the decoder, not
// here.
func fetchPlan(ctx context.Context, hc *http.Client, base, key string, wait bool) ([]byte, bool) {
	timeout := planFetchTimeout
	url := base + "/v1/cluster/plan/" + key
	if wait {
		timeout = planWaitTimeout
		url += "?wait=1"
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPlanWireBytes+1))
	if err != nil || len(data) == 0 || len(data) > maxPlanWireBytes {
		return nil, false
	}
	return data, true
}

// pushPlan replicates a serialized plan to the node at base (best effort).
func pushPlan(ctx context.Context, hc *http.Client, base, key string, data []byte) error {
	ctx, cancel := context.WithTimeout(ctx, planPushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/plan/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: plan push to %s: %s", base, resp.Status)
	}
	return nil
}

// pushResult replicates a finished cell to the node at base (best effort).
func pushResult(ctx context.Context, hc *http.Client, base string, res service.CellResult) error {
	body, err := json.Marshal(res)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, controlTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/result", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: result push to %s: %s", base, resp.Status)
	}
	return nil
}

// Join announces a worker to the coordinator and returns the cluster's
// member map (node ID -> base URL) and membership epoch as of the join —
// apply both via Worker.ApplyPeers so a slower push from before the join
// cannot overwrite the response's fresher map.
func Join(ctx context.Context, hc *http.Client, coordinatorURL, node, selfURL string) (map[string]string, uint64, error) {
	body, err := json.Marshal(joinRequest{Node: node, URL: selfURL})
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := context.WithTimeout(ctx, controlTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinatorURL, "/")+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("cluster: join: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var msg peersMsg
	if err := json.Unmarshal(data, &msg); err != nil {
		return nil, 0, fmt.Errorf("cluster: decoding join response: %w", err)
	}
	return msg.Peers, msg.Epoch, nil
}

// pushPeers sends one epoch-stamped membership snapshot to one worker (best
// effort; the join response is the authoritative copy for the joiner
// itself).
func pushPeers(ctx context.Context, hc *http.Client, base string, peers map[string]string, epoch uint64) error {
	body, err := json.Marshal(peersMsg{Peers: peers, Epoch: epoch})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, controlTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cluster/peers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peers push to %s: %s", base, resp.Status)
	}
	return nil
}
