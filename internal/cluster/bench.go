package cluster

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// BENCH_7 measures what the cluster fabric buys: jobs per second served to
// a large concurrent client population by a 3-worker cluster versus a
// 1-worker cluster behind the identical coordinator, with p99 latency and
// the cluster-wide cache-hit ratio recorded. Workers are deliberately
// small — one simulation slot, a short queue, and a per-tenant admission
// budget of WorkerRate jobs/sec — so the fleet's aggregate admission
// capacity, not one host's core count, is the resource under test: the
// coordinator steals refused cells onto other members and retries on the
// workers' own Retry-After discipline, so fleet throughput tracks the sum
// of the members' admission budgets. Token buckets refill deterministic
// amounts per unit time, which makes the scaling ratio robust on a
// single-core runner and strictly better on multi-core hosts, where the
// three workers' simulation slots also run in parallel.

// BenchConfig sizes the BENCH_7 run.
type BenchConfig struct {
	// Jobs per scenario (default 96); each job is one distinct-or-duplicate
	// single-cell campaign.
	Jobs int
	// Concurrency is the concurrent client count (default 64; the BENCH_7
	// contract wants >= 64).
	Concurrency int
	// Warmup/Measure are the per-cell windows (defaults 2_000/8_000 —
	// small, so admission capacity dominates, not simulation time).
	Warmup, Measure uint64
	// WorkerQueue/WorkerActive size each worker's admission capacity
	// (defaults 4 and 2).
	WorkerQueue, WorkerActive int
	// WorkerRate/WorkerBurst are each worker's per-tenant token bucket
	// (defaults 12 jobs/sec, burst 4) — the deterministic per-node
	// admission budget the scaling measurement rests on.
	WorkerRate  float64
	WorkerBurst int
	// Log receives progress lines (nil = discard).
	Log io.Writer
}

func (c BenchConfig) normalized() BenchConfig {
	if c.Jobs <= 0 {
		c.Jobs = 96
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 64
	}
	if c.Warmup == 0 {
		c.Warmup = 2_000
	}
	if c.Measure == 0 {
		c.Measure = 8_000
	}
	if c.WorkerQueue <= 0 {
		c.WorkerQueue = 4
	}
	if c.WorkerActive <= 0 {
		c.WorkerActive = 2
	}
	if c.WorkerRate <= 0 {
		c.WorkerRate = 12
	}
	if c.WorkerBurst <= 0 {
		c.WorkerBurst = 4
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// TopologyStats is one (scenario, worker count) measurement.
type TopologyStats struct {
	Workers    int     `json:"workers"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50MS      float64 `json:"latency_p50_ms"`
	P99MS      float64 `json:"latency_p99_ms"`
	Rejected   int     `json:"rejected_jobs"`

	// Cluster-wide counters, summed across every node.
	Sims          uint64  `json:"sims_executed"`
	CacheHits     uint64  `json:"cache_hits"`
	Merged        uint64  `json:"singleflight_merged"`
	PeerCacheHits uint64  `json:"peer_cache_hits"`
	Steals        uint64  `json:"steals"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// BenchScenario is one traffic shape measured on both topologies.
type BenchScenario struct {
	Name    string        `json:"name"`
	Single  TopologyStats `json:"single"`  // 1 worker
	Cluster TopologyStats `json:"cluster"` // 3 workers
	Speedup float64       `json:"speedup"` // cluster jobs/sec over single
}

// BenchReport is the BENCH_7.json document.
type BenchReport struct {
	Schema      string    `json:"schema"` // "pubsd-cluster/1"
	Timestamp   time.Time `json:"timestamp"`
	Jobs        int       `json:"jobs"`
	Concurrency int       `json:"concurrency"`
	WorkerQueue int       `json:"worker_queue"`
	WorkerSlots int       `json:"worker_active"`
	WorkerRate  float64   `json:"worker_rate"`
	WorkerBurst int       `json:"worker_burst"`

	Scenarios      []BenchScenario `json:"scenarios"`
	GeomeanSpeedup float64         `json:"geomean_speedup"`
}

// benchSpecs builds the scenario's spec ring: n single-cell campaigns with
// distinct content addresses — the warm-up window is part of the memo key,
// so a one-instruction offset per spec names a distinct cell without
// changing what the cell costs.
func benchSpecs(n int, warmup, measure uint64) []service.CampaignSpec {
	workloads := []string{"matmul", "chess", "goplay", "pathfind"}
	specs := make([]service.CampaignSpec, n)
	for i := range specs {
		specs[i] = service.CampaignSpec{
			Machines:  []service.MachineSpec{{Machine: "pubs"}},
			Workloads: []string{workloads[i%len(workloads)]},
			Warmup:    warmup + uint64(i), Measure: measure,
		}
	}
	return specs
}

// benchNode is one in-process worker daemon.
type benchNode struct {
	svc *service.Service
	wk  *Worker
	srv *http.Server
	url string
}

func startBenchWorker(id string, cfg BenchConfig) (*benchNode, error) {
	svc, err := service.New(service.Config{
		NodeID:        id,
		Workers:       1,
		QueueDepth:    cfg.WorkerQueue,
		MaxActiveJobs: cfg.WorkerActive,
		TenantRate:    cfg.WorkerRate,
		TenantBurst:   cfg.WorkerBurst,
	})
	if err != nil {
		return nil, err
	}
	wk := NewWorker(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: wk.Handler(svc.Handler())}
	go func() { _ = srv.Serve(ln) }()
	// Peers are wired by the topology once every worker is up.
	return &benchNode{svc: svc, wk: wk, srv: srv, url: "http://" + ln.Addr().String()}, nil
}

// runTopology boots n workers plus a coordinator, drives the spec ring at
// the configured concurrency, and returns the loadtest report plus the
// cluster-wide counter sums.
func runTopology(ctx context.Context, n int, specs []service.CampaignSpec, burst int, cfg BenchConfig) (TopologyStats, error) {
	stats := TopologyStats{Workers: n}
	workers := make([]*benchNode, 0, n)
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for _, w := range workers {
			_ = w.svc.Shutdown(sctx)
			_ = w.srv.Shutdown(sctx)
		}
	}
	defer shutdown()

	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		w, err := startBenchWorker(fmt.Sprintf("bench-w%d", i+1), cfg)
		if err != nil {
			return stats, err
		}
		workers = append(workers, w)
		peers[w.svc.NodeID()] = w.url
	}
	coord := NewCoordinator()
	// The coordinator's pool slots host blocked remote dispatches, not
	// simulations, so they outnumber the client population.
	csvc, err := service.New(service.Config{
		NodeID:        "bench-coord",
		Workers:       cfg.Concurrency + 8,
		QueueDepth:    4 * cfg.Concurrency,
		MaxActiveJobs: cfg.Concurrency + 8,
		Remote:        coord.Remote,
	})
	if err != nil {
		return stats, err
	}
	coord.BindCounters(csvc.ClusterCounters())
	for _, w := range workers {
		coord.AddNode(w.svc.NodeID(), w.url)
		w.wk.SetPeers(peers)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = csvc.Shutdown(context.Background())
		return stats, err
	}
	csrv := &http.Server{Handler: coord.Handler(csvc.Handler())}
	go func() { _ = csrv.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = csvc.Shutdown(sctx)
		_ = csrv.Shutdown(sctx)
	}()

	rep, err := service.Loadtest(ctx, service.LoadtestConfig{
		BaseURL:        "http://" + ln.Addr().String(),
		Jobs:           cfg.Jobs,
		Concurrency:    cfg.Concurrency,
		Specs:          specs,
		DuplicateBurst: burst,
	})
	if err != nil {
		return stats, err
	}

	stats.JobsPerSec = rep.JobsPerSec
	stats.P50MS = rep.LatencyP50MS
	stats.P99MS = rep.LatencyP99MS
	stats.Rejected = rep.Rejected
	for _, w := range workers {
		m := parseMetricsText(w.svc.MetricsText())
		stats.Sims += m["pubsd_sims_executed_total"]
		stats.PeerCacheHits += m["pubsd_cluster_peer_cache_hits_total"]
	}
	cm := parseMetricsText(csvc.MetricsText())
	stats.Sims += cm["pubsd_sims_executed_total"]
	stats.CacheHits = cm["pubsd_cache_hits_total"]
	stats.Merged = cm["pubsd_singleflight_merged_total"]
	stats.Steals = cm["pubsd_cluster_steals_total"]
	if total := stats.CacheHits + stats.Merged + cm["pubsd_cache_misses_total"]; total > 0 {
		stats.CacheHitRatio = float64(stats.CacheHits+stats.Merged) / float64(total)
	}
	return stats, nil
}

// RunBench measures both topologies across the scenario set and gates
// nothing itself — the caller (cmd/pubsd clusterbench) applies the
// speedup floor and the baseline regression check.
func RunBench(ctx context.Context, cfg BenchConfig) (BenchReport, error) {
	cfg = cfg.normalized()
	rep := BenchReport{
		Schema: "pubsd-cluster/1", Timestamp: time.Now(),
		Jobs: cfg.Jobs, Concurrency: cfg.Concurrency,
		WorkerQueue: cfg.WorkerQueue, WorkerSlots: cfg.WorkerActive,
		WorkerRate: cfg.WorkerRate, WorkerBurst: cfg.WorkerBurst,
	}
	scenarios := []struct {
		name  string
		ring  int // distinct specs in the ring
		burst int
	}{
		// Every job a distinct cell: pure admission-capacity scaling.
		{name: "distinct-cells", ring: cfg.Jobs, burst: 1},
		// Half the submissions duplicate an earlier cell and must be
		// absorbed by the cluster-wide cache and singleflight while the
		// unique half still scales with the fleet.
		{name: "duplicate-mix", ring: cfg.Jobs / 2, burst: 2},
	}
	geo := 1.0
	for _, sc := range scenarios {
		specs := benchSpecs(sc.ring, cfg.Warmup, cfg.Measure)
		fmt.Fprintf(cfg.Log, "pubsd: clusterbench %s: 1 worker...\n", sc.name)
		single, err := runTopology(ctx, 1, specs, sc.burst, cfg)
		if err != nil {
			return rep, fmt.Errorf("clusterbench %s (1 worker): %w", sc.name, err)
		}
		fmt.Fprintf(cfg.Log, "pubsd: clusterbench %s: 3 workers...\n", sc.name)
		cluster, err := runTopology(ctx, 3, specs, sc.burst, cfg)
		if err != nil {
			return rep, fmt.Errorf("clusterbench %s (3 workers): %w", sc.name, err)
		}
		s := BenchScenario{Name: sc.name, Single: single, Cluster: cluster}
		if single.JobsPerSec > 0 {
			s.Speedup = cluster.JobsPerSec / single.JobsPerSec
		}
		geo *= s.Speedup
		rep.Scenarios = append(rep.Scenarios, s)
		fmt.Fprintf(cfg.Log, "pubsd: clusterbench %s: %.2f jobs/s -> %.2f jobs/s (%.2fx), p99 %.0fms -> %.0fms, hit ratio %.2f, %d peer hits\n",
			sc.name, single.JobsPerSec, cluster.JobsPerSec, s.Speedup,
			single.P99MS, cluster.P99MS, cluster.CacheHitRatio, cluster.PeerCacheHits)
	}
	rep.GeomeanSpeedup = math.Pow(geo, 1/float64(len(rep.Scenarios)))
	return rep, nil
}

// parseMetricsText extracts integer samples from a /metrics document,
// summing across label sets and skipping quantile series.
func parseMetricsText(text string) map[string]uint64 {
	out := make(map[string]uint64)
	for _, ln := range strings.Split(text, "\n") {
		name, val, ok := strings.Cut(strings.TrimSpace(ln), " ")
		if !ok {
			continue
		}
		if base, labels, cut := strings.Cut(name, "{"); cut {
			if strings.Contains(labels, "quantile=") {
				continue
			}
			name = base
		}
		if v, err := strconv.ParseUint(val, 10, 64); err == nil {
			out[name] += v
		}
	}
	return out
}
