package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/service"
)

// Coordinator shards cells across worker nodes by content address. It
// plugs into a pubsd daemon as its service.RemoteFunc: the daemon keeps
// owning admission control, job lifecycle, and the cluster-wide
// singleflight (each unique cell reaches Remote once), while the
// coordinator owns placement — ring ownership first, work-stealing onto
// idle peers when the owner is saturated, and re-sharding when a node
// stops answering.
type Coordinator struct {
	hc *http.Client

	mu   sync.Mutex
	ring *Ring
	urls map[string]string // node ID -> base URL

	counters *service.ClusterCounters
}

// NewCoordinator builds an empty coordinator; nodes arrive via AddNode
// (the join endpoint) or static configuration.
func NewCoordinator() *Coordinator {
	return &Coordinator{hc: &http.Client{}, ring: NewRing(), urls: make(map[string]string)}
}

// BindCounters connects the coordinator to its daemon's pubsd_cluster_*
// family. Called after service.New — the daemon's Config needs Remote
// before the daemon exists — and nil-safe until then.
func (c *Coordinator) BindCounters(cc *service.ClusterCounters) {
	c.mu.Lock()
	c.counters = cc
	c.mu.Unlock()
	cc.SetPeers(c.ring.Len())
}

func (c *Coordinator) countersRef() *service.ClusterCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// AddNode adds (or re-adds, after a restart under the same ID) a worker to
// the ring and pushes the updated member map to every worker, so the peer
// tier of each node's cache sees the whole fleet.
func (c *Coordinator) AddNode(node, url string) {
	c.mu.Lock()
	c.ring.Add(node)
	c.urls[node] = url
	n := c.ring.Len()
	c.mu.Unlock()
	c.countersRef().SetPeers(n)
	c.broadcastPeers()
}

// RemoveNode drops a worker from the ring. Keys it owned fall to the next
// point clockwise (see Ring.Remove), so the unfinished cells of a dead
// node re-shard across the survivors on their next dispatch.
func (c *Coordinator) RemoveNode(node string) {
	c.mu.Lock()
	c.ring.Remove(node)
	delete(c.urls, node)
	n := c.ring.Len()
	c.mu.Unlock()
	c.countersRef().SetPeers(n)
	c.broadcastPeers()
}

// Nodes snapshots the member map.
func (c *Coordinator) Nodes() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.urls))
	for n, u := range c.urls {
		out[n] = u
	}
	return out
}

// broadcastPeers pushes the member map to every worker, asynchronously and
// best-effort: the joiner already got the map in its join response, and a
// worker that misses a push only loses peer-fetch reach until the next
// membership change.
func (c *Coordinator) broadcastPeers() {
	peers := c.Nodes()
	for _, url := range peers {
		go func(base string) {
			_ = pushPeers(context.Background(), c.hc, base, peers)
		}(url)
	}
}

// plan snapshots the dispatch order for a key: the ring owner first, then
// every other member in deterministic ring order — the steal candidates.
func (c *Coordinator) plan(key string) (order []string, urls map[string]string, owner string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, ok = c.ring.Owner(key)
	if !ok {
		return nil, nil, "", false
	}
	order = append(order, owner)
	for _, n := range c.ring.Nodes() {
		if n != owner {
			order = append(order, n)
		}
	}
	urls = make(map[string]string, len(order))
	for _, n := range order {
		urls[n] = c.urls[n]
	}
	return order, urls, owner, true
}

// stealBackoffCap bounds the wait between dispatch rounds when the whole
// fleet is saturated; workers' Retry-After hints shorten it, never extend
// it past a second, so a draining queue is re-offered promptly.
const stealBackoffCap = time.Second

// Remote is the service.RemoteFunc a coordinator daemon runs with. For
// each cell it tries the ring owner, steals to the other members when the
// owner pushes back, drops members that stop answering (their cells
// re-shard by construction), and backs off briefly when the whole fleet is
// saturated. With no live workers it declines the cell, which makes an
// empty or fully failed cluster degrade to a plain single-node daemon.
func (c *Coordinator) Remote(ctx context.Context, rc service.RemoteCell) (service.CellResult, bool, error) {
	for {
		order, urls, owner, ok := c.plan(rc.Key)
		if !ok {
			return service.CellResult{}, false, nil
		}
		wait := time.Duration(0)
		for _, node := range order {
			resp, err := executeCell(ctx, c.hc, urls[node], rc)
			var sat *saturatedError
			switch {
			case err == nil:
				cc := c.countersRef()
				cc.AddRemoteCell()
				if node != owner {
					cc.AddSteal()
				}
				if resp.Source == "error" || resp.Error != "" {
					return service.CellResult{}, true, errors.New(resp.Error)
				}
				return resp.Result, true, nil
			case errors.As(err, &sat):
				// Healthy but full: a steal candidate for this round and a
				// backoff hint for the next.
				if wait == 0 || sat.after < wait {
					wait = sat.after
				}
			case ctx.Err() != nil:
				// Shutdown or cancellation, not a node fault.
				return service.CellResult{}, true, ctx.Err()
			default:
				// The node itself failed (connection refused, mid-request
				// death, 5xx): remove it so every cell it owned re-shards,
				// and keep trying this cell on the rest of this round's
				// snapshot.
				c.countersRef().AddNodeFailure()
				c.RemoveNode(node)
			}
		}
		if wait <= 0 {
			wait = 50 * time.Millisecond
		}
		if wait > stealBackoffCap {
			wait = stealBackoffCap
		}
		select {
		case <-ctx.Done():
			return service.CellResult{}, true, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// Handler serves the coordinator's control endpoints — workers join here —
// falling through to next (the daemon's public API) otherwise.
func (c *Coordinator) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Node == "" || req.URL == "" {
			writeError(w, http.StatusBadRequest, errors.New("cluster: join needs node and url"))
			return
		}
		c.AddNode(req.Node, req.URL)
		writeJSON(w, http.StatusOK, peersMsg{Peers: c.Nodes()})
	})
	mux.HandleFunc("GET /v1/cluster/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, peersMsg{Peers: c.Nodes()})
	})
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}
