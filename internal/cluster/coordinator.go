package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/service"
)

// Coordinator shards cells across worker nodes by content address. It
// plugs into a pubsd daemon as its service.RemoteFunc: the daemon keeps
// owning admission control, job lifecycle, and the cluster-wide
// singleflight (each unique cell reaches Remote once), while the
// coordinator owns placement — ring ownership first, work-stealing onto
// idle peers when the owner is saturated, and re-sharding when a node
// stops answering.
type Coordinator struct {
	hc *http.Client

	mu    sync.Mutex
	ring  *Ring
	urls  map[string]string // node ID -> base URL
	epoch uint64            // membership epoch; stamps every snapshot that leaves here

	counters *service.ClusterCounters
}

// NewCoordinator builds an empty coordinator; nodes arrive via AddNode
// (the join endpoint) or static configuration.
func NewCoordinator() *Coordinator {
	return &Coordinator{hc: SharedClient(), ring: NewRing(), urls: make(map[string]string)}
}

// BindCounters connects the coordinator to its daemon's pubsd_cluster_*
// family. Called after service.New — the daemon's Config needs Remote
// before the daemon exists — and nil-safe until then.
func (c *Coordinator) BindCounters(cc *service.ClusterCounters) {
	c.mu.Lock()
	c.counters = cc
	c.mu.Unlock()
	cc.SetPeers(c.ring.Len())
}

func (c *Coordinator) countersRef() *service.ClusterCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// AddNode adds (or re-adds, after a restart under the same ID) a worker to
// the ring and pushes the updated member map to every worker, so the peer
// tier of each node's cache sees the whole fleet.
func (c *Coordinator) AddNode(node, url string) {
	c.mu.Lock()
	c.ring.Add(node)
	c.urls[node] = url
	c.bumpEpochLocked()
	peers, epoch := c.membershipLocked()
	n := c.ring.Len()
	c.mu.Unlock()
	c.countersRef().SetPeers(n)
	c.broadcastPeers(peers, epoch)
}

// RemoveNode drops a worker from the ring. Keys it owned fall to the next
// point clockwise (see Ring.Remove), so the unfinished cells of a dead
// node re-shard across the survivors on their next dispatch.
func (c *Coordinator) RemoveNode(node string) {
	c.mu.Lock()
	c.ring.Remove(node)
	delete(c.urls, node)
	c.bumpEpochLocked()
	peers, epoch := c.membershipLocked()
	n := c.ring.Len()
	c.mu.Unlock()
	c.countersRef().SetPeers(n)
	c.broadcastPeers(peers, epoch)
}

// bumpEpochLocked advances the membership epoch past both its previous
// value and the wall clock. Successive snapshots from one coordinator are
// strictly ordered, and a replacement coordinator over the same fleet
// (fresh counter, later clock) naturally outranks its predecessor's pushes
// instead of having its own silently dropped.
func (c *Coordinator) bumpEpochLocked() {
	e := uint64(time.Now().UnixNano())
	if e <= c.epoch {
		e = c.epoch + 1
	}
	c.epoch = e
}

// Nodes snapshots the member map.
func (c *Coordinator) Nodes() map[string]string {
	peers, _ := c.membership()
	return peers
}

// membership snapshots the member map together with the epoch it was taken
// under — the pair every peersMsg that leaves the coordinator must carry
// atomically, or workers could pin a stale map under a fresh epoch.
func (c *Coordinator) membership() (map[string]string, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.membershipLocked()
}

func (c *Coordinator) membershipLocked() (map[string]string, uint64) {
	out := make(map[string]string, len(c.urls))
	for n, u := range c.urls {
		out[n] = u
	}
	return out, c.epoch
}

// broadcastPeers pushes an epoch-stamped membership snapshot to every
// worker, asynchronously and best-effort: the joiner already got the map in
// its join response, and a worker that misses a push only loses peer-fetch
// reach until the next membership change. The epoch is what makes the
// asynchrony safe — two rapid changes race their broadcasts, and workers
// keep whichever snapshot is newest, not whichever arrived last.
func (c *Coordinator) broadcastPeers(peers map[string]string, epoch uint64) {
	for _, url := range peers {
		go func(base string) {
			_ = pushPeers(context.Background(), c.hc, base, peers, epoch)
		}(url)
	}
}

// plan snapshots the dispatch order for a key: the ring owner first, then
// every other member in deterministic ring order — the steal candidates.
func (c *Coordinator) plan(key string) (order []string, urls map[string]string, owner string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, ok = c.ring.Owner(key)
	if !ok {
		return nil, nil, "", false
	}
	order = append(order, owner)
	for _, n := range c.ring.Nodes() {
		if n != owner {
			order = append(order, n)
		}
	}
	urls = make(map[string]string, len(order))
	for _, n := range order {
		urls[n] = c.urls[n]
	}
	return order, urls, owner, true
}

// stealBackoffCap bounds the wait between dispatch rounds when the whole
// fleet is saturated; workers' Retry-After hints shorten it, never extend
// it past a second, so a draining queue is re-offered promptly.
const stealBackoffCap = time.Second

// Remote is the service.RemoteFunc a coordinator daemon runs with. For
// each cell it tries the ring owner, steals to the other members when the
// owner pushes back, drops members that stop answering (their cells
// re-shard by construction), and backs off briefly when the whole fleet is
// saturated. With no live workers it declines the cell, which makes an
// empty or fully failed cluster degrade to a plain single-node daemon.
func (c *Coordinator) Remote(ctx context.Context, rc service.RemoteCell) (service.CellResult, bool, error) {
	for {
		order, urls, owner, ok := c.plan(rc.Key)
		if !ok {
			return service.CellResult{}, false, nil
		}
		wait := time.Duration(0)
		for _, node := range order {
			resp, err := executeCell(ctx, c.hc, urls[node], rc)
			var sat *saturatedError
			switch {
			case err == nil:
				cc := c.countersRef()
				cc.AddRemoteCell()
				if node != owner {
					cc.AddSteal()
				}
				if resp.Source == "error" || resp.Error != "" {
					return service.CellResult{}, true, errors.New(resp.Error)
				}
				return resp.Result, true, nil
			case errors.As(err, &sat):
				// Healthy but full: a steal candidate for this round and a
				// backoff hint for the next.
				if wait == 0 || sat.after < wait {
					wait = sat.after
				}
			case ctx.Err() != nil:
				// Shutdown or cancellation, not a node fault.
				return service.CellResult{}, true, ctx.Err()
			default:
				// The node itself failed (connection refused, mid-request
				// death, 5xx): remove it so every cell it owned re-shards,
				// and keep trying this cell on the rest of this round's
				// snapshot.
				c.countersRef().AddNodeFailure()
				c.RemoveNode(node)
			}
		}
		if wait <= 0 {
			wait = 50 * time.Millisecond
		}
		if wait > stealBackoffCap {
			wait = stealBackoffCap
		}
		select {
		case <-ctx.Done():
			return service.CellResult{}, true, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// RemoteSweep is the service.RemoteSweepFunc a coordinator daemon runs
// with: one workload sweep's unresolved cells arrive together, and leave as
// one batched dispatch per owning node instead of a POST per cell. The
// coordinator also designates the sweep's planner — the single node that
// pays the workload's functional fast-forward pass, which every other
// recipient long-polls instead of duplicating: the ring owner of the plan
// key when it is among the recipients (so repeated sweeps land their plans
// on the same node), otherwise the recipient with the most cells (the node
// with the most replay work to amortize the pass against).
func (c *Coordinator) RemoteSweep(ctx context.Context, planKey string, cells []service.RemoteCell) (map[string]service.CellResult, map[string]error, bool) {
	c.mu.Lock()
	if c.ring.Len() == 0 {
		c.mu.Unlock()
		return nil, nil, false
	}
	groups := make(map[string][]service.RemoteCell)
	for _, rc := range cells {
		owner, ok := c.ring.Owner(rc.Key)
		if !ok {
			c.mu.Unlock()
			return nil, nil, false
		}
		groups[owner] = append(groups[owner], rc)
	}
	plannerOwner, _ := c.ring.Owner(planKey)
	c.mu.Unlock()

	planner := ""
	if planKey != "" {
		if _, ok := groups[plannerOwner]; ok {
			planner = plannerOwner
		} else {
			for n, g := range groups {
				if planner == "" || len(g) > len(groups[planner]) ||
					(len(g) == len(groups[planner]) && n < planner) {
					planner = n
				}
			}
		}
	}

	res := make(map[string]service.CellResult, len(cells))
	errs := make(map[string]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for owner, group := range groups {
		wg.Add(1)
		go func(owner string, group []service.RemoteCell) {
			defer wg.Done()
			r, e := c.dispatchBatch(ctx, planKey, planner, group)
			mu.Lock()
			for k, v := range r {
				res[k] = v
			}
			for k, v := range e {
				errs[k] = v
			}
			mu.Unlock()
		}(owner, group)
	}
	wg.Wait()
	return res, errs, true
}

// dispatchBatch drives one owner-group of a sweep to completion, mirroring
// Remote's placement loop at batch granularity: the (current) ring owner
// first, steals to the other members on saturation, node removal on
// transport failure, capped backoff when the fleet is full. Cells settle
// line by line as the stream arrives — a node that dies mid-stream loses
// only its unsettled remainder, which re-offers to the survivors. Keys
// still unresolved when the ring empties are left out of both maps: the
// caller's local-fallback contract.
func (c *Coordinator) dispatchBatch(ctx context.Context, planKey, planner string, cells []service.RemoteCell) (map[string]service.CellResult, map[string]error) {
	res := make(map[string]service.CellResult, len(cells))
	errs := make(map[string]error)
	pending := cells
	for len(pending) > 0 {
		order, urls, owner, ok := c.plan(pending[0].Key)
		if !ok {
			return res, errs
		}
		wait := time.Duration(0)
		for _, node := range order {
			lines, err := executeSweepBatch(ctx, c.hc, urls[node], sweepRequest{
				Cells: pending, PlanKey: planKey, Planner: planner,
			})
			// Settle whatever landed — on a clean response and on a stream
			// that died partway alike; settled cells never re-dispatch.
			if len(lines) > 0 {
				settled := make(map[string]bool, len(lines))
				cc := c.countersRef()
				for _, ln := range lines {
					if ln.Key == "" || settled[ln.Key] {
						continue
					}
					settled[ln.Key] = true
					cc.AddRemoteCell()
					if node != owner {
						cc.AddSteal()
					}
					if ln.Source == "error" || ln.Error != "" {
						errs[ln.Key] = errors.New(ln.Error)
					} else {
						res[ln.Key] = ln.Result
					}
				}
				rest := pending[:0]
				for _, rc := range pending {
					if !settled[rc.Key] {
						rest = append(rest, rc)
					}
				}
				pending = rest
				if len(pending) == 0 {
					return res, errs
				}
			}
			var sat *saturatedError
			switch {
			case err == nil:
				// The node answered but left cells unreported; offer the
				// remainder to the next member this round.
			case errors.As(err, &sat):
				if wait == 0 || sat.after < wait {
					wait = sat.after
				}
			case ctx.Err() != nil:
				for _, rc := range pending {
					errs[rc.Key] = ctx.Err()
				}
				return res, errs
			default:
				c.countersRef().AddNodeFailure()
				c.RemoveNode(node)
			}
		}
		if wait <= 0 {
			wait = 50 * time.Millisecond
		}
		if wait > stealBackoffCap {
			wait = stealBackoffCap
		}
		select {
		case <-ctx.Done():
			for _, rc := range pending {
				errs[rc.Key] = ctx.Err()
			}
			return res, errs
		case <-time.After(wait):
		}
	}
	return res, errs
}

// Handler serves the coordinator's control endpoints — workers join here —
// falling through to next (the daemon's public API) otherwise.
func (c *Coordinator) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Node == "" || req.URL == "" {
			writeError(w, http.StatusBadRequest, errors.New("cluster: join needs node and url"))
			return
		}
		c.AddNode(req.Node, req.URL)
		peers, epoch := c.membership()
		writeJSON(w, http.StatusOK, peersMsg{Peers: peers, Epoch: epoch})
	})
	mux.HandleFunc("GET /v1/cluster/nodes", func(w http.ResponseWriter, r *http.Request) {
		peers, epoch := c.membership()
		writeJSON(w, http.StatusOK, peersMsg{Peers: peers, Epoch: epoch})
	})
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}
