package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// testSpec is the campaign every cluster test runs: 8 cells across two
// machines, with explicit windows so the submitter — not any daemon's
// defaults — pins the content addresses. Small windows keep the whole grid
// fast on one core.
func testSpec() service.CampaignSpec {
	return service.CampaignSpec{
		Machines:  []service.MachineSpec{{Machine: "base"}, {Machine: "pubs"}},
		Workloads: []string{"matmul", "chess", "goplay", "pathfind"},
		Warmup:    2_000, Measure: 8_000,
	}
}

func testOptions() experiments.Options {
	return experiments.Options{Warmup: 2_000, Measure: 8_000}
}

// testNode is one worker daemon behind an HTTP server.
type testNode struct {
	id  string
	svc *service.Service
	wk  *Worker
	srv *httptest.Server
}

func startService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	if cfg.DefaultOptions.Warmup == 0 && cfg.DefaultOptions.Measure == 0 {
		cfg.DefaultOptions = testOptions()
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New(%s): %v", cfg.NodeID, err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc
}

// startWorker boots a worker daemon and serves its cluster endpoints. The
// optional wrap lets a test interpose failure injection between the
// network and the worker.
func startWorker(t *testing.T, id string, cfg service.Config, wrap func(http.Handler) http.Handler) *testNode {
	t.Helper()
	cfg.NodeID = id
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	svc := startService(t, cfg)
	wk := NewWorker(svc)
	h := wk.Handler(svc.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return &testNode{id: id, svc: svc, wk: wk, srv: srv}
}

// startCoordinator boots a coordinator daemon over the given workers and
// wires every worker's peer list, deterministically (no async pushes).
func startCoordinator(t *testing.T, id string, workers []*testNode) (*service.Service, *Coordinator) {
	t.Helper()
	coord := NewCoordinator()
	svc := startService(t, service.Config{
		NodeID:  id,
		Workers: 8, // dispatch concurrency; remote cells block on HTTP, not CPU
		Remote:  coord.Remote,
	})
	coord.BindCounters(svc.ClusterCounters())
	peers := make(map[string]string, len(workers))
	for _, w := range workers {
		peers[w.id] = w.srv.URL
	}
	for _, w := range workers {
		coord.AddNode(w.id, w.srv.URL)
		w.wk.SetPeers(peers)
	}
	return svc, coord
}

func waitJob(t *testing.T, j *service.Job) service.JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Status()
}

func submitAndWait(t *testing.T, svc *service.Service, spec service.CampaignSpec) service.JobStatus {
	t.Helper()
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitJob(t, job)
	if st.State != service.JobDone {
		t.Fatalf("job %s finished %s: %v", st.ID, st.State, st.Errors)
	}
	return st
}

// metricValue reads one integer metric from a daemon's /metrics text,
// summing across label sets (quantile series excluded).
func metricValue(t *testing.T, svc *service.Service, name string) uint64 {
	t.Helper()
	var sum uint64
	for _, ln := range strings.Split(svc.MetricsText(), "\n") {
		n, v, ok := strings.Cut(strings.TrimSpace(ln), " ")
		if !ok {
			continue
		}
		if base, labels, cut := strings.Cut(n, "{"); cut {
			if strings.Contains(labels, "quantile=") {
				continue
			}
			n = base
		}
		if n != name {
			continue
		}
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("metric %s: parsing %q: %v", name, v, err)
		}
		sum += x
	}
	return sum
}

func sims(t *testing.T, svc *service.Service) uint64 {
	return metricValue(t, svc, "pubsd_sims_executed_total")
}

// resultsJSON canonicalizes a job's results for byte-level comparison.
func resultsJSON(t *testing.T, st service.JobStatus) string {
	t.Helper()
	data, err := json.Marshal(st.Results)
	if err != nil {
		t.Fatalf("marshaling results: %v", err)
	}
	return string(data)
}

// TestClusterBitIdentityAndExactlyOnce is the differential contract: a
// campaign submitted to a 3-node cluster returns CellResults byte-identical
// to the same campaign on a single node, with each unique cell simulated
// exactly once cluster-wide — and a concurrent duplicate burst afterwards
// adds zero simulations anywhere.
func TestClusterBitIdentityAndExactlyOnce(t *testing.T) {
	spec := testSpec()
	cells := len(spec.Machines) * len(spec.Workloads)

	// Single-node reference.
	single := startService(t, service.Config{NodeID: "single", Workers: 1})
	refJSON := resultsJSON(t, submitAndWait(t, single, spec))

	// 3-worker cluster.
	workers := []*testNode{
		startWorker(t, "w1", service.Config{}, nil),
		startWorker(t, "w2", service.Config{}, nil),
		startWorker(t, "w3", service.Config{}, nil),
	}
	csvc, _ := startCoordinator(t, "coord", workers)
	gotJSON := resultsJSON(t, submitAndWait(t, csvc, spec))

	if gotJSON != refJSON {
		t.Errorf("cluster results differ from single-node run:\ncluster: %s\nsingle:  %s", gotJSON, refJSON)
	}
	var clusterSims uint64
	for _, w := range workers {
		clusterSims += sims(t, w.svc)
	}
	if clusterSims != uint64(cells) {
		t.Errorf("cluster executed %d simulations for %d unique cells", clusterSims, cells)
	}
	if got := sims(t, csvc); got != 0 {
		t.Errorf("coordinator simulated %d cells locally despite live workers", got)
	}
	if got := metricValue(t, csvc, "pubsd_cluster_remote_cells_total"); got != uint64(cells) {
		t.Errorf("coordinator dispatched %d remote cells, want %d", got, cells)
	}

	// Duplicate burst: the same campaign four more times, concurrently.
	// The coordinator's content-addressed cache and singleflight absorb all
	// of it — zero new simulations on any node.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		job, err := csvc.Submit(spec)
		if err != nil {
			t.Fatalf("duplicate submit: %v", err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); waitJob(t, job) }()
	}
	wg.Wait()
	var afterBurst uint64
	for _, w := range workers {
		afterBurst += sims(t, w.svc)
	}
	if afterBurst != clusterSims {
		t.Errorf("duplicate burst re-simulated: %d sims before, %d after", clusterSims, afterBurst)
	}
}

// TestClusterTwoTierPeerFetch checks the peer tier: after a campaign runs
// on a one-node cluster, a rerun on a cold coordinator over that node plus
// a fresh joiner completes with zero new simulations — the joiner's cells
// are answered by hash fetches from the node that already has them.
func TestClusterTwoTierPeerFetch(t *testing.T) {
	spec := testSpec()
	w1 := startWorker(t, "w1", service.Config{}, nil)
	c1, _ := startCoordinator(t, "coord1", []*testNode{w1})
	firstJSON := resultsJSON(t, submitAndWait(t, c1, spec))
	baseSims := sims(t, w1.svc)
	if baseSims == 0 {
		t.Fatal("first run executed no simulations")
	}

	// w2 joins cold; coordinator 2 is cold too, so nothing can answer from
	// a submit-level cache — only the cluster's two-tier store.
	w2 := startWorker(t, "w2", service.Config{}, nil)
	c2, _ := startCoordinator(t, "coord2", []*testNode{w1, w2})
	rerunJSON := resultsJSON(t, submitAndWait(t, c2, spec))

	if rerunJSON != firstJSON {
		t.Errorf("rerun over the grown ring is not bit-identical")
	}
	if got := sims(t, w1.svc); got != baseSims {
		t.Errorf("w1 re-simulated: %d sims, want %d", got, baseSims)
	}
	if got := sims(t, w2.svc); got != 0 {
		t.Errorf("w2 simulated %d cells that w1 already had", got)
	}
	peerHits := metricValue(t, w2.svc, "pubsd_cluster_peer_cache_hits_total")
	if peerHits == 0 {
		t.Error("no peer-cache hits: the joiner never fetched from its peer")
	}
	t.Logf("rerun: %d peer-cache hits on w2, 0 new simulations", peerHits)
}

// killableWorker wraps a worker's handler with a kill switch: once killed,
// new requests abort their connection and every established connection is
// severed (onKill), which is how a kill -9 looks from the coordinator's
// side — including for requests the worker was mid-way through serving.
type killableWorker struct {
	inner http.Handler
	dead  atomic.Bool

	mu     sync.Mutex
	onKill func()
}

func (k *killableWorker) setOnKill(f func()) {
	k.mu.Lock()
	k.onKill = f
	k.mu.Unlock()
}

func (k *killableWorker) kill() {
	k.dead.Store(true)
	k.mu.Lock()
	f := k.onKill
	k.mu.Unlock()
	if f != nil {
		f()
	}
}

func (k *killableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
}

// TestClusterFailover kills a worker mid-campaign and checks the re-shard
// path: the campaign still completes bit-identically to a single-node
// reference, the dead node leaves the ring, and — after the node restarts
// under its old identity with its old journal and checkpoint store — a
// cold rerun completes with zero new simulations anywhere: every cell is
// answered by a surviving peer's cache or the restarted node's durable
// store, never re-simulated.
func TestClusterFailover(t *testing.T) {
	spec := testSpec()
	single := startService(t, service.Config{NodeID: "single", Workers: 1})
	refJSON := resultsJSON(t, submitAndWait(t, single, spec))

	w1Dir := t.TempDir()
	w1Journal := t.TempDir()

	// w1 dies the moment it finishes its first cell: connections are
	// severed mid-flight (responses in flight may or may not land — both
	// happen in real failures) and every later request aborts. The kill is
	// synchronous with the first execute's completion: an asynchronous kill
	// raced against the remaining cells, and fast simulation (the idle-skip
	// bursts) let w1 finish its whole share before the kill landed, leaving
	// the ring intact.
	killer := &killableWorker{}
	wrap := func(inner http.Handler) http.Handler {
		var firstDone sync.Once
		killer.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(w, r)
			if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/execute") {
				firstDone.Do(killer.kill)
			}
		})
		return killer
	}
	w1 := startWorker(t, "w1", service.Config{CheckpointDir: w1Dir, JournalDir: w1Journal}, wrap)
	killer.setOnKill(w1.srv.CloseClientConnections)
	w2 := startWorker(t, "w2", service.Config{}, nil)
	csvc, coord := startCoordinator(t, "coord", []*testNode{w1, w2})

	st := submitAndWait(t, csvc, spec)
	if got := resultsJSON(t, st); got != refJSON {
		t.Errorf("post-failover results differ from single-node reference")
	}
	coord.mu.Lock()
	onRing := coord.ring.Has("w1")
	coord.mu.Unlock()
	if onRing {
		t.Fatal("dead worker still on the ring")
	}
	if got := metricValue(t, csvc, "pubsd_cluster_node_failures_total"); got == 0 {
		t.Error("coordinator recorded no node failures")
	}
	if got := metricValue(t, csvc, "pubsd_cluster_steals_total"); got == 0 {
		t.Error("no steals recorded: re-sharded cells should count as steals")
	}

	// "Restart" w1: drain the old process (its accepted single-cell jobs
	// finish and checkpoint), then boot a fresh daemon on the same node ID,
	// journal, and checkpoint store. The fresh daemon replays the journal;
	// every replayed job must answer from the checkpoint store, not by
	// re-simulating.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	_ = w1.svc.Shutdown(ctx)
	cancel()
	w1r := startWorker(t, "w1", service.Config{CheckpointDir: w1Dir, JournalDir: w1Journal}, nil)

	w2Sims := sims(t, w2.svc)
	c2, _ := startCoordinator(t, "coord2", []*testNode{w1r, w2})
	rerunJSON := resultsJSON(t, submitAndWait(t, c2, spec))
	if rerunJSON != refJSON {
		t.Errorf("post-restart rerun is not bit-identical")
	}
	if got := sims(t, w1r.svc); got != 0 {
		t.Errorf("restarted node re-simulated %d cells", got)
	}
	if got := sims(t, w2.svc); got != w2Sims {
		t.Errorf("survivor re-simulated: %d sims, had %d", got, w2Sims)
	}
	// The restarted node owns cells again, and it answered every one of
	// them without simulating: from its checkpoint store or a peer fetch.
	durable := metricValue(t, w1r.svc, "pubsd_runner_checkpoint_hits_total") +
		metricValue(t, w1r.svc, "pubsd_cluster_peer_cache_hits_total")
	if durable == 0 {
		t.Error("restarted node answered no cells from checkpoint or peer tiers")
	}
}

// TestClusterRestartServesFromCheckpoints isolates the durable tier: a
// lone worker runs a campaign, restarts, and a cold coordinator reruns the
// campaign with zero simulations — every cell answered by the checkpoint
// store the first run wrote, since there are no peers to fetch from.
func TestClusterRestartServesFromCheckpoints(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	cells := len(spec.Machines) * len(spec.Workloads)

	w := startWorker(t, "w1", service.Config{CheckpointDir: dir}, nil)
	c1, _ := startCoordinator(t, "coord1", []*testNode{w})
	firstJSON := resultsJSON(t, submitAndWait(t, c1, spec))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	_ = w.svc.Shutdown(ctx)
	cancel()
	wr := startWorker(t, "w1", service.Config{CheckpointDir: dir}, nil)
	c2, _ := startCoordinator(t, "coord2", []*testNode{wr})

	if got := resultsJSON(t, submitAndWait(t, c2, spec)); got != firstJSON {
		t.Errorf("checkpoint-served rerun is not bit-identical")
	}
	if got := sims(t, wr.svc); got != 0 {
		t.Errorf("restarted node re-simulated %d checkpointed cells", got)
	}
	if got := metricValue(t, wr.svc, "pubsd_runner_checkpoint_hits_total"); got != uint64(cells) {
		t.Errorf("checkpoint store answered %d cells, want %d", got, cells)
	}
}

// TestClusterSaturationSteals saturates one worker's admission control and
// checks that pushed-back cells execute on the other node instead of
// failing: the work-stealing path, observable as steals on the coordinator.
// w1's one-token tenant bucket makes the 429s deterministic — after its
// first acceptance, every further dispatch within the refill window is
// refused and must steal.
func TestClusterSaturationSteals(t *testing.T) {
	w1 := startWorker(t, "w1", service.Config{TenantRate: 0.05, TenantBurst: 1}, nil)
	w2 := startWorker(t, "w2", service.Config{}, nil)
	csvc, _ := startCoordinator(t, "coord", []*testNode{w1, w2})

	spec := testSpec()
	spec.Workloads = append(spec.Workloads, "parser", "compress", "hashmix", "stencil")
	st := submitAndWait(t, csvc, spec)
	cells := len(spec.Machines) * len(spec.Workloads)
	if len(st.Results) != cells {
		t.Fatalf("campaign returned %d results, want %d", len(st.Results), cells)
	}
	total := sims(t, w1.svc) + sims(t, w2.svc)
	if total != uint64(cells) {
		t.Errorf("%d simulations for %d unique cells", total, cells)
	}
	if steals := metricValue(t, csvc, "pubsd_cluster_steals_total"); steals == 0 {
		t.Error("no steals recorded off the rate-limited node")
	} else {
		t.Logf("%d cells stolen off the saturated node", steals)
	}
}

// TestJoinEndpoint covers the control plane: a worker joining over HTTP
// lands on the ring and receives the member map; the nodes listing agrees.
func TestJoinEndpoint(t *testing.T) {
	w1 := startWorker(t, "w1", service.Config{}, nil)
	csvc, coord := startCoordinator(t, "coord", []*testNode{w1})
	srv := httptest.NewServer(coord.Handler(csvc.Handler()))
	t.Cleanup(srv.Close)

	w2 := startWorker(t, "w2", service.Config{}, nil)
	peers, epoch, err := Join(context.Background(), http.DefaultClient, srv.URL, "w2", w2.srv.URL)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if epoch == 0 {
		t.Fatal("join response carried no membership epoch")
	}
	w2.wk.ApplyPeers(peers, epoch)
	if len(peers) != 2 || peers["w1"] == "" || peers["w2"] != w2.srv.URL {
		t.Fatalf("join returned wrong member map: %v", peers)
	}
	coord.mu.Lock()
	onRing := coord.ring.Has("w2")
	coord.mu.Unlock()
	if !onRing {
		t.Fatal("joined worker not on the ring")
	}

	resp, err := http.Get(srv.URL + "/v1/cluster/nodes")
	if err != nil {
		t.Fatalf("GET nodes: %v", err)
	}
	defer resp.Body.Close()
	var msg peersMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatalf("decoding nodes: %v", err)
	}
	if fmt.Sprint(msg.Peers) != fmt.Sprint(peers) {
		t.Errorf("nodes listing %v disagrees with join response %v", msg.Peers, peers)
	}
}
