package cluster

import (
	"encoding/json"
	"net/http"

	"repro/internal/service"
)

// The cluster wire protocol is HTTP/JSON, mounted under /v1/cluster/ next
// to the public pubsd API:
//
//	POST /v1/cluster/execute      coordinator -> worker: run one cell
//	POST /v1/cluster/sweep        coordinator -> worker: run one workload's
//	                              machine batch; streaming NDJSON response,
//	                              one sweepLine per cell as it completes
//	GET  /v1/cluster/result/{key} peer -> peer: cache-only fetch by hash
//	POST /v1/cluster/result       peer -> peer: proactive result replication
//	GET  /v1/cluster/plan/{key}   peer -> peer: cache-only serialized
//	                              sampling plan by plan key (?wait=1 long-
//	                              polls while the serving node is planning)
//	POST /v1/cluster/plan/{key}   peer -> peer: proactive plan replication
//	POST /v1/cluster/peers        coordinator -> worker: membership push
//	POST /v1/cluster/join         worker -> coordinator: announce self
//	GET  /v1/cluster/nodes        anyone -> coordinator: member map
//
// The execute body is a service.RemoteCell and every result payload is the
// service.CellResult schema — the same record the public API serves, which
// is what makes cluster bit-identity checkable byte for byte. Plan
// payloads are the sampling package's sealed envelope (sampling.EncodePlan):
// flate-compressed windows behind a SHA-256 content hash, so a corrupt or
// truncated plan is rejected at decode, never replayed.

// executeResponse is the 200 body of POST /v1/cluster/execute. Source says
// which cache tier answered: "cache" (the worker's own store), "peer" (a
// peer fetch by hash), "executed" (the worker's Submit path ran it — which
// may itself have been answered by the worker's memo or checkpoint without
// a fresh simulation), or "error". Simulation failures travel as Source
// "error" with Error set, still HTTP 200: the cell failed, the node did
// not, and the coordinator must not drop a healthy node over a bad spec.
type executeResponse struct {
	Result service.CellResult `json:"result,omitempty"`
	Source string             `json:"source"`
	Error  string             `json:"error,omitempty"`
}

// joinRequest is the body of POST /v1/cluster/join: a worker announcing
// its stable node ID and the base URL peers reach it at.
type joinRequest struct {
	Node string `json:"node"`
	URL  string `json:"url"`
}

// peersMsg carries the full member map (node ID -> base URL) plus the
// coordinator's membership epoch, a strictly increasing stamp workers use
// to discard snapshots delivered out of order (broadcasts are async, so two
// rapid joins can land reversed). The join response, the membership push,
// and the nodes listing all share it; epoch 0 means unversioned.
type peersMsg struct {
	Peers map[string]string `json:"peers"`
	Epoch uint64            `json:"epoch,omitempty"`
}

// sweepRequest is the body of POST /v1/cluster/sweep: every still-unresolved
// cell of one workload's machine sweep owned by the receiving node, plus the
// sampling-plan coordinates. PlanKey is the plan content address all cells
// share; Planner is the node ID the coordinator designated to pay the
// workload's one functional pass — the receiver plans immediately if that is
// itself, and otherwise long-polls the planner's plan endpoint before
// falling back to a local pass.
type sweepRequest struct {
	Cells   []service.RemoteCell `json:"cells"`
	PlanKey string               `json:"plan_key,omitempty"`
	Planner string               `json:"planner,omitempty"`
}

// sweepLine is one NDJSON line of the sweep response: executeResponse plus
// the content key it settles, written as the cell completes.
type sweepLine struct {
	Key    string             `json:"key"`
	Result service.CellResult `json:"result,omitempty"`
	Source string             `json:"source"`
	Error  string             `json:"error,omitempty"`
}

// maxWireBytes bounds every cluster request body; a RemoteCell is a few
// hundred bytes and a member map a few KB. Serialized sampling plans are
// the exception — dirty pages plus ~17 B/instruction of predecoded trace —
// and get their own, far larger bound.
const (
	maxWireBytes     = 1 << 20
	maxPlanWireBytes = 1 << 28
)

type wireError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, wireError{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxWireBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
