package pipeline

// Hot-path allocation regression gates. The per-cycle invariant is:
// after warm-up, one simulated cycle performs zero heap allocations —
// grant buffers, ring buffers, and profile tables are all reused. These
// tests pin that invariant so a future change cannot silently reintroduce
// a per-cycle allocation (the pre-rewrite code allocated select closures
// and grant slices every cycle and leaked store-buffer capacity on every
// drain).

import (
	"fmt"
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

// loopStream replays a recorded dynamic-instruction window forever,
// rewriting sequence numbers so program-order ages stay monotone. It never
// allocates, isolating the pipeline's own cycle loop from the emulator.
type loopStream struct {
	buf []emu.DynInst
	i   int
	seq uint64
}

func (l *loopStream) Next() (emu.DynInst, bool) {
	di := l.buf[l.i]
	l.i++
	if l.i == len(l.buf) {
		l.i = 0
	}
	l.seq++
	di.Seq = l.seq
	return di, true
}

// recordStream captures the first n committed-order instructions of a
// workload.
func recordStream(t *testing.T, name string, n int) *loopStream {
	t.Helper()
	ls, err := recordStreamRaw(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func recordStreamRaw(name string, n int) (*loopStream, error) {
	m, err := emu.New(workload.MustProgram(name))
	if err != nil {
		return nil, err
	}
	buf := make([]emu.DynInst, 0, n)
	for len(buf) < n {
		di, ok := m.Step()
		if !ok {
			return nil, fmt.Errorf("workload %s ended after %d instructions", name, len(buf))
		}
		buf = append(buf, di)
	}
	return &loopStream{buf: buf}, nil
}

// stepCycle replicates one iteration of the Run cycle loop (without the
// termination and watchdog bookkeeping, which do not allocate).
func stepCycle(s *Sim) {
	s.commit()
	s.issue()
	s.drainStores()
	s.dispatch()
	s.decodeWrongPath()
	s.fetch()
	if s.occHist != nil {
		s.occHist.Add(s.q.Occupancy())
	}
	s.now++
}

// TestSteadyStateZeroAllocsPerCycle: after warm-up, the whole per-cycle
// loop — fetch, dispatch, IQ select, execute scheduling, store drain,
// commit — must not touch the heap, for the base machine, PUBS, the
// age-matrix select, and the distributed queue complex.
func TestSteadyStateZeroAllocsPerCycle(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"base", BaseConfig()},
		{"pubs", PUBSConfig()},
		{"pubs-age", func() Config { c := PUBSConfig(); c.AgeMatrix = true; return c }()},
		{"pubs-distributed", func() Config { c := PUBSConfig(); c.DistributedIQ = true; return c }()},
		{"pubs-flexible", func() Config { c := PUBSConfig(); c.PUBS.FlexibleSelect = true; return c }()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.stream = recordStream(t, "chess", 4096)
			for i := 0; i < 50_000; i++ {
				stepCycle(s) // warm caches, tables, and buffer capacities
			}
			allocs := testing.AllocsPerRun(20, func() {
				for i := 0; i < 1_000; i++ {
					stepCycle(s)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %.1f allocations per 1000 steady-state cycles, want 0", tc.name, allocs)
			}
		})
	}
}

// TestStoreBufferFillDrainNoAllocs: repeated fill/drain of the store buffer
// must not allocate or lose capacity. The pre-ring implementation re-sliced
// from the head on every drain and reset with [:0:cap], so the usable
// capacity shrank monotonically and steady state reallocated on refill.
func TestStoreBufferFillDrainNoAllocs(t *testing.T) {
	s, err := New(BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	cap := len(s.storeBuf)
	if cap != BaseConfig().StoreBufferSize {
		t.Fatalf("store buffer sized %d, want %d", cap, BaseConfig().StoreBufferSize)
	}
	fillDrain := func() {
		for s.sbLen < cap {
			s.storeBuf[(s.sbHead+s.sbLen)%cap] = uint64(s.sbLen) * 64
			s.sbLen++
		}
		for s.sbLen > 0 {
			before := s.sbLen
			s.drainStores()
			s.now++
			if s.sbLen >= before {
				t.Fatal("drain made no progress")
			}
		}
	}
	fillDrain() // warm the D-cache MSHR capacity
	if allocs := testing.AllocsPerRun(100, fillDrain); allocs != 0 {
		t.Errorf("%.1f allocations per fill/drain round, want 0", allocs)
	}
	if len(s.storeBuf) != cap {
		t.Errorf("store buffer capacity shrank to %d (was %d)", len(s.storeBuf), cap)
	}
}

// TestNonProfileResetNilBranchProfile: without Config.Profile, the branch
// profile is never allocated; the warm-up reset and the result path must
// tolerate the nil table instead of panicking or materialising one.
func TestNonProfileResetNilBranchProfile(t *testing.T) {
	cfg := BaseConfig()
	cfg.Profile = false
	res := runBench(t, cfg, "chess", 5_000, 10_000) // warmup > 0 forces a mid-run reset
	if res.TopBranches != nil {
		t.Errorf("non-profile run produced TopBranches %v", res.TopBranches)
	}
	if res.IQOccupancy != nil {
		t.Errorf("non-profile run produced an occupancy histogram")
	}
	var nilProf *branchProfile
	nilProf.reset() // must not panic
	if got := nilProf.top(10); got != nil {
		t.Errorf("nil profile top() = %v, want nil", got)
	}
}

// TestProfileResetReusesTables: with Config.Profile, the warm-up reset
// keeps the profiling structures but clears their contents, and the
// measurement window still reports only post-reset branches.
func TestProfileResetReusesTables(t *testing.T) {
	cfg := PUBSConfig()
	cfg.Profile = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	histBefore, profBefore := s.occHist, s.brProf
	res, err := s.Run(Stream{M: mustMachine(t, "chess")}, 5_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.occHist != histBefore || s.brProf != profBefore {
		t.Error("profile reset reallocated the profiling structures")
	}
	if res.IQOccupancy.Total() != uint64(res.Cycles) {
		t.Errorf("histogram holds %d observations over %d measured cycles — warm-up samples leaked in",
			res.IQOccupancy.Total(), res.Cycles)
	}
	var executed uint64
	for _, bs := range res.TopBranches {
		executed += bs.Executed
	}
	if executed == 0 {
		t.Error("profile reset lost the measurement-window branch stats")
	}
	if executed > res.CondBranches {
		t.Errorf("top branches executed %d > %d measured conditional branches — warm-up stats leaked in",
			executed, res.CondBranches)
	}
}

func mustMachine(t *testing.T, name string) *emu.Machine {
	t.Helper()
	m, err := emu.New(workload.MustProgram(name))
	if err != nil {
		t.Fatal(err)
	}
	return m
}
