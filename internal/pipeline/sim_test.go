package pipeline

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/workload"
)

func runBench(t testing.TB, cfg Config, name string, warmup, measure uint64) Result {
	t.Helper()
	res, err := RunProgram(cfg, workload.MustProgram(name), warmup, measure)
	if err != nil {
		t.Fatalf("%s on %s: %v", cfg.Name, name, err)
	}
	return res
}

// TestBaseRunsAllWorkloads: the base machine simulates every benchmark and
// produces sane IPC (0 < IPC ≤ issue width).
func TestBaseRunsAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res := runBench(t, BaseConfig(), w.Name, 50_000, 150_000)
			if res.IPC() <= 0 || res.IPC() > 4 {
				t.Errorf("IPC %f out of range", res.IPC())
			}
			t.Logf("IPC=%.3f brMPKI=%.1f llcMPKI=%.2f mispred=%.1f%%",
				res.IPC(), res.BranchMPKI(), res.LLCMPKI(), res.MispredictRate()*100)
		})
	}
}

// TestHaltTerminates: a program that halts ends the simulation cleanly.
func TestHaltTerminates(t *testing.T) {
	b := asm.New("halting")
	r2 := isa.R(2)
	b.Li(r2, 5)
	b.Label("loop")
	b.Addi(r2, r2, -1)
	b.Bne(r2, isa.RZero, "loop")
	b.Halt()
	p := b.MustBuild()
	res, err := RunProgram(BaseConfig(), p, 0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 12 { // 1 li + 5×(addi+bne) + halt
		t.Errorf("committed %d instructions, want 12", res.Committed)
	}
}

// TestDependentChainLatency: a dependent add chain must sustain ≈1 IPC
// (back-to-back wakeup/select), measured with warm caches and predictors.
func TestDependentChainLatency(t *testing.T) {
	b := asm.New("chain")
	r2 := isa.R(2)
	b.Label("top")
	for i := 0; i < 100; i++ {
		b.Addi(r2, r2, 1)
	}
	b.Jmp("top")
	p := b.MustBuild()
	const n = 5000
	res, err := RunProgram(BaseConfig(), p, 2_000, n)
	if err != nil {
		t.Fatal(err)
	}
	adds := int64(n) * 100 / 101 // one jmp per 100 adds
	if res.Cycles < adds {
		t.Errorf("dependent chain: %d committed in %d cycles — faster than 1/cycle", n, res.Cycles)
	}
	if res.Cycles > adds+adds/5 {
		t.Errorf("dependent chain took %d cycles for ~%d chained adds — wakeup is not back-to-back", res.Cycles, adds)
	}
}

// TestIndependentOpsReachWidth: independent work must exploit the machine
// width (2 iALUs limit integer throughput).
func TestIndependentOpsReachWidth(t *testing.T) {
	b := asm.New("ilp")
	// Four independent accumulator chains.
	b.Label("top")
	for i := 0; i < 25; i++ {
		b.Addi(isa.R(2), isa.R(2), 1)
		b.Addi(isa.R(3), isa.R(3), 1)
		b.Addi(isa.R(4), isa.R(4), 1)
		b.Addi(isa.R(5), isa.R(5), 1)
	}
	b.Jmp("top")
	p := b.MustBuild()
	res, err := RunProgram(BaseConfig(), p, 10_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// 2 iALUs bound integer IPC near 2 (jmp is free).
	if res.IPC() < 1.5 {
		t.Errorf("independent-op IPC %.2f; expected ≈2 (iALU bound)", res.IPC())
	}
	if res.IPC() > 2.2 {
		t.Errorf("independent-op IPC %.2f exceeds the 2-iALU limit", res.IPC())
	}
}

// TestMispredictionPenaltyVisible: a hard random branch must cost cycles —
// IPC with hard branches must be well below the same code with a
// predictable branch.
func TestMispredictionPenaltyVisible(t *testing.T) {
	build := func(hard bool) *isa.Program {
		b := asm.New("br")
		base := isa.R(2)
		st, t0, c := isa.R(3), isa.R(4), isa.R(5)
		acc := isa.R(6)
		tbl := b.Words(func() []uint64 {
			out := make([]uint64, 4096)
			s := uint64(12345)
			for i := range out {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				out[i] = s
			}
			return out
		}()...)
		b.Li(base, int64(tbl))
		b.Li(st, 99)
		b.Label("top")
		b.Addi(st, st, 8)
		b.Andi(t0, st, 4095*8)
		b.Add(t0, t0, base)
		b.Ld(c, t0, 0)
		if hard {
			b.Andi(c, c, 1)
		} else {
			b.Li(c, 1)
		}
		b.Bne(c, isa.RZero, "taken")
		b.Addi(acc, acc, 1)
		b.Jmp("top")
		b.Label("taken")
		b.Addi(acc, acc, 3)
		b.Jmp("top")
		return b.MustBuild()
	}
	easy, err := RunProgram(BaseConfig(), build(false), 20_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := RunProgram(BaseConfig(), build(true), 20_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if easy.MispredictRate() > 0.05 {
		t.Errorf("predictable branch mispredicted %.1f%%", easy.MispredictRate()*100)
	}
	if hard.MispredictRate() < 0.3 {
		t.Errorf("random branch mispredicted only %.1f%%", hard.MispredictRate()*100)
	}
	if hard.IPC() >= easy.IPC() {
		t.Errorf("misprediction has no cost: hard IPC %.2f ≥ easy IPC %.2f", hard.IPC(), easy.IPC())
	}
	if hard.MisspecPenaltyCycles == 0 {
		t.Error("misspeculation penalty not accounted")
	}
}

// TestPUBSRunsAndHelps: PUBS must run and not slow down a D-BP workload.
func TestPUBSRunsAndHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := runBench(t, BaseConfig(), "chess", 50_000, 200_000)
	pubs := runBench(t, PUBSConfig(), "chess", 50_000, 200_000)
	t.Logf("base IPC=%.3f pubs IPC=%.3f speedup=%.2f%%",
		base.IPC(), pubs.IPC(), (pubs.IPC()/base.IPC()-1)*100)
	if pubs.IPC() < base.IPC()*0.99 {
		t.Errorf("PUBS slowed chess down: %.3f vs %.3f", pubs.IPC(), base.IPC())
	}
	if pubs.UnconfBranches == 0 {
		t.Error("PUBS saw no unconfident branches on a D-BP workload")
	}
	if pubs.UnconfSliceInsts == 0 {
		t.Error("PUBS identified no slice instructions")
	}
}

// TestConfigValidation exercises Validate error paths.
func TestConfigValidation(t *testing.T) {
	good := BaseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	bad := BaseConfig()
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = PUBSConfig()
	bad.PUBS.PriorityEntries = bad.IQSize
	if err := bad.Validate(); err == nil {
		t.Error("priority entries == IQ size accepted")
	}
}

// TestScaledConfigs: all four processor sizes validate and run.
func TestScaledConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, sz := range Sizes() {
		cfg := ScaledConfig(sz)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%v: %v", sz, err)
		}
		res := runBench(t, cfg, "parser", 20_000, 50_000)
		if res.IPC() <= 0 {
			t.Errorf("%v: IPC %f", sz, res.IPC())
		}
	}
}

// TestDeterministicRuns: identical configs produce identical cycle counts.
func TestDeterministicRuns(t *testing.T) {
	a := runBench(t, PUBSConfig(), "goplay", 20_000, 60_000)
	b := runBench(t, PUBSConfig(), "goplay", 20_000, 60_000)
	if a.Cycles != b.Cycles || a.Mispredicts != b.Mispredicts {
		t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/mispredicts",
			a.Cycles, a.Mispredicts, b.Cycles, b.Mispredicts)
	}
}
