package pipeline

// Golden-equivalence gate for the hot-path rewrite: every issue-queue
// organisation and PUBS mode must produce bit-identical measurement
// statistics before and after any optimisation of the per-cycle loop.
// The table below was generated against the pre-rewrite implementation
// (selection-sort IQ select, slice-drained store buffer, map-based branch
// profile); regenerate it only for an intentional model change:
//
//	PIPELINE_GOLDEN_GEN=1 go test -run TestGoldenEquivalence -v ./internal/pipeline

import (
	"fmt"
	"hash/fnv"
	"os"
	"reflect"
	"testing"

	"repro/internal/iq"
)

type goldenCase struct {
	name     string
	workload string
	cfg      Config
}

func goldenCases() []goldenCase {
	kind := func(k iq.Kind, name string) Config {
		cfg := BaseConfig()
		cfg.Name = name
		cfg.IQKind = k
		return cfg
	}
	pubs := func(name string, mutate func(*Config)) Config {
		cfg := PUBSConfig()
		cfg.Name = name
		mutate(&cfg)
		return cfg
	}
	age := BaseConfig()
	age.Name = "age"
	age.AgeMatrix = true
	profile := PUBSConfig()
	profile.Name = "profile"
	profile.Profile = true
	wrongPath := PUBSConfig()
	wrongPath.Name = "wrongpath"
	wrongPath.WrongPathDecode = true
	return []goldenCase{
		{"base-random", "chess", kind(iq.Random, "base-random")},
		{"base-shifting", "chess", kind(iq.Shifting, "base-shifting")},
		{"base-circular", "chess", kind(iq.Circular, "base-circular")},
		{"base-age", "chess", age},
		{"pubs-stall", "chess", pubs("pubs-stall", func(*Config) {})},
		{"pubs-goplay", "goplay", pubs("pubs-goplay", func(*Config) {})},
		{"pubs-nostall", "chess", pubs("pubs-nostall", func(c *Config) { c.PUBS.StallDispatch = false })},
		{"pubs-noswitch", "chess", pubs("pubs-noswitch", func(c *Config) { c.PUBS.ModeSwitch = false })},
		{"pubs-flexible", "chess", pubs("pubs-flexible", func(c *Config) { c.PUBS.FlexibleSelect = true })},
		{"pubs-blind", "chess", pubs("pubs-blind", func(c *Config) { c.PUBS.Blind = true })},
		{"pubs-age", "chess", pubs("pubs-age", func(c *Config) { c.AgeMatrix = true })},
		{"pubs-distributed", "chess", pubs("pubs-distributed", func(c *Config) { c.DistributedIQ = true })},
		{"pubs-profile", "chess", profile},
		{"pubs-wrongpath", "chess", wrongPath},
	}
}

// goldenFingerprint folds every measurement statistic of a Result — the
// counter block, the per-level cache stats, and (when profiled) the
// occupancy histogram and branch profile — into one FNV-1a hash.
func goldenFingerprint(res Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%+v|%+v|%+v", res.Sim, res.L1I, res.L1D, res.L2)
	if res.IQOccupancy != nil {
		fmt.Fprintf(h, "|%v|%d|%d", res.IQOccupancy.Buckets, res.IQOccupancy.Total(), res.IQOccupancy.Overflow())
	}
	fmt.Fprintf(h, "|%+v", res.TopBranches)
	return h.Sum64()
}

type goldenValue struct {
	cycles      int64
	fingerprint uint64
}

// goldenTable: generated against the pre-rewrite implementation (see the
// file comment). Keys match goldenCases names.
var goldenTable = map[string]goldenValue{
	"base-random":      {13014, 0xf57fe0680296931e},
	"base-shifting":    {14964, 0xd94858769fd59d17},
	"base-circular":    {13962, 0xb687630d13644595},
	"base-age":         {13839, 0xc5957c452a874893},
	"pubs-stall":       {12408, 0x2727bd86541bb049},
	"pubs-goplay":      {11679, 0x804b3c08c50358f0},
	"pubs-nostall":     {12448, 0x2bf6f4369cb5e8de},
	"pubs-noswitch":    {12408, 0xf53ebd3de8d4c48f},
	"pubs-flexible":    {12327, 0x95c852206d6c1880},
	"pubs-blind":       {12418, 0x1aad6a3d0deda672},
	"pubs-age":         {12097, 0xce710d1d20da7233},
	"pubs-distributed": {14609, 0x20c22eb57d2619e9},
	"pubs-profile":     {12408, 0x965d315b8a32f082},
	"pubs-wrongpath":   {12389, 0xd6ac6d1dda342ad9},
}

const goldenWarmup, goldenMeasure = 5_000, 20_000

func TestGoldenEquivalence(t *testing.T) {
	gen := os.Getenv("PIPELINE_GOLDEN_GEN") != ""
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			res := runBench(t, gc.cfg, gc.workload, goldenWarmup, goldenMeasure)
			fp := goldenFingerprint(res)
			if gen {
				fmt.Printf("\t%q: {%d, 0x%x},\n", gc.name, res.Cycles, fp)
				return
			}
			want, ok := goldenTable[gc.name]
			if !ok {
				t.Fatalf("no golden entry for %s; regenerate with PIPELINE_GOLDEN_GEN=1", gc.name)
			}
			if res.Cycles != want.cycles || fp != want.fingerprint {
				t.Errorf("%s: cycles=%d fingerprint=0x%x, want cycles=%d fingerprint=0x%x — "+
					"hot-path change altered simulation results", gc.name, res.Cycles, fp, want.cycles, want.fingerprint)
			}
		})
	}
}

// TestResultBitIdentical: two runs with identical Config, workload, and
// seeds must agree on the entire Result, including profile instrumentation —
// the determinism contract the checkpoint/resume machinery depends on.
func TestResultBitIdentical(t *testing.T) {
	cfg := PUBSConfig()
	cfg.Profile = true
	a := runBench(t, cfg, "goplay", goldenWarmup, goldenMeasure)
	b := runBench(t, cfg, "goplay", goldenWarmup, goldenMeasure)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical runs diverged:\n  a: %+v\n  b: %+v", a, b)
	}
}
