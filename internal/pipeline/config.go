// Package pipeline implements the cycle-level out-of-order superscalar core
// that ties the substrates together: front end (I-cache, perceptron
// predictor, BTB, RAS), rename/dispatch with the PUBS decode-time slice
// tables, the issue queue with priority entries, function units, the
// load/store queue with forwarding, the cache hierarchy with a stream
// prefetcher, and in-order commit. The modelled machine follows the paper's
// Table I; §V-H's scaled processor models are provided for Fig. 16.
package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/iq"
	"repro/internal/simerr"
)

// Config describes one simulated processor.
type Config struct {
	Name string

	// Widths (Table I: 4-wide fetch, decode, issue, and commit).
	FetchWidth  int
	IssueWidth  int
	CommitWidth int

	// FrontEndDepth is the number of cycles between fetch and the earliest
	// dispatch of an instruction — the front-end pipeline the mispredicted
	// branch of Fig. 1 flows down.
	FrontEndDepth int64

	// Window structures.
	ROBSize int // Table I: 128
	IQSize  int // Table I: 64
	LSQSize int // Table I: 64

	// Physical registers (Table I: 128 int + 128 fp). 32 of each back the
	// architectural state, so in-flight destinations are bounded by
	// PhysIntRegs-32 and PhysFPRegs-32.
	PhysIntRegs int
	PhysFPRegs  int

	// Function units (Table I / Cortex-A72: 2 iALU, 1 iMULT/DIV, 2 Ld/St,
	// 2 FPU).
	NumIntALU    int
	NumIntMulDiv int
	NumLdSt      int
	NumFPU       int

	// Branch handling.
	Bpred           bpred.Config
	BTBSets         int // Table I: 2K sets
	BTBWays         int // Table I: 4-way
	RASDepth        int
	RecoveryPenalty int64 // Table I: 10-cycle state recovery
	BTBMissPenalty  int64 // decode-time redirect bubble on a taken BTB miss

	// Issue queue organisation.
	IQKind    iq.Kind
	AgeMatrix bool
	// DistributedIQ splits the unified queue into one queue per
	// function-unit pool (§III-C2, AMD Zen style), dividing capacity and
	// priority entries across them.
	DistributedIQ bool

	// PUBS (the paper's scheme; Enable=false gives the base machine).
	PUBS core.Config

	// Memory hierarchy.
	L1I        cache.Config
	L1D        cache.Config
	L2         cache.Config
	MemLatency int64 // Table I: 300-cycle minimum
	MemBW      int64 // Table I: 8 B/cycle
	Prefetch   bool  // stream prefetcher into L2

	StoreBufferSize int

	// Profile enables per-run analysis instrumentation: an IQ-occupancy
	// histogram sampled every cycle and a per-PC branch misprediction
	// profile. Off by default (costs ~10% simulation speed).
	Profile bool

	// WrongPathDecode models the pollution of the PUBS tables by wrong-path
	// instructions: while fetch is blocked on a mispredicted branch, the
	// decode stage keeps walking the *wrong* static path (fall-through on
	// conditionals, targets on direct jumps) and updates def_tab and
	// brslice_tab with what it sees, exactly as real hardware would before
	// the squash. Requires the static code (RunProgram provides it);
	// ignored on raw streams. Default off — the ablation quantifies that
	// the correct-path-only simplification is second-order.
	WrongPathDecode bool

	// NoIdleSkip disables event-driven idle-cycle skipping and polls every
	// structure every cycle, the pre-skip behaviour. The default (false,
	// skip enabled) fast-forwards across provably quiescent spans — fetch
	// drained or redirecting, no selectable instruction, store buffer
	// waiting on a port — directly to the next wakeup event (a cache-miss
	// completion, a function-unit writeback, a redirect arrival, a
	// front-end pipeline arrival). Skipping is bit-identical by
	// construction: a span is only skipped when the just-simulated cycle
	// mutated nothing, and the per-cycle accumulators that do tick during
	// stalls (dispatch-stall counters, the weighted-dispatch RNG, the
	// profile occupancy histogram) are integrated over the span. The flag
	// is result-neutral and excluded from memoization/checkpoint keys;
	// it exists for differential testing and for measuring the win
	// (BENCH_6). See DESIGN.md §14.
	NoIdleSkip bool

	// NoBurstSkip disables the phase-2 quasi-null bursts (fetch-drain and
	// commit-run spans, burst.go) while keeping the phase-1 null-cycle
	// skip, reproducing PR-7 scheduling exactly. Like NoIdleSkip it is
	// result-neutral — bursting simulates the active stage's real
	// mutations and integrates the frozen stages' ticks, so burst on and
	// burst off are bit-identical — and it is excluded from
	// memoization/checkpoint keys. It exists for differential testing and
	// for the BENCH_8 phase-2-vs-phase-1 comparison. Implied by
	// NoIdleSkip (bursts are part of the skip machinery).
	NoBurstSkip bool

	// WatchdogCycles is the liveness budget: a run that commits nothing for
	// this many consecutive polled (non-skipped) cycles is declared
	// deadlocked and aborted with a DeadlockError (wrapping
	// simerr.ErrDeadlock) carrying an occupancy dump. Idle-skipped spans
	// do not count against the budget: a skip is only taken when the next
	// wakeup event is known, which is a proof of progress, not a hang.
	// 0 selects DefaultWatchdogCycles; negative disables the watchdog
	// entirely.
	WatchdogCycles int64

	// Checks enables the structural invariant sweep: every
	// checkInterval cycles the issue queue, ROB, LSQ, and PUBS tables are
	// audited (entry counts within capacity, priority-entry usage within
	// the configured reservation, table pointers within their index/tag
	// ranges). A violation aborts the run with an error wrapping
	// simerr.ErrInvariant. Off by default; costs a few percent.
	Checks bool
}

// DefaultWatchdogCycles is the liveness budget used when
// Config.WatchdogCycles is zero. No modelled machine goes anywhere near
// this long without committing unless its scheduler has genuinely wedged.
const DefaultWatchdogCycles = 500_000

// BaseConfig returns the paper's base processor (Table I) with PUBS
// disabled: the "base" every speedup is measured against.
func BaseConfig() Config {
	return Config{
		Name:          "base",
		FetchWidth:    4,
		IssueWidth:    4,
		CommitWidth:   4,
		FrontEndDepth: 4,
		ROBSize:       128,
		IQSize:        64,
		LSQSize:       64,
		PhysIntRegs:   128,
		PhysFPRegs:    128,
		NumIntALU:     2,
		NumIntMulDiv:  1,
		NumLdSt:       2,
		NumFPU:        2,

		Bpred:           bpred.Default(),
		BTBSets:         2048,
		BTBWays:         4,
		RASDepth:        16,
		RecoveryPenalty: 10,
		BTBMissPenalty:  3,

		IQKind:    iq.Random,
		AgeMatrix: false,
		PUBS:      core.Config{Enable: false},

		L1I:        cache.Config{Name: "L1I", Sets: 64, Ways: 8, LineBytes: 64, HitLat: 0, MSHRs: 4},
		L1D:        cache.Config{Name: "L1D", Sets: 64, Ways: 8, LineBytes: 64, HitLat: 2, MSHRs: 8},
		L2:         cache.Config{Name: "L2", Sets: 2048, Ways: 16, LineBytes: 64, HitLat: 12, MSHRs: 16},
		MemLatency: 300,
		MemBW:      8,
		Prefetch:   true,

		StoreBufferSize: 8,
	}
}

// PUBSConfig returns the paper's full PUBS machine: the base processor plus
// the default Table II PUBS parameters.
func PUBSConfig() Config {
	c := BaseConfig()
	c.Name = "pubs"
	c.PUBS = core.DefaultConfig()
	return c
}

// Size selects one of the Fig. 16 processor models.
type Size int

// Processor sizes for the §V-H sensitivity study. Seven parameters scale;
// everything else keeps its default value.
const (
	Small Size = iota
	Medium
	Large
	Huge
)

func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	case Huge:
		return "huge"
	default:
		return fmt.Sprintf("size(%d)", int(s))
	}
}

// Sizes lists the four models in ascending order.
func Sizes() []Size { return []Size{Small, Medium, Large, Huge} }

// ScaledConfig returns the base machine scaled to the given model (Table IV
// analogue): width, IQ, LSQ, ROB, physical registers, and function units.
func ScaledConfig(s Size) Config {
	c := BaseConfig()
	switch s {
	case Small:
		c.FetchWidth, c.IssueWidth, c.CommitWidth = 2, 2, 2
		c.IQSize, c.LSQSize, c.ROBSize = 32, 32, 64
		c.PhysIntRegs, c.PhysFPRegs = 64, 64
		c.NumIntALU, c.NumIntMulDiv, c.NumLdSt, c.NumFPU = 1, 1, 1, 1
	case Medium:
		// The default.
	case Large:
		c.FetchWidth, c.IssueWidth, c.CommitWidth = 6, 6, 6
		c.IQSize, c.LSQSize, c.ROBSize = 128, 128, 256
		c.PhysIntRegs, c.PhysFPRegs = 256, 256
		c.NumIntALU, c.NumIntMulDiv, c.NumLdSt, c.NumFPU = 3, 2, 3, 3
	case Huge:
		c.FetchWidth, c.IssueWidth, c.CommitWidth = 8, 8, 8
		c.IQSize, c.LSQSize, c.ROBSize = 256, 256, 512
		c.PhysIntRegs, c.PhysFPRegs = 512, 512
		c.NumIntALU, c.NumIntMulDiv, c.NumLdSt, c.NumFPU = 4, 2, 4, 4
	default:
		panic(fmt.Sprintf("pipeline: unknown size %d", s))
	}
	c.Name = "base-" + s.String()
	return c
}

// Validate checks structural consistency. Every rejection wraps
// simerr.ErrInvalidConfig so campaign code can classify it with errors.Is.
func (c Config) Validate() error {
	invalid := func(format string, args ...any) error {
		return fmt.Errorf("%w: pipeline %s: %s", simerr.ErrInvalidConfig, c.Name, fmt.Sprintf(format, args...))
	}
	switch {
	case c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return invalid("widths must be positive")
	case c.FrontEndDepth < 1:
		return invalid("front-end depth must be ≥ 1")
	case c.ROBSize <= 0 || c.IQSize <= 0 || c.LSQSize <= 0:
		return invalid("window sizes must be positive")
	case c.PhysIntRegs < 32 || c.PhysFPRegs < 32:
		return invalid("need at least 32 physical registers per file")
	case c.NumIntALU <= 0 || c.NumIntMulDiv <= 0 || c.NumLdSt <= 0 || c.NumFPU <= 0:
		return invalid("need at least one unit of each class")
	case c.PUBS.Enable && !c.PUBS.FlexibleSelect && c.PUBS.PriorityEntries >= c.IQSize:
		return invalid("priority entries (%d) must leave normal entries in a %d-entry IQ",
			c.PUBS.PriorityEntries, c.IQSize)
	case c.PUBS.Enable && c.IQKind != iq.Random:
		return invalid("PUBS requires the random queue")
	case c.DistributedIQ && c.IQKind != iq.Random:
		return invalid("the distributed IQ uses random queues")
	case c.DistributedIQ && c.PUBS.Enable && c.PUBS.FlexibleSelect:
		return invalid("flexible select is modelled for the unified IQ only")
	case c.StoreBufferSize <= 0:
		return invalid("store buffer must be positive")
	}
	if err := c.PUBS.Validate(); err != nil {
		return fmt.Errorf("pipeline %s: %w", c.Name, err)
	}
	return nil
}
