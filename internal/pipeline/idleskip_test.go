package pipeline

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestGoldenEquivalenceSkipOff: the poll-mode loop (NoIdleSkip) must still
// reproduce the golden table for every machine variant. Together with
// TestGoldenEquivalence (which runs the skipping default) this pins both
// modes to the same pre-rewrite fingerprints — the bit-identity contract of
// DESIGN.md §14.
func TestGoldenEquivalenceSkipOff(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			cfg := gc.cfg
			cfg.NoIdleSkip = true
			res := runBench(t, cfg, gc.workload, goldenWarmup, goldenMeasure)
			fp := goldenFingerprint(res)
			want, ok := goldenTable[gc.name]
			if !ok {
				t.Fatalf("no golden entry for %s", gc.name)
			}
			if res.Cycles != want.cycles || fp != want.fingerprint {
				t.Errorf("%s: poll mode cycles=%d fingerprint=0x%x, want cycles=%d fingerprint=0x%x — "+
					"idle skipping and polling disagree", gc.name, res.Cycles, fp, want.cycles, want.fingerprint)
			}
		})
	}
}

// TestTraceReplaySkipEquivalence: on the trace-driven front end, a skipping
// run must equal a poll-mode run bit for bit. The replay path exercises
// fetch-queue aging and redirect thresholds differently from live decode,
// so it gets its own differential.
func TestTraceReplaySkipEquivalence(t *testing.T) {
	const slack = 2048
	for _, gc := range []goldenCase{
		{"base-random", "chess", BaseConfig()},
		{"pubs-goplay", "goplay", PUBSConfig()},
	} {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			prog := workload.MustProgram(gc.workload)
			m := emu.MustNew(prog)
			n := goldenWarmup + goldenMeasure + slack
			pre := emu.NewPredecode(n)
			for i := 0; i < n; i++ {
				di, ok := m.Step()
				if !ok {
					break
				}
				pre.Append(di)
			}
			dec := emu.NewStaticDecode(prog.Code)

			run := func(poll bool) Result {
				cfg := gc.cfg
				cfg.NoIdleSkip = poll
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.SetStaticCode(prog.Code)
				rp := &Replay{
					Pre:    pre,
					Decode: dec,
					Fallback: func() (InstStream, error) {
						fm := emu.MustNew(prog)
						fm.Run(uint64(pre.Len()))
						return Stream{M: fm}, nil
					},
				}
				res, err := s.Run(rp, goldenWarmup, goldenMeasure)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			skip, poll := run(false), run(true)
			if !reflect.DeepEqual(skip, poll) {
				t.Errorf("%s: trace replay diverged between skip and poll:\n skip: %+v\n poll: %+v",
					gc.name, skip, poll)
			}
		})
	}
}

// skipPropRNG is the xorshift64* generator of the sampling property test
// (math/rand is deliberately not used anywhere in the repo).
type skipPropRNG uint64

func (r *skipPropRNG) next() uint64 {
	x := *r
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = x
	return uint64(x) * 0x2545F4914F6CDD1D
}

// skipRandomProgram builds a deterministic pseudo-random workload:
// straight-line ALU chains, data-dependent loads and stores into a
// scrambled data image, data-dependent forward branches, all inside one
// bounded outer loop so the program always halts. It mirrors the sampling
// package's property-test generator so the differential below sees program
// shapes nobody hand-tuned for the skip.
func skipRandomProgram(seed uint64) *isa.Program {
	rng := skipPropRNG(seed)
	b := asm.New(fmt.Sprintf("skipprop-%d", seed))
	const words = 256
	vals := make([]uint64, words)
	for i := range vals {
		vals[i] = rng.next()
	}
	base := b.Words(vals...)

	ctr, dbase := isa.R(2), isa.R(3)
	scratch := []isa.Reg{isa.R(4), isa.R(5), isa.R(6), isa.R(7), isa.R(8), isa.R(9), isa.R(10), isa.R(11)}
	addr, tmp := isa.R(12), isa.R(13)

	for i, r := range scratch {
		b.Li(r, int64(rng.next()>>(8+i)))
	}
	b.Li(ctr, int64(1200+rng.next()%1200))
	b.Li(dbase, int64(base))
	b.Label("outer")
	labels := 0
	pick := func() isa.Reg { return scratch[rng.next()%uint64(len(scratch))] }
	for blk := 0; blk < 4+int(rng.next()%4); blk++ {
		for k := 0; k < 3+int(rng.next()%5); k++ {
			rd, rs1, rs2 := pick(), pick(), pick()
			switch rng.next() % 6 {
			case 0:
				b.Add(rd, rs1, rs2)
			case 1:
				b.Sub(rd, rs1, rs2)
			case 2:
				b.Xor(rd, rs1, rs2)
			case 3:
				b.And(rd, rs1, rs2)
			case 4:
				b.Or(rd, rs1, rs2)
			default:
				b.Mul(rd, rs1, rs2)
			}
		}
		src := pick()
		b.Andi(addr, src, words-1)
		b.Shli(addr, addr, 3)
		b.Add(addr, addr, dbase)
		b.Ld(tmp, addr, 0)
		b.Xor(pick(), pick(), tmp)
		if rng.next()%2 == 0 {
			b.St(pick(), addr, 0)
		}
		lbl := fmt.Sprintf("skip%d", labels)
		labels++
		b.Andi(tmp, pick(), 1)
		b.Bne(tmp, isa.RZero, lbl)
		b.Add(pick(), pick(), tmp)
		b.Sub(pick(), pick(), tmp)
		b.Label(lbl)
	}
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

// TestIdleSkipDifferentialRandomPrograms: for pseudo-random programs on
// both anchor machines (plus a profiled PUBS variant, so the span-integrated
// histogram path is covered), a skipping run and a poll-mode run must agree
// on the entire Result. Runs under -race in CI.
func TestIdleSkipDifferentialRandomPrograms(t *testing.T) {
	seeds := []uint64{1, 0xDEAD, 0xFEEDFACE}
	if testing.Short() {
		seeds = seeds[:1]
	}
	profiled := PUBSConfig()
	profiled.Name = "pubs-profile"
	profiled.Profile = true
	cfgs := []Config{BaseConfig(), PUBSConfig(), profiled}
	for _, seed := range seeds {
		for _, cfg := range cfgs {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/seed%x", cfg.Name, seed), func(t *testing.T) {
				t.Parallel()
				prog := skipRandomProgram(seed)
				skip, err := RunProgram(cfg, prog, 2_000, 8_000)
				if err != nil {
					t.Fatal(err)
				}
				poll := cfg
				poll.NoIdleSkip = true
				want, err := RunProgram(poll, prog, 2_000, 8_000)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(skip, want) {
					t.Errorf("seed %#x on %s: skip and poll diverged:\n skip: %+v\n poll: %+v",
						seed, cfg.Name, skip, want)
				}
			})
		}
	}
}

// TestIdleSkipWatchdogLongMiss: a memory latency far beyond the watchdog
// budget must not trip the liveness watchdog when the stalled span is
// provably idle — skipped cycles are proven progress, not a hang. The same
// configuration in poll mode does trip (every cycle of the miss shadow is
// walked and counted), which is exactly the false positive the skip-aware
// rebase removes; the poll-mode expectation pins that contrast so a future
// change to either semantic is a conscious one.
func TestIdleSkipWatchdogLongMiss(t *testing.T) {
	cfg := BaseConfig()
	cfg.MemLatency = 50_000
	cfg.WatchdogCycles = 10_000

	if _, err := RunProgram(cfg, workload.MustProgram("treewalk"), 500, 1_500); err != nil {
		t.Errorf("skip mode: long miss spuriously tripped the watchdog: %v", err)
	}

	cfg.NoIdleSkip = true
	_, err := RunProgram(cfg, workload.MustProgram("treewalk"), 500, 1_500)
	var dead *DeadlockError
	if !errors.As(err, &dead) {
		t.Errorf("poll mode: expected the 50K-cycle miss to exhaust the 10K watchdog, got %v", err)
	}
}

// TestIdleSkipProgressCadence: the WithProgress hook must fire at the same
// committed-instruction counts whether the run skips or polls — the hook
// keys on commit progress, which skipped (commit-free) spans cannot move.
func TestIdleSkipProgressCadence(t *testing.T) {
	run := func(poll bool) []uint64 {
		cfg := PUBSConfig()
		cfg.NoIdleSkip = poll
		var fired []uint64
		ctx := WithProgress(context.Background(), 1_000, func(committed uint64) {
			fired = append(fired, committed)
		})
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prog := workload.MustProgram("sparse")
		s.SetStaticCode(prog.Code)
		if _, err := s.RunContext(ctx, Stream{M: emu.MustNew(prog)}, 1_000, 6_000); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	skip, poll := run(false), run(true)
	if len(skip) == 0 {
		t.Fatal("progress hook never fired")
	}
	if !reflect.DeepEqual(skip, poll) {
		t.Errorf("progress cadence diverged:\n skip: %v\n poll: %v", skip, poll)
	}
}

// TestSkipStatsTelemetry: a memory-bound run must actually skip (the
// telemetry is how the benchmark harness and EXPERIMENTS.md sanity-check
// the machinery), a poll-mode run must never skip, and the telemetry must
// stay out of Result.
func TestSkipStatsTelemetry(t *testing.T) {
	prog := workload.MustProgram("sparse")
	run := func(poll bool) (Result, uint64, uint64) {
		cfg := BaseConfig()
		cfg.NoIdleSkip = poll
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetStaticCode(prog.Code)
		res, err := s.Run(Stream{M: emu.MustNew(prog)}, 1_000, 6_000)
		if err != nil {
			t.Fatal(err)
		}
		spans, cycles := s.SkipStats()
		return res, spans, cycles
	}
	skipRes, spans, cycles := run(false)
	if spans == 0 || cycles == 0 {
		t.Errorf("sparse run did not skip: spans=%d cycles=%d", spans, cycles)
	}
	pollRes, pollSpans, pollCycles := run(true)
	if pollSpans != 0 || pollCycles != 0 {
		t.Errorf("poll mode skipped: spans=%d cycles=%d", pollSpans, pollCycles)
	}
	if !reflect.DeepEqual(skipRes, pollRes) {
		t.Errorf("telemetry leaked into Result:\n skip: %+v\n poll: %+v", skipRes, pollRes)
	}
}
