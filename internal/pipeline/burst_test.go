package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/workload"
)

// recordProgLoop is recordStream for an arbitrary program: it captures the
// first n committed-order instructions and loops them forever. n must be
// comfortably below the program's dynamic length so a Halt never enters
// the loop buffer.
func recordProgLoop(t *testing.T, prog *isa.Program, n int) *loopStream {
	t.Helper()
	m, err := emu.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]emu.DynInst, 0, n)
	for len(buf) < n {
		di, ok := m.Step()
		if !ok {
			t.Fatalf("program ended after %d instructions, want %d", len(buf), n)
		}
		buf = append(buf, di)
	}
	return &loopStream{buf: buf}
}

// TestWakeHeapNeverLate audits the event heap against the pre-heap
// threshold rescan: at the end of every simulated cycle, nextWake (heap)
// must not report a later wake than nextWakeScan (ground truth) — a later
// wake would let a skip jump across a live threshold. Earlier is fine
// (spurious wakeups only shorten skips). Driven by a branch-heavy
// workload, a memory-bound one, and pseudo-random programs, on both
// anchor machines.
func TestWakeHeapNeverLate(t *testing.T) {
	const cycles = 30_000
	streams := map[string]func(t *testing.T) *loopStream{
		"chess":    func(t *testing.T) *loopStream { return recordStream(t, "chess", 4096) },
		"treewalk": func(t *testing.T) *loopStream { return recordStream(t, "treewalk", 4096) },
		"rand7":    func(t *testing.T) *loopStream { return recordProgLoop(t, skipRandomProgram(7), 4096) },
		"randBEEF": func(t *testing.T) *loopStream { return recordProgLoop(t, skipRandomProgram(0xBEEF), 4096) },
	}
	for _, cfg := range []Config{BaseConfig(), PUBSConfig()} {
		for name, mk := range streams {
			cfg, name, mk := cfg, name, mk
			t.Run(fmt.Sprintf("%s/%s", cfg.Name, name), func(t *testing.T) {
				t.Parallel()
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.stream = mk(t)
				for c := 0; c < cycles; c++ {
					s.act = 0
					s.commit()
					s.issue()
					s.drainStores()
					s.dispatch()
					s.decodeWrongPath()
					s.fetch()
					scan := s.nextWakeScan()
					heap := s.nextWake()
					if heap > scan {
						t.Fatalf("cycle %d: heap wake %d later than scanned wake %d (act=%#x)",
							s.now, heap, scan, s.act)
					}
					s.now++
				}
			})
		}
	}
}

// burstFetchProgram wedges the backend on a data-dependent load chase
// (every load misses far into memory) and follows it with a block of
// independent ALU work: while the chase blocks commit and the window
// fills, dispatch stalls and fetch alone drains ready I-lines into the
// queue — the fetch-drain burst shape.
func burstFetchProgram() *isa.Program {
	rng := skipPropRNG(0x5EED)
	b := asm.New("burst-fetch")
	const words = 512
	vals := make([]uint64, words)
	for i := range vals {
		vals[i] = rng.next()
	}
	base := b.Words(vals...)

	ctr, dbase, x, addr := isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	alu := []isa.Reg{isa.R(6), isa.R(7), isa.R(8), isa.R(9)}
	b.Li(ctr, 400)
	b.Li(dbase, int64(base))
	b.Li(x, 1)
	for i, r := range alu {
		b.Li(r, int64(i+1))
	}
	b.Label("loop")
	// Dependent chase, 4 links deep per iteration.
	for i := 0; i < 4; i++ {
		b.Andi(addr, x, words-1)
		b.Shli(addr, addr, 3)
		b.Add(addr, addr, dbase)
		b.Ld(x, addr, 0)
	}
	// Independent ALU block: plenty to fetch while the chase stalls.
	for i := 0; i < 40; i++ {
		r := alu[i%len(alu)]
		b.Add(r, r, alu[(i+1)%len(alu)])
	}
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, isa.RZero, "loop")
	b.Halt()
	return b.MustBuild()
}

// burstCommitProgram loops over a straight-line ALU body spanning many
// instruction lines: with a tiny L1I every traversal misses, freezing the
// front end while the already-dispatched, quickly-completed backlog
// retires at commit width from an empty fetch queue — the commit-run
// shape. Loads and stores are absent so retirement never arms the store
// drain.
func burstCommitProgram() *isa.Program {
	b := asm.New("burst-commit")
	ctr := isa.R(2)
	alu := []isa.Reg{isa.R(3), isa.R(4), isa.R(5), isa.R(6), isa.R(7), isa.R(8)}
	b.Li(ctr, 600)
	for i, r := range alu {
		b.Li(r, int64(i+1))
	}
	b.Label("loop")
	for i := 0; i < 192; i++ {
		r := alu[i%len(alu)]
		b.Add(r, r, alu[(i+1)%len(alu)])
	}
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, isa.RZero, "loop")
	b.Halt()
	return b.MustBuild()
}

// burstShapeCases returns (config, program) pairs purpose-built so each
// quasi-null class provably fires: the differential below checks both
// bit-identity and, via telemetry, that the shape actually exercised the
// burst it was built for.
type burstShape struct {
	name   string
	cfg    Config
	prog   *isa.Program
	fetchy bool // expects fetch-drain bursts
	commit bool // expects commit-run bursts
}

func burstShapeCases() []burstShape {
	// Long memory latency amplifies the backend wedge under the chase.
	fetchCfg := BaseConfig()
	fetchCfg.Name = "base-longmiss"
	fetchCfg.MemLatency = 1_000

	// Tiny fetch queue (fetchQ is 4×FetchWidth): the fetch-drain span hits
	// the queue-full boundary almost immediately, pinning the break path.
	tinyCfg := BaseConfig()
	tinyCfg.Name = "base-tinyfq"
	tinyCfg.FetchWidth = 1
	tinyCfg.MemLatency = 1_000

	// Two-line L1I: every traversal of the large loop body misses, and the
	// L2 hit latency freezes fetch while the ROB backlog retires.
	commitCfg := BaseConfig()
	commitCfg.Name = "base-tinyl1i"
	commitCfg.L1I = cache.Config{Name: "L1I", Sets: 1, Ways: 2, LineBytes: 64, HitLat: 0, MSHRs: 2}

	pubsCommitCfg := PUBSConfig()
	pubsCommitCfg.Name = "pubs-tinyl1i"
	pubsCommitCfg.L1I = cache.Config{Name: "L1I", Sets: 1, Ways: 2, LineBytes: 64, HitLat: 0, MSHRs: 2}

	return []burstShape{
		{"fetch-drain", fetchCfg, burstFetchProgram(), true, false},
		{"fetch-drain-tinyfq", tinyCfg, burstFetchProgram(), true, false},
		{"commit-run", commitCfg, burstCommitProgram(), false, true},
		{"commit-run-pubs", pubsCommitCfg, burstCommitProgram(), false, true},
	}
}

// runBurstTelemetry runs prog on cfg and returns the Result plus the
// run's skip telemetry.
func runBurstTelemetry(t *testing.T, cfg Config, prog *isa.Program, warmup, measure uint64) (Result, SkipTelemetry) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetStaticCode(prog.Code)
	res, err := s.Run(Stream{M: emu.MustNew(prog)}, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	return res, s.SkipTelemetry()
}

// TestBurstDifferentialShapes: on programs shaped to force each burst
// class, phase-2 skipping (bursts on), phase-1 skipping (NoBurstSkip),
// and full polling must produce DeepEqual Results — and the telemetry
// must confirm the intended class actually fired, so the equality is a
// covered claim rather than a vacuous one.
func TestBurstDifferentialShapes(t *testing.T) {
	const warmup, measure = 2_000, 10_000
	for _, sc := range burstShapeCases() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			full, tel := runBurstTelemetry(t, sc.cfg, sc.prog, warmup, measure)
			if sc.fetchy && tel.FetchBurstSpans == 0 {
				t.Errorf("shape %s never fetch-burst: %+v", sc.name, tel)
			}
			if sc.commit && tel.CommitBurstSpans == 0 {
				t.Errorf("shape %s never commit-burst: %+v", sc.name, tel)
			}

			p1 := sc.cfg
			p1.NoBurstSkip = true
			phase1, tel1 := runBurstTelemetry(t, p1, sc.prog, warmup, measure)
			if tel1.FetchBurstSpans != 0 || tel1.CommitBurstSpans != 0 {
				t.Errorf("NoBurstSkip still burst: %+v", tel1)
			}
			if !reflect.DeepEqual(full, phase1) {
				t.Errorf("phase-2 and phase-1 diverged:\n p2: %+v\n p1: %+v", full, phase1)
			}

			poll := sc.cfg
			poll.NoIdleSkip = true
			pollRes, _ := runBurstTelemetry(t, poll, sc.prog, warmup, measure)
			if !reflect.DeepEqual(full, pollRes) {
				t.Errorf("phase-2 and poll diverged:\n p2:   %+v\n poll: %+v", full, pollRes)
			}
		})
	}
}

// TestBurstDifferentialRandomPrograms: pseudo-random programs nobody
// shaped for the bursts must also agree across phase 2, phase 1, and
// poll, on the anchor machines plus a profiled variant (covering the
// burst-integrated occupancy-histogram paths) and a tiny fetch queue.
func TestBurstDifferentialRandomPrograms(t *testing.T) {
	seeds := []uint64{7, 0xBADF00D, 0xC0FFEE}
	if testing.Short() {
		seeds = seeds[:1]
	}
	profiled := PUBSConfig()
	profiled.Name = "pubs-profile"
	profiled.Profile = true
	tiny := BaseConfig()
	tiny.Name = "base-tinyfq"
	tiny.FetchWidth = 1
	cfgs := []Config{BaseConfig(), PUBSConfig(), profiled, tiny}
	for _, seed := range seeds {
		for _, cfg := range cfgs {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/seed%x", cfg.Name, seed), func(t *testing.T) {
				t.Parallel()
				prog := skipRandomProgram(seed)
				p2, err := RunProgram(cfg, prog, 2_000, 8_000)
				if err != nil {
					t.Fatal(err)
				}
				p1c := cfg
				p1c.NoBurstSkip = true
				p1, err := RunProgram(p1c, prog, 2_000, 8_000)
				if err != nil {
					t.Fatal(err)
				}
				pollc := cfg
				pollc.NoIdleSkip = true
				poll, err := RunProgram(pollc, prog, 2_000, 8_000)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(p2, p1) {
					t.Errorf("seed %#x on %s: phase-2 vs phase-1 diverged:\n p2: %+v\n p1: %+v",
						seed, cfg.Name, p2, p1)
				}
				if !reflect.DeepEqual(p2, poll) {
					t.Errorf("seed %#x on %s: phase-2 vs poll diverged:\n p2:   %+v\n poll: %+v",
						seed, cfg.Name, p2, poll)
				}
			})
		}
	}
}

// TestBurstProgressCadence: the WithProgress hook must fire at identical
// committed-instruction counts whether commit retires in the polled loop,
// in phase-1 skip mode, or inside a commit-run burst — the burst replays
// the exact per-commit bookkeeping, so the callback cadence is part of
// the bit-identity surface.
func TestBurstProgressCadence(t *testing.T) {
	commitCfg := BaseConfig()
	commitCfg.L1I = cache.Config{Name: "L1I", Sets: 1, Ways: 2, LineBytes: 64, HitLat: 0, MSHRs: 2}
	prog := burstCommitProgram()

	run := func(mut func(*Config)) []uint64 {
		cfg := commitCfg
		mut(&cfg)
		var fired []uint64
		ctx := WithProgress(context.Background(), 1_000, func(committed uint64) {
			fired = append(fired, committed)
		})
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetStaticCode(prog.Code)
		if _, err := s.RunContext(ctx, Stream{M: emu.MustNew(prog)}, 1_000, 6_000); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	p2 := run(func(*Config) {})
	p1 := run(func(c *Config) { c.NoBurstSkip = true })
	poll := run(func(c *Config) { c.NoIdleSkip = true })
	if len(p2) == 0 {
		t.Fatal("progress hook never fired")
	}
	if !reflect.DeepEqual(p2, p1) || !reflect.DeepEqual(p2, poll) {
		t.Errorf("progress cadence diverged:\n p2:   %v\n p1:   %v\n poll: %v", p2, p1, poll)
	}
}

// TestBurstWatchdogLongMiss: fetch-drain bursts advance the watchdog's
// last-commit anchor exactly as skips do — a long miss whose shadow is
// covered by bursts plus skips must not trip a tight watchdog budget,
// while poll mode over the same span does (pinning the same contrast as
// the phase-1 test, now with bursts in the span).
func TestBurstWatchdogLongMiss(t *testing.T) {
	cfg := BaseConfig()
	cfg.MemLatency = 50_000
	cfg.WatchdogCycles = 10_000

	if _, err := RunProgram(cfg, workload.MustProgram("treewalk"), 500, 1_500); err != nil {
		t.Errorf("burst mode: long miss spuriously tripped the watchdog: %v", err)
	}
	p1 := cfg
	p1.NoBurstSkip = true
	if _, err := RunProgram(p1, workload.MustProgram("treewalk"), 500, 1_500); err != nil {
		t.Errorf("phase-1 mode: long miss spuriously tripped the watchdog: %v", err)
	}
}
