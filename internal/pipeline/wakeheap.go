package pipeline

// wakeHeap is the event index behind nextWake (DESIGN.md §14, phase 2): a
// binary min-heap of absolute-cycle thresholds. Stages push a threshold at
// the moment they create it — a completion cycle, a busy-until cycle, a
// port free cycle, a redirect or line-fill arrival, a fetch-queue maturity
// — and nextWake reads the minimum instead of rescanning every uop,
// function unit, and port on each skip attempt.
//
// Invariants the correctness argument rests on:
//
//   - Superset: every threshold a stage predicate compares against s.now is
//     pushed when assigned. The heap may additionally hold thresholds that
//     no longer matter (an overwritten fetchResumeAt, a completion of a
//     recycled handle): a spurious wakeup only shortens a skip, which is
//     always safe.
//
//   - Monotone staleness: every predicate is of the form `threshold ≤ now`
//     (or its negation), so once a threshold falls to ≤ now its comparison
//     outcome is fixed for the rest of the run unless the slot is
//     reassigned — and a reassignment pushes a fresh entry. Entries ≤ now
//     are therefore dead and can be dropped lazily whenever they surface
//     at the top.
//
//   - Bounded occupancy without nextWake: on an always-active workload the
//     skip path never runs, so lazy top-pruning alone would let the heap
//     grow without bound. push therefore prunes up to two stale tops per
//     insertion: with pushes bounded per cycle and thresholds bounded by
//     the machine's latency horizon, the heap's steady-state size is
//     bounded by the live-threshold population and append stops
//     allocating (the zero-allocation regression tests cover this).
type wakeHeap struct {
	a []int64
}

// init sizes the backing array so steady state never reallocates.
func (h *wakeHeap) init(capHint int) {
	h.a = make([]int64, 0, capHint)
}

// clear empties the heap, keeping the backing array (Reset path).
func (h *wakeHeap) clear() { h.a = h.a[:0] }

// push inserts threshold v, dropping it outright if it is not in the
// future, after pruning up to two stale tops.
func (h *wakeHeap) push(v, now int64) {
	if len(h.a) > 0 && h.a[0] <= now {
		h.pop()
		if len(h.a) > 0 && h.a[0] <= now {
			h.pop()
		}
	}
	if v <= now {
		return
	}
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

// pop removes the minimum.
func (h *wakeHeap) pop() {
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.a[l] < h.a[m] {
			m = l
		}
		if r < n && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			return
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
}

// next drains stale entries and returns the earliest future threshold, or
// neverWakes if none is indexed.
func (h *wakeHeap) next(now int64) int64 {
	for len(h.a) > 0 && h.a[0] <= now {
		h.pop()
	}
	if len(h.a) == 0 {
		return neverWakes
	}
	return h.a[0]
}
