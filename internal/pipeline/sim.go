package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/faultinject"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/prefetch"
	"repro/internal/rob"
	"repro/internal/simerr"
	"repro/internal/stats"
)

// InstStream supplies the committed dynamic instruction stream in program
// order (normally an *emu.Machine via Stream).
type InstStream interface {
	Next() (emu.DynInst, bool)
}

// Stream adapts an emulator machine to InstStream.
type Stream struct{ M *emu.Machine }

// Next implements InstStream.
func (s Stream) Next() (emu.DynInst, bool) { return s.M.Step() }

// noSeq is the sentinel for "not blocked on any branch".
const noSeq = ^uint64(0)

// issueQueue is the dispatch/select surface shared by the unified queue
// and the §III-C2 distributed queue complex.
type issueQueue interface {
	DispatchPriority(iq.Request) bool
	DispatchNormal(iq.Request) bool
	DispatchWeighted(iq.Request, float64) bool
	Select(int, func(int) bool, func(int) bool) []iq.Request
	Occupancy() int
	PriorityFree() int
	CheckInvariants() error
	Reset()
}

// fuPool maps an isa.Class to a function-unit pool (loads and stores share
// the Ld/St units).
func fuPool(c isa.Class) int {
	switch c {
	case isa.ClassIntALU:
		return 0
	case isa.ClassIntMulDiv:
		return 1
	case isa.ClassLoad, isa.ClassStore:
		return 2
	case isa.ClassFPU:
		return 3
	}
	return -1
}

type src struct {
	h   int
	seq uint64
}

// uop is one in-flight instruction. Handles index the fixed pool (sized to
// the ROB); (handle, seq) pairs disambiguate reuse.
type uop struct {
	live        bool
	di          emu.DynInst
	class       isa.Class
	fetchCycle  int64
	unconf      bool
	inPriority  bool
	mispredict  bool // this branch/indirect blocked fetch
	predCorrect bool // conditional branches: prediction outcome

	srcs   [2]src
	nsrc   int
	fwd    src // loads: matching older store
	hasFwd bool

	issued        bool
	scheduled     bool // completeCycle is valid
	completeCycle int64
	dispatchCycle int64
	issueCycle    int64
}

// fqEntry is one instruction flowing down the front end.
type fqEntry struct {
	di          emu.DynInst
	fetchCycle  int64
	mispredict  bool
	predCorrect bool
	decoded     bool
	unconf      bool
}

// BranchStat profiles one static conditional branch (Config.Profile).
type BranchStat struct {
	PC          uint64
	Executed    uint64
	Mispredicts uint64
}

// MispredictRate returns the branch's individual misprediction rate.
func (b BranchStat) MispredictRate() float64 {
	if b.Executed == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Executed)
}

// Result is the outcome of one simulation run (measurement window only).
type Result struct {
	stats.Sim
	Name         string
	Measured     uint64
	L1I, L1D, L2 cache.Stats

	// Populated only when Config.Profile is set.
	IQOccupancy *stats.Histogram // per-cycle issue-queue occupancy
	TopBranches []BranchStat     // worst mispredicting branches, descending
}

// Sim is one simulated processor instance: build, Run; Reset returns it to
// the freshly-constructed state for reuse across independent runs.
type Sim struct {
	cfg    Config
	stream InstStream
	trace  *Replay // non-nil while the fetch stage reads a predecode buffer

	bp   bpred.Predictor
	btb  *bpred.BTB
	ras  *bpred.RAS
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	mem  *cache.Memory
	pubs *core.PUBS
	q    issueQueue
	rob  *rob.ROB
	lsq  *lsq.LSQ

	uops  []uop
	freeU []int

	// fetchQ is a fixed-capacity ring buffer: fqHead indexes the oldest
	// entry, fqLen counts occupancy. A ring keeps dispatch O(1) per
	// instruction (the previous head-slicing drain copied the whole queue
	// forward on every dispatch).
	fetchQ []fqEntry
	fqHead int
	fqLen  int

	now           int64
	fetchResumeAt int64
	blockedOnSeq  uint64
	lastLine      uint64
	haveLine      bool
	lineReadyAt   int64

	pending      emu.DynInst
	hasPending   bool
	streamDone   bool
	halted       bool
	hangInjected bool // fault injection wedged the commit stage

	// Wrong-path decode state (Config.WrongPathDecode).
	code          []isa.Inst
	wrongPathIdx  int // next wrong-path instruction to decode; -1 = none
	wrongPathLeft int // remaining wrong-path decode budget for this event

	regProducer [isa.NumLogicalRegs]src // .h == -1 means architected
	intInFlight int
	fpInFlight  int

	fuBusy      [4][]int64 // per pool, per unit: busy-until (non-pipelined ops)
	fuRemaining [4]int     // per pool: units still grantable this cycle
	dports      []int64    // D-cache ports: next-free cycle

	// The select predicates are bound once at construction: method values
	// created inside the cycle loop would allocate a closure per cycle.
	readyFn func(int) bool
	fuFn    func(int) bool

	// storeBuf is a fixed-capacity ring buffer of committed store addresses
	// awaiting drain: sbHead indexes the oldest, sbLen counts occupancy.
	// (The previous slice drain re-sliced from the head and reset with
	// [:0:cap], so front capacity shrank monotonically and steady state
	// reallocated on every refill.)
	storeBuf []uint64
	sbHead   int
	sbLen    int

	rng uint64

	pipeTrace     io.Writer
	pipeTraceLeft int64

	// Idle-skip bookkeeping (see idleskip.go). act is reset at the top of
	// every cycle; each stage that mutates persistent state ORs in its
	// activity bit. A cycle that ends with act == 0 is provably null and
	// eligible for fast-forward; a cycle whose only set bit names a
	// burstable stage is quasi-null and eligible for a burst (burst.go).
	// stallCtr/stallRand record the one integrable tick a stalled dispatch
	// produces per cycle (which stall counter fired, and whether the
	// weighted policy consumed a rand01 draw). polled counts executed loop
	// iterations — in poll mode it equals s.now; the invariant-check and
	// context-poll cadences key on it so their behaviour is independent of
	// how far each iteration advanced time. wake is the event-heap index
	// nextWake reads instead of rescanning every threshold.
	act           uint8
	stallCtr      *uint64
	stallRand     bool
	polled        int64
	wake          wakeHeap
	skipSpans     uint64
	skippedCycles uint64

	// Per-class burst telemetry (burst.go); like skipSpans/skippedCycles,
	// deliberately outside Result — burst on and burst off must produce
	// DeepEqual-identical Results.
	fetchBurstSpans   uint64
	fetchBurstCycles  uint64
	commitBurstSpans  uint64
	commitBurstCycles uint64
	telemetryFlushed  SkipTelemetry // portion already flushed to the package counters

	st             stats.Sim
	occHist        *stats.Histogram
	brProf         *branchProfile
	committedTotal uint64
	lastCommitAt   int64
	measureStart   int64
	baseL1I        cache.Stats
	baseL1D        cache.Stats
	baseL2         cache.Stats
	basePubs       [3]uint64 // unconf branches, unconf slice insts, decoded branches
}

// New builds a simulator for the given configuration.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:          cfg,
		bp:           bpred.MustNew(cfg.Bpred),
		btb:          bpred.NewBTB(cfg.BTBSets, cfg.BTBWays),
		ras:          bpred.NewRAS(cfg.RASDepth),
		mem:          &cache.Memory{Latency: cfg.MemLatency, LineBytes_: 64, BytesPerCycle: cfg.MemBW},
		rob:          rob.New(cfg.ROBSize),
		lsq:          lsq.New(cfg.LSQSize),
		uops:         make([]uop, cfg.ROBSize),
		blockedOnSeq: noSeq,
		wrongPathIdx: -1,
		rng:          0x9E3779B97F4A7C15,
	}
	s.l2 = cache.New(cfg.L2, s.mem)
	if cfg.Prefetch {
		s.l2.SetPrefetcher(prefetch.Default())
	}
	s.l1i = cache.New(cfg.L1I, s.l2)
	s.l1d = cache.New(cfg.L1D, s.l2)

	prio := 0
	if cfg.PUBS.Enable {
		if !cfg.PUBS.FlexibleSelect {
			prio = cfg.PUBS.PriorityEntries
		}
		p, err := core.New(cfg.PUBS)
		if err != nil {
			return nil, err
		}
		s.pubs = p
	}
	if cfg.DistributedIQ {
		s.q = iq.NewDistributed(iq.DistributedConfig{
			NumQueues:       4,
			TotalSize:       cfg.IQSize,
			PriorityEntries: prio,
			AgeMatrix:       cfg.AgeMatrix,
			Router:          func(fu int) int { return fuPool(isa.Class(fu)) },
		})
	} else {
		s.q = iq.New(iq.Config{
			Size:            cfg.IQSize,
			PriorityEntries: prio,
			Kind:            cfg.IQKind,
			AgeMatrix:       cfg.AgeMatrix,
			Flexible:        cfg.PUBS.Enable && cfg.PUBS.FlexibleSelect,
		})
	}

	for h := cfg.ROBSize - 1; h >= 0; h-- {
		s.freeU = append(s.freeU, h)
	}
	for r := range s.regProducer {
		s.regProducer[r] = src{h: -1}
	}
	s.fuBusy[0] = make([]int64, cfg.NumIntALU)
	s.fuBusy[1] = make([]int64, cfg.NumIntMulDiv)
	s.fuBusy[2] = make([]int64, cfg.NumLdSt)
	s.fuBusy[3] = make([]int64, cfg.NumFPU)
	s.dports = make([]int64, 2)
	s.fetchQ = make([]fqEntry, 4*cfg.FetchWidth)
	s.storeBuf = make([]uint64, cfg.StoreBufferSize)
	s.readyFn = s.opReady
	s.fuFn = s.fuTryAlloc
	// Sized so the steady-state live-threshold population (bounded by the
	// ROB plus the fixed structures) never forces a reallocation.
	s.wake.init(4*cfg.ROBSize + 64)
	if cfg.Profile {
		s.occHist = stats.NewHistogram(cfg.IQSize + 1)
		s.brProf = newBranchProfile()
	}
	return s, nil
}

// branchProfile is an open-addressed PC → BranchStat table (linear probing,
// power-of-two capacity). It replaces a map[uint64]*BranchStat on the commit
// path: no per-branch pointer allocations, and reset reuses the backing
// arrays so the warm-up boundary does not reallocate.
type branchProfile struct {
	used  []bool
	keys  []uint64
	stats []BranchStat
	n     int
}

const branchProfileMinSize = 256

func newBranchProfile() *branchProfile {
	return &branchProfile{
		used:  make([]bool, branchProfileMinSize),
		keys:  make([]uint64, branchProfileMinSize),
		stats: make([]BranchStat, branchProfileMinSize),
	}
}

// get returns the entry for pc, inserting it if absent. The pointer is
// valid until the next get (a grow rehashes in place).
func (p *branchProfile) get(pc uint64) *BranchStat {
	if p.n >= len(p.keys)-len(p.keys)/4 {
		p.grow()
	}
	mask := uint64(len(p.keys) - 1)
	i := (pc * 0x9E3779B97F4A7C15) & mask
	for p.used[i] {
		if p.keys[i] == pc {
			return &p.stats[i]
		}
		i = (i + 1) & mask
	}
	p.used[i], p.keys[i] = true, pc
	p.stats[i] = BranchStat{PC: pc}
	p.n++
	return &p.stats[i]
}

func (p *branchProfile) grow() {
	oldUsed, oldKeys, oldStats := p.used, p.keys, p.stats
	size := 2 * len(oldKeys)
	p.used = make([]bool, size)
	p.keys = make([]uint64, size)
	p.stats = make([]BranchStat, size)
	p.n = 0
	for i, u := range oldUsed {
		if u {
			*p.get(oldKeys[i]) = oldStats[i]
		}
	}
}

// reset empties the table, keeping the backing arrays.
func (p *branchProfile) reset() {
	if p == nil {
		return
	}
	clear(p.used)
	p.n = 0
}

// top extracts the n worst mispredicting branches, descending; nil-safe
// (a non-profile run never allocates the table).
func (p *branchProfile) top(n int) []BranchStat {
	if p == nil {
		return nil
	}
	out := make([]BranchStat, 0, p.n)
	for i, u := range p.used {
		if u {
			out = append(out, p.stats[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mispredicts != out[j].Mispredicts {
			return out[i].Mispredicts > out[j].Mispredicts
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// rand01 returns a deterministic uniform value in [0,1) (xorshift64*).
func (s *Sim) rand01() float64 {
	s.rng ^= s.rng >> 12
	s.rng ^= s.rng << 25
	s.rng ^= s.rng >> 27
	return float64(s.rng*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

func (s *Sim) peek() (emu.DynInst, bool) {
	if s.streamDone {
		return emu.DynInst{}, false
	}
	if !s.hasPending {
		// Pulling from the stream steps the emulator (or trace cursor) —
		// a one-time mutation, as is the done transition.
		s.act |= actFetch
		di, ok := s.stream.Next()
		if !ok {
			s.streamDone = true
			return emu.DynInst{}, false
		}
		s.pending, s.hasPending = di, true
	}
	return s.pending, true
}

func (s *Sim) take() { s.hasPending = false }

// valueReady reports whether the value identified by sr is available at the
// start of the current cycle. A dead or recycled producer means the value
// is architected (the producer committed).
func (s *Sim) valueReady(sr src) bool {
	if sr.h < 0 {
		return true
	}
	u := &s.uops[sr.h]
	if !u.live || u.di.Seq != sr.seq {
		return true
	}
	return u.scheduled && u.completeCycle <= s.now
}

// opReady is the IQ wakeup predicate.
func (s *Sim) opReady(h int) bool {
	u := &s.uops[h]
	for i := 0; i < u.nsrc; i++ {
		if !s.valueReady(u.srcs[i]) {
			return false
		}
	}
	if u.hasFwd {
		f := &s.uops[u.fwd.h]
		if f.live && f.di.Seq == u.fwd.seq && !f.issued {
			return false // forwarding source must have executed
		}
	}
	return true
}

// ---------- fetch ----------

// lineReady models the single-line I-cache buffer: a new line is requested
// the cycle it is first needed and fetch stalls until it arrives.
func (s *Sim) lineReady(pc uint64) bool {
	line := pc &^ 63
	if !s.haveLine || line != s.lastLine {
		s.act |= actFetch // new line request mutates the I-cache
		done := s.l1i.Access(pc, s.now, false)
		s.lastLine, s.haveLine = line, true
		s.lineReadyAt = done
		s.wake.push(done, s.now) // fill arrival unblocks fetch
	}
	return s.lineReadyAt <= s.now
}

// fetchControl runs the control-flow side of fetching f (prediction, BTB,
// RAS, wrong-path setup) and reports whether f ends the fetch group. It is
// shared by the live-emulator and trace-replay fetch paths.
func (s *Sim) fetchControl(f *fqEntry) (stop bool) {
	di := &f.di
	switch {
	case di.Inst.IsCondBranch():
		pred := s.bp.Predict(di.PC)
		s.bp.Update(di.PC, di.Taken)
		f.predCorrect = pred == di.Taken
		if di.Taken {
			s.btb.Insert(di.PC, di.Target)
		}
		if !f.predCorrect {
			f.mispredict = true
			s.blockedOnSeq = di.Seq
			stop = true
			if s.cfg.WrongPathDecode && s.code != nil {
				// The front end runs down the predicted (wrong) path:
				// the fall-through when the branch was actually taken,
				// the target when it was actually not taken. The walk is
				// bounded by what the front-end buffers can hold before
				// the stall backs decode up — wrong-path instructions
				// occupy real fetch-queue and window slots in hardware.
				if di.Taken {
					s.wrongPathIdx = di.Idx + 1
				} else {
					s.wrongPathIdx = int(di.Inst.Imm)
				}
				s.wrongPathLeft = len(s.fetchQ) + s.cfg.FetchWidth*int(s.cfg.FrontEndDepth)
			}
		} else if pred {
			// Correctly predicted taken: target must come from the BTB
			// to redirect this cycle; otherwise a decode-redirect bubble.
			if tgt, hit := s.btb.Lookup(di.PC); !hit || tgt != di.Target {
				s.st.BTBMisses++
				s.fetchResumeAt = s.now + s.cfg.BTBMissPenalty
				s.wake.push(s.fetchResumeAt, s.now) // redirect-bubble end
			}
			stop = true // taken branch ends the fetch group
		}

	case di.Inst.Op == isa.Jmp || di.Inst.Op == isa.Jal:
		if tgt, hit := s.btb.Lookup(di.PC); !hit || tgt != di.Target {
			s.st.BTBMisses++
			s.fetchResumeAt = s.now + s.cfg.BTBMissPenalty
			s.wake.push(s.fetchResumeAt, s.now) // redirect-bubble end
		}
		s.btb.Insert(di.PC, di.Target)
		if di.Inst.Op == isa.Jal {
			s.ras.Push(di.PC + 4)
		}
		stop = true

	case di.Inst.Op == isa.Jr:
		var predTgt uint64
		var havePred bool
		if di.Inst.Rs1 == isa.RLink {
			predTgt, havePred = s.ras.Pop()
		}
		if !havePred {
			predTgt, havePred = s.btb.Lookup(di.PC)
		}
		s.btb.Insert(di.PC, di.Target)
		if !havePred || predTgt != di.Target {
			f.mispredict = true
			s.blockedOnSeq = di.Seq
		}
		stop = true

	case di.Inst.Op == isa.Halt:
		stop = true
	}
	return stop
}

func (s *Sim) fetch() {
	if s.halted || s.now < s.fetchResumeAt || s.blockedOnSeq != noSeq {
		return
	}
	for n := 0; n < s.cfg.FetchWidth; n++ {
		if s.fqLen == len(s.fetchQ) {
			break
		}
		var f *fqEntry
		if tr := s.trace; tr != nil {
			// Trace fast path: reconstruct the DynInst straight from the
			// predecode buffer into the fetch-queue slot — no emulator step,
			// no pending-instruction staging.
			if !s.lineReady(tr.Pre.PCAt(tr.pos)) {
				break
			}
			f = &s.fetchQ[(s.fqHead+s.fqLen)%len(s.fetchQ)]
			*f = fqEntry{fetchCycle: s.now}
			tr.Pre.Fill(tr.pos, tr.Decode, &f.di)
			tr.pos++
			if tr.pos == tr.Pre.Len() {
				// Buffer drained: later fetches go through the generic
				// stream path (Replay.Next ends the stream after a halting
				// trace, or continues on the live fallback).
				s.trace = nil
			}
		} else {
			di, ok := s.peek()
			if !ok {
				break
			}
			if !s.lineReady(di.PC) {
				break
			}
			s.take()
			f = &s.fetchQ[(s.fqHead+s.fqLen)%len(s.fetchQ)]
			*f = fqEntry{di: di, fetchCycle: s.now}
		}
		stop := s.fetchControl(f)
		s.fqLen++
		s.act |= actFetch
		// The staged entry matures for dispatch once it clears the
		// front-end pipeline.
		s.wake.push(s.now+s.cfg.FrontEndDepth, s.now)
		if stop {
			break
		}
	}
}

// ---------- dispatch (decode + rename + queue insertion) ----------

func (s *Sim) dispatch() {
	for n := 0; n < s.cfg.FetchWidth; n++ {
		if s.fqLen == 0 {
			break
		}
		f := &s.fetchQ[s.fqHead]
		if s.now < f.fetchCycle+s.cfg.FrontEndDepth {
			break
		}
		// Decode-stage PUBS work happens once, in program order, even if
		// dispatch subsequently stalls on a structural hazard.
		if !f.decoded {
			if s.pubs != nil {
				f.unconf = s.pubs.Decode(f.di.PC, f.di.Inst)
			}
			f.decoded = true
			s.act |= actDispatch // one-time PUBS table update + decoded mark
		}

		// Structural hazards (checked oldest-first; dispatch is in-order).
		// A stall here repeats identically every cycle while the machine is
		// otherwise frozen, so each site records which counter it bumped:
		// an idle skip integrates k more ticks of exactly that counter.
		if s.rob.Full() {
			s.st.DispatchStallROB++
			s.stallCtr = &s.st.DispatchStallROB
			break
		}
		if f.di.Inst.IsMem() && s.lsq.Full() {
			s.st.DispatchStallLSQ++
			s.stallCtr = &s.st.DispatchStallLSQ
			break
		}
		if f.di.Inst.HasDest() {
			if f.di.Inst.Rd.IsFP() {
				if s.fpInFlight >= s.cfg.PhysFPRegs-32 {
					s.st.DispatchStallRegs++
					s.stallCtr = &s.st.DispatchStallRegs
					break
				}
			} else if s.intInFlight >= s.cfg.PhysIntRegs-32 {
				s.st.DispatchStallRegs++
				s.stallCtr = &s.st.DispatchStallRegs
				break
			}
		}

		h := s.freeU[len(s.freeU)-1]
		req := iq.Request{Handle: h, Seq: f.di.Seq, FU: int(f.di.Class)}
		inPriority := false
		if f.di.Class != isa.ClassNone {
			ok := false
			switch {
			case s.pubs != nil && s.pubs.Active() && s.cfg.PUBS.FlexibleSelect:
				// Idealized flexible select: mark and dispatch anywhere.
				req.Marked = f.unconf
				if s.q.DispatchNormal(req) {
					ok = true
				} else {
					s.st.DispatchStallNormal++
					s.stallCtr = &s.st.DispatchStallNormal
				}
			case s.pubs != nil && s.pubs.Active():
				if f.unconf {
					if s.q.DispatchPriority(req) {
						ok, inPriority = true, true
					} else if s.cfg.PUBS.StallDispatch {
						s.st.DispatchStallPriority++
						s.stallCtr = &s.st.DispatchStallPriority
					} else if s.q.DispatchNormal(req) {
						ok = true
					} else {
						s.st.DispatchStallNormal++
						s.stallCtr = &s.st.DispatchStallNormal
					}
				} else if s.q.DispatchNormal(req) {
					ok = true
				} else {
					s.st.DispatchStallNormal++
					s.stallCtr = &s.st.DispatchStallNormal
				}
			case s.pubs != nil:
				// PUBS configured but mode-switched off: both free lists
				// serve everyone, weighted by the entry ratio (§III-B3).
				// The draw is consumed whether or not dispatch succeeds,
				// and failure is pick-independent (both lists full), so a
				// stalled cycle burns exactly one draw — stallRand tells
				// the idle skip to replay k of them.
				if s.q.DispatchWeighted(req, s.rand01()) {
					ok = true
				} else {
					s.st.DispatchStallNormal++
					s.stallCtr = &s.st.DispatchStallNormal
					s.stallRand = true
				}
			default:
				if s.q.DispatchNormal(req) {
					ok = true
				} else {
					s.st.DispatchStallNormal++
					s.stallCtr = &s.st.DispatchStallNormal
				}
			}
			if !ok {
				break
			}
		}
		s.freeU = s.freeU[:len(s.freeU)-1]
		s.act |= actDispatch

		u := &s.uops[h]
		*u = uop{
			live:          true,
			di:            f.di,
			class:         f.di.Class,
			fetchCycle:    f.fetchCycle,
			unconf:        f.unconf,
			inPriority:    inPriority,
			mispredict:    f.mispredict,
			predCorrect:   f.predCorrect,
			dispatchCycle: s.now,
			issueCycle:    -1,
		}
		srcs, nsrc := f.di.Inst.Sources()
		for i := 0; i < nsrc; i++ {
			r := srcs[i]
			if r == isa.RZero {
				u.srcs[u.nsrc] = src{h: -1}
			} else {
				u.srcs[u.nsrc] = s.regProducer[r]
			}
			u.nsrc++
		}
		if f.di.Inst.IsLoad() {
			if e, found := s.lsq.ForwardFrom(f.di.Seq, f.di.Addr&^7); found {
				u.fwd = src{h: e.Handle, seq: e.Seq}
				u.hasFwd = true
			}
		}
		if f.di.Inst.IsMem() {
			s.lsq.Alloc(lsq.Entry{
				Handle:  h,
				Seq:     f.di.Seq,
				IsStore: f.di.Inst.IsStore(),
				Addr:    f.di.Addr &^ 7,
			})
		}
		s.rob.Alloc(h)
		if f.di.Inst.HasDest() {
			s.regProducer[f.di.Inst.Rd] = src{h: h, seq: f.di.Seq}
			if f.di.Inst.Rd.IsFP() {
				s.fpInFlight++
			} else {
				s.intInFlight++
			}
		}
		if f.di.Class == isa.ClassNone {
			// Nop/Halt/direct jumps need no FU: complete next cycle.
			u.scheduled = true
			u.completeCycle = s.now + 1
			s.wake.push(u.completeCycle, s.now) // commit-head unblock
		}
		s.fqHead = (s.fqHead + 1) % len(s.fetchQ)
		s.fqLen--
	}
}

// ---------- issue + execute scheduling ----------

func (s *Sim) issue() {
	for p := range s.fuBusy {
		free := 0
		for _, busy := range s.fuBusy[p] {
			if busy <= s.now {
				free++
			}
		}
		s.fuRemaining[p] = free
	}
	granted := s.q.Select(s.cfg.IssueWidth, s.readyFn, s.fuFn)
	if len(granted) > 0 {
		s.act |= actIssue // a zero-grant Select mutates nothing
	}
	for _, g := range granted {
		s.schedule(g.Handle)
	}
}

// fuTryAlloc is the per-cycle function-unit claim passed to the IQ select;
// issue() refreshes fuRemaining before each Select.
func (s *Sim) fuTryAlloc(class int) bool {
	p := fuPool(isa.Class(class))
	if p < 0 || s.fuRemaining[p] == 0 {
		return false
	}
	s.fuRemaining[p]--
	return true
}

// schedule computes the completion time of a granted instruction and, for a
// blocking mispredicted branch, the fetch-redirect time.
func (s *Sim) schedule(h int) {
	u := &s.uops[h]
	u.issued = true
	u.scheduled = true
	u.issueCycle = s.now
	in := u.di.Inst

	switch {
	case in.IsLoad():
		agen := s.now + 1
		forwarded := false
		if u.hasFwd {
			f := &s.uops[u.fwd.h]
			if f.live && f.di.Seq == u.fwd.seq {
				forwarded = true
				done := f.completeCycle
				if agen > done {
					done = agen
				}
				u.completeCycle = done + 2 // forwarding from the LSQ
			}
		}
		if !forwarded {
			// The store may have committed but not yet drained: forward
			// from the store buffer.
			la := u.di.Addr &^ 7
			for i := 0; i < s.sbLen; i++ {
				if s.storeBuf[(s.sbHead+i)%len(s.storeBuf)]&^7 == la {
					forwarded = true
					u.completeCycle = agen + 2
					break
				}
			}
		}
		if forwarded {
			s.st.LoadsForwarded++
		} else {
			start := s.allocDPort(agen)
			u.completeCycle = s.l1d.Access(u.di.Addr, start, false)
		}
	case in.IsStore():
		u.completeCycle = s.now + 1 // address+data staged into the LSQ
	default:
		lat := in.Latency()
		u.completeCycle = s.now + lat
		if !in.Pipelined() {
			s.blockUnit(fuPool(u.class), lat)
		}
	}
	s.st.Issued++
	// The completion wakes IQ dependents and unblocks the ROB head.
	s.wake.push(u.completeCycle, s.now)

	if u.mispredict && s.blockedOnSeq == u.di.Seq {
		s.fetchResumeAt = u.completeCycle + s.cfg.RecoveryPenalty
		s.wake.push(s.fetchResumeAt, s.now) // redirect arrival restarts fetch
		s.blockedOnSeq = noSeq
		s.wrongPathIdx = -1 // squash: stop polluting the tables
		s.st.MisspecPenaltyCycles += u.completeCycle - u.fetchCycle
		s.st.RecoveryCycles += s.cfg.RecoveryPenalty
	}
}

// SetStaticCode supplies the program's static code, enabling wrong-path
// decode modelling (Config.WrongPathDecode). RunProgram calls this.
func (s *Sim) SetStaticCode(code []isa.Inst) { s.code = code }

// decodeWrongPath walks the wrong path at decode width while fetch is
// blocked, updating the PUBS tables with the instructions a real front end
// would decode before the squash. The walk follows fall-through on
// conditional branches and targets on direct jumps, and parks on indirect
// jumps and halts (targets unknown).
func (s *Sim) decodeWrongPath() {
	if s.wrongPathIdx < 0 || s.pubs == nil || s.blockedOnSeq == noSeq {
		return
	}
	s.act |= actWrongPath // every pass advances or parks the walk
	for n := 0; n < s.cfg.FetchWidth; n++ {
		if s.wrongPathLeft <= 0 {
			s.wrongPathIdx = -1
			return
		}
		idx := s.wrongPathIdx
		if idx < 0 || idx >= len(s.code) {
			s.wrongPathIdx = -1
			return
		}
		s.wrongPathLeft--
		in := s.code[idx]
		s.pubs.Decode(isa.PC(idx), in)
		switch {
		case in.Op == isa.Jmp || in.Op == isa.Jal:
			s.wrongPathIdx = int(in.Imm)
		case in.Op == isa.Jr || in.Op == isa.Halt:
			s.wrongPathIdx = -1 // unknown target: the walk parks
			return
		default:
			s.wrongPathIdx = idx + 1
		}
	}
}

// allocDPort claims a D-cache port at or after cycle `at`, returning the
// access start cycle.
func (s *Sim) allocDPort(at int64) int64 {
	best := 0
	for i := 1; i < len(s.dports); i++ {
		if s.dports[i] < s.dports[best] {
			best = i
		}
	}
	start := at
	if s.dports[best] > start {
		start = s.dports[best]
	}
	s.dports[best] = start + 1
	s.wake.push(start+1, s.now) // port free lets a committed store drain
	return start
}

// blockUnit marks one unit of pool p busy for lat cycles (non-pipelined op).
func (s *Sim) blockUnit(p int, lat int64) {
	units := s.fuBusy[p]
	for i := range units {
		if units[i] <= s.now {
			units[i] = s.now + lat
			s.wake.push(s.now+lat, s.now) // unit free can turn Select granting
			return
		}
	}
}

// ---------- store buffer ----------

func (s *Sim) drainStores() {
	if s.sbLen == 0 {
		return
	}
	// One committed store drains per cycle when a D-port is idle.
	for i := range s.dports {
		if s.dports[i] <= s.now {
			s.act |= actDrain
			s.dports[i] = s.now + 1
			s.wake.push(s.now+1, s.now)
			s.l1d.Access(s.storeBuf[s.sbHead], s.now, true)
			s.sbHead = (s.sbHead + 1) % len(s.storeBuf)
			s.sbLen--
			return
		}
	}
}

// ---------- commit ----------

func (s *Sim) commit() {
	for n := 0; n < s.cfg.CommitWidth; n++ {
		h, ok := s.rob.Head()
		if !ok {
			break
		}
		u := &s.uops[h]
		if !u.scheduled || u.completeCycle > s.now {
			break
		}
		in := u.di.Inst
		if in.IsStore() {
			if s.sbLen >= len(s.storeBuf) {
				break // store buffer full: commit stalls (pure — no mutation)
			}
			s.storeBuf[(s.sbHead+s.sbLen)%len(s.storeBuf)] = u.di.Addr
			s.sbLen++
		}
		s.act |= actCommit // the instruction retires this cycle
		if in.IsMem() {
			s.lsq.Pop(h)
		}
		if in.IsCondBranch() {
			s.st.CondBranches++
			if !u.predCorrect {
				s.st.Mispredicts++
			}
			if s.pubs != nil {
				s.pubs.BranchExecuted(u.di.PC, u.predCorrect)
			}
			if s.brProf != nil {
				bs := s.brProf.get(u.di.PC)
				bs.Executed++
				if !u.predCorrect {
					bs.Mispredicts++
				}
			}
		}
		if in.Op == isa.Jr {
			s.st.IndirectJumps++
			if u.mispredict {
				s.st.IndirectMispred++
			}
		}
		if in.HasDest() {
			if p := s.regProducer[in.Rd]; p.h == h && p.seq == u.di.Seq {
				s.regProducer[in.Rd] = src{h: -1}
			}
			if in.Rd.IsFP() {
				s.fpInFlight--
			} else {
				s.intInFlight--
			}
		}
		if s.pipeTrace != nil && s.pipeTraceLeft > 0 {
			s.pipeTraceLeft--
			s.emitPipeTrace(u)
		}
		s.rob.Pop()
		u.live = false
		s.freeU = append(s.freeU, h)
		s.st.Committed++
		s.committedTotal++
		s.lastCommitAt = s.now
		if s.pubs != nil && s.pubs.Mode() != nil {
			s.pubs.Mode().OnCommit(s.l2.Stats().Misses)
		}
		if in.Op == isa.Halt {
			s.halted = true
			break
		}
	}
}

// ---------- run ----------

// resetMeasurement clears counters at the warm-up boundary while leaving
// all microarchitectural state (predictors, caches, PUBS tables) warm.
func (s *Sim) resetMeasurement() {
	s.st.Reset()
	s.measureStart = s.now
	if s.cfg.Profile {
		// Reuse the profiling structures across the warm-up boundary —
		// reallocating them here put a map rebuild on the reset path and
		// leaked the warm-up histogram.
		s.occHist.Reset()
		s.brProf.reset()
	}
	s.baseL1I = *s.l1i.Stats()
	s.baseL1D = *s.l1d.Stats()
	s.baseL2 = *s.l2.Stats()
	if s.pubs != nil {
		s.basePubs = [3]uint64{s.pubs.UnconfBranches, s.pubs.UnconfSliceInsts, s.pubs.DecodedBranches}
	}
}

func sub(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:      a.Accesses - b.Accesses,
		Misses:        a.Misses - b.Misses,
		MSHRMerges:    a.MSHRMerges - b.MSHRMerges,
		Writebacks:    a.Writebacks - b.Writebacks,
		PrefetchReqs:  a.PrefetchReqs - b.PrefetchReqs,
		PrefetchFills: a.PrefetchFills - b.PrefetchFills,
		PrefetchHits:  a.PrefetchHits - b.PrefetchHits,
		PrefetchLate:  a.PrefetchLate - b.PrefetchLate,
	}
}

// Run simulates until `measure` instructions have committed after a
// `warmup`-instruction warm-up window (or until the program halts). It
// returns the measurement-window statistics.
func (s *Sim) Run(stream InstStream, warmup, measure uint64) (Result, error) {
	return s.RunContext(context.Background(), stream, warmup, measure)
}

// ctxCheckEvery throttles the context poll: deadlines and cancellation are
// observed within ~1K cycles (plus at most one idle-skip span), far below
// any useful watchdog budget. The poll is scheduled as a cycle threshold
// rather than a mask on s.now so an idle skip cannot jump over it.
const ctxCheckEvery = 1024

// RunContext is Run with cancellation and deadline support. A context
// deadline expiring mid-run aborts with an error wrapping
// simerr.ErrTimeout; cancellation aborts with the context's error. The
// liveness watchdog (Config.WatchdogCycles) aborts a run that stops
// committing with a *DeadlockError wrapping simerr.ErrDeadlock.
func (s *Sim) RunContext(ctx context.Context, stream InstStream, warmup, measure uint64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if stream == nil {
		return Result{}, fmt.Errorf("pipeline %s: nil instruction stream", s.cfg.Name)
	}
	if measure == 0 {
		return Result{}, fmt.Errorf("%w: pipeline %s: measurement window must be positive",
			simerr.ErrInvalidConfig, s.cfg.Name)
	}
	watchdog := s.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = DefaultWatchdogCycles
	}
	s.stream = stream
	if tr, ok := stream.(*Replay); ok && tr.Pre != nil && tr.Decode != nil && tr.pos < tr.Pre.Len() && tr.live == nil {
		s.trace = tr
	}
	rs := runState{
		warmup:   warmup,
		target:   warmup + measure,
		warmedUp: warmup == 0,
		hook:     progressFrom(ctx),
	}
	rs.nextProgress = rs.hook.every
	if rs.warmedUp {
		s.resetMeasurement()
	}

	skipEnabled := !s.cfg.NoIdleSkip
	burstEnabled := skipEnabled && !s.cfg.NoBurstSkip
	nextCtxCheck := s.now + ctxCheckEvery
	defer s.flushSkipTelemetry()

	for {
		s.act = 0
		s.stallCtr = nil
		s.stallRand = false
		if s.hangInjected {
			// Fault injection: the commit stage is wedged; the watchdog
			// below must diagnose it.
		} else if faultinject.Fire(faultinject.PipelineHang, s.cfg.Name) {
			s.hangInjected = true
		} else {
			s.commit()
		}
		if s.afterCommit(&rs) {
			break
		}
		s.issue()
		s.drainStores()
		s.dispatch()
		s.decodeWrongPath()
		s.fetch()
		if s.occHist != nil {
			s.occHist.Add(s.q.Occupancy())
		}
		// Null and quasi-null fast-forwarding, gated on what this cycle
		// actually touched. A cycle that mutated nothing skips to just
		// before the next wakeup event (idleskip.go) so the s.now++ below
		// lands exactly on it; a cycle whose only activity was fetch
		// staging or commit retirement extends into a burst that simulates
		// only that stage until a foreign threshold intervenes (burst.go).
		// All of it is disabled while fault injection is armed (robustness
		// tests count per-cycle Fire calls) and after an injected hang
		// (the watchdog diagnoses it on the polled path).
		if skipEnabled && !s.hangInjected && !faultinject.Armed() {
			switch {
			case s.act == 0:
				if t := s.nextWake(); t > s.now+1 {
					s.skipCycles(t - s.now - 1)
				}
			case burstEnabled && s.act == actFetch:
				s.fetchDrainBurst()
			case burstEnabled && s.act == actCommit:
				if s.commitRunBurst(&rs) {
					// The burst's last commit hit the target, halted, or
					// emptied a finished machine — the same conditions the
					// afterCommit above breaks on, at the same cycle a
					// polled run would have.
					return s.finishRun(stream)
				}
			}
		}
		s.now++
		s.polled++
		if watchdog > 0 && s.now-s.lastCommitAt > watchdog {
			return Result{}, s.deadlockError()
		}
		// The invariant-sweep cadence keys on polled iterations, not on
		// s.now: in poll mode the two are equal, and under skipping the
		// sweep stays proportional to simulation work done instead of
		// aliasing against whatever cycles the skips happen to land on.
		if s.cfg.Checks && s.polled%checkInterval == 0 {
			if err := s.checkInvariants(); err != nil {
				return Result{}, err
			}
		}
		if s.now >= nextCtxCheck {
			nextCtxCheck = s.now + ctxCheckEvery
			if err := ctx.Err(); err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					return Result{}, fmt.Errorf("%w: pipeline %s: deadline exceeded at cycle %d (%d committed)",
						simerr.ErrTimeout, s.cfg.Name, s.now, s.committedTotal)
				}
				return Result{}, fmt.Errorf("pipeline %s: canceled at cycle %d (%d committed): %w",
					s.cfg.Name, s.now, s.committedTotal, err)
			}
		}
	}

	return s.finishRun(stream)
}

// runState carries the per-run control state the commit path consults
// every cycle: the warm-up boundary, the progress hook, and the
// measurement target. It is threaded to the commit-run burst so a burst
// cycle observes the identical cadence a polled cycle would.
type runState struct {
	warmup, target uint64
	warmedUp       bool
	hook           progressHook
	nextProgress   uint64
}

// afterCommit performs the bookkeeping that follows the commit stage in
// every simulated cycle — the warm-up boundary reset, the progress hook,
// and the termination checks — and reports whether the run is done. It is
// the single definition of that cadence: the main loop and the commit-run
// burst both call it, so results, hook firings, and the measurement
// window boundary are bit-identical whether a cycle was polled or bursted.
func (s *Sim) afterCommit(rs *runState) (done bool) {
	if !rs.warmedUp && s.committedTotal >= rs.warmup {
		s.resetMeasurement()
		rs.warmedUp = true
	}
	if rs.hook.fn != nil && s.committedTotal >= rs.nextProgress {
		rs.hook.fn(s.committedTotal)
		for rs.nextProgress <= s.committedTotal {
			rs.nextProgress += rs.hook.every
		}
	}
	if s.committedTotal >= rs.target || s.halted {
		return true
	}
	if s.streamDone && !s.hasPending && s.fqLen == 0 && s.rob.Empty() {
		return true
	}
	return false
}

// finishRun closes out a completed run: trace-replay error check, cycle
// accounting, and Result assembly.
func (s *Sim) finishRun(stream InstStream) (Result, error) {
	if tr, ok := stream.(*Replay); ok {
		if err := tr.Err(); err != nil {
			return Result{}, fmt.Errorf("pipeline %s: trace replay: %w", s.cfg.Name, err)
		}
	}
	s.st.Cycles = s.now - s.measureStart
	if s.st.Cycles == 0 {
		s.st.Cycles = 1
	}
	res := Result{
		Sim:      s.st,
		Name:     s.cfg.Name,
		Measured: s.st.Committed,
		L1I:      sub(*s.l1i.Stats(), s.baseL1I),
		L1D:      sub(*s.l1d.Stats(), s.baseL1D),
		L2:       sub(*s.l2.Stats(), s.baseL2),
	}
	res.L1IAccesses, res.L1IMisses = res.L1I.Accesses, res.L1I.Misses
	res.L1DAccesses, res.L1DMisses = res.L1D.Accesses, res.L1D.Misses
	res.LLCAccesses, res.LLCMisses = res.L2.Accesses, res.L2.Misses
	res.Prefetches = res.L2.PrefetchReqs
	if s.cfg.Profile {
		res.IQOccupancy = s.occHist
		res.TopBranches = s.brProf.top(10)
	}
	if s.pubs != nil {
		res.UnconfBranches = s.pubs.UnconfBranches - s.basePubs[0]
		res.UnconfSliceInsts = s.pubs.UnconfSliceInsts - s.basePubs[1]
		res.DecodedBranches = s.pubs.DecodedBranches - s.basePubs[2]
		if m := s.pubs.Mode(); m != nil {
			res.ModeSwitchChecks = m.Checks
			res.ModeEnabledWindows = m.EnabledWindows
		}
	}
	return res, nil
}

// SetPipeTrace streams a per-instruction stage log to w for the first
// maxInsts committed instructions: fetch (F), dispatch (D), issue (I),
// execution complete (X), and commit (C) cycle numbers, plus PUBS flags
// (`u` = predicted in an unconfident slice, `P` = held a priority entry,
// `!` = mispredicted blocking branch). Call before Run.
func (s *Sim) SetPipeTrace(w io.Writer, maxInsts int64) {
	s.pipeTrace = w
	s.pipeTraceLeft = maxInsts
}

func (s *Sim) emitPipeTrace(u *uop) {
	flags := ""
	if u.unconf {
		flags += "u"
	}
	if u.inPriority {
		flags += "P"
	}
	if u.mispredict {
		flags += "!"
	}
	issue := "-"
	if u.issueCycle >= 0 {
		issue = fmt.Sprint(u.issueCycle)
	}
	fmt.Fprintf(s.pipeTrace, "seq=%-8d pc=%-6d %-24s F=%-8d D=%-8d I=%-8s X=%-8d C=%-8d %s\n",
		u.di.Seq, u.di.Idx, u.di.Inst, u.fetchCycle, u.dispatchCycle, issue,
		u.completeCycle, s.now, flags)
}

// RunProgram is a convenience wrapper: emulate prog and simulate it.
func RunProgram(cfg Config, prog *isa.Program, warmup, measure uint64) (Result, error) {
	return RunProgramContext(context.Background(), cfg, prog, warmup, measure)
}

// RunProgramContext is RunProgram with cancellation and deadline support
// (see RunContext for the error taxonomy).
func RunProgramContext(ctx context.Context, cfg Config, prog *isa.Program, warmup, measure uint64) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	s.SetStaticCode(prog.Code)
	m, err := emu.New(prog)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx, Stream{M: m}, warmup, measure)
}
