package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/iq"
	"repro/internal/simerr"
	"repro/internal/workload"
)

// TestValidateRejections: every structural impossibility must be rejected
// with an error wrapping simerr.ErrInvalidConfig, not silently clamped.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero fetch width", func(c *Config) { c.FetchWidth = 0 }},
		{"negative issue width", func(c *Config) { c.IssueWidth = -1 }},
		{"zero commit width", func(c *Config) { c.CommitWidth = 0 }},
		{"zero front-end depth", func(c *Config) { c.FrontEndDepth = 0 }},
		{"zero ROB", func(c *Config) { c.ROBSize = 0 }},
		{"zero IQ", func(c *Config) { c.IQSize = 0 }},
		{"zero LSQ", func(c *Config) { c.LSQSize = 0 }},
		{"too few int regs", func(c *Config) { c.PhysIntRegs = 31 }},
		{"too few fp regs", func(c *Config) { c.PhysFPRegs = 0 }},
		{"no ALUs", func(c *Config) { c.NumIntALU = 0 }},
		{"no load/store units", func(c *Config) { c.NumLdSt = 0 }},
		{"zero store buffer", func(c *Config) { c.StoreBufferSize = 0 }},
		{"priority entries fill the IQ", func(c *Config) {
			c.PUBS = core.DefaultConfig()
			c.PUBS.PriorityEntries = c.IQSize
		}},
		{"PUBS on a shifting queue", func(c *Config) {
			c.PUBS = core.DefaultConfig()
			c.IQKind = iq.Shifting
		}},
		{"distributed shifting queue", func(c *Config) {
			c.DistributedIQ = true
			c.IQKind = iq.Shifting
		}},
		{"zero-width confidence counter", func(c *Config) {
			c.PUBS = core.DefaultConfig()
			c.PUBS.ConfCounterBits = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BaseConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, simerr.ErrInvalidConfig) {
				t.Fatalf("error %v does not wrap ErrInvalidConfig", err)
			}
		})
	}
	if err := BaseConfig().Validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
	if err := PUBSConfig().Validate(); err != nil {
		t.Errorf("PUBS config rejected: %v", err)
	}
}

// TestRunContextZeroMeasure: an empty measurement window is a config error,
// not a zero-division hazard downstream.
func TestRunContextZeroMeasure(t *testing.T) {
	_, err := RunProgramContext(context.Background(), BaseConfig(), workload.MustProgram("parser"), 0, 0)
	if !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
}

// TestWatchdogCatchesInjectedHang: suppressing commit mid-run must trip the
// liveness watchdog within its cycle budget and produce the full diagnosis.
func TestWatchdogCatchesInjectedHang(t *testing.T) {
	defer faultinject.Reset()
	cfg := BaseConfig()
	cfg.Name = "base-hangtest"
	cfg.WatchdogCycles = 2_000
	faultinject.Arm(faultinject.PipelineHang, cfg.Name, 1)

	_, err := RunProgramContext(context.Background(), cfg, workload.MustProgram("parser"), 1_000, 100_000)
	if !errors.Is(err, simerr.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if de.Config != cfg.Name {
		t.Errorf("diagnosis names %q", de.Config)
	}
	if de.SinceCommit < cfg.WatchdogCycles {
		t.Errorf("tripped after %d cycles, budget %d", de.SinceCommit, cfg.WatchdogCycles)
	}
	// Commit stopped but dispatch kept running, so the window structures
	// must have backed up and the ROB head must be identified.
	if de.ROBLen == 0 {
		t.Error("diagnosis shows an empty ROB")
	}
	if de.Oldest == nil {
		t.Fatal("diagnosis missing the oldest stalled instruction")
	}
	msg := de.Error()
	for _, want := range []string{"no commit", "ROB", "IQ", "LSQ", "oldest"} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump missing %q:\n%s", want, msg)
		}
	}
}

// TestWatchdogQuietOnHealthyRun: the default budget must never trip on a
// normal simulation.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := PUBSConfig()
	cfg.WatchdogCycles = 10_000 // far tighter than the default, still quiet
	if _, err := RunProgramContext(context.Background(), cfg, workload.MustProgram("parser"), 5_000, 20_000); err != nil {
		t.Fatal(err)
	}
}

// TestRunContextCancellation: a cancelled context stops the simulation with
// an error wrapping context.Canceled; an expired deadline surfaces as
// simerr.ErrTimeout.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunProgramContext(ctx, BaseConfig(), workload.MustProgram("parser"), 1_000, 100_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err = RunProgramContext(ctx, BaseConfig(), workload.MustProgram("parser"), 1_000, 100_000)
	if !errors.Is(err, simerr.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestInvariantChecksCleanRun: the structural sweep must stay silent on
// healthy base, PUBS, and distributed machines — it exists to catch
// corruption, not to veto correct configurations.
func TestInvariantChecksCleanRun(t *testing.T) {
	for _, cfg := range []Config{BaseConfig(), PUBSConfig()} {
		cfg.Checks = true
		if _, err := RunProgramContext(context.Background(), cfg, workload.MustProgram("parser"), 5_000, 20_000); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	dist := PUBSConfig()
	dist.Name = "pubs-dist-checks"
	dist.DistributedIQ = true
	dist.Checks = true
	if _, err := RunProgramContext(context.Background(), dist, workload.MustProgram("parser"), 5_000, 20_000); err != nil {
		t.Errorf("%s: %v", dist.Name, err)
	}
}
