package pipeline

import "context"

// Progress reporting is carried on the context rather than the Config so
// that (a) it composes with every existing entry point — RunProgramContext,
// sampling windows, the experiment Runner — without new signatures, and
// (b) Config stays a pure value: its fmt-rendered form is the memoization
// and checkpoint key, which a function pointer field would poison with a
// nondeterministic address.

type progressKey struct{}

type progressHook struct {
	every uint64
	fn    func(committed uint64)
}

// WithProgress returns a context under which any simulation reports
// committed-instruction progress: fn is called synchronously from the
// simulation goroutine roughly every `every` committed instructions,
// warm-up included (the caller knows its warmup+measure target). fn must be
// fast and must not block; a service streaming NDJSON progress should hand
// the count to a channel or buffer, not do I/O inline. A zero interval or
// nil fn leaves the context unchanged.
//
// The cadence keys on committed instructions, not cycles, so it is
// unaffected by the idle-cycle skip: skipped spans commit nothing by
// construction, and the hook fires at identical counts in skip and poll
// mode (pinned by TestIdleSkipProgressCadence).
func WithProgress(ctx context.Context, every uint64, fn func(committed uint64)) context.Context {
	if every == 0 || fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, progressHook{every: every, fn: fn})
}

// progressFrom extracts the hook; the zero hook (nil fn) means disabled.
func progressFrom(ctx context.Context) progressHook {
	h, _ := ctx.Value(progressKey{}).(progressHook)
	return h
}
