package pipeline

// Closed-form advancement of the xorshift64 state (DESIGN.md §14, phase 2).
//
// rand01's state transition is linear over GF(2): each of the three
// shift-xor steps is a linear map on the 64-bit state vector, so one RNG
// step is multiplication by a fixed 64×64 bit matrix M, and k steps are
// multiplication by M^k. skipCycles used to replay a k-cycle
// weighted-dispatch stall span with a k-iteration loop; with the jump
// table below it decomposes k into powers of two and applies the
// precomputed M^(2^i) matrices — O(log k) matrix applications, each 64
// conditional XORs — while producing the bit-identical state the loop
// would have.
//
// A matrix is stored column-major as [64]uint64: column b is the image of
// basis vector e_b (the state with only bit b set). Applying a matrix to a
// state XORs together the columns selected by the state's set bits.

// rngStep is the scalar xorshift64 transition, shared by rand01 and the
// table construction so the two can never drift.
func rngStep(x uint64) uint64 {
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x
}

// rngMatrix is a GF(2) linear map on the 64-bit state, column-major.
type rngMatrix [64]uint64

// apply multiplies the matrix by the state vector.
func (m *rngMatrix) apply(x uint64) uint64 {
	var y uint64
	for b := 0; x != 0; b++ {
		if x&1 != 0 {
			y ^= m[b]
		}
		x >>= 1
	}
	return y
}

// mul sets dst = m ∘ n (first n, then m).
func (m *rngMatrix) mul(n *rngMatrix) rngMatrix {
	var dst rngMatrix
	for b := 0; b < 64; b++ {
		dst[b] = m.apply(n[b])
	}
	return dst
}

// rngJumps[i] is M^(2^i): applying it advances the RNG 2^i steps.
var rngJumps = computeRNGJumps()

func computeRNGJumps() [64]rngMatrix {
	var jumps [64]rngMatrix
	// M itself: image of each basis vector under one step.
	for b := 0; b < 64; b++ {
		jumps[0][b] = rngStep(uint64(1) << b)
	}
	// Repeated squaring: M^(2^(i+1)) = M^(2^i) ∘ M^(2^i).
	for i := 1; i < 64; i++ {
		jumps[i] = jumps[i-1].mul(&jumps[i-1])
	}
	return jumps
}

// jumpRNG advances the xorshift64 state k steps in O(log k), bit-identical
// to k calls of rngStep. k must be non-negative.
func jumpRNG(x uint64, k int64) uint64 {
	for i := 0; k != 0; i++ {
		if k&1 != 0 {
			x = rngJumps[i].apply(x)
		}
		k >>= 1
	}
	return x
}
