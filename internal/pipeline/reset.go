package pipeline

import (
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/stats"
)

// Reset returns the simulator to its freshly-constructed state without
// reallocating any of its structures: every microarchitectural block
// (predictors, BTB, RAS, caches, memory bus, PUBS tables, issue queue, ROB,
// LSQ), all in-flight bookkeeping, the deterministic RNG seeds, and the
// statistics. A Reset-then-Run is bit-identical to a fresh New-then-Run —
// the window-replay scheduler relies on this to reuse one Sim per machine
// variant across every window of a sweep instead of paying construction per
// window.
func (s *Sim) Reset() {
	s.bp.Reset()
	s.btb.Reset()
	s.ras.Reset()
	s.l1i.Reset()
	s.l1d.Reset()
	s.l2.Reset()
	s.mem.Reset()
	if s.pubs != nil {
		s.pubs.Reset()
	}
	s.q.Reset()
	s.rob.Reset()
	s.lsq.Reset()

	for i := range s.uops {
		s.uops[i] = uop{}
	}
	s.freeU = s.freeU[:0]
	for h := s.cfg.ROBSize - 1; h >= 0; h-- {
		s.freeU = append(s.freeU, h)
	}
	for i := range s.fetchQ {
		s.fetchQ[i] = fqEntry{}
	}
	s.fqHead, s.fqLen = 0, 0

	s.now, s.fetchResumeAt = 0, 0
	s.blockedOnSeq = noSeq
	s.lastLine, s.haveLine, s.lineReadyAt = 0, false, 0

	s.pending, s.hasPending = emu.DynInst{}, false
	s.streamDone, s.halted, s.hangInjected = false, false, false

	s.code = nil
	s.wrongPathIdx, s.wrongPathLeft = -1, 0

	for r := range s.regProducer {
		s.regProducer[r] = src{h: -1}
	}
	s.intInFlight, s.fpInFlight = 0, 0

	for p := range s.fuBusy {
		row := s.fuBusy[p]
		for i := range row {
			row[i] = 0
		}
	}
	s.fuRemaining = [4]int{}
	for i := range s.dports {
		s.dports[i] = 0
	}

	for i := range s.storeBuf {
		s.storeBuf[i] = 0
	}
	s.sbHead, s.sbLen = 0, 0

	s.rng = 0x9E3779B97F4A7C15
	s.pipeTrace, s.pipeTraceLeft = nil, 0

	s.act, s.stallCtr, s.stallRand = 0, nil, false
	s.polled, s.skipSpans, s.skippedCycles = 0, 0, 0
	s.wake.clear()
	s.fetchBurstSpans, s.fetchBurstCycles = 0, 0
	s.commitBurstSpans, s.commitBurstCycles = 0, 0
	s.telemetryFlushed = SkipTelemetry{}

	s.st = stats.Sim{}
	if s.occHist != nil {
		s.occHist.Reset()
	}
	s.brProf.reset() // nil-safe
	s.committedTotal, s.lastCommitAt, s.measureStart = 0, 0, 0
	s.baseL1I, s.baseL1D, s.baseL2 = cache.Stats{}, cache.Stats{}, cache.Stats{}
	s.basePubs = [3]uint64{}
	s.stream = nil
	s.trace = nil
}
