package pipeline

import "math"

// Event-driven idle-cycle skipping (DESIGN.md §14).
//
// The cycle loop normally polls every structure every cycle. On memory-bound
// workloads most of those cycles are null: commit is blocked on a
// fixed-latency miss, the issue queue holds nothing ready, dispatch is
// stalled on a full window, the store buffer is drained or port-blocked, and
// fetch is either redirecting or waiting on an instruction line. Rather than
// poll through such a span, the simulator jumps s.now directly to the next
// cycle at which anything can change.
//
// Correctness rests on a null-cycle induction, not on per-structure idle
// heuristics:
//
//  1. Every stage marks s.active when it mutates any persistent state:
//     committing, granting, draining a store, decoding or dispatching,
//     walking the wrong path, pulling from the instruction stream,
//     requesting an I-line, or staging a fetched instruction. A cycle that
//     ends with s.active still false mutated nothing except the recorded
//     integrable tick (below) — machine state at the end of the cycle equals
//     state at its start.
//
//  2. Every stage predicate depends on time only through comparisons
//     against absolute-cycle thresholds (uop completion cycles, fuBusy
//     busy-until cycles, D-port free cycles, fetchResumeAt, lineReadyAt,
//     fetch-queue entry age). nextWake collects every such threshold that
//     lies in the future. If none lies in (now, T), a null cycle at `now`
//     implies cycles now+1 .. T-1 are null too, with byte-identical state
//     and therefore the identical per-cycle tick.
//
//  3. The only state that legitimately advances during a stalled cycle is
//     integrable: exactly one dispatch-stall counter (recorded as
//     s.stallCtr by the stall site that fired this cycle), one xorshift
//     draw when the failing dispatch path was the weighted §III-B3 policy
//     (s.stallRand), and one occupancy-histogram sample under
//     Config.Profile. skipCycles replays k of each in closed form.
//
// The skip is disabled while any fault-injection point is armed (the
// robustness tests count per-cycle Fire calls) and after an injected hang
// (the watchdog must diagnose it on the polled path). A machine with no
// future event — a genuine deadlock — never skips, so the watchdog retains
// its full diagnostic power.

// neverWakes is nextWake's "no future event" sentinel.
const neverWakes = int64(math.MaxInt64)

// nextWake returns the earliest future cycle at which any stage predicate
// can change its truth value, or neverWakes if no such cycle is known.
// Thresholds that cannot matter in the current machine state may still be
// included (a busy FU nobody waits for, a stale line-fill time): a spurious
// wakeup only shortens the skip — the landing cycle is simulated normally
// and re-enters the skip if it too is null.
func (s *Sim) nextWake() int64 {
	t := neverWakes
	consider := func(v int64) {
		if v > s.now && v < t {
			t = v
		}
	}
	// Execution completions: wake IQ dependents and unblock the ROB head.
	for i := range s.uops {
		u := &s.uops[i]
		if u.live && u.scheduled {
			consider(u.completeCycle)
		}
	}
	// Non-pipelined function units freeing up can turn a zero-grant select
	// into a granting one.
	for p := range s.fuBusy {
		for _, busy := range s.fuBusy[p] {
			consider(busy)
		}
	}
	// A D-port freeing lets a committed store drain.
	if s.sbLen > 0 {
		for _, d := range s.dports {
			consider(d)
		}
	}
	// Fetch redirect arrival and the in-flight I-line fill.
	consider(s.fetchResumeAt)
	consider(s.lineReadyAt)
	// The oldest fetched instruction clearing the front-end pipeline makes
	// it eligible for dispatch.
	if s.fqLen > 0 {
		consider(s.fetchQ[s.fqHead].fetchCycle + s.cfg.FrontEndDepth)
	}
	return t
}

// skipCycles advances the machine k cycles in one step, integrating the
// per-cycle accumulators the skipped cycles would have produced: the
// occupancy histogram sample, the dispatch-stall counter recorded by this
// cycle's stall site, and the weighted-dispatch RNG draw. lastCommitAt
// advances with the span so the watchdog keeps counting polled cycles
// since the last commit (a proven-idle span is proven progress, not a
// hang). Callers guarantee the current cycle was null and that no stage
// threshold lies inside the span.
func (s *Sim) skipCycles(k int64) {
	if s.occHist != nil {
		s.occHist.AddN(s.q.Occupancy(), uint64(k))
	}
	if s.stallCtr != nil {
		*s.stallCtr += uint64(k)
	}
	if s.stallRand {
		for i := int64(0); i < k; i++ {
			s.rng ^= s.rng >> 12
			s.rng ^= s.rng << 25
			s.rng ^= s.rng >> 27
		}
	}
	s.lastCommitAt += k
	s.now += k
	s.skipSpans++
	s.skippedCycles += uint64(k)
}

// SkipStats reports the idle-skip telemetry for the whole run so far:
// the number of skipped spans and the total cycles they covered. The
// counters live outside Result on purpose — skip on and skip off must
// produce DeepEqual-identical Results.
func (s *Sim) SkipStats() (spans, cycles uint64) {
	return s.skipSpans, s.skippedCycles
}
