package pipeline

import (
	"math"
	"sync/atomic"
)

// Event-driven idle-cycle skipping (DESIGN.md §14).
//
// The cycle loop normally polls every structure every cycle. On memory-bound
// workloads most of those cycles are null: commit is blocked on a
// fixed-latency miss, the issue queue holds nothing ready, dispatch is
// stalled on a full window, the store buffer is drained or port-blocked, and
// fetch is either redirecting or waiting on an instruction line. Rather than
// poll through such a span, the simulator jumps s.now directly to the next
// cycle at which anything can change.
//
// Correctness rests on a null-cycle induction, not on per-structure idle
// heuristics:
//
//  1. Every stage ORs its bit into s.act when it mutates any persistent
//     state: committing, granting, draining a store, decoding or
//     dispatching, walking the wrong path, pulling from the instruction
//     stream, requesting an I-line, or staging a fetched instruction. A
//     cycle that ends with s.act still zero mutated nothing except the
//     recorded integrable tick (below) — machine state at the end of the
//     cycle equals state at its start.
//
//  2. Every stage predicate depends on time only through comparisons
//     against absolute-cycle thresholds (uop completion cycles, fuBusy
//     busy-until cycles, D-port free cycles, fetchResumeAt, lineReadyAt,
//     fetch-queue entry age). Each threshold is pushed into the wakeHeap
//     at the instant a stage assigns it, so the heap top bounds the next
//     cycle at which any predicate can change truth value. If it lies at
//     or beyond T, a null cycle at `now` implies cycles now+1 .. T-1 are
//     null too, with byte-identical state and therefore the identical
//     per-cycle tick.
//
//  3. The only state that legitimately advances during a stalled cycle is
//     integrable: exactly one dispatch-stall counter (recorded as
//     s.stallCtr by the stall site that fired this cycle), one xorshift
//     draw when the failing dispatch path was the weighted §III-B3 policy
//     (s.stallRand), and one occupancy-histogram sample under
//     Config.Profile. skipCycles replays k of each in closed form — the
//     RNG via the precomputed GF(2) jump matrices (rngjump.go), O(log k).
//
// Phase 2 (burst.go) extends the same induction to quasi-null spans whose
// single set s.act bit names a provably self-contained stage: fetch-drain
// bursts (s.act == actFetch) and commit-run bursts (s.act == actCommit).
//
// The skip is disabled while any fault-injection point is armed (the
// robustness tests count per-cycle Fire calls) and after an injected hang
// (the watchdog must diagnose it on the polled path). A machine with no
// future event — a genuine deadlock — never skips, so the watchdog retains
// its full diagnostic power.

// Stage activity bits for Sim.act. A null cycle ends with act == 0; the
// burst detectors additionally key on single-bit values.
const (
	actCommit uint8 = 1 << iota
	actIssue
	actDrain
	actDispatch
	actWrongPath
	actFetch
)

// neverWakes is nextWake's "no future event" sentinel.
const neverWakes = int64(math.MaxInt64)

// nextWake returns the earliest future cycle at which any stage predicate
// can change its truth value, or neverWakes if no such cycle is known. It
// reads the event heap that stages feed as they create thresholds, so a
// skip attempt costs the lazy stale-drain at the top rather than a rescan
// of every uop, function unit, and port (nextWakeScan, kept below, is that
// rescan — the audit tests and the microbenchmark compare against it).
// The heap may hold thresholds that cannot matter in the current machine
// state (a busy FU nobody waits for, an overwritten line-fill time): a
// spurious wakeup only shortens the skip — the landing cycle is simulated
// normally and re-enters the skip if it too is null.
func (s *Sim) nextWake() int64 {
	return s.wake.next(s.now)
}

// nextWakeScan is the pre-heap threshold rescan: the ground truth the
// event index is audited against (TestWakeHeapNeverLate) and benchmarked
// against (BenchmarkNextWake). The heap must never report a later wake
// than this scan — that would skip across a real threshold — while it may
// report an earlier, spurious one.
func (s *Sim) nextWakeScan() int64 {
	t := neverWakes
	consider := func(v int64) {
		if v > s.now && v < t {
			t = v
		}
	}
	// Execution completions: wake IQ dependents and unblock the ROB head.
	for i := range s.uops {
		u := &s.uops[i]
		if u.live && u.scheduled {
			consider(u.completeCycle)
		}
	}
	// Non-pipelined function units freeing up can turn a zero-grant select
	// into a granting one.
	for p := range s.fuBusy {
		for _, busy := range s.fuBusy[p] {
			consider(busy)
		}
	}
	// A D-port freeing lets a committed store drain.
	if s.sbLen > 0 {
		for _, d := range s.dports {
			consider(d)
		}
	}
	// Fetch redirect arrival and the in-flight I-line fill.
	consider(s.fetchResumeAt)
	consider(s.lineReadyAt)
	// The oldest fetched instruction clearing the front-end pipeline makes
	// it eligible for dispatch.
	if s.fqLen > 0 {
		consider(s.fetchQ[s.fqHead].fetchCycle + s.cfg.FrontEndDepth)
	}
	return t
}

// skipCycles advances the machine k cycles in one step, integrating the
// per-cycle accumulators the skipped cycles would have produced: the
// occupancy histogram sample, the dispatch-stall counter recorded by this
// cycle's stall site, and the weighted-dispatch RNG draws (jumped in
// O(log k) via the GF(2) matrices — bit-identical to k sequential draws).
// lastCommitAt advances with the span so the watchdog keeps counting
// polled cycles since the last commit (a proven-idle span is proven
// progress, not a hang). Callers guarantee the current cycle was null and
// that no stage threshold lies inside the span.
func (s *Sim) skipCycles(k int64) {
	if s.occHist != nil {
		s.occHist.AddN(s.q.Occupancy(), uint64(k))
	}
	if s.stallCtr != nil {
		*s.stallCtr += uint64(k)
	}
	if s.stallRand {
		s.rng = jumpRNG(s.rng, k)
	}
	s.lastCommitAt += k
	s.now += k
	s.skipSpans++
	s.skippedCycles += uint64(k)
}

// SkipStats reports the null-span idle-skip telemetry for the whole run so
// far: the number of skipped spans and the total cycles they covered. The
// counters live outside Result on purpose — skip on and skip off must
// produce DeepEqual-identical Results.
func (s *Sim) SkipStats() (spans, cycles uint64) {
	return s.skipSpans, s.skippedCycles
}

// SkipTelemetry is the full idle-skip efficacy report: the phase-1 null
// spans plus the phase-2 quasi-null bursts, per class. Like SkipStats it
// is deliberately not part of Result — scheduling telemetry must never
// leak into the bit-identity surface.
type SkipTelemetry struct {
	SkipSpans     uint64 `json:"skip_spans"`
	SkippedCycles uint64 `json:"skipped_cycles"`

	FetchBurstSpans  uint64 `json:"fetch_burst_spans"`
	FetchBurstCycles uint64 `json:"fetch_burst_cycles"`

	CommitBurstSpans  uint64 `json:"commit_burst_spans"`
	CommitBurstCycles uint64 `json:"commit_burst_cycles"`
}

// add accumulates o into t.
func (t *SkipTelemetry) add(o SkipTelemetry) {
	t.SkipSpans += o.SkipSpans
	t.SkippedCycles += o.SkippedCycles
	t.FetchBurstSpans += o.FetchBurstSpans
	t.FetchBurstCycles += o.FetchBurstCycles
	t.CommitBurstSpans += o.CommitBurstSpans
	t.CommitBurstCycles += o.CommitBurstCycles
}

// sub returns t - o (counter deltas; counters are monotone within a run).
func (t SkipTelemetry) sub(o SkipTelemetry) SkipTelemetry {
	return SkipTelemetry{
		SkipSpans:         t.SkipSpans - o.SkipSpans,
		SkippedCycles:     t.SkippedCycles - o.SkippedCycles,
		FetchBurstSpans:   t.FetchBurstSpans - o.FetchBurstSpans,
		FetchBurstCycles:  t.FetchBurstCycles - o.FetchBurstCycles,
		CommitBurstSpans:  t.CommitBurstSpans - o.CommitBurstSpans,
		CommitBurstCycles: t.CommitBurstCycles - o.CommitBurstCycles,
	}
}

// SkipTelemetry returns the per-run skip/burst counters so far.
func (s *Sim) SkipTelemetry() SkipTelemetry {
	return SkipTelemetry{
		SkipSpans:         s.skipSpans,
		SkippedCycles:     s.skippedCycles,
		FetchBurstSpans:   s.fetchBurstSpans,
		FetchBurstCycles:  s.fetchBurstCycles,
		CommitBurstSpans:  s.commitBurstSpans,
		CommitBurstCycles: s.commitBurstCycles,
	}
}

// globalSkip aggregates skip telemetry across every Sim in the process,
// for the daemon's /metrics endpoint. Sims flush once per RunContext (not
// per span — atomics on the skip hot path would tax exactly the cycles
// the skip exists to cheapen).
var globalSkip struct {
	skipSpans     atomic.Uint64
	skippedCycles atomic.Uint64

	fetchBurstSpans  atomic.Uint64
	fetchBurstCycles atomic.Uint64

	commitBurstSpans  atomic.Uint64
	commitBurstCycles atomic.Uint64
}

// flushSkipTelemetry publishes the counters accumulated since the last
// flush to the process-wide totals. Called once per RunContext (deferred,
// so error exits flush too).
func (s *Sim) flushSkipTelemetry() {
	d := s.SkipTelemetry().sub(s.telemetryFlushed)
	s.telemetryFlushed = s.SkipTelemetry()
	if d.SkipSpans|d.SkippedCycles != 0 {
		globalSkip.skipSpans.Add(d.SkipSpans)
		globalSkip.skippedCycles.Add(d.SkippedCycles)
	}
	if d.FetchBurstSpans != 0 {
		globalSkip.fetchBurstSpans.Add(d.FetchBurstSpans)
		globalSkip.fetchBurstCycles.Add(d.FetchBurstCycles)
	}
	if d.CommitBurstSpans != 0 {
		globalSkip.commitBurstSpans.Add(d.CommitBurstSpans)
		globalSkip.commitBurstCycles.Add(d.CommitBurstCycles)
	}
}

// GlobalSkipTelemetry returns the process-wide totals, per burst class.
func GlobalSkipTelemetry() SkipTelemetry {
	return SkipTelemetry{
		SkipSpans:         globalSkip.skipSpans.Load(),
		SkippedCycles:     globalSkip.skippedCycles.Load(),
		FetchBurstSpans:   globalSkip.fetchBurstSpans.Load(),
		FetchBurstCycles:  globalSkip.fetchBurstCycles.Load(),
		CommitBurstSpans:  globalSkip.commitBurstSpans.Load(),
		CommitBurstCycles: globalSkip.commitBurstCycles.Load(),
	}
}

// SkipCounters reports the process-wide skip telemetry: spans and cycles
// covered by null skips, and by quasi-null bursts (both classes summed).
// This is what pubsd's node-labeled pubsd_skip_* metrics export.
func SkipCounters() (skipSpans, skippedCycles, burstSpans, burstCycles uint64) {
	t := GlobalSkipTelemetry()
	return t.SkipSpans, t.SkippedCycles,
		t.FetchBurstSpans + t.CommitBurstSpans,
		t.FetchBurstCycles + t.CommitBurstCycles
}
