package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/simerr"
)

// StalledInst describes the oldest in-flight instruction at the moment the
// watchdog tripped — the instruction whose failure to complete is blocking
// commit, and therefore the first thing to look at in a deadlock.
type StalledInst struct {
	Seq           uint64 // dynamic sequence number
	PC            uint64
	Inst          string // disassembled instruction
	DispatchCycle int64
	Issued        bool  // granted by the select logic
	Scheduled     bool  // completion time known
	CompleteCycle int64 // valid when Scheduled
}

// DeadlockError is the watchdog's diagnosis: the commit stage made no
// progress for the configured cycle budget. It wraps simerr.ErrDeadlock
// and carries the occupancy of every window structure plus the oldest
// stalled instruction, so a hung campaign run leaves an actionable report
// instead of a wedged process.
//
// The budget counts polled cycles only: spans fast-forwarded by the idle
// skip (DESIGN.md §14) advance lastCommitAt with s.now, because a skip is
// only taken when a future wakeup event provably exists — a machine with
// no future event never skips, so every genuine deadlock is still walked
// and diagnosed cycle by cycle.
type DeadlockError struct {
	Config      string // machine name
	Cycle       int64  // cycle at which the watchdog tripped
	SinceCommit int64  // cycles since the last commit
	Committed   uint64 // instructions committed before the stall

	ROBLen, ROBCap int
	IQOccupancy    int
	IQSize         int
	LSQLen, LSQCap int
	FetchQLen      int
	PriorityFree   int // free PUBS priority entries (PUBS machines)

	Oldest *StalledInst // nil when the ROB was empty
}

// Error renders the full occupancy dump.
func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline %s: deadlock: no commit for %d cycles at cycle %d (%d committed)",
		e.Config, e.SinceCommit, e.Cycle, e.Committed)
	fmt.Fprintf(&sb, "; occupancy ROB %d/%d IQ %d/%d LSQ %d/%d fetchQ %d priorityFree %d",
		e.ROBLen, e.ROBCap, e.IQOccupancy, e.IQSize, e.LSQLen, e.LSQCap, e.FetchQLen, e.PriorityFree)
	if e.Oldest != nil {
		o := e.Oldest
		fmt.Fprintf(&sb, "; oldest seq=%d pc=%d %q dispatched@%d issued=%v scheduled=%v complete@%d",
			o.Seq, o.PC, o.Inst, o.DispatchCycle, o.Issued, o.Scheduled, o.CompleteCycle)
	}
	return sb.String()
}

// Unwrap classifies the diagnosis under simerr.ErrDeadlock.
func (e *DeadlockError) Unwrap() error { return simerr.ErrDeadlock }

// deadlockError assembles the diagnosis from the simulator's live state.
func (s *Sim) deadlockError() *DeadlockError {
	e := &DeadlockError{
		Config:       s.cfg.Name,
		Cycle:        s.now,
		SinceCommit:  s.now - s.lastCommitAt,
		Committed:    s.committedTotal,
		ROBLen:       s.rob.Len(),
		ROBCap:       s.rob.Cap(),
		IQOccupancy:  s.q.Occupancy(),
		IQSize:       s.cfg.IQSize,
		LSQLen:       s.lsq.Len(),
		LSQCap:       s.lsq.Cap(),
		FetchQLen:    s.fqLen,
		PriorityFree: s.q.PriorityFree(),
	}
	if h, ok := s.rob.Head(); ok {
		u := &s.uops[h]
		e.Oldest = &StalledInst{
			Seq:           u.di.Seq,
			PC:            u.di.PC,
			Inst:          fmt.Sprint(u.di.Inst),
			DispatchCycle: u.dispatchCycle,
			Issued:        u.issued,
			Scheduled:     u.scheduled,
			CompleteCycle: u.completeCycle,
		}
	}
	return e
}

// checkInterval is the cadence of the opt-in invariant sweep: frequent
// enough to catch corruption close to its cause, cheap enough to leave
// enabled for whole campaigns.
const checkInterval = 64

// checkInvariants audits every window structure and the PUBS tables.
func (s *Sim) checkInvariants() error {
	if err := s.q.CheckInvariants(); err != nil {
		return fmt.Errorf("pipeline %s at cycle %d: %w", s.cfg.Name, s.now, err)
	}
	if err := s.rob.CheckInvariants(); err != nil {
		return fmt.Errorf("pipeline %s at cycle %d: %w", s.cfg.Name, s.now, err)
	}
	if err := s.lsq.CheckInvariants(); err != nil {
		return fmt.Errorf("pipeline %s at cycle %d: %w", s.cfg.Name, s.now, err)
	}
	if s.pubs != nil {
		if err := s.pubs.CheckInvariants(); err != nil {
			return fmt.Errorf("pipeline %s at cycle %d: %w", s.cfg.Name, s.now, err)
		}
	}
	return nil
}
