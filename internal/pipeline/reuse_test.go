package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

// TestResetReuseGolden: for every golden machine variant, running on a Sim
// that already completed a run and was Reset must produce a Result
// bit-identical to a freshly constructed Sim — the contract that lets the
// window-replay scheduler keep one Sim per machine variant alive across a
// whole sweep.
func TestResetReuseGolden(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			prog := workload.MustProgram(gc.workload)
			fresh := runBench(t, gc.cfg, gc.workload, goldenWarmup, goldenMeasure)

			s, err := New(gc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.SetStaticCode(prog.Code)
			if _, err := s.Run(Stream{M: emu.MustNew(prog)}, goldenWarmup, goldenMeasure); err != nil {
				t.Fatal(err)
			}
			s.Reset()
			s.SetStaticCode(prog.Code)
			reused, err := s.Run(Stream{M: emu.MustNew(prog)}, goldenWarmup, goldenMeasure)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("%s: Reset-reuse diverged from fresh construction:\n fresh:  %+v\n reused: %+v",
					gc.name, fresh, reused)
			}
		})
	}
}

// TestTraceReplayGolden: replaying a predecoded trace through the
// trace-driven front end must reproduce the live-emulation Result
// bit-identically for every golden machine variant.
func TestTraceReplayGolden(t *testing.T) {
	// Record once per workload: the trace covers the run target plus enough
	// slack for the front end's bounded overfetch.
	const slack = 2048
	traces := map[string]*emu.Predecode{}
	decodes := map[string]*emu.StaticDecode{}
	for _, name := range []string{"chess", "goplay"} {
		prog := workload.MustProgram(name)
		m := emu.MustNew(prog)
		n := goldenWarmup + goldenMeasure + slack
		pre := emu.NewPredecode(n)
		for i := 0; i < n; i++ {
			di, ok := m.Step()
			if !ok {
				break
			}
			pre.Append(di)
		}
		traces[name] = pre
		decodes[name] = emu.NewStaticDecode(prog.Code)
	}

	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			prog := workload.MustProgram(gc.workload)
			live := runBench(t, gc.cfg, gc.workload, goldenWarmup, goldenMeasure)

			pre := traces[gc.workload]
			rp := &Replay{
				Pre:    pre,
				Decode: decodes[gc.workload],
				Fallback: func() (InstStream, error) {
					fm := emu.MustNew(prog)
					fm.Run(uint64(pre.Len()))
					return Stream{M: fm}, nil
				},
			}
			s, err := New(gc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.SetStaticCode(prog.Code)
			replayed, err := s.Run(rp, goldenWarmup, goldenMeasure)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(live, replayed) {
				t.Errorf("%s: trace replay diverged from live decode:\n live:   %+v\n replay: %+v",
					gc.name, live, replayed)
			}
			if fp, want := goldenFingerprint(replayed), goldenTable[gc.name]; replayed.Cycles != want.cycles || fp != want.fingerprint {
				t.Errorf("%s: replay cycles=%d fingerprint=0x%x, want cycles=%d fingerprint=0x%x",
					gc.name, replayed.Cycles, fp, want.cycles, want.fingerprint)
			}
		})
	}
}

// TestReplayFallback: a trace shorter than the run target must hand off to
// the live fallback stream mid-run and still match live decode exactly.
func TestReplayFallback(t *testing.T) {
	prog := workload.MustProgram("chess")
	live := runBench(t, PUBSConfig(), "chess", goldenWarmup, goldenMeasure)

	// Record only a quarter of the needed stretch to force the handoff.
	m := emu.MustNew(prog)
	n := (goldenWarmup + goldenMeasure) / 4
	pre := emu.NewPredecode(n)
	for i := 0; i < n; i++ {
		di, ok := m.Step()
		if !ok {
			break
		}
		pre.Append(di)
	}
	fallbacks := 0
	rp := &Replay{
		Pre:    pre,
		Decode: emu.NewStaticDecode(prog.Code),
		Fallback: func() (InstStream, error) {
			fallbacks++
			fm := emu.MustNew(prog)
			fm.Run(uint64(pre.Len()))
			return Stream{M: fm}, nil
		},
	}
	s, err := New(PUBSConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetStaticCode(prog.Code)
	replayed, err := s.Run(rp, goldenWarmup, goldenMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if fallbacks != 1 {
		t.Errorf("fallback invoked %d times, want exactly 1", fallbacks)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("fallback handoff diverged from live decode:\n live:   %+v\n replay: %+v", live, replayed)
	}
}

// TestReplayNoFallbackError: exhausting a non-halted trace with no fallback
// must surface an error rather than silently truncating the run.
func TestReplayNoFallbackError(t *testing.T) {
	prog := workload.MustProgram("chess")
	m := emu.MustNew(prog)
	pre := emu.NewPredecode(64)
	for i := 0; i < 64; i++ {
		di, ok := m.Step()
		if !ok {
			break
		}
		pre.Append(di)
	}
	rp := &Replay{Pre: pre, Decode: emu.NewStaticDecode(prog.Code)}
	s, err := New(BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(rp, 0, goldenMeasure); err == nil {
		t.Fatal("expected an error from a non-halted trace with no fallback")
	}
}
