package pipeline

import (
	"os"
	"testing"

	"repro/internal/workload"
)

// TestCalibrate prints base-vs-PUBS characteristics for every workload.
// It is a development aid, enabled with PUBS_CALIBRATE=1.
func TestCalibrate(t *testing.T) {
	if os.Getenv("PUBS_CALIBRATE") == "" {
		t.Skip("set PUBS_CALIBRATE=1 to run the calibration sweep")
	}
	const warm, meas = 300_000, 700_000
	type row struct {
		name                    string
		baseIPC, pubsIPC        float64
		brMPKI, llcMPKI, unconf float64
		stallPri                uint64
	}
	rows := make([]row, 0, 14)
	ch := make(chan row, 14)
	for _, w := range workload.All() {
		w := w
		go func() {
			base, err := RunProgram(BaseConfig(), workload.MustProgram(w.Name), warm, meas)
			if err != nil {
				t.Error(err)
				ch <- row{name: w.Name}
				return
			}
			pubs, err := RunProgram(PUBSConfig(), workload.MustProgram(w.Name), warm, meas)
			if err != nil {
				t.Error(err)
				ch <- row{name: w.Name}
				return
			}
			ch <- row{
				name:    w.Name,
				baseIPC: base.IPC(), pubsIPC: pubs.IPC(),
				brMPKI: base.BranchMPKI(), llcMPKI: base.LLCMPKI(),
				unconf:   pubs.UnconfidentRate() * 100,
				stallPri: pubs.DispatchStallPriority,
			}
		}()
	}
	for range workload.All() {
		rows = append(rows, <-ch)
	}
	for _, w := range workload.All() {
		for _, r := range rows {
			if r.name != w.Name || r.baseIPC == 0 {
				continue
			}
			t.Logf("%-10s base=%.3f pubs=%.3f speedup=%+6.2f%% brMPKI=%6.1f llcMPKI=%6.2f unconf=%5.1f%% stallPri=%d",
				r.name, r.baseIPC, r.pubsIPC, (r.pubsIPC/r.baseIPC-1)*100, r.brMPKI, r.llcMPKI, r.unconf, r.stallPri)
		}
	}
}
