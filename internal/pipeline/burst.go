package pipeline

// Quasi-null burst integration (DESIGN.md §14, phase 2).
//
// The phase-1 skip (idleskip.go) jumps spans where *nothing* mutates. The
// two burst classes below extend the induction to spans where exactly one
// stage mutates and every other stage is provably frozen until the event
// heap's top threshold T. The active stage is simulated cycle-by-cycle
// with its real mutations — bursting changes what the loop *doesn't* do:
// the frozen stages are not entered, the zero-grant select is not
// re-evaluated, and the per-cycle integrable ticks are replayed exactly
// as skipCycles replays them.
//
// Freeze arguments shared by both classes, all anchored on T = wake.next
// (the heap holds every future threshold, pushed at creation; see
// wakeheap.go):
//
//   - issue: a zero-grant Select is pure and deterministic in the IQ
//     content, the ready set, and the free function units. The IQ only
//     changes via dispatch (frozen) and grants (none). Readiness only
//     changes at uop completion thresholds (≥ T). Units only free at
//     fuBusy thresholds (≥ T). So Select would return zero grants every
//     cycle of the span — it is skipped, which is the main saving.
//
//   - drainStores: acts only when sbLen > 0 and a D-port threshold has
//     passed; ports free at heap thresholds (≥ T), and sbLen grows only
//     at commit (fetch burst: frozen; commit burst: guarded to retire no
//     stores while a port is or becomes free).
//
//   - dispatch: acts only on a mature, decodable fetch-queue head. Heads
//     mature at staging thresholds (≥ T). A mature head that is stalled
//     structurally stays stalled: the ROB, LSQ, and register files only
//     gain space at commit (fetch burst: frozen). The commit burst —
//     where commit *does* free those resources — runs the real dispatch
//     stage every cycle instead of arguing it frozen: a stalled dispatch
//     re-records its exact stall tick, and the first cycle where it acts
//     ends the run after completing that cycle in full (see
//     commitRunBurst).
//
//   - fetch: blocked states are either sticky until another stage acts
//     (blockedOnSeq clears at issue; streamDone is terminal) or bounded
//     by heap thresholds (fetchResumeAt, lineReadyAt, queue-full until
//     dispatch drains).
//
//   - decodeWrongPath: walks only while armed (wrongPathIdx ≥ 0, PUBS
//     tables present, fetch blocked on the branch). An armed walk acts
//     every cycle, so it can never be frozen context — both bursts
//     require it disarmed and bail out the moment fetch arms it.
//
//   - commit: the head unblocks at completion thresholds (≥ T); a head
//     blocked on a full store buffer stays blocked because the drain is
//     frozen (fetch burst) — and the commit burst is the case where it
//     is not frozen.
//
// Like the null skip, bursting advances lastCommitAt across cycles that
// retire nothing (a known wakeup is proof of progress, not a hang) and
// does not count burst cycles as polled loop iterations; the watchdog,
// invariant-sweep, and context-poll cadences behave exactly as they do
// across skipped spans. Both classes are disabled by Config.NoBurstSkip
// (phase-1-only mode, used by the BENCH_8 comparison) and by everything
// that disables the null skip.

// wrongPathArmed reports whether the wrong-path decode walk would mutate
// the PUBS tables next cycle — armed walks act unconditionally, so no
// burst may span them.
func (s *Sim) wrongPathArmed() bool {
	return s.wrongPathIdx >= 0 && s.pubs != nil && s.blockedOnSeq != noSeq
}

// fetchDrainBurst extends a cycle whose only activity was fetch (s.act ==
// actFetch) into a span that simulates nothing but the fetch stage: the
// backend is provably frozen until the heap's top threshold, so each
// burst cycle stages real instructions (predictor, BTB, RAS, I-cache, and
// queue mutations are exact) while the frozen stages contribute only
// their integrable ticks — the dispatch-stall counter and weighted-
// dispatch draw recorded by this cycle's stall site, and the occupancy
// sample (the IQ is untouched by fetch, so the batched AddN sees the
// constant occupancy a polled run would have sampled k times).
//
// Span-bounding events, checked per cycle: a foreign threshold at the
// heap top (completion, port, unit, redirect, line fill, or the maturity
// of an entry this very burst staged — all pushed as created), the walk
// arming, or fetch itself going quiescent (queue full, line miss,
// redirect, stream end). A cycle in which fetch mutates nothing is
// rewound — fetch's own null cycle is exactly that, a state-identical
// no-op — and left for the polled loop, which may skip or terminate on
// it with its usual checks.
func (s *Sim) fetchDrainBurst() {
	k := int64(0)
	for {
		if s.wrongPathArmed() {
			break
		}
		if t := s.wake.next(s.now); t <= s.now+1 {
			break // a threshold fires next cycle: poll it normally
		}
		s.now++
		s.act = 0
		s.fetch()
		if s.act == 0 {
			// Fetch mutated nothing, so the rewind restores the machine
			// byte-for-byte; the polled loop owns this cycle.
			s.now--
			break
		}
		k++
		if s.stallCtr != nil {
			*s.stallCtr++
		}
		if s.stallRand {
			s.rng = rngStep(s.rng)
		}
	}
	if k > 0 {
		if s.occHist != nil {
			s.occHist.AddN(s.q.Occupancy(), uint64(k))
		}
		s.lastCommitAt += k
		s.fetchBurstSpans++
		s.fetchBurstCycles += uint64(k)
	}
}

// commitRunReady reports whether next cycle's commit will retire at least
// one uop and no store within the commit width. Stores are excluded
// conservatively: a committed store feeds the store buffer, which can arm
// drainStores in the cycle that follows — the polled loop handles those.
func (s *Sim) commitRunReady() bool {
	for i := 0; i < s.cfg.CommitWidth; i++ {
		h, ok := s.rob.At(i)
		if !ok {
			return i > 0
		}
		u := &s.uops[h]
		if !u.scheduled || u.completeCycle > s.now+1 {
			return i > 0
		}
		if u.di.Inst.IsStore() {
			return false
		}
	}
	return true
}

// commitRunBurst extends a cycle whose only activity was commit (s.act ==
// actCommit) into a span that simulates the commit and dispatch stages
// and nothing else: a contiguous run of completed uops at the ROB head
// retires at commit width while issue, the store drain, the wrong-path
// walk, and fetch are provably frozen. Each burst cycle calls the real
// commit (branch stats, PUBS confidence updates, register release,
// mode-switch hooks — all exact) followed by the same afterCommit
// bookkeeping a polled cycle runs — the warm-up boundary, the progress
// hook at its exact committed count, and the termination checks — and
// then the real dispatch stage.
//
// Dispatch is run rather than argued frozen because commit is exactly the
// stage that relieves its structural stalls (ROB slots, LSQ slots,
// physical registers). Running it costs a few compares on the stalled
// path and keeps the span bit-exact for free: a dispatch that stays
// stalled walks the identical hazard checks a polled cycle would —
// bumping the same stall counter and burning the same weighted-dispatch
// draw — while mutating nothing else. The common stable case is a head
// blocked on a full issue queue: only issue grants free IQ slots and
// issue is frozen, so the stall repeats for the whole run no matter how
// many resources commit releases. The first cycle where dispatch does
// act (an entry leaves the fetch queue, or a newly mature head takes its
// one-time decode mark), the span can no longer claim fetch is frozen —
// the queue drained — so the burst completes that cycle in full
// (wrong-path walk and fetch run for real; issue and the store drain
// remain covered by the loop-top guards for this cycle) and ends.
//
// Returns true when the run terminated inside the burst (target reached,
// halt retired, or a finished machine drained empty) — at the same cycle,
// with the same state, as the polled loop's afterCommit break.
func (s *Sim) commitRunBurst(rs *runState) (done bool) {
	k := int64(0)
	for {
		if s.wrongPathArmed() {
			break
		}
		if t := s.wake.next(s.now); t <= s.now+1 {
			break // a threshold fires next cycle: poll it normally
		}
		// A free D-port next cycle plus buffered stores would activate
		// drainStores (ports busy beyond now+1 are heap-bounded above;
		// this catches ports that are already free while stores wait).
		if s.sbLen > 0 && s.anyDportFreeBy(s.now+1) {
			break
		}
		if !s.commitRunReady() {
			break
		}
		s.now++
		k++
		s.act = 0
		s.stallCtr = nil
		s.stallRand = false
		s.commit()
		if s.afterCommit(rs) {
			done = true
			break
		}
		s.dispatch()
		dispatched := s.act&actDispatch != 0
		if dispatched {
			// Dispatch consumed fetch-queue entries (or decoded a fresh
			// head): fetch may act this very cycle, so finish it as a
			// full polled cycle before ending the run.
			s.decodeWrongPath()
			s.fetch()
		}
		// The occupancy sample lands after the termination checks, as in
		// the polled loop (a terminating cycle never samples).
		if s.occHist != nil {
			s.occHist.Add(s.q.Occupancy())
		}
		if dispatched {
			break
		}
	}
	if k > 0 {
		s.commitBurstSpans++
		s.commitBurstCycles += uint64(k)
	}
	return done
}

// anyDportFreeBy reports whether some D-cache port is free at cycle t.
func (s *Sim) anyDportFreeBy(t int64) bool {
	for _, d := range s.dports {
		if d <= t {
			return true
		}
	}
	return false
}
