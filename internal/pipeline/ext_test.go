package pipeline

import (
	"testing"

	"repro/internal/workload"
)

// TestDistributedIQRuns: the §III-C2 machine simulates correctly and PUBS
// still earns a speedup over the distributed base on a D-BP workload.
func TestDistributedIQRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := BaseConfig()
	base.Name = "dist-base"
	base.DistributedIQ = true
	b, err := RunProgram(base, workload.MustProgram("goplay"), 40_000, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	pubs := PUBSConfig()
	pubs.Name = "dist-pubs"
	pubs.DistributedIQ = true
	p, err := RunProgram(pubs, workload.MustProgram("goplay"), 40_000, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	if b.IPC() <= 0 || p.IPC() <= 0 {
		t.Fatal("distributed machines produced no progress")
	}
	if p.IPC() <= b.IPC() {
		t.Errorf("distributed PUBS IPC %.3f not above distributed base %.3f", p.IPC(), b.IPC())
	}
}

// TestFlexibleSelectUpperBound: the idealized flexible select must do at
// least as well as the partitioned design (it has no reserved-entry
// capacity loss and no dispatch stalls) on a D-BP workload.
func TestFlexibleSelectUpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	part, err := RunProgram(PUBSConfig(), workload.MustProgram("chess"), 40_000, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	flex := PUBSConfig()
	flex.Name = "pubs-flexible"
	flex.PUBS.FlexibleSelect = true
	f, err := RunProgram(flex, workload.MustProgram("chess"), 40_000, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	if f.DispatchStallPriority != 0 {
		t.Errorf("flexible select recorded %d priority stalls", f.DispatchStallPriority)
	}
	if f.IPC() < part.IPC()*0.97 {
		t.Errorf("flexible select IPC %.3f well below partitioned %.3f", f.IPC(), part.IPC())
	}
}

// TestWrongPathDecodePollutes: enabling wrong-path decode changes the PUBS
// tables' contents (pollution is real) but the run still completes with a
// similar speedup (pollution is second-order).
func TestWrongPathDecodePollutes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	clean := PUBSConfig()
	cleanRes, err := RunProgram(clean, workload.MustProgram("goplay"), 30_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	wp := PUBSConfig()
	wp.Name = "pubs-wp"
	wp.WrongPathDecode = true
	wpRes, err := RunProgram(wp, workload.MustProgram("goplay"), 30_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Pollution alters decode-side statistics (different table contents).
	if cleanRes.UnconfSliceInsts == wpRes.UnconfSliceInsts && cleanRes.Cycles == wpRes.Cycles {
		t.Error("wrong-path decode had no observable effect")
	}
	// But remains second-order on performance (< 2% relative).
	ratio := wpRes.IPC() / cleanRes.IPC()
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("wrong-path pollution changed IPC by %.1f%% — not second-order",
			(ratio-1)*100)
	}
}
