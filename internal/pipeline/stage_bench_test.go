package pipeline

// Cycle-cost microbenchmarks for the per-cycle hot path. One op is one
// simulated cycle (or one stage call), driven by a pre-recorded looping
// instruction window so the emulator is out of the picture. Run with
//
//	go test -bench 'Cycle|Stage' -benchmem ./internal/pipeline
//
// ns/op is the steady-state cost of a cycle; allocs/op must be 0 (the
// invariant TestSteadyStateZeroAllocsPerCycle enforces). BenchmarkStage
// attributes the cycle cost to the individual pipeline stages via custom
// <stage>-ns/cycle metrics.

import (
	"testing"
	"time"
)

func benchSim(b *testing.B, cfg Config) *Sim {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// chess is the paper's most branch-heavy program — worst case for the
	// IQ select and the commit-side profile path.
	m, err := recordStreamRaw("chess", 4096)
	if err != nil {
		b.Fatal(err)
	}
	s.stream = m
	for i := 0; i < 50_000; i++ {
		stepCycle(s) // reach steady state before timing
	}
	return s
}

// BenchmarkCycle measures one full simulated cycle for the main machine
// variants. The golden-equivalence tests pin the architectural results, so
// this number can only improve by making the same work cheaper.
func BenchmarkCycle(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"base", BaseConfig()},
		{"pubs", PUBSConfig()},
		{"pubs-age", func() Config { c := PUBSConfig(); c.AgeMatrix = true; return c }()},
		{"pubs-distributed", func() Config { c := PUBSConfig(); c.DistributedIQ = true; return c }()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			s := benchSim(b, tc.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stepCycle(s)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkStage runs full cycles but attributes the time to each stage,
// reported as <stage>-ns/cycle metrics. Stages must run in loop order —
// benchmarking one in isolation would starve or wedge it — so the split is
// measured inside a live cycle loop.
func BenchmarkStage(b *testing.B) {
	s := benchSim(b, PUBSConfig())
	var commitNs, issueNs, drainNs, dispatchNs, fetchNs time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		s.commit()
		t1 := time.Now()
		s.issue()
		t2 := time.Now()
		s.drainStores()
		t3 := time.Now()
		s.dispatch()
		s.decodeWrongPath()
		t4 := time.Now()
		s.fetch()
		t5 := time.Now()
		s.now++
		commitNs += t1.Sub(t0)
		issueNs += t2.Sub(t1)
		drainNs += t3.Sub(t2)
		dispatchNs += t4.Sub(t3)
		fetchNs += t5.Sub(t4)
	}
	b.StopTimer()
	per := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(b.N) }
	b.ReportMetric(per(commitNs), "commit-ns/cycle")
	b.ReportMetric(per(issueNs), "issue-ns/cycle")
	b.ReportMetric(per(drainNs), "drain-ns/cycle")
	b.ReportMetric(per(dispatchNs), "dispatch-ns/cycle")
	b.ReportMetric(per(fetchNs), "fetch-ns/cycle")
}

// BenchmarkBranchProfileGet measures the flat profile table's lookup/insert
// path (replaced a pointer-valued map on the commit stage).
func BenchmarkBranchProfileGet(b *testing.B) {
	p := newBranchProfile()
	pcs := make([]uint64, 512)
	x := uint64(0x243F6A8885A308D3)
	for i := range pcs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pcs[i] = (x % 8192) * 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := p.get(pcs[i&511])
		bs.Executed++
	}
}

// BenchmarkStoreBufferFillDrain measures one store-buffer fill/drain round
// through the D-cache (the ring replaced a head-slicing drain that leaked
// capacity).
func BenchmarkStoreBufferFillDrain(b *testing.B) {
	s, err := New(BaseConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := len(s.storeBuf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s.sbLen < n {
			s.storeBuf[(s.sbHead+s.sbLen)%n] = uint64(s.sbLen) * 64
			s.sbLen++
		}
		for s.sbLen > 0 {
			s.drainStores()
			s.now++
		}
	}
}

// BenchmarkNextWake contrasts the event-heap wakeup index against the
// pre-heap threshold rescan it replaced. One op is one nextWake query on a
// live steady-state machine (treewalk: in-flight misses, busy units, and
// queued fetches keep the threshold population realistic). The heap's cost
// is the lazy stale-drain at the top; the scan's is a walk over every uop,
// function-unit slot, and port — the gap is the per-skip-attempt saving.
func BenchmarkNextWake(b *testing.B) {
	setup := func(b *testing.B) *Sim {
		s, err := New(PUBSConfig())
		if err != nil {
			b.Fatal(err)
		}
		m, err := recordStreamRaw("treewalk", 4096)
		if err != nil {
			b.Fatal(err)
		}
		s.stream = m
		for i := 0; i < 50_000; i++ {
			stepCycle(s)
		}
		return s
	}
	b.Run("heap", func(b *testing.B) {
		s := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += s.nextWake()
			if i&63 == 63 {
				stepCycle(s) // refresh the threshold population
			}
		}
		benchSink = sink
	})
	b.Run("scan", func(b *testing.B) {
		s := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += s.nextWakeScan()
			if i&63 == 63 {
				stepCycle(s)
			}
		}
		benchSink = sink
	})
}

// benchSink defeats dead-code elimination of the benchmarked queries.
var benchSink int64
