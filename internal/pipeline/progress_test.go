package pipeline

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// TestProgressCallback: the hook fires monotonically at the configured
// granularity and covers the whole run, warm-up included.
func TestProgressCallback(t *testing.T) {
	const warmup, measure, every = 5_000, 20_000, 4_000
	var reports []uint64
	ctx := WithProgress(context.Background(), every, func(committed uint64) {
		reports = append(reports, committed)
	})
	prog, err := workload.Program("fft")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgramContext(ctx, BaseConfig(), prog, warmup, measure); err != nil {
		t.Fatalf("RunProgramContext: %v", err)
	}
	if len(reports) < (warmup+measure)/every-1 {
		t.Fatalf("only %d progress reports for a %d-instruction run at %d granularity",
			len(reports), warmup+measure, every)
	}
	last := uint64(0)
	for i, c := range reports {
		if c < last {
			t.Fatalf("report %d went backwards: %d after %d", i, c, last)
		}
		last = c
	}
	if last < warmup+measure-every {
		t.Fatalf("last report at %d, run target %d", last, warmup+measure)
	}
}

// TestProgressDoesNotPerturbResults: an instrumented run is bit-identical
// to a bare one — the hook observes, never steers.
func TestProgressDoesNotPerturbResults(t *testing.T) {
	prog, err := workload.Program("chess")
	if err != nil {
		t.Fatal(err)
	}
	bare, err := RunProgram(PUBSConfig(), prog, 2_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithProgress(context.Background(), 1_000, func(uint64) {})
	hooked, err := RunProgramContext(ctx, PUBSConfig(), prog, 2_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(bare)
	hj, _ := json.Marshal(hooked)
	if string(bj) != string(hj) {
		t.Fatal("progress hook perturbed the simulation result")
	}
}

// TestProgressDisabled: zero interval and nil fn are inert.
func TestProgressDisabled(t *testing.T) {
	base := context.Background()
	if ctx := WithProgress(base, 0, func(uint64) {}); ctx != base {
		t.Error("zero interval should leave the context unchanged")
	}
	if ctx := WithProgress(base, 100, nil); ctx != base {
		t.Error("nil fn should leave the context unchanged")
	}
}
