package pipeline

import (
	"errors"

	"repro/internal/emu"
)

// Replay is an InstStream serving a predecoded window trace (emu.Predecode
// + emu.StaticDecode) instead of stepping the functional emulator per
// instruction. When a *Replay is passed to RunContext, the fetch stage
// bypasses Next() entirely and reads the SoA buffer in place — the
// trace-driven front-end mode. Used as a plain InstStream it behaves
// identically, just without the fast path.
//
// A window trace covers the detailed portion of one sampling window plus a
// bounded slack; if the simulator's fetch stage runs past the end of the
// recording (it overfetches past the commit target by at most fetch-queue +
// ROB occupancy), Fallback supplies a live emulator stream positioned at
// the first unrecorded instruction. A trace ending in the program's Halt
// needs no fallback.
type Replay struct {
	Pre    *emu.Predecode
	Decode *emu.StaticDecode
	// Fallback builds the live continuation stream, positioned immediately
	// after the last recorded instruction. May be nil when Pre is halted.
	Fallback func() (InstStream, error)

	pos  int
	live InstStream
	err  error
}

// errNoFallback reports a replay that ran off a non-halted trace with no
// live continuation configured.
var errNoFallback = errors.New("pipeline: replay exhausted a non-halted trace with no fallback stream")

// switchLive builds the live continuation; the error is remembered and
// surfaced by Err.
func (r *Replay) switchLive() error {
	if r.Fallback == nil {
		r.err = errNoFallback
		return r.err
	}
	live, err := r.Fallback()
	if err != nil {
		r.err = err
		return err
	}
	r.live = live
	return nil
}

// Next implements InstStream. The simulator's trace fast path consumes
// records directly and shares the cursor, so Next picks up exactly where
// the fast path stopped.
func (r *Replay) Next() (emu.DynInst, bool) {
	if r.live != nil {
		return r.live.Next()
	}
	if r.err != nil {
		return emu.DynInst{}, false
	}
	if r.pos < r.Pre.Len() {
		var di emu.DynInst
		r.Pre.Fill(r.pos, r.Decode, &di)
		r.pos++
		return di, true
	}
	if r.Pre.Halted() {
		return emu.DynInst{}, false
	}
	if r.switchLive() != nil {
		return emu.DynInst{}, false
	}
	return r.live.Next()
}

// Err reports a fallback failure. The run loop treats a failed fallback as
// end-of-stream (the in-flight window drains normally); callers must check
// Err afterwards to distinguish a clean drain from a truncated one.
func (r *Replay) Err() error { return r.err }
