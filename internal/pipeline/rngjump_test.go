package pipeline

import "testing"

// TestRNGJumpMatchesLoop: jumpRNG(x, k) must equal k sequential rngStep
// calls for every state and span length — the closed-form replay in
// skipCycles is only correct if the GF(2) jump matrices reproduce the
// scalar transition bit for bit. Three layers pin that:
//
//  1. jumps[0] is checked against rngStep directly on random states.
//  2. Each jumps[i] is checked as the square of jumps[i-1] via apply
//     (inductively, jumps[i] == M^(2^i) for all 64 matrices, including
//     the ones no loop could ever reach).
//  3. jumpRNG itself is checked against the loop exhaustively for k up
//     to 4096 and at direct long anchors (100K, 10M steps).
func TestRNGJumpMatchesLoop(t *testing.T) {
	states := []uint64{1, 0xDEADBEEF, ^uint64(0), 0x9E3779B97F4A7C15}
	rng := skipPropRNG(42)
	for i := 0; i < 4; i++ {
		states = append(states, rng.next())
	}

	// Layer 1: the base matrix is the scalar transition.
	for _, x := range states {
		if got, want := rngJumps[0].apply(x), rngStep(x); got != want {
			t.Fatalf("jumps[0](%#x) = %#x, want rngStep = %#x", x, got, want)
		}
	}

	// Layer 2: squaring chain. jumps[i](x) == jumps[i-1](jumps[i-1](x)).
	for i := 1; i < 64; i++ {
		for _, x := range states {
			got := rngJumps[i].apply(x)
			want := rngJumps[i-1].apply(rngJumps[i-1].apply(x))
			if got != want {
				t.Fatalf("jumps[%d](%#x) = %#x, want jumps[%d]² = %#x", i, x, got, i-1, want)
			}
		}
	}

	// Layer 3: jumpRNG against the loop. Exhaustive small spans (every
	// decomposition of the low 12 bits) per state, walked incrementally.
	for _, x0 := range states {
		want := x0
		for k := int64(0); k <= 4096; k++ {
			if got := jumpRNG(x0, k); got != want {
				t.Fatalf("jumpRNG(%#x, %d) = %#x, want %#x", x0, k, got, want)
			}
			want = rngStep(want)
		}
	}

	// Long anchors: spans the size of real memory-bound skip totals.
	for _, k := range []int64{100_000, 10_000_000} {
		want := uint64(0xFEEDFACECAFEBEEF)
		for i := int64(0); i < k; i++ {
			want = rngStep(want)
		}
		if got := jumpRNG(0xFEEDFACECAFEBEEF, k); got != want {
			t.Fatalf("jumpRNG(long %d) = %#x, want %#x", k, got, want)
		}
	}
}
