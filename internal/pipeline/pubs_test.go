package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestPriorityEntriesExercised: on a D-BP workload, PUBS must actually
// route instructions through priority entries, and too few entries must
// stall dispatch (the left edge of Fig. 10).
func TestPriorityEntriesExercised(t *testing.T) {
	cfg := PUBSConfig()
	cfg.PUBS.PriorityEntries = 2
	two := runBench(t, cfg, "goplay", 30_000, 100_000)
	if two.DispatchStallPriority == 0 {
		t.Error("2 priority entries should stall on a D-BP workload")
	}
	cfg6 := PUBSConfig()
	six := runBench(t, cfg6, "goplay", 30_000, 100_000)
	if six.DispatchStallPriority >= two.DispatchStallPriority {
		t.Errorf("6 entries stall (%d) not below 2 entries stall (%d)",
			six.DispatchStallPriority, two.DispatchStallPriority)
	}
	if six.IPC() <= two.IPC() {
		t.Errorf("6 entries IPC %.3f not above 2 entries IPC %.3f", six.IPC(), two.IPC())
	}
}

// TestNonStallPolicyNeverStallsOnPriority: the non-stall policy falls back
// to normal entries instead of stalling.
func TestNonStallPolicyNeverStallsOnPriority(t *testing.T) {
	cfg := PUBSConfig()
	cfg.PUBS.PriorityEntries = 2
	cfg.PUBS.StallDispatch = false
	res := runBench(t, cfg, "goplay", 20_000, 60_000)
	if res.DispatchStallPriority != 0 {
		t.Errorf("non-stall policy recorded %d priority stalls", res.DispatchStallPriority)
	}
}

// TestModeSwitchDisablesOnMemoryPressure: sparse (mcf-like, LLC MPKI ≫ 1)
// must run with PUBS switched off in essentially every window.
func TestModeSwitchDisablesOnMemoryPressure(t *testing.T) {
	res := runBench(t, PUBSConfig(), "sparse", 40_000, 80_000)
	if res.ModeSwitchChecks == 0 {
		t.Fatal("mode switch never checked")
	}
	if res.ModeEnabledWindows*5 > res.ModeSwitchChecks {
		t.Errorf("PUBS enabled in %d/%d windows on a memory-bound program",
			res.ModeEnabledWindows, res.ModeSwitchChecks)
	}
	// And on a compute-bound program it stays on.
	comp := runBench(t, PUBSConfig(), "chess", 40_000, 80_000)
	if comp.ModeEnabledWindows != comp.ModeSwitchChecks {
		t.Errorf("PUBS disabled on a compute-bound program: %d/%d",
			comp.ModeEnabledWindows, comp.ModeSwitchChecks)
	}
}

// TestAgeMatrixImprovesIPCOnDataflowCriticalCode: age priority must pay
// off where instruction age tracks criticality — latency-chain-bound E-BP
// kernels (matmul/crypto). On this suite's branch-dominated D-BP kernels
// age priority delays the young branch slices and mildly hurts; that
// divergence from the paper's SPEC D-BP AGE gains is documented in
// EXPERIMENTS.md.
func TestAgeMatrixImprovesIPCOnDataflowCriticalCode(t *testing.T) {
	base := runBench(t, BaseConfig(), "matmul", 30_000, 100_000)
	age := BaseConfig()
	age.Name = "age"
	age.AgeMatrix = true
	ageRes := runBench(t, age, "matmul", 30_000, 100_000)
	if ageRes.IPC() <= base.IPC() {
		t.Errorf("age matrix IPC %.3f not above base %.3f on matmul", ageRes.IPC(), base.IPC())
	}
	// And on a branch-dominated kernel it must stay within a modest band of
	// base (the select logic is not broken, just differently prioritised).
	baseD := runBench(t, BaseConfig(), "pathfind", 30_000, 100_000)
	ageD := runBench(t, age, "pathfind", 30_000, 100_000)
	if ageD.IPC() < baseD.IPC()*0.85 {
		t.Errorf("age matrix IPC %.3f collapsed vs base %.3f on pathfind", ageD.IPC(), baseD.IPC())
	}
}

// TestShiftingQueueAgePriority: the compacting age-ordered queue must beat
// the random queue on latency-chain code (its raison d'être) and stay
// within a modest band on branch-dominated code.
func TestShiftingQueueAgePriority(t *testing.T) {
	sh := BaseConfig()
	sh.Name = "shifting"
	sh.IQKind = iq.Shifting
	base := runBench(t, BaseConfig(), "matmul", 30_000, 100_000)
	shRes := runBench(t, sh, "matmul", 30_000, 100_000)
	if shRes.IPC() < base.IPC() {
		t.Errorf("shifting queue IPC %.3f below random %.3f on matmul", shRes.IPC(), base.IPC())
	}
	baseD := runBench(t, BaseConfig(), "chess", 30_000, 100_000)
	shD := runBench(t, sh, "chess", 30_000, 100_000)
	if shD.IPC() < baseD.IPC()*0.80 {
		t.Errorf("shifting queue IPC %.3f collapsed vs base %.3f on chess", shD.IPC(), baseD.IPC())
	}
}

// TestStoreToLoadForwarding: a tight store→load same-address pattern must
// use the forwarding path.
func TestStoreToLoadForwarding(t *testing.T) {
	b := asm.New("fwd")
	buf := b.Alloc(64)
	r2, r3, r4 := isa.R(2), isa.R(3), isa.R(4)
	b.Li(r2, int64(buf))
	b.Label("top")
	b.Addi(r3, r3, 1)
	b.St(r3, r2, 0)
	b.Ld(r4, r2, 0) // forwarded from the store above
	b.Add(r3, r3, r4)
	b.Jmp("top")
	res, err := RunProgram(BaseConfig(), b.MustBuild(), 1_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadsForwarded == 0 {
		t.Error("no loads forwarded on a store→load chain")
	}
}

// TestMisspecPenaltyAccounting: total misspeculation penalty must be at
// least the minimum structural cost (front-end depth + 1 execute cycle) per
// misprediction, and recovery cycles exactly 10 per misprediction.
func TestMisspecPenaltyAccounting(t *testing.T) {
	cfg := BaseConfig()
	res := runBench(t, cfg, "pathfind", 20_000, 60_000)
	if res.Mispredicts == 0 {
		t.Fatal("no mispredicts on astar-like workload")
	}
	perMiss := float64(res.MisspecPenaltyCycles) / float64(res.Mispredicts)
	if perMiss < float64(cfg.FrontEndDepth)+1 {
		t.Errorf("misspec penalty %.1f per mispredict below structural minimum", perMiss)
	}
	// Recovery accounting counts blocked-resume events (conditional and
	// indirect), each exactly RecoveryPenalty cycles.
	blocked := int64(res.Mispredicts+res.IndirectMispred) * cfg.RecoveryPenalty
	if res.RecoveryCycles > blocked {
		t.Errorf("recovery cycles %d exceed %d", res.RecoveryCycles, blocked)
	}
	// A few in-flight branches straddle the warm-up boundary (issued before
	// it, committed after), so allow a small tolerance.
	slack := 16 * cfg.RecoveryPenalty
	if res.RecoveryCycles < int64(res.Mispredicts)*cfg.RecoveryPenalty-slack {
		t.Errorf("recovery cycles %d below conditional mispredicts × penalty", res.RecoveryCycles)
	}
}

// TestPUBSReducesIQWait: with PUBS on, the misspeculation penalty per
// misprediction must shrink on a compute D-BP workload — the paper's core
// mechanism, measured directly.
func TestPUBSReducesIQWait(t *testing.T) {
	base := runBench(t, BaseConfig(), "chess", 50_000, 150_000)
	pubs := runBench(t, PUBSConfig(), "chess", 50_000, 150_000)
	basePer := float64(base.MisspecPenaltyCycles) / float64(base.Mispredicts)
	pubsPer := float64(pubs.MisspecPenaltyCycles) / float64(pubs.Mispredicts)
	if pubsPer >= basePer {
		t.Errorf("PUBS misspec penalty %.2f not below base %.2f", pubsPer, basePer)
	}
}

// TestBlindCoversEverything: the blind estimator marks every branch
// unconfident (unconfident rate 100%).
func TestBlindCoversEverything(t *testing.T) {
	cfg := PUBSConfig()
	cfg.PUBS.Blind = true
	res := runBench(t, cfg, "parser", 20_000, 60_000)
	if res.UnconfidentRate() < 0.999 {
		t.Errorf("blind unconfident rate = %.3f", res.UnconfidentRate())
	}
}

// TestCounterBitsAffectCoverage: fewer counter bits make branches confident
// sooner, so the unconfident rate must not increase when bits shrink
// (the Fig. 11 line).
func TestCounterBitsAffectCoverage(t *testing.T) {
	rate := func(bits int) float64 {
		cfg := PUBSConfig()
		cfg.PUBS.ConfCounterBits = bits
		return runBench(t, cfg, "compress", 30_000, 80_000).UnconfidentRate()
	}
	r2, r8 := rate(2), rate(8)
	if r2 > r8 {
		t.Errorf("unconfident rate at 2 bits (%.3f) above 8 bits (%.3f)", r2, r8)
	}
}

// TestWeightedDispatchUsesWholeIQ: with the mode switch forcing PUBS off
// (memory-bound workload), priority entries must still get used via the
// weighted free-list draw — capacity is not wasted.
func TestWeightedDispatchUsesWholeIQ(t *testing.T) {
	res := runBench(t, PUBSConfig(), "sparse", 40_000, 60_000)
	// No stalls attributable to reserved entries while PUBS is off, and no
	// ROB-capacity loss versus base beyond noise.
	base := runBench(t, BaseConfig(), "sparse", 40_000, 60_000)
	if res.IPC() < base.IPC()*0.98 {
		t.Errorf("mode-switched PUBS IPC %.4f lost capacity vs base %.4f", res.IPC(), base.IPC())
	}
}

// TestJrMispredictionPenalised: indirect jumps whose target alternates
// must mispredict through the BTB and block fetch like branch
// mispredictions.
func TestJrMispredictionPenalised(t *testing.T) {
	b := asm.New("jr")
	ctr, tgt, tab, off, dest := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	table := b.Words(0, 0) // patched with block indices below
	b.Li(tab, int64(table))
	b.Label("top")
	b.Addi(ctr, ctr, 1)
	b.Andi(tgt, ctr, 1)
	b.Shli(off, tgt, 3)
	b.Add(off, off, tab)
	b.Ld(dest, off, 0)
	b.Jr(dest) // alternates between blockA and blockB
	blockA := b.Here()
	b.Label("blockA")
	b.Addi(isa.R(7), isa.R(7), 1)
	b.Jmp("top")
	blockB := b.Here()
	b.Label("blockB")
	b.Addi(isa.R(8), isa.R(8), 1)
	b.Jmp("top")
	prog := b.MustBuild()
	prog.Data[table] = byte(blockA)
	prog.Data[table+8] = byte(blockB)

	res, err := RunProgram(BaseConfig(), prog, 2_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndirectJumps == 0 {
		t.Fatal("no indirect jumps executed")
	}
	if res.IndirectMispred == 0 {
		t.Error("alternating indirect targets never mispredicted")
	}
}

// TestProfileInstrumentation: with Config.Profile, the run reports an IQ
// occupancy histogram covering every cycle and a branch profile whose
// totals reconcile with the headline counters.
func TestProfileInstrumentation(t *testing.T) {
	cfg := BaseConfig()
	cfg.Profile = true
	res := runBench(t, cfg, "parser", 20_000, 60_000)
	if res.IQOccupancy == nil {
		t.Fatal("occupancy histogram missing")
	}
	if res.IQOccupancy.Total() != uint64(res.Cycles) {
		t.Errorf("histogram sampled %d cycles of %d", res.IQOccupancy.Total(), res.Cycles)
	}
	if len(res.TopBranches) == 0 {
		t.Fatal("branch profile empty")
	}
	var prof uint64
	for _, bs := range res.TopBranches {
		prof += bs.Mispredicts
		if bs.Mispredicts > bs.Executed {
			t.Errorf("branch %d: %d mispredicts > %d executions", bs.PC, bs.Mispredicts, bs.Executed)
		}
	}
	if prof > res.Mispredicts {
		t.Errorf("profiled mispredicts %d exceed total %d", prof, res.Mispredicts)
	}
	// Profile off: no histogram.
	plain := runBench(t, BaseConfig(), "parser", 20_000, 60_000)
	if plain.IQOccupancy != nil || plain.TopBranches != nil {
		t.Error("profiling data present without Config.Profile")
	}
	if plain.Cycles != res.Cycles {
		t.Errorf("profiling changed timing: %d vs %d cycles", plain.Cycles, res.Cycles)
	}
}

// TestPipeTraceOutput: the stage log must cover exactly the requested
// number of instructions with monotone stage timestamps.
func TestPipeTraceOutput(t *testing.T) {
	var buf strings.Builder
	sim, err := New(PUBSConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetPipeTrace(&buf, 25)
	m, err := emu.New(workload.MustProgram("chess"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(Stream{M: m}, 0, 5_000); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 25 {
		t.Fatalf("pipetrace has %d lines, want 25", len(lines))
	}
	for _, ln := range lines {
		var seq, pc, f, d, x, c int64
		var op, issue, rest string
		n, err := fmt.Sscanf(ln, "seq=%d pc=%d %s", &seq, &pc, &op)
		if n != 3 || err != nil {
			t.Fatalf("unparseable line %q", ln)
		}
		fi := strings.Index(ln, "F=")
		n, err = fmt.Sscanf(ln[fi:], "F=%d D=%d I=%s X=%d C=%d%s", &f, &d, &issue, &x, &c, &rest)
		if n < 5 || (err != nil && n < 5) {
			t.Fatalf("unparseable stages in %q (n=%d err=%v)", ln, n, err)
		}
		if !(f <= d && d <= x && x <= c) {
			t.Errorf("non-monotone stages: %q", ln)
		}
	}
}
