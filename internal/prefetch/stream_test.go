package prefetch

import (
	"testing"
	"testing/quick"
)

func TestAscendingStreamDetected(t *testing.T) {
	s := NewStream(4, 16, 2, 64)
	if got := s.OnMiss(0 * 64); got != nil {
		t.Errorf("first miss should only allocate, got %v", got)
	}
	got := s.OnMiss(1 * 64)
	want := []uint64{(1 + 16) * 64, (1 + 17) * 64}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("prefetches = %v, want %v", got, want)
	}
	if s.Trained() != 1 {
		t.Errorf("trained = %d", s.Trained())
	}
}

func TestDescendingStreamDetected(t *testing.T) {
	s := NewStream(4, 4, 2, 64)
	s.OnMiss(100 * 64)
	got := s.OnMiss(99 * 64)
	want := []uint64{(99 - 4) * 64, (99 - 5) * 64}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("descending prefetches = %v, want %v", got, want)
	}
}

func TestDescendingStopsAtZero(t *testing.T) {
	s := NewStream(4, 16, 2, 64)
	s.OnMiss(3 * 64)
	got := s.OnMiss(2 * 64) // 2-16 underflows: no prefetch
	if len(got) != 0 {
		t.Errorf("underflowing prefetches emitted: %v", got)
	}
}

func TestDirectionLock(t *testing.T) {
	s := NewStream(4, 16, 2, 64)
	s.OnMiss(10 * 64)
	s.OnMiss(11 * 64) // ascending lock
	// A descending step does not extend the ascending stream; it allocates.
	if got := s.OnMiss(10 * 64); got != nil {
		t.Errorf("direction-violating extension: %v", got)
	}
}

func TestRandomMissesNoPrefetch(t *testing.T) {
	s := Default()
	addrs := []uint64{5, 900, 17, 4000, 123, 77777, 42}
	total := 0
	for _, a := range addrs {
		total += len(s.OnMiss(a * 64))
	}
	if total != 0 {
		t.Errorf("random misses produced %d prefetches", total)
	}
	if s.Allocated() != uint64(len(addrs)) {
		t.Errorf("allocated = %d, want %d", s.Allocated(), len(addrs))
	}
}

func TestLRUTrackerReplacement(t *testing.T) {
	s := NewStream(2, 16, 1, 64)
	s.OnMiss(100 * 64) // tracker A
	s.OnMiss(200 * 64) // tracker B
	s.OnMiss(101 * 64) // extend A (B becomes LRU)
	s.OnMiss(300 * 64) // replaces B
	// A remains live (and stays MRU).
	if got := s.OnMiss(102 * 64); len(got) != 1 {
		t.Errorf("surviving stream broken: %v", got)
	}
	// B's continuation no longer extends anything; it allocates instead.
	if got := s.OnMiss(201 * 64); got != nil {
		t.Errorf("evicted stream still live: %v", got)
	}
}

func TestMultipleConcurrentStreams(t *testing.T) {
	s := Default()
	// Interleave four streams; all should train.
	bases := []uint64{1000, 5000, 9000, 13000}
	for step := uint64(0); step < 4; step++ {
		for _, b := range bases {
			s.OnMiss((b + step) * 64)
		}
	}
	if s.Trained() != uint64(len(bases)*3) {
		t.Errorf("trained = %d, want %d", s.Trained(), len(bases)*3)
	}
}

func TestNilPrefetcher(t *testing.T) {
	if got := (Nil{}).OnMiss(0x1234); got != nil {
		t.Errorf("Nil prefetcher returned %v", got)
	}
}

func TestParamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid parameters should panic")
		}
	}()
	NewStream(0, 16, 2, 64)
}

// Property: every nominated prefetch address is line-aligned and ahead of
// the miss in the stream's direction by at least the distance.
func TestQuickPrefetchGeometry(t *testing.T) {
	f := func(start uint16, steps uint8) bool {
		s := NewStream(8, 16, 2, 64)
		ln := uint64(start) + 1000
		s.OnMiss(ln * 64)
		for i := 0; i < int(steps%16)+1; i++ {
			ln++
			for _, p := range s.OnMiss(ln * 64) {
				if p%64 != 0 {
					return false
				}
				if p/64 < ln+16 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
