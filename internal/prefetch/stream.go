// Package prefetch implements the stream-based hardware prefetcher of the
// paper's base machine (Table I: 32 tracked streams, 16-line prefetch
// distance, 2-line degree, prefetching into the L2 cache).
package prefetch

// Stream is a multi-stream sequential prefetcher. It watches demand misses;
// when a miss extends a tracked ascending or descending stream, it nominates
// `degree` lines at `distance` lines ahead of the miss in the stream's
// direction. New miss addresses allocate streams, replacing the least
// recently used tracker.
type Stream struct {
	streams  []tracker
	distance uint64
	degree   int
	lineSize uint64
	tick     uint64
	out      []uint64 // OnMiss result buffer, reused across calls

	trained   uint64
	allocated uint64
}

type tracker struct {
	valid    bool
	lastLine uint64 // line index (addr / lineSize)
	dir      int64  // +1 ascending, -1 descending, 0 undecided
	lru      uint64
}

// NewStream returns a stream prefetcher.
func NewStream(numStreams int, distance, degree int, lineBytes int) *Stream {
	if numStreams <= 0 || distance <= 0 || degree <= 0 || lineBytes <= 0 {
		panic("prefetch: invalid stream prefetcher parameters")
	}
	return &Stream{
		streams:  make([]tracker, numStreams),
		distance: uint64(distance),
		degree:   degree,
		lineSize: uint64(lineBytes),
	}
}

// Default returns the paper's configuration: 32 streams, 16-line distance,
// 2-line degree, 64-byte lines.
func Default() *Stream { return NewStream(32, 16, 2, 64) }

// OnMiss implements cache.Prefetcher.
func (s *Stream) OnMiss(lineAddr uint64) []uint64 {
	s.tick++
	ln := lineAddr / s.lineSize

	// Try to extend an existing stream.
	for i := range s.streams {
		t := &s.streams[i]
		if !t.valid {
			continue
		}
		switch {
		case ln == t.lastLine+1 && t.dir >= 0:
			t.dir = 1
		case ln == t.lastLine-1 && t.dir <= 0:
			t.dir = -1
		default:
			continue
		}
		t.lastLine = ln
		t.lru = s.tick
		s.trained++
		out := s.out[:0] // reused: valid until the next OnMiss
		for d := 0; d < s.degree; d++ {
			step := s.distance + uint64(d)
			var target uint64
			if t.dir > 0 {
				target = ln + step
			} else {
				if ln < step {
					break
				}
				target = ln - step
			}
			out = append(out, target*s.lineSize)
		}
		s.out = out
		return out
	}

	// Allocate a new stream over the LRU tracker.
	victim := 0
	for i := range s.streams {
		if !s.streams[i].valid {
			victim = i
			break
		}
		if s.streams[i].lru < s.streams[victim].lru {
			victim = i
		}
	}
	s.streams[victim] = tracker{valid: true, lastLine: ln, lru: s.tick}
	s.allocated++
	return nil
}

// Reset clears every tracker and counter back to the constructed state.
func (s *Stream) Reset() {
	for i := range s.streams {
		s.streams[i] = tracker{}
	}
	s.tick = 0
	s.trained = 0
	s.allocated = 0
}

// Trained returns how many misses extended a stream (for tests/stats).
func (s *Stream) Trained() uint64 { return s.trained }

// Allocated returns how many trackers were (re)allocated.
func (s *Stream) Allocated() uint64 { return s.allocated }

// Nil is a no-op prefetcher for the "prefetch disabled" ablation.
type Nil struct{}

// OnMiss implements cache.Prefetcher.
func (Nil) OnMiss(uint64) []uint64 { return nil }
