// Package bpred implements the branch-direction predictors, branch target
// buffer, and return-address stack used by the simulated front end.
//
// The paper's base machine (Table I) uses a perceptron predictor with a
// 34-bit global history and a 256-entry weight table; the Fig. 13 experiment
// enlarges it to a 36-bit history and 512 entries. gshare, bimodal, and a
// tournament predictor are provided as the cross-check predictors the paper
// mentions in footnote 1.
package bpred

import "fmt"

// Predictor predicts conditional-branch directions. Implementations keep a
// single global history that is updated with the true outcome immediately
// after each prediction — the usual arrangement in a trace-driven simulator,
// where fetch stalls on mispredictions rather than running down wrong paths.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the true outcome and advances the
	// global history. Must be called exactly once per predicted branch, in
	// program order.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in experiment output.
	Name() string
	// CostBytes returns the storage the predictor requires, for the
	// hardware-budget comparison in Fig. 13.
	CostBytes() int
	// Reset clears all learned state (tables and histories) back to the
	// freshly-constructed predictor, enabling simulator-instance reuse
	// across independent runs.
	Reset()
}

// Config selects and sizes a predictor.
type Config struct {
	Kind string // "perceptron", "gshare", "bimodal", "tournament", "tage", "static"
	// Perceptron parameters.
	HistoryLen int // global history bits (default 34)
	TableSize  int // number of perceptrons / counters (default 256)
}

// Default returns the paper's base predictor configuration.
func Default() Config {
	return Config{Kind: "perceptron", HistoryLen: 34, TableSize: 256}
}

// Large returns the enlarged predictor of Fig. 13 (36-bit history, 512-entry
// weight table).
func Large() Config {
	return Config{Kind: "perceptron", HistoryLen: 36, TableSize: 512}
}

// New builds a predictor from the configuration.
func New(c Config) (Predictor, error) {
	switch c.Kind {
	case "", "perceptron":
		h, t := c.HistoryLen, c.TableSize
		if h == 0 {
			h = 34
		}
		if t == 0 {
			t = 256
		}
		return NewPerceptron(h, t), nil
	case "gshare":
		h, t := c.HistoryLen, c.TableSize
		if h == 0 {
			h = 14
		}
		if t == 0 {
			t = 1 << 14
		}
		return NewGshare(h, t), nil
	case "bimodal":
		t := c.TableSize
		if t == 0 {
			t = 1 << 13
		}
		return NewBimodal(t), nil
	case "tournament":
		return NewTournament(c), nil
	case "tage":
		return NewTAGE(), nil
	case "static":
		return StaticTaken{}, nil
	default:
		return nil, fmt.Errorf("bpred: unknown predictor kind %q", c.Kind)
	}
}

// MustNew is New, panicking on error.
func MustNew(c Config) Predictor {
	p, err := New(c)
	if err != nil {
		panic(err)
	}
	return p
}

// StaticTaken predicts every branch taken; a degenerate baseline for tests.
type StaticTaken struct{}

// Predict implements Predictor (always taken).
func (StaticTaken) Predict(uint64) bool { return true }

// Update implements Predictor (no state).
func (StaticTaken) Update(uint64, bool) {}

// Name implements Predictor.
func (StaticTaken) Name() string { return "static-taken" }

// CostBytes implements Predictor (no storage).
func (StaticTaken) CostBytes() int { return 0 }

// Reset implements Predictor (no state).
func (StaticTaken) Reset() {}
