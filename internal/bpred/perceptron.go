package bpred

// Perceptron implements the perceptron branch predictor of Jiménez &amp; Lin
// (HPCA 2001), the predictor AMD disclosed for Zen and the one the paper's
// base machine uses (Table I: 34-bit history, 256-entry weight table).
//
// Each table entry holds HistoryLen signed weights plus a bias. The
// prediction is the sign of bias + Σ wᵢ·hᵢ where hᵢ ∈ {-1, +1} is the i-th
// global history bit. Training (on a misprediction or when |output| ≤ θ,
// θ = ⌊1.93·H + 14⌋) nudges each weight toward agreement with the outcome,
// saturating at ±127 (8-bit weights).
type Perceptron struct {
	historyLen int
	tableSize  int
	theta      int32
	weights    [][]int8 // [tableSize][historyLen+1]; index 0 is the bias
	history    uint64   // youngest outcome in bit 0
	histMask   uint64
}

// NewPerceptron returns a perceptron predictor with the given global history
// length (≤ 64) and weight-table size.
func NewPerceptron(historyLen, tableSize int) *Perceptron {
	if historyLen <= 0 || historyLen > 64 {
		panic("bpred: perceptron history length out of range")
	}
	if tableSize <= 0 {
		panic("bpred: perceptron table size must be positive")
	}
	p := &Perceptron{
		historyLen: historyLen,
		tableSize:  tableSize,
		theta:      int32(1.93*float64(historyLen) + 14),
		weights:    make([][]int8, tableSize),
		histMask:   mask64(historyLen),
	}
	for i := range p.weights {
		p.weights[i] = make([]int8, historyLen+1)
	}
	return p
}

func mask64(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

func (p *Perceptron) index(pc uint64) int {
	return int((pc >> 2) % uint64(p.tableSize))
}

func (p *Perceptron) output(pc uint64) int32 {
	w := p.weights[p.index(pc)]
	y := int32(w[0])
	h := p.history
	for i := 1; i <= p.historyLen; i++ {
		if h&1 != 0 {
			y += int32(w[i])
		} else {
			y -= int32(w[i])
		}
		h >>= 1
	}
	return y
}

// Predict returns the predicted direction for the branch at pc.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

// Update trains on the true outcome and shifts the global history.
func (p *Perceptron) Update(pc uint64, taken bool) {
	y := p.output(pc)
	pred := y >= 0
	if pred != taken || abs32(y) <= p.theta {
		w := p.weights[p.index(pc)]
		w[0] = nudge(w[0], taken)
		h := p.history
		for i := 1; i <= p.historyLen; i++ {
			// Agreeing history bits strengthen, disagreeing weaken.
			w[i] = nudge(w[i], taken == (h&1 != 0))
			h >>= 1
		}
	}
	p.history = ((p.history << 1) | b2u64(taken)) & p.histMask
}

func nudge(w int8, up bool) int8 {
	if up {
		if w < 127 {
			return w + 1
		}
		return w
	}
	if w > -127 {
		return w - 1
	}
	return w
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

// CostBytes returns the weight storage: tableSize × (historyLen+1) 8-bit
// weights.
func (p *Perceptron) CostBytes() int { return p.tableSize * (p.historyLen + 1) }

// Reset implements Predictor: zero all weights and the global history.
func (p *Perceptron) Reset() {
	for i := range p.weights {
		row := p.weights[i]
		for j := range row {
			row[j] = 0
		}
	}
	p.history = 0
}

// History exposes the current global history (for tests).
func (p *Perceptron) History() uint64 { return p.history }

// Theta exposes the training threshold (for tests).
func (p *Perceptron) Theta() int32 { return p.theta }
