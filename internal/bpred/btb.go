package bpred

// BTB is a set-associative branch target buffer (Table I: 2K sets, 4-way)
// with true-LRU replacement. The front end needs a BTB hit to redirect fetch
// to a taken target in the same cycle; a miss costs a decode-time redirect
// bubble.
type BTB struct {
	sets    int
	ways    int
	entries []btbEntry // sets × ways, row-major
	tick    uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// NewBTB returns a BTB with the given geometry. sets must be a power of two.
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("bpred: BTB sets must be a positive power of two")
	}
	if ways <= 0 {
		panic("bpred: BTB ways must be positive")
	}
	return &BTB{sets: sets, ways: ways, entries: make([]btbEntry, sets*ways)}
}

// DefaultBTB returns the paper's 2K-set 4-way BTB.
func DefaultBTB() *BTB { return NewBTB(2048, 4) }

func (b *BTB) row(pc uint64) (base int, tag uint64) {
	idx := (pc >> 2) & uint64(b.sets-1)
	return int(idx) * b.ways, (pc >> 2) / uint64(b.sets)
}

// Lookup returns the stored target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	base, tag := b.row(pc)
	b.tick++
	for i := 0; i < b.ways; i++ {
		e := &b.entries[base+i]
		if e.valid && e.tag == tag {
			e.lru = b.tick
			return e.target, true
		}
	}
	return 0, false
}

// Insert records (pc → target), replacing the LRU way on a conflict.
func (b *BTB) Insert(pc, target uint64) {
	base, tag := b.row(pc)
	b.tick++
	victim := base
	for i := 0; i < b.ways; i++ {
		e := &b.entries[base+i]
		if e.valid && e.tag == tag {
			e.target = target
			e.lru = b.tick
			return
		}
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < b.entries[victim].lru {
			victim = base + i
		}
	}
	b.entries[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.tick}
}

// CostBytes approximates storage: each entry holds a ~50-bit tag+target pair.
func (b *BTB) CostBytes() int { return b.sets * b.ways * 8 }

// Reset invalidates every entry.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
	b.tick = 0
}

// RAS is a fixed-depth return address stack with wrap-around overwrite, used
// to predict Jr-through-link returns.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS returns a return-address stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("bpred: RAS depth must be positive")
	}
	return &RAS{stack: make([]uint64, n)}
}

// Push records a return address (on Jal).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the next return address (on Jr via the link register).
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Reset empties the stack.
func (r *RAS) Reset() {
	for i := range r.stack {
		r.stack[i] = 0
	}
	r.top = 0
	r.depth = 0
}
