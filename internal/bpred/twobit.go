package bpred

// twoBit is a saturating 2-bit counter: 0,1 predict not-taken; 2,3 taken.
type twoBit uint8

func (c twoBit) taken() bool { return c >= 2 }

func (c twoBit) update(taken bool) twoBit {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	table []twoBit
}

// NewBimodal returns a bimodal predictor with the given table size
// (rounded up to a power of two).
func NewBimodal(size int) *Bimodal {
	return &Bimodal{table: make([]twoBit, ceilPow2(size))}
}

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (b *Bimodal) idx(pc uint64) int { return int((pc >> 2) & uint64(len(b.table)-1)) }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.idx(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].update(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// CostBytes implements Predictor (2 bits per entry).
func (b *Bimodal) CostBytes() int { return len(b.table) / 4 }

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
}

// Gshare XORs the global history into the PC index of a 2-bit counter table.
type Gshare struct {
	table    []twoBit
	history  uint64
	histMask uint64
}

// NewGshare returns a gshare predictor with historyLen history bits and the
// given counter-table size (rounded up to a power of two).
func NewGshare(historyLen, size int) *Gshare {
	return &Gshare{
		table:    make([]twoBit, ceilPow2(size)),
		histMask: mask64(historyLen),
	}
}

func (g *Gshare) idx(pc uint64) int {
	return int(((pc >> 2) ^ g.history) & uint64(len(g.table)-1))
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.idx(pc)].taken() }

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = ((g.history << 1) | b2u64(taken)) & g.histMask
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

// CostBytes implements Predictor.
func (g *Gshare) CostBytes() int { return len(g.table) / 4 }

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.history = 0
}

// Tournament combines a bimodal and a gshare component with a PC-indexed
// chooser table of 2-bit counters (an Alpha 21264-style hybrid).
type Tournament struct {
	bimodal *Bimodal
	gshare  *Gshare
	chooser []twoBit // 0,1: prefer bimodal; 2,3: prefer gshare
}

// NewTournament builds a tournament predictor. The Config's TableSize sizes
// each component (default 4K counters each) and HistoryLen the gshare
// history (default 12).
func NewTournament(c Config) *Tournament {
	size := c.TableSize
	if size == 0 {
		size = 4096
	}
	hist := c.HistoryLen
	if hist == 0 {
		hist = 12
	}
	return &Tournament{
		bimodal: NewBimodal(size),
		gshare:  NewGshare(hist, size),
		chooser: make([]twoBit, ceilPow2(size)),
	}
}

func (t *Tournament) idx(pc uint64) int { return int((pc >> 2) & uint64(len(t.chooser)-1)) }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.chooser[t.idx(pc)].taken() {
		return t.gshare.Predict(pc)
	}
	return t.bimodal.Predict(pc)
}

// Update implements Predictor: trains both components and moves the chooser
// toward whichever one was right when they disagree.
func (t *Tournament) Update(pc uint64, taken bool) {
	bp := t.bimodal.Predict(pc)
	gp := t.gshare.Predict(pc)
	if bp != gp {
		i := t.idx(pc)
		t.chooser[i] = t.chooser[i].update(gp == taken)
	}
	t.bimodal.Update(pc, taken)
	t.gshare.Update(pc, taken)
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

// CostBytes implements Predictor.
func (t *Tournament) CostBytes() int {
	return t.bimodal.CostBytes() + t.gshare.CostBytes() + len(t.chooser)/4
}

// Reset implements Predictor.
func (t *Tournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	for i := range t.chooser {
		t.chooser[i] = 0
	}
}
