package bpred

// TAGE is a compact TAGE predictor (Seznec & Michaud, JILP 2006): a bimodal
// base predictor plus N partially-tagged tables indexed with geometrically
// increasing history lengths. Included as a beyond-paper predictor for the
// footnote-1 style cross-checks — the paper's machine uses the perceptron,
// but confidence-based issue prioritization should survive a predictor
// swap, and TAGE is the strongest family in production use.
type TAGE struct {
	base    *Bimodal
	tables  []tageTable
	history uint64 // global history, youngest outcome in bit 0 (64-bit cap)

	// Prediction bookkeeping between Predict and Update (single-branch
	// in-flight window, which matches the simulator's fetch-time
	// predict/update discipline).
	lastPC       uint64
	provider     int // table index of the provider, -1 = bimodal
	altPred      bool
	providerPred bool
	useAltOnNA   int8 // "use alternate on newly allocated" counter
}

type tageTable struct {
	histLen int
	tagBits int
	entries []tageEntry
	mask    uint64
}

type tageEntry struct {
	tag    uint16
	ctr    int8 // -4..3 signed counter; ≥0 predicts taken
	useful uint8
}

// NewTAGE builds a 4-table TAGE with history lengths 5/15/44/130 (capped at
// the 64-bit register for folding purposes), 512-entry tables, 9-bit tags.
func NewTAGE() *TAGE {
	lens := []int{5, 15, 44, 64} // 130 folds to the 64-bit history register
	t := &TAGE{
		base:     NewBimodal(4096),
		provider: -1,
	}
	for _, hl := range lens {
		t.tables = append(t.tables, tageTable{
			histLen: hl,
			tagBits: 9,
			entries: make([]tageEntry, 512),
			mask:    511,
		})
	}
	return t
}

// fold compresses the low n history bits into `bits` bits.
func fold(h uint64, n, bits int) uint64 {
	if n < 64 {
		h &= (uint64(1) << n) - 1
	}
	var out uint64
	for h != 0 {
		out ^= h & ((uint64(1) << bits) - 1)
		h >>= uint(bits)
	}
	return out
}

func (tt *tageTable) index(pc, hist uint64) uint64 {
	return (pc>>2 ^ fold(hist, tt.histLen, 9) ^ fold(hist, tt.histLen, 7)<<2) & tt.mask
}

func (tt *tageTable) tag(pc, hist uint64) uint16 {
	return uint16((pc>>2 ^ fold(hist, tt.histLen, uint16Bits(tt.tagBits))) & ((1 << tt.tagBits) - 1))
}

func uint16Bits(b int) int { return b }

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64) bool {
	t.lastPC = pc
	t.provider = -1
	alt := -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		tt := &t.tables[i]
		e := &tt.entries[tt.index(pc, t.history)]
		if e.tag == tt.tag(pc, t.history) {
			if t.provider == -1 {
				t.provider = i
			} else {
				alt = i
				break
			}
		}
	}
	t.altPred = t.base.Predict(pc)
	if alt >= 0 {
		tt := &t.tables[alt]
		t.altPred = tt.entries[tt.index(pc, t.history)].ctr >= 0
	}
	if t.provider == -1 {
		t.providerPred = t.base.Predict(pc)
		return t.providerPred
	}
	tt := &t.tables[t.provider]
	e := &tt.entries[tt.index(pc, t.history)]
	t.providerPred = e.ctr >= 0
	// Newly allocated, weak entries defer to the alternate prediction when
	// experience says so.
	if t.useAltOnNA >= 0 && (e.ctr == 0 || e.ctr == -1) && e.useful == 0 {
		return t.altPred
	}
	return t.providerPred
}

// Update implements Predictor. The simulator calls Predict immediately
// followed by Update for the same branch, so the prediction bookkeeping
// from Predict is still valid.
func (t *TAGE) Update(pc uint64, taken bool) {
	if pc != t.lastPC {
		// Defensive: recompute the provider state for out-of-protocol use.
		t.Predict(pc)
	}
	if t.provider >= 0 {
		tt := &t.tables[t.provider]
		e := &tt.entries[tt.index(pc, t.history)]
		correct := t.providerPred == taken
		// Track whether newly-allocated entries should defer to alt.
		if (e.ctr == 0 || e.ctr == -1) && e.useful == 0 && t.providerPred != t.altPred {
			if correct && t.useAltOnNA > -64 {
				t.useAltOnNA--
			} else if !correct && t.useAltOnNA < 63 {
				t.useAltOnNA++
			}
		}
		// Useful bit: provider right where the alternate was wrong.
		if t.providerPred != t.altPred {
			if correct && e.useful < 3 {
				e.useful++
			} else if !correct && e.useful > 0 {
				e.useful--
			}
		}
		e.ctr = bump(e.ctr, taken)
	} else {
		t.base.Update(pc, taken)
	}

	// Allocate on a misprediction in a longer-history table.
	finalPred := t.providerPred
	if t.provider >= 0 {
		tt := &t.tables[t.provider]
		e := &tt.entries[tt.index(pc, t.history)]
		if t.useAltOnNA >= 0 && (e.ctr == 0 || e.ctr == 1 || e.ctr == -1 || e.ctr == -2) && e.useful == 0 {
			finalPred = t.altPred
		}
	}
	if finalPred != taken && t.provider < len(t.tables)-1 {
		start := t.provider + 1
		allocated := false
		for i := start; i < len(t.tables); i++ {
			tt := &t.tables[i]
			e := &tt.entries[tt.index(pc, t.history)]
			if e.useful == 0 {
				e.tag = tt.tag(pc, t.history)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations succeed.
			for i := start; i < len(t.tables); i++ {
				tt := &t.tables[i]
				e := &tt.entries[tt.index(pc, t.history)]
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	}
	t.history = t.history<<1 | b2u64(taken)
}

func bump(c int8, up bool) int8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

// Reset implements Predictor: restore the freshly-constructed state.
func (t *TAGE) Reset() {
	t.base.Reset()
	for i := range t.tables {
		e := t.tables[i].entries
		for j := range e {
			e[j] = tageEntry{}
		}
	}
	t.history = 0
	t.lastPC = 0
	t.provider = -1
	t.altPred = false
	t.providerPred = false
	t.useAltOnNA = 0
}

// Name implements Predictor.
func (t *TAGE) Name() string { return "tage" }

// CostBytes implements Predictor: base (2 bits/entry) + tagged entries
// (9-bit tag + 3-bit counter + 2-bit useful ≈ 2 bytes each).
func (t *TAGE) CostBytes() int {
	cost := t.base.CostBytes()
	for _, tt := range t.tables {
		cost += len(tt.entries) * 2
	}
	return cost
}
