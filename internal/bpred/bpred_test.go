package bpred

import (
	"testing"
	"testing/quick"
)

// trainAccuracy drives a predictor with outcomes produced by gen and
// returns the accuracy over the last half of n trials.
func trainAccuracy(p Predictor, n int, gen func(i int) (pc uint64, taken bool)) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := gen(i)
		pred := p.Predict(pc)
		if i >= n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(counted)
}

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewPerceptron(34, 256)
	acc := trainAccuracy(p, 2000, func(i int) (uint64, bool) { return 0x400, true })
	if acc < 0.99 {
		t.Errorf("always-taken accuracy %.3f", acc)
	}
}

func TestPerceptronLearnsHistoryPattern(t *testing.T) {
	// Period-8 pattern: TTTTTTTN — learnable from 34 bits of history.
	p := NewPerceptron(34, 256)
	acc := trainAccuracy(p, 20_000, func(i int) (uint64, bool) { return 0x80, i%8 != 7 })
	if acc < 0.98 {
		t.Errorf("periodic accuracy %.3f", acc)
	}
}

func TestPerceptronLearnsCorrelation(t *testing.T) {
	// Branch B repeats branch A's last outcome: pure history correlation a
	// bimodal predictor cannot capture.
	p := NewPerceptron(16, 64)
	acc := 0
	n := 20_000
	for i := 0; i < n; i++ {
		a := i%3 == 0 // branch A pattern
		p.Update(0x100, a)
		predB := p.Predict(0x200)
		takenB := a
		if i > n/2 && predB == takenB {
			acc++
		}
		p.Update(0x200, takenB)
	}
	if rate := float64(acc) / float64(n/2); rate < 0.95 {
		t.Errorf("correlated accuracy %.3f", rate)
	}
}

func TestPerceptronTheta(t *testing.T) {
	p := NewPerceptron(34, 256)
	h := 34.0
	wantTheta := int32(1.93*h + 14) // ⌊79.62⌋
	if p.Theta() != wantTheta {
		t.Errorf("theta = %d", p.Theta())
	}
}

func TestPerceptronCost(t *testing.T) {
	p := NewPerceptron(34, 256)
	if p.CostBytes() != 256*35 {
		t.Errorf("cost = %d, want %d", p.CostBytes(), 256*35)
	}
	// The Fig. 13 enlarged predictor must cost more than double the default.
	if large := NewPerceptron(36, 512); large.CostBytes() < 2*p.CostBytes() {
		t.Error("large predictor not at least double the default cost")
	}
}

func TestPerceptronHistoryMasked(t *testing.T) {
	p := NewPerceptron(8, 16)
	for i := 0; i < 100; i++ {
		p.Update(0, true)
	}
	if p.History() != 0xFF {
		t.Errorf("history = %#x, want 0xFF (8 bits)", p.History())
	}
}

func TestBimodalSaturation(t *testing.T) {
	b := NewBimodal(64)
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("saturated-taken counter predicts not-taken")
	}
	// One not-taken must not flip a saturated counter.
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Error("2-bit hysteresis missing")
	}
	b.Update(pc, false)
	if b.Predict(pc) {
		t.Error("two not-takens should flip the counter")
	}
}

func TestGshareUsesHistory(t *testing.T) {
	g := NewGshare(10, 1024)
	acc := trainAccuracy(g, 20_000, func(i int) (uint64, bool) { return 0x80, i%4 == 0 })
	if acc < 0.95 {
		t.Errorf("gshare periodic accuracy %.3f", acc)
	}
}

func TestTournamentBeatsComponentsOnMix(t *testing.T) {
	// A workload with both a biased branch and a history-correlated branch.
	gen := func(i int) (uint64, bool) {
		if i%2 == 0 {
			return 0x100, true // biased: bimodal-friendly
		}
		return 0x200, (i/2)%4 == 0 // periodic: gshare-friendly
	}
	tour := NewTournament(Config{})
	acc := trainAccuracy(tour, 40_000, gen)
	if acc < 0.95 {
		t.Errorf("tournament accuracy %.3f", acc)
	}
}

func TestNewDispatch(t *testing.T) {
	kinds := []string{"perceptron", "gshare", "bimodal", "tournament", "static", ""}
	for _, k := range kinds {
		p, err := New(Config{Kind: k})
		if err != nil || p == nil {
			t.Errorf("New(%q) failed: %v", k, err)
		}
	}
	if _, err := New(Config{Kind: "nope"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if !(StaticTaken{}).Predict(0) {
		t.Error("static-taken broken")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(16, 2)
	b.Insert(0x1000, 0x2000)
	if tgt, hit := b.Lookup(0x1000); !hit || tgt != 0x2000 {
		t.Errorf("lookup = %#x,%v", tgt, hit)
	}
	if _, hit := b.Lookup(0x1004); hit {
		t.Error("phantom hit")
	}
	// Target update in place.
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Error("target not updated")
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(1, 2) // single set, 2 ways
	b.Insert(0x0, 1)
	b.Insert(0x4, 2)
	b.Lookup(0x0)    // touch way 0 so 0x4 becomes LRU
	b.Insert(0x8, 3) // evicts 0x4
	if _, hit := b.Lookup(0x4); hit {
		t.Error("LRU entry not evicted")
	}
	if _, hit := b.Lookup(0x0); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := b.Lookup(0x8); !hit {
		t.Error("new entry missing")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 3; i++ {
		r.Push(i * 100)
	}
	for want := uint64(300); want >= 100; want -= 100 {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("depth should be exhausted after wrap")
	}
}

// Property: a BTB lookup immediately after insert always hits with the
// inserted target, for arbitrary PCs.
func TestQuickBTB(t *testing.T) {
	b := DefaultBTB()
	f := func(pc, tgt uint64) bool {
		b.Insert(pc, tgt)
		got, hit := b.Lookup(pc)
		return hit && got == tgt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: predictors never crash and always return a boolean for
// arbitrary PC streams (smoke safety under fuzzing).
func TestQuickPredictorSafety(t *testing.T) {
	preds := []Predictor{
		NewPerceptron(34, 256),
		NewGshare(12, 1024),
		NewBimodal(512),
		NewTournament(Config{}),
	}
	f := func(pc uint64, taken bool) bool {
		for _, p := range preds {
			p.Predict(pc)
			p.Update(pc, taken)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTAGELearnsBias(t *testing.T) {
	p := NewTAGE()
	acc := trainAccuracy(p, 4000, func(i int) (uint64, bool) { return 0x400, true })
	if acc < 0.99 {
		t.Errorf("always-taken accuracy %.3f", acc)
	}
}

func TestTAGELearnsLongPeriodPattern(t *testing.T) {
	// Period-24 pattern: beyond gshare-with-10-bit-history comfort but
	// well inside TAGE's 44-bit table.
	gen := func(i int) (uint64, bool) { return 0x80, i%24 < 20 }
	tage := NewTAGE()
	accT := trainAccuracy(tage, 60_000, gen)
	if accT < 0.97 {
		t.Errorf("TAGE period-24 accuracy %.3f", accT)
	}
	bim := NewBimodal(4096)
	accB := trainAccuracy(bim, 60_000, gen)
	if accT <= accB {
		t.Errorf("TAGE (%.3f) not above bimodal (%.3f) on a history pattern", accT, accB)
	}
}

func TestTAGECorrelatedBranches(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome.
	p := NewTAGE()
	n := 40_000
	correct := 0
	for i := 0; i < n; i++ {
		a := (i/5)%3 == 0
		p.Predict(0x100)
		p.Update(0x100, a)
		predB := p.Predict(0x200)
		if i > n/2 && predB == a {
			correct++
		}
		p.Update(0x200, a)
	}
	if rate := float64(correct) / float64(n/2); rate < 0.95 {
		t.Errorf("correlated accuracy %.3f", rate)
	}
}

func TestTAGECost(t *testing.T) {
	p := NewTAGE()
	if p.CostBytes() <= 0 || p.CostBytes() > 16*1024 {
		t.Errorf("TAGE cost %d bytes implausible", p.CostBytes())
	}
	if p.Name() != "tage" {
		t.Error("name wrong")
	}
}

func TestTAGEFactory(t *testing.T) {
	p, err := New(Config{Kind: "tage"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*TAGE); !ok {
		t.Errorf("factory returned %T", p)
	}
}
