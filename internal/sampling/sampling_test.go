package sampling

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/simerr"
	"repro/internal/workload"
)

func TestPlanValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero plan accepted")
	}
	if err := (Config{Windows: 2}).Validate(); err == nil {
		t.Error("zero measure accepted")
	}
	if err := DefaultPlan().Validate(); err != nil {
		t.Error(err)
	}
}

func TestSampledRunProducesWindows(t *testing.T) {
	plan := Config{Windows: 4, FastForward: 50_000, Warmup: 10_000, Measure: 20_000}
	res, err := Run(pipeline.BaseConfig(), workload.MustProgram("parser"), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 4 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	// Window boundaries land on commit-group edges, so each window can be
	// off by up to the commit width.
	if res.Committed < 4*(20_000-4) || res.Committed > 4*(20_000+4) {
		t.Errorf("committed = %d, want ≈80000", res.Committed)
	}
	// Windows must advance through the program.
	for i := 1; i < len(res.Windows); i++ {
		if res.Windows[i].StartInst <= res.Windows[i-1].StartInst {
			t.Error("windows did not advance")
		}
	}
	if res.IPC() <= 0 || res.IPC() > 4 {
		t.Errorf("aggregate IPC %f", res.IPC())
	}
	out := res.Table()
	if !strings.Contains(out, "aggregate IPC") {
		t.Errorf("table missing aggregate:\n%s", out)
	}
}

// TestSampledMatchesContiguous: on a phase-free workload, the sampled IPC
// estimate must land close to a contiguous measurement.
func TestSampledMatchesContiguous(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog := workload.MustProgram("chess")
	full, err := pipeline.RunProgram(pipeline.BaseConfig(), prog, 100_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	plan := Config{Windows: 4, FastForward: 100_000, Warmup: 30_000, Measure: 50_000}
	sampled, err := Run(pipeline.BaseConfig(), prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sampled.IPC() / full.IPC()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("sampled IPC %.3f vs contiguous %.3f (ratio %.3f)", sampled.IPC(), full.IPC(), ratio)
	}
	if sampled.BranchMPKI() <= 0 {
		t.Error("sampled branch MPKI missing")
	}
}

// TestHaltingProgram: sampling a program that ends mid-plan returns the
// windows it completed, or a clear error if none did.
func TestHaltingProgram(t *testing.T) {
	b := asm.New("short")
	r2 := isa.R(2)
	b.Li(r2, 100_000)
	b.Label("loop")
	b.Addi(r2, r2, -1)
	b.Bne(r2, isa.RZero, "loop")
	b.Halt()
	prog := b.MustBuild()

	// Plan longer than the program: at least one window, then stop.
	plan := Config{Windows: 10, FastForward: 20_000, Warmup: 5_000, Measure: 30_000}
	res, err := Run(pipeline.BaseConfig(), prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) == 0 || len(res.Windows) >= 10 {
		t.Errorf("windows = %d, want a partial plan", len(res.Windows))
	}

	// Fast-forward longer than the whole program: no windows at all.
	tiny := Config{Windows: 2, FastForward: 10_000_000, Warmup: 10, Measure: 10}
	if _, err := Run(pipeline.BaseConfig(), prog, tiny); err == nil {
		t.Error("plan past the program's end should error")
	}
}

// TestPlanValidationTyped: plan rejections must wrap simerr.ErrInvalidConfig
// so campaign code classifies them without string matching.
func TestPlanValidationTyped(t *testing.T) {
	for _, plan := range []Config{
		{},                          // zero windows
		{Windows: -1, Measure: 100}, // negative windows
		{Windows: 2},                // zero measure
	} {
		if err := plan.Validate(); !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Errorf("plan %+v: err = %v, want ErrInvalidConfig", plan, err)
		}
		if _, err := Run(pipeline.BaseConfig(), workload.MustProgram("parser"), plan); !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Errorf("Run with plan %+v: err = %v, want ErrInvalidConfig", plan, err)
		}
	}
}

// TestRunContextCancelled: a cancelled campaign stops between windows with
// the completed windows returned alongside the typed error.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := Config{Windows: 4, FastForward: 50_000, Warmup: 10_000, Measure: 20_000}
	res, err := RunContext(ctx, pipeline.BaseConfig(), workload.MustProgram("parser"), plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Windows) != 0 {
		t.Errorf("cancelled-before-start run returned %d windows", len(res.Windows))
	}
}

// TestRunContextDeadlineMidWindow: an expiring deadline cuts the plan short
// mid-window; depending on which check observes it first the error is the
// pipeline's ErrTimeout or the between-window DeadlineExceeded.
func TestRunContextDeadlineMidWindow(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	plan := Config{Windows: 1_000, FastForward: 50_000, Warmup: 10_000, Measure: 20_000}
	res, err := RunContext(ctx, pipeline.BaseConfig(), workload.MustProgram("parser"), plan)
	if err == nil {
		t.Fatal("a 1000-window plan finished inside 5ms")
	}
	if !errors.Is(err, simerr.ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrTimeout or DeadlineExceeded", err)
	}
	if len(res.Windows) >= 1_000 {
		t.Errorf("deadline did not cut the plan short (%d windows)", len(res.Windows))
	}
}
