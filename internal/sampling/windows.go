package sampling

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Window is one placed measurement window: where in the dynamic
// instruction stream it starts and the architectural snapshot that seeds
// its detailed simulation. Placement is purely functional — it depends on
// the program and the plan geometry only, never on a machine
// configuration — which is what makes windows shareable across every
// machine variant of a sweep and executable in any order.
type Window struct {
	Index     int    // position in the plan, 0-based
	StartInst uint64 // instruction count at the start of the window's warm-up
	Snap      *emu.Snapshot

	// Pre is the window's predecoded trace: the detailed (warm-up +
	// measure) instruction stream plus replaySlack of tail slack, recorded
	// during the same functional pass that placed the window. Immutable
	// once planned — one buffer feeds every machine variant of a sweep
	// concurrently. Nil when the plan was made with LiveDecode.
	Pre *emu.Predecode
}

// replaySlack is how many instructions past the detailed region the planner
// records. The timing front end overfetches past the last committed
// instruction by at most the fetch queue plus the ROB (≲600 even on the
// "huge" machines), so 2048 keeps every replay on the trace; a hypothetical
// overrun falls back to a live emulator stream, changing nothing but speed.
const replaySlack = 2048

// PlanWindows fast-forwards the functional emulator once through the
// program, snapshotting at each window start and functionally skipping the
// detailed (warm-up + measure) region so the next window begins where a
// serial detailed run would leave off. A program that halts during a
// fast-forward gap truncates the plan; one that halts inside a window's
// detailed region keeps that window (it may still measure a partial tail)
// and truncates the rest. The context is checked between windows.
func PlanWindows(ctx context.Context, prog *isa.Program, plan Config) ([]Window, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	m, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	detailed := plan.Warmup + plan.Measure
	var windows []Window
	for w := 0; w < plan.Windows; w++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sampling: planning window %d: %w", w, err)
		}
		if plan.FastForward > 0 {
			if ran := m.Run(plan.FastForward); ran < plan.FastForward {
				break // program halted during fast-forward
			}
		}
		if m.Done() {
			break
		}
		win := Window{Index: w, StartInst: m.Seq(), Snap: m.Snapshot()}
		if plan.LiveDecode {
			windows = append(windows, win)
			if ran := m.Run(detailed); ran < detailed {
				break // program ends inside this window; no windows follow
			}
			continue
		}
		// Trace mode: the same pass that skips the detailed region records
		// it (plus tail slack for the front end's bounded overfetch) into
		// the window's predecode buffer.
		rec := emu.NewPredecode(int(detailed) + replaySlack)
		full := true
		for k := uint64(0); k < detailed; k++ {
			di, ok := m.Step()
			if !ok {
				full = false
				break
			}
			rec.Append(di)
		}
		win.Pre = rec
		windows = append(windows, win)
		if !full {
			break // program ends inside this window; no windows follow
		}
		// Record the slack, then rewind the placement machine to the end of
		// the detailed region so the next window starts exactly where a
		// live-decode plan would place it.
		tail := m.Snapshot()
		for k := 0; k < replaySlack; k++ {
			di, ok := m.Step()
			if !ok {
				break
			}
			rec.Append(di)
		}
		m, err = emu.NewFromSnapshot(prog, tail)
		if err != nil {
			return nil, fmt.Errorf("sampling: planning window %d: %w", w, err)
		}
	}
	return windows, nil
}

// planKey content-addresses a (program, plan geometry) pair. The hash
// covers the program's actual content — code, data image, memory size,
// entry point — not its name, because workload programs are rebuilt per
// call and custom programs may share names. Parallel is excluded: it
// cannot change placement.
func planKey(prog *isa.Program, plan Config) string {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(len(prog.Code)))
	for _, in := range prog.Code {
		word(uint64(in.Op)<<32 | uint64(in.Rd)<<16 | uint64(in.Rs1)<<8 | uint64(in.Rs2))
		word(uint64(in.Imm))
	}
	word(uint64(len(prog.Data)))
	h.Write(prog.Data)
	word(uint64(prog.MemSize))
	word(uint64(prog.Entry))
	word(uint64(plan.Windows))
	word(plan.FastForward)
	word(plan.Warmup)
	word(plan.Measure)
	// Trace-recording plans cache a different window payload than live
	// plans, and a slack change invalidates recorded traces.
	if plan.LiveDecode {
		word(1)
	} else {
		word(0)
		word(replaySlack)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StoreStats counts what a Store actually computed, shared, and holds.
type StoreStats struct {
	Plans         uint64 // fast-forward passes executed locally
	PeerPlans     uint64 // plans adopted from a PlanSource instead of computed
	Hits          uint64 // requests answered from an existing (or in-flight) plan
	Evictions     uint64 // completed plans dropped to stay within the byte budget
	ResidentBytes int64  // snapshot + predecode bytes currently held
	ResidentPlans int    // completed plans currently held
}

// PlanSource is the store's remote-plan seam: given a plan content key it
// returns ready-made windows (for example decoded from a peer's serialized
// plan) or reports a miss. It is called inside the store's singleflight
// critical section for the key — concurrent requests for the same plan
// share one fetch exactly as they share one functional pass — so it must
// not call back into the same store.
type PlanSource func(ctx context.Context, key string) ([]Window, bool)

// Store is a content-addressed cache of placed windows with singleflight
// deduplication: concurrent requests for the same (program, plan geometry)
// pair — every machine variant of a grid sweep — share one functional
// fast-forward pass. Snapshots and predecode buffers are immutable, so the
// cached windows are handed out by reference to any number of concurrent
// detailed runs.
//
// A byte budget (NewStoreBudget) bounds the resident footprint with LRU
// eviction over *completed* plans only: an entry is linked into the LRU
// list when its planning pass finishes, so an in-flight singleflight plan —
// and every caller blocked on it — can never be evicted mid-computation.
// Eviction removes the entry from the map; callers already holding its
// windows keep them (immutability + GC make that safe), and the next
// request for the key replans. The most recently used plan always stays
// resident even when it alone exceeds the budget, so a working set of one
// cannot thrash.
type Store struct {
	mu        sync.Mutex
	entries   map[string]*storeEntry
	budget    int64 // max resident bytes; 0 = unbounded
	resident  int64
	plans     uint64
	peerPlans uint64
	hits      uint64
	evictions uint64
	// Intrusive LRU list over completed entries; lruHead is most recent.
	lruHead, lruTail *storeEntry

	// Plan-exchange seams (WithPlanExchange). fetch is tried on a miss
	// before paying the functional pass; planned fires after a successful
	// *local* pass (never for adopted plans, so plans cannot echo around a
	// ring). Both are read without the lock — set them before first use.
	fetch   PlanSource
	planned func(key string, ws []Window)
}

type storeEntry struct {
	key     string
	done    chan struct{}
	windows []Window
	err     error

	bytes      int64
	prev, next *storeEntry
	inLRU      bool
}

// NewStore returns an empty, unbounded window store.
func NewStore() *Store {
	return &Store{entries: make(map[string]*storeEntry)}
}

// NewStoreBudget returns a window store bounded to roughly maxBytes of
// resident snapshot + predecode data. maxBytes <= 0 means unbounded.
func NewStoreBudget(maxBytes int64) *Store {
	s := NewStore()
	s.budget = maxBytes
	return s
}

// WithPlanExchange installs the store's cluster seams and returns the
// store. fetch (may be nil) is consulted on every miss before planning
// locally; planned (may be nil) is invoked — outside the store lock, after
// waiters are released — with the key and windows of every successful
// local pass. Call before the store is shared between goroutines.
func (s *Store) WithPlanExchange(fetch PlanSource, planned func(key string, ws []Window)) *Store {
	s.fetch = fetch
	s.planned = planned
	return s
}

// windowsBytes accounts one plan's resident footprint: every window's
// dirty-page snapshot plus its predecode buffer.
func windowsBytes(ws []Window) int64 {
	var b int64
	for _, w := range ws {
		if w.Snap != nil {
			b += int64(w.Snap.MemBytes())
		}
		if w.Pre != nil {
			b += w.Pre.Bytes()
		}
	}
	return b
}

// pushMRU links a completed entry at the head of the LRU list. Caller holds mu.
func (s *Store) pushMRU(e *storeEntry) {
	e.inLRU = true
	e.prev = nil
	e.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

// unlink removes e from the LRU list. Caller holds mu.
func (s *Store) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
	e.inLRU = false
}

// touch moves a resident entry to most-recently-used. Caller holds mu.
func (s *Store) touch(e *storeEntry) {
	if !e.inLRU || s.lruHead == e {
		return
	}
	s.unlink(e)
	s.pushMRU(e)
}

// evict drops least-recently-used completed plans until the budget holds,
// always keeping the MRU entry. Caller holds mu.
func (s *Store) evict() {
	if s.budget <= 0 {
		return
	}
	for s.resident > s.budget && s.lruTail != nil && s.lruTail != s.lruHead {
		e := s.lruTail
		s.unlink(e)
		delete(s.entries, e.key)
		s.resident -= e.bytes
		s.evictions++
	}
}

// Windows returns the placed windows for (prog, plan), computing them at
// most once per content key. Concurrent callers for the same key block on
// the first caller's fast-forward; a failed computation (for example a
// cancelled context) is not cached, so later callers retry rather than
// inherit the failure.
func (s *Store) Windows(ctx context.Context, prog *isa.Program, plan Config) ([]Window, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	key := planKey(prog, plan)
	for {
		s.mu.Lock()
		e, ok := s.entries[key]
		if !ok {
			e = &storeEntry{key: key, done: make(chan struct{})}
			s.entries[key] = e
			s.mu.Unlock()
			// Inside the singleflight critical section: try to adopt the
			// plan from a peer before paying the functional pass. Everything
			// queued behind e.done shares whichever path wins.
			adopted := false
			if s.fetch != nil {
				if ws, hit := s.fetch(ctx, key); hit {
					e.windows, adopted = ws, true
				}
			}
			if !adopted {
				s.mu.Lock()
				s.plans++ // local passes only — adopted plans cost no fast-forward
				s.mu.Unlock()
				e.windows, e.err = PlanWindows(ctx, prog, plan)
			}
			s.mu.Lock()
			if e.err != nil {
				delete(s.entries, key)
			} else {
				if adopted {
					s.peerPlans++
				}
				// The plan becomes evictable only now that it is complete;
				// waiters blocked on done still hold e and its windows.
				e.bytes = windowsBytes(e.windows)
				s.resident += e.bytes
				s.pushMRU(e)
				s.evict()
			}
			s.mu.Unlock()
			close(e.done)
			if e.err == nil && !adopted && s.planned != nil {
				// Announce the fresh local plan (proactive push) after
				// waiters are released; adopted plans are never re-announced.
				s.planned(key, e.windows)
			}
			return e.windows, e.err
		}
		if e.inLRU {
			s.touch(e)
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return e.windows, nil
			}
			// The computing caller failed; retry unless we are cancelled too.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Plans:         s.plans,
		PeerPlans:     s.peerPlans,
		Hits:          s.hits,
		Evictions:     s.evictions,
		ResidentBytes: s.resident,
	}
	for e := s.lruHead; e != nil; e = e.next {
		st.ResidentPlans++
	}
	return st
}

// Len returns the number of cached plans.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Encoded serializes the resident plan for key, if one has completed.
// In-flight plans report a miss rather than block — the peer answer path
// is cache-only by design (a fetch that could trigger planning on the
// serving node would let two nodes plan for each other in a loop).
// Serving a plan counts as a use for LRU purposes.
func (s *Store) Encoded(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		select {
		case <-e.done:
		default:
			ok = false // still planning
		}
	}
	if !ok || e.err != nil {
		s.mu.Unlock()
		return nil, false
	}
	if e.inLRU {
		s.touch(e)
	}
	ws := e.windows
	s.mu.Unlock()
	data, err := EncodePlan(ws)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Has reports whether a completed plan for key is resident, without
// serializing it or counting a use.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}
