package sampling

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Window is one placed measurement window: where in the dynamic
// instruction stream it starts and the architectural snapshot that seeds
// its detailed simulation. Placement is purely functional — it depends on
// the program and the plan geometry only, never on a machine
// configuration — which is what makes windows shareable across every
// machine variant of a sweep and executable in any order.
type Window struct {
	Index     int    // position in the plan, 0-based
	StartInst uint64 // instruction count at the start of the window's warm-up
	Snap      *emu.Snapshot
}

// PlanWindows fast-forwards the functional emulator once through the
// program, snapshotting at each window start and functionally skipping the
// detailed (warm-up + measure) region so the next window begins where a
// serial detailed run would leave off. A program that halts during a
// fast-forward gap truncates the plan; one that halts inside a window's
// detailed region keeps that window (it may still measure a partial tail)
// and truncates the rest. The context is checked between windows.
func PlanWindows(ctx context.Context, prog *isa.Program, plan Config) ([]Window, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	m, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	detailed := plan.Warmup + plan.Measure
	var windows []Window
	for w := 0; w < plan.Windows; w++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sampling: planning window %d: %w", w, err)
		}
		if plan.FastForward > 0 {
			if ran := m.Run(plan.FastForward); ran < plan.FastForward {
				break // program halted during fast-forward
			}
		}
		if m.Done() {
			break
		}
		windows = append(windows, Window{Index: w, StartInst: m.Seq(), Snap: m.Snapshot()})
		if ran := m.Run(detailed); ran < detailed {
			break // program ends inside this window; no windows follow
		}
	}
	return windows, nil
}

// planKey content-addresses a (program, plan geometry) pair. The hash
// covers the program's actual content — code, data image, memory size,
// entry point — not its name, because workload programs are rebuilt per
// call and custom programs may share names. Parallel is excluded: it
// cannot change placement.
func planKey(prog *isa.Program, plan Config) string {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(len(prog.Code)))
	for _, in := range prog.Code {
		word(uint64(in.Op)<<32 | uint64(in.Rd)<<16 | uint64(in.Rs1)<<8 | uint64(in.Rs2))
		word(uint64(in.Imm))
	}
	word(uint64(len(prog.Data)))
	h.Write(prog.Data)
	word(uint64(prog.MemSize))
	word(uint64(prog.Entry))
	word(uint64(plan.Windows))
	word(plan.FastForward)
	word(plan.Warmup)
	word(plan.Measure)
	return hex.EncodeToString(h.Sum(nil))
}

// StoreStats counts what a Store actually computed versus shared.
type StoreStats struct {
	Plans uint64 // fast-forward passes executed
	Hits  uint64 // requests answered from an existing (or in-flight) plan
}

// Store is a content-addressed cache of placed windows with singleflight
// deduplication: concurrent requests for the same (program, plan geometry)
// pair — every machine variant of a grid sweep — share one functional
// fast-forward pass. Snapshots are immutable, so the cached windows are
// handed out by reference to any number of concurrent detailed runs.
type Store struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
	plans   uint64
	hits    uint64
}

type storeEntry struct {
	done    chan struct{}
	windows []Window
	err     error
}

// NewStore returns an empty window store.
func NewStore() *Store {
	return &Store{entries: make(map[string]*storeEntry)}
}

// Windows returns the placed windows for (prog, plan), computing them at
// most once per content key. Concurrent callers for the same key block on
// the first caller's fast-forward; a failed computation (for example a
// cancelled context) is not cached, so later callers retry rather than
// inherit the failure.
func (s *Store) Windows(ctx context.Context, prog *isa.Program, plan Config) ([]Window, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	key := planKey(prog, plan)
	for {
		s.mu.Lock()
		e, ok := s.entries[key]
		if !ok {
			e = &storeEntry{done: make(chan struct{})}
			s.entries[key] = e
			s.plans++
			s.mu.Unlock()
			e.windows, e.err = PlanWindows(ctx, prog, plan)
			if e.err != nil {
				s.mu.Lock()
				delete(s.entries, key)
				s.mu.Unlock()
			}
			close(e.done)
			return e.windows, e.err
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return e.windows, nil
			}
			// The computing caller failed; retry unless we are cancelled too.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Plans: s.plans, Hits: s.hits}
}

// Len returns the number of cached plans.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
