package sampling

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestSampledIdleSkipEquivalence: for every machine variant, a sampled run
// with event-driven idle skipping (the default) must equal a poll-mode run
// bit for bit — serially and on the parallel window pool, over predecoded
// traces and live decode. Skipping composes with every scheduling mode
// because it is internal to one window's cycle loop. Runs under -race in
// CI.
func TestSampledIdleSkipEquivalence(t *testing.T) {
	for _, vc := range variantCases() {
		vc := vc
		t.Run(vc.name, func(t *testing.T) {
			t.Parallel()
			prog := workload.MustProgram(vc.workload)
			for _, mode := range []struct {
				name string
				plan Config
			}{
				{"serial-trace", Config{Windows: 3, FastForward: 30_000, Warmup: 2_000, Measure: 5_000}},
				{"parallel-live", Config{Windows: 3, FastForward: 30_000, Warmup: 2_000, Measure: 5_000, Parallel: -1, LiveDecode: true}},
			} {
				skipCfg := vc.cfg
				want, err := Run(skipCfg, prog, mode.plan)
				if err != nil {
					t.Fatalf("%s skip: %v", mode.name, err)
				}
				pollCfg := vc.cfg
				pollCfg.NoIdleSkip = true
				got, err := Run(pollCfg, prog, mode.plan)
				if err != nil {
					t.Fatalf("%s poll: %v", mode.name, err)
				}
				// Window-by-window comparison, not just the merged
				// aggregate: a compensating error across windows must not
				// pass.
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s: skip and poll diverged", vc.name, mode.name)
				}
			}
		})
	}
}
