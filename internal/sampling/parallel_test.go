package sampling

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/iq"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// variantCases mirrors the pipeline golden-fingerprint set: every issue
// queue organisation and PUBS mode. The parallel engine must be
// bit-identical to the serial reference on all of them.
func variantCases() []struct {
	name     string
	workload string
	cfg      pipeline.Config
} {
	kind := func(k iq.Kind, name string) pipeline.Config {
		cfg := pipeline.BaseConfig()
		cfg.Name = name
		cfg.IQKind = k
		return cfg
	}
	pubs := func(name string, mutate func(*pipeline.Config)) pipeline.Config {
		cfg := pipeline.PUBSConfig()
		cfg.Name = name
		mutate(&cfg)
		return cfg
	}
	age := pipeline.BaseConfig()
	age.Name = "age"
	age.AgeMatrix = true
	return []struct {
		name     string
		workload string
		cfg      pipeline.Config
	}{
		{"base-random", "chess", pipeline.BaseConfig()},
		{"base-shifting", "chess", kind(iq.Shifting, "base-shifting")},
		{"base-circular", "chess", kind(iq.Circular, "base-circular")},
		{"base-age", "chess", age},
		{"pubs-stall", "chess", pubs("pubs-stall", func(*pipeline.Config) {})},
		{"pubs-goplay", "goplay", pubs("pubs-goplay", func(*pipeline.Config) {})},
		{"pubs-nostall", "chess", pubs("pubs-nostall", func(c *pipeline.Config) { c.PUBS.StallDispatch = false })},
		{"pubs-noswitch", "chess", pubs("pubs-noswitch", func(c *pipeline.Config) { c.PUBS.ModeSwitch = false })},
		{"pubs-flexible", "chess", pubs("pubs-flexible", func(c *pipeline.Config) { c.PUBS.FlexibleSelect = true })},
		{"pubs-blind", "chess", pubs("pubs-blind", func(c *pipeline.Config) { c.PUBS.Blind = true })},
		{"pubs-age", "chess", pubs("pubs-age", func(c *pipeline.Config) { c.AgeMatrix = true })},
		{"pubs-distributed", "chess", pubs("pubs-distributed", func(c *pipeline.Config) { c.DistributedIQ = true })},
		{"pubs-profile", "chess", pubs("pubs-profile", func(c *pipeline.Config) { c.Profile = true })},
		{"pubs-wrongpath", "chess", pubs("pubs-wrongpath", func(c *pipeline.Config) { c.WrongPathDecode = true })},
	}
}

// TestParallelBitIdenticalToSerial: for every machine variant, the
// parallel engine's Result — per-window measurements, aggregates, and the
// merged pipeline.Result — must equal the serial reference bit for bit.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	for _, vc := range variantCases() {
		t.Run(vc.name, func(t *testing.T) {
			prog := workload.MustProgram(vc.workload)
			serialPlan := Config{Windows: 3, FastForward: 30_000, Warmup: 5_000, Measure: 10_000}
			parallelPlan := serialPlan
			parallelPlan.Parallel = 4

			want, err := Run(vc.cfg, prog, serialPlan)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(vc.cfg, prog, parallelPlan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel result diverged from serial:\n got %+v\nwant %+v", got, want)
			}
			if !reflect.DeepEqual(got.Merged(), want.Merged()) {
				t.Fatal("merged results diverged")
			}
		})
	}
}

// TestRunWindowsSharedAcrossConfigs: windows planned once through a Store
// feed every machine variant, and each produces the same Result as a
// self-planned serial run — snapshot sharing changes cost, never results.
func TestRunWindowsSharedAcrossConfigs(t *testing.T) {
	prog := workload.MustProgram("parser")
	plan := Config{Windows: 3, FastForward: 30_000, Warmup: 5_000, Measure: 10_000, Parallel: 2}
	store := NewStore()
	ctx := context.Background()

	cfgs := []pipeline.Config{pipeline.BaseConfig(), pipeline.PUBSConfig()}
	age := pipeline.PUBSConfig()
	age.Name = "pubs+age"
	age.AgeMatrix = true
	cfgs = append(cfgs, age)

	for _, cfg := range cfgs {
		windows, err := store.Windows(ctx, prog, plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunWindows(ctx, cfg, prog, plan, windows)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(cfg, workload.MustProgram("parser"), Config{
			Windows: plan.Windows, FastForward: plan.FastForward,
			Warmup: plan.Warmup, Measure: plan.Measure,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: shared-window result diverged from self-planned serial run", cfg.Name)
		}
	}
	st := store.Stats()
	if st.Plans != 1 {
		t.Errorf("store planned %d times for one (program, plan), want 1", st.Plans)
	}
	if st.Hits != uint64(len(cfgs)-1) {
		t.Errorf("store hits = %d, want %d", st.Hits, len(cfgs)-1)
	}
}

// TestStoreSingleflight: concurrent requests for one key compute once.
func TestStoreSingleflight(t *testing.T) {
	prog := workload.MustProgram("chess")
	plan := Config{Windows: 2, FastForward: 20_000, Warmup: 2_000, Measure: 5_000}
	store := NewStore()
	const callers = 8
	var wg sync.WaitGroup
	outs := make([][]Window, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := store.Windows(context.Background(), workload.MustProgram("chess"), plan)
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = w
		}(i)
	}
	wg.Wait()
	st := store.Stats()
	if st.Plans != 1 {
		t.Errorf("plans = %d, want 1", st.Plans)
	}
	if st.Plans+st.Hits != callers {
		t.Errorf("plans+hits = %d, want %d", st.Plans+st.Hits, callers)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(outs[i], outs[0]) {
			t.Fatalf("caller %d got different windows", i)
		}
	}
	// A different geometry is a different key.
	other := plan
	other.FastForward++
	if _, err := store.Windows(context.Background(), prog, other); err != nil {
		t.Fatal(err)
	}
	if got := store.Len(); got != 2 {
		t.Errorf("store holds %d plans, want 2", got)
	}
	// Parallel does not change the key: no new plan.
	par := plan
	par.Parallel = 4
	if _, err := store.Windows(context.Background(), prog, par); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().Plans; got != 2 {
		t.Errorf("Parallel changed the plan key (plans = %d, want 2)", got)
	}
}

// TestStoreFailureNotCached: a cancelled planning pass must not poison the
// store for later callers.
func TestStoreFailureNotCached(t *testing.T) {
	prog := workload.MustProgram("chess")
	plan := Config{Windows: 2, FastForward: 20_000, Warmup: 2_000, Measure: 5_000}
	store := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := store.Windows(ctx, prog, plan); err == nil {
		t.Fatal("cancelled planning succeeded")
	}
	w, err := store.Windows(context.Background(), prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("windows = %d, want 2", len(w))
	}
}

// TestMergedAggregates: the merged pipeline.Result sums the windows and
// reproduces the sampling aggregates.
func TestMergedAggregates(t *testing.T) {
	res, err := Run(pipeline.BaseConfig(), workload.MustProgram("parser"),
		Config{Windows: 3, FastForward: 30_000, Warmup: 5_000, Measure: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Merged()
	if m.Committed != res.Committed || m.Cycles != res.Cycles {
		t.Fatalf("merged totals %d/%d, want %d/%d", m.Committed, m.Cycles, res.Committed, res.Cycles)
	}
	if m.IPC() != res.IPC() {
		t.Errorf("merged IPC %f, sampling IPC %f", m.IPC(), res.IPC())
	}
	var wantL1D uint64
	for _, w := range res.Windows {
		wantL1D += w.Result.L1D.Accesses
	}
	if m.L1D.Accesses != wantL1D {
		t.Errorf("merged L1D accesses %d, want %d", m.L1D.Accesses, wantL1D)
	}
	if m.Name != "base" {
		t.Errorf("merged name %q", m.Name)
	}
}
