package sampling

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// wireTestPlan is the plan geometry the exchange tests share — the same
// windows/fast-forward shape the golden-variant tests pin, so a planned
// chess program carries several dirty-page snapshots and a real predecode
// trace through the codec.
func wireTestPlan() Config {
	return Config{Windows: 3, FastForward: 30_000, Warmup: 5_000, Measure: 10_000}
}

// TestPlanCodecRoundTrip: encode → decode must reproduce the planned
// windows exactly — snapshots, predecode traces, placement — and encoding
// the decoded plan must reproduce the original wire bytes, so a plan can
// hop any number of nodes without drifting.
func TestPlanCodecRoundTrip(t *testing.T) {
	for _, wl := range []string{"chess", "goplay"} {
		t.Run(wl, func(t *testing.T) {
			prog := workload.MustProgram(wl)
			ws, err := PlanWindows(context.Background(), prog, wireTestPlan())
			if err != nil {
				t.Fatalf("PlanWindows: %v", err)
			}
			if len(ws) == 0 {
				t.Fatal("plan placed no windows")
			}
			enc, err := EncodePlan(ws)
			if err != nil {
				t.Fatalf("EncodePlan: %v", err)
			}
			dec, err := DecodePlan(enc)
			if err != nil {
				t.Fatalf("DecodePlan: %v", err)
			}
			if !reflect.DeepEqual(dec, ws) {
				t.Fatal("decoded plan differs from the planned windows")
			}
			if PlanBytes(dec) != PlanBytes(ws) {
				t.Fatalf("decoded plan accounts %d bytes, original %d", PlanBytes(dec), PlanBytes(ws))
			}
			reenc, err := EncodePlan(dec)
			if err != nil {
				t.Fatalf("re-encoding decoded plan: %v", err)
			}
			if !bytes.Equal(reenc, enc) {
				t.Fatal("re-encoded plan is not byte-identical to the original wire form")
			}
		})
	}
}

// TestPlanDecodeRejectsCorruption: the envelope's content hash (plus the
// framing checks in front of it) must turn any damaged payload into a hard
// error — a flipped bit anywhere, truncation at any point, a wrong magic
// or version — never into a silently wrong plan.
func TestPlanDecodeRejectsCorruption(t *testing.T) {
	prog := workload.MustProgram("chess")
	ws, err := PlanWindows(context.Background(), prog, wireTestPlan())
	if err != nil {
		t.Fatalf("PlanWindows: %v", err)
	}
	enc, err := EncodePlan(ws)
	if err != nil {
		t.Fatalf("EncodePlan: %v", err)
	}
	if _, err := DecodePlan(enc); err != nil {
		t.Fatalf("pristine payload must decode: %v", err)
	}

	// Single-byte corruption, swept across the envelope: magic, version,
	// hash, and a spread of offsets through the compressed body.
	offsets := []int{0, 7, 8, 9, 24, 40, 41, 100, len(enc) / 2, len(enc) - 1}
	for _, off := range offsets {
		if off >= len(enc) {
			continue
		}
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x5a
		if _, err := DecodePlan(mut); err == nil {
			t.Errorf("flipping byte %d of %d went undetected", off, len(enc))
		}
	}

	// Truncation at every region boundary and a few interior points.
	for _, n := range []int{0, 4, 8, 9, 20, 40, 41, 41 + (len(enc)-41)/2, len(enc) - 1} {
		if n >= len(enc) {
			continue
		}
		if _, err := DecodePlan(enc[:n]); err == nil {
			t.Errorf("truncation to %d of %d bytes went undetected", n, len(enc))
		}
	}

	// Wrong magic and unsupported version are rejected by name, before any
	// inflation work.
	mut := append([]byte(nil), enc...)
	copy(mut, "notaplan")
	if _, err := DecodePlan(mut); err == nil {
		t.Error("bad magic accepted")
	}
	mut = append([]byte(nil), enc...)
	mut[8] = 99
	if _, err := DecodePlan(mut); err == nil {
		t.Error("unsupported version accepted")
	}
}

// TestPeerPlanBitIdenticalAllVariants is the exchange's differential
// contract, run over the full golden-variant set: a sweep fed by a
// peer-fetched (encode → wire → decode) plan must produce results
// bit-identical to a self-planned serial run, for every issue-queue
// organisation and PUBS mode — and the adopting store must pay zero
// functional passes of its own.
func TestPeerPlanBitIdenticalAllVariants(t *testing.T) {
	ctx := context.Background()
	plan := wireTestPlan()

	// One "planner node": plans each workload once and serves the wire
	// form, exactly like a worker answering GET /v1/cluster/plan/{key}.
	planner := NewStore()
	encoded := make(map[string][]byte)
	serve := func(prog string) []byte {
		if data, ok := encoded[prog]; ok {
			return data
		}
		ws, err := planner.Windows(ctx, workload.MustProgram(prog), plan)
		if err != nil {
			t.Fatalf("planner windows(%s): %v", prog, err)
		}
		data, err := EncodePlan(ws)
		if err != nil {
			t.Fatalf("EncodePlan(%s): %v", prog, err)
		}
		encoded[prog] = data
		return data
	}

	for _, vc := range variantCases() {
		vc := vc
		t.Run(vc.name, func(t *testing.T) {
			prog := workload.MustProgram(vc.workload)
			wire := serve(vc.workload)

			// A fresh "worker node" whose only plan source is the peer's
			// serialized plan.
			adopter := NewStore().WithPlanExchange(
				func(ctx context.Context, key string) ([]Window, bool) {
					if key != PlanKey(prog, plan) {
						t.Errorf("fetch for unexpected key %s", key)
						return nil, false
					}
					ws, err := DecodePlan(wire)
					if err != nil {
						t.Errorf("decoding served plan: %v", err)
						return nil, false
					}
					return ws, true
				}, nil)

			windows, err := adopter.Windows(ctx, prog, plan)
			if err != nil {
				t.Fatalf("adopter windows: %v", err)
			}
			got, err := RunWindows(ctx, vc.cfg, prog, plan, windows)
			if err != nil {
				t.Fatalf("RunWindows: %v", err)
			}
			want, err := Run(vc.cfg, prog, plan)
			if err != nil {
				t.Fatalf("serial reference: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("peer-planned result diverged from self-planned serial run:\n got %+v\nwant %+v", got, want)
			}
			st := adopter.Stats()
			if st.Plans != 0 || st.PeerPlans != 1 {
				t.Fatalf("adopter paid %d local passes, adopted %d plans; want 0 and 1", st.Plans, st.PeerPlans)
			}
		})
	}
}

// TestAdoptedPlanEvictionKeepsHandedOutWindows: under a byte budget far
// below one plan, a store cycling through peer-adopted plans evicts freely
// — but windows already handed to callers stay valid and keep producing
// bit-identical results, and the in-budget invariant (MRU always resident)
// holds. Eviction is a cost knob, never a correctness boundary.
func TestAdoptedPlanEvictionKeepsHandedOutWindows(t *testing.T) {
	ctx := context.Background()
	plan := wireTestPlan()
	workloads := []string{"chess", "goplay", "matmul"}

	wires := make(map[string][]byte)
	for _, wl := range workloads {
		ws, err := PlanWindows(ctx, workload.MustProgram(wl), plan)
		if err != nil {
			t.Fatalf("PlanWindows(%s): %v", wl, err)
		}
		data, err := EncodePlan(ws)
		if err != nil {
			t.Fatalf("EncodePlan(%s): %v", wl, err)
		}
		wires[PlanKey(workload.MustProgram(wl), plan)] = data
	}

	// Budget of one byte: every adopted plan exceeds it, so each new key
	// evicts the previous plan the moment it completes.
	store := NewStoreBudget(1).WithPlanExchange(
		func(ctx context.Context, key string) ([]Window, bool) {
			data, ok := wires[key]
			if !ok {
				return nil, false
			}
			ws, err := DecodePlan(data)
			if err != nil {
				return nil, false
			}
			return ws, true
		}, nil)

	held := make(map[string][]Window)
	for _, wl := range workloads {
		ws, err := store.Windows(ctx, workload.MustProgram(wl), plan)
		if err != nil {
			t.Fatalf("store windows(%s): %v", wl, err)
		}
		held[wl] = ws
		if n := store.Len(); n != 1 {
			t.Fatalf("after %s: %d resident plans, want 1 (MRU only)", wl, n)
		}
	}
	st := store.Stats()
	if st.PeerPlans != uint64(len(workloads)) || st.Plans != 0 {
		t.Fatalf("stats: %d peer plans, %d local passes; want %d and 0", st.PeerPlans, st.Plans, len(workloads))
	}
	if st.Evictions != uint64(len(workloads)-1) {
		t.Fatalf("stats: %d evictions, want %d", st.Evictions, len(workloads)-1)
	}

	// Every held plan — including the evicted ones — still drives a sweep
	// to the same result as a self-planned run.
	for _, wl := range workloads {
		prog := workload.MustProgram(wl)
		cfg := pipeline.PUBSConfig()
		got, err := RunWindows(ctx, cfg, prog, plan, held[wl])
		if err != nil {
			t.Fatalf("RunWindows(%s) on evicted plan: %v", wl, err)
		}
		want, err := Run(cfg, prog, plan)
		if err != nil {
			t.Fatalf("serial reference(%s): %v", wl, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: evicted-plan result diverged from self-planned run", wl)
		}
	}
}
