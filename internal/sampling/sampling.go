// Package sampling implements SMARTS-style sampled simulation: the
// functional emulator fast-forwards between measurement windows (tens of
// millions of instructions per second), and the detailed timing model runs
// only inside each window after a short detailed warm-up. The paper
// simulates one contiguous 100M window after a 16B skip; sampling gives the
// same kind of coverage at a fraction of the cost and is the standard way
// to extend this simulator to much longer workloads.
package sampling

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/simerr"
	"repro/internal/stats"
)

// Config describes a sampling plan.
type Config struct {
	Windows     int    // number of measurement windows
	FastForward uint64 // functionally emulated instructions between windows
	Warmup      uint64 // detailed (timed, uncounted) instructions per window
	Measure     uint64 // measured instructions per window

	// Parallel is the number of windows simulated concurrently. 0 or 1 runs
	// the serial reference path; a negative value means one worker per
	// processor (runtime.GOMAXPROCS). Window placement is purely functional
	// and shared between the serial and parallel paths, so Parallel never
	// changes the Result — only how fast it is computed. It is deliberately
	// excluded from plan keys (see Store) for the same reason.
	Parallel int

	// LiveDecode disables the predecoded window traces: the planner records
	// nothing and every window re-emulates its instruction stream through a
	// live functional machine feeding a freshly constructed timing model —
	// the pre-trace code path, kept as the benchmark baseline and an escape
	// hatch. Results are bit-identical either way; only the cost differs.
	// Unlike Parallel it IS part of the plan key: a trace-recording plan and
	// a live plan cache different window payloads.
	LiveDecode bool

	// Observe, when set, receives the wall-clock duration of each detailed
	// window run (the service exports these as a replay-latency histogram).
	// Like Parallel it cannot change results and is excluded from plan keys.
	Observe func(time.Duration)
}

// DefaultPlan samples 8 windows of 100K measured instructions, each after a
// 50K detailed warm-up, separated by 1M fast-forwarded instructions.
func DefaultPlan() Config {
	return Config{Windows: 8, FastForward: 1_000_000, Warmup: 50_000, Measure: 100_000}
}

// Validate checks the plan. Rejections wrap simerr.ErrInvalidConfig.
func (c Config) Validate() error {
	if c.Windows <= 0 {
		return fmt.Errorf("%w: sampling: need at least one window", simerr.ErrInvalidConfig)
	}
	if c.Measure == 0 {
		return fmt.Errorf("%w: sampling: measurement window must be positive", simerr.ErrInvalidConfig)
	}
	return nil
}

// WindowResult is one window's measurement.
type WindowResult struct {
	StartInst uint64 // instruction count at the start of the window's warm-up
	Result    pipeline.Result
}

// Result aggregates the windows.
type Result struct {
	Windows []WindowResult
	// Aggregate counters: total measured instructions over total cycles
	// (per-instruction weighting, the SMARTS estimator).
	Committed uint64
	Cycles    int64
}

// IPC returns the aggregate instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// BranchMPKI aggregates conditional-branch mispredictions per kilo-inst.
func (r Result) BranchMPKI() float64 {
	var m uint64
	for _, w := range r.Windows {
		m += w.Result.Mispredicts
	}
	if r.Committed == 0 {
		return 0
	}
	return float64(m) / float64(r.Committed) * 1000
}

// IPCStdev returns the per-window IPC standard deviation — the phase
// variability the sample observed.
func (r Result) IPCStdev() float64 {
	if len(r.Windows) < 2 {
		return 0
	}
	var sum float64
	for _, w := range r.Windows {
		sum += w.Result.IPC()
	}
	mean := sum / float64(len(r.Windows))
	var ss float64
	for _, w := range r.Windows {
		d := w.Result.IPC() - mean
		ss += d * d
	}
	return sqrt(ss / float64(len(r.Windows)-1))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Merged folds the per-window measurements into one pipeline.Result with
// the window counters summed — the form the experiment Runner memoizes,
// checkpoints, and serves through the service API for sampled cells. Every
// counter is a plain sum (stats.Sim.Add, cache.Stats.Add), so merging is
// order-independent and the aggregate IPC equals the SMARTS per-instruction
// estimator: total committed over total cycles. Profile-only fields
// (IQOccupancy, TopBranches) are per-window artifacts and stay unset.
func (r Result) Merged() pipeline.Result {
	var out pipeline.Result
	for i, w := range r.Windows {
		if i == 0 {
			out.Name = w.Result.Name
		}
		out.Sim.Add(w.Result.Sim)
		out.Measured += w.Result.Measured
		out.L1I.Add(w.Result.L1I)
		out.L1D.Add(w.Result.L1D)
		out.L2.Add(w.Result.L2)
	}
	return out
}

// Run executes the sampling plan: the functional emulator advances through
// the program placing windows, and each window gets a fresh machine
// (restored from the window's snapshot) and a fresh timing model (cold
// microarchitecture, mitigated by the per-window detailed warm-up).
func Run(cfg pipeline.Config, prog *isa.Program, plan Config) (Result, error) {
	return RunContext(context.Background(), cfg, prog, plan)
}

// RunContext is Run with cancellation and deadline support: the context is
// checked between windows and plumbed into each window's detailed
// simulation, so a cancelled campaign stops mid-window. On error the
// windows completed so far are returned alongside it. A progress hook
// installed with pipeline.WithProgress flows into every window: the
// reported counts are per-window (each window is a fresh timing model), so
// streaming consumers see them restart at each window boundary — and
// arrive concurrently when plan.Parallel > 1.
func RunContext(ctx context.Context, cfg pipeline.Config, prog *isa.Program, plan Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	windows, err := PlanWindows(ctx, prog, plan)
	if err != nil {
		return Result{}, err
	}
	return RunWindows(ctx, cfg, prog, plan, windows)
}

// runWindow executes one detailed window the live-decode way: a fresh
// machine restored from the window's snapshot feeding a fresh timing model.
// Windows therefore share no mutable state and can run in any order,
// concurrently.
func runWindow(ctx context.Context, cfg pipeline.Config, prog *isa.Program, plan Config, w Window) (pipeline.Result, error) {
	m, err := emu.NewFromSnapshot(prog, w.Snap)
	if err != nil {
		return pipeline.Result{}, err
	}
	sim, err := pipeline.New(cfg)
	if err != nil {
		return pipeline.Result{}, err
	}
	sim.SetStaticCode(prog.Code)
	return sim.RunContext(ctx, pipeline.Stream{M: m}, plan.Warmup, plan.Measure)
}

// windowRunner executes windows for one machine configuration. In trace
// mode (the default) it feeds the recorded predecode buffer to the
// simulator's trace front end and keeps one pooled simulator alive across
// windows (Reset between runs — bit-identical to fresh construction, but
// construction is paid once per sweep instead of once per window). In
// live-decode mode, or for windows planned without a trace, it falls back
// to the fresh-everything runWindow path. Not safe for concurrent use; the
// worker-pool paths build one runner per worker.
type windowRunner struct {
	cfg  pipeline.Config
	prog *isa.Program
	plan Config
	sd   *emu.StaticDecode
	sim  *pipeline.Sim // pooled; nil until first trace window, or always in live mode
}

func newWindowRunner(cfg pipeline.Config, prog *isa.Program, plan Config) *windowRunner {
	wr := &windowRunner{cfg: cfg, prog: prog, plan: plan}
	if !plan.LiveDecode {
		wr.sd = emu.NewStaticDecode(prog.Code)
	}
	return wr
}

func (wr *windowRunner) run(ctx context.Context, w Window) (pipeline.Result, error) {
	if wr.plan.Observe == nil {
		return wr.runWindow(ctx, w)
	}
	t0 := time.Now()
	res, err := wr.runWindow(ctx, w)
	wr.plan.Observe(time.Since(t0))
	return res, err
}

func (wr *windowRunner) runWindow(ctx context.Context, w Window) (pipeline.Result, error) {
	if wr.plan.LiveDecode || w.Pre == nil {
		return runWindow(ctx, wr.cfg, wr.prog, wr.plan, w)
	}
	sim := wr.sim
	if sim == nil {
		var err error
		sim, err = pipeline.New(wr.cfg)
		if err != nil {
			return pipeline.Result{}, err
		}
		if !wr.cfg.Profile {
			// Profile runs return live pointers to the simulator's occupancy
			// histogram and branch profile; pooling would alias them across
			// window results, so profiled windows keep a fresh Sim each.
			wr.sim = sim
		}
	} else {
		sim.Reset()
	}
	sim.SetStaticCode(wr.prog.Code)
	pre, snap := w.Pre, w.Snap
	rp := &pipeline.Replay{
		Pre:    pre,
		Decode: wr.sd,
		Fallback: func() (pipeline.InstStream, error) {
			// Fetch overran the recorded slack (pathologically deep
			// front end): continue on a live machine positioned at the
			// first unrecorded instruction.
			m, err := emu.NewFromSnapshot(wr.prog, snap)
			if err != nil {
				return nil, err
			}
			m.Run(uint64(pre.Len()))
			return pipeline.Stream{M: m}, nil
		},
	}
	return sim.RunContext(ctx, rp, wr.plan.Warmup, wr.plan.Measure)
}

// RunWindows executes pre-placed windows (from PlanWindows or a shared
// Store) against one machine configuration and merges the per-window
// accumulators in window order. With plan.Parallel > 1 the windows run on
// a worker pool; because placement is fixed up front and the merge only
// sums counters indexed by window, the Result is bit-identical to the
// serial path regardless of completion order.
func RunWindows(ctx context.Context, cfg pipeline.Config, prog *isa.Program, plan Config, windows []Window) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	if len(windows) == 0 {
		return Result{}, fmt.Errorf("sampling: program ended before any window completed")
	}

	results := make([]pipeline.Result, len(windows))
	errs := make([]error, len(windows))
	if workers := plan.workers(len(windows)); workers <= 1 {
		wr := newWindowRunner(cfg, prog, plan)
		for i, w := range windows {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				break
			}
			results[i], errs[i] = wr.run(ctx, w)
			if errs[i] != nil {
				break
			}
			if results[i].Committed == 0 {
				break // program ended inside this window; later ones are unreachable
			}
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for k := 0; k < workers; k++ {
			go func() {
				defer wg.Done()
				wr := newWindowRunner(cfg, prog, plan)
				for i := range jobs {
					if err := ctx.Err(); err != nil {
						errs[i] = err
						continue
					}
					results[i], errs[i] = wr.run(ctx, windows[i])
				}
			}()
		}
		for i := range windows {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	return mergeWindows(windows, results, errs)
}

// mergeWindows folds per-window results in window order with the serial
// path's truncation semantics: the first failed window returns the
// completed prefix alongside the error, and the first empty window (the
// program ended inside it) ends the plan. Shared by RunWindows and
// RunSweep so the two schedulers cannot drift.
func mergeWindows(windows []Window, results []pipeline.Result, errs []error) (Result, error) {
	var out Result
	for i, w := range windows {
		if errs[i] != nil {
			return out, fmt.Errorf("sampling: window %d: %w", w.Index, errs[i])
		}
		if results[i].Committed == 0 {
			break
		}
		out.Windows = append(out.Windows, WindowResult{StartInst: w.StartInst, Result: results[i]})
		out.Committed += results[i].Committed
		out.Cycles += results[i].Cycles
	}
	if len(out.Windows) == 0 {
		return Result{}, fmt.Errorf("sampling: program ended before any window completed")
	}
	return out, nil
}

// RunSweep executes pre-placed windows window-major across several machine
// configurations: the scheduler walks the windows in order and, for each
// one, replays every machine variant over the shared immutable window
// payload (snapshot + predecode buffer) before moving on — so a window's
// trace is touched while it is hot instead of once per machine at arbitrary
// times. Machines run concurrently on plan.workers(len(cfgs)) workers, and
// each machine keeps one persistent simulator across all windows. The
// returned slices are indexed like cfgs; each entry is bit-identical to
// calling RunWindows with that configuration alone.
func RunSweep(ctx context.Context, cfgs []pipeline.Config, prog *isa.Program, plan Config, windows []Window) ([]Result, []error) {
	n := len(cfgs)
	outs := make([]Result, n)
	errsOut := make([]error, n)
	if n == 0 {
		return outs, errsOut
	}
	fail := func(err error) ([]Result, []error) {
		for i := range errsOut {
			errsOut[i] = err
		}
		return outs, errsOut
	}
	if err := plan.Validate(); err != nil {
		return fail(err)
	}
	if len(windows) == 0 {
		return fail(fmt.Errorf("sampling: program ended before any window completed"))
	}
	if ctx == nil {
		ctx = context.Background()
	}

	runners := make([]*windowRunner, n)
	results := make([][]pipeline.Result, n)
	errs := make([][]error, n)
	for i, cfg := range cfgs {
		runners[i] = newWindowRunner(cfg, prog, plan)
		results[i] = make([]pipeline.Result, len(windows))
		errs[i] = make([]error, len(windows))
	}
	// stopped marks machines whose plan already truncated (error or empty
	// window): later windows cannot contribute to their merged result.
	stopped := make([]bool, n)

	runOne := func(mi, wi int) {
		if err := ctx.Err(); err != nil {
			errs[mi][wi] = err
			stopped[mi] = true
			return
		}
		results[mi][wi], errs[mi][wi] = runners[mi].run(ctx, windows[wi])
		if errs[mi][wi] != nil || results[mi][wi].Committed == 0 {
			stopped[mi] = true
		}
	}

	workers := plan.workers(n)
	for wi := range windows {
		if workers <= 1 {
			for mi := 0; mi < n; mi++ {
				if !stopped[mi] {
					runOne(mi, wi)
				}
			}
			continue
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for k := 0; k < workers; k++ {
			go func() {
				defer wg.Done()
				for mi := range jobs {
					runOne(mi, wi)
				}
			}()
		}
		for mi := 0; mi < n; mi++ {
			if !stopped[mi] {
				jobs <- mi
			}
		}
		close(jobs)
		wg.Wait() // window barrier: the next window starts only when all machines finish this one
	}

	for mi := range cfgs {
		outs[mi], errsOut[mi] = mergeWindows(windows, results[mi], errs[mi])
	}
	return outs, errsOut
}

// workers resolves plan.Parallel against the window count.
func (c Config) workers(windows int) int {
	w := c.Parallel
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > windows {
		w = windows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Table renders the per-window and aggregate results.
func (r Result) Table() string {
	t := stats.NewTable("Sampled simulation", "window", "start-inst", "IPC", "brMPKI")
	for i, w := range r.Windows {
		t.Row(i, w.StartInst, w.Result.IPC(), w.Result.BranchMPKI())
	}
	return t.String() + fmt.Sprintf("aggregate IPC %.4f (per-window stdev %.4f) over %d instructions\n",
		r.IPC(), r.IPCStdev(), r.Committed)
}
