// Package sampling implements SMARTS-style sampled simulation: the
// functional emulator fast-forwards between measurement windows (tens of
// millions of instructions per second), and the detailed timing model runs
// only inside each window after a short detailed warm-up. The paper
// simulates one contiguous 100M window after a 16B skip; sampling gives the
// same kind of coverage at a fraction of the cost and is the standard way
// to extend this simulator to much longer workloads.
package sampling

import (
	"context"
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/simerr"
	"repro/internal/stats"
)

// Config describes a sampling plan.
type Config struct {
	Windows     int    // number of measurement windows
	FastForward uint64 // functionally emulated instructions between windows
	Warmup      uint64 // detailed (timed, uncounted) instructions per window
	Measure     uint64 // measured instructions per window
}

// DefaultPlan samples 8 windows of 100K measured instructions, each after a
// 50K detailed warm-up, separated by 1M fast-forwarded instructions.
func DefaultPlan() Config {
	return Config{Windows: 8, FastForward: 1_000_000, Warmup: 50_000, Measure: 100_000}
}

// Validate checks the plan. Rejections wrap simerr.ErrInvalidConfig.
func (c Config) Validate() error {
	if c.Windows <= 0 {
		return fmt.Errorf("%w: sampling: need at least one window", simerr.ErrInvalidConfig)
	}
	if c.Measure == 0 {
		return fmt.Errorf("%w: sampling: measurement window must be positive", simerr.ErrInvalidConfig)
	}
	return nil
}

// WindowResult is one window's measurement.
type WindowResult struct {
	StartInst uint64 // instruction count at the start of the window's warm-up
	Result    pipeline.Result
}

// Result aggregates the windows.
type Result struct {
	Windows []WindowResult
	// Aggregate counters: total measured instructions over total cycles
	// (per-instruction weighting, the SMARTS estimator).
	Committed uint64
	Cycles    int64
}

// IPC returns the aggregate instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// BranchMPKI aggregates conditional-branch mispredictions per kilo-inst.
func (r Result) BranchMPKI() float64 {
	var m uint64
	for _, w := range r.Windows {
		m += w.Result.Mispredicts
	}
	if r.Committed == 0 {
		return 0
	}
	return float64(m) / float64(r.Committed) * 1000
}

// IPCStdev returns the per-window IPC standard deviation — the phase
// variability the sample observed.
func (r Result) IPCStdev() float64 {
	if len(r.Windows) < 2 {
		return 0
	}
	var sum float64
	for _, w := range r.Windows {
		sum += w.Result.IPC()
	}
	mean := sum / float64(len(r.Windows))
	var ss float64
	for _, w := range r.Windows {
		d := w.Result.IPC() - mean
		ss += d * d
	}
	return sqrt(ss / float64(len(r.Windows)-1))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Run executes the sampling plan: one emulator advances through the
// program; each window gets a fresh timing model (cold microarchitecture,
// mitigated by the per-window detailed warm-up).
func Run(cfg pipeline.Config, prog *isa.Program, plan Config) (Result, error) {
	return RunContext(context.Background(), cfg, prog, plan)
}

// RunContext is Run with cancellation and deadline support: the context is
// checked between windows and plumbed into each window's detailed
// simulation, so a cancelled campaign stops mid-window. On error the
// windows completed so far are returned alongside it. A progress hook
// installed with pipeline.WithProgress flows into every window: the
// reported counts are per-window (each window is a fresh timing model), so
// streaming consumers see them restart at each window boundary.
func RunContext(ctx context.Context, cfg pipeline.Config, prog *isa.Program, plan Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	m, err := emu.New(prog)
	if err != nil {
		return Result{}, err
	}
	var out Result
	for w := 0; w < plan.Windows; w++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("sampling: window %d: %w", w, err)
		}
		if plan.FastForward > 0 {
			if ran := m.Run(plan.FastForward); ran < plan.FastForward {
				break // program halted during fast-forward
			}
		}
		sim, err := pipeline.New(cfg)
		if err != nil {
			return out, err
		}
		start := m.Seq()
		res, err := sim.RunContext(ctx, pipeline.Stream{M: m}, plan.Warmup, plan.Measure)
		if err != nil {
			return out, fmt.Errorf("sampling: window %d: %w", w, err)
		}
		if res.Committed == 0 {
			break // program ended inside the window
		}
		out.Windows = append(out.Windows, WindowResult{StartInst: start, Result: res})
		out.Committed += res.Committed
		out.Cycles += res.Cycles
	}
	if len(out.Windows) == 0 {
		return Result{}, fmt.Errorf("sampling: program ended before any window completed")
	}
	return out, nil
}

// Table renders the per-window and aggregate results.
func (r Result) Table() string {
	t := stats.NewTable("Sampled simulation", "window", "start-inst", "IPC", "brMPKI")
	for i, w := range r.Windows {
		t.Row(i, w.StartInst, w.Result.IPC(), w.Result.BranchMPKI())
	}
	return t.String() + fmt.Sprintf("aggregate IPC %.4f (per-window stdev %.4f) over %d instructions\n",
		r.IPC(), r.IPCStdev(), r.Committed)
}
