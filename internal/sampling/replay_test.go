package sampling

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestTraceBitIdenticalToLiveDecode: for every machine variant, a sampled
// run over predecoded traces (the default) must equal a LiveDecode run bit
// for bit — serially and on the parallel window pool.
func TestTraceBitIdenticalToLiveDecode(t *testing.T) {
	for _, vc := range variantCases() {
		t.Run(vc.name, func(t *testing.T) {
			prog := workload.MustProgram(vc.workload)
			live := Config{Windows: 3, FastForward: 30_000, Warmup: 5_000, Measure: 10_000, LiveDecode: true}
			trace := live
			trace.LiveDecode = false

			want, err := Run(vc.cfg, prog, live)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(vc.cfg, prog, trace)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trace replay diverged from live decode:\n got %+v\nwant %+v", got, want)
			}

			par := trace
			par.Parallel = 4
			gotPar, err := Run(vc.cfg, prog, par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotPar, want) {
				t.Fatal("parallel trace replay diverged from live decode")
			}
		})
	}
}

// TestRunSweepBitIdenticalToRunWindows: the window-major sweep scheduler
// must produce, per machine, exactly what RunWindows produces for that
// machine alone — serially and with a worker pool.
func TestRunSweepBitIdenticalToRunWindows(t *testing.T) {
	prog := workload.MustProgram("parser")
	plan := Config{Windows: 3, FastForward: 30_000, Warmup: 5_000, Measure: 10_000}
	store := NewStore()
	ctx := context.Background()
	windows, err := store.Windows(ctx, prog, plan)
	if err != nil {
		t.Fatal(err)
	}

	age := pipeline.PUBSConfig()
	age.Name = "pubs+age"
	age.AgeMatrix = true
	prof := pipeline.PUBSConfig()
	prof.Name = "pubs-profile"
	prof.Profile = true
	cfgs := []pipeline.Config{pipeline.BaseConfig(), pipeline.PUBSConfig(), age, prof}

	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		if want[i], err = RunWindows(ctx, cfg, prog, plan, windows); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{0, 3} {
		p := plan
		p.Parallel = workers
		got, errs := RunSweep(ctx, cfgs, prog, p, windows)
		for i := range cfgs {
			if errs[i] != nil {
				t.Fatalf("workers=%d %s: %v", workers, cfgs[i].Name, errs[i])
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d %s: sweep result diverged from RunWindows", workers, cfgs[i].Name)
			}
		}
	}
}

// TestRunSweepHaltingProgram: a program that ends mid-plan must truncate
// each machine's sweep result exactly as RunWindows would.
func TestRunSweepHaltingProgram(t *testing.T) {
	b := asm.New("short")
	r2 := isa.R(2)
	b.Li(r2, 100_000)
	b.Label("loop")
	b.Addi(r2, r2, -1)
	b.Bne(r2, isa.RZero, "loop")
	b.Halt()
	prog := b.MustBuild()

	plan := Config{Windows: 10, FastForward: 20_000, Warmup: 5_000, Measure: 30_000, Parallel: 2}
	ctx := context.Background()
	windows, err := PlanWindows(ctx, prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []pipeline.Config{pipeline.BaseConfig(), pipeline.PUBSConfig()}
	got, errs := RunSweep(ctx, cfgs, prog, plan, windows)
	for i, cfg := range cfgs {
		want, werr := RunWindows(ctx, cfg, prog, plan, windows)
		if (errs[i] == nil) != (werr == nil) {
			t.Fatalf("%s: sweep err %v, RunWindows err %v", cfg.Name, errs[i], werr)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("%s: truncated sweep diverged from RunWindows", cfg.Name)
		}
		if len(got[i].Windows) == 0 || len(got[i].Windows) >= 10 {
			t.Errorf("%s: windows = %d, want a partial plan", cfg.Name, len(got[i].Windows))
		}
	}
}

// TestObserveCountsWindows: the Observe hook fires once per detailed window
// with a positive duration, and cannot change the result.
func TestObserveCountsWindows(t *testing.T) {
	prog := workload.MustProgram("parser")
	plan := Config{Windows: 3, FastForward: 30_000, Warmup: 5_000, Measure: 10_000}
	want, err := Run(pipeline.BaseConfig(), prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []time.Duration
	plan.Observe = func(d time.Duration) {
		mu.Lock()
		seen = append(seen, d)
		mu.Unlock()
	}
	got, err := Run(pipeline.BaseConfig(), prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	got2 := got
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("Observe changed the result")
	}
	if len(seen) != len(got.Windows) {
		t.Fatalf("observed %d windows, want %d", len(seen), len(got.Windows))
	}
	for _, d := range seen {
		if d <= 0 {
			t.Fatalf("non-positive window duration %v", d)
		}
	}
}

// TestStoreBudgetEviction: a bounded store stays within its byte budget by
// dropping plans in LRU order, a hit refreshes recency, evicted plans are
// replanned on the next request, and windows handed out before an eviction
// stay fully usable.
func TestStoreBudgetEviction(t *testing.T) {
	ctx := context.Background()
	plan := Config{Windows: 2, FastForward: 10_000, Warmup: 1_000, Measure: 2_000}
	progs := []*isa.Program{
		workload.MustProgram("chess"),
		workload.MustProgram("parser"),
		workload.MustProgram("goplay"),
	}

	// Size the budget to hold exactly the first two plans.
	sizer := NewStore()
	var sizes []int64
	for _, p := range progs {
		ws, err := sizer.Windows(ctx, p, plan)
		if err != nil {
			t.Fatal(err)
		}
		if b := windowsBytes(ws); b > 0 {
			sizes = append(sizes, b)
		} else {
			t.Fatal("plan accounted zero bytes")
		}
	}
	if st := sizer.Stats(); st.Evictions != 0 || st.ResidentPlans != 3 {
		t.Fatalf("unbounded store evicted: %+v", st)
	}

	// Room for A plus whichever of B, C is larger: admitting C forces out
	// exactly one plan.
	budget := sizes[0] + sizes[1]
	if sizes[2] > sizes[1] {
		budget = sizes[0] + sizes[2]
	}
	s := NewStoreBudget(budget)
	wA, err := s.Windows(ctx, progs[0], plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Windows(ctx, progs[1], plan); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 0 || st.ResidentBytes != sizes[0]+sizes[1] {
		t.Fatalf("two plans within budget evicted: %+v", st)
	}

	// Touch A so B becomes the LRU victim when C arrives.
	if _, err := s.Windows(ctx, progs[0], plan); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Windows(ctx, progs[2], plan); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("over-budget store never evicted")
	}
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.ResidentBytes, budget)
	}

	// A was touched, so it must still be a hit; B was evicted and replans.
	plansBefore := s.Stats().Plans
	if _, err := s.Windows(ctx, progs[0], plan); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Plans; got != plansBefore {
		t.Fatalf("recently-used plan was evicted (plans %d -> %d)", plansBefore, got)
	}
	if _, err := s.Windows(ctx, progs[1], plan); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Plans; got != plansBefore+1 {
		t.Fatalf("evicted plan not replanned (plans %d -> %d)", plansBefore, got)
	}

	// Windows handed out before the churn are immutable and still runnable.
	res, err := RunWindows(ctx, pipeline.BaseConfig(), progs[0], plan, wA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("evicted plan's windows no longer runnable")
	}
}

// TestStoreBudgetKeepsMRU: a single plan larger than the budget stays
// resident — the working set of one cannot thrash itself out of the cache.
func TestStoreBudgetKeepsMRU(t *testing.T) {
	ctx := context.Background()
	plan := Config{Windows: 2, FastForward: 10_000, Warmup: 1_000, Measure: 2_000}
	s := NewStoreBudget(1)
	if _, err := s.Windows(ctx, workload.MustProgram("chess"), plan); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ResidentPlans != 1 || st.Evictions != 0 {
		t.Fatalf("over-budget sole plan not kept: %+v", st)
	}
	if _, err := s.Windows(ctx, workload.MustProgram("chess"), plan); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Hits != 1 {
		t.Fatalf("sole resident plan missed: %+v", got)
	}
}

// TestStoreEvictionInFlightSafe: eviction churn from other keys must never
// break an in-flight singleflight plan — every caller blocked on it still
// gets the one shared computation.
func TestStoreEvictionInFlightSafe(t *testing.T) {
	ctx := context.Background()
	s := NewStoreBudget(1) // evict everything but the MRU, constantly
	slow := Config{Windows: 2, FastForward: 1_000_000, Warmup: 1_000, Measure: 2_000}
	churn := Config{Windows: 1, FastForward: 5_000, Warmup: 500, Measure: 1_000}

	const callers = 4
	var started, wg sync.WaitGroup
	outs := make([][]Window, callers)
	started.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			w, err := s.Windows(ctx, workload.MustProgram("chess"), slow)
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = w
		}(i)
	}
	started.Wait()

	// While the slow plan is in flight, plan many other keys against a
	// 1-byte budget: each one evicts its predecessor.
	const churnN = 8
	for k := 0; k < churnN; k++ {
		p := churn
		p.FastForward += uint64(k) // distinct geometry, distinct key
		if _, err := s.Windows(ctx, workload.MustProgram("parser"), p); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	st := s.Stats()
	if st.Plans != 1+churnN {
		t.Fatalf("plans = %d, want %d (in-flight plan recomputed or lost)", st.Plans, 1+churnN)
	}
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
	for i := range outs {
		if len(outs[i]) == 0 {
			t.Fatalf("caller %d got no windows", i)
		}
		// Pointer equality proves every caller shared one computation.
		if outs[i][0].Snap != outs[0][0].Snap || outs[i][0].Pre != outs[0][0].Pre {
			t.Fatalf("caller %d got a different computation", i)
		}
	}
}

// propRNG is a xorshift64* generator for the property test (math/rand is
// deliberately not used anywhere in the repo).
type propRNG uint64

func (r *propRNG) next() uint64 {
	x := *r
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = x
	return uint64(x) * 0x2545F4914F6CDD1D
}

// randomProgram builds a deterministic pseudo-random workload: straight-line
// ALU chains, data-dependent loads and stores into a scrambled data image,
// data-dependent forward branches, all inside one bounded outer loop so the
// program always halts.
func randomProgram(seed uint64) *isa.Program {
	rng := propRNG(seed)
	b := asm.New(fmt.Sprintf("prop-%d", seed))
	const words = 256
	vals := make([]uint64, words)
	for i := range vals {
		vals[i] = rng.next()
	}
	base := b.Words(vals...)

	ctr, dbase := isa.R(2), isa.R(3)
	scratch := []isa.Reg{isa.R(4), isa.R(5), isa.R(6), isa.R(7), isa.R(8), isa.R(9), isa.R(10), isa.R(11)}
	addr, tmp := isa.R(12), isa.R(13)

	for i, r := range scratch {
		b.Li(r, int64(rng.next()>>(8+i)))
	}
	b.Li(ctr, int64(1200+rng.next()%1200))
	b.Li(dbase, int64(base))
	b.Label("outer")
	labels := 0
	pick := func() isa.Reg { return scratch[rng.next()%uint64(len(scratch))] }
	for blk := 0; blk < 4+int(rng.next()%4); blk++ {
		for k := 0; k < 3+int(rng.next()%5); k++ {
			rd, rs1, rs2 := pick(), pick(), pick()
			switch rng.next() % 6 {
			case 0:
				b.Add(rd, rs1, rs2)
			case 1:
				b.Sub(rd, rs1, rs2)
			case 2:
				b.Xor(rd, rs1, rs2)
			case 3:
				b.And(rd, rs1, rs2)
			case 4:
				b.Or(rd, rs1, rs2)
			default:
				b.Mul(rd, rs1, rs2)
			}
		}
		// Data-dependent load, sometimes a store back to the same slot.
		src := pick()
		b.Andi(addr, src, words-1)
		b.Shli(addr, addr, 3)
		b.Add(addr, addr, dbase)
		b.Ld(tmp, addr, 0)
		b.Xor(pick(), pick(), tmp)
		if rng.next()%2 == 0 {
			b.St(pick(), addr, 0)
		}
		// Data-dependent forward branch over a short run of instructions.
		lbl := fmt.Sprintf("skip%d", labels)
		labels++
		b.Andi(tmp, pick(), 1)
		b.Bne(tmp, isa.RZero, lbl)
		b.Add(pick(), pick(), tmp)
		b.Sub(pick(), pick(), tmp)
		b.Label(lbl)
	}
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

// TestReplayPropertyRandomPrograms: for pseudo-random programs, (a) the
// predecode buffer reconstructs the live retired-instruction stream exactly
// — same PCs, branch outcomes, and memory addresses — and (b) sampled runs
// over the recorded traces are bit-identical to live decode, serially and
// in parallel. Runs under -race in CI.
func TestReplayPropertyRandomPrograms(t *testing.T) {
	seeds := []uint64{1, 0xDEAD, 0xFEEDFACE}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			prog := randomProgram(seed)

			// (a) Stream identity: record and replay the first stretch.
			const n = 20_000
			rec := emu.MustNew(prog)
			pre := emu.NewPredecode(n)
			for i := 0; i < n; i++ {
				di, ok := rec.Step()
				if !ok {
					break
				}
				pre.Append(di)
			}
			sd := emu.NewStaticDecode(prog.Code)
			live := emu.MustNew(prog)
			for i := 0; i < pre.Len(); i++ {
				want, ok := live.Step()
				if !ok {
					t.Fatalf("live stream ended at %d of %d", i, pre.Len())
				}
				var got emu.DynInst
				pre.Fill(i, sd, &got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("record %d diverged:\n got %+v\nwant %+v", i, got, want)
				}
			}

			// (b) Sampled-run identity across decode modes.
			plan := Config{Windows: 3, FastForward: 15_000, Warmup: 2_000, Measure: 5_000}
			for _, cfg := range []pipeline.Config{pipeline.BaseConfig(), pipeline.PUBSConfig()} {
				livePlan := plan
				livePlan.LiveDecode = true
				want, err := Run(cfg, prog, livePlan)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(cfg, prog, plan)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: trace replay diverged from live decode", cfg.Name)
				}
				par := plan
				par.Parallel = 3
				gotPar, err := Run(cfg, prog, par)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotPar, want) {
					t.Fatalf("%s: parallel trace replay diverged", cfg.Name)
				}
			}
		})
	}
}
