package sampling

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Plan wire format — the payload of the cluster's plan-exchange endpoints
// (GET/POST /v1/cluster/plan/{key}). A plan travels as:
//
//	magic   "pubsplan"                                    8 bytes
//	version u8 (currently 1)                              1 byte
//	sum     SHA-256 of the uncompressed window payload   32 bytes
//	body    flate-compressed window payload               rest
//
// The window payload is, little-endian:
//
//	u64 window count, then per window:
//	  u64 Index
//	  u64 StartInst
//	  u8  hasSnap (always 1 today), snapshot wire bytes (emu.DecodeSnapshot)
//	  u8  hasPre, predecode wire bytes when 1 (emu.DecodePredecode)
//
// The hash is over the *uncompressed* payload, so DecodePlan verifies the
// exact bytes it is about to materialize into snapshots and traces —
// a flipped bit anywhere in transit or at rest is a hard error, never a
// silently wrong simulation. The plan key itself (PlanKey) addresses the
// content the plan was computed *from*; the envelope hash protects the
// content the plan *is*.

const (
	planMagic   = "pubsplan"
	planVersion = 1

	// maxPlanPayloadBytes caps what DecodePlan will inflate — a fuse
	// against corrupt or hostile length fields, far above any real plan
	// (a window is dirty pages plus ~17 B per detailed instruction).
	maxPlanPayloadBytes = 1 << 30
)

// PlanKey exposes the store's content address for a (program, plan
// geometry) pair — the key serialized plans are exchanged under.
func PlanKey(prog *isa.Program, plan Config) string {
	return planKey(prog, plan)
}

// PlanBytes returns the resident footprint of a plan's windows — the
// accounting unit byte budgets use for both live and adopted plans.
func PlanBytes(ws []Window) int64 {
	return windowsBytes(ws)
}

// EncodePlan serializes placed windows into the flate-compressed,
// content-hash-sealed wire format.
func EncodePlan(ws []Window) ([]byte, error) {
	size := 8
	for _, w := range ws {
		size += 8 + 8 + 1 + 1
		if w.Snap != nil {
			size += w.Snap.WireBytes()
		}
		if w.Pre != nil {
			size += w.Pre.WireBytes()
		}
	}
	payload := make([]byte, 0, size)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(ws)))
	for i, w := range ws {
		if w.Snap == nil {
			return nil, fmt.Errorf("sampling: window %d has no snapshot; plan is not serializable", i)
		}
		payload = binary.LittleEndian.AppendUint64(payload, uint64(w.Index))
		payload = binary.LittleEndian.AppendUint64(payload, w.StartInst)
		payload = append(payload, 1)
		payload = w.Snap.AppendBinary(payload)
		if w.Pre != nil {
			payload = append(payload, 1)
			payload = w.Pre.AppendBinary(payload)
		} else {
			payload = append(payload, 0)
		}
	}
	sum := sha256.Sum256(payload)

	var buf bytes.Buffer
	buf.Grow(len(payload)/4 + 64)
	buf.WriteString(planMagic)
	buf.WriteByte(planVersion)
	buf.Write(sum[:])
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("sampling: plan compressor: %w", err)
	}
	if _, err := zw.Write(payload); err != nil {
		return nil, fmt.Errorf("sampling: compressing plan: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("sampling: compressing plan: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePlan inflates and verifies a serialized plan. Any mismatch —
// truncation, bit corruption, a tampered length field — fails before a
// single window is handed out.
func DecodePlan(data []byte) ([]Window, error) {
	const header = len(planMagic) + 1 + sha256.Size
	if len(data) < header {
		return nil, fmt.Errorf("sampling: plan payload too short (%d bytes)", len(data))
	}
	if string(data[:len(planMagic)]) != planMagic {
		return nil, errors.New("sampling: not a serialized plan (bad magic)")
	}
	if v := data[len(planMagic)]; v != planVersion {
		return nil, fmt.Errorf("sampling: unsupported plan version %d", v)
	}
	var sum [sha256.Size]byte
	copy(sum[:], data[len(planMagic)+1:header])

	zr := flate.NewReader(bytes.NewReader(data[header:]))
	defer zr.Close()
	payload, err := io.ReadAll(io.LimitReader(zr, maxPlanPayloadBytes+1))
	if err != nil {
		return nil, fmt.Errorf("sampling: inflating plan: %w", err)
	}
	if len(payload) > maxPlanPayloadBytes {
		return nil, fmt.Errorf("sampling: plan payload exceeds %d bytes", maxPlanPayloadBytes)
	}
	if sha256.Sum256(payload) != sum {
		return nil, errors.New("sampling: plan content hash mismatch")
	}

	if len(payload) < 8 {
		return nil, errors.New("sampling: truncated plan payload")
	}
	n := binary.LittleEndian.Uint64(payload)
	payload = payload[8:]
	// A window's fixed framing alone is 18 bytes; reject counts the
	// remaining payload cannot possibly hold.
	if n > uint64(len(payload))/18 {
		return nil, fmt.Errorf("sampling: plan window count %d exceeds payload", n)
	}
	ws := make([]Window, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(payload) < 18 {
			return nil, fmt.Errorf("sampling: truncated plan window %d", i)
		}
		w := Window{
			Index:     int(binary.LittleEndian.Uint64(payload)),
			StartInst: binary.LittleEndian.Uint64(payload[8:]),
		}
		hasSnap := payload[16]
		payload = payload[17:]
		if hasSnap == 0 {
			return nil, fmt.Errorf("sampling: plan window %d has no snapshot", i)
		}
		snap, rest, err := emu.DecodeSnapshot(payload)
		if err != nil {
			return nil, fmt.Errorf("sampling: plan window %d: %w", i, err)
		}
		w.Snap, payload = snap, rest
		if len(payload) < 1 {
			return nil, fmt.Errorf("sampling: truncated plan window %d", i)
		}
		hasPre := payload[0]
		payload = payload[1:]
		if hasPre != 0 {
			pre, rest, err := emu.DecodePredecode(payload)
			if err != nil {
				return nil, fmt.Errorf("sampling: plan window %d: %w", i, err)
			}
			w.Pre, payload = pre, rest
		}
		ws = append(ws, w)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("sampling: %d trailing bytes after plan windows", len(payload))
	}
	return ws, nil
}
