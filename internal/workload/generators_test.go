package workload

import (
	"testing"

	"repro/internal/emu"
)

// TestRebuildDeterminism verifies every generator is a pure function of
// its fixed seed: building a benchmark twice (bypassing the program cache)
// yields programs whose dynamic streams are step-for-step identical. This
// is the property the content-addressed result cache rests on — if a
// generator consulted time, map order, or a shared RNG, identical cache
// keys would name different programs.
func TestRebuildDeterminism(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p1, p2 := w.Build(), w.Build()
			if len(p1.Code) != len(p2.Code) {
				t.Fatalf("code length differs: %d vs %d", len(p1.Code), len(p2.Code))
			}
			m1, m2 := emu.MustNew(p1), emu.MustNew(p2)
			const n = 20_000
			for i := 0; i < n; i++ {
				a, ok1 := m1.Step()
				b, ok2 := m2.Step()
				if ok1 != ok2 || a != b {
					t.Fatalf("rebuilt streams diverge at step %d: %+v vs %+v", i, a, b)
				}
			}
		})
	}
}

// TestBranchMixBounds pins each generator's branch mix inside sanity
// bands, so a future edit can't silently turn a benchmark degenerate
// (all-taken loops look easy to any predictor; a branch-free program gives
// PUBS nothing to prioritize). Bounds are deliberately loose around the
// measured suite (branch fractions 1.8%–21.6%; D-BP taken rates 13%–87%).
func TestBranchMixBounds(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m := emu.MustNew(MustProgram(w.Name))
			var branches, taken uint64
			const n = 100_000
			for i := 0; i < n; i++ {
				di, ok := m.Step()
				if !ok {
					t.Fatalf("halted after %d instructions", i)
				}
				if di.Inst.IsCondBranch() {
					branches++
					if di.Taken {
						taken++
					}
				}
			}
			frac := float64(branches) / n
			if frac < 0.015 || frac > 0.30 {
				t.Errorf("branch fraction %.1f%% outside [1.5%%, 30%%]", frac*100)
			}
			if w.HardBranches {
				// D-BP programs need genuinely mixed outcomes: a strongly
				// biased branch is predictable regardless of slice tracking.
				tr := float64(taken) / float64(branches)
				if tr < 0.08 || tr > 0.92 {
					t.Errorf("D-BP taken rate %.1f%% outside [8%%, 92%%]", tr*100)
				}
			}
		})
	}
}

// TestRNGDeterminism pins the xorshift64* data-image generator: fixed
// seeds give fixed sequences, and the zero seed is remapped (xorshift
// sticks at zero otherwise).
func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.next(), b.next(); x != y {
			t.Fatalf("same-seed sequences diverge at %d: %d vs %d", i, x, y)
		}
	}
	if newRNG(1).next() == newRNG(2).next() {
		t.Error("different seeds produced the same first word")
	}
	z := newRNG(0)
	if z.next() == 0 && z.next() == 0 {
		t.Error("zero seed not remapped; generator is stuck")
	}
	w := newRNG(7).words(64)
	if len(w) != 64 {
		t.Fatalf("words(64) returned %d", len(w))
	}
	seen := map[uint64]bool{}
	for _, x := range w {
		if seen[x] {
			t.Fatal("xorshift64* repeated a word within 64 draws")
		}
		seen[x] = true
	}
}
