package workload

// The six easy-branch (E-BP) benchmarks: control programs whose branches
// the perceptron predicts nearly perfectly. The paper uses E-BP programs to
// show PUBS causes no regression ("GM easy" in Fig. 8); two of them are
// streaming memory-bound kernels that exercise the prefetcher and the mode
// switch.

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

func init() {
	register(Info{Name: "matmul", Analogue: "calculix/namd", Build: buildMatmul})
	register(Info{Name: "stencil", Analogue: "lbm", MemIntensive: true, Build: buildStencil})
	register(Info{Name: "quantsim", Analogue: "libquantum", MemIntensive: true, Build: buildQuantsim})
	register(Info{Name: "hashmix", Analogue: "hmmer", Build: buildHashmix})
	register(Info{Name: "crypto", Analogue: "(ARX kernel)", Build: buildCrypto})
	register(Info{Name: "fft", Analogue: "(FP butterfly kernel)", Build: buildFFT})
}

// buildMatmul is a 128×128 dense FP matrix multiply (three 128 KB
// matrices, L2-resident). All branches are long fixed-trip loops.
func buildMatmul() *isa.Program {
	b := asm.New("matmul")
	r := newRNG(0x3A73)
	const n = 128
	mkMat := func() []float64 {
		m := make([]float64, n*n)
		for i := range m {
			m[i] = float64(r.next()%1000) / 250.0
		}
		return m
	}
	aBase := b.Floats(mkMat()...)
	bBase := b.Floats(mkMat()...)
	cBase := b.Alloc(n * n * 8)

	ra, rb, rc := isa.R(2), isa.R(3), isa.R(4)
	i, j, k, nn, t0, t1 := isa.R(5), isa.R(6), isa.R(7), isa.R(8), isa.R(9), isa.R(10)
	fa, fb, facc := isa.F(1), isa.F(2), isa.F(3)

	b.Li(ra, int64(aBase))
	b.Li(rb, int64(bBase))
	b.Li(rc, int64(cBase))
	b.Li(nn, n)

	b.Label("restart")
	b.Li(i, 0)
	b.Label("iloop")
	b.Li(j, 0)
	b.Label("jloop")
	b.Fsub(facc, facc, facc)
	b.Li(k, 0)
	b.Label("kloop")
	// A[i*n + k]
	b.Mul(t0, i, nn).Add(t0, t0, k).Shli(t0, t0, 3).Add(t0, t0, ra)
	b.Fld(fa, t0, 0)
	// B[k*n + j]
	b.Mul(t1, k, nn).Add(t1, t1, j).Shli(t1, t1, 3).Add(t1, t1, rb)
	b.Fld(fb, t1, 0)
	b.Fmul(fa, fa, fb)
	b.Fadd(facc, facc, fa)
	b.Addi(k, k, 1)
	b.Blt(k, nn, "kloop")
	// C[i*n + j] = acc
	b.Mul(t0, i, nn).Add(t0, t0, j).Shli(t0, t0, 3).Add(t0, t0, rc)
	b.Fst(facc, t0, 0)
	b.Addi(j, j, 1)
	b.Blt(j, nn, "jloop")
	b.Addi(i, i, 1)
	b.Blt(i, nn, "iloop")
	b.Jmp("restart")
	return b.MustBuild()
}

// buildStencil models lbm: a multi-array FP relaxation sweep (four 8 MB
// input distributions + one 8 MB output, 40 MB total). Branches are
// perfectly predictable; the five concurrent streams exceed what the
// memory bus can deliver, so the kernel is bandwidth-bound and stays
// memory-intensive even with the stream prefetcher running.
func buildStencil() *isa.Program {
	b := asm.New("stencil")
	const words = 1 << 20 // 1M doubles = 8 MB per array
	a0 := b.Alloc(words * 8)
	a1 := b.Alloc(words * 8)
	a2 := b.Alloc(words * 8)
	a3 := b.Alloc(words * 8)
	out := b.Alloc(words * 8)
	coef := b.Floats(0.25)

	r0, r1, r2, r3, ro := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	i, limit, t0, off := isa.R(7), isa.R(8), isa.R(9), isa.R(10)
	f0, f1, f2, f3, fsum, fcoef := isa.F(1), isa.F(2), isa.F(3), isa.F(4), isa.F(5), isa.F(6)

	b.Li(r0, int64(a0))
	b.Li(r1, int64(a1))
	b.Li(r2, int64(a2))
	b.Li(r3, int64(a3))
	b.Li(ro, int64(out))
	b.Li(limit, words-1)
	b.Li(t0, int64(coef))
	b.Fld(fcoef, t0, 0)

	b.Label("sweep")
	b.Li(i, 1)
	b.Label("loop")
	b.Shli(off, i, 3)
	b.Add(t0, off, r0)
	b.Fld(f0, t0, -8)
	b.Add(t0, off, r1)
	b.Fld(f1, t0, 0)
	b.Add(t0, off, r2)
	b.Fld(f2, t0, 8)
	b.Add(t0, off, r3)
	b.Fld(f3, t0, 0)
	b.Fadd(fsum, f0, f1)
	b.Fadd(fsum, fsum, f2)
	b.Fadd(fsum, fsum, f3)
	b.Fmul(fsum, fsum, fcoef)
	b.Add(t0, off, ro)
	b.Fst(fsum, t0, 0)
	b.Addi(i, i, 1)
	b.Blt(i, limit, "loop") // predictable: taken ~1M times per sweep
	b.Jmp("sweep")
	return b.MustBuild()
}

// buildQuantsim models libquantum: controlled-gate application over a 16 MB
// state vector. Amplitude pairs sit a fixed qubit stride apart and blocks
// are visited in a scattered order, so the access pattern defeats the
// sequential stream prefetcher (as libquantum's strided sweeps do) while
// every branch remains perfectly predictable — E-BP but memory-intensive.
func buildQuantsim() *isa.Program {
	b := asm.New("quantsim")
	const words = 1 << 21 // 16 MB state vector
	const stride = 32     // qubit-5 pair distance (4 lines)
	const nblocks = words / (2 * stride)
	state := b.Alloc(words * 8)
	mask := b.Words(0xDEADBEEFCAFEF00D)

	rs, blk, nblk, t0, blockBase := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	j, jlim, v, w, m, phase := isa.R(7), isa.R(8), isa.R(9), isa.R(10), isa.R(11), isa.R(12)
	bi := isa.R(13)

	b.Li(rs, int64(state))
	b.Li(nblk, nblocks)
	b.Li(jlim, stride)
	b.Li(t0, int64(mask))
	b.Ld(m, t0, 0)

	b.Label("gate")
	b.Li(bi, 0)
	b.Label("block")
	// Scattered block order: blk = (bi * 12289) mod nblocks — consecutive
	// blocks land far apart, so inter-block streams never form.
	b.Li(t0, 12289)
	b.Mul(blk, bi, t0)
	b.Andi(blk, blk, nblocks-1)
	b.Li(t0, 2*stride*8)
	b.Mul(blockBase, blk, t0)
	b.Add(blockBase, blockBase, rs)
	b.Li(j, 0)
	b.Label("pair")
	b.Shli(t0, j, 3)
	b.Add(t0, t0, blockBase)
	b.Ld(v, t0, 0)
	b.Ld(w, t0, stride*8)
	b.Xor(v, v, m)
	b.Add(w, w, phase)
	b.St(w, t0, 0)
	b.St(v, t0, stride*8)
	b.Addi(j, j, 1)
	b.Blt(j, jlim, "pair") // predictable inner loop
	b.Addi(bi, bi, 1)
	b.Blt(bi, nblk, "block") // predictable block loop
	b.Addi(phase, phase, 1)
	b.Jmp("gate")
	return b.MustBuild()
}

// buildHashmix models hmmer: table-driven integer scoring with fixed-trip
// inner loops and a rare max-update branch that quickly becomes
// never-taken. Compute-intensive, near-zero branch MPKI.
func buildHashmix() *isa.Program {
	b := asm.New("hashmix")
	r := newRNG(0x4A5E)
	const words = 8192 // 64 KB score table
	tbl := b.Words(r.words(words)...)

	base, i, limit, t0 := isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	h, v, acc, best := isa.R(6), isa.R(7), isa.R(8), isa.R(9)

	b.Li(base, int64(tbl))
	b.Li(limit, words)

	b.Label("seq")
	b.Li(i, 0)
	b.Label("loop")
	// Four-round integer mix of the index (fixed work, no branches).
	b.Mv(h, i)
	b.Shli(t0, h, 21).Xor(h, h, t0)
	b.Shri(t0, h, 35).Xor(h, h, t0)
	b.Shli(t0, h, 4).Xor(h, h, t0)
	b.Addi(h, h, 0x27D4)
	b.Andi(h, h, words-1)
	b.Shli(t0, h, 3).Add(t0, t0, base)
	b.Ld(v, t0, 0)
	b.Add(acc, acc, v)
	b.Blt(v, best, "no_new_max") // converges to always-taken
	b.Mv(best, v)
	b.Label("no_new_max")
	b.Addi(i, i, 1)
	b.Blt(i, limit, "loop")
	b.Jmp("seq")
	return b.MustBuild()
}

// buildCrypto is an ARX (add-rotate-xor) stream cipher over a 64 KB buffer:
// four interleaved serial integer chains per round (maximal iALU pressure)
// plus one keystream load/store per block, a single predictable loop.
func buildCrypto() *isa.Program {
	b := asm.New("crypto")
	r := newRNG(0xC11F)
	const words = 2048 // 16 KB data buffer (L1-resident)
	data := b.Words(r.words(words)...)

	x0, x1, x2, x3 := isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	t0, t1, rounds, limit := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	base, idx, w := isa.R(10), isa.R(11), isa.R(12)

	b.Li(x0, 0x61707865)
	b.Li(x1, 0x3320646e)
	b.Li(x2, 0x79622d32)
	b.Li(x3, 0x6b206574)
	b.Li(limit, 1<<30)
	b.Li(base, int64(data))

	rot := func(dst, src isa.Reg, n int64) {
		b.Shli(t0, src, n)
		b.Shri(t1, src, 64-n)
		b.Or(dst, t0, t1)
	}

	b.Label("round")
	b.Add(x0, x0, x1)
	rot(x3, x3, 16)
	b.Xor(x3, x3, x0)
	b.Add(x2, x2, x3)
	rot(x1, x1, 12)
	b.Xor(x1, x1, x2)
	b.Add(x0, x0, x3)
	rot(x2, x2, 8)
	b.Xor(x2, x2, x1)
	b.Add(x2, x2, x0)
	rot(x0, x0, 7)
	b.Xor(x0, x0, x2)
	// Keystream application: encrypt one buffer word per round, at a
	// keystream-dependent stride (irregular but branch-free, so the
	// program stays E-BP while avoiding a deterministic issue-pattern
	// lock-in that no real machine would sustain).
	b.Andi(t1, x0, 7)
	b.Shli(t1, t1, 3)
	b.Add(idx, idx, t1)
	b.Addi(idx, idx, 8)
	b.Andi(idx, idx, words*8-1)
	b.Add(t0, idx, base)
	b.Ld(w, t0, 0)
	b.Xor(w, w, x0)
	b.St(w, t0, 0)
	b.Addi(rounds, rounds, 1)
	b.Blt(rounds, limit, "round")
	b.Li(rounds, 0)
	b.Jmp("round")
	return b.MustBuild()
}

// buildFFT is a butterfly-style FP kernel over a 1 MB table (L2-resident):
// two nested fixed-trip loops, predictable control, FP-unit pressure.
func buildFFT() *isa.Program {
	b := asm.New("fft")
	r := newRNG(0xFF7)
	const words = 131072 // 1 MB of doubles
	vals := make([]float64, words)
	for i := range vals {
		vals[i] = float64(r.next()%4096)/512.0 - 4.0
	}
	data := b.Floats(vals...)
	tw := b.Floats(0.923879532511287, 0.382683432365090)

	base, stride, i, limit, t0, t1 := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6), isa.R(7)
	half := isa.R(8)
	fa, fb, fwr, fwi, fs, fd := isa.F(1), isa.F(2), isa.F(3), isa.F(4), isa.F(5), isa.F(6)

	b.Li(base, int64(data))
	b.Li(half, words/2)
	b.Li(t0, int64(tw))
	b.Fld(fwr, t0, 0)
	b.Fld(fwi, t0, 8)

	b.Label("stage")
	b.Li(stride, 1)
	b.Label("stride_loop")
	b.Li(i, 0)
	b.Label("bfly")
	b.Shli(t0, i, 3).Add(t0, t0, base)
	b.Add(t1, i, half).Shli(t1, t1, 3).Add(t1, t1, base)
	b.Fld(fa, t0, 0)
	b.Fld(fb, t1, 0)
	b.Fadd(fs, fa, fb)
	b.Fsub(fd, fa, fb)
	b.Fmul(fs, fs, fwr)
	b.Fmul(fd, fd, fwi)
	b.Fst(fs, t0, 0)
	b.Fst(fd, t1, 0)
	b.Addi(i, i, 1)
	b.Blt(i, half, "bfly")
	b.Shli(stride, stride, 1)
	b.Li(limit, 16)
	b.Blt(stride, limit, "stride_loop")
	b.Jmp("stage")
	return b.MustBuild()
}
