package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// TestAllProgramsBuildAndRun verifies every benchmark builds, validates,
// and executes 200K instructions without faulting, with sane instruction
// mixes (some branches, some ALU work).
func TestAllProgramsBuildAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := Program(w.Name)
			if err != nil {
				t.Fatalf("Program: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			m := emu.MustNew(p)
			var branches, taken, loads, stores uint64
			const n = 200_000
			for i := 0; i < n; i++ {
				di, ok := m.Step()
				if !ok {
					t.Fatalf("program halted after %d instructions", i)
				}
				if di.Inst.IsCondBranch() {
					branches++
					if di.Taken {
						taken++
					}
				}
				if di.Inst.IsLoad() {
					loads++
				}
				if di.Inst.IsStore() {
					stores++
				}
			}
			if branches == 0 {
				t.Error("no conditional branches executed")
			}
			if taken == 0 {
				t.Errorf("degenerate branch behaviour: 0/%d taken", branches)
			}
			if w.HardBranches && (taken == branches || taken == 0) {
				// Hard-branch programs must have genuinely mixed outcomes.
				t.Errorf("D-BP program with degenerate branches: %d/%d taken", taken, branches)
			}
			if loads == 0 && w.Name != "crypto" {
				t.Error("no loads executed")
			}
			t.Logf("branches=%.1f%% taken=%.1f%% loads=%.1f%% stores=%.1f%%",
				pct(branches, n), pct(taken, branches), pct(loads, n), pct(stores, n))
		})
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

// TestDeterminism: two emulations of the same benchmark produce identical
// dynamic streams.
func TestDeterminism(t *testing.T) {
	p := MustProgram("chess")
	m1, m2 := emu.MustNew(p), emu.MustNew(p)
	for i := 0; i < 50_000; i++ {
		a, ok1 := m1.Step()
		b, ok2 := m2.Step()
		if ok1 != ok2 || a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestRegistry checks lookup and the hard/easy split.
func TestRegistry(t *testing.T) {
	if len(All()) != 20 {
		t.Fatalf("expected 20 benchmarks, have %d: %v", len(All()), Names())
	}
	if len(Hard()) != 11 || len(Easy()) != 9 {
		t.Fatalf("hard/easy split wrong: %d/%d", len(Hard()), len(Easy()))
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown benchmark")
	}
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil || w.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, w.Name, err)
		}
	}
	// Cached program identity.
	p1 := MustProgram("fft")
	p2 := MustProgram("fft")
	if p1 != p2 {
		t.Error("Program should cache built programs")
	}
}

// TestPermutationIsSingleCycle verifies the Sattolo permutation used by
// sparse: following next[] from 0 must visit every node exactly once.
func TestPermutationIsSingleCycle(t *testing.T) {
	r := newRNG(123)
	const n = 4096
	p := r.perm(n)
	seen := make([]bool, n)
	cur := uint64(0)
	for i := 0; i < n; i++ {
		if seen[cur] {
			t.Fatalf("cycle shorter than n: revisited %d after %d steps", cur, i)
		}
		seen[cur] = true
		cur = p[cur]
	}
	if cur != 0 {
		t.Fatalf("walk did not return to start (at %d)", cur)
	}
}

// TestStencilComputes runs one partial stencil sweep and spot-checks the
// arithmetic through the emulator's memory.
func TestStencilComputes(t *testing.T) {
	p := MustProgram("stencil")
	m := emu.MustNew(p)
	// The input array is zero-initialised, so out values must stay 0 and
	// no fault may occur across the boundary elements.
	m.Run(100_000)
	if m.Done() {
		t.Fatal("stencil should run forever")
	}
}

// TestTreewalkPointers verifies the packed tree: children of node i sit at
// 2i+1 and 2i+2, and leaves wrap to the root.
func TestTreewalkPointers(t *testing.T) {
	p := MustProgram("treewalk")
	m := emu.MustNew(p)
	const nodes = 1<<18 - 1
	// Interior node.
	if got := m.ReadWord(100*32 + 8); got != uint64((2*100+1)*32) {
		t.Errorf("left(100) = %d, want %d", got, (2*100+1)*32)
	}
	if got := m.ReadWord(100*32 + 16); got != uint64((2*100+2)*32) {
		t.Errorf("right(100) = %d, want %d", got, (2*100+2)*32)
	}
	// Leaf wraps to root.
	leaf := nodes - 1
	if got := m.ReadWord(uint64(leaf*32 + 8)); got != 0 {
		t.Errorf("leaf left pointer = %d, want 0 (root)", got)
	}
}

var _ = isa.NumLogicalRegs
