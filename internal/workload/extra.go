package workload

// Six additional benchmarks rounding the suite out to 20 programs
// (SPEC CPU2006 has 29; breadth strengthens the Fig. 8/9 distributions).
// Same construction discipline as dbp.go/ebp.go: short genuine branch
// slices, skewed data-dependent probabilities for the hard branches,
// interleaved serial ALU chains as contended computation slices.

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

func init() {
	register(Info{Name: "encode", Analogue: "h264ref", HardBranches: true, Build: buildEncode})
	register(Info{Name: "regex", Analogue: "perlbench (regex)", HardBranches: true, Build: buildRegex})
	register(Info{Name: "bfs", Analogue: "(graph500 BFS)", HardBranches: true, MemIntensive: true, Build: buildBFS})
	register(Info{Name: "raytrace", Analogue: "povray", Build: buildRaytrace})
	register(Info{Name: "nbody", Analogue: "namd", Build: buildNbody})
	register(Info{Name: "cellular", Analogue: "(cellular automaton)", Build: buildCellular})
}

// buildEncode models h264ref: block-based encoding with a predictable SAD
// inner loop (fixed 8-iteration trip) and a data-dependent mode decision
// per block (p ≈ 3/16). Compute-intensive, moderate branch MPKI — the low
// end of the D-BP set.
func buildEncode() *isa.Program {
	b := asm.New("encode")
	r := newRNG(0xE4C0)
	const words = 65536 // 512 KB frame buffer
	frame := b.Words(r.words(words)...)

	base, blk, t0, t1 := isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	v, sad, c, addr := isa.R(9), isa.R(10), isa.R(11), isa.R(12)
	modes, bits := isa.R(20), isa.R(21)
	e0, e1, e2, e3 := isa.R(26), isa.R(27), isa.R(28), isa.R(29)

	b.Li(base, int64(frame))
	b.Li(e0, 0x428A2F98).Li(e1, 0x71374491).Li(e2, 0xB5C0FBCF).Li(e3, 0xE9B5DBA5)

	b.Label("block")
	b.Addi(blk, blk, 64) // next 8-word block
	b.Andi(blk, blk, words*8-1)
	b.Add(addr, blk, base)
	// Mode decision on the block's DC element: a short genuine slice
	// (load → mask → compare), p ≈ 5/16 data-dependent. The full SAD below
	// is computation-slice work the decision does not wait for.
	b.Ld(v, addr, 0)
	b.Andi(c, v, 15)
	b.Slti(c, c, 5)
	b.Bne(c, isa.RZero, "intra") // hard: p ≈ 5/16
	b.Addi(bits, bits, 5)
	b.Jmp("sad")
	b.Label("intra")
	b.Addi(modes, modes, 1)
	// Sub-mode decision (p ≈ 1/4 of intra blocks, data-dependent).
	b.Shri(c, v, 8)
	b.Andi(c, c, 3)
	b.Beq(c, isa.RZero, "intra16")
	b.Addi(bits, bits, 11)
	b.Jmp("sad")
	b.Label("intra16")
	b.Add(bits, bits, modes)
	b.Label("sad")
	// SAD over the block, fully unrolled as real encoders do
	// (computation slice: no branch consumes it).
	b.Li(sad, 0)
	for off := int64(0); off < 64; off += 8 {
		b.Ld(v, addr, off)
		b.Shri(t1, v, 32)
		b.Xor(t1, t1, v)
		b.Andi(t1, t1, 0xFFFF)
		b.Add(sad, sad, t1)
	}
	b.Add(bits, bits, sad)
	// Motion-estimation arithmetic (contended serial chains).
	emitARXRound(b, e0, e1, e2, e3, t0, t1)
	b.Jmp("block")
	return b.MustBuild()
}

// buildRegex models perlbench's regex engine: an NFA stepping over random
// input where the active-state transition is data-dependent (two hard
// branches per character with skewed probabilities). Light memory.
func buildRegex() *isa.Program {
	b := asm.New("regex")
	r := newRNG(0x4E6F)
	const words = 8192 // 64 KB input
	const nfaWords = 256
	input := b.Words(r.words(words)...)
	nfa := b.Words(r.words(nfaWords)...)

	inBase, nfaBase, i, t0, t1 := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	addr, ch, state, tr, c := isa.R(7), isa.R(8), isa.R(9), isa.R(10), isa.R(11)
	matches, backtracks := isa.R(20), isa.R(21)
	e0, e1, e2, e3 := isa.R(26), isa.R(27), isa.R(28), isa.R(29)

	b.Li(inBase, int64(input))
	b.Li(nfaBase, int64(nfa))
	b.Li(state, 1)
	b.Li(e0, 0x3956C25B).Li(e1, 0x59F111F1).Li(e2, 0x923F82A4).Li(e3, 0xAB1C5ED5)

	b.Label("top")
	// Capture-group bookkeeping (contended serial chains; no branch).
	emitARXRound(b, e0, e1, e2, e3, t0, t1)
	// Next character.
	b.Addi(i, i, 8)
	b.Andi(i, i, words*8-1)
	b.Add(addr, i, inBase)
	b.Ld(ch, addr, 0)
	// Accepting test directly on the character class (p ≈ 1/8, data
	// dependent): a short slice — load → mask → compare.
	b.Andi(c, ch, 7)
	b.Beq(c, isa.RZero, "accept")
	// Backtrack test on a different character field (p ≈ 1/4 remainder).
	b.Shri(c, ch, 3)
	b.Andi(c, c, 3)
	b.Beq(c, isa.RZero, "backtrack")
	// Transition lookup feeds only the machine state (semantic action, not
	// a branch), so slices stay short instead of chaining across
	// iterations.
	b.Mv(tr, ch)
	b.Andi(tr, tr, nfaWords-1)
	b.Shli(tr, tr, 3)
	b.Add(tr, tr, nfaBase)
	b.Ld(tr, tr, 0)
	// Advance: fold the transition into the state.
	b.Shri(state, tr, 5)
	b.Andi(state, state, 0xFF)
	b.Ori(state, state, 1)
	b.Jmp("top")
	b.Label("accept")
	b.Addi(matches, matches, 1)
	b.Li(state, 1)
	b.Jmp("top")
	b.Label("backtrack")
	b.Addi(backtracks, backtracks, 1)
	b.Shri(state, state, 1)
	b.Ori(state, state, 1)
	b.Jmp("top")
	return b.MustBuild()
}

// buildBFS models a graph500-style breadth-first sweep: random neighbour
// loads over a 16 MB edge array with a data-dependent visited test
// (p ≈ 1/4). Memory-intensive and branchy — like mcf/omnetpp, the mode
// switch should disable PUBS here.
func buildBFS() *isa.Program {
	b := asm.New("bfs")
	r := newRNG(0xBF5)
	const nodes = 1 << 18 // 256K nodes
	const edgeWords = nodes * 8
	// Edge array: random targets (node indices).
	edges := make([]uint64, edgeWords)
	for i := range edges {
		edges[i] = r.next() % nodes
	}
	edgeBase := b.Words(edges...)
	visited := b.Alloc(nodes * 8)

	eb, vb, cur, t0 := isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	deg, d, addr, tgt, flag := isa.R(6), isa.R(7), isa.R(8), isa.R(9), isa.R(10)
	frontier, depth := isa.R(20), isa.R(21)

	b.Li(eb, int64(edgeBase))
	b.Li(vb, int64(visited))
	b.Li(deg, 4)

	b.Label("node")
	// Visit up to deg neighbours of cur.
	b.Li(d, 0)
	b.Label("edge")
	// Edge fetch: edges[cur*8 + d] (random line in 16 MB).
	b.Shli(addr, cur, 6)
	b.Shli(t0, d, 3)
	b.Add(addr, addr, t0)
	b.Add(addr, addr, eb)
	b.Ld(tgt, addr, 0)
	// Visited test: data-dependent (p ≈ 1/4 taken).
	b.Shli(t0, tgt, 3)
	b.Add(t0, t0, vb)
	b.Ld(flag, t0, 0)
	b.Andi(flag, flag, 3)
	b.Beq(flag, isa.RZero, "enqueue")
	b.Addi(depth, depth, 1)
	b.Jmp("next_edge")
	b.Label("enqueue")
	b.Addi(frontier, frontier, 1)
	b.Shli(t0, tgt, 3)
	b.Add(t0, t0, vb)
	b.St(frontier, t0, 0) // mark visited
	b.Label("next_edge")
	b.Addi(d, d, 1)
	b.Blt(d, deg, "edge") // predictable degree loop
	// Move on: perturb the successor with the visit counter so the walk
	// keeps covering fresh nodes instead of trapping in a rho-cycle.
	b.Add(cur, tgt, frontier)
	b.Andi(cur, cur, nodes-1)
	b.Jmp("node")
	return b.MustBuild()
}

// buildRaytrace models povray: FP-heavy intersection arithmetic where the
// common hit/miss test is well-predicted (p ≈ 0.06 taken) — E-BP despite
// being branchy code, as real povray is.
func buildRaytrace() *isa.Program {
	b := asm.New("raytrace")
	r := newRNG(0x47A9)
	const spheres = 512
	vals := make([]float64, spheres*4)
	for i := range vals {
		vals[i] = float64(r.next()%10000)/100.0 + 1.0
	}
	scene := b.Floats(vals...)
	consts := b.Floats(1.0, 0.5, 1e6, 2.5)

	base, i, lim, t0 := isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	c := isa.R(6)
	ox, oy, dz, disc, tmp, thit := isa.F(1), isa.F(2), isa.F(3), isa.F(4), isa.F(5), isa.F(6)
	fone, fhalf, fbest, fthresh := isa.F(7), isa.F(8), isa.F(9), isa.F(10)

	b.Li(base, int64(scene))
	b.Li(lim, spheres)
	b.Li(t0, int64(consts))
	b.Fld(fone, t0, 0)
	b.Fld(fhalf, t0, 8)
	b.Fld(fbest, t0, 16)
	b.Fld(fthresh, t0, 24)
	b.Fadd(ox, fone, fhalf)
	b.Fadd(oy, fone, fone)
	b.Fadd(dz, fhalf, fhalf)

	b.Label("ray")
	b.Li(i, 0)
	b.Label("sphere")
	b.Shli(t0, i, 5) // 4 doubles per sphere
	b.Add(t0, t0, base)
	b.Fld(disc, t0, 0)
	b.Fld(tmp, t0, 8)
	// Hit test against the bounding radius: rare (≈1.5% of spheres, data
	// dependent) — povray's intersection tests predict this well.
	b.Fclt(c, disc, fthresh)
	// Discriminant arithmetic (FP chains) proceeds regardless.
	b.Fmul(disc, disc, dz)
	b.Fsub(disc, disc, ox)
	b.Fmul(tmp, tmp, tmp)
	b.Fadd(disc, disc, tmp)
	b.Fmul(thit, disc, fhalf)
	b.Bne(c, isa.RZero, "hit")
	b.Label("resume")
	b.Addi(i, i, 1)
	b.Blt(i, lim, "sphere") // predictable sphere loop
	// Advance the ray deterministically.
	b.Fadd(ox, ox, fhalf)
	b.Fmul(oy, oy, fone)
	b.Jmp("ray")
	b.Label("hit")
	b.Fadd(fbest, fbest, thit)
	b.Fmul(fbest, fbest, fhalf)
	b.Jmp("resume")
	return b.MustBuild()
}

// buildNbody models namd: a pairwise force kernel — long FP dependence
// chains with an occasional non-pipelined divide, perfectly predictable
// control, L2-resident particle array.
func buildNbody() *isa.Program {
	b := asm.New("nbody")
	r := newRNG(0x0B0D)
	const particles = 4096 // 4096 × 4 doubles = 128 KB
	vals := make([]float64, particles*4)
	for i := range vals {
		vals[i] = float64(r.next()%1000)/100.0 + 0.5
	}
	arr := b.Floats(vals...)

	base, i, j, lim, t0, t1 := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6), isa.R(7)
	xi, yi, xj, yj, dx, dy := isa.F(1), isa.F(2), isa.F(3), isa.F(4), isa.F(5), isa.F(6)
	r2, force, ax, ay := isa.F(7), isa.F(8), isa.F(9), isa.F(10)

	b.Li(base, int64(arr))
	b.Li(lim, particles)

	b.Label("outer")
	b.Addi(i, i, 1)
	b.Andi(i, i, particles-1)
	b.Shli(t0, i, 5)
	b.Add(t0, t0, base)
	b.Fld(xi, t0, 0)
	b.Fld(yi, t0, 8)
	b.Li(j, 0)
	b.Label("inner")
	b.Shli(t1, j, 5)
	b.Add(t1, t1, base)
	b.Fld(xj, t1, 0)
	b.Fld(yj, t1, 8)
	b.Fsub(dx, xi, xj)
	b.Fsub(dy, yi, yj)
	b.Fmul(r2, dx, dx)
	b.Fmul(force, dy, dy)
	b.Fadd(r2, r2, force)
	b.Fdiv(force, dx, r2) // non-pipelined FP divide: FPU pressure
	b.Fadd(ax, ax, force)
	b.Fmul(dy, dy, force)
	b.Fadd(ay, ay, dy)
	b.Addi(j, j, 64)
	b.Blt(j, lim, "inner") // predictable strided inner loop
	b.Jmp("outer")
	return b.MustBuild()
}

// buildCellular is a rule-table cellular automaton swept over a 4 MB tape:
// streaming loads/stores, table lookups, and perfectly predictable control.
func buildCellular() *isa.Program {
	b := asm.New("cellular")
	r := newRNG(0xCA11)
	const words = 1 << 19 // 4 MB tape
	const ruleWords = 512
	tape := b.Words(r.words(words)...)
	rules := b.Words(r.words(ruleWords)...)

	tb, rb, i, lim, t0 := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	left, mid, right, key, nv := isa.R(7), isa.R(8), isa.R(9), isa.R(10), isa.R(11)
	gen := isa.R(20)

	b.Li(tb, int64(tape))
	b.Li(rb, int64(rules))
	b.Li(lim, words-1)

	b.Label("gen")
	b.Li(i, 1)
	b.Label("cell")
	b.Shli(t0, i, 3)
	b.Add(t0, t0, tb)
	b.Ld(left, t0, -8)
	b.Ld(mid, t0, 0)
	b.Ld(right, t0, 8)
	// Rule key from the neighbourhood.
	b.Xor(key, left, right)
	b.Add(key, key, mid)
	b.Andi(key, key, ruleWords-1)
	b.Shli(key, key, 3)
	b.Add(key, key, rb)
	b.Ld(nv, key, 0)
	b.Xor(nv, nv, mid)
	b.St(nv, t0, 0)
	b.Addi(i, i, 1)
	b.Blt(i, lim, "cell") // predictable tape loop
	b.Addi(gen, gen, 1)
	b.Jmp("gen")
	return b.MustBuild()
}
