package workload

// The eight hard-branch (D-BP) benchmarks. Each models the behavioural
// class of a SPEC CPU2006 program. Branch slices are kept short and
// realistic — induction-variable addressing feeding a load feeding a
// compare — while independent computation chains (PRNG mixing, score
// accumulators) provide the issue pressure that makes slice priority
// matter. Hard-branch taken probabilities are skewed (12–50%) so
// misprediction rates land in the realistic D-BP range rather than at the
// 50% ceiling.

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

func init() {
	register(Info{Name: "chess", Analogue: "sjeng", HardBranches: true, Build: buildChess})
	register(Info{Name: "goplay", Analogue: "gobmk", HardBranches: true, Build: buildGoplay})
	register(Info{Name: "pathfind", Analogue: "astar", HardBranches: true, Build: buildPathfind})
	register(Info{Name: "parser", Analogue: "perlbench", HardBranches: true, Build: buildParser})
	register(Info{Name: "compress", Analogue: "bzip2", HardBranches: true, Build: buildCompress})
	register(Info{Name: "treewalk", Analogue: "omnetpp", HardBranches: true, MemIntensive: true, Build: buildTreewalk})
	register(Info{Name: "simplex", Analogue: "soplex", HardBranches: true, MemIntensive: true, Build: buildSimplex})
	register(Info{Name: "sparse", Analogue: "mcf", HardBranches: true, MemIntensive: true, Build: buildSparse})
}

// guestXorshift emits x ^= x<<13; x ^= x>>7; x ^= x<<17 on state, using tmp.
func guestXorshift(b *asm.Builder, state, tmp isa.Reg) {
	b.Shli(tmp, state, 13).Xor(state, state, tmp)
	b.Shri(tmp, state, 7).Xor(state, state, tmp)
	b.Shri(tmp, state, 17).Xor(state, state, tmp)
}

// emitARXRound emits a ChaCha-style quarter-round over four registers:
// four interleaved serial integer chains (~26 ops) whose arbitration on the
// two iALUs is where an age matrix earns its IPC.
func emitARXRound(b *asm.Builder, x0, x1, x2, x3, t0, t1 isa.Reg) {
	rot := func(dst, src isa.Reg, n int64) {
		b.Shli(t0, src, n)
		b.Shri(t1, src, 64-n)
		b.Or(dst, t0, t1)
	}
	b.Add(x0, x0, x1)
	rot(x3, x3, 16)
	b.Xor(x3, x3, x0)
	b.Add(x2, x2, x3)
	rot(x1, x1, 12)
	b.Xor(x1, x1, x2)
	b.Add(x0, x0, x3)
	rot(x2, x2, 8)
	b.Xor(x2, x2, x1)
	b.Add(x2, x2, x0)
	rot(x0, x0, 7)
	b.Xor(x0, x0, x2)
}

// emitFiller emits independent integer accumulator chains — the
// "computation slice" competing with branch slices for the integer ALUs.
// Inputs v and w feed the chains but the chains feed no branch.
func emitFiller(b *asm.Builder, v, w, t isa.Reg, accs []isa.Reg) {
	for i, a := range accs {
		switch i % 3 {
		case 0:
			b.Add(a, a, v).Shli(t, a, 1).Xor(a, a, t)
		case 1:
			b.Add(a, a, w).Xori(a, a, 0x5B).Addi(a, a, 3)
		case 2:
			b.Sub(a, a, v).Shri(t, a, 5).Add(a, a, t)
		}
	}
}

// buildChess models sjeng: a move-scoring loop over a 64 KB cache-resident
// position table. Two data-dependent branches (capture test p≈0.31,
// promotion test p≈0.19) sit at the end of short load→mask→branch slices;
// a PRNG mixer and three evaluation accumulators supply issue pressure.
// Compute-intensive: the paper's biggest PUBS winner.
func buildChess() *isa.Program {
	b := asm.New("chess")
	r := newRNG(0xC4E55)
	const words = 8192 // 64 KB table
	tbl := b.Words(r.words(words)...)

	base, i, t0 := isa.R(2), isa.R(3), isa.R(4)
	addr, v, c := isa.R(5), isa.R(6), isa.R(7)
	st, t1 := isa.R(8), isa.R(9)
	a1, a2, a3 := isa.R(20), isa.R(21), isa.R(22)
	score, moves := isa.R(23), isa.R(24)
	e0, e1, e2, e3 := isa.R(26), isa.R(27), isa.R(28), isa.R(29)

	b.Li(base, int64(tbl))
	b.Li(st, 0x1234567)
	b.Li(e0, 0x243F6A88).Li(e1, 0x85A308D3).Li(e2, 0x13198A2E).Li(e3, 0x03707344)

	b.Label("top")
	// Branch slice: induction → address → load → mask → compare.
	b.Addi(i, i, 8)
	b.Andi(i, i, words*8-1)
	b.Add(addr, i, base)
	b.Ld(v, addr, 0)
	b.Andi(c, v, 15)
	b.Slti(c, c, 5)
	b.Bne(c, isa.RZero, "capture") // hard: p ≈ 5/16
	b.Add(score, score, v)
	b.Jmp("eval")
	b.Label("capture")
	b.Sub(score, score, v)
	b.Addi(moves, moves, 1)
	b.Label("eval")
	// Computation slice: PRNG mixing + evaluation accumulators (no branch
	// depends on any of this).
	guestXorshift(b, st, t0)
	emitFiller(b, v, st, t1, []isa.Reg{a1, a2, a3})
	b.Add(score, score, a1)
	// Positional evaluation: an ARX mixing block over four loop-carried
	// register chains. The interleaved serial chains contend for the two
	// integer ALUs — the dataflow-criticality component of sjeng that an
	// age matrix accelerates (and PUBS does not address). Feeds no branch.
	emitARXRound(b, e0, e1, e2, e3, t0, t1)
	// Second short slice off the same load: promotion check.
	b.Shri(c, v, 8)
	b.Andi(c, c, 31)
	b.Slti(c, c, 6)
	b.Bne(c, isa.RZero, "promote") // hard: p ≈ 6/32
	b.Jmp("top")
	b.Label("promote")
	b.Add(score, score, moves)
	b.Jmp("top")
	return b.MustBuild()
}

// buildGoplay models gobmk: board evaluation with a two-level tree of
// data-dependent decisions over a 128 KB board, plus periodic board writes.
// Distinct branch PCs with skewed probabilities (p≈0.25–0.31).
func buildGoplay() *isa.Program {
	b := asm.New("goplay")
	r := newRNG(0x60B0)
	const words = 16384 // 128 KB board
	board := b.Words(r.words(words)...)

	base, i, t0 := isa.R(2), isa.R(3), isa.R(4)
	addr, v, c, c2 := isa.R(5), isa.R(6), isa.R(7), isa.R(8)
	st, t1 := isa.R(9), isa.R(10)
	lib, terr, infl := isa.R(20), isa.R(21), isa.R(22)
	e0, e1, e2, e3 := isa.R(26), isa.R(27), isa.R(28), isa.R(29)

	b.Li(base, int64(board))
	b.Li(st, 0xB0A4D)
	b.Li(e0, 0x9E3779B9).Li(e1, 0x7F4A7C15).Li(e2, 0xF39CC060).Li(e3, 0x5CEDC834)

	b.Label("top")
	// Influence propagation: interleaved serial ALU chains (dataflow
	// criticality; feeds no branch).
	emitARXRound(b, e0, e1, e2, e3, t0, t1)
	b.Addi(i, i, 8)
	b.Andi(i, i, words*8-1)
	b.Add(addr, i, base)
	b.Ld(v, addr, 0)
	// Level 1: stone-in-atari test (p ≈ 0.25).
	b.Andi(c, v, 3)
	b.Beq(c, isa.RZero, "atari")

	// Common path: influence accumulation + level-2 territory test.
	guestXorshift(b, st, t0)
	emitFiller(b, v, st, t1, []isa.Reg{lib, infl})
	b.Shri(c2, v, 4)
	b.Andi(c2, c2, 15)
	b.Slti(c2, c2, 5)
	b.Bne(c2, isa.RZero, "territory") // hard: p ≈ 5/16
	b.Add(terr, terr, infl)
	b.Jmp("top")
	b.Label("territory")
	b.Add(terr, terr, v)
	b.Xor(t1, lib, terr)
	b.St(t1, addr, 0)
	b.Jmp("top")

	b.Label("atari")
	b.Sub(lib, lib, v)
	b.Addi(lib, lib, 7)
	b.Add(infl, infl, lib)
	b.Jmp("top")
	return b.MustBuild()
}

// buildPathfind models astar: heap-style priority comparisons with an
// extreme density of 50/50 data-dependent branches on short slices — the
// "extraordinarily large branch MPKI" program of the paper's footnote 1.
func buildPathfind() *isa.Program {
	b := asm.New("pathfind")
	r := newRNG(0xA57A2)
	const words = 32768 // 256 KB
	heap := b.Words(r.words(words)...)

	base, i, j := isa.R(2), isa.R(3), isa.R(4)
	a1, a2, v1, v2 := isa.R(5), isa.R(6), isa.R(7), isa.R(8)
	t0, t1 := isa.R(9), isa.R(10)
	cost, expanded := isa.R(20), isa.R(21)
	g1, g2, g3 := isa.R(22), isa.R(23), isa.R(24)
	e0, e1, e2, e3 := isa.R(26), isa.R(27), isa.R(28), isa.R(29)

	b.Li(base, int64(heap))
	b.Li(j, 0x9E8) // second index starts offset
	b.Li(e0, 0xC3A5C85C).Li(e1, 0x97CB3127).Li(e2, 0xB492B66F).Li(e3, 0x9AE16A3B)

	b.Label("top")
	// Heuristic evaluation: interleaved serial ALU chains (feeds no branch).
	emitARXRound(b, e0, e1, e2, e3, t0, t1)
	b.Addi(i, i, 8)
	b.Andi(i, i, words*8-1)
	b.Addi(j, j, 24)
	b.Andi(j, j, words*8-1)
	b.Add(a1, i, base)
	b.Add(a2, j, base)
	b.Ld(v1, a1, 0)
	b.Ld(v2, a2, 0)
	b.Blt(v1, v2, "sift") // hard: p ≈ 0.5
	b.Add(cost, cost, v1)
	b.Shri(t0, cost, 3)
	b.Xor(cost, cost, t0)
	b.Jmp("expand")
	b.Label("sift")
	b.St(v1, a2, 0)
	b.St(v2, a1, 0)
	b.Add(cost, cost, v2)
	b.Label("expand")
	// Open-list bookkeeping: g/h-score accumulators (no branch depends on
	// these).
	b.Addi(expanded, expanded, 1)
	b.Add(g1, g1, v1)
	b.Shli(t0, g1, 1)
	b.Xor(g1, g1, t0)
	b.Add(g2, g2, v2)
	b.Shri(t0, g2, 4)
	b.Add(g2, g2, t0)
	b.Xori(g2, g2, 0x77)
	b.Sub(g3, g3, v1)
	b.Addi(g3, g3, 9)
	b.Andi(t0, v2, 7)
	b.Slti(t0, t0, 2)
	b.Bne(t0, isa.RZero, "goal_check") // hard: p ≈ 0.25
	b.Jmp("top")
	b.Label("goal_check")
	b.Add(expanded, expanded, cost)
	b.Jmp("top")
	return b.MustBuild()
}

// buildParser models perlbench: a tokeniser whose branch ladder classifies
// random input words into skewed token classes (p ≈ 1/8, 1/7, 1/6 per
// rung), with the machine state folded into later classifications.
func buildParser() *isa.Program {
	b := asm.New("parser")
	r := newRNG(0x9E21)
	const words = 8192 // 64 KB input window
	input := b.Words(r.words(words)...)

	base, i, t0 := isa.R(2), isa.R(3), isa.R(4)
	addr, v, tok, one, two := isa.R(5), isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	t1 := isa.R(10)
	state, idents, nums, strs := isa.R(20), isa.R(21), isa.R(22), isa.R(23)
	a1, a2, a3 := isa.R(24), isa.R(25), isa.R(26)
	e0, e1, e2, e3 := isa.R(27), isa.R(28), isa.R(29), isa.R(30)

	b.Li(base, int64(input))
	b.Li(one, 1)
	b.Li(two, 2)
	b.Li(e0, 0x6A09E667).Li(e1, 0xBB67AE85).Li(e2, 0x3C6EF372).Li(e3, 0xA54FF53A)

	b.Label("top")
	// Symbol-table hashing: interleaved serial ALU chains (feeds no branch).
	emitARXRound(b, e0, e1, e2, e3, t0, t1)
	b.Addi(i, i, 8)
	b.Andi(i, i, words*8-1)
	b.Add(addr, i, base)
	b.Ld(v, addr, 0)
	b.Andi(tok, v, 7)
	b.Beq(tok, isa.RZero, "ident") // p ≈ 1/8
	b.Beq(tok, one, "number")      // p ≈ 1/7 of remainder
	b.Beq(tok, two, "strlit")      // p ≈ 1/6 of remainder
	// Operator (common case): fold into state and charge the evaluation
	// accumulators (semantic actions — none of this feeds a branch).
	b.Shli(t0, state, 1)
	b.Xor(state, state, t0)
	b.Addi(state, state, 3)
	b.Andi(state, state, 0xFFFF)
	b.Add(a1, a1, v)
	b.Shli(t0, a1, 2)
	b.Xor(a1, a1, t0)
	b.Addi(a1, a1, 11)
	b.Add(a2, a2, a1)
	b.Shri(t0, a2, 7)
	b.Add(a2, a2, t0)
	b.Xori(a2, a2, 0x3C)
	b.Sub(a3, a3, v)
	b.Shri(t0, a3, 3)
	b.Xor(a3, a3, t0)
	b.Addi(a3, a3, 5)
	b.Jmp("top")
	b.Label("ident")
	b.Add(idents, idents, v)
	b.Xori(state, state, 0x111)
	b.Add(a1, a1, idents)
	b.Shli(t0, a1, 1)
	b.Xor(a1, a1, t0)
	b.Add(a2, a2, v)
	b.Addi(a2, a2, 13)
	b.Jmp("top")
	b.Label("number")
	b.Add(nums, nums, v)
	b.Shri(t0, v, 8)
	b.Add(state, state, t0)
	b.Andi(state, state, 0xFFFF)
	b.Add(a3, a3, nums)
	b.Shli(t0, a3, 3)
	b.Xor(a3, a3, t0)
	b.Add(a1, a1, a3)
	b.Jmp("top")
	b.Label("strlit")
	b.Add(strs, strs, v)
	b.Xori(state, state, 0x2A)
	b.Add(a2, a2, strs)
	b.Shri(t0, a2, 2)
	b.Add(a2, a2, t0)
	b.Jmp("top")
	return b.MustBuild()
}

// buildCompress models bzip2: move-to-front coding with a 2 KB recency
// table over a 1 MB sequential input (L2-resident). The rank-match branch
// is data-dependent (p ≈ 1/8); the input-advance loop branch is perfectly
// predictable, giving the mixed confident/unconfident branch population
// typical of D-BP programs.
func buildCompress() *isa.Program {
	b := asm.New("compress")
	r := newRNG(0xB212)
	const inWords = 131072 // 1 MB input
	const tabWords = 256   // 2 KB recency table
	input := b.Words(r.words(inWords)...)
	table := b.Words(r.words(tabWords)...)
	output := b.Alloc(inWords * 8)

	inBase, tabBase, outBase := isa.R(2), isa.R(3), isa.R(4)
	i, limit, t0 := isa.R(5), isa.R(6), isa.R(7)
	v, sym, slot, rank, thr := isa.R(8), isa.R(9), isa.R(10), isa.R(11), isa.R(12)
	t1 := isa.R(13)
	runlen, outidx := isa.R(20), isa.R(21)
	crc, freq, model, bits := isa.R(22), isa.R(23), isa.R(24), isa.R(25)
	e0, e1, e2, e3 := isa.R(26), isa.R(27), isa.R(28), isa.R(29)

	b.Li(inBase, int64(input))
	b.Li(tabBase, int64(table))
	b.Li(outBase, int64(output))
	b.Li(limit, inWords)
	b.Li(e0, 0x510E527F).Li(e1, 0x9B05688C).Li(e2, 0x1F83D9AB).Li(e3, 0x5BE0CD19)

	b.Label("pass")
	b.Li(i, 0)
	b.Li(outidx, 0)
	b.Label("loop")
	b.Shli(t0, i, 3)
	b.Add(t0, t0, inBase)
	b.Ld(v, t0, 0)
	b.Andi(sym, v, tabWords-1)
	b.Shli(slot, sym, 3)
	b.Add(slot, slot, tabBase)
	b.Ld(rank, slot, 0)
	b.Xor(thr, rank, v)
	b.Andi(thr, thr, 7)
	b.Beq(thr, isa.RZero, "emit") // hard: p ≈ 1/8
	// Run extends: bump the run length and fold fresh input entropy into
	// the rank so the branch sequence never becomes periodic.
	b.Addi(runlen, runlen, 1)
	b.Shri(t0, rank, 1)
	b.Add(rank, t0, v)
	b.St(rank, slot, 0)
	b.Jmp("next")
	b.Label("emit")
	// Emit the run and reset.
	b.Shli(t0, outidx, 3)
	b.Add(t0, t0, outBase)
	b.St(runlen, t0, 0)
	b.Addi(outidx, outidx, 1)
	b.Andi(outidx, outidx, inWords-1)
	b.Li(runlen, 0)
	b.Add(rank, rank, v)
	b.St(rank, slot, 0)
	b.Label("next")
	// Entropy-coder state: interleaved serial ALU chains (feeds no branch).
	emitARXRound(b, e0, e1, e2, e3, t0, t1)
	// Recency bookkeeping: checksum and frequency model updates
	// (independent accumulator chains; none feeds a branch).
	b.Add(crc, crc, v)
	b.Shli(t0, crc, 1)
	b.Xor(crc, crc, t0)
	b.Addi(crc, crc, 0x9E)
	b.Add(freq, freq, rank)
	b.Shri(t0, freq, 6)
	b.Add(freq, freq, t0)
	b.Xori(freq, freq, 0x55)
	b.Sub(model, model, v)
	b.Shri(t0, model, 11)
	b.Xor(model, model, t0)
	b.Add(model, model, crc)
	b.Add(bits, bits, freq)
	b.Shli(t0, bits, 2)
	b.Xor(bits, bits, t0)
	b.Add(crc, crc, model)
	b.Shri(t0, crc, 9)
	b.Xor(crc, crc, t0)
	b.Addi(crc, crc, 0x61)
	b.Add(freq, freq, bits)
	b.Shli(t0, freq, 3)
	b.Xor(freq, freq, t0)
	b.Sub(model, model, freq)
	b.Shri(t0, model, 2)
	b.Add(model, model, t0)
	b.Xori(model, model, 0x19)
	b.Addi(i, i, 1)
	b.Blt(i, limit, "loop") // predictable backward branch
	b.Jmp("pass")
	return b.MustBuild()
}

// buildTreewalk models omnetpp/xalancbmk: repeated root-to-leaf walks of an
// 8 MB binary tree with data-dependent left/right decisions (p ≈ 0.5) and
// pointer-dependent loads. Hard branches *and* heavy LLC traffic — the
// paper predicts only a small PUBS benefit here.
func buildTreewalk() *isa.Program {
	const depth = 18
	const nodes = 1<<depth - 1 // 262143 nodes × 32 B = 8 MB
	b := asm.New("treewalk")
	r := newRNG(0x72EE)

	// Node layout: [key, leftByteAddr, rightByteAddr, payload]; leaves wrap
	// to the root. The tree is the first allocation, so its base is 0.
	arr := make([]uint64, nodes*4)
	const treeBase = 0
	for i := 0; i < nodes; i++ {
		l, rr := 2*i+1, 2*i+2
		if l >= nodes {
			l, rr = 0, 0
		}
		arr[i*4+0] = r.next()
		arr[i*4+1] = uint64(treeBase + l*32)
		arr[i*4+2] = uint64(treeBase + rr*32)
		arr[i*4+3] = r.next()
	}
	base := b.Words(arr...)
	if base != treeBase {
		panic("workload: treewalk base address moved")
	}

	st, t0, t1 := isa.R(3), isa.R(4), isa.R(5)
	cur, key, skey, d, dlim := isa.R(6), isa.R(7), isa.R(8), isa.R(9), isa.R(10)
	acc, visits := isa.R(20), isa.R(21)

	b.Li(st, 0x77A1C)
	b.Li(dlim, depth)

	b.Label("search")
	guestXorshift(b, st, t0)
	b.Mv(skey, st)
	b.Li(cur, treeBase)
	b.Li(d, 0)
	b.Label("step")
	b.Ld(key, cur, 0)
	// Fold the node key into the search key (rotate-xor). Without this a
	// fixed search key reaches only O(depth) distinct paths in an unsorted
	// tree; with it every level makes a fresh ~50/50 decision and the walk
	// covers the whole 8 MB footprint.
	b.Shli(t1, skey, 1)
	b.Shri(t0, skey, 63)
	b.Or(t1, t1, t0)
	b.Xor(skey, t1, key)
	// Per-node evaluation (independent of the direction decision).
	b.Add(acc, acc, key)
	b.Addi(visits, visits, 1)
	b.Blt(key, skey, "right") // hard: p ≈ 0.5
	b.Ld(cur, cur, 8)         // left child (pointer-dependent load)
	b.Jmp("desc")
	b.Label("right")
	b.Ld(cur, cur, 16) // right child
	b.Label("desc")
	b.Addi(d, d, 1)
	b.Blt(d, dlim, "step") // predictable inner loop
	b.Jmp("search")
	return b.MustBuild()
}

// buildSimplex models soplex: floating-point row reductions over an 8 MB
// matrix with a data-dependent sign test per element (p ≈ 0.08 taken) and
// a pivot decision per row. Memory-intensive and FP-heavy; the mode switch
// matters here (Fig. 12).
func buildSimplex() *isa.Program {
	b := asm.New("simplex")
	r := newRNG(0x50F1E)
	const rows = 8192
	const cols = 128 // 8192 × 128 × 8 B = 8 MB
	vals := make([]float64, rows*cols)
	for i := range vals {
		u := r.next()
		f := float64(u%1000000) / 1000.0
		if u%100 < 8 {
			f = -f // ~8% negative entries → data-dependent sign test
		}
		vals[i] = f
	}
	mat := b.Floats(vals...)
	consts := b.Floats(0.0, 1.5)

	base, rowp, i, colsR, rowsLeft := isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	t0, c, st := isa.R(7), isa.R(8), isa.R(9)
	fv, facc, fzero, fpiv := isa.F(1), isa.F(2), isa.F(3), isa.F(4)
	fprobe, fprice := isa.F(5), isa.F(6)

	b.Li(base, int64(mat))
	b.Li(colsR, cols)
	b.Li(st, 0x5071EF)
	b.Li(t0, int64(consts))
	b.Fld(fzero, t0, 0)
	b.Fld(fpiv, t0, 8)

	b.Label("restart")
	b.Mv(rowp, base)
	b.Li(rowsLeft, rows)
	b.Label("row")
	b.Li(i, 0)
	b.Fsub(facc, facc, facc) // facc = 0
	b.Label("elem")
	b.Shli(t0, i, 3)
	b.Add(t0, t0, rowp)
	b.Fld(fv, t0, 0)
	b.Fclt(c, fv, fzero)
	b.Bne(c, isa.RZero, "neg") // data-dependent: p ≈ 0.08
	b.Fadd(facc, facc, fv)
	b.Jmp("elem_next")
	b.Label("neg")
	b.Fsub(facc, facc, fv)
	b.Label("elem_next")
	b.Addi(i, i, 1)
	b.Blt(i, colsR, "elem") // predictable inner loop
	// Pivot decision: compare the row sum against the running pivot bound.
	b.Fclt(c, facc, fpiv)
	b.Bne(c, isa.RZero, "no_pivot") // hard-ish row-level branch
	b.Fadd(fpiv, fpiv, facc)
	b.Jmp("advance")
	b.Label("no_pivot")
	b.Fsub(fpiv, fpiv, facc)
	b.Label("advance")
	// Sparse pricing: a few scattered column probes per row. Random indices
	// into the 8 MB matrix defeat the prefetcher and keep soplex's LLC MPKI
	// above the memory-intensity threshold (these feed no branch).
	for p := 0; p < 4; p++ {
		guestXorshift(b, st, t0)
		b.Andi(t0, st, rows*cols-1)
		b.Shli(t0, t0, 3)
		b.Add(t0, t0, base)
		b.Fld(fprobe, t0, 0)
		b.Fadd(fprice, fprice, fprobe)
	}
	b.Addi(rowp, rowp, cols*8)
	b.Addi(rowsLeft, rowsLeft, -1)
	b.Bne(rowsLeft, isa.RZero, "row")
	b.Jmp("restart")
	return b.MustBuild()
}

// buildSparse models mcf: four independent pointer chases over a 16 MB node
// pool (64 B nodes on a Sattolo cycle, so every hop is a fresh line) with a
// data-dependent flag branch per hop (p ≈ 0.25). LLC MPKI is enormous and
// MLP is the performance lever — the program the mode switch exists for.
func buildSparse() *isa.Program {
	b := asm.New("sparse")
	r := newRNG(0x3CF0)
	const nodes = 262144 // 262144 × 64 B = 16 MB
	next := r.perm(nodes)
	arr := make([]uint64, nodes*8)
	const poolBase = 0
	for i := 0; i < nodes; i++ {
		arr[i*8+0] = uint64(poolBase + int(next[i])*64) // next pointer
		arr[i*8+1] = r.next()                           // flags
	}
	base := b.Words(arr...)
	if base != poolBase {
		panic("workload: sparse pool base moved")
	}

	p1, p2, p3, p4 := isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	f1, c1, t0 := isa.R(6), isa.R(7), isa.R(8)
	supply, demand := isa.R(20), isa.R(21)

	b.Li(p1, poolBase)
	b.Li(p2, poolBase+64*101)
	b.Li(p3, poolBase+64*50021)
	b.Li(p4, poolBase+64*200003)

	hop := func(p isa.Reg, tag string) {
		b.Ld(f1, p, 8) // flags (LLC miss)
		b.Andi(c1, f1, 3)
		b.Beq(c1, isa.RZero, "deficit_"+tag) // hard: p ≈ 0.25
		b.Add(supply, supply, f1)
		b.Jmp("chase_" + tag)
		b.Label("deficit_" + tag)
		b.Sub(demand, demand, f1)
		b.Label("chase_" + tag)
		b.Ld(p, p, 0) // follow the cycle
		b.Xor(t0, supply, demand)
		b.Addi(t0, t0, 1)
		b.Add(supply, supply, t0)
	}

	b.Label("top")
	hop(p1, "a")
	hop(p2, "b")
	hop(p3, "c")
	hop(p4, "d")
	b.Jmp("top")
	return b.MustBuild()
}
