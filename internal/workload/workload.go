// Package workload provides the synthetic benchmark suite that substitutes
// for the paper's SPEC CPU2006 programs (DESIGN.md §2/§5). Each program is a
// real ISA program with genuine dataflow: hard branches depend on loaded
// pseudo-random data through multi-instruction slices, so the PUBS slice
// tracker has real work to do. Programs run forever (outer loop); the
// simulator stops at its instruction budget.
//
// The suite spans the paper's two behavioural axes:
//
//   - branch difficulty (the D-BP threshold is 3.0 branch MPKI on the base
//     machine), and
//   - memory intensity (the paper colours programs by LLC MPKI ≥ 1.0).
package workload

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
)

// Info describes one benchmark.
type Info struct {
	Name     string
	Analogue string // the SPEC CPU2006 program whose behavioural class it models
	// HardBranches is the suite's design intent: whether the program should
	// land in the paper's D-BP set. Tests verify the intent against measured
	// branch MPKI on the base machine.
	HardBranches bool
	// MemIntensive is the design intent for LLC MPKI ≥ 1.0.
	MemIntensive bool
	Build        func() *isa.Program
}

var registry []Info

var (
	cacheMu sync.Mutex
	cache   = map[string]*isa.Program{}
)

func register(i Info) { registry = append(registry, i) }

// All returns every benchmark, sorted by name.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the benchmark names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// ByName looks a benchmark up.
func ByName(name string) (Info, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Info{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}

// Program returns the (cached) built program for a benchmark. Programs are
// immutable after build — the emulator copies the data image — so sharing
// is safe.
func Program(name string) (*isa.Program, error) {
	w, err := ByName(name)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := cache[name]; ok {
		return p, nil
	}
	p := w.Build()
	cache[name] = p
	return p, nil
}

// MustProgram is Program, panicking on error.
func MustProgram(name string) *isa.Program {
	p, err := Program(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Hard returns the benchmarks designed to be D-BP, sorted by name.
func Hard() []Info {
	var out []Info
	for _, w := range All() {
		if w.HardBranches {
			out = append(out, w)
		}
	}
	return out
}

// Easy returns the benchmarks designed to be E-BP, sorted by name.
func Easy() []Info {
	var out []Info
	for _, w := range All() {
		if !w.HardBranches {
			out = append(out, w)
		}
	}
	return out
}

// rng is the deterministic xorshift64* generator used to fill data images.
type rng uint64

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}

// words returns n pseudo-random 64-bit words.
func (r *rng) words(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.next()
	}
	return out
}

// perm returns a single-cycle permutation of 0..n-1 (Sattolo's algorithm),
// so pointer chases visit every element before repeating.
func (r *rng) perm(n int) []uint64 {
	p := make([]uint64, n)
	for i := range p {
		p[i] = uint64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.next() % uint64(i)) // 0 <= j < i: Sattolo, not Fisher-Yates
		p[i], p[j] = p[j], p[i]
	}
	return p
}
