package lsq

import (
	"testing"
	"testing/quick"
)

func TestAllocAndCapacity(t *testing.T) {
	q := New(2)
	if !q.Alloc(Entry{Handle: 1, Seq: 1}) || !q.Alloc(Entry{Handle: 2, Seq: 2}) {
		t.Fatal("alloc failed")
	}
	if q.Alloc(Entry{Handle: 3, Seq: 3}) {
		t.Error("full LSQ accepted an entry")
	}
	if !q.Full() || q.Len() != 2 || q.Cap() != 2 {
		t.Error("capacity accounting wrong")
	}
}

func TestForwardingYoungestOlderStore(t *testing.T) {
	q := New(8)
	q.Alloc(Entry{Handle: 1, Seq: 1, IsStore: true, Addr: 0x100})
	q.Alloc(Entry{Handle: 2, Seq: 2, IsStore: true, Addr: 0x200})
	q.Alloc(Entry{Handle: 3, Seq: 3, IsStore: true, Addr: 0x100}) // younger dup
	q.Alloc(Entry{Handle: 4, Seq: 4, IsStore: false, Addr: 0x100})

	e, ok := q.ForwardFrom(4, 0x100)
	if !ok || e.Handle != 3 {
		t.Errorf("forward = %+v,%v; want the youngest older store (3)", e, ok)
	}
	// A load older than both stores sees nothing.
	if _, ok := q.ForwardFrom(1, 0x100); ok {
		t.Error("load forwarded from a younger store")
	}
	// Different address: nothing.
	if _, ok := q.ForwardFrom(4, 0x300); ok {
		t.Error("forwarded across addresses")
	}
	// Loads never forward.
	q.Alloc(Entry{Handle: 5, Seq: 5, IsStore: false, Addr: 0x400})
	if _, ok := q.ForwardFrom(6, 0x400); ok {
		t.Error("forwarded from a load")
	}
}

func TestPopInOrder(t *testing.T) {
	q := New(4)
	q.Alloc(Entry{Handle: 7, Seq: 1})
	q.Alloc(Entry{Handle: 8, Seq: 2})
	if e, ok := q.Head(); !ok || e.Handle != 7 {
		t.Errorf("head = %+v,%v", e, ok)
	}
	q.Pop(7)
	q.Pop(8)
	if q.Len() != 0 {
		t.Error("len after pops")
	}
	if _, ok := q.Head(); ok {
		t.Error("empty head")
	}
}

func TestOutOfOrderPopPanics(t *testing.T) {
	q := New(4)
	q.Alloc(Entry{Handle: 1, Seq: 1})
	q.Alloc(Entry{Handle: 2, Seq: 2})
	defer func() {
		if recover() == nil {
			t.Error("out-of-order pop should panic")
		}
	}()
	q.Pop(2)
}

func TestEmptyPopPanics(t *testing.T) {
	q := New(4)
	defer func() {
		if recover() == nil {
			t.Error("empty pop should panic")
		}
	}()
	q.Pop(0)
}

// Property: ForwardFrom returns a store strictly older than the query and
// with the exact address, across random queue contents (wrap-around
// included).
func TestQuickForwardInvariant(t *testing.T) {
	q := New(16)
	seq := uint64(0)
	f := func(ops []byte) bool {
		for _, op := range ops {
			seq++
			switch op % 3 {
			case 0, 1:
				q.Alloc(Entry{
					Handle:  int(seq),
					Seq:     seq,
					IsStore: op%2 == 0,
					Addr:    uint64(op%8) * 8,
				})
			case 2:
				if e, ok := q.Head(); ok {
					q.Pop(e.Handle)
				}
			}
			e, ok := q.ForwardFrom(seq+1, uint64(op%8)*8)
			if ok && (!e.IsStore || e.Seq > seq || e.Addr != uint64(op%8)*8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
