// Package lsq implements the load/store queue: an age-ordered ring of
// memory operations supporting store-to-load forwarding lookups (Table I:
// 64 entries). Effective addresses are registered at dispatch — the
// trace-driven timing model knows them architecturally, which amounts to
// perfect memory-dependence prediction (documented in DESIGN.md §6).
//
// Like the ROB, the LSQ never observes the cycle counter — it changes only
// on Alloc/Pop calls from active pipeline stages, and ForwardFrom is a
// pure lookup — so it is trivially skip-invariant under the idle-cycle
// skip (DESIGN.md §14).
package lsq

import (
	"fmt"

	"repro/internal/simerr"
)

// Entry is one queued memory operation.
type Entry struct {
	Handle  int
	Seq     uint64
	IsStore bool
	Addr    uint64 // 8-byte aligned effective address
}

// LSQ is a bounded age-ordered queue of loads and stores.
type LSQ struct {
	entries []Entry
	head    int
	count   int
}

// New returns an LSQ with the given capacity.
func New(capacity int) *LSQ {
	if capacity <= 0 {
		panic("lsq: capacity must be positive")
	}
	return &LSQ{entries: make([]Entry, capacity)}
}

// Cap returns the capacity.
func (q *LSQ) Cap() int { return len(q.entries) }

// Len returns the number of live entries.
func (q *LSQ) Len() int { return q.count }

// Full reports whether allocation would fail.
func (q *LSQ) Full() bool { return q.count == len(q.entries) }

// Reset empties the queue.
func (q *LSQ) Reset() {
	q.head = 0
	q.count = 0
}

// Alloc appends a memory operation in program order. Seq values must be
// strictly increasing across calls.
func (q *LSQ) Alloc(e Entry) bool {
	if q.Full() {
		return false
	}
	q.entries[(q.head+q.count)%len(q.entries)] = e
	q.count++
	return true
}

// ForwardFrom returns the youngest store older than seq with the same
// 8-byte-aligned address, if any — the store-to-load forwarding source.
func (q *LSQ) ForwardFrom(seq uint64, addr uint64) (Entry, bool) {
	var best Entry
	found := false
	for i := 0; i < q.count; i++ {
		e := q.entries[(q.head+i)%len(q.entries)]
		if e.Seq >= seq {
			break // age order: nothing older further on
		}
		if e.IsStore && e.Addr == addr {
			best = e
			found = true // keep scanning: later matches are younger
		}
	}
	return best, found
}

// Pop retires the oldest entry, which must carry the expected handle —
// memory operations leave the LSQ in program order at commit.
func (q *LSQ) Pop(expectHandle int) {
	if q.count == 0 {
		panic("lsq: pop from empty queue")
	}
	if q.entries[q.head].Handle != expectHandle {
		panic("lsq: out-of-order pop")
	}
	q.head = (q.head + 1) % len(q.entries)
	q.count--
}

// Head returns the oldest entry without removing it.
func (q *LSQ) Head() (Entry, bool) {
	if q.count == 0 {
		return Entry{}, false
	}
	return q.entries[q.head], true
}

// CheckInvariants audits the ring state: occupancy within capacity, head
// within range, and the age order ForwardFrom depends on (strictly
// increasing Seq from head to tail). Violations wrap simerr.ErrInvariant.
func (q *LSQ) CheckInvariants() error {
	if q.count < 0 || q.count > len(q.entries) {
		return fmt.Errorf("%w: lsq: occupancy %d outside [0,%d]", simerr.ErrInvariant, q.count, len(q.entries))
	}
	if q.head < 0 || q.head >= len(q.entries) {
		return fmt.Errorf("%w: lsq: head %d outside [0,%d)", simerr.ErrInvariant, q.head, len(q.entries))
	}
	for i := 1; i < q.count; i++ {
		prev := q.entries[(q.head+i-1)%len(q.entries)]
		cur := q.entries[(q.head+i)%len(q.entries)]
		if cur.Seq <= prev.Seq {
			return fmt.Errorf("%w: lsq: age order broken at offset %d (seq %d after %d)",
				simerr.ErrInvariant, i, cur.Seq, prev.Seq)
		}
	}
	return nil
}
