// Package cache implements the simulated memory hierarchy: set-associative
// write-back caches with true-LRU replacement and MSHR-based non-blocking
// misses, and a main memory with a fixed minimum latency plus a finite
// bandwidth bus (Table I: L1I/L1D 32KB 8-way, L2 2MB 16-way 12-cycle,
// memory 300-cycle minimum latency at 8 B/cycle).
//
// Timing is modelled with deterministic latency propagation: an access at
// cycle `now` returns the cycle its data is available, accounting for hit
// latency, MSHR occupancy and merging, and memory bus contention.
//
// This makes the whole hierarchy event-driven by construction, which the
// pipeline's idle-cycle skip (DESIGN.md §14) depends on: state changes
// only inside Access/WriteBack calls, and time enters only as the `now`
// argument compared against absolute-cycle thresholds (line readyAt, MSHR
// completion, bus busy-until). A span of cycles with no accesses leaves
// the hierarchy byte-identical, so skipped (provably access-free) spans
// need no cache ticking — prefetches included, since they are issued from
// inside demand accesses, never from a timer.
//
// Threshold publication (DESIGN.md §14.1): every future cycle at which the
// hierarchy's answer to a caller changes is *returned* to that caller as
// an absolute cycle (`done` from Access) at the moment it is decided —
// nothing in here schedules a state change without handing its cycle back.
// The pipeline pushes those cycles into its event-heap wakeup index as it
// receives them (I-line fills, load completions), which is what makes the
// heap's superset invariant hold for the memory system: a threshold that
// was never returned cannot exist, so none can be missing from the heap.
package cache

import "fmt"

// Level is one level of the hierarchy (a cache or main memory).
type Level interface {
	// Access requests the line containing addr at cycle now and returns the
	// cycle the data is available. Write accesses allocate like reads
	// (write-allocate) and mark the line dirty.
	Access(addr uint64, now int64, write bool) (done int64)
	// WriteBack delivers an evicted dirty line. It consumes bandwidth but
	// the caller never waits on it.
	WriteBack(addr uint64, now int64)
	// LineBytes returns the line size.
	LineBytes() int
}

// Prefetcher observes demand misses at the level it is attached to and
// nominates line addresses to prefetch. Implementations live in
// internal/prefetch.
type Prefetcher interface {
	// OnMiss is called with the line-aligned byte address of a demand miss
	// and returns line-aligned addresses to prefetch. The returned slice may
	// alias a buffer the prefetcher reuses; callers must consume it before
	// the next OnMiss call.
	OnMiss(lineAddr uint64) []uint64
}

// Config sizes one cache.
type Config struct {
	Name      string
	Sets      int // power of two
	Ways      int
	LineBytes int   // power of two
	HitLat    int64 // cycles
	MSHRs     int   // max outstanding misses; 0 = unlimited
}

// Stats counts cache events.
type Stats struct {
	Accesses      uint64
	Misses        uint64 // demand misses (including late prefetches)
	MSHRMerges    uint64 // demand accesses merged into an outstanding miss
	Writebacks    uint64
	PrefetchReqs  uint64 // prefetches issued from this level
	PrefetchFills uint64 // lines installed by prefetch
	PrefetchHits  uint64 // demand hits on prefetched lines
	PrefetchLate  uint64 // demand hits on prefetched lines still in flight;
	// the demand access is partially exposed, so these also count as Misses
}

// Add accumulates another run's cache counters into s (plain field sums,
// order-independent — the sampled-window merge relies on this).
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Misses += o.Misses
	s.MSHRMerges += o.MSHRMerges
	s.Writebacks += o.Writebacks
	s.PrefetchReqs += o.PrefetchReqs
	s.PrefetchFills += o.PrefetchFills
	s.PrefetchHits += o.PrefetchHits
	s.PrefetchLate += o.PrefetchLate
}

type line struct {
	gen        uint64 // live iff equal to Cache.gen; bumping gen invalidates all lines at once
	dirty      bool
	prefetched bool // installed by prefetch, not yet demand-touched
	tag        uint64
	lru        uint64
	readyAt    int64 // cycle the fill completes; hits before this wait
}

type mshr struct {
	lineAddr uint64
	done     int64
}

// Cache is one set-associative level.
type Cache struct {
	cfg      Config
	lines    []line
	next     Level
	tick     uint64
	gen      uint64 // current line generation; starts at 1 so zeroed lines are invalid
	lineBits uint
	mshrs    []mshr
	pf       Prefetcher
	stats    Stats
}

// New builds a cache in front of next.
func New(cfg Config, next Level) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets must be a positive power of two", cfg.Name))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", cfg.Name))
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size must be a positive power of two", cfg.Name))
	}
	if next == nil {
		panic(fmt.Sprintf("cache %s: next level required", cfg.Name))
	}
	c := &Cache{
		cfg:   cfg,
		lines: make([]line, cfg.Sets*cfg.Ways),
		next:  next,
		gen:   1,
	}
	for cfg.LineBytes>>c.lineBits > 1 {
		c.lineBits++
	}
	return c
}

// SetPrefetcher attaches a prefetcher that observes this level's demand
// misses (the paper prefetches into the L2).
func (c *Cache) SetPrefetcher(p Prefetcher) { c.pf = p }

// Reset invalidates every line, drops outstanding misses, and zeroes the
// counters, returning the level (and its prefetcher, if it supports Reset)
// to the freshly-constructed state. The next level is NOT reset; callers
// reset each level of a hierarchy explicitly.
func (c *Cache) Reset() {
	// O(1) in the line array: bumping the generation invalidates every
	// line without touching it — Reset is on the pooled-simulator
	// per-window path, and clearing a multi-MiB LLC there costs more than
	// a short window's detailed simulation.
	c.gen++
	c.mshrs = c.mshrs[:0]
	c.tick = 0
	c.stats = Stats{}
	if r, ok := c.pf.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// Stats returns a pointer to the live counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// LineBytes implements Level.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// SizeBytes returns total data capacity.
func (c *Cache) SizeBytes() int { return c.cfg.Sets * c.cfg.Ways * c.cfg.LineBytes }

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

func (c *Cache) row(lineAddr uint64) (base int, tag uint64) {
	idx := (lineAddr >> c.lineBits) & uint64(c.cfg.Sets-1)
	return int(idx) * c.cfg.Ways, (lineAddr >> c.lineBits) / uint64(c.cfg.Sets)
}

func (c *Cache) purgeMSHRs(now int64) {
	out := c.mshrs[:0]
	for _, m := range c.mshrs {
		if m.done > now {
			out = append(out, m)
		}
	}
	c.mshrs = out
}

// Access implements Level.
func (c *Cache) Access(addr uint64, now int64, write bool) int64 {
	c.stats.Accesses++
	la := c.lineAddr(addr)
	base, tag := c.row(la)
	c.tick++

	// Hit?
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.gen == c.gen && ln.tag == tag {
			ln.lru = c.tick
			if write {
				ln.dirty = true
			}
			done := now + c.cfg.HitLat
			if ln.readyAt > done {
				done = ln.readyAt // fill still in flight: wait for it
				if !ln.prefetched {
					c.stats.MSHRMerges++ // demand access folded into the fill
				}
			}
			if ln.prefetched {
				ln.prefetched = false
				c.stats.PrefetchHits++
				if ln.readyAt > now {
					// Late prefetch: the demand access is partially exposed
					// to memory latency, so it counts as a miss for the
					// paper's memory-intensity metric.
					c.stats.PrefetchLate++
					c.stats.Misses++
				}
				// A demand hit on a prefetched line keeps the stream alive:
				// without this, successful prefetching starves its own
				// training misses and coverage oscillates.
				if c.pf != nil {
					for _, pla := range c.pf.OnMiss(la) {
						c.prefetch(pla, now+c.cfg.HitLat)
					}
				}
			}
			return done
		}
	}

	// Merged into an outstanding miss?
	c.purgeMSHRs(now)
	for i := range c.mshrs {
		if c.mshrs[i].lineAddr == la {
			c.stats.MSHRMerges++
			// The line is already installed (fill modelled at request time);
			// the merged access completes when the original fill does.
			return c.mshrs[i].done
		}
	}

	c.stats.Misses++

	// MSHR structural hazard: wait for the earliest outstanding fill.
	start := now
	if c.cfg.MSHRs > 0 && len(c.mshrs) >= c.cfg.MSHRs {
		earliest := c.mshrs[0].done
		for _, m := range c.mshrs[1:] {
			if m.done < earliest {
				earliest = m.done
			}
		}
		if earliest > start {
			start = earliest
		}
		c.purgeMSHRs(start)
	}

	done := c.next.Access(la, start+c.cfg.HitLat, false)
	ln := c.install(la, write, done)
	ln.readyAt = done
	c.mshrs = append(c.mshrs, mshr{lineAddr: la, done: done})

	// Demand miss trains the prefetcher; prefetches ride the bus after the
	// demand fill and never delay it.
	if c.pf != nil {
		for _, pla := range c.pf.OnMiss(la) {
			c.prefetch(pla, done)
		}
	}
	return done
}

// install places the line, evicting (and writing back) the LRU way.
func (c *Cache) install(la uint64, dirty bool, now int64) *line {
	base, tag := c.row(la)
	c.tick++
	victim := base
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.gen == c.gen && ln.tag == tag {
			ln.lru = c.tick
			if dirty {
				ln.dirty = true
			}
			return ln
		}
		if ln.gen != c.gen {
			victim = base + i
			break
		}
		if ln.lru < c.lines[victim].lru {
			victim = base + i
		}
	}
	v := &c.lines[victim]
	if v.gen == c.gen && v.dirty {
		c.stats.Writebacks++
		c.next.WriteBack(c.victimAddr(victim), now)
	}
	*v = line{gen: c.gen, dirty: dirty, tag: tag, lru: c.tick}
	return v
}

// victimAddr reconstructs the byte address of the line in slot i.
func (c *Cache) victimAddr(slot int) uint64 {
	set := uint64(slot / c.cfg.Ways)
	ln := c.lines[slot]
	return (ln.tag*uint64(c.cfg.Sets) + set) << c.lineBits
}

// prefetch fetches la into this cache if absent and not already in flight.
func (c *Cache) prefetch(la uint64, now int64) {
	base, tag := c.row(la)
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.gen == c.gen && ln.tag == tag {
			return // already present
		}
	}
	for _, m := range c.mshrs {
		if m.lineAddr == la {
			return // already in flight
		}
	}
	c.stats.PrefetchReqs++
	done := c.next.Access(la, now, false)
	ln := c.install(la, false, done)
	ln.prefetched = true
	ln.readyAt = done
	c.stats.PrefetchFills++
	c.mshrs = append(c.mshrs, mshr{lineAddr: la, done: done})
}

// WriteBack implements Level: a dirty line arriving from the level above is
// absorbed if present, otherwise passed down. The caller never waits.
func (c *Cache) WriteBack(addr uint64, now int64) {
	la := c.lineAddr(addr)
	base, tag := c.row(la)
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.gen == c.gen && ln.tag == tag {
			ln.dirty = true
			return
		}
	}
	c.next.WriteBack(la, now)
}

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	base, tag := c.row(la)
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.gen == c.gen && ln.tag == tag {
			return true
		}
	}
	return false
}

// Memory is the DRAM model: fixed minimum latency, finite-bandwidth bus.
type Memory struct {
	Latency       int64 // minimum access latency (Table I: 300)
	LineBytes_    int
	BytesPerCycle int64 // bus bandwidth (Table I: 8)
	busFree       int64
	accesses      uint64
}

// NewMemory returns the paper's main memory: 300-cycle minimum latency,
// 8 B/cycle bandwidth, 64 B lines.
func NewMemory() *Memory {
	return &Memory{Latency: 300, LineBytes_: 64, BytesPerCycle: 8}
}

func (m *Memory) transfer() int64 {
	return int64(m.LineBytes_) / m.BytesPerCycle
}

// Access implements Level: the request occupies the bus for one line
// transfer and completes after the access latency.
func (m *Memory) Access(addr uint64, now int64, write bool) int64 {
	m.accesses++
	start := now
	if m.busFree > start {
		start = m.busFree
	}
	m.busFree = start + m.transfer()
	return start + m.Latency
}

// WriteBack implements Level: consumes one line transfer of bus bandwidth.
func (m *Memory) WriteBack(addr uint64, now int64) {
	start := now
	if m.busFree > start {
		start = m.busFree
	}
	m.busFree = start + m.transfer()
}

// LineBytes implements Level.
func (m *Memory) LineBytes() int { return m.LineBytes_ }

// Accesses returns the number of line fetches served.
func (m *Memory) Accesses() uint64 { return m.accesses }

// Reset frees the bus and zeroes the access counter.
func (m *Memory) Reset() {
	m.busFree = 0
	m.accesses = 0
}
