package cache

import (
	"testing"
	"testing/quick"
)

func l1(next Level) *Cache {
	return New(Config{Name: "L1", Sets: 8, Ways: 2, LineBytes: 64, HitLat: 2, MSHRs: 4}, next)
}

func TestMemoryLatencyAndBus(t *testing.T) {
	m := NewMemory()
	d1 := m.Access(0, 100, false)
	if d1 != 400 {
		t.Errorf("first access done at %d, want 400", d1)
	}
	// Second access issued the same cycle queues behind one line transfer
	// (64 B / 8 B-per-cycle = 8 cycles).
	d2 := m.Access(64, 100, false)
	if d2 != 408 {
		t.Errorf("second access done at %d, want 408", d2)
	}
	if m.Accesses() != 2 {
		t.Errorf("accesses = %d", m.Accesses())
	}
}

func TestHitAndMissLatency(t *testing.T) {
	c := l1(NewMemory())
	miss := c.Access(0x100, 0, false)
	if miss <= 300 {
		t.Errorf("cold miss done at %d; must include memory latency", miss)
	}
	hit := c.Access(0x108, miss, false) // same line, after fill
	if hit != miss+2 {
		t.Errorf("hit done at %d, want now+2", hit)
	}
	if st := c.Stats(); st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInFlightHitWaits(t *testing.T) {
	c := l1(NewMemory())
	fill := c.Access(0x100, 0, false)
	// A hit to the same line before the fill completes must wait for it.
	early := c.Access(0x108, 5, false)
	if early < fill {
		t.Errorf("hit on in-flight line done at %d, before fill at %d", early, fill)
	}
}

func TestMSHRMerge(t *testing.T) {
	c := l1(NewMemory())
	d1 := c.Access(0x200, 0, false)
	d2 := c.Access(0x200, 1, false) // same line while outstanding
	if d2 != d1 {
		t.Errorf("merged access done at %d, want %d", d2, d1)
	}
	if st := c.Stats(); st.MSHRMerges != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMSHRStructuralLimit(t *testing.T) {
	c := l1(NewMemory())
	var last int64
	// 4 MSHRs: the 5th distinct miss at cycle 0 must start later.
	for i := 0; i < 4; i++ {
		last = c.Access(uint64(i)*0x1000, 0, false)
	}
	d5 := c.Access(4*0x1000, 0, false)
	if d5 <= last {
		t.Errorf("5th miss (%d) did not wait for an MSHR (last fill %d)", d5, last)
	}
}

func TestLRUEviction(t *testing.T) {
	c := l1(NewMemory())
	// Set 0 (2 ways): lines at stride sets*64 = 512.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, 0, false)
	c.Access(b, 1000, false)
	c.Access(a, 2000, false) // touch a: b becomes LRU
	c.Access(d, 3000, false) // evicts b
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("resident lines missing")
	}
	if c.Contains(b) {
		t.Error("LRU line not evicted")
	}
}

func TestWritebackPath(t *testing.T) {
	mem := NewMemory()
	c := l1(mem)
	c.Access(0, 0, true) // dirty line in set 0
	c.Access(512, 1000, false)
	c.Access(1024, 2000, false) // evicts dirty line 0 → writeback
	if st := c.Stats(); st.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestWriteBackAbsorbed(t *testing.T) {
	mem := NewMemory()
	l2 := New(Config{Name: "L2", Sets: 64, Ways: 4, LineBytes: 64, HitLat: 12}, mem)
	c := l1(l2)
	c.Access(0x40, 0, true) // allocate in both levels, dirty in L1
	// L1 victim arrives at L2, which holds the line: absorbed, not passed on.
	before := mem.Accesses()
	c.WriteBack(0x40, 100)
	_ = before
	if !l2.Contains(0x40) {
		t.Error("L2 lost the line")
	}
}

func TestLatePrefetchCountsAsMiss(t *testing.T) {
	mem := NewMemory()
	c := New(Config{Name: "L2", Sets: 64, Ways: 4, LineBytes: 64, HitLat: 12}, mem)
	c.SetPrefetcher(fixedPF{lines: []uint64{0x1000}})
	c.Access(0x40, 0, false) // demand miss triggers prefetch of 0x1000
	st := c.Stats()
	if st.PrefetchReqs != 1 || st.PrefetchFills != 1 {
		t.Fatalf("prefetch not issued: %+v", st)
	}
	missesBefore := st.Misses
	// Demand access to the prefetched line while its fill is in flight.
	done := c.Access(0x1000, 5, false)
	if done <= 5+12 {
		t.Errorf("late-prefetch hit done at %d; must wait for the fill", done)
	}
	if st.PrefetchLate != 1 || st.Misses != missesBefore+1 {
		t.Errorf("late prefetch not accounted as miss: %+v", st)
	}
	// A second access long after the fill is a clean hit.
	if d := c.Access(0x1000, 10_000, false); d != 10_012 {
		t.Errorf("late hit = %d, want 10012", d)
	}
	if st.PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d, want 1 (counted once)", st.PrefetchHits)
	}
}

type fixedPF struct{ lines []uint64 }

func (f fixedPF) OnMiss(uint64) []uint64 { return f.lines }

func TestConfigValidation(t *testing.T) {
	mem := NewMemory()
	bad := []Config{
		{Name: "sets", Sets: 3, Ways: 1, LineBytes: 64},
		{Name: "ways", Sets: 4, Ways: 0, LineBytes: 64},
		{Name: "line", Sets: 4, Ways: 1, LineBytes: 60},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s should panic", cfg.Name)
				}
			}()
			New(cfg, mem)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil next level should panic")
			}
		}()
		New(Config{Name: "n", Sets: 4, Ways: 1, LineBytes: 64}, nil)
	}()
}

func TestSizeBytes(t *testing.T) {
	c := New(Config{Name: "c", Sets: 64, Ways: 8, LineBytes: 64, HitLat: 2}, NewMemory())
	if c.SizeBytes() != 32*1024 {
		t.Errorf("size = %d, want 32 KB", c.SizeBytes())
	}
	if c.LineBytes() != 64 {
		t.Error("line size wrong")
	}
}

// Property: an access immediately after any access to the same address is a
// hit completing at now+hitLat once the fill is done, regardless of the
// address pattern that preceded it.
func TestQuickHitAfterFill(t *testing.T) {
	c := New(Config{Name: "q", Sets: 16, Ways: 4, LineBytes: 64, HitLat: 2, MSHRs: 8}, NewMemory())
	now := int64(0)
	f := func(addr uint32, write bool) bool {
		a := uint64(addr)
		done := c.Access(a, now, write)
		if done < now {
			return false
		}
		now = done + 1
		hit := c.Access(a, now, false)
		ok := hit == now+2 && c.Contains(a)
		now = hit + 1
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: timing is monotone — a level never completes an access before
// it was issued.
func TestQuickMonotoneTiming(t *testing.T) {
	mem := NewMemory()
	l2 := New(Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 64, HitLat: 12, MSHRs: 8}, mem)
	c := New(Config{Name: "L1", Sets: 8, Ways: 2, LineBytes: 64, HitLat: 2, MSHRs: 4}, l2)
	now := int64(0)
	f := func(addr uint32, dt uint8, write bool) bool {
		now += int64(dt)
		done := c.Access(uint64(addr), now, write)
		return done >= now
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
