package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labelled horizontal bars in plain text — enough to *see*
// Fig. 8-style results in a terminal. Negative values extend left of the
// zero axis.
type BarChart struct {
	Title string
	Unit  string
	rows  []barRow
}

type barRow struct {
	label string
	value float64
	note  string
}

// NewBarChart creates an empty chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit}
}

// Bar appends one bar with an optional note rendered after the value.
func (c *BarChart) Bar(label string, value float64, note string) {
	c.rows = append(c.rows, barRow{label, value, note})
}

// String renders the chart with a shared scale across bars.
func (c *BarChart) String() string {
	const width = 40 // character cells for the largest magnitude
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	maxMag, maxLabel := 0.0, 0
	anyNeg := false
	for _, r := range c.rows {
		maxMag = math.Max(maxMag, math.Abs(r.value))
		if len(r.label) > maxLabel {
			maxLabel = len(r.label)
		}
		if r.value < 0 {
			anyNeg = true
		}
	}
	if maxMag == 0 {
		maxMag = 1
	}
	negWidth := 0
	if anyNeg {
		negWidth = width / 2
	}
	for _, r := range c.rows {
		cells := int(math.Round(math.Abs(r.value) / maxMag * float64(width-negWidth)))
		if r.value != 0 && cells == 0 {
			cells = 1
		}
		fmt.Fprintf(&sb, "%-*s ", maxLabel, r.label)
		if anyNeg {
			if r.value < 0 {
				neg := min(cells, negWidth)
				sb.WriteString(strings.Repeat(" ", negWidth-neg))
				sb.WriteString(strings.Repeat("▒", neg))
			} else {
				sb.WriteString(strings.Repeat(" ", negWidth))
			}
			sb.WriteString("│")
		}
		if r.value >= 0 {
			sb.WriteString(strings.Repeat("█", cells))
		}
		fmt.Fprintf(&sb, " %.2f%s", r.value, c.Unit)
		if r.note != "" {
			sb.WriteString("  " + r.note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Scatter renders an x/y point cloud on a character grid (Fig. 9 style).
type Scatter struct {
	Title, XLabel, YLabel string
	pts                   []scatterPt
}

type scatterPt struct {
	x, y float64
	mark rune
}

// NewScatter creates an empty scatter plot.
func NewScatter(title, xlabel, ylabel string) *Scatter {
	return &Scatter{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Point adds one point with the given mark rune.
func (s *Scatter) Point(x, y float64, mark rune) {
	s.pts = append(s.pts, scatterPt{x, y, mark})
}

// String renders the plot on a 60×16 grid.
func (s *Scatter) String() string {
	const w, h = 60, 16
	if len(s.pts) == 0 {
		return s.Title + "\n(no points)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s.pts {
		minX, maxX = math.Min(minX, p.x), math.Max(maxX, p.x)
		minY, maxY = math.Min(minY, p.y), math.Max(maxY, p.y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	for _, p := range s.pts {
		cx := int(math.Round((p.x - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((p.y - minY) / (maxY - minY) * float64(h-1)))
		grid[h-1-cy][cx] = p.mark
	}
	var sb strings.Builder
	if s.Title != "" {
		sb.WriteString(s.Title)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%s (top %.2f, bottom %.2f)\n", s.YLabel, maxY, minY)
	for _, row := range grid {
		sb.WriteString("│")
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	sb.WriteString("└" + strings.Repeat("─", w) + "\n")
	fmt.Fprintf(&sb, " %s: %.2f … %.2f\n", s.XLabel, minX, maxX)
	return sb.String()
}

// Series renders one or more named line series over a shared integer X axis
// (Fig. 10/11 style), as aligned columns plus a sparkline per series.
type Series struct {
	Title  string
	XName  string
	xs     []string
	series []namedSeries
}

type namedSeries struct {
	name string
	ys   []float64
}

// NewSeries creates an empty series plot with the given X-axis labels.
func NewSeries(title, xname string, xs ...string) *Series {
	return &Series{Title: title, XName: xname, xs: xs}
}

// Add appends one series; ys must match the X-axis length.
func (s *Series) Add(name string, ys ...float64) *Series {
	if len(ys) != len(s.xs) {
		panic(fmt.Sprintf("stats: series %q has %d points for %d x values", name, len(ys), len(s.xs)))
	}
	s.series = append(s.series, namedSeries{name, ys})
	return s
}

// sparkRunes are the eight block heights used for sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkline(ys []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		lo, hi = math.Min(lo, y), math.Max(hi, y)
	}
	if hi == lo {
		hi = lo + 1
	}
	out := make([]rune, len(ys))
	for i, y := range ys {
		idx := int((y - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// String renders the table + sparklines.
func (s *Series) String() string {
	t := NewTable(s.Title, append([]string{s.XName}, names(s.series)...)...)
	for i, x := range s.xs {
		cells := []any{x}
		for _, ns := range s.series {
			cells = append(cells, ns.ys[i])
		}
		t.Row(cells...)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	for _, ns := range s.series {
		fmt.Fprintf(&sb, "%-12s %s\n", ns.name, sparkline(ns.ys))
	}
	return sb.String()
}

func names(ss []namedSeries) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
