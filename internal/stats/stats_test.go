package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSimDerivedMetrics(t *testing.T) {
	s := Sim{
		Cycles:       1000,
		Committed:    2000,
		CondBranches: 100,
		Mispredicts:  25,
		LLCMisses:    10,
	}
	if s.IPC() != 2.0 {
		t.Errorf("IPC = %f", s.IPC())
	}
	if s.BranchMPKI() != 12.5 {
		t.Errorf("branch MPKI = %f", s.BranchMPKI())
	}
	if s.LLCMPKI() != 5.0 {
		t.Errorf("LLC MPKI = %f", s.LLCMPKI())
	}
	if s.MispredictRate() != 0.25 {
		t.Errorf("mispredict rate = %f", s.MispredictRate())
	}
}

func TestUnconfidentRatePrefersDecodeCounts(t *testing.T) {
	s := Sim{CondBranches: 10, UnconfBranches: 8, DecodedBranches: 16}
	if s.UnconfidentRate() != 0.5 {
		t.Errorf("rate = %f, want 0.5 (decode-side)", s.UnconfidentRate())
	}
	s.DecodedBranches = 0
	if s.UnconfidentRate() != 0.8 {
		t.Errorf("fallback rate = %f", s.UnconfidentRate())
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	var s Sim
	for _, v := range []float64{s.IPC(), s.BranchMPKI(), s.LLCMPKI(), s.MispredictRate(), s.UnconfidentRate()} {
		if v != 0 {
			t.Error("zero stats must yield zero metrics")
		}
	}
}

func TestReset(t *testing.T) {
	s := Sim{Cycles: 5, Committed: 5}
	s.Reset()
	if s.Cycles != 0 || s.Committed != 0 {
		t.Error("reset incomplete")
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 1 {
		t.Error("empty geomean should be 1")
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %f, want 4", g)
	}
	if g := Geomean([]float64{1.1, 1.1, 1.1}); math.Abs(g-1.1) > 1e-12 {
		t.Errorf("geomean = %f", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive values should panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestSpeedup(t *testing.T) {
	if Speedup(1.0, 1.078) < 7.7 || Speedup(1.0, 1.078) > 7.9 {
		t.Errorf("speedup = %f", Speedup(1.0, 1.078))
	}
	if Speedup(0, 5) != 0 {
		t.Error("zero base should be safe")
	}
	if Speedup(2, 1) != -50 {
		t.Errorf("slowdown = %f", Speedup(2, 1))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 2, 9, -3} {
		h.Add(v)
	}
	if h.Total() != 6 || h.Overflow() != 1 {
		t.Errorf("total=%d overflow=%d", h.Total(), h.Overflow())
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 2 || h.Buckets[2] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("median = %d", q)
	}
	if m := h.Mean(); m < 1 || m > 2 {
		t.Errorf("mean = %f", m)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 22)
	out := tb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "alpha") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows → 5? title+header+rule+2
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	// Columns align: every data line at least as wide as the header.
	if tb.NumRows() != 2 {
		t.Error("row count wrong")
	}
	if !strings.Contains(out, "1.500") {
		t.Error("floats should render with 3 decimals")
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.Row("x", 3.0)
	tb.Row("y", 1.0)
	tb.Row("z", 2.0)
	tb.SortRowsBy(1, false)
	out := tb.String()
	iy, iz, ix := strings.Index(out, "y"), strings.Index(out, "z"), strings.Index(out, "x")
	if !(iy < iz && iz < ix) {
		t.Errorf("ascending sort wrong:\n%s", out)
	}
	tb.SortRowsBy(1, true)
	out = tb.String()
	iy, ix = strings.Index(out, "y"), strings.Index(out, "x")
	if ix > iy {
		t.Errorf("descending sort wrong:\n%s", out)
	}
}

// Property: geomean of ratios lies between min and max.
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = 0.5 + float64(r)/1000
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSimAddCoversEveryField sets every numeric field of Sim to a distinct
// value via reflection and checks Add propagates all of them — so a new
// counter added to Sim without extending Add fails here instead of being
// silently dropped from sampled-window merges.
func TestSimAddCoversEveryField(t *testing.T) {
	var a, b Sim
	rv := reflect.ValueOf(&b).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Int64:
			f.SetInt(int64(i + 1))
		default:
			t.Fatalf("Sim field %s has kind %v; extend Add and this test", rv.Type().Field(i).Name, f.Kind())
		}
	}
	a.Add(b)
	if a != b {
		t.Fatalf("Add dropped fields:\n got %+v\nwant %+v", a, b)
	}
	a.Add(b)
	ra := reflect.ValueOf(a)
	for i := 0; i < ra.NumField(); i++ {
		f := ra.Field(i)
		var got, want uint64
		if f.Kind() == reflect.Int64 {
			got, want = uint64(f.Int()), uint64(2*(i+1))
		} else {
			got, want = f.Uint(), uint64(2*(i+1))
		}
		if got != want {
			t.Errorf("field %s: %d after double Add, want %d", ra.Type().Field(i).Name, got, want)
		}
	}
}
