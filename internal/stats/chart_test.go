package stats

import (
	"strings"
	"testing"
)

func TestBarChartPositive(t *testing.T) {
	c := NewBarChart("speedups", "%")
	c.Bar("chess", 8.0, "D-BP")
	c.Bar("sparse", 0.1, "")
	out := c.String()
	if !strings.Contains(out, "speedups") || !strings.Contains(out, "chess") {
		t.Errorf("chart missing content:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(out, "\n")
	var chessBar, sparseBar int
	for _, ln := range lines {
		if strings.Contains(ln, "chess") {
			chessBar = strings.Count(ln, "█")
		}
		if strings.Contains(ln, "sparse") {
			sparseBar = strings.Count(ln, "█")
		}
	}
	if chessBar <= sparseBar {
		t.Errorf("bar lengths not proportional: chess %d, sparse %d", chessBar, sparseBar)
	}
	if sparseBar == 0 {
		t.Error("non-zero value must draw at least one cell")
	}
}

func TestBarChartNegative(t *testing.T) {
	c := NewBarChart("", "%")
	c.Bar("up", 5, "")
	c.Bar("down", -5, "")
	out := c.String()
	if !strings.Contains(out, "▒") {
		t.Errorf("negative bar not rendered:\n%s", out)
	}
	if !strings.Contains(out, "│") {
		t.Error("zero axis missing with negative values")
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := NewBarChart("z", "")
	c.Bar("a", 0, "")
	if out := c.String(); !strings.Contains(out, "a") {
		t.Errorf("zero chart broken:\n%s", out)
	}
}

func TestScatter(t *testing.T) {
	s := NewScatter("corr", "mpki", "speedup")
	s.Point(1, 1, 'o')
	s.Point(10, 8, 'x')
	s.Point(5, 4, 'o')
	out := s.String()
	if strings.Count(out, "o") < 2 || !strings.Contains(out, "x") {
		t.Errorf("points missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00 … 10.00") {
		t.Errorf("x range missing:\n%s", out)
	}
	if out := NewScatter("empty", "x", "y").String(); !strings.Contains(out, "no points") {
		t.Error("empty scatter should say so")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("sweep", "entries", "2", "4", "6")
	s.Add("stall", 1.0, 3.0, 4.0)
	s.Add("nonstall", 0.5, 1.0, 2.0)
	out := s.String()
	for _, want := range []string{"sweep", "stall", "nonstall", "▁", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched series length should panic")
		}
	}()
	NewSeries("t", "x", "1", "2").Add("bad", 1.0)
}

func TestSparklineMonotone(t *testing.T) {
	sp := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(sp)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("sparkline not monotone: %s", sp)
		}
	}
}
