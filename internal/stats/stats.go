// Package stats provides the counters, derived metrics, and small numeric
// helpers (geometric mean, histograms, table rendering) shared by the
// simulator and the experiment harness.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sim aggregates the counters a single simulation run produces. The pipeline
// increments these; Snapshot/Reset support warm-up windows (counters are
// cleared at the end of warm-up while microarchitectural state stays warm).
type Sim struct {
	Cycles    int64
	Committed uint64

	// Branches.
	CondBranches     uint64
	Mispredicts      uint64
	IndirectJumps    uint64
	IndirectMispred  uint64
	BTBMisses        uint64
	UnconfBranches   uint64 // branches estimated unconfident at decode
	UnconfSliceInsts uint64 // non-branch instructions predicted in unconfident slices
	DecodedBranches  uint64 // conditional branches seen at decode (PUBS machines)

	// Memory hierarchy.
	L1DAccesses uint64
	L1DMisses   uint64
	L1IAccesses uint64
	L1IMisses   uint64
	LLCAccesses uint64
	LLCMisses   uint64 // demand misses at the last-level cache
	Prefetches  uint64

	// Pipeline events.
	DispatchStallPriority uint64 // stalls waiting for a free priority entry
	DispatchStallNormal   uint64 // stalls waiting for a free normal entry
	DispatchStallROB      uint64
	DispatchStallLSQ      uint64
	DispatchStallRegs     uint64
	Issued                uint64
	LoadsForwarded        uint64

	// Misspeculation penalty accounting (Fig. 1): cycles from the fetch of a
	// mispredicted branch until the end of its execution, summed over all
	// mispredictions, plus the recovery cycles.
	MisspecPenaltyCycles int64
	RecoveryCycles       int64

	// Mode switching.
	ModeSwitchChecks   uint64
	ModeEnabledWindows uint64
}

// IPC returns committed instructions per cycle.
func (s Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// BranchMPKI returns conditional-branch mispredictions per kilo-instruction
// (the paper's D-BP threshold metric; indirect-jump mispredictions are
// counted separately).
func (s Sim) BranchMPKI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Committed) * 1000
}

// LLCMPKI returns last-level-cache demand misses per kilo-instruction (the
// paper's memory-intensity metric).
func (s Sim) LLCMPKI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Committed) * 1000
}

// MispredictRate returns the fraction of conditional branches mispredicted.
func (s Sim) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// UnconfidentRate returns the fraction of dynamic conditional branches whose
// prediction was estimated unconfident (the line plotted in Fig. 11). Both
// counts come from the decode stage, so the rate is exact even when the
// measurement window boundary falls between decode and commit.
func (s Sim) UnconfidentRate() float64 {
	den := s.DecodedBranches
	if den == 0 {
		den = s.CondBranches
	}
	if den == 0 {
		return 0
	}
	return float64(s.UnconfBranches) / float64(den)
}

// Reset zeroes all counters (used at the end of the warm-up window).
func (s *Sim) Reset() { *s = Sim{} }

// Add accumulates another run's counters into s. Every field is a plain
// sum, so adding window results in any order produces the same aggregate —
// the merge algebra parallel sampled simulation relies on. A reflection
// test asserts this list stays exhaustive as fields are added.
func (s *Sim) Add(o Sim) {
	s.Cycles += o.Cycles
	s.Committed += o.Committed
	s.CondBranches += o.CondBranches
	s.Mispredicts += o.Mispredicts
	s.IndirectJumps += o.IndirectJumps
	s.IndirectMispred += o.IndirectMispred
	s.BTBMisses += o.BTBMisses
	s.UnconfBranches += o.UnconfBranches
	s.UnconfSliceInsts += o.UnconfSliceInsts
	s.DecodedBranches += o.DecodedBranches
	s.L1DAccesses += o.L1DAccesses
	s.L1DMisses += o.L1DMisses
	s.L1IAccesses += o.L1IAccesses
	s.L1IMisses += o.L1IMisses
	s.LLCAccesses += o.LLCAccesses
	s.LLCMisses += o.LLCMisses
	s.Prefetches += o.Prefetches
	s.DispatchStallPriority += o.DispatchStallPriority
	s.DispatchStallNormal += o.DispatchStallNormal
	s.DispatchStallROB += o.DispatchStallROB
	s.DispatchStallLSQ += o.DispatchStallLSQ
	s.DispatchStallRegs += o.DispatchStallRegs
	s.Issued += o.Issued
	s.LoadsForwarded += o.LoadsForwarded
	s.MisspecPenaltyCycles += o.MisspecPenaltyCycles
	s.RecoveryCycles += o.RecoveryCycles
	s.ModeSwitchChecks += o.ModeSwitchChecks
	s.ModeEnabledWindows += o.ModeEnabledWindows
}

// Geomean returns the geometric mean of xs. It returns 1 for an empty slice
// and panics if any value is non-positive, since speedup ratios must be > 0.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup converts an IPC pair into a percentage speedup of new over base.
func Speedup(baseIPC, newIPC float64) float64 {
	if baseIPC == 0 {
		return 0
	}
	return (newIPC/baseIPC - 1) * 100
}

// Histogram is a simple fixed-bucket histogram used for IQ-occupancy and
// issue-width profiles.
type Histogram struct {
	Buckets []uint64
	over    uint64
	total   uint64
}

// NewHistogram returns a histogram with buckets 0..n-1 plus an overflow.
func NewHistogram(n int) *Histogram {
	return &Histogram{Buckets: make([]uint64, n)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.total++
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		h.over++
		return
	}
	h.Buckets[v]++
}

// AddN records n identical observations of value v in O(1) — the
// span-integrated form of Add the idle-skipping pipeline uses when the
// observed value is provably constant across a skipped span.
func (h *Histogram) AddN(v int, n uint64) {
	h.total += n
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		h.over += n
		return
	}
	h.Buckets[v] += n
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Reset clears all observations, keeping the bucket allocation (used at the
// warm-up boundary so the measurement reset stays allocation-free).
func (h *Histogram) Reset() {
	clear(h.Buckets)
	h.over, h.total = 0, 0
}

// histogramJSON is the serialized form; the unexported counters must
// survive the checkpoint round-trip for resumed campaigns to reproduce
// profiled tables bit-identically.
type histogramJSON struct {
	Buckets  []uint64 `json:"buckets"`
	Overflow uint64   `json:"overflow"`
	Total    uint64   `json:"total"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Buckets: h.Buckets, Overflow: h.over, Total: h.total})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var v histogramJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	h.Buckets, h.over, h.total = v.Buckets, v.Overflow, v.Total
	return nil
}

// Overflow returns observations beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.over }

// Mean returns the mean observation (overflow counted at the boundary).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.Buckets {
		sum += float64(v) * float64(c)
	}
	sum += float64(len(h.Buckets)) * float64(h.over)
	return sum / float64(h.total)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observations.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	var cum uint64
	for v, c := range h.Buckets {
		cum += c
		if cum > target {
			return v
		}
	}
	return len(h.Buckets)
}

// Table renders aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; cells are formatted with %v, floats with 3 decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// SortRowsBy sorts data rows by the given column, numerically when possible.
func (t *Table) SortRowsBy(col int, desc bool) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := t.rows[i][col], t.rows[j][col]
		var fa, fb float64
		na, erra := fmt.Sscanf(a, "%g", &fa)
		nb, errb := fmt.Sscanf(b, "%g", &fb)
		var less bool
		if na == 1 && nb == 1 && erra == nil && errb == nil {
			less = fa < fb
		} else {
			less = a < b
		}
		if desc {
			return !less
		}
		return less
	})
}
