package iq

// Select microbenchmarks: one op is one select cycle (grant up to the issue
// width, then refill the freed entries). Run with
//
//	go test -bench Select -benchmem ./internal/iq
//
// allocs/op must stay 0 — the bitset scan and reused grant buffers exist
// precisely so the per-cycle select never touches the heap.

import "testing"

const benchIssueWidth = 8

func benchFUBudget() [4]int { return [4]int{4, 4, 2, 2} }

func BenchmarkSelect(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"random", Config{Size: 60, Kind: Random}},
		{"random-priority6", Config{Size: 60, PriorityEntries: 6, Kind: Random}},
		{"random-age", Config{Size: 60, Kind: Random, AgeMatrix: true}},
		{"flexible", Config{Size: 60, Kind: Random, Flexible: true}},
		{"shifting", Config{Size: 60, Kind: Shifting}},
		{"circular", Config{Size: 60, Kind: Circular}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			q := New(tc.cfg)
			seq := uint64(0)
			dispatch := func() bool {
				seq++
				r := Request{Handle: int(seq % 4096), Seq: seq, FU: int(seq % 4), Marked: seq%3 == 0}
				if tc.cfg.PriorityEntries > 0 && r.Marked && q.DispatchPriority(r) {
					return true
				}
				return q.DispatchNormal(r)
			}
			for dispatch() {
			}
			var fuLeft [4]int
			fuAlloc := func(fu int) bool {
				if fuLeft[fu] == 0 {
					return false
				}
				fuLeft[fu]--
				return true
			}
			ready := func(h int) bool { return h&1 == 0 }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fuLeft = benchFUBudget()
				granted := q.Select(benchIssueWidth, ready, fuAlloc)
				for range granted {
					dispatch()
				}
			}
		})
	}
}

func BenchmarkSelectDistributed(b *testing.B) {
	d := NewDistributed(DistributedConfig{
		NumQueues:       4,
		TotalSize:       60,
		PriorityEntries: 6,
		Router:          func(fu int) int { return fu & 3 },
	})
	seq := uint64(0)
	dispatch := func() bool {
		seq++
		r := Request{Handle: int(seq % 4096), Seq: seq, FU: int(seq % 4), Marked: seq%3 == 0}
		if r.Marked && d.DispatchPriority(r) {
			return true
		}
		return d.DispatchNormal(r)
	}
	for dispatch() {
	}
	var fuLeft [4]int
	fuAlloc := func(fu int) bool {
		if fuLeft[fu] == 0 {
			return false
		}
		fuLeft[fu]--
		return true
	}
	ready := func(h int) bool { return h&1 == 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fuLeft = benchFUBudget()
		granted := d.Select(benchIssueWidth, ready, fuAlloc)
		for range granted {
			dispatch()
		}
	}
}
