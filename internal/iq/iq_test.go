package iq

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func alwaysReady(int) bool { return true }

func unlimitedFU(int) bool { return true }

func req(h int, seq uint64) Request {
	return Request{Handle: h, Seq: seq, FU: int(isa.ClassIntALU)}
}

func TestDispatchAndSelectBasics(t *testing.T) {
	q := New(Config{Size: 8, Kind: Random})
	for i := 0; i < 3; i++ {
		if !q.DispatchNormal(req(i, uint64(i))) {
			t.Fatalf("dispatch %d failed", i)
		}
	}
	if q.Occupancy() != 3 {
		t.Errorf("occupancy = %d", q.Occupancy())
	}
	granted := q.Select(4, alwaysReady, unlimitedFU)
	if len(granted) != 3 {
		t.Fatalf("granted %d, want 3", len(granted))
	}
	if q.Occupancy() != 0 {
		t.Error("entries not freed at issue")
	}
}

func TestIssueWidthLimit(t *testing.T) {
	q := New(Config{Size: 16, Kind: Random})
	for i := 0; i < 10; i++ {
		q.DispatchNormal(req(i, uint64(i)))
	}
	if got := len(q.Select(4, alwaysReady, unlimitedFU)); got != 4 {
		t.Errorf("granted %d, want issue width 4", got)
	}
}

func TestFULimit(t *testing.T) {
	q := New(Config{Size: 16, Kind: Random})
	for i := 0; i < 6; i++ {
		q.DispatchNormal(req(i, uint64(i)))
	}
	remaining := 2
	fu := func(int) bool {
		if remaining == 0 {
			return false
		}
		remaining--
		return true
	}
	if got := len(q.Select(8, alwaysReady, fu)); got != 2 {
		t.Errorf("granted %d, want 2 (FU bound)", got)
	}
}

func TestReadyGating(t *testing.T) {
	q := New(Config{Size: 8, Kind: Random})
	q.DispatchNormal(req(1, 1))
	q.DispatchNormal(req(2, 2))
	ready := func(h int) bool { return h == 2 }
	granted := q.Select(4, ready, unlimitedFU)
	if len(granted) != 1 || granted[0].Handle != 2 {
		t.Errorf("granted %v", granted)
	}
	if q.Occupancy() != 1 {
		t.Error("unready entry must stay queued")
	}
}

func TestPriorityEntriesWinSelection(t *testing.T) {
	q := New(Config{Size: 8, PriorityEntries: 2, Kind: Random})
	// Fill normal entries first, then a priority one.
	for i := 0; i < 4; i++ {
		q.DispatchNormal(req(i, uint64(i)))
	}
	if !q.DispatchPriority(req(99, 99)) {
		t.Fatal("priority dispatch failed")
	}
	// With one grant available, the priority entry (position 0..1) wins
	// despite being the youngest.
	granted := q.Select(1, alwaysReady, unlimitedFU)
	if len(granted) != 1 || granted[0].Handle != 99 {
		t.Errorf("granted %v, want the priority entry", granted)
	}
}

func TestPriorityCapacity(t *testing.T) {
	q := New(Config{Size: 8, PriorityEntries: 2, Kind: Random})
	if !q.DispatchPriority(req(1, 1)) || !q.DispatchPriority(req(2, 2)) {
		t.Fatal("priority entries should accept 2")
	}
	if q.DispatchPriority(req(3, 3)) {
		t.Error("third priority dispatch should fail")
	}
	if q.PriorityFree() != 0 || q.NormalFree() != 6 {
		t.Errorf("free = %d/%d", q.PriorityFree(), q.NormalFree())
	}
	// Issuing a priority entry frees it back to the priority list.
	q.Select(1, alwaysReady, unlimitedFU)
	if q.PriorityFree() != 1 {
		t.Error("issued priority entry not recycled")
	}
}

func TestDispatchWeightedFallsBack(t *testing.T) {
	q := New(Config{Size: 4, PriorityEntries: 2, Kind: Random})
	// Draw < ratio chooses the priority list.
	q.DispatchWeighted(req(1, 1), 0.0)
	q.DispatchWeighted(req(2, 2), 0.0)
	// Priority full: falls back to normal.
	if !q.DispatchWeighted(req(3, 3), 0.0) {
		t.Error("weighted dispatch should fall back to normal")
	}
	// Draw ≥ ratio chooses normal; fill it, then fall back to priority...
	if !q.DispatchWeighted(req(4, 4), 0.9) {
		t.Error("weighted dispatch to normal failed")
	}
	// Queue now full.
	if q.DispatchWeighted(req(5, 5), 0.9) {
		t.Error("full queue accepted a dispatch")
	}
}

func TestAgeMatrixPicksOldest(t *testing.T) {
	q := New(Config{Size: 8, Kind: Random, AgeMatrix: true})
	// Dispatch in an order where the oldest (seq 1) lands at a high
	// physical position: fill positions 0..2 with younger seqs first.
	q.DispatchNormal(req(10, 50))
	q.DispatchNormal(req(11, 51))
	q.DispatchNormal(req(12, 1)) // oldest, position 2
	granted := q.Select(1, alwaysReady, unlimitedFU)
	if len(granted) != 1 || granted[0].Handle != 12 {
		t.Errorf("age matrix granted %v, want the oldest (handle 12)", granted)
	}
}

func TestAgeMatrixRespectsFU(t *testing.T) {
	q := New(Config{Size: 8, Kind: Random, AgeMatrix: true})
	old := Request{Handle: 1, Seq: 1, FU: int(isa.ClassFPU)}
	young := Request{Handle: 2, Seq: 9, FU: int(isa.ClassIntALU)}
	q.DispatchNormal(old)
	q.DispatchNormal(young)
	fu := func(class int) bool { return class == int(isa.ClassIntALU) }
	granted := q.Select(2, alwaysReady, fu)
	if len(granted) != 1 || granted[0].Handle != 2 {
		t.Errorf("granted %v, want only the ALU op", granted)
	}
}

func TestShiftingQueueAgeOrder(t *testing.T) {
	q := New(Config{Size: 4, Kind: Shifting})
	for i := 0; i < 4; i++ {
		q.DispatchNormal(req(i, uint64(i)))
	}
	if q.DispatchNormal(req(9, 9)) {
		t.Error("full shifting queue accepted dispatch")
	}
	// Only entry 2 ready: select grants it; compaction preserves order.
	granted := q.Select(1, func(h int) bool { return h == 2 }, unlimitedFU)
	if len(granted) != 1 || granted[0].Handle != 2 {
		t.Fatalf("granted %v", granted)
	}
	// Next select with everything ready grants in age order 0,1,3.
	granted = q.Select(4, alwaysReady, unlimitedFU)
	want := []int{0, 1, 3}
	for i, g := range granted {
		if g.Handle != want[i] {
			t.Errorf("grant %d = handle %d, want %d (age order broken)", i, g.Handle, want[i])
		}
	}
}

func TestCircularQueueTailBlocking(t *testing.T) {
	q := New(Config{Size: 4, Kind: Circular})
	for i := 0; i < 4; i++ {
		q.DispatchNormal(req(i, uint64(i)))
	}
	// Issue the instruction in the middle (hole at position 1).
	q.Select(1, func(h int) bool { return h == 1 }, unlimitedFU)
	// Tail points at position 0 (still used): dispatch blocks even though a
	// hole exists — the capacity inefficiency the paper describes.
	if q.DispatchNormal(req(9, 9)) {
		t.Error("circular queue dispatched into a hole behind the tail")
	}
	// Drain position 0; the tail slot frees and dispatch succeeds.
	q.Select(1, func(h int) bool { return h == 0 }, unlimitedFU)
	if !q.DispatchNormal(req(9, 9)) {
		t.Error("circular queue should accept dispatch at the freed tail")
	}
}

func TestConfigPanics(t *testing.T) {
	cases := []Config{
		{Size: 0, Kind: Random},
		{Size: 4, PriorityEntries: 5, Kind: Random},
		{Size: 4, PriorityEntries: 2, Kind: Shifting},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: under arbitrary dispatch/select interleavings, occupancy +
// free-list sizes always equal the queue size, and Select never grants
// more than the issue width or the occupancy.
func TestQuickFreeListConservation(t *testing.T) {
	q := New(Config{Size: 16, PriorityEntries: 4, Kind: Random})
	seq := uint64(0)
	f := func(ops []byte) bool {
		for _, op := range ops {
			seq++
			switch op % 4 {
			case 0:
				q.DispatchNormal(req(int(seq), seq))
			case 1:
				q.DispatchPriority(req(int(seq), seq))
			case 2:
				q.DispatchWeighted(req(int(seq), seq), float64(op)/255)
			case 3:
				granted := q.Select(4, func(h int) bool { return h%2 == 0 }, unlimitedFU)
				if len(granted) > 4 {
					return false
				}
			}
			if q.Occupancy()+q.PriorityFree()+q.NormalFree() != 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: whatever was dispatched is eventually granted exactly once.
func TestQuickNoLostOrDuplicatedGrants(t *testing.T) {
	f := func(n uint8) bool {
		q := New(Config{Size: 32, Kind: Random})
		count := int(n%32) + 1
		for i := 0; i < count; i++ {
			if !q.DispatchNormal(req(i, uint64(i))) {
				return false
			}
		}
		seen := make(map[int]bool)
		for q.Occupancy() > 0 {
			for _, g := range q.Select(4, alwaysReady, unlimitedFU) {
				if seen[g.Handle] {
					return false // duplicate grant
				}
				seen[g.Handle] = true
			}
		}
		return len(seen) == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
