package iq

// Golden equivalence for the bitset select rewrite: referenceSelect is the
// pre-rewrite implementation (closure scan over the slot array plus a
// selection-sort free loop), kept verbatim as the specification of the
// position-priority semantics. The property tests drive a rewritten queue
// and a reference-selected twin through identical operation sequences and
// require identical grants, occupancy, and structural state for every
// queue kind and select variant.

import (
	"fmt"
	"testing"
)

// referenceScan is the old Queue.scan: visit used entries in position-
// priority order, synthesizing slots for the shifting kind.
func referenceScan(q *Queue, visit func(pos int, s *slot) bool) {
	switch q.cfg.Kind {
	case Random, Circular:
		seen := 0
		for i := range q.slots {
			if q.slots[i].used {
				if !visit(i, &q.slots[i]) {
					return
				}
				seen++
				if seen == q.count {
					return
				}
			}
		}
	case Shifting:
		for i := range q.list {
			if !visit(i, &slot{used: true, req: q.list[i]}) {
				return
			}
		}
	}
}

func referenceSlotAt(q *Queue, pos int) *slot {
	if q.cfg.Kind == Shifting {
		return &slot{used: true, req: q.list[pos]}
	}
	return &q.slots[pos]
}

// referenceSelect is the old Queue.Select, using the shared removeAt so the
// twin queue's free lists advance exactly as the rewritten queue's do.
func referenceSelect(q *Queue, issueWidth int, ready func(int) bool, fuTryAlloc func(int) bool) []Request {
	if issueWidth <= 0 || q.count == 0 {
		return nil
	}
	granted := make([]Request, 0, issueWidth)
	grantedPos := make([]int, 0, issueWidth)
	grantedAt := -1

	if q.cfg.AgeMatrix {
		oldest := -1
		var oldestSeq uint64
		referenceScan(q, func(pos int, s *slot) bool {
			if ready(s.req.Handle) && (oldest == -1 || s.req.Seq < oldestSeq) {
				oldest, oldestSeq = pos, s.req.Seq
			}
			return true
		})
		if oldest >= 0 {
			s := referenceSlotAt(q, oldest)
			if fuTryAlloc(s.req.FU) {
				granted = append(granted, s.req)
				grantedPos = append(grantedPos, oldest)
				grantedAt = oldest
			}
		}
	}

	passes := [][2]bool{{false, true}}
	if q.cfg.Flexible {
		passes = [][2]bool{{true, false}, {false, false}}
	}
	for _, pass := range passes {
		wantMarked, any := pass[0], pass[1]
		referenceScan(q, func(pos int, s *slot) bool {
			if len(granted) >= issueWidth {
				return false
			}
			if pos == grantedAt || s.granted {
				return true
			}
			if !any && s.req.Marked != wantMarked {
				return true
			}
			if !ready(s.req.Handle) {
				return true
			}
			if !fuTryAlloc(s.req.FU) {
				return true
			}
			s.granted = true
			granted = append(granted, s.req)
			grantedPos = append(grantedPos, pos)
			return true
		})
	}

	for i := len(grantedPos) - 1; i >= 0; i-- {
		max := i
		for j := 0; j < i; j++ {
			if grantedPos[j] > grantedPos[max] {
				max = j
			}
		}
		grantedPos[i], grantedPos[max] = grantedPos[max], grantedPos[i]
		q.removeAt(grantedPos[i])
	}
	return granted
}

// equivalenceConfigs covers every kind and select variant the pipeline can
// configure.
func equivalenceConfigs() []Config {
	return []Config{
		{Size: 24, Kind: Random},
		{Size: 24, Kind: Random, PriorityEntries: 6},
		{Size: 24, Kind: Random, PriorityEntries: 6, AgeMatrix: true},
		{Size: 24, Kind: Random, Flexible: true},
		{Size: 24, Kind: Random, AgeMatrix: true},
		{Size: 24, Kind: Shifting},
		{Size: 24, Kind: Shifting, AgeMatrix: true},
		{Size: 24, Kind: Circular},
		{Size: 24, Kind: Circular, AgeMatrix: true},
	}
}

// xorshift is the deterministic op-stream generator for the property runs.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

// TestSelectMatchesReference drives a rewritten queue and a reference twin
// through identical randomized dispatch/select interleavings and requires
// identical grant sequences and post-step structural state — including the
// free-list RNG streams, whose pop order depends on the exact push order of
// freed positions.
func TestSelectMatchesReference(t *testing.T) {
	for _, cfg := range equivalenceConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%s-p%d-age%v-flex%v", cfg.Kind, cfg.PriorityEntries, cfg.AgeMatrix, cfg.Flexible)
		t.Run(name, func(t *testing.T) {
			qNew, qRef := New(cfg), New(cfg)
			rng := xorshift(0xDECAFBAD)
			seq := uint64(0)
			for step := 0; step < 4000; step++ {
				r := rng.next()
				switch r % 4 {
				case 0, 1: // dispatch (twice as likely, to keep the queue loaded)
					seq++
					req := Request{Handle: int(seq), Seq: seq, FU: int(r>>8) % 4, Marked: r>>16&1 == 0}
					switch {
					case cfg.PriorityEntries > 0 && r>>24&1 == 0:
						if got, want := qNew.DispatchPriority(req), qRef.DispatchPriority(req); got != want {
							t.Fatalf("step %d: DispatchPriority %v vs reference %v", step, got, want)
						}
					case cfg.PriorityEntries > 0 && r>>25&1 == 0:
						pick := float64(r>>32&0xFFFF) / 65536
						if got, want := qNew.DispatchWeighted(req, pick), qRef.DispatchWeighted(req, pick); got != want {
							t.Fatalf("step %d: DispatchWeighted %v vs reference %v", step, got, want)
						}
					default:
						if got, want := qNew.DispatchNormal(req), qRef.DispatchNormal(req); got != want {
							t.Fatalf("step %d: DispatchNormal %v vs reference %v", step, got, want)
						}
					}
				case 2, 3:
					readyBits := rng.next()
					ready := func(h int) bool { return readyBits>>(uint(h)%64)&1 == 0 }
					width := int(r>>8)%4 + 1
					// Independent FU budgets with identical draw sequences.
					budgetNew, budgetRef := int(r>>16)%5, int(r>>16)%5
					fuNew := func(int) bool {
						if budgetNew == 0 {
							return false
						}
						budgetNew--
						return true
					}
					fuRef := func(int) bool {
						if budgetRef == 0 {
							return false
						}
						budgetRef--
						return true
					}
					got := qNew.Select(width, ready, fuNew)
					want := referenceSelect(qRef, width, ready, fuRef)
					if len(got) != len(want) {
						t.Fatalf("step %d: granted %d vs reference %d", step, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("step %d: grant %d = %+v, reference %+v", step, i, got[i], want[i])
						}
					}
				}
				if err := qNew.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if qNew.Occupancy() != qRef.Occupancy() {
					t.Fatalf("step %d: occupancy %d vs reference %d", step, qNew.Occupancy(), qRef.Occupancy())
				}
				if qNew.PriorityFree() != qRef.PriorityFree() || qNew.NormalFree() != qRef.NormalFree() {
					t.Fatalf("step %d: free %d/%d vs reference %d/%d", step,
						qNew.PriorityFree(), qNew.NormalFree(), qRef.PriorityFree(), qRef.NormalFree())
				}
			}
		})
	}
}

// TestRemovalPreservesIndexValidity: for every kind, removing a granted
// batch never invalidates the positions of the remaining entries — the
// next select still sees each surviving request exactly once, in position-
// priority order (the shifting queue's descending-order compaction
// contract, generalised).
func TestRemovalPreservesIndexValidity(t *testing.T) {
	for _, kind := range []Kind{Random, Shifting, Circular} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			q := New(Config{Size: 16, Kind: kind})
			rng := xorshift(0xFEEDFACE)
			seq := uint64(0)
			live := map[int]bool{}
			for step := 0; step < 2000; step++ {
				r := rng.next()
				if r&1 == 0 {
					seq++
					if q.DispatchNormal(Request{Handle: int(seq), Seq: seq, FU: 0}) {
						live[int(seq)] = true
					}
				} else {
					readyBits := rng.next()
					ready := func(h int) bool { return readyBits>>(uint(h)%64)&1 == 0 }
					var prevSeq uint64
					for i, g := range q.Select(int(r>>8)%5+1, ready, func(int) bool { return true }) {
						if !live[g.Handle] {
							t.Fatalf("step %d: granted dead or duplicate handle %d", step, g.Handle)
						}
						delete(live, g.Handle)
						if kind == Shifting {
							if i > 0 && g.Seq <= prevSeq {
								t.Fatalf("step %d: shifting grants out of age order (%d after %d)", step, g.Seq, prevSeq)
							}
							prevSeq = g.Seq
						}
					}
				}
				if err := q.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if q.Occupancy() != len(live) {
					t.Fatalf("step %d: occupancy %d but %d live requests", step, q.Occupancy(), len(live))
				}
			}
			// Drain everything: every surviving request must still be granted
			// exactly once from its (possibly shifted) position.
			for q.Occupancy() > 0 {
				granted := q.Select(4, func(int) bool { return true }, func(int) bool { return true })
				if len(granted) == 0 {
					t.Fatal("drain stalled with live entries")
				}
				for _, g := range granted {
					if !live[g.Handle] {
						t.Fatalf("drain granted dead or duplicate handle %d", g.Handle)
					}
					delete(live, g.Handle)
				}
			}
			if len(live) != 0 {
				t.Fatalf("%d requests lost after drain", len(live))
			}
		})
	}
}
