package iq

import "fmt"

// Distributed models the §III-C2 adaptation of PUBS to a distributed issue
// queue (AMD Zen style): one queue per function-unit pool, each partitioned
// into priority and normal entries. The paper argues PUBS applies directly;
// this implementation makes the claim executable.
//
// Capacity and priority entries are divided across the per-pool queues;
// dispatch routes by the request's function-unit class, and select walks
// the queues in pool order sharing the machine's total issue width.
type Distributed struct {
	qs       []*Queue
	router   func(fu int) int
	grantBuf []Request // Select result buffer, reused across calls
}

// DistributedConfig sizes a distributed queue complex.
type DistributedConfig struct {
	NumQueues       int
	TotalSize       int // divided evenly; remainder to the first queues
	PriorityEntries int // divided round-robin (queue 0 first)
	AgeMatrix       bool
	// Router maps a Request.FU class to a queue index in [0, NumQueues).
	Router func(fu int) int
}

// NewDistributed builds the per-pool queues.
func NewDistributed(cfg DistributedConfig) *Distributed {
	if cfg.NumQueues <= 0 {
		panic("iq: distributed queue needs at least one queue")
	}
	if cfg.Router == nil {
		panic("iq: distributed queue needs a router")
	}
	if cfg.TotalSize < cfg.NumQueues {
		panic("iq: distributed queue smaller than queue count")
	}
	d := &Distributed{router: cfg.Router}
	sizes := make([]int, cfg.NumQueues)
	for i := range sizes {
		sizes[i] = cfg.TotalSize / cfg.NumQueues
	}
	for i := 0; i < cfg.TotalSize%cfg.NumQueues; i++ {
		sizes[i]++
	}
	prio := make([]int, cfg.NumQueues)
	for i := 0; i < cfg.PriorityEntries; i++ {
		prio[i%cfg.NumQueues]++
	}
	for i := 0; i < cfg.NumQueues; i++ {
		if prio[i] >= sizes[i] {
			prio[i] = sizes[i] - 1
		}
		d.qs = append(d.qs, New(Config{
			Size:            sizes[i],
			PriorityEntries: prio[i],
			Kind:            Random,
			AgeMatrix:       cfg.AgeMatrix,
		}))
	}
	return d
}

func (d *Distributed) queueFor(fu int) *Queue {
	i := d.router(fu)
	if i < 0 || i >= len(d.qs) {
		panic("iq: router returned out-of-range queue index")
	}
	return d.qs[i]
}

// DispatchPriority places r into its class queue's priority partition.
func (d *Distributed) DispatchPriority(r Request) bool {
	return d.queueFor(r.FU).DispatchPriority(r)
}

// DispatchNormal places r into its class queue's normal partition.
func (d *Distributed) DispatchNormal(r Request) bool {
	return d.queueFor(r.FU).DispatchNormal(r)
}

// DispatchWeighted applies the mode-switch-off policy within r's queue.
func (d *Distributed) DispatchWeighted(r Request, pick float64) bool {
	return d.queueFor(r.FU).DispatchWeighted(r, pick)
}

// Select walks the queues in pool order, sharing the total issue width.
// Each per-pool select still enforces the FU constraints via fuTryAlloc.
// The returned slice aliases an internal buffer and is only valid until the
// next Select call.
func (d *Distributed) Select(issueWidth int, ready func(int) bool, fuTryAlloc func(int) bool) []Request {
	granted := d.grantBuf[:0]
	for _, q := range d.qs {
		if issueWidth <= len(granted) {
			break
		}
		granted = append(granted, q.Select(issueWidth-len(granted), ready, fuTryAlloc)...)
	}
	d.grantBuf = granted
	return granted
}

// Occupancy sums the per-queue occupancies.
func (d *Distributed) Occupancy() int {
	n := 0
	for _, q := range d.qs {
		n += q.Occupancy()
	}
	return n
}

// PriorityFree sums free priority entries across queues.
func (d *Distributed) PriorityFree() int {
	n := 0
	for _, q := range d.qs {
		n += q.PriorityFree()
	}
	return n
}

// Queues exposes the per-pool queues (for tests and stats).
func (d *Distributed) Queues() []*Queue { return d.qs }

// Reset restores every per-pool queue to its constructed state.
func (d *Distributed) Reset() {
	for _, q := range d.qs {
		q.Reset()
	}
}

// CheckInvariants audits every per-pool queue.
func (d *Distributed) CheckInvariants() error {
	for i, q := range d.qs {
		if err := q.CheckInvariants(); err != nil {
			return fmt.Errorf("distributed queue %d: %w", i, err)
		}
	}
	return nil
}
