// Package iq models the issue queue organisations of §III-B1 and the PUBS
// priority-entry partitioning of §III-B2.
//
// The modelled select logic is position-based: physical entry 0 has the
// highest grant priority, as in the prefix-sum and tree-arbiter circuits the
// paper cites. The queue kinds differ in how dispatch chooses a physical
// position:
//
//   - Random: dispatch pops a FIFO free list, so an instruction's physical
//     position rotates through the queue over time and long-run entry order
//     is effectively random (the paper's baseline and the organisation PUBS
//     extends). PUBS reserves positions 0..P-1 ("priority entries") with a
//     separate free list; position-based select then automatically grants
//     unconfident-slice instructions first.
//   - Shifting: entries stay compacted in age order (Alpha 21264 style), so
//     position priority equals age priority; modelled for the taxonomy
//     ablation.
//   - Circular: a ring buffer whose holes stay dead until the tail wraps
//     back over them; position priority inverts across the wrap point —
//     reproducing both pathologies the paper describes.
//
// An optional age matrix (§V-G1) lifts the single oldest ready instruction
// to the highest priority ahead of the positional scan.
//
// Skip-invariance contract (DESIGN.md §14): the pipeline's idle-cycle skip
// relies on a failed cycle leaving the queue byte-identical. Every
// Dispatch* method mutates nothing when it fails (the free list, ring
// tail, and shift window are only touched on success), and a Select that
// grants nothing is pure: the ready bitset is per-call scratch, age-matrix
// marks happen only on grant, and the placement RNG is consumed only on
// pop/grant. Tests pin both properties; changing either breaks the
// null-cycle induction even if results still look plausible.
//
// The phase-2 burst classes (DESIGN.md §14.2) lean on the same contract
// harder: across a burst span Select is not re-evaluated at all. That is
// sound only because a zero-grant Select is deterministic in the queue
// content, the ready set, and the free units — the queue changes only via
// Dispatch*/grants (none during a span), and readiness and unit release
// happen at completion thresholds the pipeline publishes into its wakeup
// heap, which bounds every span. A Select that consulted any other state
// (a cycle counter, hidden per-call history) would silently break the
// burst induction.
package iq

import (
	"fmt"
	"math/bits"

	"repro/internal/simerr"
)

// Kind selects the queue organisation.
type Kind uint8

const (
	// Random is the baseline random queue (free-list dispatch).
	Random Kind = iota
	// Shifting is the compacting age-ordered queue.
	Shifting
	// Circular is the non-compacting ring buffer.
	Circular
)

func (k Kind) String() string {
	switch k {
	case Random:
		return "random"
	case Shifting:
		return "shifting"
	case Circular:
		return "circular"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one queued instruction, identified by the pipeline's handle.
type Request struct {
	Handle int    // opaque pipeline identifier
	Seq    uint64 // program-order age (smaller = older)
	FU     int    // function-unit class (isa.Class)
	Marked bool   // unconfident-slice mark, used by the Flexible select
}

// Config sizes a queue.
type Config struct {
	Size            int
	PriorityEntries int // PUBS reserved head entries (Random kind only)
	Kind            Kind
	AgeMatrix       bool // add the age-matrix oldest-first pre-select
	// Flexible enables the idealized §III-C1 select: requests carrying the
	// unconfident mark outrank unmarked requests regardless of position, so
	// no entries need reserving and dispatch never stalls on a partition.
	// The paper argues this circuit is impractical (huge MUX fan-in); it is
	// modelled here as an upper bound for the partitioned design.
	Flexible bool
}

// Queue is one issue queue instance.
//
// Select runs every cycle, so the queue is built to be allocation-free in
// steady state: used positions are tracked in a word bitset (usedMask) that
// the select scan iterates with trailing-zero counts instead of probing
// every slot, and grants accumulate into buffers reused across calls.
type Queue struct {
	cfg      Config
	slots    []slot    // physical positions 0..Size-1 (Random/Circular)
	list     []Request // compacted age-ordered list (Shifting)
	usedMask []uint64  // bit per used position (Random/Circular)
	freePri  freeList
	freeNrm  freeList
	count    int
	tail     int // Circular dispatch point

	grantBuf []Request // Select result buffer, reused across calls
	posBuf   []int     // granted positions, reused across calls
	readyBuf []uint64  // per-Select readiness cache (AgeMatrix only)
}

// freeList hands out free entry positions uniformly at random (seeded,
// deterministic). Random placement is the defining property of the paper's
// random queue; ordered recycling disciplines are systematically biased —
// LIFO parks the youngest instructions at the highest-priority positions,
// and FIFO recycles positions in issue order, degenerating into a circular
// queue whose wrap-around priority inversion resonates with regular loops.
type freeList struct {
	buf []int
	rng uint64
}

func newFreeList(seed uint64) freeList {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return freeList{rng: seed}
}

func (f *freeList) len() int { return len(f.buf) }

func (f *freeList) push(v int) { f.buf = append(f.buf, v) }

func (f *freeList) pop() int {
	n := len(f.buf)
	if n == 0 {
		panic("iq: free-list underflow")
	}
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	i := int(f.rng % uint64(n))
	v := f.buf[i]
	f.buf[i] = f.buf[n-1]
	f.buf = f.buf[:n-1]
	return v
}

type slot struct {
	used     bool
	priority bool
	granted  bool // transient mark during a multi-pass Select
	req      Request
}

// New builds a queue.
func New(cfg Config) *Queue {
	if cfg.Size <= 0 {
		panic("iq: size must be positive")
	}
	if cfg.PriorityEntries < 0 || cfg.PriorityEntries > cfg.Size {
		panic("iq: priority entries out of range")
	}
	if cfg.PriorityEntries > 0 && cfg.Kind != Random {
		panic("iq: priority entries require the random queue")
	}
	if cfg.Flexible && (cfg.PriorityEntries > 0 || cfg.Kind != Random) {
		panic("iq: flexible select replaces priority entries and requires the random queue")
	}
	q := &Queue{cfg: cfg}
	switch cfg.Kind {
	case Random, Circular:
		q.slots = make([]slot, cfg.Size)
		q.usedMask = make([]uint64, (cfg.Size+63)/64)
	case Shifting:
		q.list = make([]Request, 0, cfg.Size)
	default:
		panic("iq: unknown kind")
	}
	if cfg.AgeMatrix {
		q.readyBuf = make([]uint64, (cfg.Size+63)/64)
	}
	if cfg.Kind == Random {
		q.freeNrm = newFreeList(0xC0FFEE)
		for i := cfg.PriorityEntries; i < cfg.Size; i++ {
			q.freeNrm.push(i)
		}
		q.freePri = newFreeList(0xBEEF)
		for i := 0; i < cfg.PriorityEntries; i++ {
			q.freePri.push(i)
		}
	}
	return q
}

// Size returns the configured capacity.
func (q *Queue) Size() int { return q.cfg.Size }

// Occupancy returns the number of queued instructions.
func (q *Queue) Occupancy() int { return q.count }

// PriorityFree returns the number of free priority entries.
func (q *Queue) PriorityFree() int { return q.freePri.len() }

// NormalFree returns the number of free normal entries (for the Random
// kind; other kinds report total free capacity).
func (q *Queue) NormalFree() int {
	switch q.cfg.Kind {
	case Random:
		return q.freeNrm.len()
	case Shifting:
		return q.cfg.Size - len(q.list)
	case Circular:
		if q.slots[q.tail].used {
			return 0 // tail blocked: holes behind it are unusable
		}
		return q.cfg.Size - q.count // approximation; dispatch may still block
	}
	return 0
}

// DispatchPriority places r into a priority entry (Random kind only).
func (q *Queue) DispatchPriority(r Request) bool {
	if q.freePri.len() == 0 {
		return false
	}
	pos := q.freePri.pop()
	q.slots[pos] = slot{used: true, priority: true, req: r}
	q.usedMask[pos>>6] |= 1 << (pos & 63)
	q.count++
	return true
}

// DispatchNormal places r into a normal entry.
func (q *Queue) DispatchNormal(r Request) bool {
	switch q.cfg.Kind {
	case Random:
		if q.freeNrm.len() == 0 {
			return false
		}
		pos := q.freeNrm.pop()
		q.slots[pos] = slot{used: true, req: r}
		q.usedMask[pos>>6] |= 1 << (pos & 63)
		q.count++
		return true
	case Shifting:
		if len(q.list) >= q.cfg.Size {
			return false
		}
		q.list = append(q.list, r)
		q.count++
		return true
	case Circular:
		if q.slots[q.tail].used {
			return false // tail blocked even if holes exist elsewhere
		}
		q.slots[q.tail] = slot{used: true, req: r}
		q.usedMask[q.tail>>6] |= 1 << (q.tail & 63)
		q.tail = (q.tail + 1) % q.cfg.Size
		q.count++
		return true
	}
	return false
}

// DispatchWeighted implements the mode-switch-disabled policy (§III-B3):
// the two free lists are chosen by a random draw weighted by the entry
// ratio; if the drawn list is empty the other is used, so the full capacity
// remains available. pick must be uniform in [0,1).
func (q *Queue) DispatchWeighted(r Request, pick float64) bool {
	if q.cfg.Kind != Random {
		return q.DispatchNormal(r)
	}
	ratio := float64(q.cfg.PriorityEntries) / float64(q.cfg.Size)
	if pick < ratio {
		if q.DispatchPriority(r) {
			return true
		}
		return q.DispatchNormal(r)
	}
	if q.DispatchNormal(r) {
		return true
	}
	return q.DispatchPriority(r)
}

// Select grants up to issueWidth ready requests, honouring position-based
// priority (plus the age matrix when configured), and frees their entries.
// ready reports whether a handle's operands are available this cycle;
// fuTryAlloc attempts to claim a function unit of the request's class and
// returns false when none is free this cycle.
//
// The returned slice aliases an internal buffer and is only valid until the
// next Select call on this queue.
func (q *Queue) Select(issueWidth int, ready func(handle int) bool, fuTryAlloc func(fu int) bool) []Request {
	if issueWidth <= 0 || q.count == 0 {
		return nil
	}
	granted := q.grantBuf[:0]
	positions := q.posBuf[:0]

	if q.cfg.AgeMatrix {
		// The age matrix picks the single oldest ready instruction and
		// grants it ahead of the positional arbiter (§V-G1). This scan
		// already probes every used position, so it doubles as the
		// readiness evaluation for the positional passes below: results
		// are cached in readyBuf instead of re-calling ready() per
		// candidate (ready is by far the most expensive callback — it
		// walks the pipeline's operand scoreboard).
		for i := range q.readyBuf {
			q.readyBuf[i] = 0
		}
		oldest := -1
		var oldestSeq uint64
		for it := q.usedPositions(); ; {
			pos, ok := it.next()
			if !ok {
				break
			}
			r := q.requestAt(pos)
			if !ready(r.Handle) {
				continue
			}
			q.readyBuf[pos>>6] |= 1 << (pos & 63)
			if oldest == -1 || r.Seq < oldestSeq {
				oldest, oldestSeq = pos, r.Seq
			}
		}
		if oldest >= 0 {
			r := q.requestAt(oldest)
			if fuTryAlloc(r.FU) {
				granted = append(granted, *r)
				positions = append(positions, oldest)
				// Consume the bit so the positional passes skip this grant.
				q.readyBuf[oldest>>6] &^= 1 << (oldest & 63)
			}
		}
	}

	passes := 1
	if q.cfg.Flexible {
		// Idealized flexible priority: marked requests first, then the rest.
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		wantMarked := q.cfg.Flexible && pass == 0
		any := !q.cfg.Flexible
		if q.cfg.AgeMatrix {
			// Positional pass over the readiness cache: visits only the
			// ready entries (ascending, so grant order matches the plain
			// scan exactly); granted entries consume their bit.
			for w := 0; w < len(q.readyBuf) && len(granted) < issueWidth; w++ {
				for rb := q.readyBuf[w]; rb != 0 && len(granted) < issueWidth; rb &= rb - 1 {
					pos := w<<6 + bits.TrailingZeros64(rb)
					r := q.requestAt(pos)
					if !any && r.Marked != wantMarked {
						continue
					}
					if !fuTryAlloc(r.FU) {
						continue
					}
					q.readyBuf[w] &^= 1 << (pos & 63)
					granted = append(granted, *r)
					positions = append(positions, pos)
				}
			}
			continue
		}
		it := q.usedPositions()
		for len(granted) < issueWidth {
			pos, ok := it.next()
			if !ok {
				break
			}
			r := q.requestAt(pos)
			if q.cfg.Kind != Shifting && q.slots[pos].granted {
				continue
			}
			if !any && r.Marked != wantMarked {
				continue
			}
			if !ready(r.Handle) {
				continue
			}
			if !fuTryAlloc(r.FU) {
				continue
			}
			if q.cfg.Kind != Shifting {
				q.slots[pos].granted = true
			}
			granted = append(granted, *r)
			positions = append(positions, pos)
		}
	}

	// Free granted entries in descending position order: shifting-queue
	// compaction keeps earlier indices valid, and the free-list push order
	// is part of the deterministic placement RNG stream. Positions arrive
	// nearly sorted ascending, so the insertion sort is effectively linear.
	for i := 1; i < len(positions); i++ {
		p := positions[i]
		j := i - 1
		for j >= 0 && positions[j] < p {
			positions[j+1] = positions[j]
			j--
		}
		positions[j+1] = p
	}
	for _, p := range positions {
		q.removeAt(p)
	}
	q.grantBuf, q.posBuf = granted, positions
	return granted
}

// usedIter walks used positions in ascending (priority) order. For the
// Random and Circular kinds it consumes the used bitset word by word with
// trailing-zero counts; for Shifting it indexes the compacted list. It is a
// value type so the per-cycle select loop stays allocation-free.
type usedIter struct {
	q    *Queue
	kind Kind
	word int
	bits uint64
	idx  int // Shifting index
}

func (q *Queue) usedPositions() usedIter {
	it := usedIter{q: q, kind: q.cfg.Kind}
	if it.kind != Shifting && len(q.usedMask) > 0 {
		it.bits = q.usedMask[0]
	}
	return it
}

func (it *usedIter) next() (int, bool) {
	if it.kind == Shifting {
		if it.idx >= len(it.q.list) {
			return 0, false
		}
		pos := it.idx
		it.idx++
		return pos, true
	}
	for {
		if it.bits != 0 {
			pos := it.word<<6 + bits.TrailingZeros64(it.bits)
			it.bits &= it.bits - 1
			return pos, true
		}
		it.word++
		if it.word >= len(it.q.usedMask) {
			return 0, false
		}
		it.bits = it.q.usedMask[it.word]
	}
}

// requestAt returns the queued request at a used position.
func (q *Queue) requestAt(pos int) *Request {
	if q.cfg.Kind == Shifting {
		return &q.list[pos]
	}
	return &q.slots[pos].req
}

// removeAt frees the entry at a known position.
func (q *Queue) removeAt(pos int) {
	switch q.cfg.Kind {
	case Random:
		s := &q.slots[pos]
		if !s.used {
			panic(fmt.Sprintf("iq: removeAt of free position %d", pos))
		}
		if s.priority {
			q.freePri.push(pos)
		} else {
			q.freeNrm.push(pos)
		}
		*s = slot{}
		q.usedMask[pos>>6] &^= 1 << (pos & 63)
		q.count--
	case Circular:
		s := &q.slots[pos]
		if !s.used {
			panic(fmt.Sprintf("iq: removeAt of free position %d", pos))
		}
		*s = slot{}
		q.usedMask[pos>>6] &^= 1 << (pos & 63)
		q.count--
	case Shifting:
		q.list = append(q.list[:pos], q.list[pos+1:]...) // compaction
		q.count--
	}
}

// CheckInvariants audits the queue's structural state: occupancy within
// capacity and consistent with the slot/list contents, priority entries
// only in the reserved positions and never more than configured, free
// lists disjoint from used slots, and no stale transient grant marks.
// Violations wrap simerr.ErrInvariant.
func (q *Queue) CheckInvariants() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: iq(%s): %s", simerr.ErrInvariant, q.cfg.Kind, fmt.Sprintf(format, args...))
	}
	if q.count < 0 || q.count > q.cfg.Size {
		return bad("occupancy %d outside [0,%d]", q.count, q.cfg.Size)
	}
	switch q.cfg.Kind {
	case Random, Circular:
		used, priority := 0, 0
		for pos := range q.slots {
			s := &q.slots[pos]
			if got := q.usedMask[pos>>6]&(1<<(pos&63)) != 0; got != s.used {
				return bad("used bitset disagrees with slot %d (bit %v, slot %v)", pos, got, s.used)
			}
			if !s.used {
				if s.priority {
					return bad("free position %d still flagged priority", pos)
				}
				continue
			}
			used++
			if s.granted {
				return bad("position %d holds a stale grant mark", pos)
			}
			if s.priority {
				priority++
				if pos >= q.cfg.PriorityEntries {
					return bad("priority instruction in normal position %d", pos)
				}
			}
		}
		if used != q.count {
			return bad("occupancy %d but %d used slots", q.count, used)
		}
		if priority > q.cfg.PriorityEntries {
			return bad("%d priority entries in use, %d configured", priority, q.cfg.PriorityEntries)
		}
		if q.cfg.Kind == Random {
			if got, want := q.freePri.len()+priority, q.cfg.PriorityEntries; got != want {
				return bad("priority free list (%d) + used (%d) ≠ reserved (%d)", q.freePri.len(), priority, want)
			}
			if got, want := q.freeNrm.len()+(used-priority), q.cfg.Size-q.cfg.PriorityEntries; got != want {
				return bad("normal free list (%d) + used (%d) ≠ capacity (%d)", q.freeNrm.len(), used-priority, want)
			}
			for _, pos := range q.freePri.buf {
				if pos < 0 || pos >= q.cfg.PriorityEntries || q.slots[pos].used {
					return bad("priority free list holds invalid or used position %d", pos)
				}
			}
			for _, pos := range q.freeNrm.buf {
				if pos < q.cfg.PriorityEntries || pos >= q.cfg.Size || q.slots[pos].used {
					return bad("normal free list holds invalid or used position %d", pos)
				}
			}
		}
	case Shifting:
		if len(q.list) != q.count {
			return bad("occupancy %d but list length %d", q.count, len(q.list))
		}
		for i := 1; i < len(q.list); i++ {
			if q.list[i].Seq <= q.list[i-1].Seq {
				return bad("age order broken at position %d (seq %d after %d)", i, q.list[i].Seq, q.list[i-1].Seq)
			}
		}
	}
	return nil
}

// Drain empties the queue (used on pipeline reconfiguration in tests).
func (q *Queue) Drain() {
	*q = *New(q.cfg)
}

// Reset restores the freshly-constructed state without reallocating: slots
// and masks cleared, free lists rebuilt with their construction seeds and
// push order so the deterministic random placement sequence restarts
// identically.
func (q *Queue) Reset() {
	for i := range q.slots {
		q.slots[i] = slot{}
	}
	q.list = q.list[:0]
	for i := range q.usedMask {
		q.usedMask[i] = 0
	}
	q.count = 0
	q.tail = 0
	if q.cfg.Kind == Random {
		q.freeNrm.buf = q.freeNrm.buf[:0]
		q.freeNrm.rng = 0xC0FFEE
		for i := q.cfg.PriorityEntries; i < q.cfg.Size; i++ {
			q.freeNrm.push(i)
		}
		q.freePri.buf = q.freePri.buf[:0]
		q.freePri.rng = 0xBEEF
		for i := 0; i < q.cfg.PriorityEntries; i++ {
			q.freePri.push(i)
		}
	}
}

// Kind returns the queue organisation.
func (q *Queue) Kind() Kind { return q.cfg.Kind }

// PriorityEntries returns the number of reserved head entries.
func (q *Queue) PriorityEntries() int { return q.cfg.PriorityEntries }

// AgeMatrixDelayFactor is the paper's measured IQ-delay increase from adding
// an age matrix (§V-G1: +13% from the HSPICE layout study). Experiments use
// it to convert AGE IPC into performance (Fig. 15b).
const AgeMatrixDelayFactor = 1.13
