package iq

import (
	"testing"

	"repro/internal/isa"
)

func poolRouter(fu int) int {
	switch isa.Class(fu) {
	case isa.ClassIntALU:
		return 0
	case isa.ClassIntMulDiv:
		return 1
	case isa.ClassLoad, isa.ClassStore:
		return 2
	case isa.ClassFPU:
		return 3
	}
	return 0
}

func distCfg() DistributedConfig {
	return DistributedConfig{
		NumQueues:       4,
		TotalSize:       64,
		PriorityEntries: 6,
		Router:          poolRouter,
	}
}

func TestDistributedSizing(t *testing.T) {
	d := NewDistributed(distCfg())
	qs := d.Queues()
	if len(qs) != 4 {
		t.Fatalf("queues = %d", len(qs))
	}
	total, prio := 0, 0
	for _, q := range qs {
		total += q.Size()
		prio += q.PriorityEntries()
	}
	if total != 64 {
		t.Errorf("total size = %d", total)
	}
	if prio != 6 {
		t.Errorf("priority entries = %d", prio)
	}
	// Round-robin: queues 0 and 1 get 2 each, 2 and 3 get 1 each.
	if qs[0].PriorityEntries() != 2 || qs[2].PriorityEntries() != 1 {
		t.Errorf("priority distribution: %d,%d,%d,%d",
			qs[0].PriorityEntries(), qs[1].PriorityEntries(),
			qs[2].PriorityEntries(), qs[3].PriorityEntries())
	}
}

func TestDistributedRouting(t *testing.T) {
	d := NewDistributed(distCfg())
	alu := Request{Handle: 1, Seq: 1, FU: int(isa.ClassIntALU)}
	fpu := Request{Handle: 2, Seq: 2, FU: int(isa.ClassFPU)}
	ld := Request{Handle: 3, Seq: 3, FU: int(isa.ClassLoad)}
	st := Request{Handle: 4, Seq: 4, FU: int(isa.ClassStore)}
	for _, r := range []Request{alu, fpu, ld, st} {
		if !d.DispatchNormal(r) {
			t.Fatalf("dispatch of %+v failed", r)
		}
	}
	qs := d.Queues()
	if qs[0].Occupancy() != 1 || qs[3].Occupancy() != 1 || qs[2].Occupancy() != 2 {
		t.Errorf("routing wrong: %d,%d,%d,%d",
			qs[0].Occupancy(), qs[1].Occupancy(), qs[2].Occupancy(), qs[3].Occupancy())
	}
	if d.Occupancy() != 4 {
		t.Errorf("total occupancy = %d", d.Occupancy())
	}
}

func TestDistributedSelectSharesWidth(t *testing.T) {
	d := NewDistributed(distCfg())
	for i := 0; i < 6; i++ {
		d.DispatchNormal(Request{Handle: i, Seq: uint64(i), FU: int(isa.ClassIntALU)})
	}
	for i := 6; i < 10; i++ {
		d.DispatchNormal(Request{Handle: i, Seq: uint64(i), FU: int(isa.ClassFPU)})
	}
	granted := d.Select(4, func(int) bool { return true }, func(int) bool { return true })
	if len(granted) != 4 {
		t.Errorf("granted %d, want total issue width 4", len(granted))
	}
	if d.Occupancy() != 6 {
		t.Errorf("occupancy after select = %d", d.Occupancy())
	}
}

func TestDistributedPriorityPartition(t *testing.T) {
	d := NewDistributed(distCfg())
	// ALU queue has 2 priority entries.
	p := Request{Handle: 1, Seq: 1, FU: int(isa.ClassIntALU)}
	if !d.DispatchPriority(p) || !d.DispatchPriority(Request{Handle: 2, Seq: 2, FU: int(isa.ClassIntALU)}) {
		t.Fatal("priority dispatch failed")
	}
	if d.DispatchPriority(Request{Handle: 3, Seq: 3, FU: int(isa.ClassIntALU)}) {
		t.Error("ALU queue accepted a third priority entry")
	}
	// A different class still has its own partition.
	if !d.DispatchPriority(Request{Handle: 4, Seq: 4, FU: int(isa.ClassFPU)}) {
		t.Error("FPU priority partition unavailable")
	}
}

func TestDistributedConfigPanics(t *testing.T) {
	bad := []DistributedConfig{
		{NumQueues: 0, TotalSize: 64, Router: poolRouter},
		{NumQueues: 4, TotalSize: 64},                    // no router
		{NumQueues: 8, TotalSize: 4, Router: poolRouter}, // too small
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			NewDistributed(cfg)
		}()
	}
}

func TestFlexibleSelectRanksMarked(t *testing.T) {
	q := New(Config{Size: 8, Kind: Random, Flexible: true})
	// Unmarked at the best position, marked later.
	q.DispatchNormal(Request{Handle: 1, Seq: 1, FU: int(isa.ClassIntALU)})
	q.DispatchNormal(Request{Handle: 2, Seq: 2, FU: int(isa.ClassIntALU), Marked: true})
	granted := q.Select(1, func(int) bool { return true }, func(int) bool { return true })
	if len(granted) != 1 || granted[0].Handle != 2 {
		t.Errorf("granted %v, want the marked request", granted)
	}
	// Second pass picks the unmarked one.
	granted = q.Select(1, func(int) bool { return true }, func(int) bool { return true })
	if len(granted) != 1 || granted[0].Handle != 1 {
		t.Errorf("granted %v, want the unmarked request", granted)
	}
}

func TestFlexibleSelectFillsWidthAcrossPasses(t *testing.T) {
	q := New(Config{Size: 8, Kind: Random, Flexible: true})
	q.DispatchNormal(Request{Handle: 1, Seq: 1, FU: int(isa.ClassIntALU), Marked: true})
	q.DispatchNormal(Request{Handle: 2, Seq: 2, FU: int(isa.ClassIntALU)})
	q.DispatchNormal(Request{Handle: 3, Seq: 3, FU: int(isa.ClassIntALU)})
	granted := q.Select(3, func(int) bool { return true }, func(int) bool { return true })
	if len(granted) != 3 {
		t.Fatalf("granted %d, want 3", len(granted))
	}
	if granted[0].Handle != 1 {
		t.Errorf("marked request not first: %v", granted)
	}
	if q.Occupancy() != 0 {
		t.Error("entries not freed")
	}
}

func TestFlexibleConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("flexible + priority entries should panic")
		}
	}()
	New(Config{Size: 8, Kind: Random, Flexible: true, PriorityEntries: 2})
}
