// Package core implements the PUBS scheme — the paper's primary
// contribution: predicting whether each decoding instruction belongs to an
// unconfident branch slice (§III-A), the hardware-cost-reduced table
// organisation with XOR-folded hashed tags (§IV), and the MPKI-driven mode
// switch (§III-B3). The issue-queue priority entries themselves live in
// internal/iq; this package produces the per-instruction "unconfident"
// decision the dispatch stage consumes.
package core

import (
	"fmt"

	"repro/internal/simerr"
)

// Ptr is a compressed pointer into a set-associative table: the paper's
// c = i ‖ t data (index concatenated with hashed tag, Fig. 6).
type Ptr struct {
	Idx   uint32 // set index
	Tag   uint32 // hashed tag
	Valid bool
}

// splitPC divides a PC into a set index and the remaining tag portion.
// PCs are word addresses, so the low two bits are dropped first.
func splitPC(pc uint64, sets int) (idx uint32, tagPart uint64) {
	w := pc >> 2
	return uint32(w & uint64(sets-1)), w / uint64(sets)
}

// FoldTag XOR-folds the tag portion of a PC into `bits` bits (Fig. 7). The
// paper finds fold widths of 8 (brslice_tab) and 4 (conf_tab) lose almost
// no performance while slashing storage. bits == 0 yields a constant tag
// (the tagless organisation of §IV).
func FoldTag(tagPart uint64, bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits > 32 {
		bits = 32
	}
	mask := uint64(1)<<bits - 1
	var h uint64
	for tagPart != 0 {
		h ^= tagPart & mask
		tagPart >>= uint(bits)
	}
	return uint32(h)
}

// Confidence is the tri-state result of a confidence lookup.
type Confidence uint8

const (
	// ConfUnknown: no entry allocated — treated as confident (§III-A3).
	ConfUnknown Confidence = iota
	// ConfConfident: counter saturated at its maximum.
	ConfConfident
	// ConfUnconfident: counter below maximum.
	ConfUnconfident
)

func (c Confidence) String() string {
	switch c {
	case ConfConfident:
		return "confident"
	case ConfUnconfident:
		return "unconfident"
	default:
		return "unknown"
	}
}

// ConfTable is the conf_tab: a set-associative table of JRS saturating
// *resetting* counters, indexed by branch PC, with XOR-folded tags.
type ConfTable struct {
	sets        int
	ways        int
	counterMax  uint8
	counterBits int
	tagBits     int
	blind       bool
	entries     []confEntry
	tick        uint64
}

type confEntry struct {
	valid   bool
	tag     uint32
	counter uint8
	lru     uint64
}

// NewConfTable builds a conf_tab. counterBits selects the resetting-counter
// width (paper sweeps 2..8, optimum 6). blind makes every branch estimate
// unconfident without consulting counters (the "blind" bar of Fig. 11).
func NewConfTable(sets, ways, counterBits, tagBits int, blind bool) *ConfTable {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("core: conf_tab sets must be a positive power of two")
	}
	if ways <= 0 {
		panic("core: conf_tab ways must be positive")
	}
	if counterBits < 1 || counterBits > 8 {
		panic(fmt.Sprintf("core: conf_tab counter bits %d out of range [1,8]", counterBits))
	}
	var max uint8
	if counterBits == 8 {
		max = 255
	} else {
		max = uint8(1)<<counterBits - 1
	}
	return &ConfTable{
		sets:        sets,
		ways:        ways,
		counterMax:  max,
		counterBits: counterBits,
		tagBits:     tagBits,
		blind:       blind,
		entries:     make([]confEntry, sets*ways),
	}
}

// PointerFor returns the c_C pointer (index ‖ hashed tag) that brslice_tab
// entries store to reach this branch's confidence counter.
func (t *ConfTable) PointerFor(pc uint64) Ptr {
	idx, tagPart := splitPC(pc, t.sets)
	return Ptr{Idx: idx, Tag: FoldTag(tagPart, t.tagBits), Valid: true}
}

func (t *ConfTable) find(p Ptr) *confEntry {
	base := int(p.Idx) * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == p.Tag {
			return e
		}
	}
	return nil
}

// LookupPC estimates the confidence of the branch at pc (decode time).
func (t *ConfTable) LookupPC(pc uint64) Confidence {
	return t.LookupPtr(t.PointerFor(pc))
}

// LookupPtr estimates confidence through a stored c_C pointer.
func (t *ConfTable) LookupPtr(p Ptr) Confidence {
	if !p.Valid {
		return ConfUnknown
	}
	if t.blind {
		return ConfUnconfident
	}
	e := t.find(p)
	if e == nil {
		return ConfUnknown
	}
	if e.counter >= t.counterMax {
		return ConfConfident
	}
	return ConfUnconfident
}

// Update learns from an executed branch (§III-A1): allocate on first sight
// (counter = max if predicted correctly, else 0); otherwise saturating
// increment on correct, reset to 0 on incorrect.
func (t *ConfTable) Update(pc uint64, correct bool) {
	if t.blind {
		return
	}
	p := t.PointerFor(pc)
	t.tick++
	if e := t.find(p); e != nil {
		e.lru = t.tick
		if correct {
			if e.counter < t.counterMax {
				e.counter++
			}
		} else {
			e.counter = 0
		}
		return
	}
	// Allocate, replacing LRU.
	base := int(p.Idx) * t.ways
	victim := base
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < t.entries[victim].lru {
			victim = base + i
		}
	}
	var c uint8
	if correct {
		c = t.counterMax
	}
	t.entries[victim] = confEntry{valid: true, tag: p.Tag, counter: c, lru: t.tick}
}

// Reset invalidates every entry.
func (t *ConfTable) Reset() {
	for i := range t.entries {
		t.entries[i] = confEntry{}
	}
	t.tick = 0
}

// CounterMax exposes the saturation value (for tests).
func (t *ConfTable) CounterMax() uint8 { return t.counterMax }

// CostBits returns the storage of the table in bits: per entry one valid
// bit, the hashed tag, and the counter.
func (t *ConfTable) CostBits() int {
	return t.sets * t.ways * (1 + t.tagBits + t.counterBits)
}

// BrsliceTable is the brslice_tab: a set-associative table indexed by the PC
// of a (potential) slice instruction, whose payload is the c_C pointer to
// the associated branch's conf_tab entry.
type BrsliceTable struct {
	sets        int
	ways        int
	tagBits     int
	confPtrBits int // payload width, for cost accounting
	entries     []sliceEntry
	tick        uint64
}

type sliceEntry struct {
	valid bool
	tag   uint32
	ptr   Ptr // pointer into conf_tab
	lru   uint64
}

// NewBrsliceTable builds a brslice_tab. confPtrBits is the stored pointer
// width (log2(conf sets) + conf tag bits), used only for cost accounting.
func NewBrsliceTable(sets, ways, tagBits, confPtrBits int) *BrsliceTable {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("core: brslice_tab sets must be a positive power of two")
	}
	if ways <= 0 {
		panic("core: brslice_tab ways must be positive")
	}
	return &BrsliceTable{
		sets:        sets,
		ways:        ways,
		tagBits:     tagBits,
		confPtrBits: confPtrBits,
		entries:     make([]sliceEntry, sets*ways),
	}
}

// PointerFor returns the c_B pointer stored in def_tab for an instruction at
// pc, so later consumers can insert into this instruction's brslice_tab row.
func (t *BrsliceTable) PointerFor(pc uint64) Ptr {
	idx, tagPart := splitPC(pc, t.sets)
	return Ptr{Idx: idx, Tag: FoldTag(tagPart, t.tagBits), Valid: true}
}

// Lookup returns the conf_tab pointer linked to the instruction at pc.
func (t *BrsliceTable) Lookup(pc uint64) (Ptr, bool) {
	p := t.PointerFor(pc)
	base := int(p.Idx) * t.ways
	t.tick++
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == p.Tag {
			e.lru = t.tick
			return e.ptr, true
		}
	}
	return Ptr{}, false
}

// Insert links the instruction identified by cB to the branch confidence
// entry identified by cC (mark (2)/(3) in Fig. 3).
func (t *BrsliceTable) Insert(cB, cC Ptr) {
	if !cB.Valid || !cC.Valid {
		return
	}
	base := int(cB.Idx) * t.ways
	t.tick++
	victim := base
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == cB.Tag {
			e.ptr = cC
			e.lru = t.tick
			return
		}
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < t.entries[victim].lru {
			victim = base + i
		}
	}
	t.entries[victim] = sliceEntry{valid: true, tag: cB.Tag, ptr: cC, lru: t.tick}
}

// Reset invalidates every entry.
func (t *BrsliceTable) Reset() {
	for i := range t.entries {
		t.entries[i] = sliceEntry{}
	}
	t.tick = 0
}

// CostBits returns the table storage in bits: per entry one valid bit, the
// hashed tag, and the conf_tab pointer payload.
func (t *BrsliceTable) CostBits() int {
	return t.sets * t.ways * (1 + t.tagBits + t.confPtrBits)
}

// DefTable is the def_tab: one row per logical register (64), holding the
// c_B pointer of the instruction that most recently wrote the register.
// It is a full-size (non-tagged) table because the register space is tiny.
type DefTable struct {
	rows    []Ptr
	ptrBits int // c_B width, for cost accounting
}

// NewDefTable builds a def_tab with `regs` rows whose entries are ptrBits
// wide.
func NewDefTable(regs, ptrBits int) *DefTable {
	return &DefTable{rows: make([]Ptr, regs), ptrBits: ptrBits}
}

// Write records that the instruction with pointer cB wrote register r.
func (t *DefTable) Write(r int, cB Ptr) {
	if r <= 0 || r >= len(t.rows) { // register 0 is hardwired zero
		return
	}
	t.rows[r] = cB
}

// Read returns the c_B pointer of the last writer of register r.
func (t *DefTable) Read(r int) (Ptr, bool) {
	if r <= 0 || r >= len(t.rows) {
		return Ptr{}, false
	}
	p := t.rows[r]
	return p, p.Valid
}

// Reset clears every row.
func (t *DefTable) Reset() {
	for i := range t.rows {
		t.rows[i] = Ptr{}
	}
}

// CostBits returns def_tab storage: rows × (valid + pointer).
func (t *DefTable) CostBits() int { return len(t.rows) * (1 + t.ptrBits) }

// ---------------------------------------------------- invariant checking

// tagLimit returns the exclusive upper bound of a `bits`-wide hashed tag.
func tagLimit(bits int) uint64 {
	if bits <= 0 {
		return 1 // tagless tables fold every tag to 0
	}
	if bits > 32 {
		bits = 32
	}
	return uint64(1) << bits
}

// checkPtr validates one stored pointer against the geometry of the table
// it points into.
func checkPtr(what string, p Ptr, sets int, tagBits int) error {
	if !p.Valid {
		return nil
	}
	if int(p.Idx) >= sets {
		return fmt.Errorf("%w: core: %s index %d outside %d sets", simerr.ErrInvariant, what, p.Idx, sets)
	}
	if uint64(p.Tag) >= tagLimit(tagBits) {
		return fmt.Errorf("%w: core: %s tag %#x wider than %d bits", simerr.ErrInvariant, what, p.Tag, tagBits)
	}
	return nil
}

// CheckInvariants audits conf_tab state: counters within the configured
// saturation value and tags within the fold width.
func (t *ConfTable) CheckInvariants() error {
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		if e.counter > t.counterMax {
			return fmt.Errorf("%w: core: conf_tab counter %d above max %d", simerr.ErrInvariant, e.counter, t.counterMax)
		}
		if uint64(e.tag) >= tagLimit(t.tagBits) {
			return fmt.Errorf("%w: core: conf_tab tag %#x wider than %d bits", simerr.ErrInvariant, e.tag, t.tagBits)
		}
	}
	return nil
}

// CheckInvariants audits brslice_tab state: own tags within the fold width
// and every stored c_C pointer addressing a real conf_tab set/tag.
func (t *BrsliceTable) CheckInvariants(confSets, confTagBits int) error {
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		if uint64(e.tag) >= tagLimit(t.tagBits) {
			return fmt.Errorf("%w: core: brslice_tab tag %#x wider than %d bits", simerr.ErrInvariant, e.tag, t.tagBits)
		}
		if err := checkPtr("brslice_tab→conf_tab pointer", e.ptr, confSets, confTagBits); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants audits def_tab state: every stored c_B pointer must
// address a real brslice_tab set/tag.
func (t *DefTable) CheckInvariants(sliceSets, sliceTagBits int) error {
	for r := range t.rows {
		if err := checkPtr("def_tab→brslice_tab pointer", t.rows[r], sliceSets, sliceTagBits); err != nil {
			return err
		}
	}
	return nil
}
