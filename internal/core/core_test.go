package core

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestFoldTag(t *testing.T) {
	if FoldTag(0, 8) != 0 {
		t.Error("fold of zero must be zero")
	}
	if FoldTag(0xABCD, 0) != 0 {
		t.Error("zero-width fold must be constant 0")
	}
	// 8-bit fold of 0x1234 = 0x12 ^ 0x34.
	if got := FoldTag(0x1234, 8); got != 0x12^0x34 {
		t.Errorf("fold = %#x, want %#x", got, 0x12^0x34)
	}
	// Determinism.
	if FoldTag(0xDEADBEEF, 4) != FoldTag(0xDEADBEEF, 4) {
		t.Error("fold not deterministic")
	}
}

// Property: a folded tag always fits in the requested width.
func TestQuickFoldTagWidth(t *testing.T) {
	f := func(v uint64, bits uint8) bool {
		b := int(bits%32) + 1
		return uint64(FoldTag(v, b)) < uint64(1)<<uint(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfTableResettingCounter(t *testing.T) {
	ct := NewConfTable(16, 2, 3, 4, false) // 3-bit counter: max 7
	pc := uint64(0x100)

	if ct.LookupPC(pc) != ConfUnknown {
		t.Error("unallocated entry should be unknown")
	}
	// First correct prediction allocates at max → confident (§III-A1).
	ct.Update(pc, true)
	if ct.LookupPC(pc) != ConfConfident {
		t.Error("allocation on correct should start at max")
	}
	// An incorrect prediction resets to 0 → unconfident.
	ct.Update(pc, false)
	if ct.LookupPC(pc) != ConfUnconfident {
		t.Error("reset counter should be unconfident")
	}
	// Needs counterMax consecutive corrects to become confident again.
	for i := 0; i < 6; i++ {
		ct.Update(pc, true)
		if ct.LookupPC(pc) != ConfUnconfident {
			t.Fatalf("confident after only %d corrects", i+1)
		}
	}
	ct.Update(pc, true) // 7th
	if ct.LookupPC(pc) != ConfConfident {
		t.Error("not confident after counterMax corrects")
	}
	// Saturation: further corrects keep it at max.
	ct.Update(pc, true)
	if ct.LookupPC(pc) != ConfConfident {
		t.Error("saturation broken")
	}
}

func TestConfTableAllocationOnIncorrect(t *testing.T) {
	ct := NewConfTable(16, 2, 3, 4, false)
	ct.Update(0x200, false) // allocate at 0
	if ct.LookupPC(0x200) != ConfUnconfident {
		t.Error("allocation on incorrect should start at 0")
	}
}

func TestConfTableBlind(t *testing.T) {
	ct := NewConfTable(16, 2, 6, 4, true)
	ct.Update(0x100, true)
	if ct.LookupPC(0x100) != ConfUnconfident {
		t.Error("blind table must report everything unconfident")
	}
	if ct.LookupPtr(Ptr{}) != ConfUnknown {
		t.Error("invalid pointer must be unknown even when blind")
	}
}

func TestConfTableLRU(t *testing.T) {
	ct := NewConfTable(1, 2, 2, 8, false) // one set, 2 ways
	// Three distinct branches fight over two ways.
	a, b, c := uint64(0x0), uint64(0x4), uint64(0x8)
	ct.Update(a, false)
	ct.Update(b, false)
	ct.Update(a, false) // touch a: b is LRU
	ct.Update(c, false) // evicts b
	if ct.LookupPC(b) != ConfUnknown {
		t.Error("LRU entry survived")
	}
	if ct.LookupPC(a) == ConfUnknown || ct.LookupPC(c) == ConfUnknown {
		t.Error("resident entries lost")
	}
}

func TestBrsliceInsertLookup(t *testing.T) {
	bt := NewBrsliceTable(16, 2, 8, 12)
	ct := NewConfTable(16, 2, 6, 4, false)
	instPC, brPC := uint64(0x40), uint64(0x80)
	cB := bt.PointerFor(instPC)
	cC := ct.PointerFor(brPC)
	bt.Insert(cB, cC)
	got, hit := bt.Lookup(instPC)
	if !hit || got != cC {
		t.Errorf("lookup = %+v,%v", got, hit)
	}
	if _, hit := bt.Lookup(0x44); hit {
		t.Error("phantom brslice hit")
	}
	// Invalid pointers are ignored.
	bt.Insert(Ptr{}, cC)
	bt.Insert(cB, Ptr{})
}

func TestPUBSSliceGrowsTransitively(t *testing.T) {
	p := MustNew(DefaultConfig())
	// Program: I1: add r2 = r3+r4 ; I2: and r5 = r2&r6 ; B: beq r5,r0.
	i1 := isa.Inst{Op: isa.Add, Rd: isa.R(2), Rs1: isa.R(3), Rs2: isa.R(4)}
	i2 := isa.Inst{Op: isa.And, Rd: isa.R(5), Rs1: isa.R(2), Rs2: isa.R(6)}
	br := isa.Inst{Op: isa.Beq, Rs1: isa.R(5), Rs2: isa.RZero}
	pc1, pc2, pcB := uint64(0x10), uint64(0x20), uint64(0x30)

	// Make the branch unconfident.
	p.BranchExecuted(pcB, false)

	// Pass 1: the branch links its direct producer (I2).
	p.Decode(pc1, i1)
	p.Decode(pc2, i2)
	if p.Decode(pcB, br) != true {
		t.Fatal("branch with reset counter should be unconfident")
	}
	// Pass 2: I2 now hits brslice_tab → unconfident, and links I1.
	p.Decode(pc1, i1)
	if !p.Decode(pc2, i2) {
		t.Fatal("direct producer not recognised on second pass")
	}
	p.Decode(pcB, br)
	// Pass 3: I1 (indirect producer) is now in the slice too.
	if !p.Decode(pc1, i1) {
		t.Error("indirect producer not recognised on third pass (transitive link broken)")
	}
}

func TestPUBSConfidentSliceNotPrioritized(t *testing.T) {
	p := MustNew(DefaultConfig())
	br := isa.Inst{Op: isa.Beq, Rs1: isa.R(5), Rs2: isa.RZero}
	pcB := uint64(0x30)
	// Saturate the counter: confident.
	for i := 0; i < 64; i++ {
		p.BranchExecuted(pcB, true)
	}
	if p.Decode(pcB, br) {
		t.Error("confident branch flagged unconfident")
	}
}

func TestPUBSZeroRegisterNeverLinks(t *testing.T) {
	p := MustNew(DefaultConfig())
	// A branch whose only source is r0 must create no links.
	br := isa.Inst{Op: isa.Beq, Rs1: isa.RZero, Rs2: isa.RZero}
	p.BranchExecuted(0x30, false)
	p.Decode(0x30, br)
	// Nothing should be linked anywhere: a random instruction stays out.
	if p.Decode(0x10, isa.Inst{Op: isa.Add, Rd: isa.R(2), Rs1: isa.R(3), Rs2: isa.R(4)}) {
		t.Error("instruction with no slice membership flagged")
	}
}

func TestModeSwitch(t *testing.T) {
	m := NewModeSwitch(1000, 2.0)
	if !m.Enabled() {
		t.Error("mode switch should start enabled")
	}
	// Window 1: 5 misses per 1000 insts = 5.0 MPKI > 2.0 → disable.
	misses := uint64(0)
	for i := 0; i < 1000; i++ {
		if i%200 == 0 {
			misses++
		}
		m.OnCommit(misses)
	}
	if m.Enabled() {
		t.Error("high-MPKI window should disable PUBS")
	}
	// Window 2: no new misses → re-enable.
	for i := 0; i < 1000; i++ {
		m.OnCommit(misses)
	}
	if !m.Enabled() {
		t.Error("low-MPKI window should re-enable PUBS")
	}
	if m.Checks != 2 || m.EnabledWindows != 1 {
		t.Errorf("checks=%d enabled=%d", m.Checks, m.EnabledWindows)
	}
}

func TestCostMatchesPaper(t *testing.T) {
	bd := Cost(DefaultConfig())
	if kb := bd.TotalKB(); kb < 3.5 || kb > 4.5 {
		t.Errorf("default PUBS cost %.2f KB, paper reports ≈4.0 KB", kb)
	}
	// Hashing must save a large factor over full tags (§IV).
	full := UnhashedCost(DefaultConfig())
	if full.TotalKB() < 2*bd.TotalKB() {
		t.Errorf("hashed (%.1f KB) vs full (%.1f KB): hashing saves too little",
			bd.TotalKB(), full.TotalKB())
	}
	// def_tab is tiny (64 rows).
	if bd.DefKB() > 0.25 {
		t.Errorf("def_tab cost %.2f KB too large", bd.DefKB())
	}
	// Blind drops conf_tab entirely.
	blind := DefaultConfig()
	blind.Blind = true
	if Cost(blind).ConfBits != 0 {
		t.Error("blind config should have no conf_tab cost")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	disabled := Config{}
	if err := disabled.Validate(); err != nil {
		t.Error("disabled config must validate trivially")
	}
	bad := DefaultConfig()
	bad.ConfSets = 3
	if bad.Validate() == nil {
		t.Error("non-power-of-two sets accepted")
	}
	bad = DefaultConfig()
	bad.ConfCounterBits = 9
	if bad.Validate() == nil {
		t.Error("9-bit counter accepted")
	}
	bad = DefaultConfig()
	bad.ModeWindowInsts = 0
	if bad.Validate() == nil {
		t.Error("zero mode window accepted")
	}
}

func TestTaglessAliases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tagless = true
	p := MustNew(cfg)
	// With no tags, two branches mapping to the same set share the counter:
	// aliasing is observable.
	a := uint64(0x100)
	b := a + uint64(cfg.ConfSets)*4 // same index, different (dropped) tag
	p.BranchExecuted(a, false)
	if p.Conf.LookupPC(b) != ConfUnconfident {
		t.Error("tagless organisation should alias same-index branches")
	}
}

// Property: after Update(pc, correct) the entry for pc exists, and an
// incorrect update always yields an unconfident estimate.
func TestQuickConfUpdateLookup(t *testing.T) {
	ct := NewConfTable(256, 4, 6, 4, false)
	f := func(pc uint64, correct bool) bool {
		ct.Update(pc, correct)
		got := ct.LookupPC(pc)
		if got == ConfUnknown {
			return false // just updated: must be present
		}
		if !correct && got != ConfUnconfident {
			return false // reset counter can never be confident
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: def_tab read returns exactly what was written for valid
// registers and nothing for r0.
func TestQuickDefTable(t *testing.T) {
	dt := NewDefTable(isa.NumLogicalRegs, 17)
	f := func(reg uint8, idx uint32, tag uint32) bool {
		r := int(reg % isa.NumLogicalRegs)
		p := Ptr{Idx: idx, Tag: tag, Valid: true}
		dt.Write(r, p)
		got, ok := dt.Read(r)
		if r == 0 {
			return !ok
		}
		return ok && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
