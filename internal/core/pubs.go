package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/simerr"
)

// Config holds every PUBS parameter (the paper's Table II plus the knobs
// its sensitivity studies sweep).
type Config struct {
	// Enable turns the whole scheme on. When false the pipeline behaves as
	// the base machine (uniform random-queue IQ).
	Enable bool

	// PriorityEntries is the number of IQ head entries reserved for
	// unconfident-slice instructions (Fig. 10 optimum: 6).
	PriorityEntries int

	// StallDispatch selects the dispatch policy when no priority entry is
	// free for an unconfident-slice instruction: true stalls dispatch (the
	// paper's better-performing default), false falls back to a normal
	// entry (the "non-stall" bars of Fig. 10).
	StallDispatch bool

	// FlexibleSelect replaces the priority-entry partition with the
	// idealized §III-C1 select logic that ranks unconfident-slice requests
	// first regardless of queue position. The paper deems the circuit
	// impractical; it is modelled as an upper bound on the partitioned
	// design (no reserved entries, no dispatch stalls).
	FlexibleSelect bool

	// conf_tab geometry (§IV): set-associative, hashed 4-bit tags, 6-bit
	// resetting counters by default.
	ConfSets        int
	ConfWays        int
	ConfCounterBits int
	ConfTagBits     int

	// Blind estimates every branch unconfident, eliminating conf_tab (the
	// rightmost bar of Fig. 11).
	Blind bool

	// brslice_tab geometry (§IV): set-associative, hashed 8-bit tags.
	SliceSets    int
	SliceWays    int
	SliceTagBits int

	// Tagless drops the tags from both tables (the §IV preliminary
	// evaluation found this performs worse than set-associative+tags).
	Tagless bool

	// Mode switching (§III-B3): PUBS is enabled only while the observed LLC
	// MPKI over the sampling window stays below the threshold.
	ModeSwitch        bool
	ModeWindowInsts   uint64
	ModeThresholdMPKI float64
}

// DefaultConfig returns the paper's PUBS parameters (Table II): 6 priority
// entries with the stall policy, a 1K-entry 4-way conf_tab with 6-bit
// resetting counters and 4-bit hashed tags, a 1K-entry 4-way brslice_tab
// with 8-bit hashed tags, and mode switching at 1.0 LLC MPKI sampled every
// 20K instructions. Total cost ≈ 4.0 KB (Table III).
func DefaultConfig() Config {
	return Config{
		Enable:            true,
		PriorityEntries:   6,
		StallDispatch:     true,
		ConfSets:          256,
		ConfWays:          4,
		ConfCounterBits:   6,
		ConfTagBits:       4,
		SliceSets:         256,
		SliceWays:         4,
		SliceTagBits:      8,
		ModeSwitch:        true,
		ModeWindowInsts:   20_000,
		ModeThresholdMPKI: 1.0,
	}
}

// Validate checks the configuration. Rejections wrap
// simerr.ErrInvalidConfig.
func (c Config) Validate() error {
	if !c.Enable {
		return nil
	}
	invalid := func(format string, args ...any) error {
		return fmt.Errorf("%w: core: %s", simerr.ErrInvalidConfig, fmt.Sprintf(format, args...))
	}
	if c.PriorityEntries < 0 {
		return invalid("negative priority entries")
	}
	if c.ConfSets <= 0 || c.ConfSets&(c.ConfSets-1) != 0 {
		return invalid("ConfSets must be a positive power of two")
	}
	if c.SliceSets <= 0 || c.SliceSets&(c.SliceSets-1) != 0 {
		return invalid("SliceSets must be a positive power of two")
	}
	if c.ConfWays <= 0 || c.SliceWays <= 0 {
		return invalid("table ways must be positive")
	}
	if !c.Blind && (c.ConfCounterBits < 1 || c.ConfCounterBits > 8) {
		return invalid("ConfCounterBits %d out of range [1,8]", c.ConfCounterBits)
	}
	if c.ModeSwitch && c.ModeWindowInsts == 0 {
		return invalid("mode switch requires a sampling window")
	}
	return nil
}

// ConfPtrBits returns the width of a c_C pointer (index ‖ hashed tag).
func (c Config) ConfPtrBits() int { return log2(c.ConfSets) + c.ConfTagBits }

// SlicePtrBits returns the width of a c_B pointer.
func (c Config) SlicePtrBits() int { return log2(c.SliceSets) + c.SliceTagBits }

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// PUBS ties the three tables together and implements the decode-time
// protocol of §III-A3 plus the execute-time confidence update.
type PUBS struct {
	cfg   Config
	Conf  *ConfTable
	Slice *BrsliceTable
	Def   *DefTable
	mode  *ModeSwitch

	// Decode-side statistics.
	UnconfBranches   uint64
	UnconfSliceInsts uint64
	DecodedBranches  uint64
}

// New builds the PUBS engine from a validated config.
func New(cfg Config) (*PUBS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	confTag, sliceTag := cfg.ConfTagBits, cfg.SliceTagBits
	if cfg.Tagless {
		confTag, sliceTag = 0, 0
	}
	counterBits := cfg.ConfCounterBits
	if counterBits == 0 {
		counterBits = 6
	}
	p := &PUBS{
		cfg:   cfg,
		Conf:  NewConfTable(cfg.ConfSets, cfg.ConfWays, counterBits, confTag, cfg.Blind),
		Slice: NewBrsliceTable(cfg.SliceSets, cfg.SliceWays, sliceTag, cfg.ConfPtrBits()),
		Def:   NewDefTable(isa.NumLogicalRegs, cfg.SlicePtrBits()),
	}
	if cfg.ModeSwitch {
		p.mode = NewModeSwitch(cfg.ModeWindowInsts, cfg.ModeThresholdMPKI)
	}
	return p, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *PUBS {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Active reports whether prioritization is currently in force (Enable plus
// the mode switch's current decision).
func (p *PUBS) Active() bool {
	if !p.cfg.Enable {
		return false
	}
	if p.mode != nil {
		return p.mode.Enabled()
	}
	return true
}

// Mode returns the mode switch, or nil when mode switching is disabled.
func (p *PUBS) Mode() *ModeSwitch { return p.mode }

// Reset restores all three tables, the mode switch, and the decode
// statistics to the freshly-constructed state.
func (p *PUBS) Reset() {
	p.Conf.Reset()
	p.Slice.Reset()
	p.Def.Reset()
	if p.mode != nil {
		p.mode.Reset()
	}
	p.UnconfBranches = 0
	p.UnconfSliceInsts = 0
	p.DecodedBranches = 0
}

// Decode processes one instruction at the decode stage, in program order,
// and reports whether it is predicted to belong to an unconfident branch
// slice. It performs the three §III-A steps:
//
//  1. A conditional branch consults conf_tab by PC; it is unconfident when
//     a counter exists below its maximum.
//  2. A non-branch consults brslice_tab by PC; on a hit the stored pointer
//     reaches the branch's counter.
//  3. Producers of the instruction's sources (via def_tab) are linked into
//     brslice_tab so the slice grows backward transitively.
//
// Table maintenance happens regardless of whether prioritization is
// currently active, so a mode-switch re-enable starts with warm tables.
func (p *PUBS) Decode(pc uint64, inst isa.Inst) bool {
	unconf := false
	switch {
	case inst.IsCondBranch():
		p.DecodedBranches++
		conf := p.Conf.LookupPC(pc)
		unconf = conf == ConfUnconfident
		if unconf {
			p.UnconfBranches++
		}
		// Link the branch's producers to its confidence counter.
		cC := p.Conf.PointerFor(pc)
		srcs, n := inst.Sources()
		for i := 0; i < n; i++ {
			if cB, ok := p.Def.Read(int(srcs[i])); ok {
				p.Slice.Insert(cB, cC)
			}
		}
	default:
		if ptr, hit := p.Slice.Lookup(pc); hit {
			unconf = p.Conf.LookupPtr(ptr) == ConfUnconfident
			if unconf {
				p.UnconfSliceInsts++
			}
			// Propagate the link to this instruction's producers (§III-A2
			// step 2, repeated every time the instruction decodes).
			srcs, n := inst.Sources()
			for i := 0; i < n; i++ {
				if cB, ok := p.Def.Read(int(srcs[i])); ok {
					p.Slice.Insert(cB, ptr)
				}
			}
		}
	}
	// Record this instruction as the latest writer of its destination.
	if inst.HasDest() {
		p.Def.Write(int(inst.Rd), p.Slice.PointerFor(pc))
	}
	return unconf
}

// BranchExecuted trains conf_tab with a resolved conditional branch.
func (p *PUBS) BranchExecuted(pc uint64, predictedCorrectly bool) {
	p.Conf.Update(pc, predictedCorrectly)
}

// CheckInvariants audits the three tables' structural state: counters
// within saturation, tags within their fold widths, and the def_tab →
// brslice_tab → conf_tab pointer chain addressing real sets. Violations
// wrap simerr.ErrInvariant.
func (p *PUBS) CheckInvariants() error {
	confTag, sliceTag := p.cfg.ConfTagBits, p.cfg.SliceTagBits
	if p.cfg.Tagless {
		confTag, sliceTag = 0, 0
	}
	if err := p.Conf.CheckInvariants(); err != nil {
		return err
	}
	if err := p.Slice.CheckInvariants(p.cfg.ConfSets, confTag); err != nil {
		return err
	}
	return p.Def.CheckInvariants(p.cfg.SliceSets, sliceTag)
}

// CostBreakdown itemises PUBS storage (Table III).
type CostBreakdown struct {
	DefBits     int
	BrsliceBits int
	ConfBits    int
}

// TotalKB returns the total cost in kilobytes.
func (c CostBreakdown) TotalKB() float64 {
	return float64(c.DefBits+c.BrsliceBits+c.ConfBits) / 8 / 1024
}

// DefKB returns def_tab cost in KB.
func (c CostBreakdown) DefKB() float64 { return float64(c.DefBits) / 8 / 1024 }

// BrsliceKB returns brslice_tab cost in KB.
func (c CostBreakdown) BrsliceKB() float64 { return float64(c.BrsliceBits) / 8 / 1024 }

// ConfKB returns conf_tab cost in KB.
func (c CostBreakdown) ConfKB() float64 { return float64(c.ConfBits) / 8 / 1024 }

// Cost computes the hardware cost of a PUBS configuration.
func Cost(cfg Config) CostBreakdown {
	counterBits := cfg.ConfCounterBits
	if counterBits == 0 {
		counterBits = 6
	}
	bd := CostBreakdown{
		DefBits:     isa.NumLogicalRegs * (1 + cfg.SlicePtrBits()),
		BrsliceBits: cfg.SliceSets * cfg.SliceWays * (1 + cfg.SliceTagBits + cfg.ConfPtrBits()),
	}
	if !cfg.Blind {
		bd.ConfBits = cfg.ConfSets * cfg.ConfWays * (1 + cfg.ConfTagBits + counterBits)
	}
	return bd
}

// UnhashedCost computes the cost with full (unhashed) tags, quantifying
// what the §IV hashing saves. PCs are modelled as 64-bit word addresses
// (62 significant bits, as in the paper's example).
func UnhashedCost(cfg Config) CostBreakdown {
	counterBits := cfg.ConfCounterBits
	if counterBits == 0 {
		counterBits = 6
	}
	const pcBits = 62
	sliceFullTag := pcBits - log2(cfg.SliceSets)
	confFullTag := pcBits - log2(cfg.ConfSets)
	slicePtr := log2(cfg.SliceSets) + sliceFullTag
	confPtr := log2(cfg.ConfSets) + confFullTag
	bd := CostBreakdown{
		DefBits:     isa.NumLogicalRegs * (1 + slicePtr),
		BrsliceBits: cfg.SliceSets * cfg.SliceWays * (1 + sliceFullTag + confPtr),
	}
	if !cfg.Blind {
		bd.ConfBits = cfg.ConfSets * cfg.ConfWays * (1 + confFullTag + counterBits)
	}
	return bd
}

// ModeSwitch gates PUBS on memory intensity (§III-B3): every WindowInsts
// committed instructions it compares the window's LLC MPKI against the
// threshold; PUBS stays enabled only below it.
type ModeSwitch struct {
	windowInsts   uint64
	thresholdMPKI float64

	enabled        bool
	instInWindow   uint64
	missesAtWindow uint64
	lastLLCMisses  uint64

	Checks         uint64
	EnabledWindows uint64
}

// NewModeSwitch builds a mode switch; PUBS starts enabled.
func NewModeSwitch(windowInsts uint64, thresholdMPKI float64) *ModeSwitch {
	if windowInsts == 0 {
		panic("core: mode switch window must be positive")
	}
	return &ModeSwitch{
		windowInsts:   windowInsts,
		thresholdMPKI: thresholdMPKI,
		enabled:       true,
	}
}

// Enabled reports the current decision.
func (m *ModeSwitch) Enabled() bool { return m.enabled }

// OnCommit advances the window by one committed instruction; llcMisses is
// the monotone cumulative LLC demand-miss counter. At each window boundary
// the decision is refreshed.
func (m *ModeSwitch) OnCommit(llcMisses uint64) {
	m.instInWindow++
	if m.instInWindow < m.windowInsts {
		return
	}
	delta := llcMisses - m.lastLLCMisses
	mpki := float64(delta) / float64(m.instInWindow) * 1000
	m.enabled = mpki < m.thresholdMPKI
	m.Checks++
	if m.enabled {
		m.EnabledWindows++
	}
	m.lastLLCMisses = llcMisses
	m.instInWindow = 0
}

// Reset restores the constructed state: PUBS enabled, all counters zero.
func (m *ModeSwitch) Reset() {
	m.enabled = true
	m.instInWindow = 0
	m.missesAtWindow = 0
	m.lastLLCMisses = 0
	m.Checks = 0
	m.EnabledWindows = 0
}

// ThresholdMPKI exposes the configured threshold.
func (m *ModeSwitch) ThresholdMPKI() float64 { return m.thresholdMPKI }
