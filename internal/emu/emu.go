// Package emu implements a functional emulator for the simulator's ISA.
// It executes a program architecturally and yields the committed dynamic
// instruction stream (one DynInst per executed instruction) that drives the
// cycle-level timing model — the standard trace-driven arrangement the PUBS
// paper's SimpleScalar-derived simulator also uses.
package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// DynInst is one dynamically executed instruction with its architectural
// outcome. The timing model consumes these in program order.
type DynInst struct {
	Seq    uint64 // commit sequence number, starting at 0
	Idx    int    // static instruction index
	PC     uint64 // byte address (Idx*4)
	Inst   isa.Inst
	Class  isa.Class
	Taken  bool   // control flow: branch/jump taken?
	Target uint64 // byte address of taken-path target (valid when control)
	NextPC uint64 // byte address actually fetched next
	Addr   uint64 // effective address for loads/stores
}

// Machine executes a program one instruction at a time.
type Machine struct {
	prog *isa.Program
	regs [isa.NumLogicalRegs]uint64 // FP regs hold Float64bits
	mem  []byte
	pc   int // instruction index
	seq  uint64
	done bool

	// dirty tracks which memory pages have been written since load, one bit
	// per pageSize-byte page. Snapshot copies only dirty pages and Restore
	// rebuilds clean ones from the pristine program image, so checkpoints of
	// large, sparsely-written memories stay compact.
	dirty []uint64
}

// New loads the program into a fresh machine.
func New(p *isa.Program) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{prog: p, pc: p.Entry}
	m.mem = make([]byte, p.MemSize)
	copy(m.mem, p.Data)
	m.dirty = make([]uint64, (numPages(len(m.mem))+63)/64)
	return m, nil
}

// MustNew is New, panicking on error.
func MustNew(p *isa.Program) *Machine {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Done reports whether the program has halted.
func (m *Machine) Done() bool { return m.done }

// Seq returns the number of instructions executed so far.
func (m *Machine) Seq() uint64 { return m.seq }

// Reg returns the architectural value of a register (for tests/inspection).
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// FReg returns a floating-point register's value.
func (m *Machine) FReg(r isa.Reg) float64 { return math.Float64frombits(m.regs[r]) }

// ReadWord returns the 8-byte word at addr (for tests/inspection).
func (m *Machine) ReadWord(addr uint64) uint64 { return m.load(addr) }

func (m *Machine) load(addr uint64) uint64 {
	if addr+8 > uint64(len(m.mem)) || addr%8 != 0 {
		panic(fmt.Sprintf("emu %q: bad load address %#x (mem %d) at pc %d",
			m.prog.Name, addr, len(m.mem), m.pc))
	}
	b := m.mem[addr : addr+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (m *Machine) store(addr, v uint64) {
	if addr+8 > uint64(len(m.mem)) || addr%8 != 0 {
		panic(fmt.Sprintf("emu %q: bad store address %#x (mem %d) at pc %d",
			m.prog.Name, addr, len(m.mem), m.pc))
	}
	// A store is 8-byte aligned and pageSize is a multiple of 8, so the
	// write never straddles a page boundary.
	m.dirty[addr>>pageShift>>6] |= 1 << (addr >> pageShift & 63)
	b := m.mem[addr : addr+8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func (m *Machine) setReg(r isa.Reg, v uint64) {
	if r == isa.RZero {
		return
	}
	m.regs[r] = v
}

func (m *Machine) fval(r isa.Reg) float64 { return math.Float64frombits(m.regs[r]) }
func (m *Machine) setF(r isa.Reg, v float64) {
	m.setReg(r, math.Float64bits(v))
}

// Step executes one instruction and returns its dynamic record.
// ok is false once the program has halted.
func (m *Machine) Step() (di DynInst, ok bool) {
	if m.done {
		return DynInst{}, false
	}
	idx := m.pc
	in := m.prog.Code[idx]
	di = DynInst{
		Seq:   m.seq,
		Idx:   idx,
		PC:    isa.PC(idx),
		Inst:  in,
		Class: in.Class(),
	}
	next := idx + 1

	switch in.Op {
	case isa.Nop:
	case isa.Add:
		m.setReg(in.Rd, m.regs[in.Rs1]+m.regs[in.Rs2])
	case isa.Sub:
		m.setReg(in.Rd, m.regs[in.Rs1]-m.regs[in.Rs2])
	case isa.And:
		m.setReg(in.Rd, m.regs[in.Rs1]&m.regs[in.Rs2])
	case isa.Or:
		m.setReg(in.Rd, m.regs[in.Rs1]|m.regs[in.Rs2])
	case isa.Xor:
		m.setReg(in.Rd, m.regs[in.Rs1]^m.regs[in.Rs2])
	case isa.Shl:
		m.setReg(in.Rd, m.regs[in.Rs1]<<(m.regs[in.Rs2]&63))
	case isa.Shr:
		m.setReg(in.Rd, m.regs[in.Rs1]>>(m.regs[in.Rs2]&63))
	case isa.Sra:
		m.setReg(in.Rd, uint64(int64(m.regs[in.Rs1])>>(m.regs[in.Rs2]&63)))
	case isa.Slt:
		m.setReg(in.Rd, b2u(int64(m.regs[in.Rs1]) < int64(m.regs[in.Rs2])))
	case isa.Sltu:
		m.setReg(in.Rd, b2u(m.regs[in.Rs1] < m.regs[in.Rs2]))

	case isa.Addi:
		m.setReg(in.Rd, m.regs[in.Rs1]+uint64(in.Imm))
	case isa.Andi:
		m.setReg(in.Rd, m.regs[in.Rs1]&uint64(in.Imm))
	case isa.Ori:
		m.setReg(in.Rd, m.regs[in.Rs1]|uint64(in.Imm))
	case isa.Xori:
		m.setReg(in.Rd, m.regs[in.Rs1]^uint64(in.Imm))
	case isa.Shli:
		m.setReg(in.Rd, m.regs[in.Rs1]<<(uint64(in.Imm)&63))
	case isa.Shri:
		m.setReg(in.Rd, m.regs[in.Rs1]>>(uint64(in.Imm)&63))
	case isa.Srai:
		m.setReg(in.Rd, uint64(int64(m.regs[in.Rs1])>>(uint64(in.Imm)&63)))
	case isa.Slti:
		m.setReg(in.Rd, b2u(int64(m.regs[in.Rs1]) < in.Imm))

	case isa.Mul:
		m.setReg(in.Rd, m.regs[in.Rs1]*m.regs[in.Rs2])
	case isa.Div:
		d := int64(m.regs[in.Rs2])
		if d == 0 {
			m.setReg(in.Rd, ^uint64(0))
		} else {
			m.setReg(in.Rd, uint64(int64(m.regs[in.Rs1])/d))
		}
	case isa.Rem:
		d := int64(m.regs[in.Rs2])
		if d == 0 {
			m.setReg(in.Rd, m.regs[in.Rs1])
		} else {
			m.setReg(in.Rd, uint64(int64(m.regs[in.Rs1])%d))
		}

	case isa.Ld:
		di.Addr = m.regs[in.Rs1] + uint64(in.Imm)
		m.setReg(in.Rd, m.load(di.Addr))
	case isa.St:
		di.Addr = m.regs[in.Rs1] + uint64(in.Imm)
		m.store(di.Addr, m.regs[in.Rs2])
	case isa.Fld:
		di.Addr = m.regs[in.Rs1] + uint64(in.Imm)
		m.regs[in.Rd] = m.load(di.Addr)
	case isa.Fst:
		di.Addr = m.regs[in.Rs1] + uint64(in.Imm)
		m.store(di.Addr, m.regs[in.Rs2])

	case isa.Fadd:
		m.setF(in.Rd, m.fval(in.Rs1)+m.fval(in.Rs2))
	case isa.Fsub:
		m.setF(in.Rd, m.fval(in.Rs1)-m.fval(in.Rs2))
	case isa.Fmul:
		m.setF(in.Rd, m.fval(in.Rs1)*m.fval(in.Rs2))
	case isa.Fdiv:
		m.setF(in.Rd, m.fval(in.Rs1)/m.fval(in.Rs2))
	case isa.Fclt:
		m.setReg(in.Rd, b2u(m.fval(in.Rs1) < m.fval(in.Rs2)))
	case isa.Fcvti:
		m.setReg(in.Rd, uint64(int64(m.fval(in.Rs1))))
	case isa.Fcvtf:
		m.setF(in.Rd, float64(int64(m.regs[in.Rs1])))

	case isa.Beq:
		di.Taken = m.regs[in.Rs1] == m.regs[in.Rs2]
	case isa.Bne:
		di.Taken = m.regs[in.Rs1] != m.regs[in.Rs2]
	case isa.Blt:
		di.Taken = int64(m.regs[in.Rs1]) < int64(m.regs[in.Rs2])
	case isa.Bge:
		di.Taken = int64(m.regs[in.Rs1]) >= int64(m.regs[in.Rs2])
	case isa.Jmp:
		di.Taken = true
		next = int(in.Imm)
	case isa.Jal:
		di.Taken = true
		m.setReg(in.Rd, uint64(idx+1))
		next = int(in.Imm)
	case isa.Jr:
		di.Taken = true
		next = int(m.regs[in.Rs1])
		if next < 0 || next >= len(m.prog.Code) {
			panic(fmt.Sprintf("emu %q: jr to invalid index %d at pc %d", m.prog.Name, next, idx))
		}

	case isa.Halt:
		m.done = true
		di.NextPC = di.PC
		m.seq++
		return di, true

	default:
		panic(fmt.Sprintf("emu %q: unimplemented op %v at pc %d", m.prog.Name, in.Op, idx))
	}

	if in.IsCondBranch() {
		di.Target = isa.PC(int(in.Imm))
		if di.Taken {
			next = int(in.Imm)
		}
	} else if in.IsControl() {
		di.Target = isa.PC(next)
	}
	di.NextPC = isa.PC(next)
	m.pc = next
	m.seq++
	return di, true
}

// Run executes up to max instructions (all of them if max == 0), returning
// the number executed. Useful for tests and workload calibration.
func (m *Machine) Run(max uint64) uint64 {
	var n uint64
	for !m.done && (max == 0 || n < max) {
		if _, ok := m.Step(); !ok {
			break
		}
		n++
	}
	return n
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
