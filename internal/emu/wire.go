package emu

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// Binary wire codec for Snapshot and Predecode — the building blocks of a
// serialized sampling plan (sampling.EncodePlan). The format is
// little-endian and position-defined, with just enough redundancy to
// reject structurally impossible inputs before they can panic a consumer;
// end-to-end integrity is the caller's job (the plan envelope carries a
// content hash over the whole payload).
//
// Snapshot layout:
//
//	u64   register count (must equal isa.NumLogicalRegs)
//	u64×R registers
//	u64   pc (static instruction index)
//	u64   seq
//	u8    done
//	u64   memLen
//	u64   progLen
//	u64   dirty word count, then the bitset words
//	u64   page count, then page count × pageSize raw page bytes
//
// Predecode layout:
//
//	u64   startSeq
//	u8    halted
//	u64   record count N
//	i32×N idx, i32×N next, u8×N flags, u64×N addr (columnar, in that order)

// wireReader is a bounds-checked cursor over an encoded buffer. Decoding
// never allocates proportionally to a length field before validating it
// against the bytes actually present.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("emu: truncated %s", what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *wireReader) u8(what string) uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("emu: truncated %s", what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// count reads a u64 length field and rejects values that cannot fit in the
// remaining buffer at width bytes per element, making huge fabricated
// lengths fail before any allocation.
func (r *wireReader) count(what string, width int) int {
	n := r.u64(what)
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b))/uint64(width) {
		r.fail("emu: %s count %d exceeds remaining payload", what, n)
		return 0
	}
	return int(n)
}

func (r *wireReader) bytes(what string, n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("emu: truncated %s", what)
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// WireBytes returns the exact encoded size of the snapshot, for
// presizing destination buffers.
func (s *Snapshot) WireBytes() int {
	return 8 + isa.NumLogicalRegs*8 + 8 + 8 + 1 + 8 + 8 +
		8 + len(s.dirty)*8 + 8 + len(s.pages)*pageSize
}

// AppendBinary appends the snapshot's wire encoding to b.
func (s *Snapshot) AppendBinary(b []byte) []byte {
	b = appendU64(b, uint64(isa.NumLogicalRegs))
	for _, v := range s.regs {
		b = appendU64(b, v)
	}
	b = appendU64(b, uint64(s.pc))
	b = appendU64(b, s.seq)
	b = append(b, boolByte(s.done))
	b = appendU64(b, uint64(s.memLen))
	b = appendU64(b, uint64(s.progLen))
	b = appendU64(b, uint64(len(s.dirty)))
	for _, w := range s.dirty {
		b = appendU64(b, w)
	}
	b = appendU64(b, uint64(len(s.pages)))
	for _, p := range s.pages {
		b = append(b, p...)
	}
	return b
}

// DecodeSnapshot decodes one snapshot from the front of b and returns the
// unconsumed remainder. The decoded snapshot satisfies every structural
// invariant Restore relies on: the dirty bitset is sized exactly for
// memLen, the page list matches the bitset's population count, and every
// page is exactly pageSize bytes.
func DecodeSnapshot(b []byte) (*Snapshot, []byte, error) {
	r := &wireReader{b: b}
	if n := r.u64("snapshot register count"); r.err == nil && n != isa.NumLogicalRegs {
		return nil, nil, fmt.Errorf("emu: snapshot has %d registers, want %d", n, isa.NumLogicalRegs)
	}
	s := &Snapshot{}
	for i := range s.regs {
		s.regs[i] = r.u64("snapshot registers")
	}
	s.pc = int(r.u64("snapshot pc"))
	s.seq = r.u64("snapshot seq")
	s.done = r.u8("snapshot done flag") != 0
	s.memLen = int(r.u64("snapshot memLen"))
	s.progLen = int(r.u64("snapshot progLen"))
	if r.err == nil && (s.memLen < 0 || s.progLen < 0 || s.pc < 0) {
		return nil, nil, fmt.Errorf("emu: snapshot with negative geometry (pc %d, mem %d, code %d)", s.pc, s.memLen, s.progLen)
	}
	nDirty := r.count("snapshot dirty bitset", 8)
	if r.err == nil {
		if want := (numPages(s.memLen) + 63) / 64; nDirty != want {
			return nil, nil, fmt.Errorf("emu: snapshot dirty bitset has %d words, want %d for %d bytes of memory", nDirty, want, s.memLen)
		}
		// Empty slices stay nil so a decoded snapshot is DeepEqual to the
		// one encoded — decode(encode(s)) is an identity, not merely an
		// equivalence.
		if nDirty > 0 {
			s.dirty = make([]uint64, nDirty)
		}
		popcount := 0
		for i := range s.dirty {
			s.dirty[i] = r.u64("snapshot dirty bitset")
			popcount += bits.OnesCount64(s.dirty[i])
		}
		if nPages := r.count("snapshot pages", pageSize); r.err == nil {
			if nPages != popcount {
				return nil, nil, fmt.Errorf("emu: snapshot carries %d pages but marks %d dirty", nPages, popcount)
			}
			if nPages > numPages(s.memLen) {
				return nil, nil, fmt.Errorf("emu: snapshot carries %d pages for %d bytes of memory", nPages, s.memLen)
			}
			if nPages > 0 {
				s.pages = make([][]byte, 0, nPages)
			}
			for i := 0; i < nPages; i++ {
				page := r.bytes("snapshot page", pageSize)
				if r.err != nil {
					break
				}
				// Copy so the snapshot does not alias the (possibly pooled
				// or reused) transport buffer.
				s.pages = append(s.pages, append([]byte(nil), page...))
			}
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return s, r.b, nil
}

// WireBytes returns the exact encoded size of the predecode buffer.
func (p *Predecode) WireBytes() int {
	return 8 + 1 + 8 + len(p.idx)*(4+4+1+8)
}

// AppendBinary appends the predecode buffer's wire encoding to b.
func (p *Predecode) AppendBinary(b []byte) []byte {
	b = appendU64(b, p.startSeq)
	b = append(b, boolByte(p.halted))
	b = appendU64(b, uint64(len(p.idx)))
	for _, v := range p.idx {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	for _, v := range p.next {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	b = append(b, p.flags...)
	for _, v := range p.addr {
		b = appendU64(b, v)
	}
	return b
}

// DecodePredecode decodes one predecode buffer from the front of b and
// returns the unconsumed remainder. Decoded slices are sized exactly (no
// append slack), so Bytes() reports the true resident footprint.
func DecodePredecode(b []byte) (*Predecode, []byte, error) {
	r := &wireReader{b: b}
	p := &Predecode{}
	p.startSeq = r.u64("predecode startSeq")
	p.halted = r.u8("predecode halted flag") != 0
	n := r.count("predecode records", 4+4+1+8)
	if r.err == nil {
		p.idx = make([]int32, n)
		p.next = make([]int32, n)
		p.flags = make([]uint8, n)
		p.addr = make([]uint64, n)
		for i := 0; i < n && r.err == nil; i++ {
			if len(r.b) < 4 {
				r.fail("emu: truncated predecode idx")
				break
			}
			p.idx[i] = int32(binary.LittleEndian.Uint32(r.b))
			r.b = r.b[4:]
		}
		for i := 0; i < n && r.err == nil; i++ {
			if len(r.b) < 4 {
				r.fail("emu: truncated predecode next")
				break
			}
			p.next[i] = int32(binary.LittleEndian.Uint32(r.b))
			r.b = r.b[4:]
		}
		if fl := r.bytes("predecode flags", n); r.err == nil {
			copy(p.flags, fl)
		}
		for i := 0; i < n && r.err == nil; i++ {
			p.addr[i] = r.u64("predecode addr")
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return p, r.b, nil
}
