package emu

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// Memory is checkpointed at page granularity: the machine records which
// pages stores have touched, a snapshot copies only those, and a restore
// rebuilds every other page from the pristine program image. pageSize is a
// power of two and a multiple of the 8-byte store width, so no store
// straddles a page.
const (
	pageShift = 12
	pageSize  = 1 << pageShift
)

func numPages(memLen int) int {
	return (memLen + pageSize - 1) / pageSize
}

// Snapshot is an immutable architectural checkpoint of a Machine:
// registers, PC, instruction count, halt flag, and a compacted
// copy-on-write memory image holding only the pages written since program
// load. A snapshot is safe to share between goroutines — Restore and
// NewFromSnapshot only read it — which is what lets one functional
// fast-forward seed many concurrent detailed simulations.
type Snapshot struct {
	regs    [isa.NumLogicalRegs]uint64
	pc      int
	seq     uint64
	done    bool
	memLen  int
	dirty   []uint64 // page bitset, same layout as Machine.dirty
	pages   [][]byte // copies of the dirty pages, in ascending page order
	progLen int      // len(prog.Code), to reject cross-program restores
}

// Seq returns the number of instructions executed when the snapshot was
// taken — the architectural position it restores to.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Done reports whether the snapshotted machine had halted.
func (s *Snapshot) Done() bool { return s.done }

// DirtyPages returns the number of memory pages the snapshot carries.
func (s *Snapshot) DirtyPages() int { return len(s.pages) }

// MemBytes returns the snapshot's memory footprint in bytes (the compacted
// page copies, not the full image).
func (s *Snapshot) MemBytes() int { return len(s.pages) * pageSize }

// Snapshot captures the machine's architectural state. Only pages written
// since load are copied; a machine that has streamed through gigabytes of
// read-mostly memory snapshots in proportion to what it wrote.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		regs:    m.regs,
		pc:      m.pc,
		seq:     m.seq,
		done:    m.done,
		memLen:  len(m.mem),
		dirty:   append([]uint64(nil), m.dirty...),
		progLen: len(m.prog.Code),
	}
	for w, word := range m.dirty {
		for word != 0 {
			p := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			start := p << pageShift
			end := min(start+pageSize, len(m.mem))
			page := make([]byte, pageSize)
			copy(page, m.mem[start:end])
			s.pages = append(s.pages, page)
		}
	}
	return s
}

// Restore rewinds the machine to a snapshot taken from the same program.
// Pages the machine has dirtied since load that the snapshot does not carry
// are rebuilt from the pristine program image; snapshot pages are copied
// in. The snapshot is not mutated and may be restored concurrently into
// other machines.
func (m *Machine) Restore(s *Snapshot) error {
	if s.memLen != len(m.mem) || s.progLen != len(m.prog.Code) {
		return fmt.Errorf("emu %q: snapshot from a different program (mem %d vs %d, code %d vs %d)",
			m.prog.Name, s.memLen, len(m.mem), s.progLen, len(m.prog.Code))
	}
	// Clean pages dirty in the machine but absent from the snapshot.
	for w, word := range m.dirty {
		stale := word &^ s.dirty[w]
		for stale != 0 {
			p := w<<6 + bits.TrailingZeros64(stale)
			stale &= stale - 1
			start := p << pageShift
			end := min(start+pageSize, len(m.mem))
			n := 0
			if start < len(m.prog.Data) {
				n = copy(m.mem[start:end], m.prog.Data[start:])
			}
			clear(m.mem[start+n : end])
		}
	}
	// Apply the snapshot's pages.
	i := 0
	for w, word := range s.dirty {
		for word != 0 {
			p := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			start := p << pageShift
			end := min(start+pageSize, len(m.mem))
			copy(m.mem[start:end], s.pages[i])
			i++
		}
	}
	copy(m.dirty, s.dirty)
	m.regs = s.regs
	m.pc = s.pc
	m.seq = s.seq
	m.done = s.done
	return nil
}

// NewFromSnapshot builds a fresh machine for prog positioned at the
// snapshot. prog must be the program the snapshot was taken from (or a
// bit-identical rebuild of it — workload programs are reconstructed per
// call, so pointer identity is deliberately not required).
func NewFromSnapshot(p *isa.Program, s *Snapshot) (*Machine, error) {
	m, err := New(p)
	if err != nil {
		return nil, err
	}
	if err := m.Restore(s); err != nil {
		return nil, err
	}
	return m, nil
}
