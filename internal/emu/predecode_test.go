package emu

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestPredecodeRoundTrip: recording a stretch of the dynamic stream and
// filling it back must reproduce every DynInst bit-identically — the
// contract that lets the trace-driven front end replace the live emulator.
func TestPredecodeRoundTrip(t *testing.T) {
	for _, name := range []string{"chess", "matmul", "goplay"} {
		prog, err := workload.Program(name)
		if err != nil {
			t.Fatal(err)
		}
		m := MustNew(prog)
		m.Run(10_000) // land mid-program

		const n = 5_000
		pre := NewPredecode(n)
		want := make([]DynInst, 0, n)
		for i := 0; i < n; i++ {
			di, ok := m.Step()
			if !ok {
				break
			}
			pre.Append(di)
			want = append(want, di)
		}
		if pre.Len() != len(want) {
			t.Fatalf("%s: recorded %d, want %d", name, pre.Len(), len(want))
		}
		sd := NewStaticDecode(prog.Code)
		var got DynInst
		for i := range want {
			pre.Fill(i, sd, &got)
			if !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("%s: record %d round-trip mismatch:\n got %+v\nwant %+v", name, i, got, want[i])
			}
			if pre.PCAt(i) != want[i].PC {
				t.Fatalf("%s: record %d PCAt=%d, want %d", name, i, pre.PCAt(i), want[i].PC)
			}
		}
	}
}

// TestPredecodeHalt: a recorded Halt marks the buffer complete and
// round-trips with Step's halt-specific NextPC convention.
func TestPredecodeHalt(t *testing.T) {
	b := asm.New("halting")
	r := isa.R(2)
	b.Li(r, 100)
	b.Label("top")
	b.Addi(r, r, -1)
	b.Bne(r, isa.RZero, "top")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(prog)
	pre := NewPredecode(1024)
	var last DynInst
	for {
		di, ok := m.Step()
		if !ok {
			break
		}
		pre.Append(di)
		last = di
	}
	if !pre.Halted() {
		t.Fatal("running to completion did not mark the buffer halted")
	}
	sd := NewStaticDecode(prog.Code)
	var got DynInst
	pre.Fill(pre.Len()-1, sd, &got)
	if !reflect.DeepEqual(got, last) {
		t.Fatalf("halt record mismatch:\n got %+v\nwant %+v", got, last)
	}
	if got.NextPC != got.PC {
		t.Fatalf("halt NextPC=%d, want its own PC %d", got.NextPC, got.PC)
	}
	if pre.Bytes() <= 0 {
		t.Fatal("Bytes() must be positive for a non-empty buffer")
	}
}
