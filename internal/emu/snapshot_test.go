package emu

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/workload"
)

// record runs n steps and returns the dynamic instruction stream.
func record(t *testing.T, m *Machine, n int) []DynInst {
	t.Helper()
	out := make([]DynInst, 0, n)
	for i := 0; i < n; i++ {
		di, ok := m.Step()
		if !ok {
			break
		}
		out = append(out, di)
	}
	return out
}

func archEqual(a, b *Machine) bool {
	return a.regs == b.regs && a.pc == b.pc && a.seq == b.seq && a.done == b.done &&
		reflect.DeepEqual(a.mem, b.mem)
}

// TestSnapshotDeterminism is the snapshot contract: snapshot mid-program,
// let the original machine diverge, restore, and the replayed instruction
// stream and final architectural state must be bit-identical to an
// uninterrupted reference run.
func TestSnapshotDeterminism(t *testing.T) {
	for _, wl := range []string{"parser", "compress", "stencil"} {
		t.Run(wl, func(t *testing.T) {
			prog := workload.MustProgram(wl)

			// Uninterrupted reference: 100K to the snapshot point, then 50K
			// recorded.
			ref := MustNew(prog)
			ref.Run(100_000)
			want := record(t, ref, 50_000)

			// Snapshot a second machine at the same point, diverge it well
			// past the recorded region, and restore in place.
			m := MustNew(prog)
			m.Run(100_000)
			snap := m.Snapshot()
			if snap.Seq() != 100_000 {
				t.Fatalf("snapshot seq = %d, want 100000", snap.Seq())
			}
			m.Run(300_000) // divergence: dirties pages the snapshot must undo
			if err := m.Restore(snap); err != nil {
				t.Fatal(err)
			}
			got := record(t, m, 50_000)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored stream diverged from the uninterrupted reference")
			}
			if !archEqual(m, ref) {
				t.Fatalf("final architectural state differs after restore-replay")
			}

			// A fresh machine from the same snapshot (the rebuild workload
			// programs get) replays identically too.
			fresh, err := NewFromSnapshot(workload.MustProgram(wl), snap)
			if err != nil {
				t.Fatal(err)
			}
			if got := record(t, fresh, 50_000); !reflect.DeepEqual(got, want) {
				t.Fatalf("NewFromSnapshot stream diverged from the reference")
			}
			if !archEqual(fresh, ref) {
				t.Fatalf("NewFromSnapshot final state differs")
			}
		})
	}
}

// TestSnapshotIsCompact: a machine with a large memory but a small working
// set snapshots only what it wrote.
func TestSnapshotIsCompact(t *testing.T) {
	prog := workload.MustProgram("stencil") // ~40 MB memory image
	m := MustNew(prog)
	m.Run(200_000)
	snap := m.Snapshot()
	total := numPages(len(m.mem))
	if snap.DirtyPages() == 0 {
		t.Fatal("no dirty pages after 200K instructions")
	}
	if snap.DirtyPages() >= total {
		t.Fatalf("snapshot carries all %d pages; copy-on-write compaction is not working", total)
	}
	t.Logf("stencil snapshot: %d of %d pages (%d KB)", snap.DirtyPages(), total, snap.MemBytes()/1024)
}

// TestSnapshotSharedAcrossGoroutines: one snapshot seeding many concurrent
// machines must give every one of them the same replay (run under -race in
// CI).
func TestSnapshotSharedAcrossGoroutines(t *testing.T) {
	prog := workload.MustProgram("chess")
	m := MustNew(prog)
	m.Run(50_000)
	snap := m.Snapshot()

	ref := MustNew(prog)
	ref.Run(50_000)
	want := record(t, ref, 20_000)

	var wg sync.WaitGroup
	streams := make([][]DynInst, 4)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mm, err := NewFromSnapshot(prog, snap)
			if err != nil {
				t.Error(err)
				return
			}
			streams[i] = record(t, mm, 20_000)
		}(i)
	}
	wg.Wait()
	for i, s := range streams {
		if !reflect.DeepEqual(s, want) {
			t.Fatalf("concurrent replay %d diverged", i)
		}
	}
}

// TestSnapshotHaltedMachine: snapshotting a finished program restores to a
// finished program.
func TestSnapshotHaltedMachine(t *testing.T) {
	b := asm.New("tiny")
	r2 := isa.R(2)
	b.Li(r2, 10)
	b.Label("loop")
	b.Addi(r2, r2, -1)
	b.Bne(r2, isa.RZero, "loop")
	b.Halt()
	prog := b.MustBuild()

	m := MustNew(prog)
	m.Run(0)
	if !m.Done() {
		t.Fatal("program did not halt")
	}
	snap := m.Snapshot()
	if !snap.Done() {
		t.Fatal("snapshot lost the halt flag")
	}
	m2, err := NewFromSnapshot(prog, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Done() {
		t.Fatal("restored machine is not halted")
	}
	if _, ok := m2.Step(); ok {
		t.Fatal("halted machine stepped")
	}
}

// TestRestoreRejectsForeignSnapshot: restoring across programs is an error,
// not silent corruption.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	a := MustNew(workload.MustProgram("chess"))
	a.Run(1000)
	snap := a.Snapshot()
	b := MustNew(workload.MustProgram("stencil"))
	if err := b.Restore(snap); err == nil {
		t.Fatal("cross-program restore accepted")
	}
}
