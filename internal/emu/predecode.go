package emu

import "repro/internal/isa"

// Predecode is an immutable, flat (structure-of-arrays) record of one
// window's committed dynamic instruction stream: per record the static
// instruction index, the next static index actually fetched, the branch
// outcome, and the effective memory address. Everything else a DynInst
// carries — the decoded instruction, its class, the taken-path target —
// is a pure function of the static code and these four columns, so Fill
// reconstructs the exact DynInst the functional emulator produced without
// re-executing it. A Predecode is written once by the window planner and
// then only read, which is what lets one buffer feed any number of
// concurrent machine variants.
type Predecode struct {
	idx      []int32  // static instruction index per record
	next     []int32  // static index fetched next (NextPC / 4)
	flags    []uint8  // bit 0: branch/jump taken
	addr     []uint64 // effective address (loads/stores; 0 otherwise)
	startSeq uint64   // Seq of record 0
	halted   bool     // last record is the program's Halt: nothing follows
}

const predTaken uint8 = 1 << 0

// NewPredecode returns an empty buffer with capacity for n records.
func NewPredecode(n int) *Predecode {
	return &Predecode{
		idx:   make([]int32, 0, n),
		next:  make([]int32, 0, n),
		flags: make([]uint8, 0, n),
		addr:  make([]uint64, 0, n),
	}
}

// Append records one executed instruction. Appending a Halt marks the
// buffer complete: the recorded stream is the program's entire remainder.
func (p *Predecode) Append(di DynInst) {
	if len(p.idx) == 0 {
		p.startSeq = di.Seq
	}
	p.idx = append(p.idx, int32(di.Idx))
	p.next = append(p.next, int32(di.NextPC/4))
	var f uint8
	if di.Taken {
		f |= predTaken
	}
	p.flags = append(p.flags, f)
	p.addr = append(p.addr, di.Addr)
	if di.Inst.Op == isa.Halt {
		p.halted = true
	}
}

// Len returns the number of recorded instructions.
func (p *Predecode) Len() int { return len(p.idx) }

// Halted reports whether the record ends with the program's Halt — when
// true, no instruction follows the last record and a consumer that drains
// the buffer needs no live-emulator continuation.
func (p *Predecode) Halted() bool { return p.halted }

// StartSeq returns the Seq of the first record.
func (p *Predecode) StartSeq() uint64 { return p.startSeq }

// Bytes returns the buffer's resident memory footprint — the accounting
// unit for trace-store byte budgets.
func (p *Predecode) Bytes() int64 {
	return int64(cap(p.idx))*4 + int64(cap(p.next))*4 + int64(cap(p.flags)) + int64(cap(p.addr))*8
}

// PCAt returns record i's fetch address without materialising the DynInst
// (the fetch stage needs the PC for the I-cache check before it commits to
// consuming the record).
func (p *Predecode) PCAt(i int) uint64 { return isa.PC(int(p.idx[i])) }

// StaticDecode caches the per-static-instruction decode (the Class call)
// for one program, shared by every replay of its windows.
type StaticDecode struct {
	Code  []isa.Inst
	Class []isa.Class
}

// NewStaticDecode predecodes a program's static code.
func NewStaticDecode(code []isa.Inst) *StaticDecode {
	sd := &StaticDecode{Code: code, Class: make([]isa.Class, len(code))}
	for i, in := range code {
		sd.Class[i] = in.Class()
	}
	return sd
}

// Fill reconstructs record i into di, bit-identically to the DynInst
// Machine.Step returned when the record was made. The reconstruction rules
// mirror Step exactly: a Halt renames NextPC to its own PC; a conditional
// branch's target is its immediate whether or not it was taken; any other
// control instruction's target is where it actually went.
func (p *Predecode) Fill(i int, sd *StaticDecode, di *DynInst) {
	idx := int(p.idx[i])
	in := sd.Code[idx]
	di.Seq = p.startSeq + uint64(i)
	di.Idx = idx
	di.PC = isa.PC(idx)
	di.Inst = in
	di.Class = sd.Class[idx]
	di.Taken = p.flags[i]&predTaken != 0
	di.Addr = p.addr[i]
	if in.Op == isa.Halt {
		di.Target = 0
		di.NextPC = di.PC
		return
	}
	di.NextPC = isa.PC(int(p.next[i]))
	switch {
	case in.IsCondBranch():
		di.Target = isa.PC(int(in.Imm))
	case in.IsControl():
		di.Target = di.NextPC
	default:
		di.Target = 0
	}
}
