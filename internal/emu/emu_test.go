package emu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
)

func run(t *testing.T, build func(b *asm.Builder)) *Machine {
	t.Helper()
	b := asm.New("t")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(p)
	m.Run(0)
	if !m.Done() {
		t.Fatal("program did not halt")
	}
	return m
}

func TestIntegerArithmetic(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		r2, r3 := isa.R(2), isa.R(3)
		b.Li(r2, 100)
		b.Li(r3, 7)
		b.Add(isa.R(4), r2, r3)  // 107
		b.Sub(isa.R(5), r2, r3)  // 93
		b.Mul(isa.R(6), r2, r3)  // 700
		b.Div(isa.R(7), r2, r3)  // 14
		b.Rem(isa.R(8), r2, r3)  // 2
		b.And(isa.R(9), r2, r3)  // 4
		b.Or(isa.R(10), r2, r3)  // 103
		b.Xor(isa.R(11), r2, r3) // 99
		b.Shli(isa.R(12), r2, 2) // 400
		b.Shri(isa.R(13), r2, 2) // 25
		b.Slt(isa.R(14), r3, r2) // 1
		b.Halt()
	})
	want := map[int]uint64{4: 107, 5: 93, 6: 700, 7: 14, 8: 2, 9: 4, 10: 103, 11: 99, 12: 400, 13: 25, 14: 1}
	for r, v := range want {
		if got := m.Reg(isa.R(r)); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.R(2), -8)
		b.Srai(isa.R(3), isa.R(2), 1) // -4
		b.Li(isa.R(4), 3)
		b.Div(isa.R(5), isa.R(2), isa.R(4))  // -2
		b.Rem(isa.R(6), isa.R(2), isa.R(4))  // -2
		b.Slt(isa.R(7), isa.R(2), isa.R(4))  // 1 (signed)
		b.Sltu(isa.R(8), isa.R(2), isa.R(4)) // 0 (unsigned: huge)
		b.Halt()
	})
	if int64(m.Reg(isa.R(3))) != -4 {
		t.Errorf("srai = %d, want -4", int64(m.Reg(isa.R(3))))
	}
	if int64(m.Reg(isa.R(5))) != -2 || int64(m.Reg(isa.R(6))) != -2 {
		t.Errorf("signed div/rem wrong: %d %d", int64(m.Reg(isa.R(5))), int64(m.Reg(isa.R(6))))
	}
	if m.Reg(isa.R(7)) != 1 || m.Reg(isa.R(8)) != 0 {
		t.Error("signed/unsigned compare confusion")
	}
}

func TestDivideByZero(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.R(2), 9)
		b.Div(isa.R(3), isa.R(2), isa.RZero)
		b.Rem(isa.R(4), isa.R(2), isa.RZero)
		b.Halt()
	})
	if m.Reg(isa.R(3)) != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all-ones", m.Reg(isa.R(3)))
	}
	if m.Reg(isa.R(4)) != 9 {
		t.Errorf("rem by zero = %d, want dividend", m.Reg(isa.R(4)))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.RZero, 99)
		b.Addi(isa.R(2), isa.RZero, 5)
		b.Halt()
	})
	if m.Reg(isa.RZero) != 0 {
		t.Error("r0 was written")
	}
	if m.Reg(isa.R(2)) != 5 {
		t.Error("read of r0 not zero")
	}
}

func TestMemoryAndForwardingSemantics(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		buf := b.Alloc(64)
		b.Li(isa.R(2), int64(buf))
		b.Li(isa.R(3), 0xABCD)
		b.St(isa.R(3), isa.R(2), 8)
		b.Ld(isa.R(4), isa.R(2), 8)
		b.Halt()
	})
	if m.Reg(isa.R(4)) != 0xABCD {
		t.Errorf("load after store = %#x", m.Reg(isa.R(4)))
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	b := asm.New("t")
	b.Li(isa.R(2), 4) // not 8-aligned
	b.Ld(isa.R(3), isa.R(2), 0)
	b.Halt()
	p := b.MustBuild()
	m := MustNew(p)
	defer func() {
		if recover() == nil {
			t.Error("misaligned load should panic")
		}
	}()
	m.Run(0)
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		c := b.Floats(2.5, 4.0)
		b.Li(isa.R(2), int64(c))
		b.Fld(isa.F(1), isa.R(2), 0)
		b.Fld(isa.F(2), isa.R(2), 8)
		b.Fadd(isa.F(3), isa.F(1), isa.F(2)) // 6.5
		b.Fmul(isa.F(4), isa.F(1), isa.F(2)) // 10
		b.Fdiv(isa.F(5), isa.F(2), isa.F(1)) // 1.6
		b.Fsub(isa.F(6), isa.F(1), isa.F(2)) // -1.5
		b.Fclt(isa.R(3), isa.F(1), isa.F(2)) // 1
		b.Fcvti(isa.R(4), isa.F(4))          // 10
		b.Li(isa.R(5), 3)
		b.Fcvtf(isa.F(7), isa.R(5)) // 3.0
		b.Halt()
	})
	if got := m.FReg(isa.F(3)); got != 6.5 {
		t.Errorf("fadd = %g", got)
	}
	if got := m.FReg(isa.F(4)); got != 10 {
		t.Errorf("fmul = %g", got)
	}
	if got := m.FReg(isa.F(5)); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("fdiv = %g", got)
	}
	if got := m.FReg(isa.F(6)); got != -1.5 {
		t.Errorf("fsub = %g", got)
	}
	if m.Reg(isa.R(3)) != 1 || m.Reg(isa.R(4)) != 10 {
		t.Error("fclt/fcvti wrong")
	}
	if m.FReg(isa.F(7)) != 3.0 {
		t.Error("fcvtf wrong")
	}
}

func TestControlFlowRecords(t *testing.T) {
	b := asm.New("t")
	r2 := isa.R(2)
	b.Li(r2, 2)                  // 0
	b.Label("loop")              // idx 1
	b.Addi(r2, r2, -1)           // 1
	b.Bne(r2, isa.RZero, "loop") // 2
	b.Call("fn")                 // 3
	b.Halt()                     // 4
	b.Label("fn")                // 5
	b.Ret()                      // 6
	p := b.MustBuild()
	m := MustNew(p)

	var dis []DynInst
	for {
		di, ok := m.Step()
		if !ok {
			break
		}
		dis = append(dis, di)
		if len(dis) > 100 {
			t.Fatal("runaway")
		}
	}
	// Expect: li, addi, bne(taken), addi, bne(not-taken), jal, jr, halt
	if len(dis) != 8 {
		t.Fatalf("executed %d instructions, want 8", len(dis))
	}
	if !dis[2].Taken || dis[2].NextPC != isa.PC(1) {
		t.Errorf("first bne should be taken to 1: %+v", dis[2])
	}
	if dis[4].Taken {
		t.Error("second bne should fall through")
	}
	jal := dis[5]
	if !jal.Taken || jal.NextPC != isa.PC(5) {
		t.Errorf("jal should jump to fn: %+v", jal)
	}
	jr := dis[6]
	if jr.NextPC != isa.PC(4) {
		t.Errorf("ret should return to halt: %+v", jr)
	}
	if m.Reg(isa.RLink) != 4 {
		t.Errorf("link register = %d, want 4", m.Reg(isa.RLink))
	}
}

func TestSeqMonotonic(t *testing.T) {
	b := asm.New("t")
	b.Label("x")
	b.Addi(isa.R(2), isa.R(2), 1)
	b.Jmp("x")
	m := MustNew(b.MustBuild())
	var last uint64
	for i := 0; i < 1000; i++ {
		di, _ := m.Step()
		if i > 0 && di.Seq != last+1 {
			t.Fatalf("sequence broke at %d", i)
		}
		last = di.Seq
	}
}

// Property: Slt/Sltu agree with Go's comparison operators for arbitrary
// operand values.
func TestQuickCompares(t *testing.T) {
	f := func(a, b uint64) bool {
		bb := asm.New("q")
		bb.Li(isa.R(2), int64(a))
		bb.Li(isa.R(3), int64(b))
		bb.Slt(isa.R(4), isa.R(2), isa.R(3))
		bb.Sltu(isa.R(5), isa.R(2), isa.R(3))
		bb.Halt()
		m := MustNew(bb.MustBuild())
		m.Run(0)
		slt := m.Reg(isa.R(4)) == 1
		sltu := m.Reg(isa.R(5)) == 1
		return slt == (int64(a) < int64(b)) && sltu == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: storing then loading any value at any aligned in-range address
// round-trips.
func TestQuickMemoryRoundTrip(t *testing.T) {
	f := func(v uint64, slot uint8) bool {
		bb := asm.New("q")
		buf := bb.Alloc(2048)
		off := int64(slot) % 256 * 8
		bb.Li(isa.R(2), int64(buf))
		bb.Li(isa.R(3), int64(v))
		bb.St(isa.R(3), isa.R(2), off)
		bb.Ld(isa.R(4), isa.R(2), off)
		bb.Halt()
		m := MustNew(bb.MustBuild())
		m.Run(0)
		return m.Reg(isa.R(4)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
