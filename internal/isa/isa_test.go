package isa

import (
	"testing"
	"testing/quick"
)

func TestRegisterConstructors(t *testing.T) {
	if R(0) != RZero || R(1) != RLink {
		t.Error("integer register constants wrong")
	}
	if F(0) != 32 || F(31) != 63 {
		t.Error("fp register mapping wrong")
	}
	if !F(5).IsFP() || R(5).IsFP() {
		t.Error("IsFP wrong")
	}
	if R(3).String() != "r3" || F(3).String() != "f3" {
		t.Errorf("register names wrong: %s %s", R(3), F(3))
	}
	for _, bad := range []func(){func() { R(32) }, func() { F(32) }, func() { R(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range register did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestClassMapping(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{Add, ClassIntALU}, {Slt, ClassIntALU}, {Andi, ClassIntALU},
		{Mul, ClassIntMulDiv}, {Div, ClassIntMulDiv}, {Rem, ClassIntMulDiv},
		{Ld, ClassLoad}, {Fld, ClassLoad},
		{St, ClassStore}, {Fst, ClassStore},
		{Fadd, ClassFPU}, {Fdiv, ClassFPU}, {Fclt, ClassFPU},
		{Beq, ClassIntALU}, {Jr, ClassIntALU},
		{Jmp, ClassNone}, {Jal, ClassNone}, {Nop, ClassNone}, {Halt, ClassNone},
	}
	for _, c := range cases {
		if got := (Inst{Op: c.op}).Class(); got != c.want {
			t.Errorf("%v class = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	br := Inst{Op: Beq}
	if !br.IsCondBranch() || !br.IsControl() || br.IsIndirect() || br.HasDest() {
		t.Error("Beq predicates wrong")
	}
	jr := Inst{Op: Jr, Rs1: RLink}
	if jr.IsCondBranch() || !jr.IsControl() || !jr.IsIndirect() {
		t.Error("Jr predicates wrong")
	}
	ld := Inst{Op: Ld, Rd: R(5)}
	if !ld.IsLoad() || ld.IsStore() || !ld.IsMem() || !ld.HasDest() {
		t.Error("Ld predicates wrong")
	}
	st := Inst{Op: St}
	if st.IsLoad() || !st.IsStore() || st.HasDest() {
		t.Error("St predicates wrong")
	}
	// Writes to the zero register are no destination.
	if (Inst{Op: Add, Rd: RZero}).HasDest() {
		t.Error("write to r0 should not count as a destination")
	}
	if !(Inst{Op: Jal, Rd: RLink}).HasDest() {
		t.Error("Jal writes the link register")
	}
}

func TestSources(t *testing.T) {
	check := func(in Inst, want []Reg) {
		t.Helper()
		srcs, n := in.Sources()
		if n != len(want) {
			t.Fatalf("%v: %d sources, want %d", in, n, len(want))
		}
		for i, w := range want {
			if srcs[i] != w {
				t.Errorf("%v: src[%d] = %v, want %v", in, i, srcs[i], w)
			}
		}
	}
	check(Inst{Op: Add, Rs1: R(2), Rs2: R(3)}, []Reg{R(2), R(3)})
	check(Inst{Op: Addi, Rs1: R(2)}, []Reg{R(2)})
	check(Inst{Op: Ld, Rs1: R(4)}, []Reg{R(4)})
	check(Inst{Op: St, Rs1: R(4), Rs2: R(5)}, []Reg{R(4), R(5)})
	check(Inst{Op: Jmp}, nil)
	check(Inst{Op: Jal, Rd: RLink}, nil)
	check(Inst{Op: Jr, Rs1: RLink}, []Reg{RLink})
	check(Inst{Op: Beq, Rs1: R(6), Rs2: RZero}, []Reg{R(6), RZero})
}

func TestLatencyAndPipelining(t *testing.T) {
	if (Inst{Op: Add}).Latency() != 1 || (Inst{Op: Mul}).Latency() != 3 {
		t.Error("int latencies wrong")
	}
	if (Inst{Op: Div}).Latency() != 20 || (Inst{Op: Fdiv}).Latency() != 12 {
		t.Error("divide latencies wrong")
	}
	for _, op := range []Op{Div, Rem, Fdiv} {
		if (Inst{Op: op}).Pipelined() {
			t.Errorf("%v should block its unit", op)
		}
	}
	for _, op := range []Op{Add, Mul, Fmul, Ld} {
		if !(Inst{Op: op}).Pipelined() {
			t.Errorf("%v should be pipelined", op)
		}
	}
}

func TestPCConversion(t *testing.T) {
	for _, idx := range []int{0, 1, 7, 123456} {
		if Index(PC(idx)) != idx {
			t.Errorf("PC/Index roundtrip failed for %d", idx)
		}
	}
	if PC(3) != 12 {
		t.Errorf("PC(3) = %d, want 12", PC(3))
	}
}

func TestValidate(t *testing.T) {
	ok := &Program{Name: "ok", Code: []Inst{{Op: Add}, {Op: Halt}}, MemSize: 64}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	cases := []*Program{
		{Name: "empty", MemSize: 64},
		{Name: "entry", Code: []Inst{{Op: Halt}}, Entry: 5, MemSize: 64},
		{Name: "data", Code: []Inst{{Op: Halt}}, Data: make([]byte, 100), MemSize: 64},
		{Name: "target", Code: []Inst{{Op: Jmp, Imm: 99}, {Op: Halt}}, MemSize: 64},
		{Name: "reg", Code: []Inst{{Op: Add, Rd: 77}, {Op: Halt}}, MemSize: 64},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("program %q should fail validation", p.Name)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Add, Rd: R(2), Rs1: R(3), Rs2: R(4)}, "add r2, r3, r4"},
		{Inst{Op: Addi, Rd: R(2), Rs1: R(3), Imm: 5}, "addi r2, r3, 5"},
		{Inst{Op: Ld, Rd: R(2), Rs1: R(3), Imm: 16}, "ld r2, 16(r3)"},
		{Inst{Op: St, Rs1: R(3), Rs2: R(4), Imm: 8}, "st r4, 8(r3)"},
		{Inst{Op: Beq, Rs1: R(2), Rs2: RZero, Imm: 7}, "beq r2, r0, @7"},
		{Inst{Op: Jmp, Imm: 3}, "jmp @3"},
		{Inst{Op: Halt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// Property: branches never have destinations, loads always do (unless r0),
// and every op's class is in range.
func TestQuickInstInvariants(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8) bool {
		in := Inst{Op: Op(op % uint8(numOps)), Rd: Reg(rd % 64), Rs1: Reg(rs1 % 64), Rs2: Reg(rs2 % 64)}
		if in.Class() >= NumClasses {
			return false
		}
		if in.IsCondBranch() && in.HasDest() {
			return false
		}
		if in.IsStore() && in.HasDest() {
			return false
		}
		srcs, n := in.Sources()
		if n < 0 || n > 2 {
			return false
		}
		for i := 0; i < n; i++ {
			if srcs[i] >= NumLogicalRegs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
